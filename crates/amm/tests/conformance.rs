//! Conformance scenarios for the AMM engine: fee settlement around the
//! position lifecycle (including the tick-clear ordering regression),
//! multi-range swaps, and concentrated-liquidity behaviour.

use ammboost_amm::pool::{Pool, SwapKind};
use ammboost_amm::tick_math::sqrt_ratio_at_tick;
use ammboost_amm::types::{Amount, PositionId};
use ammboost_crypto::Address;

fn addr(i: u64) -> Address {
    Address::from_index(i)
}

fn pid(tag: &str) -> PositionId {
    PositionId::derive(&[tag.as_bytes()])
}

/// Regression for the tick-clear ordering bug: a position whose full burn
/// empties its ticks must settle its fees from the *pre-clear* tick state;
/// repeated churn cycles must never inflate or brick `tokens_owed`.
#[test]
fn full_burn_settles_fees_before_tick_clear() {
    let mut pool = Pool::new_standard();
    pool.mint(
        pid("base"),
        addr(1),
        -120_000,
        120_000,
        10u128.pow(13),
        10u128.pow(13),
    )
    .unwrap();

    for cycle in 0..50u64 {
        let id = PositionId::derive(&[b"churn", &cycle.to_be_bytes()]);
        // a fresh narrow position each cycle (unique ticks get initialized
        // and cleared over and over)
        let lo = -600 - 60 * (cycle as i32 % 7);
        let hi = 600 + 60 * (cycle as i32 % 5);
        pool.mint(id, addr(2), lo, hi, 5_000_000, 5_000_000)
            .unwrap();
        // trade through the range so fees accrue
        pool.swap(true, SwapKind::ExactInput(2_000_000), None)
            .unwrap();
        pool.swap(false, SwapKind::ExactInput(2_000_000), None)
            .unwrap();
        // full exit must always succeed (the bug made this fail with
        // balance overflow after a few cycles)
        let held = pool.position(&id).unwrap().liquidity;
        pool.burn(id, addr(2), held)
            .unwrap_or_else(|e| panic!("cycle {cycle}: burn failed: {e}"));
        let out = pool.collect(id, addr(2), Amount::MAX, Amount::MAX).unwrap();
        // fees are bounded by the cycle's traded volume — no inflation
        assert!(
            out.amount0 < 20_000_000 && out.amount1 < 20_000_000,
            "cycle {cycle}: inflated settlement {out}"
        );
        assert!(pool.position(&id).is_none());
    }
}

#[test]
fn fees_split_across_overlapping_ranges() {
    let mut pool = Pool::new_standard();
    // equal liquidity budgets; b's range is a superset of a's
    pool.mint(pid("a"), addr(1), -600, 600, 20_000_000, 20_000_000)
        .unwrap();
    pool.mint(pid("b"), addr(2), -1200, 1200, 20_000_000, 20_000_000)
        .unwrap();
    // small swaps stay inside both ranges
    for _ in 0..20 {
        pool.swap(true, SwapKind::ExactInput(100_000), None)
            .unwrap();
        pool.swap(false, SwapKind::ExactInput(100_000), None)
            .unwrap();
    }
    let fa = pool
        .collect(pid("a"), addr(1), Amount::MAX, Amount::MAX)
        .unwrap();
    let fb = pool
        .collect(pid("b"), addr(2), Amount::MAX, Amount::MAX)
        .unwrap();
    // a's liquidity is denser (same budget, half the width): more fees
    assert!(
        fa.amount0 > fb.amount0,
        "narrow range must out-earn wide: {fa} vs {fb}"
    );
    assert!(fa.amount1 > fb.amount1);
}

#[test]
fn swap_across_many_initialized_ticks() {
    let mut pool = Pool::new_standard();
    // a ladder of adjacent ranges
    for step in 0..10i32 {
        let lo = -60 * (step + 1);
        let hi = -60 * step;
        pool.mint(
            PositionId::derive(&[b"ladder", &step.to_be_bytes()]),
            addr(3),
            lo,
            hi,
            2_000_000,
            2_000_000,
        )
        .unwrap();
    }
    // base liquidity so the swap can keep going
    pool.mint(pid("floor"), addr(3), -6000, 6000, 50_000_000, 50_000_000)
        .unwrap();
    let res = pool
        .swap(
            true,
            SwapKind::ExactInput(40_000_000),
            Some(sqrt_ratio_at_tick(-660).unwrap()),
        )
        .unwrap();
    assert!(res.ticks_crossed >= 8, "crossed only {}", res.ticks_crossed);
    // price ends at the limit; every crossing adjusted liquidity
    assert_eq!(res.sqrt_price_after, sqrt_ratio_at_tick(-660).unwrap());
}

#[test]
fn exact_output_across_tick_boundary_delivers_exactly() {
    let mut pool = Pool::new_standard();
    pool.mint(pid("inner"), addr(1), -120, 120, 30_000_000, 30_000_000)
        .unwrap();
    pool.mint(pid("outer"), addr(1), -6000, 6000, 30_000_000, 30_000_000)
        .unwrap();
    // demand more token1 than the inner range holds (~30M): must cross
    // its lower tick and still deliver exactly
    let res = pool
        .swap(true, SwapKind::ExactOutput(45_000_000), None)
        .unwrap();
    assert_eq!(res.amount_out, 45_000_000);
    assert!(res.ticks_crossed >= 1);
}

#[test]
fn dust_swaps_accumulate_consistently() {
    let mut pool = Pool::new_standard();
    pool.mint(
        pid("base"),
        addr(1),
        -600,
        600,
        10u128.pow(12),
        10u128.pow(12),
    )
    .unwrap();
    let start_balances = pool.balances();
    let mut total_in = 0u128;
    let mut total_out = 0u128;
    for _ in 0..500 {
        let r = pool.swap(true, SwapKind::ExactInput(100), None).unwrap();
        total_in += r.amount_in;
        total_out += r.amount_out;
    }
    let end = pool.balances();
    assert_eq!(end.amount0, start_balances.amount0 + total_in);
    assert_eq!(end.amount1, start_balances.amount1 - total_out);
    // pool keeps the fee margin
    assert!(total_out < total_in);
}

#[test]
fn price_limit_exactly_on_initialized_tick() {
    let mut pool = Pool::new_standard();
    pool.mint(
        pid("base"),
        addr(1),
        -1200,
        1200,
        10u128.pow(10),
        10u128.pow(10),
    )
    .unwrap();
    let limit = sqrt_ratio_at_tick(-1200).unwrap() + ammboost_crypto::U256::ONE;
    let res = pool
        .swap(true, SwapKind::ExactInput(u128::MAX >> 8), Some(limit))
        .unwrap();
    assert_eq!(res.sqrt_price_after, limit);
    // liquidity beyond the lower bound is zero: pool tick is at/below the
    // range edge
    assert!(pool.tick() <= -1199);
}

#[test]
fn reentering_range_resumes_fee_accrual() {
    let mut pool = Pool::new_standard();
    pool.mint(
        pid("wide"),
        addr(1),
        -120_000,
        120_000,
        10u128.pow(13),
        10u128.pow(13),
    )
    .unwrap();
    pool.mint(pid("narrow"), addr(2), -600, 600, 10_000_000, 10_000_000)
        .unwrap();

    // leave the narrow range entirely
    pool.swap(
        true,
        SwapKind::ExactInput(u128::MAX >> 8),
        Some(sqrt_ratio_at_tick(-3000).unwrap()),
    )
    .unwrap();
    let owed_outside = {
        let mut staged = pool.clone();
        staged
            .collect(pid("narrow"), addr(2), Amount::MAX, Amount::MAX)
            .unwrap()
    };

    // come back inside and trade
    pool.swap(
        false,
        SwapKind::ExactInput(u128::MAX >> 8),
        Some(sqrt_ratio_at_tick(0).unwrap()),
    )
    .unwrap();
    for _ in 0..10 {
        pool.swap(true, SwapKind::ExactInput(500_000), None)
            .unwrap();
        pool.swap(false, SwapKind::ExactInput(500_000), None)
            .unwrap();
    }
    let owed_back_inside = pool
        .collect(pid("narrow"), addr(2), Amount::MAX, Amount::MAX)
        .unwrap();
    assert!(
        owed_back_inside.amount0 > owed_outside.amount0
            || owed_back_inside.amount1 > owed_outside.amount1,
        "no fees accrued after re-entering the range"
    );
}

#[test]
fn flash_during_active_positions_pays_all_in_range() {
    let mut pool = Pool::new_standard();
    pool.mint(pid("a"), addr(1), -600, 600, 10_000_000, 10_000_000)
        .unwrap();
    pool.mint(pid("b"), addr(2), -600, 600, 10_000_000, 10_000_000)
        .unwrap();
    pool.flash(1_000_000, 1_000_000, |loan| {
        ammboost_amm::types::AmountPair::new(loan.amount0 + 3_000, loan.amount1 + 3_000)
    })
    .unwrap();
    let fa = pool
        .collect(pid("a"), addr(1), Amount::MAX, Amount::MAX)
        .unwrap();
    let fb = pool
        .collect(pid("b"), addr(2), Amount::MAX, Amount::MAX)
        .unwrap();
    // equal liquidity -> equal flash-fee share (within rounding)
    assert!((fa.amount0 as i128 - fb.amount0 as i128).abs() <= 1);
    assert!((fa.amount1 as i128 - fb.amount1 as i128).abs() <= 1);
    assert!(fa.amount0 > 0);
}
