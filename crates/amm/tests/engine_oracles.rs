//! Differential-oracle properties for the non-CL engines.
//!
//! The constant-product engine is checked bit-for-bit against the
//! `k`-complement reference (a genuinely different integer derivation of
//! both swap directions), and its invariant `k = r0·r1` must never
//! decrease net of fees. The weighted engine is bounded by the `f64`
//! closed-form curve and its log-space invariant
//! `w0·ln r0 + w1·ln r1` must never decrease across accepted swaps.
//! Mint/burn round-trips on both engines are replayed against naive
//! share math (isqrt genesis, min pro-rata joins, floor pro-rata exits).

use ammboost_amm::engines::constant_product::reference as cp_ref;
use ammboost_amm::engines::weighted::reference as w_ref;
use ammboost_amm::engines::{CpEngine, WeightedEngine};
use ammboost_amm::pool::SwapKind;
use ammboost_amm::types::{AmountPair, PositionId, PIPS_DENOMINATOR};
use ammboost_crypto::{Address, U256};
use proptest::prelude::*;

fn pid(tag: &[u8], i: u64) -> PositionId {
    PositionId::derive(&[tag, &i.to_be_bytes()])
}

/// Naive integer sqrt by bisection — the oracle for genesis share issuance.
fn naive_isqrt(n: u128) -> u128 {
    if n == 0 {
        return 0;
    }
    let (mut lo, mut hi) = (1u128, 1u128 << 64);
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        match mid.checked_mul(mid) {
            Some(sq) if sq <= n => lo = mid,
            _ => hi = mid - 1,
        }
    }
    lo
}

/// `k = r0·r1` as a 256-bit product.
fn k_of(reserves: AmountPair) -> U256 {
    U256::from_u128(reserves.amount0)
        .full_mul(U256::from_u128(reserves.amount1))
        .to_u256()
        .expect("u128·u128 fits 256 bits")
}

fn seeded_cp(fee_pips: u32, r0: u128, r1: u128) -> CpEngine {
    let mut e = CpEngine::new(fee_pips).expect("valid fee");
    e.mint(pid(b"cp-oracle-seed", 0), Address::from_index(1), r0, r1)
        .expect("genesis join");
    e
}

fn seeded_weighted(w0: u32, w1: u32, r0: u128, r1: u128) -> WeightedEngine {
    let mut e = WeightedEngine::new(3000, w0, w1).expect("valid weights");
    e.mint(pid(b"w-oracle-seed", 0), Address::from_index(1), r0, r1)
        .expect("genesis join");
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every constant-product quote — both directions, both kinds, any
    /// fee tier — is bit-identical to the `k`-complement reference.
    #[test]
    fn cp_swap_matches_k_complement_oracle(
        r0 in 1_000_000u128..(1u128 << 100),
        r1 in 1_000_000u128..(1u128 << 100),
        amount in 1u128..(1u128 << 96),
        fee_pips in 0u32..PIPS_DENOMINATOR,
        zero_for_one in any::<bool>(),
        exact_output in any::<bool>(),
    ) {
        let e = seeded_cp(fee_pips, r0, r1);
        let kind = if exact_output {
            SwapKind::ExactOutput(amount)
        } else {
            SwapKind::ExactInput(amount)
        };
        let (r_in, r_out) = if zero_for_one { (r0, r1) } else { (r1, r0) };
        let via_engine = e.quote_swap_with_protection(zero_for_one, kind, None, 0, u128::MAX);
        let via_oracle = cp_ref::quote(r_in, r_out, kind, fee_pips);
        match (via_engine, via_oracle) {
            (Ok(got), Ok((ain, aout, fee))) => {
                prop_assert_eq!((got.amount_in, got.amount_out, got.fee_paid), (ain, aout, fee));
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "engine and oracle disagree: {a:?} vs {b:?}"),
        }
    }

    /// Across any accepted swap sequence, `k = r0·r1` never decreases —
    /// fees fold into the reserves, so `k` strictly grows with a nonzero
    /// fee and holds (up to rounding in the pool's favor) without one.
    #[test]
    fn cp_k_non_decreasing_across_swaps(
        r0 in 1_000_000_000u128..(1u128 << 80),
        r1 in 1_000_000_000u128..(1u128 << 80),
        swaps in proptest::collection::vec(
            (any::<bool>(), any::<bool>(), 1_000u128..(1u128 << 40)),
            1..24,
        ),
    ) {
        let mut e = seeded_cp(3000, r0, r1);
        for (zero_for_one, exact_output, amount) in swaps {
            let kind = if exact_output {
                SwapKind::ExactOutput(amount)
            } else {
                SwapKind::ExactInput(amount)
            };
            let k_before = k_of(e.reserves());
            if e.swap_with_protection(zero_for_one, kind, None, 0, u128::MAX).is_ok() {
                prop_assert!(k_of(e.reserves()) >= k_before, "k decreased");
            } else {
                prop_assert_eq!(k_of(e.reserves()), k_before, "failed swap moved state");
            }
        }
    }

    /// Join/exit share accounting matches naive share math on both
    /// reserve-pair engines: isqrt genesis issuance, `min` pro-rata
    /// follow-up joins, floor pro-rata exits.
    #[test]
    fn share_engines_match_naive_share_math(
        r0 in 1_000u128..(1u128 << 60),
        r1 in 1_000u128..(1u128 << 60),
        a0 in 1_000u128..(1u128 << 60),
        a1 in 1_000u128..(1u128 << 60),
        burn_bp in 1u128..10_000,
        weighted in any::<bool>(),
    ) {
        // the two share engines must account identically: exercise the
        // one the case picked through the same naive oracle
        let (genesis_shares, total_after_seed, joined, reserves) = if weighted {
            let mut e = seeded_weighted(80, 20, r0, r1);
            let seeded_total = e.book().total_shares();
            let joined = e.mint(pid(b"w-join", 1), Address::from_index(2), a0, a1);
            (naive_isqrt(r0 * r1), seeded_total, joined, e.reserves())
        } else {
            let mut e = seeded_cp(3000, r0, r1);
            let seeded_total = e.book().total_shares();
            let joined = e.mint(pid(b"cp-join", 1), Address::from_index(2), a0, a1);
            (naive_isqrt(r0 * r1), seeded_total, joined, e.reserves())
        };
        prop_assert_eq!(total_after_seed, genesis_shares, "genesis issuance != isqrt(r0*r1)");

        // naive follow-up join: floor(min(a0·S/r0, a1·S/r1)), amounts
        // taken ceil-rounded pro-rata
        let naive_shares =
            (a0 * genesis_shares / r0).min(a1 * genesis_shares / r1);
        match joined {
            Ok((shares, used)) => {
                prop_assert_eq!(shares, naive_shares);
                prop_assert_eq!(used.amount0, (shares * r0).div_ceil(genesis_shares));
                prop_assert_eq!(used.amount1, (shares * r1).div_ceil(genesis_shares));
                prop_assert_eq!(reserves, AmountPair::new(r0 + used.amount0, r1 + used.amount1));

                // naive exit: floor pro-rata over the grown pool
                let total = genesis_shares + shares;
                let burn = (shares * burn_bp / 10_000).max(1);
                let mut e = if weighted {
                    // rebuild deterministically: same seed + join sequence
                    let mut e = seeded_weighted(80, 20, r0, r1);
                    e.mint(pid(b"w-join", 1), Address::from_index(2), a0, a1).unwrap();
                    EngineUnderTest::W(e)
                } else {
                    let mut e = seeded_cp(3000, r0, r1);
                    e.mint(pid(b"cp-join", 1), Address::from_index(2), a0, a1).unwrap();
                    EngineUnderTest::Cp(e)
                };
                let tag: &[u8] = if weighted { b"w-join" } else { b"cp-join" };
                let out = e.burn(pid(tag, 1), Address::from_index(2), burn).unwrap();
                prop_assert_eq!(out.amount0, burn * reserves.amount0 / total);
                prop_assert_eq!(out.amount1, burn * reserves.amount1 / total);
            }
            Err(_) => prop_assert_eq!(naive_shares, 0, "engine rejected a naive-valid join"),
        }
    }

    /// Weighted swaps track the `f64` closed-form curve within relative
    /// tolerance, for arbitrary weight splits — any structural error in
    /// the fixed-point pow (wrong exponent, flipped ratio, dropped term)
    /// lands far outside the bound.
    #[test]
    fn weighted_swap_tracks_f64_oracle(
        r0 in 1_000_000_000u128..(1u128 << 70),
        r1 in 1_000_000_000u128..(1u128 << 70),
        w0 in 1u32..100,
        w1 in 1u32..100,
        amount_bp in 1u128..1_500,
        zero_for_one in any::<bool>(),
        exact_output in any::<bool>(),
    ) {
        let e = seeded_weighted(w0, w1, r0, r1);
        let (w_in, w_out) = {
            let (a, b) = e.weights();
            if zero_for_one { (a, b) } else { (b, a) }
        };
        let (r_in, r_out) = if zero_for_one { (r0, r1) } else { (r1, r0) };
        // stay inside the engine's ratio caps (r_in/2, r_out/3) with margin
        let amount = if exact_output {
            (r_out / 4) * amount_bp / 10_000
        } else {
            (r_in / 3) * amount_bp / 10_000
        };
        prop_assume!(amount > 1_000);

        let kind = if exact_output {
            SwapKind::ExactOutput(amount)
        } else {
            SwapKind::ExactInput(amount)
        };
        let got = e
            .quote_swap_with_protection(zero_for_one, kind, None, 0, u128::MAX)
            .expect("in-cap weighted swap quotes");
        let fee = got.fee_paid;
        if exact_output {
            let expect = w_ref::in_given_out_f64(r_in, r_out, w_in, w_out, amount);
            let in_eff = (got.amount_in - fee) as f64;
            let err = (in_eff - expect).abs() / expect.max(1.0);
            prop_assert!(err < 1e-6, "in {in_eff} vs f64 {expect} (rel err {err:e})");
        } else {
            let expect = w_ref::out_given_in_f64(r_in, r_out, w_in, w_out, amount - fee);
            let err = (got.amount_out as f64 - expect).abs() / expect.max(1.0);
            prop_assert!(err < 1e-6, "out {} vs f64 {expect} (rel err {err:e})", got.amount_out);
        }
    }

    /// The weighted invariant `w0·ln r0 + w1·ln r1` never decreases
    /// across accepted swaps (beyond f64 evaluation noise), and a
    /// rejected swap leaves the reserves untouched.
    #[test]
    fn weighted_invariant_non_decreasing(
        r0 in 1_000_000_000u128..(1u128 << 70),
        r1 in 1_000_000_000u128..(1u128 << 70),
        swaps in proptest::collection::vec(
            (any::<bool>(), any::<bool>(), 1u128..1_500),
            1..16,
        ),
    ) {
        let mut e = seeded_weighted(80, 20, r0, r1);
        let (w0, w1) = e.weights();
        for (zero_for_one, exact_output, amount_bp) in swaps {
            let r = e.reserves();
            let amount = if exact_output {
                (if zero_for_one { r.amount1 } else { r.amount0 } / 4) * amount_bp / 10_000
            } else {
                (if zero_for_one { r.amount0 } else { r.amount1 } / 3) * amount_bp / 10_000
            };
            if amount == 0 {
                continue;
            }
            let kind = if exact_output {
                SwapKind::ExactOutput(amount)
            } else {
                SwapKind::ExactInput(amount)
            };
            let before = w_ref::log_invariant(r.amount0, r.amount1, w0, w1);
            if e.swap_with_protection(zero_for_one, kind, None, 0, u128::MAX).is_ok() {
                let after_r = e.reserves();
                let after = w_ref::log_invariant(after_r.amount0, after_r.amount1, w0, w1);
                prop_assert!(after >= before - 1e-9, "invariant fell: {before} -> {after}");
            } else {
                prop_assert_eq!(e.reserves(), r, "failed swap moved reserves");
            }
        }
    }
}

/// Thin dispatch so the share-math property drives either engine's burn
/// through one code path.
enum EngineUnderTest {
    Cp(CpEngine),
    W(WeightedEngine),
}

impl EngineUnderTest {
    fn burn(
        &mut self,
        id: PositionId,
        owner: Address,
        shares: u128,
    ) -> Result<AmountPair, ammboost_amm::AmmError> {
        match self {
            EngineUnderTest::Cp(e) => e.burn(id, owner, shares),
            EngineUnderTest::W(e) => e.burn(id, owner, shares),
        }
    }
}
