//! Property-based tests for the AMM engine: tick-math round trips, swap
//! invariants, fee conservation and pool solvency.

use ammboost_amm::pool::{Pool, SwapKind};
use ammboost_amm::tick_math::{sqrt_ratio_at_tick, tick_at_sqrt_ratio, MAX_TICK, MIN_TICK};
use ammboost_amm::types::{Amount, PositionId};
use ammboost_crypto::{Address, U256};
use proptest::prelude::*;

fn pid(i: u64) -> PositionId {
    PositionId::derive(&[b"prop", &i.to_be_bytes()])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // ---- tick math ----------------------------------------------------------

    #[test]
    fn tick_roundtrip_everywhere(t in MIN_TICK..=MAX_TICK) {
        let r = sqrt_ratio_at_tick(t).unwrap();
        prop_assert_eq!(tick_at_sqrt_ratio(r).unwrap(), t);
    }

    #[test]
    fn tick_monotonicity(a in MIN_TICK..MAX_TICK) {
        let ra = sqrt_ratio_at_tick(a).unwrap();
        let rb = sqrt_ratio_at_tick(a + 1).unwrap();
        prop_assert!(rb > ra);
    }

    #[test]
    fn price_between_ticks_maps_down(t in MIN_TICK..MAX_TICK, frac in 1u64..1000) {
        let lo = sqrt_ratio_at_tick(t).unwrap();
        let hi = sqrt_ratio_at_tick(t + 1).unwrap();
        let gap = hi - lo;
        if gap > U256::from_u64(1000) {
            let p = lo + gap.mul_div(U256::from_u64(frac), U256::from_u64(1000));
            if p < hi {
                prop_assert_eq!(tick_at_sqrt_ratio(p).unwrap(), t);
            }
        }
    }

    // ---- swaps ----------------------------------------------------------------

    #[test]
    fn exact_input_never_overcharges(
        amount in 1_000u128..50_000_000,
        zero_for_one in any::<bool>(),
    ) {
        let mut pool = Pool::new_standard();
        pool.mint(pid(1), Address::from_index(1), -6000, 6000, 10u128.pow(12), 10u128.pow(12))
            .unwrap();
        let res = pool.swap(zero_for_one, SwapKind::ExactInput(amount), None).unwrap();
        prop_assert!(res.amount_in <= amount);
        prop_assert!(res.fee_paid <= res.amount_in);
    }

    #[test]
    fn exact_output_delivers_exactly(
        amount in 1_000u128..10_000_000,
        zero_for_one in any::<bool>(),
    ) {
        let mut pool = Pool::new_standard();
        pool.mint(pid(1), Address::from_index(1), -6000, 6000, 10u128.pow(12), 10u128.pow(12))
            .unwrap();
        let res = pool.swap(zero_for_one, SwapKind::ExactOutput(amount), None).unwrap();
        prop_assert_eq!(res.amount_out, amount);
    }

    #[test]
    fn swap_price_direction(
        amount in 1_000u128..10_000_000,
        zero_for_one in any::<bool>(),
    ) {
        let mut pool = Pool::new_standard();
        pool.mint(pid(1), Address::from_index(1), -6000, 6000, 10u128.pow(12), 10u128.pow(12))
            .unwrap();
        let before = pool.sqrt_price();
        pool.swap(zero_for_one, SwapKind::ExactInput(amount), None).unwrap();
        if zero_for_one {
            prop_assert!(pool.sqrt_price() <= before);
        } else {
            prop_assert!(pool.sqrt_price() >= before);
        }
    }

    #[test]
    fn pool_never_insolvent_under_random_trading(
        ops in proptest::collection::vec((any::<bool>(), 1_000u128..5_000_000), 1..30),
    ) {
        let mut pool = Pool::new_standard();
        pool.mint(pid(1), Address::from_index(1), -6000, 6000, 10u128.pow(12), 10u128.pow(12))
            .unwrap();
        for (dir, amt) in ops {
            // swaps may legitimately fail (e.g. reserves), but must never
            // corrupt accounting
            let _ = pool.swap(dir, SwapKind::ExactInput(amt), None);
            let b = pool.balances();
            prop_assert!(b.amount0 > 0 || b.amount1 > 0);
        }
        // LP can always exit with at most what the pool holds
        let liq = pool.position(&pid(1)).unwrap().liquidity;
        let burned = pool.burn(pid(1), Address::from_index(1), liq).unwrap();
        let collected = pool
            .collect(pid(1), Address::from_index(1), Amount::MAX, Amount::MAX)
            .unwrap();
        prop_assert!(collected.amount0 >= burned.amount0);
        prop_assert!(collected.amount1 >= burned.amount1);
    }

    #[test]
    fn fees_never_exceed_input_times_rate_plus_rounding(
        amount in 10_000u128..50_000_000,
    ) {
        let mut pool = Pool::new_standard();
        pool.mint(pid(1), Address::from_index(1), -6000, 6000, 10u128.pow(12), 10u128.pow(12))
            .unwrap();
        let res = pool.swap(true, SwapKind::ExactInput(amount), None).unwrap();
        // fee <= 0.3% of gross input, + a unit of rounding per step
        let bound = res.amount_in * 3 / 1000 + 1 + res.ticks_crossed as u128;
        prop_assert!(res.fee_paid <= bound, "fee {} > bound {}", res.fee_paid, bound);
    }

    #[test]
    fn mint_amounts_within_budget(
        budget0 in 1_000u128..10u128.pow(10),
        budget1 in 1_000u128..10u128.pow(10),
        half_width in 1i32..100,
    ) {
        let mut pool = Pool::new_standard();
        let lower = -60 * half_width;
        let upper = 60 * half_width;
        match pool.mint(pid(2), Address::from_index(2), lower, upper, budget0, budget1) {
            Ok((l, amounts)) => {
                prop_assert!(l > 0);
                prop_assert!(amounts.amount0 <= budget0 + 1);
                prop_assert!(amounts.amount1 <= budget1 + 1);
            }
            Err(ammboost_amm::AmmError::ZeroLiquidity) => {} // tiny budget, wide range
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    #[test]
    fn burn_then_collect_returns_no_more_than_deposited_plus_fees(
        deposit in 100_000u128..10u128.pow(10),
    ) {
        let mut pool = Pool::new_standard();
        let (_, paid) = pool
            .mint(pid(3), Address::from_index(3), -600, 600, deposit, deposit)
            .unwrap();
        let liq = pool.position(&pid(3)).unwrap().liquidity;
        pool.burn(pid(3), Address::from_index(3), liq).unwrap();
        let got = pool
            .collect(pid(3), Address::from_index(3), Amount::MAX, Amount::MAX)
            .unwrap();
        // without any trading there are no fees: withdrawal <= deposit
        prop_assert!(got.amount0 <= paid.amount0);
        prop_assert!(got.amount1 <= paid.amount1);
        // and rounding loses at most a couple of units
        prop_assert!(paid.amount0 - got.amount0 <= 2);
        prop_assert!(paid.amount1 - got.amount1 <= 2);
    }

    #[test]
    fn roundtrip_swap_loses_at_least_the_fees(
        amount in 1_000_000u128..100_000_000,
    ) {
        let mut pool = Pool::new_standard();
        pool.mint(pid(4), Address::from_index(4), -6000, 6000, 10u128.pow(13), 10u128.pow(13))
            .unwrap();
        let r1 = pool.swap(true, SwapKind::ExactInput(amount), None).unwrap();
        let r2 = pool.swap(false, SwapKind::ExactInput(r1.amount_out), None).unwrap();
        prop_assert!(r2.amount_out < amount, "arbitrage from nothing");
    }
}
