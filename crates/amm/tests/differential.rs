//! Differential properties: the bitmap swap engine and the retained seed
//! `BTreeMap` oracle must be observationally identical.
//!
//! Random mint/burn/swap/collect sequences — including `ExactOutput`
//! budgets and price-limit early exits — are replayed against two pools
//! that differ only in [`TickSearch`]; every operation's result (success
//! value *or* error) and the full observable pool state must match at
//! every step. A final check rebuilds the bitmap index from the tick
//! table and asserts it equals the incrementally maintained one.

use ammboost_amm::pool::{Pool, SwapKind, TickSearch};
use ammboost_amm::tick_math::sqrt_ratio_at_tick;
use ammboost_amm::types::{Amount, PositionId};
use ammboost_crypto::Address;
use proptest::prelude::*;

/// One random pool operation, fully determined by its parameters so both
/// engines replay exactly the same call sequence.
#[derive(Clone, Debug)]
enum Op {
    Mint {
        slot: u8,
        half_width: i32,
        amount: u128,
    },
    Burn {
        slot: u8,
        fraction_bp: u16,
    },
    Collect {
        slot: u8,
    },
    Swap {
        zero_for_one: bool,
        exact_output: bool,
        amount: u128,
        /// Price limit as a signed tick offset from the current tick;
        /// `0` means no limit.
        limit_offset: i32,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, 1i32..40, 50_000u128..50_000_000).prop_map(|(slot, half_width, amount)| {
            Op::Mint {
                slot,
                half_width,
                amount,
            }
        }),
        (0u8..4, 1u16..10_001).prop_map(|(slot, fraction_bp)| Op::Burn { slot, fraction_bp }),
        (0u8..4).prop_map(|slot| Op::Collect { slot }),
        (
            any::<bool>(),
            any::<bool>(),
            1_000u128..80_000_000,
            -200i32..201,
        )
            .prop_map(|(zero_for_one, exact_output, amount, limit_offset)| {
                Op::Swap {
                    zero_for_one,
                    exact_output,
                    amount,
                    limit_offset,
                }
            }),
    ]
}

fn pid(slot: u8) -> PositionId {
    PositionId::derive(&[b"diff", &[slot]])
}

fn owner(slot: u8) -> Address {
    Address::from_index(1000 + slot as u64)
}

/// Applies `op` to one pool, returning a comparable trace of the outcome.
fn apply(pool: &mut Pool, op: &Op) -> String {
    match *op {
        Op::Mint {
            slot,
            half_width,
            amount,
        } => {
            let lower = -60 * half_width;
            let upper = 60 * half_width;
            format!(
                "{:?}",
                pool.mint(pid(slot), owner(slot), lower, upper, amount, amount)
            )
        }
        Op::Burn { slot, fraction_bp } => {
            let held = pool.position(&pid(slot)).map(|p| p.liquidity).unwrap_or(0);
            let burn = (held / 10_000) * fraction_bp as u128;
            if burn == 0 {
                return "skip".to_string();
            }
            format!("{:?}", pool.burn(pid(slot), owner(slot), burn))
        }
        Op::Collect { slot } => {
            format!(
                "{:?}",
                pool.collect(pid(slot), owner(slot), Amount::MAX, Amount::MAX)
            )
        }
        Op::Swap {
            zero_for_one,
            exact_output,
            amount,
            limit_offset,
        } => {
            let limit = if limit_offset == 0 {
                None
            } else {
                // A limit a few ticks away in the direction of travel;
                // deliberately sometimes on the wrong side so the
                // InvalidPriceLimit path is exercised on both engines.
                let t = (pool.tick() + limit_offset).clamp(-887_000, 887_000);
                Some(sqrt_ratio_at_tick(t).expect("clamped tick in range"))
            };
            let kind = if exact_output {
                SwapKind::ExactOutput(amount)
            } else {
                SwapKind::ExactInput(amount)
            };
            format!("{:?}", pool.swap(zero_for_one, kind, limit))
        }
    }
}

/// Full observable state, serialized for equality comparison.
fn state(pool: &Pool) -> String {
    let mut positions: Vec<String> = (0u8..4)
        .map(|s| format!("{:?}", pool.position(&pid(s))))
        .collect();
    positions.sort();
    format!(
        "price={:?} tick={} liq={} bal={:?} growth={:?} ticks={} pos={:?}",
        pool.sqrt_price(),
        pool.tick(),
        pool.liquidity(),
        pool.balances(),
        pool.fee_growth_global(),
        pool.initialized_tick_count(),
        positions,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn bitmap_engine_matches_btree_oracle(
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        let mut bitmap = Pool::new_standard();
        let mut oracle = Pool::new_standard();
        oracle.set_tick_search(TickSearch::BTreeOracle);
        prop_assert_eq!(bitmap.tick_search(), TickSearch::Bitmap);

        for (i, op) in ops.iter().enumerate() {
            let a = apply(&mut bitmap, op);
            let b = apply(&mut oracle, op);
            prop_assert_eq!(&a, &b, "op {} diverged: {:?}", i, op);
            prop_assert_eq!(state(&bitmap), state(&oracle), "state diverged after op {} {:?}", i, op);
            // the bitmap index must track the tick table exactly
            prop_assert_eq!(
                bitmap.tick_bitmap().initialized_count(),
                bitmap.initialized_tick_count()
            );
        }

        // the incrementally maintained index equals a from-scratch rebuild
        let mut rebuilt = bitmap.clone();
        rebuilt.rebuild_tick_index().unwrap();
        prop_assert_eq!(rebuilt.tick_bitmap(), bitmap.tick_bitmap());
    }

    #[test]
    fn exact_output_and_limits_agree_under_heavy_crossing(
        amount in 1_000_000u128..500_000_000,
        limit_ticks in 60i32..3000,
        zero_for_one in any::<bool>(),
        exact_output in any::<bool>(),
    ) {
        // A laddered pool with many initialized ticks so swaps cross often.
        let build = |search: TickSearch| {
            let mut pool = Pool::new_standard();
            pool.set_tick_search(search);
            for i in -20i32..20 {
                let slot = (i + 20) as u64;
                let id = PositionId::derive(&[b"ladder", &slot.to_be_bytes()]);
                pool.mint(id, Address::from_index(slot), i * 120, (i + 1) * 120, 400_000, 400_000)
                    .ok();
            }
            pool
        };
        let mut bitmap = build(TickSearch::Bitmap);
        let mut oracle = build(TickSearch::BTreeOracle);
        let limit_tick = if zero_for_one { -limit_ticks } else { limit_ticks };
        let limit = Some(sqrt_ratio_at_tick(limit_tick).unwrap());
        let kind = if exact_output {
            SwapKind::ExactOutput(amount)
        } else {
            SwapKind::ExactInput(amount)
        };
        let a = bitmap.swap(zero_for_one, kind, limit);
        let b = oracle.swap(zero_for_one, kind, limit);
        prop_assert_eq!(a, b);
        prop_assert_eq!(state(&bitmap), state(&oracle));
    }
}
