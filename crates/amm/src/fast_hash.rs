//! A tiny multiply-mix hasher for small integer keys (ticks, bitmap word
//! indices).
//!
//! The swap loop probes hash maps keyed by `i16`/`i32` several times per
//! step; SipHash's per-call setup dominates such lookups. This hasher is
//! the fxhash construction (rotate, xor, multiply by a Fibonacci-golden
//! constant): two or three instructions per write, good avalanche in the
//! high bits where `std::collections::HashMap` takes its control bytes.
//! It is *not* DoS-resistant — use it only for maps whose keys come from
//! the engine itself, never for attacker-controlled input.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier: `floor(2^64 / golden_ratio)`, the usual Fibonacci-hashing
/// constant.
const SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// The hasher state. One `u64`, mixed on every write.
#[derive(Clone, Copy, Debug, Default)]
pub struct FastIntHasher(u64);

impl FastIntHasher {
    #[inline]
    fn mix(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(SEED);
    }
}

impl Hasher for FastIntHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback for composite keys: mix 8-byte chunks.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.mix(v as u64);
        self.mix((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_i16(&mut self, v: i16) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_i32(&mut self, v: i32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.mix(v as u64);
    }
}

/// `BuildHasher` for [`FastIntHasher`] maps.
pub type FastIntBuildHasher = BuildHasherDefault<FastIntHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn deterministic_and_key_sensitive() {
        let hash = |v: i32| {
            let mut h = FastIntHasher::default();
            h.write_i32(v);
            h.finish()
        };
        assert_eq!(hash(42), hash(42));
        assert_ne!(hash(42), hash(43));
        assert_ne!(hash(-1), hash(1));
    }

    #[test]
    fn no_collisions_on_tick_domain() {
        // every spacing-60 tick in the full range hashes distinctly
        let mut seen = HashSet::new();
        for t in (-887_220..=887_220).step_by(60) {
            let mut h = FastIntHasher::default();
            h.write_i32(t);
            assert!(seen.insert(h.finish()), "collision at tick {t}");
        }
    }

    #[test]
    fn works_as_hashmap_hasher() {
        let mut m: HashMap<i16, u64, FastIntBuildHasher> = HashMap::default();
        for i in -500i16..500 {
            m.insert(i, i as u64 ^ 0xABCD);
        }
        assert_eq!(m.len(), 1000);
        for i in -500i16..500 {
            assert_eq!(m.get(&i), Some(&(i as u64 ^ 0xABCD)), "key {i}");
        }
    }
}
