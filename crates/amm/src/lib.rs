//! # ammboost-amm
//!
//! A from-scratch Uniswap-V3-style concentrated-liquidity AMM engine — the
//! "original AMM logic" that ammBoost migrates to its sidechain (paper
//! §IV-B). One implementation serves both deployment modes: the mainchain
//! baseline contracts (`ammboost-mainchain`) and the sidechain processor
//! (`ammboost-core`) execute exactly this code, which is what makes the
//! paper's equivalence argument ("same logic, same outcome") testable.
//!
//! Modules:
//! - [`types`] — ticks, liquidity, amounts, position/pool ids.
//! - [`tick_math`] — tick ↔ Q64.96 sqrt-price conversion (derived factors,
//!   no magic constants).
//! - [`sqrt_price_math`] — amount deltas and price movement.
//! - [`liquidity_math`] — amounts → liquidity conversions.
//! - [`swap_math`] — the single-range swap step.
//! - [`tick_bitmap`] — word-packed next-initialized-tick index.
//! - [`fast_hash`] — multiply-mix hashing for integer-keyed hot maps.
//! - [`pool`] — the pool: multi-range swaps, positions, fees, flash loans.
//! - [`positions`] — zero-copy position storage: wire-format records
//!   behind an id index, decoded lazily through a copy-on-write overlay.
//! - [`engines`] — the multi-engine fleet: the [`AmmEngine`] trait over
//!   this pool plus constant-product and weighted geometric-mean engines.
//! - [`tx`] — the transaction vocabulary + paper-calibrated size models.
//!
//! ```
//! use ammboost_amm::pool::{Pool, SwapKind};
//! use ammboost_amm::types::PositionId;
//! use ammboost_crypto::Address;
//!
//! let mut pool = Pool::new_standard(); // 0.3% fee, price 1.0
//! let lp = Address::from_index(1);
//! let id = PositionId::derive(&[b"quickstart"]);
//! pool.mint(id, lp, -600, 600, 1_000_000, 1_000_000)?;
//! let out = pool.swap(true, SwapKind::ExactInput(10_000), None)?;
//! assert!(out.amount_out > 0);
//! # Ok::<(), ammboost_amm::error::AmmError>(())
//! ```

#![warn(missing_docs)]

pub mod engines;
pub mod error;
pub mod fast_hash;
pub mod liquidity_math;
pub mod pool;
pub mod positions;
pub mod sqrt_price_math;
pub mod swap_math;
pub mod tick_bitmap;
pub mod tick_math;
pub mod tx;
pub mod types;

pub use engines::{
    AmmEngine, CpEngine, CpState, Engine, EngineKind, EngineState, PositionInfo, SharePosition,
    WeightedEngine, WeightedState,
};
pub use error::AmmError;
pub use pool::{Pool, Position, PositionValuation, SwapKind, SwapResult, TickSearch};
pub use positions::{PositionRecords, PositionTable, RecordsError, POSITION_RECORD_BYTES};
pub use tick_bitmap::TickBitmap;
pub use types::{Amount, AmountPair, Liquidity, PoolId, PositionId, Tick};
