//! Proportional LP-share bookkeeping shared by the reserve-based engines
//! (constant-product and weighted). Positions are full-range by
//! construction: a position holds `shares` of the pool's total share
//! supply, joins deposit both tokens pro-rata, exits withdraw pro-rata,
//! and accrued swap fees stay inside the reserves (so share value grows
//! in place — the V2/Balancer fee model, unlike the CL engine's
//! per-position fee-growth accounting).

use crate::error::AmmError;
use crate::types::{Amount, AmountPair, PositionId};
use ammboost_crypto::{Address, U256};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One full-range LP position: a share claim plus tokens owed from exits
/// that have not been collected yet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharePosition {
    /// The position owner.
    pub owner: Address,
    /// Shares of the pool's total supply.
    pub shares: u128,
    /// Token0 owed from exits, awaiting collection.
    pub owed0: Amount,
    /// Token1 owed from exits, awaiting collection.
    pub owed1: Amount,
}

/// `floor(a * b / d)` over u128 via 256-bit intermediates.
pub(crate) fn mul_div_u128(a: u128, b: u128, d: u128) -> Result<u128, AmmError> {
    if d == 0 {
        return Err(AmmError::ZeroLiquidity);
    }
    U256::from_u128(a)
        .full_mul(U256::from_u128(b))
        .div_rem_u256(U256::from_u128(d))
        .0
        .to_u256()
        .and_then(|v| v.to_u128())
        .ok_or(AmmError::BalanceOverflow)
}

/// `ceil(a * b / d)` over u128 via 256-bit intermediates.
pub(crate) fn mul_div_ceil_u128(a: u128, b: u128, d: u128) -> Result<u128, AmmError> {
    if d == 0 {
        return Err(AmmError::ZeroLiquidity);
    }
    let (q, r) = U256::from_u128(a)
        .full_mul(U256::from_u128(b))
        .div_rem_u256(U256::from_u128(d));
    let q = q
        .to_u256()
        .and_then(|v| v.to_u128())
        .ok_or(AmmError::BalanceOverflow)?;
    if r.is_zero() {
        Ok(q)
    } else {
        q.checked_add(1).ok_or(AmmError::BalanceOverflow)
    }
}

/// Integer square root of `a * b` (exact floor), used for the initial
/// share issue `sqrt(amount0 * amount1)` — the geometric mean keeps the
/// first LP's share count independent of the price level.
pub(crate) fn geometric_shares(a: u128, b: u128) -> u128 {
    U256::from_u128(a)
        .full_mul(U256::from_u128(b))
        .isqrt()
        .to_u128()
        .expect("isqrt of a 256-bit product fits 128 bits")
}

/// The share ledger of a reserve-based engine.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShareBook {
    positions: BTreeMap<PositionId, SharePosition>,
    total_shares: u128,
}

impl ShareBook {
    /// An empty book.
    pub fn new() -> ShareBook {
        ShareBook::default()
    }

    /// Total outstanding shares.
    pub fn total_shares(&self) -> u128 {
        self.total_shares
    }

    /// Looks up a position.
    pub fn position(&self, id: &PositionId) -> Option<&SharePosition> {
        self.positions.get(id)
    }

    /// All positions, ascending by id.
    pub fn iter(&self) -> impl Iterator<Item = (&PositionId, &SharePosition)> {
        self.positions.iter()
    }

    /// Number of live positions.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the book holds no positions.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Quotes a proportional join against reserves `(r0, r1)`: the shares
    /// issued and the amounts actually taken (never more than desired).
    /// The first join issues `sqrt(a0·a1)` and takes the full budget;
    /// later joins issue `min(a0·S/r0, a1·S/r1)` (floor) and take the
    /// ceil-rounded pro-rata amounts, so the pool never under-collects.
    pub fn quote_join(
        &self,
        r0: Amount,
        r1: Amount,
        a0: Amount,
        a1: Amount,
    ) -> Result<(u128, AmountPair), AmmError> {
        if self.total_shares == 0 {
            let shares = geometric_shares(a0, a1);
            if shares == 0 {
                return Err(AmmError::ZeroLiquidity);
            }
            return Ok((shares, AmountPair::new(a0, a1)));
        }
        if r0 == 0 || r1 == 0 {
            // shares outstanding but a reserve drained to zero: the pool
            // cannot price a proportional join
            return Err(AmmError::InsufficientReserves);
        }
        let shares =
            mul_div_u128(a0, self.total_shares, r0)?.min(mul_div_u128(a1, self.total_shares, r1)?);
        if shares == 0 {
            return Err(AmmError::ZeroLiquidity);
        }
        let used0 = mul_div_ceil_u128(shares, r0, self.total_shares)?;
        let used1 = mul_div_ceil_u128(shares, r1, self.total_shares)?;
        debug_assert!(used0 <= a0 && used1 <= a1, "join cannot exceed budget");
        Ok((shares, AmountPair::new(used0, used1)))
    }

    /// Commits a join quoted at the same reserves. Top-ups must come from
    /// the existing position's owner.
    pub fn join(
        &mut self,
        id: PositionId,
        owner: Address,
        r0: Amount,
        r1: Amount,
        a0: Amount,
        a1: Amount,
    ) -> Result<(u128, AmountPair), AmmError> {
        if let Some(existing) = self.positions.get(&id) {
            if existing.owner != owner {
                return Err(AmmError::NotPositionOwner(id));
            }
        }
        let (shares, used) = self.quote_join(r0, r1, a0, a1)?;
        let pos = self.positions.entry(id).or_insert(SharePosition {
            owner,
            shares: 0,
            owed0: 0,
            owed1: 0,
        });
        pos.shares = pos
            .shares
            .checked_add(shares)
            .ok_or(AmmError::BalanceOverflow)?;
        self.total_shares = self
            .total_shares
            .checked_add(shares)
            .ok_or(AmmError::BalanceOverflow)?;
        Ok((shares, used))
    }

    /// Exits `shares` from a position against reserves `(r0, r1)`: the
    /// pro-rata amounts (floor — the pool keeps the dust) move from the
    /// reserves into the position's owed balance; collection is separate,
    /// mirroring the CL engine's burn → collect flow.
    pub fn exit(
        &mut self,
        id: PositionId,
        owner: Address,
        r0: Amount,
        r1: Amount,
        shares: u128,
    ) -> Result<AmountPair, AmmError> {
        let pos = self
            .positions
            .get_mut(&id)
            .ok_or(AmmError::PositionNotFound(id))?;
        if pos.owner != owner {
            return Err(AmmError::NotPositionOwner(id));
        }
        if shares == 0 {
            return Err(AmmError::ZeroLiquidity);
        }
        if shares > pos.shares {
            return Err(AmmError::InsufficientLiquidity {
                requested: shares,
                available: pos.shares,
            });
        }
        let out0 = mul_div_u128(shares, r0, self.total_shares)?;
        let out1 = mul_div_u128(shares, r1, self.total_shares)?;
        pos.shares -= shares;
        pos.owed0 = pos
            .owed0
            .checked_add(out0)
            .ok_or(AmmError::BalanceOverflow)?;
        pos.owed1 = pos
            .owed1
            .checked_add(out1)
            .ok_or(AmmError::BalanceOverflow)?;
        self.total_shares -= shares;
        Ok(AmountPair::new(out0, out1))
    }

    /// Collects up to the requested amounts of a position's owed tokens;
    /// a fully drained position (no shares, nothing owed) is removed.
    pub fn collect(
        &mut self,
        id: PositionId,
        owner: Address,
        amount0: Amount,
        amount1: Amount,
    ) -> Result<AmountPair, AmmError> {
        let pos = self
            .positions
            .get_mut(&id)
            .ok_or(AmmError::PositionNotFound(id))?;
        if pos.owner != owner {
            return Err(AmmError::NotPositionOwner(id));
        }
        let take0 = amount0.min(pos.owed0);
        let take1 = amount1.min(pos.owed1);
        pos.owed0 -= take0;
        pos.owed1 -= take1;
        if pos.shares == 0 && pos.owed0 == 0 && pos.owed1 == 0 {
            self.positions.remove(&id);
        }
        Ok(AmountPair::new(take0, take1))
    }

    /// Exports `(id, position)` entries ascending by id.
    pub fn to_sorted_entries(&self) -> Vec<(PositionId, SharePosition)> {
        self.positions.iter().map(|(id, p)| (*id, *p)).collect()
    }

    /// Rebuilds a book from sorted entries, recomputing the share total.
    pub fn from_entries(entries: Vec<(PositionId, SharePosition)>) -> ShareBook {
        let total_shares = entries.iter().map(|(_, p)| p.shares).sum();
        ShareBook {
            positions: entries.into_iter().collect(),
            total_shares,
        }
    }

    /// Sum of owed token amounts across all positions.
    pub fn owed_totals(&self) -> AmountPair {
        let mut owed0 = 0u128;
        let mut owed1 = 0u128;
        for p in self.positions.values() {
            owed0 += p.owed0;
            owed1 += p.owed1;
        }
        AmountPair::new(owed0, owed1)
    }
}
