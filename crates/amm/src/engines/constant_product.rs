//! Constant-product (Uniswap-V2-style) engine: `x · y = k`, full-range
//! proportional LP shares, fees folded into the reserves.
//!
//! The swap surface keeps the CL engine's compute/commit split: every
//! quote runs the exact staged computation the write path commits, so a
//! `QuoteView` serving a constant-product pool is bit-identical to
//! execution by construction. The [`reference`] module re-derives both
//! swap directions from the `k`-complement identity — a genuinely
//! different integer computation that provably produces the same bits —
//! and is the engine's differential oracle.

use super::shares::{mul_div_ceil_u128, mul_div_u128, ShareBook, SharePosition};
use super::spot_sqrt_price_q96;
use crate::error::AmmError;
use crate::pool::{PositionValuation, SwapKind, SwapResult};
use crate::types::{Amount, AmountPair, PositionId, PIPS_DENOMINATOR};
use ammboost_crypto::{Address, U256};
use serde::{Deserialize, Serialize};

/// The staged outcome of a constant-product swap: everything the commit
/// step writes plus the trader-facing totals.
#[derive(Clone, Copy, Debug)]
struct CpPlan {
    amount_in: Amount,
    amount_out: Amount,
    fee_paid: Amount,
    reserve0: Amount,
    reserve1: Amount,
}

/// A constant-product pool.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CpEngine {
    fee_pips: u32,
    reserve0: Amount,
    reserve1: Amount,
    book: ShareBook,
}

/// Serializable constant-product engine state: the reserves plus the
/// sorted share ledger. The share total is derived, not shipped.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpState {
    /// Swap fee in pips.
    pub fee_pips: u32,
    /// Token0 trading reserve.
    pub reserve0: Amount,
    /// Token1 trading reserve.
    pub reserve1: Amount,
    /// LP positions, ascending by id.
    pub positions: Vec<(PositionId, SharePosition)>,
}

impl CpEngine {
    /// Creates an empty pool with the given fee.
    ///
    /// # Errors
    /// [`AmmError::InvalidFee`] at or above 100%.
    pub fn new(fee_pips: u32) -> Result<CpEngine, AmmError> {
        if fee_pips >= PIPS_DENOMINATOR {
            return Err(AmmError::InvalidFee(fee_pips));
        }
        Ok(CpEngine {
            fee_pips,
            reserve0: 0,
            reserve1: 0,
            book: ShareBook::new(),
        })
    }

    /// An empty pool with the 0.3% fee tier, matching
    /// [`Pool::new_standard`](crate::pool::Pool::new_standard).
    pub fn new_standard() -> CpEngine {
        CpEngine::new(3000).expect("standard fee is valid")
    }

    /// Swap fee in pips.
    pub fn fee_pips(&self) -> u32 {
        self.fee_pips
    }

    /// Trading reserves `(reserve0, reserve1)` — fee income included,
    /// owed-but-uncollected exit principal excluded.
    pub fn reserves(&self) -> AmountPair {
        AmountPair::new(self.reserve0, self.reserve1)
    }

    /// Pool token balances: reserves plus everything owed to LPs.
    pub fn balances(&self) -> AmountPair {
        let owed = self.book.owed_totals();
        AmountPair::new(self.reserve0 + owed.amount0, self.reserve1 + owed.amount1)
    }

    /// The share ledger.
    pub fn book(&self) -> &ShareBook {
        &self.book
    }

    /// Spot sqrt price `sqrt(reserve1 / reserve0)` in Q64.96.
    ///
    /// # Errors
    /// Fails while either reserve is empty (no price yet).
    pub fn sqrt_price(&self) -> Result<U256, AmmError> {
        spot_sqrt_price_q96(
            U256::from_u128(self.reserve1),
            U256::from_u128(self.reserve0),
        )
    }

    // ---- liquidity -------------------------------------------------------

    /// Quotes a proportional join; tick arguments are accepted for
    /// surface compatibility and ignored (positions are full-range).
    ///
    /// # Errors
    /// Mirrors [`ShareBook::quote_join`].
    pub fn quote_mint(
        &self,
        amount0_desired: Amount,
        amount1_desired: Amount,
    ) -> Result<(u128, AmountPair), AmmError> {
        self.book.quote_join(
            self.reserve0,
            self.reserve1,
            amount0_desired,
            amount1_desired,
        )
    }

    /// Joins the pool: issues shares for a two-token deposit.
    ///
    /// # Errors
    /// Mirrors [`ShareBook::join`].
    pub fn mint(
        &mut self,
        id: PositionId,
        owner: Address,
        amount0_desired: Amount,
        amount1_desired: Amount,
    ) -> Result<(u128, AmountPair), AmmError> {
        let (shares, used) = self.book.join(
            id,
            owner,
            self.reserve0,
            self.reserve1,
            amount0_desired,
            amount1_desired,
        )?;
        self.reserve0 = self
            .reserve0
            .checked_add(used.amount0)
            .ok_or(AmmError::BalanceOverflow)?;
        self.reserve1 = self
            .reserve1
            .checked_add(used.amount1)
            .ok_or(AmmError::BalanceOverflow)?;
        Ok((shares, used))
    }

    /// Burns shares: pro-rata principal moves from the reserves into the
    /// position's owed balance (collected separately, like the CL flow).
    ///
    /// # Errors
    /// Mirrors [`ShareBook::exit`].
    pub fn burn(
        &mut self,
        id: PositionId,
        owner: Address,
        shares: u128,
    ) -> Result<AmountPair, AmmError> {
        let out = self
            .book
            .exit(id, owner, self.reserve0, self.reserve1, shares)?;
        self.reserve0 = self
            .reserve0
            .checked_sub(out.amount0)
            .ok_or(AmmError::PoolInsolvent)?;
        self.reserve1 = self
            .reserve1
            .checked_sub(out.amount1)
            .ok_or(AmmError::PoolInsolvent)?;
        Ok(out)
    }

    /// Collects owed tokens out of the pool.
    ///
    /// # Errors
    /// Mirrors [`ShareBook::collect`].
    pub fn collect(
        &mut self,
        id: PositionId,
        owner: Address,
        amount0_requested: Amount,
        amount1_requested: Amount,
    ) -> Result<AmountPair, AmmError> {
        self.book
            .collect(id, owner, amount0_requested, amount1_requested)
    }

    /// Values a position read-only: the principal its shares would redeem
    /// if burned now (rounded down, exactly as [`CpEngine::burn`] credits
    /// it) plus tokens already owed.
    ///
    /// # Errors
    /// Fails on an unknown position id.
    pub fn value_position(&self, id: &PositionId) -> Result<PositionValuation, AmmError> {
        let pos = self
            .book
            .position(id)
            .ok_or(AmmError::PositionNotFound(*id))?;
        let principal = if pos.shares == 0 {
            AmountPair::ZERO
        } else {
            AmountPair::new(
                mul_div_u128(pos.shares, self.reserve0, self.book.total_shares())?,
                mul_div_u128(pos.shares, self.reserve1, self.book.total_shares())?,
            )
        };
        Ok(PositionValuation {
            principal,
            owed: AmountPair::new(pos.owed0, pos.owed1),
        })
    }

    // ---- swaps -----------------------------------------------------------

    /// Read-only staged computation shared by the quote and write paths.
    fn compute_swap(
        &self,
        zero_for_one: bool,
        kind: SwapKind,
        sqrt_price_limit: Option<U256>,
        min_amount_out: Amount,
        max_amount_in: Amount,
    ) -> Result<CpPlan, AmmError> {
        if sqrt_price_limit.is_some() {
            // reserve-pair engines have no tick grid to bound a price walk
            return Err(AmmError::InvalidPriceLimit);
        }
        if self.reserve0 == 0 || self.reserve1 == 0 {
            return Err(AmmError::InsufficientReserves);
        }
        let (r_in, r_out) = if zero_for_one {
            (self.reserve0, self.reserve1)
        } else {
            (self.reserve1, self.reserve0)
        };
        let (amount_in, amount_out, fee_paid) = match kind {
            SwapKind::ExactInput(amount) => {
                if amount == 0 {
                    return Err(AmmError::ZeroAmount);
                }
                let fee =
                    mul_div_ceil_u128(amount, self.fee_pips as u128, PIPS_DENOMINATOR as u128)?;
                let in_eff = amount - fee;
                if in_eff == 0 {
                    return Err(AmmError::ZeroAmount);
                }
                let denom = r_in.checked_add(in_eff).ok_or(AmmError::BalanceOverflow)?;
                let out = mul_div_u128(in_eff, r_out, denom)?;
                (amount, out, fee)
            }
            SwapKind::ExactOutput(amount) => {
                if amount == 0 {
                    return Err(AmmError::ZeroAmount);
                }
                if amount >= r_out {
                    return Err(AmmError::InsufficientLiquidity {
                        requested: amount,
                        available: r_out,
                    });
                }
                let in_eff = mul_div_ceil_u128(amount, r_in, r_out - amount)?;
                let gross = mul_div_ceil_u128(
                    in_eff,
                    PIPS_DENOMINATOR as u128,
                    (PIPS_DENOMINATOR - self.fee_pips) as u128,
                )?;
                (gross, amount, gross - in_eff)
            }
        };
        if amount_out < min_amount_out || amount_in > max_amount_in {
            return Err(AmmError::SlippageExceeded {
                amount_in,
                amount_out,
            });
        }
        let (reserve0, reserve1) = if zero_for_one {
            (
                self.reserve0
                    .checked_add(amount_in)
                    .ok_or(AmmError::BalanceOverflow)?,
                self.reserve1 - amount_out,
            )
        } else {
            (
                self.reserve0 - amount_out,
                self.reserve1
                    .checked_add(amount_in)
                    .ok_or(AmmError::BalanceOverflow)?,
            )
        };
        Ok(CpPlan {
            amount_in,
            amount_out,
            fee_paid,
            reserve0,
            reserve1,
        })
    }

    fn result_from_plan(plan: CpPlan) -> Result<SwapResult, AmmError> {
        Ok(SwapResult {
            amount_in: plan.amount_in,
            amount_out: plan.amount_out,
            fee_paid: plan.fee_paid,
            sqrt_price_after: spot_sqrt_price_q96(
                U256::from_u128(plan.reserve1),
                U256::from_u128(plan.reserve0),
            )?,
            tick_after: 0,
            ticks_crossed: 0,
        })
    }

    /// Quotes a swap without touching state — the exact [`SwapResult`]
    /// [`CpEngine::swap_with_protection`] would produce right now.
    ///
    /// # Errors
    /// Identical to [`CpEngine::swap_with_protection`].
    pub fn quote_swap_with_protection(
        &self,
        zero_for_one: bool,
        kind: SwapKind,
        sqrt_price_limit: Option<U256>,
        min_amount_out: Amount,
        max_amount_in: Amount,
    ) -> Result<SwapResult, AmmError> {
        let plan = self.compute_swap(
            zero_for_one,
            kind,
            sqrt_price_limit,
            min_amount_out,
            max_amount_in,
        )?;
        Self::result_from_plan(plan)
    }

    /// Executes a swap with the trader's slippage bounds enforced before
    /// committing. The gross input (fee included) enters the in-side
    /// reserve — fees accrue to all LPs in place, V2-style.
    ///
    /// # Errors
    /// [`AmmError::SlippageExceeded`] on a violated bound (state
    /// untouched), [`AmmError::InsufficientLiquidity`] on an unfillable
    /// exact-output request, plus budget/reserve validation errors.
    pub fn swap_with_protection(
        &mut self,
        zero_for_one: bool,
        kind: SwapKind,
        sqrt_price_limit: Option<U256>,
        min_amount_out: Amount,
        max_amount_in: Amount,
    ) -> Result<SwapResult, AmmError> {
        let plan = self.compute_swap(
            zero_for_one,
            kind,
            sqrt_price_limit,
            min_amount_out,
            max_amount_in,
        )?;
        let result = Self::result_from_plan(plan)?;
        // ---- commit ----
        self.reserve0 = plan.reserve0;
        self.reserve1 = plan.reserve1;
        Ok(result)
    }

    // ---- state -----------------------------------------------------------

    /// Exports deterministic, serializable state.
    pub fn export_state(&self) -> CpState {
        CpState {
            fee_pips: self.fee_pips,
            reserve0: self.reserve0,
            reserve1: self.reserve1,
            positions: self.book.to_sorted_entries(),
        }
    }

    /// Rebuilds an engine from exported state.
    ///
    /// # Errors
    /// [`AmmError::InvalidFee`] on an out-of-range fee.
    pub fn from_state(state: CpState) -> Result<CpEngine, AmmError> {
        if state.fee_pips >= PIPS_DENOMINATOR {
            return Err(AmmError::InvalidFee(state.fee_pips));
        }
        Ok(CpEngine {
            fee_pips: state.fee_pips,
            reserve0: state.reserve0,
            reserve1: state.reserve1,
            book: ShareBook::from_entries(state.positions),
        })
    }
}

/// Naive reference implementation used as the differential oracle.
///
/// Both swap directions are re-derived from the invariant product
/// `k = r_in · r_out` via the complement identities
///
/// ```text
/// floor(x·r_out / (r_in + x))  =  r_out − ceil(k / (r_in + x))
/// ceil(out·r_in / (r_out − out))  =  ceil(k / (r_out − out)) − r_in
/// ```
///
/// (both exact over the integers), so the oracle computes the same bits
/// through a genuinely different sequence of operations — the pattern the
/// tick-bitmap work established with `TickSearch::BTreeOracle`.
pub mod reference {
    use super::*;

    /// `ceil(k / d)` with `k = r_in · r_out` as a 256-bit product.
    fn ceil_k_over(r_in: Amount, r_out: Amount, d: Amount) -> Result<u128, AmmError> {
        if d == 0 {
            return Err(AmmError::ZeroLiquidity);
        }
        let (q, rem) = U256::from_u128(r_in)
            .full_mul(U256::from_u128(r_out))
            .div_rem_u256(U256::from_u128(d));
        let q = q
            .to_u256()
            .and_then(|v| v.to_u128())
            .ok_or(AmmError::BalanceOverflow)?;
        if rem.is_zero() {
            Ok(q)
        } else {
            q.checked_add(1).ok_or(AmmError::BalanceOverflow)
        }
    }

    /// Output for an effective (post-fee) input, via the `k` complement.
    ///
    /// # Errors
    /// Overflow of the widened arithmetic.
    pub fn out_given_in(r_in: Amount, r_out: Amount, in_eff: Amount) -> Result<Amount, AmmError> {
        let denom = r_in.checked_add(in_eff).ok_or(AmmError::BalanceOverflow)?;
        Ok(r_out - ceil_k_over(r_in, r_out, denom)?)
    }

    /// Effective (pre-fee-gross-up) input for an exact output, via the
    /// `k` complement.
    ///
    /// # Errors
    /// [`AmmError::InsufficientLiquidity`] when `out ≥ r_out`.
    pub fn in_given_out(r_in: Amount, r_out: Amount, out: Amount) -> Result<Amount, AmmError> {
        if out >= r_out {
            return Err(AmmError::InsufficientLiquidity {
                requested: out,
                available: r_out,
            });
        }
        Ok(ceil_k_over(r_in, r_out, r_out - out)? - r_in)
    }

    /// Full reference quote: `(amount_in, amount_out, fee_paid)` for a
    /// swap against reserves `(r_in, r_out)`, with the engine's fee
    /// schedule applied around the `k`-complement curve math.
    ///
    /// # Errors
    /// Mirrors the engine's validation.
    pub fn quote(
        r_in: Amount,
        r_out: Amount,
        kind: SwapKind,
        fee_pips: u32,
    ) -> Result<(Amount, Amount, Amount), AmmError> {
        if r_in == 0 || r_out == 0 {
            return Err(AmmError::InsufficientReserves);
        }
        match kind {
            SwapKind::ExactInput(amount) => {
                if amount == 0 {
                    return Err(AmmError::ZeroAmount);
                }
                let fee = mul_div_ceil_u128(amount, fee_pips as u128, PIPS_DENOMINATOR as u128)?;
                let in_eff = amount - fee;
                if in_eff == 0 {
                    return Err(AmmError::ZeroAmount);
                }
                Ok((amount, out_given_in(r_in, r_out, in_eff)?, fee))
            }
            SwapKind::ExactOutput(amount) => {
                if amount == 0 {
                    return Err(AmmError::ZeroAmount);
                }
                let in_eff = in_given_out(r_in, r_out, amount)?;
                let gross = mul_div_ceil_u128(
                    in_eff,
                    PIPS_DENOMINATOR as u128,
                    (PIPS_DENOMINATOR - fee_pips) as u128,
                )?;
                Ok((gross, amount, gross - in_eff))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded() -> CpEngine {
        let mut e = CpEngine::new_standard();
        e.mint(
            PositionId::derive(&[b"cp-seed"]),
            Address::from_index(1),
            4_000_000_000_000_000,
            4_000_000_000_000_000,
        )
        .unwrap();
        e
    }

    #[test]
    fn initial_mint_issues_geometric_shares() {
        let e = seeded();
        assert_eq!(e.book().total_shares(), 4_000_000_000_000_000);
        assert_eq!(
            e.reserves(),
            AmountPair::new(4_000_000_000_000_000, 4_000_000_000_000_000)
        );
    }

    #[test]
    fn swap_conserves_k_net_of_fees() {
        let mut e = seeded();
        let before = e.reserves();
        let k_before = U256::from_u128(before.amount0).full_mul(U256::from_u128(before.amount1));
        let r = e
            .swap_with_protection(
                true,
                SwapKind::ExactInput(1_000_000_000),
                None,
                0,
                u128::MAX,
            )
            .unwrap();
        assert!(r.amount_out > 0 && r.fee_paid > 0);
        let after = e.reserves();
        let k_after = U256::from_u128(after.amount0).full_mul(U256::from_u128(after.amount1));
        assert!(k_after >= k_before, "k must not decrease");
    }

    #[test]
    fn quote_equals_execution() {
        let e = seeded();
        let q = e
            .quote_swap_with_protection(
                false,
                SwapKind::ExactOutput(123_456_789),
                None,
                0,
                u128::MAX,
            )
            .unwrap();
        let mut w = e.clone();
        let x = w
            .swap_with_protection(
                false,
                SwapKind::ExactOutput(123_456_789),
                None,
                0,
                u128::MAX,
            )
            .unwrap();
        assert_eq!(q, x);
    }

    #[test]
    fn exact_output_round_trips_through_exact_input() {
        let e = seeded();
        let out = 987_654_321u128;
        let q = e
            .quote_swap_with_protection(true, SwapKind::ExactOutput(out), None, 0, u128::MAX)
            .unwrap();
        assert_eq!(q.amount_out, out);
        // paying the quoted input must deliver at least the requested output
        let fwd = e
            .quote_swap_with_protection(true, SwapKind::ExactInput(q.amount_in), None, 0, u128::MAX)
            .unwrap();
        assert!(fwd.amount_out >= out);
    }

    #[test]
    fn slippage_protection_fires_atomically() {
        let mut e = seeded();
        let before = e.export_state();
        let err = e
            .swap_with_protection(
                true,
                SwapKind::ExactInput(1_000_000),
                None,
                u128::MAX,
                u128::MAX,
            )
            .unwrap_err();
        assert!(matches!(err, AmmError::SlippageExceeded { .. }));
        assert_eq!(e.export_state(), before);
    }

    #[test]
    fn burn_then_collect_returns_principal() {
        let mut e = seeded();
        let id = PositionId::derive(&[b"cp-seed"]);
        let owner = Address::from_index(1);
        let out = e.burn(id, owner, 2_000_000_000_000_000).unwrap();
        assert_eq!(
            out,
            AmountPair::new(2_000_000_000_000_000, 2_000_000_000_000_000)
        );
        // principal sits in owed until collected; balances still include it
        assert_eq!(
            e.balances(),
            AmountPair::new(4_000_000_000_000_000, 4_000_000_000_000_000)
        );
        let got = e.collect(id, owner, u128::MAX, u128::MAX).unwrap();
        assert_eq!(got, out);
        assert_eq!(
            e.balances(),
            AmountPair::new(2_000_000_000_000_000, 2_000_000_000_000_000)
        );
    }

    #[test]
    fn price_limit_rejected() {
        let e = seeded();
        assert_eq!(
            e.quote_swap_with_protection(
                true,
                SwapKind::ExactInput(1_000),
                Some(U256::pow2(96)),
                0,
                u128::MAX
            ),
            Err(AmmError::InvalidPriceLimit)
        );
    }

    #[test]
    fn state_roundtrip_is_lossless() {
        let mut e = seeded();
        e.swap_with_protection(true, SwapKind::ExactInput(7_777_777), None, 0, u128::MAX)
            .unwrap();
        let state = e.export_state();
        let rebuilt = CpEngine::from_state(state.clone()).unwrap();
        assert_eq!(rebuilt, e);
        assert_eq!(rebuilt.export_state(), state);
    }

    #[test]
    fn reference_identities_match_engine() {
        let e = seeded();
        for (i, amount) in [1_000u128, 999_983, 1_000_000_007, 123_456_789_123]
            .iter()
            .enumerate()
        {
            let zf1 = i % 2 == 0;
            let (r_in, r_out) = if zf1 {
                (e.reserves().amount0, e.reserves().amount1)
            } else {
                (e.reserves().amount1, e.reserves().amount0)
            };
            for kind in [
                SwapKind::ExactInput(*amount),
                SwapKind::ExactOutput(*amount),
            ] {
                let got = e
                    .quote_swap_with_protection(zf1, kind, None, 0, u128::MAX)
                    .unwrap();
                let (ain, aout, fee) = reference::quote(r_in, r_out, kind, e.fee_pips()).unwrap();
                assert_eq!(
                    (got.amount_in, got.amount_out, got.fee_paid),
                    (ain, aout, fee)
                );
            }
        }
    }
}
