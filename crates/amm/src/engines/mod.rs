//! The multi-engine subsystem: one functional interface over several AMM
//! designs.
//!
//! The AMM-theory literature (Bartoletti et al.) frames every AMM as an
//! instance of one interface — a swap function, a liquidity join/exit,
//! and an invariant. [`AmmEngine`] is that interface here: the
//! concentrated-liquidity [`Pool`] implements it natively, and this
//! module adds two reserve-pair instances, the constant-product
//! [`CpEngine`] and the weighted geometric-mean [`WeightedEngine`].
//! Every implementation preserves the compute/commit swap split, so a
//! quote view over any engine is bit-identical to execution.
//!
//! [`Engine`] is the closed sum of the three — what heterogeneous shards
//! actually hold — with [`EngineState`] as its tagged serializable form
//! (the snapshot codec writes the [`EngineKind`] tag ahead of each pool
//! section).

use crate::error::AmmError;
use crate::pool::{Pool, PoolState, PositionValuation, SwapKind, SwapResult, TickSearch};
use crate::types::{Amount, AmountPair, Liquidity, PositionId, Tick};
use ammboost_crypto::{Address, U256};
use serde::{Deserialize, Serialize};

pub mod bmath;
pub mod constant_product;
pub mod shares;
pub mod weighted;

pub use constant_product::{CpEngine, CpState};
pub use shares::{ShareBook, SharePosition};
pub use weighted::{WeightedEngine, WeightedState};

/// Which AMM design a pool runs. The discriminants are the on-wire
/// section tags of the snapshot codec — stable, never reused.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EngineKind {
    /// Uniswap-v3-style concentrated liquidity (tick grid, ranged
    /// positions, per-position fee growth).
    ConcentratedLiquidity,
    /// Uniswap-v2-style constant product (full-range shares, fees folded
    /// into reserves).
    ConstantProduct,
    /// Balancer-style weighted geometric mean (fixed-point pow pricing).
    Weighted,
}

impl EngineKind {
    /// The stable on-wire tag.
    pub fn tag(self) -> u8 {
        match self {
            EngineKind::ConcentratedLiquidity => 0,
            EngineKind::ConstantProduct => 1,
            EngineKind::Weighted => 2,
        }
    }

    /// Decodes an on-wire tag.
    pub fn from_tag(tag: u8) -> Option<EngineKind> {
        match tag {
            0 => Some(EngineKind::ConcentratedLiquidity),
            1 => Some(EngineKind::ConstantProduct),
            2 => Some(EngineKind::Weighted),
            _ => None,
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EngineKind::ConcentratedLiquidity => "cl",
            EngineKind::ConstantProduct => "cp",
            EngineKind::Weighted => "weighted",
        })
    }
}

/// An engine-agnostic view of one liquidity position — the common
/// denominator the sidechain processor needs for coverage checks and
/// epoch summaries. Share-based engines report their share count as
/// `liquidity`, a zero tick range, and zero fee-growth snapshots (their
/// fees accrue in the reserves, not per position).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PositionInfo {
    /// The owner's address.
    pub owner: Address,
    /// Lower tick of the active range (0 for full-range share engines).
    pub tick_lower: Tick,
    /// Upper tick of the active range (0 for full-range share engines).
    pub tick_upper: Tick,
    /// Liquidity (CL) or pool shares (reserve-pair engines).
    pub liquidity: Liquidity,
    /// Token0 owed to the owner.
    pub tokens_owed0: Amount,
    /// Token1 owed to the owner.
    pub tokens_owed1: Amount,
    /// Fee growth inside the range at last touch, token0 (Q128; zero for
    /// share engines).
    pub fee_growth_inside0_last: U256,
    /// Fee growth inside the range at last touch, token1 (Q128; zero for
    /// share engines).
    pub fee_growth_inside1_last: U256,
}

/// The common swap/mint/burn/quote surface of every AMM engine.
///
/// Mutating operations are atomic (state untouched on error), quotes are
/// read-only and bit-identical to the execution they predict, and tick
/// arguments are interpreted by ranged engines and ignored by full-range
/// ones — callers pass them through unconditionally.
pub trait AmmEngine {
    /// Which design this engine runs.
    fn kind(&self) -> EngineKind;

    /// Pool token balances (token0, token1), owed amounts included.
    fn balances(&self) -> AmountPair;

    /// Engine-agnostic view of one position.
    fn position_info(&self, id: &PositionId) -> Option<PositionInfo>;

    /// Ids of all live positions. No ordering guarantee — sort if order
    /// matters.
    fn position_ids(&self) -> Vec<PositionId>;

    /// Number of live positions.
    fn position_count(&self) -> usize;

    /// Quotes a mint without touching state.
    ///
    /// # Errors
    /// Engine-specific validation; zero resulting liquidity always fails.
    fn quote_mint(
        &self,
        tick_lower: Tick,
        tick_upper: Tick,
        amount0_desired: Amount,
        amount1_desired: Amount,
    ) -> Result<(Liquidity, AmountPair), AmmError>;

    /// Mints liquidity from a two-token budget, returning the liquidity
    /// (or shares) created and the amounts actually taken.
    ///
    /// # Errors
    /// Engine-specific validation; owner mismatch on an existing
    /// position always fails.
    fn mint(
        &mut self,
        id: PositionId,
        owner: Address,
        tick_lower: Tick,
        tick_upper: Tick,
        amount0_desired: Amount,
        amount1_desired: Amount,
    ) -> Result<(Liquidity, AmountPair), AmmError>;

    /// Burns liquidity; principal is credited to the position's owed
    /// balance, withdrawn later via [`AmmEngine::collect`].
    ///
    /// # Errors
    /// Unknown position, wrong owner, or over-burn.
    fn burn(
        &mut self,
        id: PositionId,
        owner: Address,
        liquidity: Liquidity,
    ) -> Result<AmountPair, AmmError>;

    /// Collects owed tokens (capped at what is owed) out of the pool.
    ///
    /// # Errors
    /// Unknown position or wrong owner.
    fn collect(
        &mut self,
        id: PositionId,
        owner: Address,
        amount0_requested: Amount,
        amount1_requested: Amount,
    ) -> Result<AmountPair, AmmError>;

    /// Executes a swap with slippage bounds enforced before committing.
    ///
    /// # Errors
    /// [`AmmError::SlippageExceeded`] on a violated bound (state
    /// untouched) plus engine-specific validation.
    fn swap_with_protection(
        &mut self,
        zero_for_one: bool,
        kind: SwapKind,
        sqrt_price_limit: Option<U256>,
        min_amount_out: Amount,
        max_amount_in: Amount,
    ) -> Result<SwapResult, AmmError>;

    /// Read-only variant of [`AmmEngine::swap_with_protection`]: the
    /// exact [`SwapResult`] execution would produce right now.
    ///
    /// # Errors
    /// Identical to [`AmmEngine::swap_with_protection`].
    fn quote_swap_with_protection(
        &self,
        zero_for_one: bool,
        kind: SwapKind,
        sqrt_price_limit: Option<U256>,
        min_amount_out: Amount,
        max_amount_in: Amount,
    ) -> Result<SwapResult, AmmError>;

    /// Values a position at the current price, read-only.
    ///
    /// # Errors
    /// Unknown position id.
    fn value_position(&self, id: &PositionId) -> Result<PositionValuation, AmmError>;
}

impl AmmEngine for Pool {
    fn kind(&self) -> EngineKind {
        EngineKind::ConcentratedLiquidity
    }

    fn balances(&self) -> AmountPair {
        Pool::balances(self)
    }

    fn position_info(&self, id: &PositionId) -> Option<PositionInfo> {
        self.position(id).map(|p| PositionInfo {
            owner: p.owner,
            tick_lower: p.tick_lower,
            tick_upper: p.tick_upper,
            liquidity: p.liquidity,
            tokens_owed0: p.tokens_owed0,
            tokens_owed1: p.tokens_owed1,
            fee_growth_inside0_last: p.fee_growth_inside0_last,
            fee_growth_inside1_last: p.fee_growth_inside1_last,
        })
    }

    fn position_ids(&self) -> Vec<PositionId> {
        self.positions().map(|(id, _)| id).collect()
    }

    fn position_count(&self) -> usize {
        Pool::position_count(self)
    }

    fn quote_mint(
        &self,
        tick_lower: Tick,
        tick_upper: Tick,
        amount0_desired: Amount,
        amount1_desired: Amount,
    ) -> Result<(Liquidity, AmountPair), AmmError> {
        Pool::quote_mint(
            self,
            tick_lower,
            tick_upper,
            amount0_desired,
            amount1_desired,
        )
    }

    fn mint(
        &mut self,
        id: PositionId,
        owner: Address,
        tick_lower: Tick,
        tick_upper: Tick,
        amount0_desired: Amount,
        amount1_desired: Amount,
    ) -> Result<(Liquidity, AmountPair), AmmError> {
        Pool::mint(
            self,
            id,
            owner,
            tick_lower,
            tick_upper,
            amount0_desired,
            amount1_desired,
        )
    }

    fn burn(
        &mut self,
        id: PositionId,
        owner: Address,
        liquidity: Liquidity,
    ) -> Result<AmountPair, AmmError> {
        Pool::burn(self, id, owner, liquidity)
    }

    fn collect(
        &mut self,
        id: PositionId,
        owner: Address,
        amount0_requested: Amount,
        amount1_requested: Amount,
    ) -> Result<AmountPair, AmmError> {
        Pool::collect(self, id, owner, amount0_requested, amount1_requested)
    }

    fn swap_with_protection(
        &mut self,
        zero_for_one: bool,
        kind: SwapKind,
        sqrt_price_limit: Option<U256>,
        min_amount_out: Amount,
        max_amount_in: Amount,
    ) -> Result<SwapResult, AmmError> {
        Pool::swap_with_protection(
            self,
            zero_for_one,
            kind,
            sqrt_price_limit,
            min_amount_out,
            max_amount_in,
        )
    }

    fn quote_swap_with_protection(
        &self,
        zero_for_one: bool,
        kind: SwapKind,
        sqrt_price_limit: Option<U256>,
        min_amount_out: Amount,
        max_amount_in: Amount,
    ) -> Result<SwapResult, AmmError> {
        Pool::quote_swap_with_protection(
            self,
            zero_for_one,
            kind,
            sqrt_price_limit,
            min_amount_out,
            max_amount_in,
        )
    }

    fn value_position(&self, id: &PositionId) -> Result<PositionValuation, AmmError> {
        Pool::value_position(self, id)
    }
}

impl AmmEngine for CpEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::ConstantProduct
    }

    fn balances(&self) -> AmountPair {
        CpEngine::balances(self)
    }

    fn position_info(&self, id: &PositionId) -> Option<PositionInfo> {
        self.book().position(id).map(share_position_info)
    }

    fn position_ids(&self) -> Vec<PositionId> {
        self.book().iter().map(|(id, _)| *id).collect()
    }

    fn position_count(&self) -> usize {
        self.book().len()
    }

    fn quote_mint(
        &self,
        _tick_lower: Tick,
        _tick_upper: Tick,
        amount0_desired: Amount,
        amount1_desired: Amount,
    ) -> Result<(Liquidity, AmountPair), AmmError> {
        CpEngine::quote_mint(self, amount0_desired, amount1_desired)
    }

    fn mint(
        &mut self,
        id: PositionId,
        owner: Address,
        _tick_lower: Tick,
        _tick_upper: Tick,
        amount0_desired: Amount,
        amount1_desired: Amount,
    ) -> Result<(Liquidity, AmountPair), AmmError> {
        CpEngine::mint(self, id, owner, amount0_desired, amount1_desired)
    }

    fn burn(
        &mut self,
        id: PositionId,
        owner: Address,
        liquidity: Liquidity,
    ) -> Result<AmountPair, AmmError> {
        CpEngine::burn(self, id, owner, liquidity)
    }

    fn collect(
        &mut self,
        id: PositionId,
        owner: Address,
        amount0_requested: Amount,
        amount1_requested: Amount,
    ) -> Result<AmountPair, AmmError> {
        CpEngine::collect(self, id, owner, amount0_requested, amount1_requested)
    }

    fn swap_with_protection(
        &mut self,
        zero_for_one: bool,
        kind: SwapKind,
        sqrt_price_limit: Option<U256>,
        min_amount_out: Amount,
        max_amount_in: Amount,
    ) -> Result<SwapResult, AmmError> {
        CpEngine::swap_with_protection(
            self,
            zero_for_one,
            kind,
            sqrt_price_limit,
            min_amount_out,
            max_amount_in,
        )
    }

    fn quote_swap_with_protection(
        &self,
        zero_for_one: bool,
        kind: SwapKind,
        sqrt_price_limit: Option<U256>,
        min_amount_out: Amount,
        max_amount_in: Amount,
    ) -> Result<SwapResult, AmmError> {
        CpEngine::quote_swap_with_protection(
            self,
            zero_for_one,
            kind,
            sqrt_price_limit,
            min_amount_out,
            max_amount_in,
        )
    }

    fn value_position(&self, id: &PositionId) -> Result<PositionValuation, AmmError> {
        CpEngine::value_position(self, id)
    }
}

impl AmmEngine for WeightedEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Weighted
    }

    fn balances(&self) -> AmountPair {
        WeightedEngine::balances(self)
    }

    fn position_info(&self, id: &PositionId) -> Option<PositionInfo> {
        self.book().position(id).map(share_position_info)
    }

    fn position_ids(&self) -> Vec<PositionId> {
        self.book().iter().map(|(id, _)| *id).collect()
    }

    fn position_count(&self) -> usize {
        self.book().len()
    }

    fn quote_mint(
        &self,
        _tick_lower: Tick,
        _tick_upper: Tick,
        amount0_desired: Amount,
        amount1_desired: Amount,
    ) -> Result<(Liquidity, AmountPair), AmmError> {
        WeightedEngine::quote_mint(self, amount0_desired, amount1_desired)
    }

    fn mint(
        &mut self,
        id: PositionId,
        owner: Address,
        _tick_lower: Tick,
        _tick_upper: Tick,
        amount0_desired: Amount,
        amount1_desired: Amount,
    ) -> Result<(Liquidity, AmountPair), AmmError> {
        WeightedEngine::mint(self, id, owner, amount0_desired, amount1_desired)
    }

    fn burn(
        &mut self,
        id: PositionId,
        owner: Address,
        liquidity: Liquidity,
    ) -> Result<AmountPair, AmmError> {
        WeightedEngine::burn(self, id, owner, liquidity)
    }

    fn collect(
        &mut self,
        id: PositionId,
        owner: Address,
        amount0_requested: Amount,
        amount1_requested: Amount,
    ) -> Result<AmountPair, AmmError> {
        WeightedEngine::collect(self, id, owner, amount0_requested, amount1_requested)
    }

    fn swap_with_protection(
        &mut self,
        zero_for_one: bool,
        kind: SwapKind,
        sqrt_price_limit: Option<U256>,
        min_amount_out: Amount,
        max_amount_in: Amount,
    ) -> Result<SwapResult, AmmError> {
        WeightedEngine::swap_with_protection(
            self,
            zero_for_one,
            kind,
            sqrt_price_limit,
            min_amount_out,
            max_amount_in,
        )
    }

    fn quote_swap_with_protection(
        &self,
        zero_for_one: bool,
        kind: SwapKind,
        sqrt_price_limit: Option<U256>,
        min_amount_out: Amount,
        max_amount_in: Amount,
    ) -> Result<SwapResult, AmmError> {
        WeightedEngine::quote_swap_with_protection(
            self,
            zero_for_one,
            kind,
            sqrt_price_limit,
            min_amount_out,
            max_amount_in,
        )
    }

    fn value_position(&self, id: &PositionId) -> Result<PositionValuation, AmmError> {
        WeightedEngine::value_position(self, id)
    }
}

fn share_position_info(p: &SharePosition) -> PositionInfo {
    PositionInfo {
        owner: p.owner,
        tick_lower: 0,
        tick_upper: 0,
        liquidity: p.shares,
        tokens_owed0: p.owed0,
        tokens_owed1: p.owed1,
        fee_growth_inside0_last: U256::ZERO,
        fee_growth_inside1_last: U256::ZERO,
    }
}

/// The closed sum of the fleet's engines — what a heterogeneous shard
/// actually executes. Dispatch is by inherent forwarding methods (one
/// `match` each), so call sites need no trait import and the compiler
/// devirtualizes everything.
// One `Engine` lives per shard (never in bulk collections), and the CL
// variant is the hot path — boxing it would trade a pointer chase on
// every swap for a few hundred idle bytes on the smaller variants.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum Engine {
    /// Concentrated-liquidity pool.
    Cl(Pool),
    /// Constant-product pool.
    Cp(CpEngine),
    /// Weighted geometric-mean pool.
    Weighted(WeightedEngine),
}

/// Tagged serializable engine state: [`EngineState`] is to [`Engine`]
/// what [`PoolState`] is to [`Pool`]. The variant tag is
/// [`EngineKind::tag`] on the wire.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineState {
    /// Concentrated-liquidity state.
    Cl(PoolState),
    /// Constant-product state.
    Cp(CpState),
    /// Weighted state.
    Weighted(WeightedState),
}

impl EngineState {
    /// Which engine this state rebuilds into.
    pub fn kind(&self) -> EngineKind {
        match self {
            EngineState::Cl(_) => EngineKind::ConcentratedLiquidity,
            EngineState::Cp(_) => EngineKind::ConstantProduct,
            EngineState::Weighted(_) => EngineKind::Weighted,
        }
    }
}

macro_rules! dispatch {
    ($self:ident, $e:ident => $body:expr) => {
        match $self {
            Engine::Cl($e) => $body,
            Engine::Cp($e) => $body,
            Engine::Weighted($e) => $body,
        }
    };
}

impl Engine {
    /// A fresh standard-parameter engine of the given kind (0.3% fee
    /// everywhere; spacing 60 for CL, 80/20 weights for the G3M).
    pub fn new_standard(kind: EngineKind) -> Engine {
        match kind {
            EngineKind::ConcentratedLiquidity => Engine::Cl(Pool::new_standard()),
            EngineKind::ConstantProduct => Engine::Cp(CpEngine::new_standard()),
            EngineKind::Weighted => Engine::Weighted(WeightedEngine::new_standard()),
        }
    }

    /// Which design this engine runs.
    pub fn kind(&self) -> EngineKind {
        dispatch!(self, e => AmmEngine::kind(e))
    }

    /// The concentrated-liquidity pool, when this engine is one.
    pub fn as_cl(&self) -> Option<&Pool> {
        match self {
            Engine::Cl(p) => Some(p),
            _ => None,
        }
    }

    /// Mutable access to the concentrated-liquidity pool, when this
    /// engine is one.
    pub fn as_cl_mut(&mut self) -> Option<&mut Pool> {
        match self {
            Engine::Cl(p) => Some(p),
            _ => None,
        }
    }

    /// Selects the CL swap loop's next-tick search strategy; a no-op on
    /// engines without a tick grid.
    pub fn set_tick_search(&mut self, search: TickSearch) {
        if let Engine::Cl(p) = self {
            p.set_tick_search(search);
        }
    }

    /// Pool token balances, owed amounts included.
    pub fn balances(&self) -> AmountPair {
        dispatch!(self, e => AmmEngine::balances(e))
    }

    /// Engine-agnostic view of one position.
    pub fn position_info(&self, id: &PositionId) -> Option<PositionInfo> {
        dispatch!(self, e => AmmEngine::position_info(e, id))
    }

    /// Ids of all live positions (no ordering guarantee).
    pub fn position_ids(&self) -> Vec<PositionId> {
        dispatch!(self, e => AmmEngine::position_ids(e))
    }

    /// Number of live positions.
    pub fn position_count(&self) -> usize {
        dispatch!(self, e => AmmEngine::position_count(e))
    }

    /// Quotes a mint without touching state.
    ///
    /// # Errors
    /// See [`AmmEngine::quote_mint`].
    pub fn quote_mint(
        &self,
        tick_lower: Tick,
        tick_upper: Tick,
        amount0_desired: Amount,
        amount1_desired: Amount,
    ) -> Result<(Liquidity, AmountPair), AmmError> {
        dispatch!(self, e => AmmEngine::quote_mint(e, tick_lower, tick_upper, amount0_desired, amount1_desired))
    }

    /// Mints liquidity from a two-token budget.
    ///
    /// # Errors
    /// See [`AmmEngine::mint`].
    pub fn mint(
        &mut self,
        id: PositionId,
        owner: Address,
        tick_lower: Tick,
        tick_upper: Tick,
        amount0_desired: Amount,
        amount1_desired: Amount,
    ) -> Result<(Liquidity, AmountPair), AmmError> {
        dispatch!(self, e => AmmEngine::mint(e, id, owner, tick_lower, tick_upper, amount0_desired, amount1_desired))
    }

    /// Burns liquidity into the position's owed balance.
    ///
    /// # Errors
    /// See [`AmmEngine::burn`].
    pub fn burn(
        &mut self,
        id: PositionId,
        owner: Address,
        liquidity: Liquidity,
    ) -> Result<AmountPair, AmmError> {
        dispatch!(self, e => AmmEngine::burn(e, id, owner, liquidity))
    }

    /// Collects owed tokens out of the pool.
    ///
    /// # Errors
    /// See [`AmmEngine::collect`].
    pub fn collect(
        &mut self,
        id: PositionId,
        owner: Address,
        amount0_requested: Amount,
        amount1_requested: Amount,
    ) -> Result<AmountPair, AmmError> {
        dispatch!(self, e => AmmEngine::collect(e, id, owner, amount0_requested, amount1_requested))
    }

    /// Executes a swap with slippage bounds enforced before committing.
    ///
    /// # Errors
    /// See [`AmmEngine::swap_with_protection`].
    pub fn swap_with_protection(
        &mut self,
        zero_for_one: bool,
        kind: SwapKind,
        sqrt_price_limit: Option<U256>,
        min_amount_out: Amount,
        max_amount_in: Amount,
    ) -> Result<SwapResult, AmmError> {
        dispatch!(self, e => AmmEngine::swap_with_protection(e, zero_for_one, kind, sqrt_price_limit, min_amount_out, max_amount_in))
    }

    /// Read-only swap quote, bit-identical to execution.
    ///
    /// # Errors
    /// See [`AmmEngine::quote_swap_with_protection`].
    pub fn quote_swap_with_protection(
        &self,
        zero_for_one: bool,
        kind: SwapKind,
        sqrt_price_limit: Option<U256>,
        min_amount_out: Amount,
        max_amount_in: Amount,
    ) -> Result<SwapResult, AmmError> {
        dispatch!(self, e => AmmEngine::quote_swap_with_protection(e, zero_for_one, kind, sqrt_price_limit, min_amount_out, max_amount_in))
    }

    /// Unprotected swap (no slippage bounds).
    ///
    /// # Errors
    /// See [`AmmEngine::swap_with_protection`].
    pub fn swap(
        &mut self,
        zero_for_one: bool,
        kind: SwapKind,
        sqrt_price_limit: Option<U256>,
    ) -> Result<SwapResult, AmmError> {
        self.swap_with_protection(zero_for_one, kind, sqrt_price_limit, 0, Amount::MAX)
    }

    /// Unprotected read-only quote.
    ///
    /// # Errors
    /// See [`AmmEngine::quote_swap_with_protection`].
    pub fn quote_swap(
        &self,
        zero_for_one: bool,
        kind: SwapKind,
        sqrt_price_limit: Option<U256>,
    ) -> Result<SwapResult, AmmError> {
        self.quote_swap_with_protection(zero_for_one, kind, sqrt_price_limit, 0, Amount::MAX)
    }

    /// Values a position at the current price, read-only.
    ///
    /// # Errors
    /// See [`AmmEngine::value_position`].
    pub fn value_position(&self, id: &PositionId) -> Result<PositionValuation, AmmError> {
        dispatch!(self, e => AmmEngine::value_position(e, id))
    }

    /// Exports tagged, deterministic, serializable state.
    pub fn export_state(&self) -> EngineState {
        match self {
            Engine::Cl(p) => EngineState::Cl(p.export_state()),
            Engine::Cp(e) => EngineState::Cp(e.export_state()),
            Engine::Weighted(e) => EngineState::Weighted(e.export_state()),
        }
    }

    /// Rebuilds an engine from tagged state (regenerating the CL tick
    /// index where needed).
    ///
    /// # Errors
    /// Propagates the per-engine state validation.
    pub fn from_state(state: EngineState) -> Result<Engine, AmmError> {
        Ok(match state {
            EngineState::Cl(s) => Engine::Cl(Pool::from_state(s)?),
            EngineState::Cp(s) => Engine::Cp(CpEngine::from_state(s)?),
            EngineState::Weighted(s) => Engine::Weighted(WeightedEngine::from_state(s)?),
        })
    }
}

/// `sqrt(num / den)` in Q64.96 — the spot sqrt price of a reserve-pair
/// engine, computed as `isqrt(num · 2^192 / den)` over 512-bit
/// intermediates.
///
/// # Errors
/// [`AmmError::InsufficientReserves`] when `den` is zero.
pub(crate) fn spot_sqrt_price_q96(num: U256, den: U256) -> Result<U256, AmmError> {
    if den.is_zero() {
        return Err(AmmError::InsufficientReserves);
    }
    let scaled = num.full_mul(U256::pow2(192));
    let (q, _) = scaled.div_rem_u256(den);
    Ok(q.isqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_kind_tags_roundtrip() {
        for kind in [
            EngineKind::ConcentratedLiquidity,
            EngineKind::ConstantProduct,
            EngineKind::Weighted,
        ] {
            assert_eq!(EngineKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(EngineKind::from_tag(3), None);
    }

    #[test]
    fn spot_price_of_balanced_cp_pool_is_one() {
        let r = U256::from_u128(4_000_000_000_000_000);
        assert_eq!(spot_sqrt_price_q96(r, r).unwrap(), U256::pow2(96));
    }

    fn seeded(kind: EngineKind) -> Engine {
        let mut e = Engine::new_standard(kind);
        e.mint(
            PositionId::derive(&[b"engine-seed"]),
            Address::from_index(1),
            -120_000,
            120_000,
            4_000_000_000_000_000,
            4_000_000_000_000_000,
        )
        .expect("seed mint");
        e
    }

    #[test]
    fn every_engine_serves_the_full_surface() {
        for kind in [
            EngineKind::ConcentratedLiquidity,
            EngineKind::ConstantProduct,
            EngineKind::Weighted,
        ] {
            let mut e = seeded(kind);
            assert_eq!(e.kind(), kind);
            assert_eq!(e.position_count(), 1);
            let id = e.position_ids()[0];
            let info = e.position_info(&id).expect("position exists");
            assert_eq!(info.owner, Address::from_index(1));
            assert!(info.liquidity > 0);

            // quote == execute, for both budgets and directions
            for (zf1, kind_) in [
                (true, SwapKind::ExactInput(1_000_000_000)),
                (false, SwapKind::ExactOutput(999_999_999)),
            ] {
                let q = e.quote_swap(zf1, kind_, None).expect("quote");
                let x = e.swap(zf1, kind_, None).expect("swap");
                assert_eq!(q, x, "{kind:?} quote/execute diverged");
                assert!(x.amount_in > 0 && x.amount_out > 0 && x.fee_paid > 0);
            }

            // valuation, burn, collect
            let val = e.value_position(&id).expect("valuation");
            assert!(!val.principal.is_zero());
            let burned = e
                .burn(id, Address::from_index(1), info.liquidity)
                .expect("burn");
            assert!(!burned.is_zero());
            let collected = e
                .collect(id, Address::from_index(1), u128::MAX, u128::MAX)
                .expect("collect");
            assert!(collected.amount0 >= burned.amount0 && collected.amount1 >= burned.amount1);

            // tagged state round-trip
            let state = e.export_state();
            assert_eq!(state.kind(), kind);
            let rebuilt = Engine::from_state(state.clone()).expect("from_state");
            assert_eq!(rebuilt.export_state(), state);
        }
    }

    #[test]
    fn wrong_owner_rejected_uniformly() {
        for kind in [
            EngineKind::ConcentratedLiquidity,
            EngineKind::ConstantProduct,
            EngineKind::Weighted,
        ] {
            let mut e = seeded(kind);
            let id = e.position_ids()[0];
            assert!(matches!(
                e.burn(id, Address::from_index(2), 1),
                Err(AmmError::NotPositionOwner(_))
            ));
            assert!(matches!(
                e.mint(id, Address::from_index(2), -120_000, 120_000, 1_000, 1_000),
                Err(AmmError::NotPositionOwner(_))
            ));
        }
    }

    #[test]
    fn set_tick_search_noop_on_share_engines() {
        let mut e = seeded(EngineKind::ConstantProduct);
        let before = e.export_state();
        e.set_tick_search(TickSearch::BTreeOracle);
        assert_eq!(e.export_state(), before);
        assert!(e.as_cl().is_none());
    }
}
