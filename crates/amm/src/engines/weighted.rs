//! Weighted geometric-mean engine (Balancer-style G3M): the invariant is
//! `r0^w0 · r1^w1` with normalized weights `w0 + w1 = 1`, swaps priced by
//! the fixed-point power function in [`super::bmath`], LP accounting by
//! the same proportional [`ShareBook`] the constant-product engine uses
//! (an all-asset join/exit never moves the spot price, so it needs no
//! weighted math).
//!
//! The compute/commit swap split is preserved: quotes run the exact
//! staged computation the write path commits. The [`reference`] module
//! re-derives both swap directions in `f64` — a genuinely different
//! numeric domain — and bounds the fixed-point error as the engine's
//! differential oracle.

use super::bmath::{bdiv, bmul, bmul_up, bpow, BONE};
use super::shares::{mul_div_ceil_u128, mul_div_u128, ShareBook, SharePosition};
use super::spot_sqrt_price_q96;
use crate::error::AmmError;
use crate::pool::{PositionValuation, SwapKind, SwapResult};
use crate::types::{Amount, AmountPair, PositionId, PIPS_DENOMINATOR};
use ammboost_crypto::{Address, U256};
use serde::{Deserialize, Serialize};

/// Largest gross input as a fraction of the in-side reserve: `r_in / 2`.
/// Keeps the pow base `r_in / (r_in + in)` above `2/3`, well inside the
/// binomial series' convergent range.
const MAX_IN_DIVISOR: u128 = 2;

/// Largest output as a fraction of the out-side reserve: `r_out / 3`.
/// Keeps the pow base `r_out / (r_out − out)` below `1.5`, inside
/// `[MIN_BPOW_BASE, MAX_BPOW_BASE]`.
const MAX_OUT_DIVISOR: u128 = 3;

/// The staged outcome of a weighted swap.
#[derive(Clone, Copy, Debug)]
struct WeightedPlan {
    amount_in: Amount,
    amount_out: Amount,
    fee_paid: Amount,
    reserve0: Amount,
    reserve1: Amount,
}

/// A two-token weighted pool.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightedEngine {
    fee_pips: u32,
    /// Normalized token0 weight, BONE-scaled; `weight0 + weight1 = BONE`.
    weight0: u128,
    weight1: u128,
    reserve0: Amount,
    reserve1: Amount,
    book: ShareBook,
}

/// Serializable weighted engine state.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeightedState {
    /// Swap fee in pips.
    pub fee_pips: u32,
    /// Normalized token0 weight (BONE-scaled).
    pub weight0: u128,
    /// Normalized token1 weight (BONE-scaled).
    pub weight1: u128,
    /// Token0 trading reserve.
    pub reserve0: Amount,
    /// Token1 trading reserve.
    pub reserve1: Amount,
    /// LP positions, ascending by id.
    pub positions: Vec<(PositionId, SharePosition)>,
}

impl WeightedEngine {
    /// Creates an empty pool. `weight0`/`weight1` are relative parts
    /// (e.g. `80, 20`); they are normalized so `w0 + w1 = BONE`.
    ///
    /// # Errors
    /// [`AmmError::InvalidFee`] at or above 100%;
    /// [`AmmError::MathRange`] on a zero weight.
    pub fn new(fee_pips: u32, weight0: u32, weight1: u32) -> Result<WeightedEngine, AmmError> {
        if fee_pips >= PIPS_DENOMINATOR {
            return Err(AmmError::InvalidFee(fee_pips));
        }
        if weight0 == 0 || weight1 == 0 {
            return Err(AmmError::MathRange("weighted pool weight is zero"));
        }
        let total = weight0 as u128 + weight1 as u128;
        let w0 = mul_div_u128(weight0 as u128, BONE, total)?;
        Ok(WeightedEngine {
            fee_pips,
            weight0: w0,
            weight1: BONE - w0,
            reserve0: 0,
            reserve1: 0,
            book: ShareBook::new(),
        })
    }

    /// An empty 80/20 pool with the 0.3% fee tier — Balancer's flagship
    /// configuration, and deliberately asymmetric so heterogeneous-fleet
    /// scenarios exercise a price surface the other engines cannot.
    pub fn new_standard() -> WeightedEngine {
        WeightedEngine::new(3000, 80, 20).expect("standard weighted parameters are valid")
    }

    /// Swap fee in pips.
    pub fn fee_pips(&self) -> u32 {
        self.fee_pips
    }

    /// Normalized `(weight0, weight1)`, BONE-scaled.
    pub fn weights(&self) -> (u128, u128) {
        (self.weight0, self.weight1)
    }

    /// Trading reserves `(reserve0, reserve1)`.
    pub fn reserves(&self) -> AmountPair {
        AmountPair::new(self.reserve0, self.reserve1)
    }

    /// Pool token balances: reserves plus everything owed to LPs.
    pub fn balances(&self) -> AmountPair {
        let owed = self.book.owed_totals();
        AmountPair::new(self.reserve0 + owed.amount0, self.reserve1 + owed.amount1)
    }

    /// The share ledger.
    pub fn book(&self) -> &ShareBook {
        &self.book
    }

    /// Spot sqrt price in Q64.96: `sqrt((r1·w0) / (r0·w1))` — the G3M
    /// marginal price of token0 in token1.
    ///
    /// # Errors
    /// Fails while either reserve is empty (no price yet).
    pub fn sqrt_price(&self) -> Result<U256, AmmError> {
        spot_sqrt_price_q96(
            U256::from_u128(self.reserve1)
                .checked_mul(U256::from_u128(self.weight0))
                .ok_or(AmmError::BalanceOverflow)?,
            U256::from_u128(self.reserve0)
                .checked_mul(U256::from_u128(self.weight1))
                .ok_or(AmmError::BalanceOverflow)?,
        )
    }

    // ---- liquidity -------------------------------------------------------

    /// Quotes a proportional all-asset join.
    ///
    /// # Errors
    /// Mirrors [`ShareBook::quote_join`].
    pub fn quote_mint(
        &self,
        amount0_desired: Amount,
        amount1_desired: Amount,
    ) -> Result<(u128, AmountPair), AmmError> {
        self.book.quote_join(
            self.reserve0,
            self.reserve1,
            amount0_desired,
            amount1_desired,
        )
    }

    /// Joins the pool with both tokens pro-rata.
    ///
    /// # Errors
    /// Mirrors [`ShareBook::join`].
    pub fn mint(
        &mut self,
        id: PositionId,
        owner: Address,
        amount0_desired: Amount,
        amount1_desired: Amount,
    ) -> Result<(u128, AmountPair), AmmError> {
        let (shares, used) = self.book.join(
            id,
            owner,
            self.reserve0,
            self.reserve1,
            amount0_desired,
            amount1_desired,
        )?;
        self.reserve0 = self
            .reserve0
            .checked_add(used.amount0)
            .ok_or(AmmError::BalanceOverflow)?;
        self.reserve1 = self
            .reserve1
            .checked_add(used.amount1)
            .ok_or(AmmError::BalanceOverflow)?;
        Ok((shares, used))
    }

    /// Burns shares; principal moves to the position's owed balance.
    ///
    /// # Errors
    /// Mirrors [`ShareBook::exit`].
    pub fn burn(
        &mut self,
        id: PositionId,
        owner: Address,
        shares: u128,
    ) -> Result<AmountPair, AmmError> {
        let out = self
            .book
            .exit(id, owner, self.reserve0, self.reserve1, shares)?;
        self.reserve0 = self
            .reserve0
            .checked_sub(out.amount0)
            .ok_or(AmmError::PoolInsolvent)?;
        self.reserve1 = self
            .reserve1
            .checked_sub(out.amount1)
            .ok_or(AmmError::PoolInsolvent)?;
        Ok(out)
    }

    /// Collects owed tokens out of the pool.
    ///
    /// # Errors
    /// Mirrors [`ShareBook::collect`].
    pub fn collect(
        &mut self,
        id: PositionId,
        owner: Address,
        amount0_requested: Amount,
        amount1_requested: Amount,
    ) -> Result<AmountPair, AmmError> {
        self.book
            .collect(id, owner, amount0_requested, amount1_requested)
    }

    /// Values a position read-only, mirroring what burn-now would credit.
    ///
    /// # Errors
    /// Fails on an unknown position id.
    pub fn value_position(&self, id: &PositionId) -> Result<PositionValuation, AmmError> {
        let pos = self
            .book
            .position(id)
            .ok_or(AmmError::PositionNotFound(*id))?;
        let principal = if pos.shares == 0 {
            AmountPair::ZERO
        } else {
            AmountPair::new(
                mul_div_u128(pos.shares, self.reserve0, self.book.total_shares())?,
                mul_div_u128(pos.shares, self.reserve1, self.book.total_shares())?,
            )
        };
        Ok(PositionValuation {
            principal,
            owed: AmountPair::new(pos.owed0, pos.owed1),
        })
    }

    // ---- swaps -----------------------------------------------------------

    /// Balancer `calcOutGivenIn`: `out = r_out · (1 − (r_in/(r_in+in))^(w_in/w_out))`.
    fn out_given_in(
        r_in: Amount,
        r_out: Amount,
        w_in: u128,
        w_out: u128,
        in_eff: Amount,
    ) -> Result<Amount, AmmError> {
        let weight_ratio = bdiv(w_in, w_out)?;
        let denom = r_in.checked_add(in_eff).ok_or(AmmError::BalanceOverflow)?;
        let y = bdiv(r_in, denom)?;
        let multiplier = BONE
            .checked_sub(bpow(y, weight_ratio)?)
            .ok_or(AmmError::MathRange("weighted out multiplier negative"))?;
        bmul(r_out, multiplier)
    }

    /// Balancer `calcInGivenOut`, rounding the charge up so the pool is
    /// never undercharged: `in = r_in · ((r_out/(r_out−out))^(w_out/w_in) − 1)`.
    fn in_given_out(
        r_in: Amount,
        r_out: Amount,
        w_in: u128,
        w_out: u128,
        out: Amount,
    ) -> Result<Amount, AmmError> {
        let weight_ratio = bdiv(w_out, w_in)?;
        let y = bdiv(r_out, r_out - out)?;
        let multiplier = bpow(y, weight_ratio)?
            .checked_sub(BONE)
            .ok_or(AmmError::MathRange("weighted in multiplier negative"))?;
        bmul_up(r_in, multiplier)
    }

    /// Read-only staged computation shared by the quote and write paths.
    fn compute_swap(
        &self,
        zero_for_one: bool,
        kind: SwapKind,
        sqrt_price_limit: Option<U256>,
        min_amount_out: Amount,
        max_amount_in: Amount,
    ) -> Result<WeightedPlan, AmmError> {
        if sqrt_price_limit.is_some() {
            return Err(AmmError::InvalidPriceLimit);
        }
        if self.reserve0 == 0 || self.reserve1 == 0 {
            return Err(AmmError::InsufficientReserves);
        }
        let (r_in, r_out, w_in, w_out) = if zero_for_one {
            (self.reserve0, self.reserve1, self.weight0, self.weight1)
        } else {
            (self.reserve1, self.reserve0, self.weight1, self.weight0)
        };
        let (amount_in, amount_out, fee_paid) = match kind {
            SwapKind::ExactInput(amount) => {
                if amount == 0 {
                    return Err(AmmError::ZeroAmount);
                }
                // Balancer's MAX_IN_RATIO: beyond half the reserve the
                // pow base leaves its convergent range
                let max_in = r_in / MAX_IN_DIVISOR;
                if amount > max_in {
                    return Err(AmmError::InsufficientLiquidity {
                        requested: amount,
                        available: max_in,
                    });
                }
                let fee =
                    mul_div_ceil_u128(amount, self.fee_pips as u128, PIPS_DENOMINATOR as u128)?;
                let in_eff = amount - fee;
                if in_eff == 0 {
                    return Err(AmmError::ZeroAmount);
                }
                let out = Self::out_given_in(r_in, r_out, w_in, w_out, in_eff)?;
                (amount, out, fee)
            }
            SwapKind::ExactOutput(amount) => {
                if amount == 0 {
                    return Err(AmmError::ZeroAmount);
                }
                // Balancer's MAX_OUT_RATIO, same convergence argument
                let max_out = r_out / MAX_OUT_DIVISOR;
                if amount > max_out {
                    return Err(AmmError::InsufficientLiquidity {
                        requested: amount,
                        available: max_out,
                    });
                }
                let in_eff = Self::in_given_out(r_in, r_out, w_in, w_out, amount)?;
                if in_eff == 0 {
                    return Err(AmmError::ZeroAmount);
                }
                let gross = mul_div_ceil_u128(
                    in_eff,
                    PIPS_DENOMINATOR as u128,
                    (PIPS_DENOMINATOR - self.fee_pips) as u128,
                )?;
                (gross, amount, gross - in_eff)
            }
        };
        if amount_out >= r_out {
            return Err(AmmError::InsufficientLiquidity {
                requested: amount_out,
                available: r_out,
            });
        }
        if amount_out < min_amount_out || amount_in > max_amount_in {
            return Err(AmmError::SlippageExceeded {
                amount_in,
                amount_out,
            });
        }
        let (reserve0, reserve1) = if zero_for_one {
            (
                self.reserve0
                    .checked_add(amount_in)
                    .ok_or(AmmError::BalanceOverflow)?,
                self.reserve1 - amount_out,
            )
        } else {
            (
                self.reserve0 - amount_out,
                self.reserve1
                    .checked_add(amount_in)
                    .ok_or(AmmError::BalanceOverflow)?,
            )
        };
        Ok(WeightedPlan {
            amount_in,
            amount_out,
            fee_paid,
            reserve0,
            reserve1,
        })
    }

    fn result_from_plan(&self, plan: WeightedPlan) -> Result<SwapResult, AmmError> {
        Ok(SwapResult {
            amount_in: plan.amount_in,
            amount_out: plan.amount_out,
            fee_paid: plan.fee_paid,
            sqrt_price_after: spot_sqrt_price_q96(
                U256::from_u128(plan.reserve1)
                    .checked_mul(U256::from_u128(self.weight0))
                    .ok_or(AmmError::BalanceOverflow)?,
                U256::from_u128(plan.reserve0)
                    .checked_mul(U256::from_u128(self.weight1))
                    .ok_or(AmmError::BalanceOverflow)?,
            )?,
            tick_after: 0,
            ticks_crossed: 0,
        })
    }

    /// Quotes a swap without touching state.
    ///
    /// # Errors
    /// Identical to [`WeightedEngine::swap_with_protection`].
    pub fn quote_swap_with_protection(
        &self,
        zero_for_one: bool,
        kind: SwapKind,
        sqrt_price_limit: Option<U256>,
        min_amount_out: Amount,
        max_amount_in: Amount,
    ) -> Result<SwapResult, AmmError> {
        let plan = self.compute_swap(
            zero_for_one,
            kind,
            sqrt_price_limit,
            min_amount_out,
            max_amount_in,
        )?;
        self.result_from_plan(plan)
    }

    /// Executes a swap with slippage bounds enforced before committing.
    ///
    /// # Errors
    /// [`AmmError::SlippageExceeded`] on a violated bound (state
    /// untouched), [`AmmError::InsufficientLiquidity`] beyond the
    /// Balancer in/out ratio caps, plus budget/reserve validation.
    pub fn swap_with_protection(
        &mut self,
        zero_for_one: bool,
        kind: SwapKind,
        sqrt_price_limit: Option<U256>,
        min_amount_out: Amount,
        max_amount_in: Amount,
    ) -> Result<SwapResult, AmmError> {
        let plan = self.compute_swap(
            zero_for_one,
            kind,
            sqrt_price_limit,
            min_amount_out,
            max_amount_in,
        )?;
        let result = self.result_from_plan(plan)?;
        // ---- commit ----
        self.reserve0 = plan.reserve0;
        self.reserve1 = plan.reserve1;
        Ok(result)
    }

    // ---- state -----------------------------------------------------------

    /// Exports deterministic, serializable state.
    pub fn export_state(&self) -> WeightedState {
        WeightedState {
            fee_pips: self.fee_pips,
            weight0: self.weight0,
            weight1: self.weight1,
            reserve0: self.reserve0,
            reserve1: self.reserve1,
            positions: self.book.to_sorted_entries(),
        }
    }

    /// Rebuilds an engine from exported state.
    ///
    /// # Errors
    /// Fails on an out-of-range fee or weights that do not sum to BONE.
    pub fn from_state(state: WeightedState) -> Result<WeightedEngine, AmmError> {
        if state.fee_pips >= PIPS_DENOMINATOR {
            return Err(AmmError::InvalidFee(state.fee_pips));
        }
        if state.weight0 == 0
            || state.weight1 == 0
            || state.weight0.checked_add(state.weight1) != Some(BONE)
        {
            return Err(AmmError::MathRange("weighted weights must sum to BONE"));
        }
        Ok(WeightedEngine {
            fee_pips: state.fee_pips,
            weight0: state.weight0,
            weight1: state.weight1,
            reserve0: state.reserve0,
            reserve1: state.reserve1,
            book: ShareBook::from_entries(state.positions),
        })
    }
}

/// Naive `f64` reference implementation used as the differential oracle.
///
/// Where the constant-product oracle is bit-exact, floating point cannot
/// be — so this oracle bounds the fixed-point engine instead: proptests
/// assert the integer result stays within a small relative tolerance of
/// the closed-form `f64` curve, which would catch any structural error in
/// the `bpow` plumbing (wrong ratio, inverted base, dropped fee) while
/// tolerating the last-ulp disagreements inherent to the comparison.
pub mod reference {
    /// `out = r_out · (1 − (r_in / (r_in + in))^(w_in / w_out))` in `f64`.
    pub fn out_given_in_f64(r_in: u128, r_out: u128, w_in: u128, w_out: u128, in_eff: u128) -> f64 {
        let base = r_in as f64 / (r_in as f64 + in_eff as f64);
        r_out as f64 * (1.0 - base.powf(w_in as f64 / w_out as f64))
    }

    /// `in = r_in · ((r_out / (r_out − out))^(w_out / w_in) − 1)` in `f64`.
    pub fn in_given_out_f64(r_in: u128, r_out: u128, w_in: u128, w_out: u128, out: u128) -> f64 {
        let base = r_out as f64 / (r_out as f64 - out as f64);
        r_in as f64 * (base.powf(w_out as f64 / w_in as f64) - 1.0)
    }

    /// The G3M invariant `r0^w0 · r1^w1` in `log` space (numerically
    /// stable for large reserves); weights are BONE-scaled.
    pub fn log_invariant(r0: u128, r1: u128, w0: u128, w1: u128) -> f64 {
        let bone = super::BONE as f64;
        (w0 as f64 / bone) * (r0 as f64).ln() + (w1 as f64 / bone) * (r1 as f64).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded() -> WeightedEngine {
        let mut e = WeightedEngine::new_standard();
        e.mint(
            PositionId::derive(&[b"w-seed"]),
            Address::from_index(1),
            4_000_000_000_000_000,
            4_000_000_000_000_000,
        )
        .unwrap();
        e
    }

    #[test]
    fn weights_normalize_to_bone() {
        let e = WeightedEngine::new(3000, 80, 20).unwrap();
        assert_eq!(e.weights(), (8 * BONE / 10, 2 * BONE / 10));
        let odd = WeightedEngine::new(3000, 1, 3).unwrap();
        let (w0, w1) = odd.weights();
        assert_eq!(w0 + w1, BONE);
    }

    #[test]
    fn swap_tracks_f64_reference() {
        let e = seeded();
        for (i, amount) in [1_000_000u128, 123_456_789, 500_000_000_000_000]
            .iter()
            .enumerate()
        {
            let zf1 = i % 2 == 0;
            let got = e
                .quote_swap_with_protection(zf1, SwapKind::ExactInput(*amount), None, 0, u128::MAX)
                .unwrap();
            let (r_in, r_out, w_in, w_out) = if zf1 {
                (e.reserve0, e.reserve1, e.weight0, e.weight1)
            } else {
                (e.reserve1, e.reserve0, e.weight1, e.weight0)
            };
            let expect =
                reference::out_given_in_f64(r_in, r_out, w_in, w_out, *amount - got.fee_paid);
            let err = (got.amount_out as f64 - expect).abs() / expect.max(1.0);
            assert!(
                err < 1e-6,
                "amount {amount}: {} vs {expect}",
                got.amount_out
            );
        }
    }

    #[test]
    fn invariant_non_decreasing_after_swaps() {
        let mut e = seeded();
        let (w0, w1) = e.weights();
        let before = reference::log_invariant(e.reserve0, e.reserve1, w0, w1);
        for i in 0..10u32 {
            e.swap_with_protection(
                i % 2 == 0,
                SwapKind::ExactInput(1_000_000_000 + i as u128 * 999_999),
                None,
                0,
                u128::MAX,
            )
            .unwrap();
        }
        let after = reference::log_invariant(e.reserve0, e.reserve1, w0, w1);
        assert!(after >= before - 1e-9, "{after} < {before}");
    }

    #[test]
    fn quote_equals_execution() {
        let e = seeded();
        let q = e
            .quote_swap_with_protection(true, SwapKind::ExactOutput(77_777_777), None, 0, u128::MAX)
            .unwrap();
        let mut w = e.clone();
        let x = w
            .swap_with_protection(true, SwapKind::ExactOutput(77_777_777), None, 0, u128::MAX)
            .unwrap();
        assert_eq!(q, x);
        assert_eq!(x.amount_out, 77_777_777);
    }

    #[test]
    fn exact_output_never_undercharges() {
        let e = seeded();
        let out = 55_555_555u128;
        let q = e
            .quote_swap_with_protection(false, SwapKind::ExactOutput(out), None, 0, u128::MAX)
            .unwrap();
        // replaying the charged input as exact-in must deliver >= out
        let fwd = e
            .quote_swap_with_protection(
                false,
                SwapKind::ExactInput(q.amount_in),
                None,
                0,
                u128::MAX,
            )
            .unwrap();
        assert!(fwd.amount_out >= out, "{} < {out}", fwd.amount_out);
    }

    #[test]
    fn ratio_caps_enforced() {
        let e = seeded();
        let r = e.reserves();
        assert!(matches!(
            e.quote_swap_with_protection(
                true,
                SwapKind::ExactInput(r.amount0 / 2 + 1),
                None,
                0,
                u128::MAX
            ),
            Err(AmmError::InsufficientLiquidity { .. })
        ));
        assert!(matches!(
            e.quote_swap_with_protection(
                true,
                SwapKind::ExactOutput(r.amount1 / 3 + 1),
                None,
                0,
                u128::MAX
            ),
            Err(AmmError::InsufficientLiquidity { .. })
        ));
    }

    #[test]
    fn state_roundtrip_is_lossless() {
        let mut e = seeded();
        e.swap_with_protection(false, SwapKind::ExactInput(9_999_999), None, 0, u128::MAX)
            .unwrap();
        e.burn(
            PositionId::derive(&[b"w-seed"]),
            Address::from_index(1),
            1_000_000_000_000_000,
        )
        .unwrap();
        let state = e.export_state();
        let rebuilt = WeightedEngine::from_state(state.clone()).unwrap();
        assert_eq!(rebuilt, e);
        assert_eq!(rebuilt.export_state(), state);
    }

    #[test]
    fn bad_state_rejected() {
        let mut state = seeded().export_state();
        state.weight0 += 1;
        assert!(matches!(
            WeightedEngine::from_state(state),
            Err(AmmError::MathRange(_))
        ));
    }

    #[test]
    fn asymmetric_weights_skew_price() {
        // 80/20 pool with equal reserves: token0 is the scarce-weighted
        // side, so its price in token1 is w0/w1 = 4.0 → sqrt = 2.0
        let e = seeded();
        let q96 = U256::pow2(96);
        let sqrt = e.sqrt_price().unwrap();
        let two_q96 = q96.checked_mul(U256::from_u128(2)).unwrap();
        assert_eq!(sqrt, two_q96);
    }
}
