//! Balancer-style fixed-point arithmetic for the weighted engine.
//!
//! All values are unsigned 18-decimal fixed point ([`BONE`] = 10¹⁸), with
//! 256-bit intermediates so products never silently truncate. The power
//! function splits an arbitrary exponent into an integer part (exact
//! square-and-multiply, [`bpowi`]) and a fractional part approximated by
//! the binomial series ([`bpow_approx`]), exactly as Balancer's `BNum`
//! does — the same alternating-sign term recurrence, the same half-up
//! rounding, the same base domain `[MIN_BPOW_BASE, MAX_BPOW_BASE]`.
//! Deterministic integer math throughout: no floats, no platform drift.

use crate::error::AmmError;
use ammboost_crypto::U256;

/// One, in 18-decimal fixed point.
pub const BONE: u128 = 1_000_000_000_000_000_000;

/// Smallest admissible `bpow` base (1 wei above zero).
pub const MIN_BPOW_BASE: u128 = 1;

/// Largest admissible `bpow` base (just under 2.0 — the binomial series
/// for `base^exp` converges only for `|base − 1| < 1`).
pub const MAX_BPOW_BASE: u128 = 2 * BONE - 1;

/// Series truncation threshold: terms below `BONE / 10¹⁰` are dropped.
pub const BPOW_PRECISION: u128 = BONE / 10_000_000_000;

/// Iteration backstop for the binomial series. Balancer relies on the
/// term shrinking below `BPOW_PRECISION`; the cap turns a non-converging
/// input into a typed error instead of a spin.
const BPOW_MAX_TERMS: u64 = 1_000;

/// `floor((a·b + BONE/2) / BONE)` — fixed-point multiply, half-up.
pub fn bmul(a: u128, b: u128) -> Result<u128, AmmError> {
    let prod = U256::from_u128(a).full_mul(U256::from_u128(b));
    let rounded = prod
        .checked_add(U256::from_u128(BONE / 2).full_mul(U256::ONE))
        .ok_or(AmmError::BalanceOverflow)?;
    rounded
        .div_rem_u256(U256::from_u128(BONE))
        .0
        .to_u256()
        .and_then(|v| v.to_u128())
        .ok_or(AmmError::BalanceOverflow)
}

/// `ceil(a·b / BONE)` — fixed-point multiply rounding against the caller,
/// used when charging swap input so the pool is never undercharged.
pub fn bmul_up(a: u128, b: u128) -> Result<u128, AmmError> {
    let (q, r) = U256::from_u128(a)
        .full_mul(U256::from_u128(b))
        .div_rem_u256(U256::from_u128(BONE));
    let q = q
        .to_u256()
        .and_then(|v| v.to_u128())
        .ok_or(AmmError::BalanceOverflow)?;
    if r.is_zero() {
        Ok(q)
    } else {
        q.checked_add(1).ok_or(AmmError::BalanceOverflow)
    }
}

/// `floor((a·BONE + b/2) / b)` — fixed-point divide, half-up.
pub fn bdiv(a: u128, b: u128) -> Result<u128, AmmError> {
    if b == 0 {
        return Err(AmmError::MathRange("bdiv by zero"));
    }
    let num = U256::from_u128(a)
        .full_mul(U256::from_u128(BONE))
        .checked_add(U256::from_u128(b / 2).full_mul(U256::ONE))
        .ok_or(AmmError::BalanceOverflow)?;
    num.div_rem_u256(U256::from_u128(b))
        .0
        .to_u256()
        .and_then(|v| v.to_u128())
        .ok_or(AmmError::BalanceOverflow)
}

/// `(|a − b|, a < b)` — magnitude and sign of a fixed-point difference.
fn bsub_sign(a: u128, b: u128) -> (u128, bool) {
    if a >= b {
        (a - b, false)
    } else {
        (b - a, true)
    }
}

/// `base^n` for integer `n` by square-and-multiply in fixed point.
pub fn bpowi(base: u128, mut n: u128) -> Result<u128, AmmError> {
    let mut a = base;
    let mut b = if n % 2 != 0 { base } else { BONE };
    n /= 2;
    while n != 0 {
        a = bmul(a, a)?;
        if n % 2 != 0 {
            b = bmul(b, a)?;
        }
        n /= 2;
    }
    Ok(b)
}

/// `base^exp` for fractional `exp ∈ [0, BONE)` via the binomial series
/// `(1 + x)^α = Σ C(α, k)·x^k` with `x = base − 1`, truncated once a term
/// drops below `precision`.
pub fn bpow_approx(base: u128, exp: u128, precision: u128) -> Result<u128, AmmError> {
    let a = exp;
    let (x, xneg) = bsub_sign(base, BONE);
    let mut term = BONE;
    let mut sum = term;
    let mut negative = false;
    let mut i: u64 = 1;
    while term >= precision {
        if i > BPOW_MAX_TERMS {
            return Err(AmmError::MathRange("bpow series did not converge"));
        }
        let big_k = (i as u128)
            .checked_mul(BONE)
            .ok_or(AmmError::BalanceOverflow)?;
        let (c, cneg) = bsub_sign(a, big_k - BONE);
        term = bmul(term, bmul(c, x)?)?;
        term = bdiv(term, big_k)?;
        if term == 0 {
            break;
        }
        if xneg {
            negative = !negative;
        }
        if cneg {
            negative = !negative;
        }
        if negative {
            sum = sum
                .checked_sub(term)
                .ok_or(AmmError::MathRange("bpow series went negative"))?;
        } else {
            sum = sum.checked_add(term).ok_or(AmmError::BalanceOverflow)?;
        }
        i += 1;
    }
    Ok(sum)
}

/// `base^exp` for arbitrary fixed-point `exp`: exact integer part times
/// series-approximated fractional part.
pub fn bpow(base: u128, exp: u128) -> Result<u128, AmmError> {
    if base < MIN_BPOW_BASE {
        return Err(AmmError::MathRange("bpow base too low"));
    }
    if base > MAX_BPOW_BASE {
        return Err(AmmError::MathRange("bpow base too high"));
    }
    let whole = (exp / BONE) * BONE;
    let remain = exp - whole;
    let whole_pow = bpowi(base, exp / BONE)?;
    if remain == 0 {
        return Ok(whole_pow);
    }
    let partial = bpow_approx(base, remain, BPOW_PRECISION)?;
    bmul(whole_pow, partial)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bmul_bdiv_inverse_within_rounding() {
        let a = 123_456_789_012_345_678u128;
        let b = 987_654_321_098_765_432u128;
        let prod = bmul(a, b).unwrap();
        let back = bdiv(prod, b).unwrap();
        assert!(back.abs_diff(a) <= 2, "{back} vs {a}");
    }

    #[test]
    fn bpowi_matches_repeated_mul() {
        let base = 3 * BONE / 2; // 1.5
        let mut expect = BONE;
        for n in 0..8u128 {
            assert_eq!(bpowi(base, n).unwrap(), expect, "n={n}");
            expect = bmul(expect, base).unwrap();
        }
    }

    #[test]
    fn bpow_integer_exponent_is_exact() {
        let base = 5 * BONE / 4; // 1.25
        assert_eq!(bpow(base, 2 * BONE).unwrap(), bpowi(base, 2).unwrap());
    }

    #[test]
    fn bpow_fractional_close_to_float() {
        // 0.75^0.5 ≈ 0.866025
        let got = bpow(3 * BONE / 4, BONE / 2).unwrap();
        let expect = 866_025_403_784_438_646u128;
        assert!(got.abs_diff(expect) < BONE / 1_000_000, "{got}");
        // 1.5^2.5 ≈ 2.755676
        let got = bpow(3 * BONE / 2, 5 * BONE / 2).unwrap();
        let expect = 2_755_675_960_631_075_360u128;
        assert!(got.abs_diff(expect) < BONE / 100_000, "{got}");
    }

    #[test]
    fn bpow_base_domain_enforced() {
        assert!(matches!(bpow(0, BONE), Err(AmmError::MathRange(_))));
        assert!(matches!(
            bpow(2 * BONE, BONE / 2),
            Err(AmmError::MathRange(_))
        ));
        // the engines' ratio caps keep bases in [2/3, 3/2], where the
        // series converges geometrically
        assert!(bpow(2 * BONE / 3, BONE / 2).is_ok());
        assert!(bpow(3 * BONE / 2, BONE / 2).is_ok());
        // a base at the extreme edge of the domain converges too slowly
        // for the iteration backstop — a typed error, not a spin
        assert!(matches!(
            bpow(MIN_BPOW_BASE, BONE / 2),
            Err(AmmError::MathRange(_))
        ));
    }
}
