//! Tick ↔ sqrt-price conversions.
//!
//! A tick `t` corresponds to the price `1.0001^t`; the pool works with
//! *sqrt* prices in Q64.96, so `sqrt_ratio_at_tick(t) = 1.0001^(t/2) · 2^96`.
//!
//! Unlike the Solidity reference (which bakes in twenty magic constants),
//! we derive the per-bit factors `sqrt(1.0001)^(2^i)` at first use by exact
//! integer square root and repeated squaring in Q128 with 512-bit
//! intermediates and round-to-nearest at each step. Accumulated relative
//! error is below `2^-100`, far finer than one tick (`~2^-13.3`), so the
//! round-trip `tick_at_sqrt_ratio(sqrt_ratio_at_tick(t)) == t` holds across
//! the whole domain (property-tested).

use crate::types::Tick;
use ammboost_crypto::{U256, U512};
use std::sync::OnceLock;

/// Lowest usable tick: `log_1.0001(2^-128)` rounded towards zero, the same
/// domain Uniswap V3 uses.
pub const MIN_TICK: Tick = -887272;
/// Highest usable tick.
pub const MAX_TICK: Tick = 887272;

/// Number of per-bit factors needed to cover `|tick| <= 887272 < 2^20`.
const FACTOR_BITS: usize = 20;

/// Errors from tick-math conversions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickMathError {
    /// Tick outside `[MIN_TICK, MAX_TICK]`.
    TickOutOfRange(Tick),
    /// Sqrt price outside `[min_sqrt_ratio(), max_sqrt_ratio()]`.
    SqrtPriceOutOfRange,
}

impl std::fmt::Display for TickMathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TickMathError::TickOutOfRange(t) => write!(f, "tick {t} out of range"),
            TickMathError::SqrtPriceOutOfRange => write!(f, "sqrt price out of range"),
        }
    }
}

impl std::error::Error for TickMathError {}

/// `sqrt(1.0001)^(2^i)` in Q128, for `i` in `0..FACTOR_BITS`.
fn factors() -> &'static [U256; FACTOR_BITS] {
    static FACTORS: OnceLock<[U256; FACTOR_BITS]> = OnceLock::new();
    FACTORS.get_or_init(|| {
        // f0 = round(sqrt(1.0001) * 2^128)
        //    = round(isqrt(10001 << 256) / 100)
        let n = U512::from_u256(U256::from_u64(10001)) << 256;
        let root = n.isqrt(); // floor(sqrt(10001) * 2^128)
        let hundred = U256::from_u64(100);
        let (q, r) = root.div_rem(hundred);
        let f0 = if r >= U256::from_u64(50) {
            q + U256::ONE
        } else {
            q
        };

        let mut out = [U256::ZERO; FACTOR_BITS];
        out[0] = f0;
        for i in 1..FACTOR_BITS {
            // out[i] = round(out[i-1]^2 / 2^128)
            let sq = out[i - 1].full_mul(out[i - 1]);
            let rounded = sq
                .checked_add(U512::pow2(127))
                .expect("factor squaring cannot overflow 512 bits");
            out[i] = (rounded >> 128)
                .to_u256()
                .expect("tick factors fit in 256 bits");
        }
        out
    })
}

/// Returns `1.0001^(tick/2)` in Q64.96.
///
/// # Errors
/// Fails when `tick` lies outside `[MIN_TICK, MAX_TICK]`.
pub fn sqrt_ratio_at_tick(tick: Tick) -> Result<U256, TickMathError> {
    if !(MIN_TICK..=MAX_TICK).contains(&tick) {
        return Err(TickMathError::TickOutOfRange(tick));
    }
    let abs = tick.unsigned_abs();
    // acc = sqrt(1.0001)^|tick| in Q128
    let mut acc = U256::pow2(128);
    let f = factors();
    for (i, factor) in f.iter().enumerate() {
        if (abs >> i) & 1 == 1 {
            // acc = round(acc * factor / 2^128)
            let prod = acc.full_mul(*factor);
            let rounded = prod
                .checked_add(U512::pow2(127))
                .expect("q128 product cannot overflow 512 bits");
            acc = (rounded >> 128)
                .to_u256()
                .expect("q128 accumulator fits 256 bits");
        }
    }
    if tick >= 0 {
        // Q128 -> Q96 with round-to-nearest.
        Ok((acc + U256::pow2(31)) >> 32)
    } else {
        // 1/acc in Q96 = round(2^224 / acc).
        let num = U256::pow2(224);
        let (q, r) = num.div_rem(acc);
        let double_r = r.checked_add(r).expect("remainder below modulus");
        Ok(if double_r >= acc { q + U256::ONE } else { q })
    }
}

/// The smallest valid sqrt price, `sqrt_ratio_at_tick(MIN_TICK)`.
#[inline]
pub fn min_sqrt_ratio() -> U256 {
    static MIN: OnceLock<U256> = OnceLock::new();
    *MIN.get_or_init(|| sqrt_ratio_at_tick(MIN_TICK).expect("MIN_TICK is in range"))
}

/// The largest valid sqrt price, `sqrt_ratio_at_tick(MAX_TICK)`.
#[inline]
pub fn max_sqrt_ratio() -> U256 {
    static MAX: OnceLock<U256> = OnceLock::new();
    *MAX.get_or_init(|| sqrt_ratio_at_tick(MAX_TICK).expect("MAX_TICK is in range"))
}

/// Returns the greatest tick whose sqrt ratio is `<= sqrt_price`.
///
/// A floating-point log₂ estimate built from `sqrt_price.bits()` and the
/// top mantissa bits lands within a tick or two of the answer; a short
/// bracketed binary search then makes the result exact, so the usual cost
/// is ~3 `sqrt_ratio_at_tick` evaluations instead of the ~41 a full-domain
/// bisection pays. The estimate only steers the search — correctness never
/// depends on float behaviour, and in debug builds the result is asserted
/// against the full bisection oracle.
///
/// # Errors
/// Fails when the price is outside the valid range.
pub fn tick_at_sqrt_ratio(sqrt_price: U256) -> Result<Tick, TickMathError> {
    if sqrt_price < min_sqrt_ratio() || sqrt_price > max_sqrt_ratio() {
        return Err(TickMathError::SqrtPriceOutOfRange);
    }
    const SLACK: Tick = 2;
    let est = estimate_tick(sqrt_price);
    let lo = est.saturating_sub(SLACK).max(MIN_TICK);
    let hi = est.saturating_add(SLACK).min(MAX_TICK);
    // The bracket is valid iff ratio(lo) <= sqrt_price < ratio(hi + 1);
    // fall back to the full-domain bisection when the estimate missed.
    let bracket_ok = sqrt_ratio_at_tick(lo).expect("lo in range") <= sqrt_price
        && (hi == MAX_TICK || sqrt_ratio_at_tick(hi + 1).expect("hi + 1 in range") > sqrt_price);
    let result = if bracket_ok {
        bisect_tick(lo, hi, sqrt_price)
    } else {
        bisect_tick(MIN_TICK, MAX_TICK, sqrt_price)
    };
    debug_assert_eq!(
        result,
        bisect_tick(MIN_TICK, MAX_TICK, sqrt_price),
        "estimate-guided search disagrees with the bisection oracle"
    );
    Ok(result)
}

/// Estimated tick for an in-range sqrt price: `2·log₂(sqrt_price / 2^96) /
/// log₂(1.0001)`, with log₂ taken from the price's bit length plus the top
/// 53 mantissa bits. Accurate to well under one tick across the domain.
fn estimate_tick(sqrt_price: U256) -> Tick {
    let bits = sqrt_price.bits(); // >= 33 for in-range prices
    let shift = bits.saturating_sub(53);
    let mantissa = (sqrt_price >> shift).low_u128() as u64;
    let log2 = (mantissa as f64).log2() + shift as f64 - 96.0;
    let ticks_per_log2 = 2.0 / 1.0001f64.log2();
    (log2 * ticks_per_log2).round() as Tick
}

/// Binary search for the greatest tick with `ratio(tick) <= sqrt_price`,
/// assuming `ratio(lo) <= sqrt_price` (and `sqrt_price < ratio(hi + 1)`
/// when `hi < MAX_TICK`).
fn bisect_tick(mut lo: Tick, mut hi: Tick, sqrt_price: U256) -> Tick {
    while lo < hi {
        let mid = lo + (hi - lo + 1) / 2; // upper mid so the loop shrinks
        let r = sqrt_ratio_at_tick(mid).expect("mid in range");
        if r <= sqrt_price {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_zero_is_q96() {
        assert_eq!(sqrt_ratio_at_tick(0).unwrap(), U256::pow2(96));
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(sqrt_ratio_at_tick(MAX_TICK + 1).is_err());
        assert!(sqrt_ratio_at_tick(MIN_TICK - 1).is_err());
    }

    #[test]
    fn monotonic_in_tick() {
        let mut prev = sqrt_ratio_at_tick(MIN_TICK).unwrap();
        for t in [-887271, -100000, -500, -1, 0, 1, 500, 100000, 887272] {
            let r = sqrt_ratio_at_tick(t).unwrap();
            assert!(r > prev, "tick {t} not monotonic");
            prev = r;
        }
    }

    #[test]
    fn bounds_match_uniswap_magnitudes() {
        // Uniswap's MIN_SQRT_RATIO = 4295128739 ~ 2^32; MAX ~ 2^160.4.
        let min = min_sqrt_ratio();
        let max = max_sqrt_ratio();
        assert_eq!(min.bits(), 33);
        assert!((159..=161).contains(&max.bits()), "max bits {}", max.bits());
        // our derivation should agree with the reference constant to within
        // a relative error of ~1e-9 (they truncate, we round)
        let reference_min = U256::from_u64(4295128739);
        let diff = if min > reference_min {
            min - reference_min
        } else {
            reference_min - min
        };
        assert!(
            diff < U256::from_u64(50),
            "min {min} vs reference {reference_min}"
        );
    }

    #[test]
    fn one_tick_ratio_close_to_1_0001() {
        // price(1)/price(0) should be ~sqrt(1.0001)
        let r1 = sqrt_ratio_at_tick(1).unwrap();
        let r0 = sqrt_ratio_at_tick(0).unwrap();
        // r1/r0 * 1e12 ≈ sqrt(1.0001)*1e12 ≈ 1000049998750
        let scaled = r1.mul_div(U256::from_u128(1_000_000_000_000), r0);
        let v = scaled.to_u128().unwrap();
        assert!((1_000_049_998_000..=1_000_050_000_000).contains(&v), "{v}");
    }

    #[test]
    fn roundtrip_exact_on_sample_ticks() {
        for t in [
            MIN_TICK, -887271, -123456, -60, -2, -1, 0, 1, 2, 60, 123456, 887271, MAX_TICK,
        ] {
            let r = sqrt_ratio_at_tick(t).unwrap();
            assert_eq!(tick_at_sqrt_ratio(r).unwrap(), t, "tick {t}");
        }
    }

    #[test]
    fn tick_at_ratio_between_ticks_rounds_down() {
        let r5 = sqrt_ratio_at_tick(5).unwrap();
        let r6 = sqrt_ratio_at_tick(6).unwrap();
        let mid = (r5 + r6) >> 1;
        assert_eq!(tick_at_sqrt_ratio(mid).unwrap(), 5);
        // one below a boundary belongs to the previous tick
        assert_eq!(tick_at_sqrt_ratio(r6 - U256::ONE).unwrap(), 5);
        assert_eq!(tick_at_sqrt_ratio(r6).unwrap(), 6);
    }

    #[test]
    fn price_out_of_bounds_rejected() {
        assert!(tick_at_sqrt_ratio(min_sqrt_ratio() - U256::ONE).is_err());
        assert!(tick_at_sqrt_ratio(max_sqrt_ratio() + U256::ONE).is_err());
    }

    #[test]
    fn estimate_lands_within_bracket_across_domain() {
        // The f64 estimate must stay within the ±2-tick bracket for the
        // fast path to engage; sweep a spread of magnitudes plus both
        // extremes. (Correctness is already guaranteed by the fallback +
        // debug oracle; this pins the *speed* contract.)
        for t in [
            MIN_TICK, -800000, -123457, -30001, -601, -59, -1, 0, 1, 59, 601, 30001, 123457,
            800000, MAX_TICK,
        ] {
            let r = sqrt_ratio_at_tick(t).unwrap();
            let est = estimate_tick(r);
            assert!((est - t).abs() <= 2, "tick {t}: estimate {est}");
            assert_eq!(tick_at_sqrt_ratio(r).unwrap(), t);
        }
    }

    #[test]
    fn fast_path_matches_oracle_between_ticks() {
        // prices strictly between tick boundaries, where rounding in the
        // estimate is most likely to straddle the wrong side
        for t in [-700000, -33333, -2, 0, 2, 33333, 700000] {
            let a = sqrt_ratio_at_tick(t).unwrap();
            let b = sqrt_ratio_at_tick(t + 1).unwrap();
            for num in 1u64..4 {
                let p = a + (b - a).mul_div(U256::from_u64(num), U256::from_u64(4));
                assert_eq!(
                    tick_at_sqrt_ratio(p).unwrap(),
                    bisect_tick(MIN_TICK, MAX_TICK, p),
                    "tick {t} frac {num}/4"
                );
            }
        }
    }

    #[test]
    fn negative_tick_is_reciprocal() {
        // ratio(t) * ratio(-t) ≈ 2^192 (i.e. price * 1/price == 1)
        for t in [1, 60, 887272] {
            let a = sqrt_ratio_at_tick(t).unwrap();
            let b = sqrt_ratio_at_tick(-t).unwrap();
            let prod = a.full_mul(b);
            let expect = U512::pow2(192);
            let diff = if prod > expect {
                prod.checked_sub(expect).unwrap()
            } else {
                expect.checked_sub(prod).unwrap()
            };
            // relative error bound: diff / 2^192 < 2^-30
            assert!(diff < (U512::pow2(162)), "tick {t}: diff {diff:?}");
        }
    }
}
