//! Errors of the AMM engine.

use crate::sqrt_price_math::PriceMathError;
use crate::tick_math::TickMathError;
use crate::types::{Liquidity, PositionId, Tick};

/// Any failure of an AMM operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AmmError {
    /// Tick range invalid (inverted, out of bounds, or misaligned with the
    /// pool's tick spacing).
    InvalidTickRange {
        /// Offending lower tick.
        lower: Tick,
        /// Offending upper tick.
        upper: Tick,
    },
    /// Fee at or above 100%.
    InvalidFee(u32),
    /// The operation computed zero liquidity (budget too small for range).
    ZeroLiquidity,
    /// An amount argument was zero.
    ZeroAmount,
    /// Price limit on the wrong side of the current price.
    InvalidPriceLimit,
    /// The swap's slippage protection fired (output too small or input
    /// too large); no state was changed.
    SlippageExceeded {
        /// Input the swap would have required.
        amount_in: Liquidity,
        /// Output the swap would have produced.
        amount_out: Liquidity,
    },
    /// Requested liquidity exceeds what is available.
    InsufficientLiquidity {
        /// Asked for.
        requested: Liquidity,
        /// Actually available.
        available: Liquidity,
    },
    /// Pool reserves cannot cover a withdrawal or loan.
    InsufficientReserves,
    /// Unknown position.
    PositionNotFound(PositionId),
    /// Caller does not own the position.
    NotPositionOwner(PositionId),
    /// Flash-loan callback failed to repay principal plus fee.
    FlashNotRepaid,
    /// A balance or amount exceeded 128 bits.
    BalanceOverflow,
    /// Internal accounting would drive a pool balance negative.
    PoolInsolvent,
    /// A restored snapshot's persisted tick→sqrt-price table is corrupt
    /// (wrong length, non-monotonic, or outside the sqrt-price domain).
    CorruptTickPriceTable,
    /// A fixed-point computation left its convergent range (e.g. a
    /// weighted-math `pow` base outside `[1 wei, 2·BONE)`); no state was
    /// changed.
    MathRange(&'static str),
    /// Tick-math failure.
    TickMath(TickMathError),
    /// Price-math failure.
    PriceMath(PriceMathError),
}

impl std::fmt::Display for AmmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AmmError::InvalidTickRange { lower, upper } => {
                write!(f, "invalid tick range [{lower}, {upper}]")
            }
            AmmError::InvalidFee(fee) => write!(f, "invalid fee {fee} pips"),
            AmmError::ZeroLiquidity => write!(f, "operation yields zero liquidity"),
            AmmError::ZeroAmount => write!(f, "zero amount"),
            AmmError::InvalidPriceLimit => write!(f, "price limit on wrong side of price"),
            AmmError::SlippageExceeded {
                amount_in,
                amount_out,
            } => write!(
                f,
                "slippage protection fired (in {amount_in}, out {amount_out})"
            ),
            AmmError::InsufficientLiquidity {
                requested,
                available,
            } => write!(
                f,
                "insufficient liquidity: requested {requested}, available {available}"
            ),
            AmmError::InsufficientReserves => write!(f, "insufficient pool reserves"),
            AmmError::PositionNotFound(id) => write!(f, "position {id} not found"),
            AmmError::NotPositionOwner(id) => write!(f, "caller does not own {id}"),
            AmmError::FlashNotRepaid => write!(f, "flash loan not repaid with fee"),
            AmmError::BalanceOverflow => write!(f, "balance overflow"),
            AmmError::PoolInsolvent => write!(f, "pool accounting would go negative"),
            AmmError::CorruptTickPriceTable => {
                write!(f, "persisted tick-price table is corrupt")
            }
            AmmError::MathRange(what) => write!(f, "fixed-point range exceeded: {what}"),
            AmmError::TickMath(e) => write!(f, "tick math: {e}"),
            AmmError::PriceMath(e) => write!(f, "price math: {e}"),
        }
    }
}

impl std::error::Error for AmmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AmmError::TickMath(e) => Some(e),
            AmmError::PriceMath(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TickMathError> for AmmError {
    fn from(e: TickMathError) -> Self {
        AmmError::TickMath(e)
    }
}

impl From<PriceMathError> for AmmError {
    fn from(e: PriceMathError) -> Self {
        AmmError::PriceMath(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = AmmError::InsufficientLiquidity {
            requested: 10,
            available: 5,
        };
        let s = e.to_string();
        assert!(s.contains("10") && s.contains("5"));
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let e = AmmError::from(TickMathError::SqrtPriceOutOfRange);
        assert!(e.source().is_some());
        assert!(AmmError::ZeroAmount.source().is_none());
    }
}
