//! Core value types of the AMM engine: ticks, liquidity, sqrt prices and
//! token identifiers.

use ammboost_crypto::{H256, U256};
use serde::{Deserialize, Serialize};
use std::fmt;

/// `2^96`, the fixed-point scale of sqrt prices (Q64.96).
#[inline]
pub fn q96() -> U256 {
    U256::pow2(96)
}

/// `2^128`, the fixed-point scale of fee-growth accumulators (Q128).
pub fn q128() -> U256 {
    U256::pow2(128)
}

/// Fee denominators are expressed in pips: hundredths of a basis point,
/// i.e. a fee of `3000` pips is 0.30%.
pub const PIPS_DENOMINATOR: u32 = 1_000_000;

/// A price tick index. Prices are `1.0001^tick`; sqrt prices are
/// `1.0001^(tick/2)` in Q64.96.
pub type Tick = i32;

/// Liquidity units (Uniswap's `uint128 liquidity`).
pub type Liquidity = u128;

/// Token amounts. The engine works in `u128`, which comfortably covers the
/// paper's workloads; intermediate math is widened to 256 bits.
pub type Amount = u128;

/// Identifies one of the two tokens in a pool.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum TokenSide {
    /// The first token of the pair (Uniswap's `token0`).
    Token0,
    /// The second token of the pair (Uniswap's `token1`).
    Token1,
}

impl TokenSide {
    /// The opposite side.
    #[inline]
    pub fn other(self) -> TokenSide {
        match self {
            TokenSide::Token0 => TokenSide::Token1,
            TokenSide::Token1 => TokenSide::Token0,
        }
    }
}

/// A pair of token amounts `(amount0, amount1)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct AmountPair {
    /// Amount of token0.
    pub amount0: Amount,
    /// Amount of token1.
    pub amount1: Amount,
}

impl AmountPair {
    /// The zero pair.
    pub const ZERO: AmountPair = AmountPair {
        amount0: 0,
        amount1: 0,
    };

    /// Creates a pair.
    #[inline]
    pub fn new(amount0: Amount, amount1: Amount) -> AmountPair {
        AmountPair { amount0, amount1 }
    }

    /// Component for the given side.
    pub fn get(&self, side: TokenSide) -> Amount {
        match side {
            TokenSide::Token0 => self.amount0,
            TokenSide::Token1 => self.amount1,
        }
    }

    /// Checked elementwise addition.
    #[inline]
    pub fn checked_add(self, other: AmountPair) -> Option<AmountPair> {
        Some(AmountPair {
            amount0: self.amount0.checked_add(other.amount0)?,
            amount1: self.amount1.checked_add(other.amount1)?,
        })
    }

    /// Checked elementwise subtraction.
    #[inline]
    pub fn checked_sub(self, other: AmountPair) -> Option<AmountPair> {
        Some(AmountPair {
            amount0: self.amount0.checked_sub(other.amount0)?,
            amount1: self.amount1.checked_sub(other.amount1)?,
        })
    }

    /// `true` when both components are zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.amount0 == 0 && self.amount1 == 0
    }
}

impl fmt::Display for AmountPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} token0, {} token1)", self.amount0, self.amount1)
    }
}

/// A unique liquidity-position identifier. The sidechain derives it as the
/// hash of the mint transaction and the LP's public key (paper §IV-B).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct PositionId(pub H256);

impl PositionId {
    /// Derives a position id from arbitrary identifying bytes.
    pub fn derive(parts: &[&[u8]]) -> PositionId {
        PositionId(H256::hash_concat(parts))
    }
}

impl fmt::Display for PositionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pos:{}", &self.0.to_hex()[..12])
    }
}

/// A pool identifier (one per token pair + fee tier).
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default, Serialize, Deserialize,
)]
pub struct PoolId(pub u32);

impl fmt::Display for PoolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pool:{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_side_other() {
        assert_eq!(TokenSide::Token0.other(), TokenSide::Token1);
        assert_eq!(TokenSide::Token1.other(), TokenSide::Token0);
    }

    #[test]
    fn amount_pair_arithmetic() {
        let a = AmountPair::new(10, 20);
        let b = AmountPair::new(1, 2);
        assert_eq!(a.checked_add(b), Some(AmountPair::new(11, 22)));
        assert_eq!(a.checked_sub(b), Some(AmountPair::new(9, 18)));
        assert_eq!(b.checked_sub(a), None);
        assert!(AmountPair::ZERO.is_zero());
        assert_eq!(a.get(TokenSide::Token0), 10);
        assert_eq!(a.get(TokenSide::Token1), 20);
    }

    #[test]
    fn overflowing_add_is_none() {
        let a = AmountPair::new(u128::MAX, 0);
        assert_eq!(a.checked_add(AmountPair::new(1, 0)), None);
    }

    #[test]
    fn position_ids_are_distinct() {
        let a = PositionId::derive(&[b"tx1", b"owner"]);
        let b = PositionId::derive(&[b"tx2", b"owner"]);
        assert_ne!(a, b);
        assert_eq!(a, PositionId::derive(&[b"tx1", b"owner"]));
    }

    #[test]
    fn fixed_point_scales() {
        assert_eq!(q96(), U256::pow2(96));
        assert_eq!(q128(), U256::pow2(128));
    }
}
