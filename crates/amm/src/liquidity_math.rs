//! Liquidity arithmetic: signed adjustment of pool liquidity and the
//! amounts → liquidity conversions used when minting (Uniswap's
//! `LiquidityAmounts` periphery library).

use crate::sqrt_price_math::PriceMathError;
use crate::types::{Amount, Liquidity};
use ammboost_crypto::U256;

/// Applies a signed delta to a liquidity value.
///
/// # Errors
/// Fails on under/overflow.
#[inline]
pub fn add_delta(liquidity: Liquidity, delta: i128) -> Result<Liquidity, PriceMathError> {
    if delta >= 0 {
        liquidity
            .checked_add(delta as u128)
            .ok_or(PriceMathError::AmountOverflow)
    } else {
        liquidity
            .checked_sub(delta.unsigned_abs())
            .ok_or(PriceMathError::InsufficientReserves)
    }
}

#[inline]
fn q96() -> U256 {
    U256::pow2(96)
}

/// Liquidity purchasable with `amount0` across `[sqrt_lo, sqrt_hi]`:
/// `L = amount0 * (sqrt_lo * sqrt_hi / 2^96) / (sqrt_hi - sqrt_lo)`.
pub fn liquidity_for_amount0(sqrt_lo: U256, sqrt_hi: U256, amount0: Amount) -> Liquidity {
    let (lo, hi) = sort(sqrt_lo, sqrt_hi);
    if hi == lo {
        return 0;
    }
    let intermediate = lo.mul_div(hi, q96());
    U256::from_u128(amount0)
        .mul_div(intermediate, hi - lo)
        .to_u128()
        .unwrap_or(u128::MAX)
}

/// Liquidity purchasable with `amount1` across `[sqrt_lo, sqrt_hi]`:
/// `L = amount1 * 2^96 / (sqrt_hi - sqrt_lo)`.
pub fn liquidity_for_amount1(sqrt_lo: U256, sqrt_hi: U256, amount1: Amount) -> Liquidity {
    let (lo, hi) = sort(sqrt_lo, sqrt_hi);
    if hi == lo {
        return 0;
    }
    U256::from_u128(amount1)
        .mul_div(q96(), hi - lo)
        .to_u128()
        .unwrap_or(u128::MAX)
}

/// The maximum liquidity fundable with the given token budget at the current
/// price — the computation `getLiquidityForAmounts` performs during a mint.
pub fn liquidity_for_amounts(
    sqrt_price: U256,
    sqrt_lo: U256,
    sqrt_hi: U256,
    amount0: Amount,
    amount1: Amount,
) -> Liquidity {
    let (lo, hi) = sort(sqrt_lo, sqrt_hi);
    if sqrt_price <= lo {
        // range entirely above the price: only token0 is needed
        liquidity_for_amount0(lo, hi, amount0)
    } else if sqrt_price < hi {
        let l0 = liquidity_for_amount0(sqrt_price, hi, amount0);
        let l1 = liquidity_for_amount1(lo, sqrt_price, amount1);
        l0.min(l1)
    } else {
        // range entirely below the price: only token1 is needed
        liquidity_for_amount1(lo, hi, amount1)
    }
}

#[inline]
fn sort(a: U256, b: U256) -> (U256, U256) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sqrt_price_math::{amount0_delta, amount1_delta};
    use crate::tick_math::sqrt_ratio_at_tick;

    fn p(t: i32) -> U256 {
        sqrt_ratio_at_tick(t).unwrap()
    }

    #[test]
    fn add_delta_signs() {
        assert_eq!(add_delta(100, 50).unwrap(), 150);
        assert_eq!(add_delta(100, -40).unwrap(), 60);
        assert_eq!(add_delta(100, -100).unwrap(), 0);
        assert!(add_delta(100, -101).is_err());
        assert!(add_delta(u128::MAX, 1).is_err());
    }

    #[test]
    fn in_range_mint_takes_min_of_both_sides() {
        let price = p(0);
        let lo = p(-600);
        let hi = p(600);
        let l = liquidity_for_amounts(price, lo, hi, 1_000_000, 1_000_000);
        assert!(l > 0);
        // liquidity is limited by the scarcer side
        let l_token0_only = liquidity_for_amounts(price, lo, hi, 1_000_000, u128::MAX >> 1);
        let l_token1_only = liquidity_for_amounts(price, lo, hi, u128::MAX >> 1, 1_000_000);
        assert_eq!(l, l_token0_only.min(l_token1_only));
    }

    #[test]
    fn range_above_price_uses_only_token0() {
        let price = p(0);
        let l = liquidity_for_amounts(price, p(100), p(200), 1_000_000, 0);
        assert!(l > 0);
        // token1 budget irrelevant
        assert_eq!(
            l,
            liquidity_for_amounts(price, p(100), p(200), 1_000_000, 123456)
        );
    }

    #[test]
    fn range_below_price_uses_only_token1() {
        let price = p(0);
        let l = liquidity_for_amounts(price, p(-200), p(-100), 0, 1_000_000);
        assert!(l > 0);
        assert_eq!(
            l,
            liquidity_for_amounts(price, p(-200), p(-100), 999, 1_000_000)
        );
    }

    #[test]
    fn liquidity_amount_roundtrip() {
        // converting amounts -> liquidity -> amounts must not exceed the
        // original budget (pool-favourable rounding)
        let price = p(0);
        let lo = p(-1200);
        let hi = p(900);
        let budget0 = 5_000_000u128;
        let budget1 = 7_000_000u128;
        let l = liquidity_for_amounts(price, lo, hi, budget0, budget1);
        let need0 = amount0_delta(price, hi, l, true).unwrap();
        let need1 = amount1_delta(lo, price, l, true).unwrap();
        assert!(need0 <= budget0 + 1, "{need0} > {budget0}");
        assert!(need1 <= budget1 + 1, "{need1} > {budget1}");
    }

    #[test]
    fn empty_range_zero_liquidity() {
        assert_eq!(liquidity_for_amount0(p(5), p(5), 1000), 0);
        assert_eq!(liquidity_for_amount1(p(5), p(5), 1000), 0);
    }
}
