//! Zero-copy position storage: sorted fixed-stride records + lazy overlay.
//!
//! A snapshot's position section is a run of fixed-size big-endian records
//! sorted by position id. [`PositionRecords`] keeps that encoding as-is
//! behind an `Arc<[u8]>` and answers point lookups by binary search over
//! the 32-byte id prefixes — restoring a pool never decodes positions it
//! will not touch. [`PositionTable`] layers a copy-on-write overlay on top
//! so the hot path (mint/burn/collect on a handful of positions) mutates
//! decoded `Position` values while the untouched bulk stays raw bytes, and
//! re-exporting an untouched table is an `Arc` clone, not a re-encode.

use crate::pool::Position;
use crate::types::PositionId;
use ammboost_crypto::{Address, H256, U256};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Wire size of one position record: id (32), owner (20), tick_lower (4),
/// tick_upper (4), liquidity (16), fee_growth_inside0_last (32),
/// fee_growth_inside1_last (32), tokens_owed0 (16), tokens_owed1 (16).
pub const POSITION_RECORD_BYTES: usize = 172;

/// Why a raw byte run was rejected as a position-record array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordsError {
    /// The byte length is not a multiple of [`POSITION_RECORD_BYTES`].
    Stride {
        /// Offending byte length.
        len: usize,
    },
    /// Record ids are not strictly ascending.
    Unsorted {
        /// Index of the first record whose id is ≤ its predecessor's.
        index: usize,
    },
}

impl fmt::Display for RecordsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordsError::Stride { len } => {
                write!(
                    f,
                    "{len} bytes is not a multiple of {POSITION_RECORD_BYTES}"
                )
            }
            RecordsError::Unsorted { index } => {
                write!(f, "position record {index} is not strictly ascending by id")
            }
        }
    }
}

impl std::error::Error for RecordsError {}

fn pack_into(id: &PositionId, p: &Position, out: &mut Vec<u8>) {
    out.extend_from_slice(&id.0 .0);
    out.extend_from_slice(&p.owner.0);
    out.extend_from_slice(&p.tick_lower.to_be_bytes());
    out.extend_from_slice(&p.tick_upper.to_be_bytes());
    out.extend_from_slice(&p.liquidity.to_be_bytes());
    out.extend_from_slice(&p.fee_growth_inside0_last.to_be_bytes());
    out.extend_from_slice(&p.fee_growth_inside1_last.to_be_bytes());
    out.extend_from_slice(&p.tokens_owed0.to_be_bytes());
    out.extend_from_slice(&p.tokens_owed1.to_be_bytes());
}

fn unpack(rec: &[u8]) -> (PositionId, Position) {
    debug_assert_eq!(rec.len(), POSITION_RECORD_BYTES);
    let arr = |r: std::ops::Range<usize>| -> [u8; 32] { rec[r].try_into().unwrap() };
    let id = PositionId(H256(arr(0..32)));
    let pos = Position {
        owner: Address(rec[32..52].try_into().unwrap()),
        tick_lower: i32::from_be_bytes(rec[52..56].try_into().unwrap()),
        tick_upper: i32::from_be_bytes(rec[56..60].try_into().unwrap()),
        liquidity: u128::from_be_bytes(rec[60..76].try_into().unwrap()),
        fee_growth_inside0_last: U256::from_be_bytes(arr(76..108)),
        fee_growth_inside1_last: U256::from_be_bytes(arr(108..140)),
        tokens_owed0: u128::from_be_bytes(rec[140..156].try_into().unwrap()),
        tokens_owed1: u128::from_be_bytes(rec[156..172].try_into().unwrap()),
    };
    (id, pos)
}

/// An immutable, id-sorted array of fixed-stride position records, stored
/// exactly as they sit on the snapshot wire.
///
/// Cloning is an `Arc` bump; lookups binary-search the 32-byte id prefixes
/// without decoding the payloads they skip over.
#[derive(Clone)]
pub struct PositionRecords {
    raw: Arc<[u8]>,
    count: usize,
}

impl PositionRecords {
    /// An empty record array.
    pub fn new() -> PositionRecords {
        PositionRecords {
            raw: Arc::from(Vec::new()),
            count: 0,
        }
    }

    /// Packs decoded entries (any order, ids assumed unique) into sorted
    /// record form.
    pub fn from_entries(mut entries: Vec<(PositionId, Position)>) -> PositionRecords {
        entries.sort_by_key(|(id, _)| *id);
        let mut raw = Vec::with_capacity(entries.len() * POSITION_RECORD_BYTES);
        for (id, p) in &entries {
            pack_into(id, p, &mut raw);
        }
        PositionRecords {
            raw: raw.into(),
            count: entries.len(),
        }
    }

    /// Adopts an already-sorted raw byte run (e.g. straight off the
    /// snapshot wire). Validates only the stride and the strict id
    /// ordering — payload fields are left raw until someone reads them.
    pub fn from_sorted_raw(bytes: &[u8]) -> Result<PositionRecords, RecordsError> {
        if bytes.len() % POSITION_RECORD_BYTES != 0 {
            return Err(RecordsError::Stride { len: bytes.len() });
        }
        let count = bytes.len() / POSITION_RECORD_BYTES;
        for i in 1..count {
            let prev = &bytes[(i - 1) * POSITION_RECORD_BYTES..][..32];
            let cur = &bytes[i * POSITION_RECORD_BYTES..][..32];
            if prev >= cur {
                return Err(RecordsError::Unsorted { index: i });
            }
        }
        Ok(PositionRecords {
            raw: Arc::from(bytes.to_vec()),
            count,
        })
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.count
    }

    /// `true` when there are no records.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The raw sorted record bytes, exactly as encoded on the wire.
    pub fn raw(&self) -> &[u8] {
        &self.raw
    }

    fn record(&self, i: usize) -> &[u8] {
        &self.raw[i * POSITION_RECORD_BYTES..(i + 1) * POSITION_RECORD_BYTES]
    }

    /// The id of record `i` (decodes only the 32-byte prefix).
    pub fn id_at(&self, i: usize) -> PositionId {
        PositionId(H256(self.record(i)[..32].try_into().unwrap()))
    }

    /// Decodes record `i` in full.
    pub fn entry_at(&self, i: usize) -> (PositionId, Position) {
        unpack(self.record(i))
    }

    /// Index of `id`'s record, by binary search over id prefixes.
    pub fn index_of(&self, id: &PositionId) -> Option<usize> {
        let key = &id.0 .0;
        let mut lo = 0usize;
        let mut hi = self.count;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.record(mid)[..32].cmp(&key[..]) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(mid),
            }
        }
        None
    }

    /// Decodes the record for `id`, if present.
    pub fn get(&self, id: &PositionId) -> Option<Position> {
        self.index_of(id).map(|i| self.entry_at(i).1)
    }

    /// `true` when a record for `id` exists (no payload decode).
    pub fn contains(&self, id: &PositionId) -> bool {
        self.index_of(id).is_some()
    }

    /// Iterates the records in id order, decoding each on the fly.
    pub fn iter(&self) -> impl Iterator<Item = (PositionId, Position)> + '_ {
        (0..self.count).map(move |i| self.entry_at(i))
    }
}

impl Default for PositionRecords {
    fn default() -> Self {
        PositionRecords::new()
    }
}

impl PartialEq for PositionRecords {
    fn eq(&self, other: &Self) -> bool {
        self.raw == other.raw
    }
}

impl Eq for PositionRecords {}

impl fmt::Debug for PositionRecords {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PositionRecords")
            .field("count", &self.count)
            .finish_non_exhaustive()
    }
}

impl FromIterator<(PositionId, Position)> for PositionRecords {
    fn from_iter<T: IntoIterator<Item = (PositionId, Position)>>(iter: T) -> Self {
        PositionRecords::from_entries(iter.into_iter().collect())
    }
}

// the workspace's serde is an offline marker shim; the snapshot codec in
// `ammboost-state` is the real wire format for these records
impl Serialize for PositionRecords {}

impl<'de> Deserialize<'de> for PositionRecords {}

/// The pool's live position table: an immutable [`PositionRecords`] base
/// plus a decoded copy-on-write overlay.
///
/// Reads fall through to the base; writes materialize the record into the
/// overlay first. A removal of a base record leaves a tombstone (`None`)
/// so the base bytes stay shared. [`PositionTable::export_records`] is an
/// `Arc` clone when the overlay is empty, otherwise a single-pass sorted
/// merge of base bytes and overlay entries.
#[derive(Clone, Debug)]
pub struct PositionTable {
    base: PositionRecords,
    overlay: HashMap<PositionId, Option<Position>>,
    live: usize,
}

impl PositionTable {
    /// An empty table.
    pub fn new() -> PositionTable {
        PositionTable::from_records(PositionRecords::new())
    }

    /// Adopts a record array as the base with an empty overlay — O(1), no
    /// decoding.
    pub fn from_records(base: PositionRecords) -> PositionTable {
        let live = base.len();
        PositionTable {
            base,
            overlay: HashMap::new(),
            live,
        }
    }

    /// Number of live positions (base minus tombstones plus insertions).
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when no positions are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Decoded records resident in the overlay (lazy-restore telemetry).
    pub fn materialized(&self) -> usize {
        self.overlay.len()
    }

    /// `true` when a live position exists for `id` (no payload decode).
    pub fn contains(&self, id: &PositionId) -> bool {
        match self.overlay.get(id) {
            Some(slot) => slot.is_some(),
            None => self.base.contains(id),
        }
    }

    /// Reads the position for `id`, decoding from the base on a miss.
    pub fn get(&self, id: &PositionId) -> Option<Position> {
        match self.overlay.get(id) {
            Some(slot) => slot.clone(),
            None => self.base.get(id),
        }
    }

    /// Mutable access, materializing the base record into the overlay on
    /// first touch. `None` when no live position exists.
    pub fn get_mut(&mut self, id: &PositionId) -> Option<&mut Position> {
        if !self.overlay.contains_key(id) {
            let from_base = self.base.get(id)?;
            self.overlay.insert(*id, Some(from_base));
        }
        self.overlay.get_mut(id)?.as_mut()
    }

    /// Mutable access to the position for `id`, inserting `default()`
    /// when none is live — the record-backed analogue of
    /// `HashMap::entry(..).or_insert_with(..)`.
    pub fn entry_or_insert_with(
        &mut self,
        id: PositionId,
        default: impl FnOnce() -> Position,
    ) -> &mut Position {
        let seeded = match self.overlay.get(&id) {
            Some(Some(_)) => None,
            Some(None) => {
                // tombstoned base record: resurrecting adds a live entry
                self.live += 1;
                Some(default())
            }
            None => match self.base.get(&id) {
                Some(p) => Some(p),
                None => {
                    self.live += 1;
                    Some(default())
                }
            },
        };
        if let Some(p) = seeded {
            self.overlay.insert(id, Some(p));
        }
        self.overlay
            .get_mut(&id)
            .and_then(|slot| slot.as_mut())
            .expect("slot seeded above")
    }

    /// Removes and returns the live position for `id`. Base records are
    /// tombstoned (the shared bytes are never rewritten).
    pub fn remove(&mut self, id: &PositionId) -> Option<Position> {
        let in_base = self.base.contains(id);
        match self.overlay.get_mut(id) {
            Some(slot @ Some(_)) => {
                let out = if in_base {
                    slot.take()
                } else {
                    self.overlay.remove(id).flatten()
                };
                self.live -= 1;
                out
            }
            Some(None) => None,
            None => {
                let out = self.base.get(id)?;
                self.overlay.insert(*id, None);
                self.live -= 1;
                Some(out)
            }
        }
    }

    /// Iterates live positions: materialized overlay entries first, then
    /// base records not shadowed by the overlay. Order is unspecified
    /// (matching the `HashMap` this replaces).
    pub fn iter(&self) -> impl Iterator<Item = (PositionId, Position)> + '_ {
        let from_overlay = self
            .overlay
            .iter()
            .filter_map(|(id, slot)| slot.clone().map(|p| (*id, p)));
        let from_base = self
            .base
            .iter()
            .filter(move |(id, _)| !self.overlay.contains_key(id));
        from_overlay.chain(from_base)
    }

    /// Exports the live set as sorted records. Zero-copy (`Arc` clone)
    /// when nothing was touched since [`PositionTable::from_records`];
    /// otherwise one sorted merge pass over base bytes and overlay.
    pub fn export_records(&self) -> PositionRecords {
        if self.overlay.is_empty() {
            return self.base.clone();
        }
        let mut ov: Vec<(&PositionId, &Option<Position>)> = self.overlay.iter().collect();
        ov.sort_by_key(|(id, _)| **id);
        let mut raw = Vec::with_capacity(self.live * POSITION_RECORD_BYTES);
        let mut count = 0usize;
        fn emit(id: &PositionId, slot: &Option<Position>, raw: &mut Vec<u8>, count: &mut usize) {
            if let Some(p) = slot {
                pack_into(id, p, raw);
                *count += 1;
            }
        }
        let (mut bi, mut oi) = (0usize, 0usize);
        while bi < self.base.len() && oi < ov.len() {
            let base_id = self.base.id_at(bi);
            match base_id.cmp(ov[oi].0) {
                std::cmp::Ordering::Less => {
                    raw.extend_from_slice(self.base.record(bi));
                    count += 1;
                    bi += 1;
                }
                std::cmp::Ordering::Equal => {
                    emit(ov[oi].0, ov[oi].1, &mut raw, &mut count);
                    bi += 1;
                    oi += 1;
                }
                std::cmp::Ordering::Greater => {
                    emit(ov[oi].0, ov[oi].1, &mut raw, &mut count);
                    oi += 1;
                }
            }
        }
        while bi < self.base.len() {
            raw.extend_from_slice(self.base.record(bi));
            count += 1;
            bi += 1;
        }
        while oi < ov.len() {
            emit(ov[oi].0, ov[oi].1, &mut raw, &mut count);
            oi += 1;
        }
        debug_assert_eq!(count, self.live);
        PositionRecords {
            raw: raw.into(),
            count,
        }
    }

    /// Force-decodes every base record into the overlay — the eager-
    /// restore oracle for differential tests and benches. Returns how
    /// many records were newly materialized.
    pub fn materialize_all(&mut self) -> usize {
        let mut added = 0usize;
        for i in 0..self.base.len() {
            let (id, p) = self.base.entry_at(i);
            if let std::collections::hash_map::Entry::Vacant(v) = self.overlay.entry(id) {
                v.insert(Some(p));
                added += 1;
            }
        }
        added
    }
}

impl Default for PositionTable {
    fn default() -> Self {
        PositionTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u8) -> PositionId {
        PositionId(H256([n; 32]))
    }

    fn pos(n: u8) -> Position {
        Position {
            owner: Address([n; 20]),
            tick_lower: -(n as i32) * 10,
            tick_upper: n as i32 * 10,
            liquidity: n as u128 * 1_000,
            fee_growth_inside0_last: U256::from(n as u64),
            fee_growth_inside1_last: U256::from(n as u64 * 7),
            tokens_owed0: n as u128,
            tokens_owed1: n as u128 * 3,
        }
    }

    fn sample() -> PositionRecords {
        PositionRecords::from_entries(vec![(pid(5), pos(5)), (pid(1), pos(1)), (pid(9), pos(9))])
    }

    #[test]
    fn pack_unpack_roundtrips_every_field() {
        let recs = sample();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs.raw().len(), 3 * POSITION_RECORD_BYTES);
        // from_entries sorted them
        assert_eq!(recs.id_at(0), pid(1));
        assert_eq!(recs.id_at(2), pid(9));
        for n in [1u8, 5, 9] {
            assert_eq!(recs.get(&pid(n)), Some(pos(n)));
        }
        assert_eq!(recs.get(&pid(2)), None);
    }

    #[test]
    fn from_sorted_raw_validates_without_decoding() {
        let recs = sample();
        let adopted = PositionRecords::from_sorted_raw(recs.raw()).unwrap();
        assert_eq!(adopted, recs);

        assert_eq!(
            PositionRecords::from_sorted_raw(&recs.raw()[..100]),
            Err(RecordsError::Stride { len: 100 })
        );
        let mut swapped = recs.raw().to_vec();
        swapped.rotate_left(POSITION_RECORD_BYTES);
        assert_eq!(
            PositionRecords::from_sorted_raw(&swapped),
            Err(RecordsError::Unsorted { index: 2 })
        );
        let mut dup = recs.raw().to_vec();
        dup.copy_within(0..POSITION_RECORD_BYTES, POSITION_RECORD_BYTES);
        assert_eq!(
            PositionRecords::from_sorted_raw(&dup),
            Err(RecordsError::Unsorted { index: 1 })
        );
    }

    #[test]
    fn table_reads_fall_through_and_writes_materialize() {
        let mut t = PositionTable::from_records(sample());
        assert_eq!(t.len(), 3);
        assert_eq!(t.materialized(), 0);
        assert_eq!(t.get(&pid(5)), Some(pos(5)));
        assert_eq!(t.materialized(), 0, "reads must not materialize");

        t.get_mut(&pid(5)).unwrap().liquidity += 1;
        assert_eq!(t.materialized(), 1);
        assert_eq!(t.get(&pid(5)).unwrap().liquidity, pos(5).liquidity + 1);
        // untouched entries still read from base
        assert_eq!(t.get(&pid(1)), Some(pos(1)));
    }

    #[test]
    fn remove_tombstones_base_and_drops_fresh() {
        let mut t = PositionTable::from_records(sample());
        assert_eq!(t.remove(&pid(1)), Some(pos(1)));
        assert_eq!(t.len(), 2);
        assert!(!t.contains(&pid(1)));
        assert_eq!(t.remove(&pid(1)), None);

        // fresh insertion then removal leaves no residue
        t.entry_or_insert_with(pid(2), || pos(2));
        assert_eq!(t.len(), 3);
        assert_eq!(t.remove(&pid(2)), Some(pos(2)));
        assert_eq!(t.len(), 2);

        // resurrect a tombstoned id
        let p = t.entry_or_insert_with(pid(1), || pos(7));
        assert_eq!(p.owner, pos(7).owner);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn export_is_zero_copy_when_untouched() {
        let base = sample();
        let t = PositionTable::from_records(base.clone());
        let out = t.export_records();
        assert!(
            Arc::ptr_eq(&out.raw, &base.raw),
            "untouched export must share bytes"
        );
    }

    #[test]
    fn export_merges_overlay_into_sorted_records() {
        let mut t = PositionTable::from_records(sample());
        t.get_mut(&pid(5)).unwrap().tokens_owed0 = 99;
        t.remove(&pid(9));
        t.entry_or_insert_with(pid(3), || pos(3));
        t.entry_or_insert_with(pid(200), || pos(200));

        let out = t.export_records();
        assert_eq!(out.len(), 4);
        let ids: Vec<PositionId> = out.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![pid(1), pid(3), pid(5), pid(200)]);
        assert_eq!(out.get(&pid(5)).unwrap().tokens_owed0, 99);
        assert_eq!(out.get(&pid(9)), None);

        // merged output equals the from-scratch pack of the same live set
        let mut entries: Vec<(PositionId, Position)> = t.iter().collect();
        entries.sort_by_key(|(id, _)| *id);
        let oracle = PositionRecords::from_entries(entries);
        assert_eq!(out, oracle);
    }

    #[test]
    fn iter_merges_without_duplicates() {
        let mut t = PositionTable::from_records(sample());
        t.get_mut(&pid(1)).unwrap().liquidity = 42;
        t.entry_or_insert_with(pid(2), || pos(2));
        let mut seen: Vec<(PositionId, Position)> = t.iter().collect();
        seen.sort_by_key(|(id, _)| *id);
        assert_eq!(seen.len(), 4);
        assert_eq!(seen[0].1.liquidity, 42);
        assert_eq!(seen[1].0, pid(2));
    }

    #[test]
    fn materialize_all_is_the_eager_oracle() {
        let mut t = PositionTable::from_records(sample());
        assert_eq!(t.materialize_all(), 3);
        assert_eq!(t.materialized(), 3);
        assert_eq!(t.materialize_all(), 0, "idempotent");
        // materialization must not change observable state
        let eager = t.export_records();
        let lazy = PositionTable::from_records(sample()).export_records();
        assert_eq!(eager, lazy);
    }
}
