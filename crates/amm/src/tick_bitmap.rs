//! Word-packed tick bitmap: O(1) next-initialized-tick lookup for the
//! swap loop.
//!
//! Ticks are compressed by the pool's tick spacing and stored as single
//! bits in 64-bit words, keyed by word index — the same layout Uniswap V3
//! uses (there with 256-bit words) and the one production pool-sync
//! engines mirror off-chain. Finding the next initialized tick in the
//! direction of travel becomes a mask + leading/trailing-zero count
//! inside the current word; when the word is exhausted, a sorted index of
//! *occupied* words jumps straight to the next word that has any bit set,
//! so sparse pools never scan empty space.
//!
//! Compared with the seed `BTreeMap::range` scan this replaces a
//! logarithmic, pointer-chasing search per swap step with one or two
//! hash-map probes and a handful of register operations.

use crate::fast_hash::FastIntBuildHasher;
use crate::types::Tick;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// Bits per bitmap word.
const WORD_BITS: i32 = 64;

/// A bitmap over initialized ticks, compressed by tick spacing.
///
/// Maintained incrementally by the pool: a tick's bit is set when its
/// `liquidity_gross` becomes non-zero and cleared when the tick is
/// removed. All lookups assume (and the pool guarantees) that only
/// spacing-aligned ticks are ever flipped.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TickBitmap {
    spacing: i32,
    /// Word index → 64 tick bits. Empty words are removed.
    words: HashMap<i16, u64, FastIntBuildHasher>,
    /// Sorted index of words with at least one bit set — the cross-word
    /// fallback when the current word has no candidate.
    occupied: BTreeSet<i16>,
}

impl TickBitmap {
    /// An empty bitmap for the given tick spacing.
    ///
    /// # Panics
    /// Panics on non-positive spacing — the pool validates it first.
    pub fn new(spacing: i32) -> TickBitmap {
        assert!(spacing > 0, "tick spacing must be positive");
        TickBitmap {
            spacing,
            words: HashMap::default(),
            occupied: BTreeSet::new(),
        }
    }

    /// The tick spacing this bitmap compresses by.
    #[inline]
    pub fn spacing(&self) -> i32 {
        self.spacing
    }

    /// Number of initialized ticks recorded.
    pub fn initialized_count(&self) -> usize {
        self.words.values().map(|w| w.count_ones() as usize).sum()
    }

    #[inline]
    fn compress(&self, tick: Tick) -> i32 {
        // Round towards negative infinity, exactly as Uniswap's
        // `compress--` adjustment for negative unaligned ticks.
        tick.div_euclid(self.spacing)
    }

    #[inline]
    fn position(compressed: i32) -> (i16, u32) {
        ((compressed >> 6) as i16, (compressed & 63) as u32)
    }

    #[inline]
    fn tick_at(&self, word: i16, bit: u32) -> Tick {
        (i32::from(word) * WORD_BITS + bit as i32) * self.spacing
    }

    /// Marks `tick` initialized. Idempotent.
    pub fn set(&mut self, tick: Tick) {
        debug_assert_eq!(tick % self.spacing, 0, "tick {tick} not aligned");
        let (word, bit) = Self::position(self.compress(tick));
        *self.words.entry(word).or_insert(0) |= 1u64 << bit;
        self.occupied.insert(word);
    }

    /// Marks `tick` uninitialized. Idempotent.
    pub fn clear(&mut self, tick: Tick) {
        let (word, bit) = Self::position(self.compress(tick));
        if let Some(w) = self.words.get_mut(&word) {
            *w &= !(1u64 << bit);
            if *w == 0 {
                self.words.remove(&word);
                self.occupied.remove(&word);
            }
        }
    }

    /// Whether `tick`'s bit is set.
    pub fn is_initialized(&self, tick: Tick) -> bool {
        if tick % self.spacing != 0 {
            return false;
        }
        let (word, bit) = Self::position(self.compress(tick));
        self.words
            .get(&word)
            .is_some_and(|w| w & (1u64 << bit) != 0)
    }

    /// Uniswap's `nextInitializedTickWithinOneWord`: the next initialized
    /// tick no further than the boundary of the current word.
    ///
    /// With `lte == true` the search runs left (≤ `tick`), otherwise right
    /// (> `tick`). Returns `(tick, initialized)` — when no bit is set in
    /// the remainder of the word, `tick` is the word's boundary tick and
    /// `initialized` is `false`, so callers can continue from there.
    pub fn next_initialized_tick_within_one_word(&self, tick: Tick, lte: bool) -> (Tick, bool) {
        if lte {
            let compressed = self.compress(tick);
            let (word, bit) = Self::position(compressed);
            // bits at or below `bit`
            let mask = u64::MAX >> (63 - bit);
            let masked = self.words.get(&word).copied().unwrap_or(0) & mask;
            if masked != 0 {
                let msb = 63 - masked.leading_zeros();
                (self.tick_at(word, msb), true)
            } else {
                (self.tick_at(word, 0), false)
            }
        } else {
            let compressed = self.compress(tick) + 1;
            let (word, bit) = Self::position(compressed);
            // bits at or above `bit`
            let mask = u64::MAX << bit;
            let masked = self.words.get(&word).copied().unwrap_or(0) & mask;
            if masked != 0 {
                let lsb = masked.trailing_zeros();
                (self.tick_at(word, lsb), true)
            } else {
                (self.tick_at(word, 63), false)
            }
        }
    }

    /// The next initialized tick in the direction of travel, across word
    /// boundaries: ≤ `tick` when `lte`, > `tick` otherwise. `None` when no
    /// initialized tick remains on that side.
    ///
    /// The current word is probed with a mask; beyond it, the occupied-word
    /// index jumps directly to the next word with any bit set, skipping
    /// empty space entirely.
    pub fn next_initialized_tick(&self, tick: Tick, lte: bool) -> Option<Tick> {
        if lte {
            let compressed = self.compress(tick);
            let (word, bit) = Self::position(compressed);
            if let Some(&w) = self.words.get(&word) {
                let masked = w & (u64::MAX >> (63 - bit));
                if masked != 0 {
                    let msb = 63 - masked.leading_zeros();
                    return Some(self.tick_at(word, msb));
                }
            }
            let prev = *self.occupied.range(..word).next_back()?;
            let w = self.words[&prev];
            let msb = 63 - w.leading_zeros();
            Some(self.tick_at(prev, msb))
        } else {
            let compressed = self.compress(tick) + 1;
            let (word, bit) = Self::position(compressed);
            if let Some(&w) = self.words.get(&word) {
                let masked = w & (u64::MAX << bit);
                if masked != 0 {
                    let lsb = masked.trailing_zeros();
                    return Some(self.tick_at(word, lsb));
                }
            }
            let next = *self.occupied.range(word + 1..).next()?;
            let w = self.words[&next];
            let lsb = w.trailing_zeros();
            Some(self.tick_at(next, lsb))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn set_clear_roundtrip() {
        let mut b = TickBitmap::new(60);
        assert!(!b.is_initialized(120));
        b.set(120);
        assert!(b.is_initialized(120));
        assert_eq!(b.initialized_count(), 1);
        b.set(120); // idempotent
        assert_eq!(b.initialized_count(), 1);
        b.clear(120);
        assert!(!b.is_initialized(120));
        assert_eq!(b.initialized_count(), 0);
        b.clear(120); // idempotent
    }

    #[test]
    fn negative_ticks_and_word_boundaries() {
        let mut b = TickBitmap::new(1);
        for t in [-64, -63, -1, 0, 63, 64, -887272, 887272] {
            b.set(t);
            assert!(b.is_initialized(t), "tick {t}");
        }
        assert_eq!(b.initialized_count(), 8);
        for t in [-64, -63, -1, 0, 63, 64, -887272, 887272] {
            b.clear(t);
            assert!(!b.is_initialized(t), "tick {t}");
        }
        assert!(b.words.is_empty() && b.occupied.is_empty());
    }

    #[test]
    fn unaligned_tick_is_never_initialized() {
        let mut b = TickBitmap::new(60);
        b.set(-60);
        assert!(!b.is_initialized(-59));
        assert!(!b.is_initialized(-1));
    }

    #[test]
    fn within_one_word_lte() {
        let mut b = TickBitmap::new(1);
        b.set(10);
        b.set(5);
        // searching left from 12 finds 10
        assert_eq!(
            b.next_initialized_tick_within_one_word(12, true),
            (10, true)
        );
        // from 10 itself: inclusive
        assert_eq!(
            b.next_initialized_tick_within_one_word(10, true),
            (10, true)
        );
        // from 9: finds 5
        assert_eq!(b.next_initialized_tick_within_one_word(9, true), (5, true));
        // from 4: nothing below in this word → word boundary, uninitialized
        assert_eq!(b.next_initialized_tick_within_one_word(4, true), (0, false));
    }

    #[test]
    fn within_one_word_gt() {
        let mut b = TickBitmap::new(1);
        b.set(10);
        // searching right from 5 finds 10 (exclusive of 5)
        assert_eq!(
            b.next_initialized_tick_within_one_word(5, false),
            (10, true)
        );
        // from 10: exclusive → word boundary
        assert_eq!(
            b.next_initialized_tick_within_one_word(10, false),
            (63, false)
        );
    }

    #[test]
    fn cross_word_jumps_skip_empty_space() {
        let mut b = TickBitmap::new(1);
        b.set(-10_000);
        b.set(10_000);
        assert_eq!(b.next_initialized_tick(0, true), Some(-10_000));
        assert_eq!(b.next_initialized_tick(0, false), Some(10_000));
        assert_eq!(b.next_initialized_tick(-10_000, true), Some(-10_000));
        assert_eq!(b.next_initialized_tick(-10_001, true), None);
        assert_eq!(b.next_initialized_tick(10_000, false), None);
        assert_eq!(b.next_initialized_tick(9_999, false), Some(10_000));
    }

    #[test]
    fn spacing_compression() {
        let mut b = TickBitmap::new(60);
        b.set(-120);
        b.set(180);
        // unaligned probe ticks floor correctly in both directions
        assert_eq!(b.next_initialized_tick(-61, true), Some(-120));
        assert_eq!(b.next_initialized_tick(-119, true), Some(-120));
        assert_eq!(b.next_initialized_tick(-120, true), Some(-120));
        assert_eq!(b.next_initialized_tick(-121, true), None);
        assert_eq!(b.next_initialized_tick(179, false), Some(180));
        assert_eq!(b.next_initialized_tick(180, false), None);
        assert_eq!(b.next_initialized_tick(-500, false), Some(-120));
    }

    /// Differential check against a plain ordered set under a
    /// deterministic pseudo-random flip/query schedule.
    #[test]
    fn agrees_with_btreeset_reference() {
        let spacing = 10;
        let mut bitmap = TickBitmap::new(spacing);
        let mut reference: BTreeSet<Tick> = BTreeSet::new();
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..4000 {
            let tick = ((next() % 2001) as i32 - 1000) * spacing;
            if next() % 2 == 0 {
                bitmap.set(tick);
                reference.insert(tick);
            } else {
                bitmap.clear(tick);
                reference.remove(&tick);
            }
            let probe = (next() % 20_100) as i32 - 10_050; // often unaligned
            let want_lte = reference.range(..=probe).next_back().copied();
            let want_gt = reference.range(probe + 1..).next().copied();
            assert_eq!(bitmap.next_initialized_tick(probe, true), want_lte);
            assert_eq!(bitmap.next_initialized_tick(probe, false), want_gt);
        }
        assert_eq!(bitmap.initialized_count(), reference.len());
    }
}
