//! The concentrated-liquidity pool: tick-indexed liquidity, the multi-range
//! swap loop, position lifecycle (mint / burn / collect), per-position fee
//! accounting and flash loans.
//!
//! This engine is the *single* implementation of AMM logic in the
//! workspace: the mainchain baseline contracts and the ammBoost sidechain
//! both execute it, exactly as the paper migrates "the same logic adopted
//! by the AMM" to layer 2 (§IV-B).

use crate::error::AmmError;
use crate::fast_hash::FastIntBuildHasher;
use crate::liquidity_math::{add_delta, liquidity_for_amounts};
use crate::positions::{PositionRecords, PositionTable};
use crate::sqrt_price_math::{amount0_delta, amount1_delta};
use crate::swap_math::{compute_swap_step, Remaining, SwapStep};
use crate::tick_bitmap::TickBitmap;
use crate::tick_math::{
    max_sqrt_ratio, min_sqrt_ratio, sqrt_ratio_at_tick, tick_at_sqrt_ratio, MAX_TICK, MIN_TICK,
};
use crate::types::{Amount, AmountPair, Liquidity, PositionId, Tick};
use ammboost_crypto::{Address, U256};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Minimum initialized-tick count before [`Pool::from_state`] consumes a
/// persisted tick-price table. The table is always *validated* when
/// present (a corrupt one still fails the restore closed); below this
/// density, deriving the handful of boundary prices directly is cheaper
/// than adopting the table, so small pools skip it.
pub const TICK_TABLE_MIN_TICKS: usize = 256;

/// Per-tick state (Uniswap `Tick.Info`).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TickInfo {
    /// Total liquidity referencing this tick from either side.
    pub liquidity_gross: Liquidity,
    /// Net liquidity added when crossing left→right.
    pub liquidity_net: i128,
    /// Fee growth (token0, Q128) on the *other* side of this tick.
    pub fee_growth_outside0: U256,
    /// Fee growth (token1, Q128) on the other side of this tick.
    pub fee_growth_outside1: U256,
}

/// A liquidity position.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Position {
    /// The owner's address (the LP's public-key hash).
    pub owner: Address,
    /// Lower tick of the active range.
    pub tick_lower: Tick,
    /// Upper tick of the active range.
    pub tick_upper: Tick,
    /// Liquidity owned by this position.
    pub liquidity: Liquidity,
    /// Fee growth inside the range at the last touch (token0, Q128).
    pub fee_growth_inside0_last: U256,
    /// Fee growth inside the range at the last touch (token1, Q128).
    pub fee_growth_inside1_last: U256,
    /// Token0 owed to the owner (accrued fees + burned principal).
    pub tokens_owed0: Amount,
    /// Token1 owed to the owner.
    pub tokens_owed1: Amount,
}

/// Result of a swap.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwapResult {
    /// Total input paid by the trader, fee included.
    pub amount_in: Amount,
    /// Output delivered to the trader.
    pub amount_out: Amount,
    /// The fee portion of `amount_in` (distributed to in-range LPs).
    pub fee_paid: Amount,
    /// Price after the swap.
    pub sqrt_price_after: U256,
    /// Tick after the swap.
    pub tick_after: Tick,
    /// Number of initialized ticks crossed.
    pub ticks_crossed: u32,
}

/// The fully-staged outcome of a swap, as computed by the read-only swap
/// loop: every pool field the commit step writes, plus the trader-facing
/// totals. Produced by `compute_swap`, committed by
/// [`Pool::swap_with_protection`] or returned as a quote by
/// [`Pool::quote_swap_with_protection`].
#[derive(Clone, Debug)]
struct SwapPlan {
    amount_in: Amount,
    amount_out: Amount,
    fee_total: Amount,
    sqrt_price: U256,
    tick: Tick,
    liquidity: Liquidity,
    fee_growth0: U256,
    fee_growth1: U256,
    balance0: Amount,
    balance1: Amount,
}

/// A read-only valuation of one position at the pool's current price,
/// returned by [`Pool::value_position`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PositionValuation {
    /// Principal the position's liquidity would redeem if burned at the
    /// current price (rounded down, as [`Pool::burn`] credits it).
    pub principal: AmountPair,
    /// Tokens already owed: unclaimed `tokens_owed` plus fees accrued
    /// since the position's last touch.
    pub owed: AmountPair,
}

/// Swap direction + budget: what the trader specifies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SwapKind {
    /// Spend exactly this much input token.
    ExactInput(Amount),
    /// Receive exactly this much output token.
    ExactOutput(Amount),
}

/// Which next-initialized-tick search the swap loop uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum TickSearch {
    /// Word-packed tick bitmap with cached boundary prices — the
    /// production path.
    #[default]
    Bitmap,
    /// The seed's `BTreeMap::range` scan with per-step boundary-price
    /// recomputation, retained as the differential-testing and
    /// benchmarking oracle. Produces bit-identical results.
    BTreeOracle,
}

/// Hot-path mirror of one initialized tick: its boundary sqrt price
/// (immutable once computed) and its net liquidity delta, so a crossing
/// touches neither `sqrt_ratio_at_tick` nor the ordered tick table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
struct TickCache {
    sqrt_price: U256,
    liquidity_net: i128,
}

/// The persistent state of a [`Pool`] — every field that must survive a
/// snapshot/restore cycle, **excluding** derived data (`tick_bitmap`,
/// `tick_cache`, swap scratch buffers), which [`Pool::from_state`]
/// regenerates via [`Pool::rebuild_tick_index`]. Collections are sorted so
/// the same pool always exports the same byte-identical state.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolState {
    /// Swap fee in pips.
    pub fee_pips: u32,
    /// Tick granularity.
    pub tick_spacing: i32,
    /// Current sqrt price (Q64.96).
    pub sqrt_price: U256,
    /// Current tick.
    pub tick: Tick,
    /// In-range liquidity.
    pub liquidity: Liquidity,
    /// Global fee growth, token0 (Q128).
    pub fee_growth_global0: U256,
    /// Global fee growth, token1 (Q128).
    pub fee_growth_global1: U256,
    /// Token0 balance.
    pub balance0: Amount,
    /// Token1 balance.
    pub balance1: Amount,
    /// Initialized ticks, ascending by tick.
    pub ticks: Vec<(Tick, TickInfo)>,
    /// Live positions as wire-format records, ascending by id. Kept raw
    /// so a restore adopts them zero-copy and decodes lazily.
    pub positions: PositionRecords,
    /// Compact tick→sqrt-price table: `tick_prices[i]` is the boundary
    /// sqrt price (Q64.96) of `ticks[i].0`. Persisting it lets
    /// [`Pool::from_state`] rebuild the tick index without re-deriving
    /// `sqrt_ratio_at_tick` per tick — the dominant cost of snapshot
    /// restores on tick-dense pools. An empty table means "recompute"
    /// (hand-built states stay valid).
    pub tick_prices: Vec<U256>,
}

/// A concentrated-liquidity pool for one token pair.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Pool {
    /// Swap fee in pips (hundredths of a bip); 3000 = 0.30%.
    pub fee_pips: u32,
    /// Minimum tick granularity for position boundaries.
    pub tick_spacing: i32,
    sqrt_price: U256,
    tick: Tick,
    liquidity: Liquidity,
    ticks: BTreeMap<Tick, TickInfo>,
    positions: PositionTable,
    fee_growth_global0: U256,
    fee_growth_global1: U256,
    balance0: Amount,
    balance1: Amount,
    /// Word-packed index over initialized ticks, kept in lockstep with
    /// `ticks`. Derived data: rebuildable via [`Pool::rebuild_tick_index`].
    tick_bitmap: TickBitmap,
    /// Per-initialized-tick cache (boundary price + net liquidity), kept
    /// in lockstep with `ticks`; the swap loop reads only this.
    tick_cache: HashMap<Tick, TickCache, FastIntBuildHasher>,
    tick_search: TickSearch,
    /// Reusable crossing journal: cleared and refilled by each swap so the
    /// hot loop does not allocate.
    crossings_buf: Vec<(Tick, U256, U256)>,
}

impl Pool {
    /// Creates a pool at an initial sqrt price.
    ///
    /// # Errors
    /// Fails if the price is out of tick-math range or the fee ≥ 100%.
    pub fn new(fee_pips: u32, tick_spacing: i32, sqrt_price: U256) -> Result<Pool, AmmError> {
        if fee_pips >= crate::types::PIPS_DENOMINATOR {
            return Err(AmmError::InvalidFee(fee_pips));
        }
        if tick_spacing <= 0 {
            return Err(AmmError::InvalidTickRange {
                lower: 0,
                upper: tick_spacing,
            });
        }
        let tick = tick_at_sqrt_ratio(sqrt_price)?;
        Ok(Pool {
            fee_pips,
            tick_spacing,
            sqrt_price,
            tick,
            liquidity: 0,
            ticks: BTreeMap::new(),
            positions: PositionTable::new(),
            fee_growth_global0: U256::ZERO,
            fee_growth_global1: U256::ZERO,
            balance0: 0,
            balance1: 0,
            tick_bitmap: TickBitmap::new(tick_spacing),
            tick_cache: HashMap::default(),
            tick_search: TickSearch::default(),
            crossings_buf: Vec::with_capacity(16),
        })
    }

    /// A pool at price 1.0 with Uniswap's 0.3% fee tier (spacing 60) — the
    /// configuration of the paper's single-pool experiments.
    pub fn new_standard() -> Pool {
        Pool::new(3000, 60, sqrt_ratio_at_tick(0).expect("tick 0 valid"))
            .expect("standard pool parameters are valid")
    }

    /// Current sqrt price (Q64.96).
    pub fn sqrt_price(&self) -> U256 {
        self.sqrt_price
    }

    /// Current tick.
    pub fn tick(&self) -> Tick {
        self.tick
    }

    /// Currently in-range liquidity.
    pub fn liquidity(&self) -> Liquidity {
        self.liquidity
    }

    /// Pool token balances (token0, token1).
    pub fn balances(&self) -> AmountPair {
        AmountPair::new(self.balance0, self.balance1)
    }

    /// Global fee growth accumulators (Q128).
    pub fn fee_growth_global(&self) -> (U256, U256) {
        (self.fee_growth_global0, self.fee_growth_global1)
    }

    /// Looks up a position, decoding it from the record base if it has
    /// not been materialized yet.
    pub fn position(&self, id: &PositionId) -> Option<Position> {
        self.positions.get(id)
    }

    /// Iterates over all positions (decoded on the fly; order
    /// unspecified).
    pub fn positions(&self) -> impl Iterator<Item = (PositionId, Position)> + '_ {
        self.positions.iter()
    }

    /// Number of live positions.
    pub fn position_count(&self) -> usize {
        self.positions.len()
    }

    /// How many positions are held decoded in memory (the rest remain
    /// raw snapshot records until first touch).
    pub fn materialized_position_count(&self) -> usize {
        self.positions.materialized()
    }

    /// Eagerly decodes every record-backed position — the restore-time
    /// oracle that lazy materialization is benchmarked and differentially
    /// tested against. Returns how many records were newly decoded.
    pub fn materialize_positions(&mut self) -> usize {
        self.positions.materialize_all()
    }

    /// Number of initialized ticks.
    pub fn initialized_tick_count(&self) -> usize {
        self.ticks.len()
    }

    /// The swap loop's next-tick search strategy.
    pub fn tick_search(&self) -> TickSearch {
        self.tick_search
    }

    /// Selects the next-tick search strategy. [`TickSearch::BTreeOracle`]
    /// re-enables the seed scan for differential tests and benchmark
    /// baselines; swap results are bit-identical under either engine.
    pub fn set_tick_search(&mut self, search: TickSearch) {
        self.tick_search = search;
    }

    /// Read access to the bitmap index (tests assert it stays in lockstep
    /// with the tick table).
    pub fn tick_bitmap(&self) -> &TickBitmap {
        &self.tick_bitmap
    }

    /// Rebuilds the tick bitmap and the boundary-price cache from the tick
    /// table. The accelerating structures are derived data; a pool state
    /// restored from an external snapshot calls this once instead of
    /// shipping them.
    ///
    /// # Errors
    /// Fails only if a stored tick is out of tick-math range (corrupt
    /// snapshot).
    pub fn rebuild_tick_index(&mut self) -> Result<(), AmmError> {
        self.build_tick_index(None)
    }

    /// Rebuilds the tick bitmap and boundary-price cache, taking the
    /// boundary prices from `prices` when given (the snapshot's persisted
    /// tick→sqrt-price table, aligned with `self.ticks`) instead of
    /// re-deriving each via `sqrt_ratio_at_tick`.
    fn build_tick_index(&mut self, prices: Option<&[U256]>) -> Result<(), AmmError> {
        if let Some(p) = prices {
            debug_assert_eq!(p.len(), self.ticks.len(), "price table misaligned");
        }
        let mut bitmap = TickBitmap::new(self.tick_spacing);
        let mut cache = HashMap::with_capacity_and_hasher(self.ticks.len(), Default::default());
        for (i, (t, info)) in self.ticks.iter().enumerate() {
            // establish the boundary price first: it is the range check,
            // and must fail (not panic in the bitmap) on a corrupt tick
            let sqrt_price = match prices {
                Some(p) => {
                    let price = p[i];
                    debug_assert_eq!(
                        price,
                        sqrt_ratio_at_tick(*t)?,
                        "persisted tick price diverges from tick math at tick {t}"
                    );
                    price
                }
                None => sqrt_ratio_at_tick(*t)?,
            };
            bitmap.set(*t);
            cache.insert(
                *t,
                TickCache {
                    sqrt_price,
                    liquidity_net: info.liquidity_net,
                },
            );
        }
        self.tick_bitmap = bitmap;
        self.tick_cache = cache;
        Ok(())
    }

    /// Exports the pool's persistent state (derived structures excluded)
    /// in a deterministic order, for snapshotting.
    pub fn export_state(&self) -> PoolState {
        // zero-copy when no position was touched since restore; otherwise
        // one sorted merge of the record base and the decoded overlay
        let positions = self.positions.export_records();
        // the boundary prices are already materialized in the tick cache;
        // exporting them costs lookups, not tick-math derivations
        let tick_prices = self
            .ticks
            .keys()
            .map(|t| match self.tick_cache.get(t) {
                Some(c) => c.sqrt_price,
                None => sqrt_ratio_at_tick(*t).expect("initialized tick in range"),
            })
            .collect();
        PoolState {
            fee_pips: self.fee_pips,
            tick_spacing: self.tick_spacing,
            sqrt_price: self.sqrt_price,
            tick: self.tick,
            liquidity: self.liquidity,
            fee_growth_global0: self.fee_growth_global0,
            fee_growth_global1: self.fee_growth_global1,
            balance0: self.balance0,
            balance1: self.balance1,
            ticks: self.ticks.iter().map(|(t, i)| (*t, i.clone())).collect(),
            positions,
            tick_prices,
        }
    }

    /// Reconstructs a pool from snapshotted state, regenerating all
    /// derived structures ([`Pool::rebuild_tick_index`]). The restored
    /// pool behaves bit-identically to the one that was exported.
    ///
    /// # Errors
    /// Fails when the state carries an invalid fee/spacing or a tick
    /// outside tick-math range (corrupt snapshot).
    pub fn from_state(state: PoolState) -> Result<Pool, AmmError> {
        if state.fee_pips >= crate::types::PIPS_DENOMINATOR {
            return Err(AmmError::InvalidFee(state.fee_pips));
        }
        if state.tick_spacing <= 0 {
            return Err(AmmError::InvalidTickRange {
                lower: 0,
                upper: state.tick_spacing,
            });
        }
        if !(MIN_TICK..=MAX_TICK).contains(&state.tick) {
            return Err(AmmError::InvalidTickRange {
                lower: state.tick,
                upper: state.tick,
            });
        }
        // every stored tick must be spacing-aligned: an unaligned tick
        // would land on the wrong bitmap bit and silently diverge (or
        // panic in debug) instead of failing closed on a corrupt snapshot
        for (t, _) in &state.ticks {
            if *t % state.tick_spacing != 0 || !(MIN_TICK..=MAX_TICK).contains(t) {
                return Err(AmmError::InvalidTickRange {
                    lower: *t,
                    upper: *t,
                });
            }
        }
        // ticks must be strictly ascending: the BTreeMap below would
        // silently collapse duplicates, misaligning every later entry of
        // the tick-price table against the surviving tick set
        if let Some(pair) = state.ticks.windows(2).find(|w| w[0].0 >= w[1].0) {
            return Err(AmmError::InvalidTickRange {
                lower: pair[0].0,
                upper: pair[1].0,
            });
        }
        // a persisted tick-price table must align with the tick set and
        // be strictly increasing within the sqrt-price domain; anything
        // else marks a corrupt snapshot. (Exact agreement with tick math
        // is debug-asserted when the table is consumed below.)
        let table_present = !state.tick_prices.is_empty();
        if table_present {
            if state.tick_prices.len() != state.ticks.len() {
                return Err(AmmError::CorruptTickPriceTable);
            }
            let (min, max) = (min_sqrt_ratio(), max_sqrt_ratio());
            for pair in state.tick_prices.windows(2) {
                if pair[0] >= pair[1] {
                    return Err(AmmError::CorruptTickPriceTable);
                }
            }
            for p in &state.tick_prices {
                if *p < min || *p > max {
                    return Err(AmmError::CorruptTickPriceTable);
                }
            }
            // O(1) release-mode anchors: derive the first and last
            // entries exactly — a whole-table shift or misalignment
            // shows up at the edges, without paying the per-tick
            // derivation the table exists to avoid (full agreement is
            // debug-asserted when the table is consumed below)
            for i in [0, state.ticks.len() - 1] {
                if state.tick_prices[i] != sqrt_ratio_at_tick(state.ticks[i].0)? {
                    return Err(AmmError::CorruptTickPriceTable);
                }
            }
        }
        let mut pool = Pool {
            fee_pips: state.fee_pips,
            tick_spacing: state.tick_spacing,
            sqrt_price: state.sqrt_price,
            tick: state.tick,
            liquidity: state.liquidity,
            ticks: state.ticks.into_iter().collect(),
            // O(1): the wire records become the table's base; positions
            // decode individually on first touch
            positions: PositionTable::from_records(state.positions),
            fee_growth_global0: state.fee_growth_global0,
            fee_growth_global1: state.fee_growth_global1,
            balance0: state.balance0,
            balance1: state.balance1,
            tick_bitmap: TickBitmap::new(state.tick_spacing),
            tick_cache: HashMap::default(),
            tick_search: TickSearch::default(),
            crossings_buf: Vec::with_capacity(16),
        };
        // consume the (already validated) table only past the density
        // threshold: below it, recomputing beats the table's cache churn
        if table_present && pool.ticks.len() >= TICK_TABLE_MIN_TICKS {
            pool.build_tick_index(Some(&state.tick_prices))?;
        } else {
            pool.rebuild_tick_index()?;
        }
        Ok(pool)
    }

    fn check_ticks(&self, lower: Tick, upper: Tick) -> Result<(), AmmError> {
        if lower >= upper
            || lower < MIN_TICK
            || upper > MAX_TICK
            || lower % self.tick_spacing != 0
            || upper % self.tick_spacing != 0
        {
            return Err(AmmError::InvalidTickRange { lower, upper });
        }
        Ok(())
    }

    // ---- position lifecycle ------------------------------------------------

    /// Mints (or tops up) a position with the given token budget, creating
    /// as much liquidity as the budget allows at the current price —
    /// the `getLiquidityForAmounts` + `mint` flow of the Uniswap periphery.
    ///
    /// Returns the liquidity created and the exact amounts drawn.
    ///
    /// # Errors
    /// Fails on invalid tick range, zero resulting liquidity, or owner
    /// mismatch when topping up an existing position.
    pub fn mint(
        &mut self,
        id: PositionId,
        owner: Address,
        tick_lower: Tick,
        tick_upper: Tick,
        amount0_desired: Amount,
        amount1_desired: Amount,
    ) -> Result<(Liquidity, AmountPair), AmmError> {
        self.check_ticks(tick_lower, tick_upper)?;
        let sqrt_lo = sqrt_ratio_at_tick(tick_lower)?;
        let sqrt_hi = sqrt_ratio_at_tick(tick_upper)?;
        let liquidity = liquidity_for_amounts(
            self.sqrt_price,
            sqrt_lo,
            sqrt_hi,
            amount0_desired,
            amount1_desired,
        );
        if liquidity == 0 {
            return Err(AmmError::ZeroLiquidity);
        }
        let amounts = self.mint_liquidity(id, owner, tick_lower, tick_upper, liquidity)?;
        Ok((liquidity, amounts))
    }

    /// Quotes a mint without touching state: the liquidity and token
    /// amounts [`Pool::mint`] would produce for this budget. Lets callers
    /// (e.g. the sidechain processor) check deposit coverage *before*
    /// executing.
    ///
    /// # Errors
    /// Fails on invalid tick ranges or zero resulting liquidity.
    pub fn quote_mint(
        &self,
        tick_lower: Tick,
        tick_upper: Tick,
        amount0_desired: Amount,
        amount1_desired: Amount,
    ) -> Result<(Liquidity, AmountPair), AmmError> {
        self.check_ticks(tick_lower, tick_upper)?;
        let sqrt_lo = sqrt_ratio_at_tick(tick_lower)?;
        let sqrt_hi = sqrt_ratio_at_tick(tick_upper)?;
        let liquidity = liquidity_for_amounts(
            self.sqrt_price,
            sqrt_lo,
            sqrt_hi,
            amount0_desired,
            amount1_desired,
        );
        if liquidity == 0 {
            return Err(AmmError::ZeroLiquidity);
        }
        let amounts = if self.tick < tick_lower {
            AmountPair::new(amount0_delta(sqrt_lo, sqrt_hi, liquidity, true)?, 0)
        } else if self.tick < tick_upper {
            AmountPair::new(
                amount0_delta(self.sqrt_price, sqrt_hi, liquidity, true)?,
                amount1_delta(sqrt_lo, self.sqrt_price, liquidity, true)?,
            )
        } else {
            AmountPair::new(0, amount1_delta(sqrt_lo, sqrt_hi, liquidity, true)?)
        };
        Ok((liquidity, amounts))
    }

    /// Core-style mint of an exact liquidity amount. Returns the token
    /// amounts the LP must pay (rounded up).
    ///
    /// # Errors
    /// Fails on invalid range, owner mismatch or liquidity overflow.
    pub fn mint_liquidity(
        &mut self,
        id: PositionId,
        owner: Address,
        tick_lower: Tick,
        tick_upper: Tick,
        liquidity: Liquidity,
    ) -> Result<AmountPair, AmmError> {
        self.check_ticks(tick_lower, tick_upper)?;
        if liquidity == 0 {
            return Err(AmmError::ZeroLiquidity);
        }
        if let Some(existing) = self.positions.get(&id) {
            if existing.owner != owner {
                return Err(AmmError::NotPositionOwner(id));
            }
            if existing.tick_lower != tick_lower || existing.tick_upper != tick_upper {
                return Err(AmmError::InvalidTickRange {
                    lower: tick_lower,
                    upper: tick_upper,
                });
            }
        }
        let amounts = self.modify_position(id, owner, tick_lower, tick_upper, liquidity as i128)?;
        self.balance0 = self
            .balance0
            .checked_add(amounts.amount0)
            .ok_or(AmmError::BalanceOverflow)?;
        self.balance1 = self
            .balance1
            .checked_add(amounts.amount1)
            .ok_or(AmmError::BalanceOverflow)?;
        Ok(amounts)
    }

    /// Burns `liquidity` from a position; the principal is credited to the
    /// position's `tokens_owed` (withdrawn later via [`Pool::collect`]),
    /// matching Uniswap's two-step burn-then-collect flow.
    ///
    /// # Errors
    /// Fails when the caller is not the owner or burns more than held.
    pub fn burn(
        &mut self,
        id: PositionId,
        owner: Address,
        liquidity: Liquidity,
    ) -> Result<AmountPair, AmmError> {
        let pos = self
            .positions
            .get(&id)
            .ok_or(AmmError::PositionNotFound(id))?;
        if pos.owner != owner {
            return Err(AmmError::NotPositionOwner(id));
        }
        if liquidity > pos.liquidity {
            return Err(AmmError::InsufficientLiquidity {
                requested: liquidity,
                available: pos.liquidity,
            });
        }
        let (lower, upper) = (pos.tick_lower, pos.tick_upper);
        let amounts = self.modify_position(id, owner, lower, upper, -(liquidity as i128))?;
        let pos = self.positions.get_mut(&id).expect("position existed above");
        pos.tokens_owed0 = pos
            .tokens_owed0
            .checked_add(amounts.amount0)
            .ok_or(AmmError::BalanceOverflow)?;
        pos.tokens_owed1 = pos
            .tokens_owed1
            .checked_add(amounts.amount1)
            .ok_or(AmmError::BalanceOverflow)?;
        Ok(amounts)
    }

    /// Collects owed tokens (fees and/or burned principal) from a position,
    /// transferring them out of the pool. Requests are capped at what is
    /// owed. A fully drained position with zero liquidity is deleted.
    ///
    /// # Errors
    /// Fails on unknown position or wrong owner.
    pub fn collect(
        &mut self,
        id: PositionId,
        owner: Address,
        amount0_requested: Amount,
        amount1_requested: Amount,
    ) -> Result<AmountPair, AmmError> {
        // Refresh the fee snapshot first so owed amounts are current.
        let (lower, upper, pos_liquidity) = {
            let pos = self
                .positions
                .get(&id)
                .ok_or(AmmError::PositionNotFound(id))?;
            if pos.owner != owner {
                return Err(AmmError::NotPositionOwner(id));
            }
            (pos.tick_lower, pos.tick_upper, pos.liquidity)
        };
        if pos_liquidity > 0 {
            // poke: update owed fees without changing liquidity
            self.modify_position(id, owner, lower, upper, 0)?;
        }
        let pos = self.positions.get_mut(&id).expect("position existed above");
        let take0 = amount0_requested.min(pos.tokens_owed0);
        let take1 = amount1_requested.min(pos.tokens_owed1);
        pos.tokens_owed0 -= take0;
        pos.tokens_owed1 -= take1;
        let drained = pos.liquidity == 0 && pos.tokens_owed0 == 0 && pos.tokens_owed1 == 0;
        if drained {
            self.positions.remove(&id);
        }
        self.balance0 = self
            .balance0
            .checked_sub(take0)
            .ok_or(AmmError::PoolInsolvent)?;
        self.balance1 = self
            .balance1
            .checked_sub(take1)
            .ok_or(AmmError::PoolInsolvent)?;
        Ok(AmountPair::new(take0, take1))
    }

    /// Applies a liquidity delta to a position and to the tick structures,
    /// returning the token amounts moved (paid in for `delta > 0`, owed out
    /// for `delta < 0`; zero delta just refreshes fees).
    fn modify_position(
        &mut self,
        id: PositionId,
        owner: Address,
        tick_lower: Tick,
        tick_upper: Tick,
        delta: i128,
    ) -> Result<AmountPair, AmmError> {
        if delta != 0 {
            self.update_tick(tick_lower, delta, false)?;
            self.update_tick(tick_upper, delta, true)?;
        }

        let (inside0, inside1) = self.fee_growth_inside(tick_lower, tick_upper);

        // Ticks that flipped to zero gross liquidity are cleared only
        // *after* the fee computation above — clearing first would zero
        // the outside accumulators and corrupt the position's final fee
        // settlement (Uniswap clears in exactly this order).
        if delta < 0 {
            for t in [tick_lower, tick_upper] {
                if self
                    .ticks
                    .get(&t)
                    .map(|i| i.liquidity_gross == 0)
                    .unwrap_or(false)
                {
                    self.ticks.remove(&t);
                    self.tick_bitmap.clear(t);
                    self.tick_cache.remove(&t);
                }
            }
        }

        let pos = self.positions.entry_or_insert_with(id, || Position {
            owner,
            tick_lower,
            tick_upper,
            liquidity: 0,
            fee_growth_inside0_last: inside0,
            fee_growth_inside1_last: inside1,
            tokens_owed0: 0,
            tokens_owed1: 0,
        });

        // accrue fees since the last touch
        let owed0 = fees_owed(pos.liquidity, pos.fee_growth_inside0_last, inside0);
        let owed1 = fees_owed(pos.liquidity, pos.fee_growth_inside1_last, inside1);
        pos.tokens_owed0 = pos.tokens_owed0.saturating_add(owed0);
        pos.tokens_owed1 = pos.tokens_owed1.saturating_add(owed1);
        pos.fee_growth_inside0_last = inside0;
        pos.fee_growth_inside1_last = inside1;
        pos.liquidity = add_delta(pos.liquidity, delta)?;

        // token amounts for the delta
        let sqrt_lo = sqrt_ratio_at_tick(tick_lower)?;
        let sqrt_hi = sqrt_ratio_at_tick(tick_upper)?;
        let abs = delta.unsigned_abs();
        let round_up = delta > 0;
        let amounts = if abs == 0 {
            AmountPair::ZERO
        } else if self.tick < tick_lower {
            AmountPair::new(amount0_delta(sqrt_lo, sqrt_hi, abs, round_up)?, 0)
        } else if self.tick < tick_upper {
            let a0 = amount0_delta(self.sqrt_price, sqrt_hi, abs, round_up)?;
            let a1 = amount1_delta(sqrt_lo, self.sqrt_price, abs, round_up)?;
            self.liquidity = add_delta(self.liquidity, delta)?;
            AmountPair::new(a0, a1)
        } else {
            AmountPair::new(0, amount1_delta(sqrt_lo, sqrt_hi, abs, round_up)?)
        };
        Ok(amounts)
    }

    fn update_tick(&mut self, tick: Tick, delta: i128, is_upper: bool) -> Result<(), AmmError> {
        let current_tick = self.tick;
        let (g0, g1) = (self.fee_growth_global0, self.fee_growth_global1);
        let info = self.ticks.entry(tick).or_default();
        let was_initialized = info.liquidity_gross > 0;
        info.liquidity_gross = add_delta(info.liquidity_gross, delta)?;
        let newly_initialized = !was_initialized && info.liquidity_gross > 0;
        if newly_initialized && tick <= current_tick {
            // by convention, assume all prior fee growth happened below
            info.fee_growth_outside0 = g0;
            info.fee_growth_outside1 = g1;
        }
        if is_upper {
            info.liquidity_net -= delta;
        } else {
            info.liquidity_net += delta;
        }
        let net_after = info.liquidity_net;
        if newly_initialized {
            self.tick_bitmap.set(tick);
            self.tick_cache.insert(
                tick,
                TickCache {
                    sqrt_price: sqrt_ratio_at_tick(tick)?,
                    liquidity_net: net_after,
                },
            );
        } else if let Some(cached) = self.tick_cache.get_mut(&tick) {
            cached.liquidity_net = net_after;
        }
        // NOTE: ticks whose gross liquidity drops to zero are *not*
        // removed here; `modify_position` clears them after the position's
        // fee settlement (matching Uniswap's update-then-clear order).
        Ok(())
    }

    /// Fee growth inside `[lower, upper]` (Q128, wrapping arithmetic as in
    /// Uniswap — accumulators may overflow by design).
    fn fee_growth_inside(&self, lower: Tick, upper: Tick) -> (U256, U256) {
        let zero = TickInfo::default();
        let lo = self.ticks.get(&lower).unwrap_or(&zero);
        let hi = self.ticks.get(&upper).unwrap_or(&zero);
        let (g0, g1) = (self.fee_growth_global0, self.fee_growth_global1);

        let (below0, below1) = if self.tick >= lower {
            (lo.fee_growth_outside0, lo.fee_growth_outside1)
        } else {
            (
                g0.wrapping_sub(lo.fee_growth_outside0),
                g1.wrapping_sub(lo.fee_growth_outside1),
            )
        };
        let (above0, above1) = if self.tick < upper {
            (hi.fee_growth_outside0, hi.fee_growth_outside1)
        } else {
            (
                g0.wrapping_sub(hi.fee_growth_outside0),
                g1.wrapping_sub(hi.fee_growth_outside1),
            )
        };
        (
            g0.wrapping_sub(below0).wrapping_sub(above0),
            g1.wrapping_sub(below1).wrapping_sub(above1),
        )
    }

    // ---- swapping ------------------------------------------------------------

    /// Executes a swap.
    ///
    /// * `zero_for_one` — `true` to sell token0 for token1 (price moves
    ///   down).
    /// * `kind` — exact-input or exact-output budget.
    /// * `sqrt_price_limit` — optional worst acceptable price.
    ///
    /// # Errors
    /// Fails on a zero budget, an invalid limit, or when the pool cannot
    /// fill an exact-output request.
    pub fn swap(
        &mut self,
        zero_for_one: bool,
        kind: SwapKind,
        sqrt_price_limit: Option<U256>,
    ) -> Result<SwapResult, AmmError> {
        self.swap_with_protection(zero_for_one, kind, sqrt_price_limit, 0, Amount::MAX)
    }

    /// Crossing bookkeeping shared by the glide and trade branches of the
    /// swap loop: journals the crossing, applies the tick's net liquidity
    /// (from the cache on the bitmap path, from the tick table on the
    /// oracle path) and steps the staged tick past the boundary. Read-only
    /// on the pool: all effects land in `crossings` and the staged locals.
    #[allow(clippy::too_many_arguments)]
    fn cross_tick(
        &self,
        crossings: &mut Vec<(Tick, U256, U256)>,
        boundary_tick: Tick,
        cached: Option<TickCache>,
        zero_for_one: bool,
        fee_growth0: U256,
        fee_growth1: U256,
        liquidity: &mut Liquidity,
        tick: &mut Tick,
    ) -> Result<(), AmmError> {
        crossings.push((boundary_tick, fee_growth0, fee_growth1));
        let net = match cached {
            Some(c) => c.liquidity_net,
            None => self
                .ticks
                .get(&boundary_tick)
                .map(|i| i.liquidity_net)
                .unwrap_or(0),
        };
        *liquidity = add_delta(*liquidity, if zero_for_one { -net } else { net })?;
        *tick = if zero_for_one {
            boundary_tick - 1
        } else {
            boundary_tick
        };
        Ok(())
    }

    /// Quotes a swap without touching state: the exact [`SwapResult`] that
    /// [`Pool::swap`] would produce right now, including all failure modes
    /// (an unfillable exact-output request fails the quote exactly as it
    /// would fail the execution). This is the read path served by epoch
    /// quote views: it runs the *same* staged compute as the write path,
    /// so quote and execution are bit-identical by construction.
    ///
    /// # Errors
    /// Identical to [`Pool::swap`].
    pub fn quote_swap(
        &self,
        zero_for_one: bool,
        kind: SwapKind,
        sqrt_price_limit: Option<U256>,
    ) -> Result<SwapResult, AmmError> {
        self.quote_swap_with_protection(zero_for_one, kind, sqrt_price_limit, 0, Amount::MAX)
    }

    /// Read-only variant of [`Pool::swap_with_protection`]: quotes the
    /// swap with the trader's slippage bounds applied, without mutating
    /// the pool.
    ///
    /// # Errors
    /// Identical to [`Pool::swap_with_protection`].
    pub fn quote_swap_with_protection(
        &self,
        zero_for_one: bool,
        kind: SwapKind,
        sqrt_price_limit: Option<U256>,
        min_amount_out: Amount,
        max_amount_in: Amount,
    ) -> Result<SwapResult, AmmError> {
        let mut crossings = Vec::new();
        let plan = self.compute_swap(
            zero_for_one,
            kind,
            sqrt_price_limit,
            min_amount_out,
            max_amount_in,
            &mut crossings,
        )?;
        Ok(SwapResult {
            amount_in: plan.amount_in,
            amount_out: plan.amount_out,
            fee_paid: plan.fee_total,
            sqrt_price_after: plan.sqrt_price,
            tick_after: plan.tick,
            ticks_crossed: crossings.len() as u32,
        })
    }

    /// Like [`Pool::swap`], but additionally enforces the trader's
    /// slippage bounds *before committing*: the swap fails atomically when
    /// the output falls below `min_amount_out` or the input exceeds
    /// `max_amount_in`.
    ///
    /// # Errors
    /// [`AmmError::SlippageExceeded`] on a violated bound (state
    /// untouched), plus all [`Pool::swap`] failure modes.
    pub fn swap_with_protection(
        &mut self,
        zero_for_one: bool,
        kind: SwapKind,
        sqrt_price_limit: Option<U256>,
        min_amount_out: Amount,
        max_amount_in: Amount,
    ) -> Result<SwapResult, AmmError> {
        // Reuse the pool's journal buffer so the hot path stays
        // allocation-free; it is restored on every exit path.
        let mut crossings = std::mem::take(&mut self.crossings_buf);
        let plan = match self.compute_swap(
            zero_for_one,
            kind,
            sqrt_price_limit,
            min_amount_out,
            max_amount_in,
            &mut crossings,
        ) {
            Ok(plan) => plan,
            Err(e) => {
                self.crossings_buf = crossings;
                return Err(e);
            }
        };

        // ---- commit ----
        self.balance0 = plan.balance0;
        self.balance1 = plan.balance1;
        self.sqrt_price = plan.sqrt_price;
        self.tick = plan.tick;
        self.liquidity = plan.liquidity;
        self.fee_growth_global0 = plan.fee_growth0;
        self.fee_growth_global1 = plan.fee_growth1;
        for (t, g0, g1) in crossings.iter() {
            if let Some(info) = self.ticks.get_mut(t) {
                info.fee_growth_outside0 = g0.wrapping_sub(info.fee_growth_outside0);
                info.fee_growth_outside1 = g1.wrapping_sub(info.fee_growth_outside1);
            }
        }
        let ticks_crossed = crossings.len() as u32;
        self.crossings_buf = crossings;

        Ok(SwapResult {
            amount_in: plan.amount_in,
            amount_out: plan.amount_out,
            fee_paid: plan.fee_total,
            sqrt_price_after: self.sqrt_price,
            tick_after: self.tick,
            ticks_crossed,
        })
    }

    /// The swap loop itself, factored read-only: validates the request,
    /// stages every state change in a [`SwapPlan`] plus the `crossings`
    /// journal, and enforces fill + slippage + balance feasibility —
    /// without touching the pool. [`Pool::swap_with_protection`] commits
    /// the plan; [`Pool::quote_swap_with_protection`] returns it as a
    /// quote. One implementation serves both, so they cannot diverge.
    fn compute_swap(
        &self,
        zero_for_one: bool,
        kind: SwapKind,
        sqrt_price_limit: Option<U256>,
        min_amount_out: Amount,
        max_amount_in: Amount,
        crossings: &mut Vec<(Tick, U256, U256)>,
    ) -> Result<SwapPlan, AmmError> {
        let budget = match kind {
            SwapKind::ExactInput(a) | SwapKind::ExactOutput(a) => a,
        };
        if budget == 0 {
            return Err(AmmError::ZeroAmount);
        }
        let limit = match sqrt_price_limit {
            Some(l) => l,
            None => {
                if zero_for_one {
                    min_sqrt_ratio() + U256::ONE
                } else {
                    max_sqrt_ratio() - U256::ONE
                }
            }
        };
        if zero_for_one {
            if limit >= self.sqrt_price || limit < min_sqrt_ratio() {
                return Err(AmmError::InvalidPriceLimit);
            }
        } else if limit <= self.sqrt_price || limit > max_sqrt_ratio() {
            return Err(AmmError::InvalidPriceLimit);
        }

        // The loop stages all state in locals plus the crossing journal;
        // the caller commits only on success, so a failed swap (e.g. an
        // unfillable exact-output request) leaves the pool untouched.
        let mut remaining = budget;
        let mut amount_in_total: Amount = 0;
        let mut amount_out_total: Amount = 0;
        let mut fee_total: Amount = 0;
        let mut sqrt_price = self.sqrt_price;
        let mut tick = self.tick;
        let mut liquidity = self.liquidity;
        let mut fee_growth0 = self.fee_growth_global0;
        let mut fee_growth1 = self.fee_growth_global1;
        // Fees accrued since in-range liquidity last changed. Liquidity is
        // constant between crossings, so the `(fee << 128) / liquidity`
        // growth division is paid once per segment (flushed before every
        // crossing and at loop exit) instead of once per step.
        let mut seg_fee: Amount = 0;
        // (tick, fee growth at crossing time) — the journal buffer may be
        // reused across swaps so the hot loop never allocates. After a
        // failed swap it holds stale entries; the clear below discards
        // them before each run.
        crossings.clear();

        /// Folds a segment's accumulated fee into the growth accumulator
        /// for the segment's (constant) liquidity.
        #[inline]
        fn flush_seg_fee(
            seg_fee: &mut Amount,
            liquidity: Liquidity,
            zero_for_one: bool,
            fee_growth0: &mut U256,
            fee_growth1: &mut U256,
        ) {
            if *seg_fee == 0 {
                return;
            }
            debug_assert!(liquidity > 0, "fees only accrue with in-range liquidity");
            let growth =
                U256::from_u128(*seg_fee).mul_div(U256::pow2(128), U256::from_u128(liquidity));
            if zero_for_one {
                *fee_growth0 = fee_growth0.wrapping_add(growth);
            } else {
                *fee_growth1 = fee_growth1.wrapping_add(growth);
            }
            *seg_fee = 0;
        }

        while remaining > 0 && sqrt_price != limit {
            // Next initialized tick in the direction of travel. The bitmap
            // answers with a masked bit scan plus at most one jump through
            // the occupied-word index; the oracle path retains the seed's
            // ordered-map range scan for differential testing.
            let next_tick = match self.tick_search {
                TickSearch::Bitmap => self.tick_bitmap.next_initialized_tick(tick, zero_for_one),
                TickSearch::BTreeOracle => {
                    if zero_for_one {
                        self.ticks.range(..=tick).next_back().map(|(t, _)| *t)
                    } else {
                        self.ticks.range(tick + 1..).next().map(|(t, _)| *t)
                    }
                }
            };
            let boundary_tick = next_tick.unwrap_or(if zero_for_one { MIN_TICK } else { MAX_TICK });
            // Boundary price and net liquidity: served from the per-tick
            // cache on the bitmap path (populated at tick initialization),
            // recomputed/re-fetched on the oracle path exactly as the seed
            // did.
            let cached: Option<TickCache> = match self.tick_search {
                TickSearch::Bitmap => next_tick.and_then(|t| self.tick_cache.get(&t).copied()),
                TickSearch::BTreeOracle => None,
            };
            let boundary_price = match self.tick_search {
                TickSearch::Bitmap => match (cached, next_tick) {
                    (Some(c), _) => c.sqrt_price,
                    (None, Some(t)) => sqrt_ratio_at_tick(t)?,
                    (None, None) if zero_for_one => min_sqrt_ratio(),
                    (None, None) => max_sqrt_ratio(),
                },
                TickSearch::BTreeOracle => sqrt_ratio_at_tick(boundary_tick)?,
            };
            let target = if zero_for_one {
                boundary_price.max(limit)
            } else {
                boundary_price.min(limit)
            };

            if liquidity == 0 {
                // No liquidity in this range: glide to the boundary without
                // trading; stop entirely if there is nothing beyond it.
                // (Nothing to flush — fees cannot have accrued since the
                // segment has no liquidity.)
                debug_assert_eq!(seg_fee, 0);
                if next_tick.is_none() {
                    break;
                }
                sqrt_price = target;
                if target == boundary_price {
                    self.cross_tick(
                        crossings,
                        boundary_tick,
                        cached,
                        zero_for_one,
                        fee_growth0,
                        fee_growth1,
                        &mut liquidity,
                        &mut tick,
                    )?;
                } else {
                    tick = tick_at_sqrt_ratio(target)?;
                    break; // hit the price limit
                }
                continue;
            }

            let step: SwapStep = compute_swap_step(
                sqrt_price,
                target,
                liquidity,
                if matches!(kind, SwapKind::ExactInput(_)) {
                    Remaining::Input(remaining)
                } else {
                    Remaining::Output(remaining)
                },
                self.fee_pips,
            )?;

            match kind {
                SwapKind::ExactInput(_) => {
                    remaining = remaining
                        .checked_sub(step.amount_in + step.fee_amount)
                        .ok_or(AmmError::BalanceOverflow)?;
                }
                SwapKind::ExactOutput(_) => {
                    remaining -= step.amount_out.min(remaining);
                }
            }
            amount_in_total += step.amount_in + step.fee_amount;
            amount_out_total += step.amount_out;
            fee_total += step.fee_amount;

            // fees owed to in-range LPs accumulate per segment; the growth
            // division happens at the next crossing or at loop exit
            seg_fee += step.fee_amount;

            sqrt_price = step.sqrt_price_next;
            if step.sqrt_price_next == boundary_price && next_tick.is_some() {
                flush_seg_fee(
                    &mut seg_fee,
                    liquidity,
                    zero_for_one,
                    &mut fee_growth0,
                    &mut fee_growth1,
                );
                self.cross_tick(
                    crossings,
                    boundary_tick,
                    cached,
                    zero_for_one,
                    fee_growth0,
                    fee_growth1,
                    &mut liquidity,
                    &mut tick,
                )?;
            } else if step.sqrt_price_next != boundary_price {
                tick = tick_at_sqrt_ratio(step.sqrt_price_next)?;
            }
        }
        flush_seg_fee(
            &mut seg_fee,
            liquidity,
            zero_for_one,
            &mut fee_growth0,
            &mut fee_growth1,
        );

        if matches!(kind, SwapKind::ExactOutput(_)) && remaining > 0 {
            return Err(AmmError::InsufficientLiquidity {
                requested: budget,
                available: budget - remaining,
            });
        }
        if amount_out_total < min_amount_out || amount_in_total > max_amount_in {
            return Err(AmmError::SlippageExceeded {
                amount_in: amount_in_total,
                amount_out: amount_out_total,
            });
        }

        // settle pool balances: input (incl. fee) in, output out
        let (in0, in1, out0, out1) = if zero_for_one {
            (amount_in_total, 0, 0, amount_out_total)
        } else {
            (0, amount_in_total, amount_out_total, 0)
        };
        let balance0 = self
            .balance0
            .checked_add(in0)
            .ok_or(AmmError::BalanceOverflow)?
            .checked_sub(out0)
            .ok_or(AmmError::PoolInsolvent)?;
        let balance1 = self
            .balance1
            .checked_add(in1)
            .ok_or(AmmError::BalanceOverflow)?
            .checked_sub(out1)
            .ok_or(AmmError::PoolInsolvent)?;

        Ok(SwapPlan {
            amount_in: amount_in_total,
            amount_out: amount_out_total,
            fee_total,
            sqrt_price,
            tick,
            liquidity,
            fee_growth0,
            fee_growth1,
            balance0,
            balance1,
        })
    }

    /// Values a position at the pool's current price, read-only: the
    /// principal its liquidity would redeem if burned now (rounded down,
    /// exactly as [`Pool::burn`] would credit it) plus everything already
    /// owed — unclaimed `tokens_owed` and fees accrued since the
    /// position's last touch. This is the position-valuation query served
    /// by epoch quote views.
    ///
    /// # Errors
    /// Fails on an unknown position id.
    pub fn value_position(&self, id: &PositionId) -> Result<PositionValuation, AmmError> {
        let pos = self
            .positions
            .get(id)
            .ok_or(AmmError::PositionNotFound(*id))?;
        let principal = if pos.liquidity == 0 {
            AmountPair::ZERO
        } else {
            let sqrt_lo = sqrt_ratio_at_tick(pos.tick_lower)?;
            let sqrt_hi = sqrt_ratio_at_tick(pos.tick_upper)?;
            // burn credits round down; mirror that here
            if self.tick < pos.tick_lower {
                AmountPair::new(amount0_delta(sqrt_lo, sqrt_hi, pos.liquidity, false)?, 0)
            } else if self.tick < pos.tick_upper {
                AmountPair::new(
                    amount0_delta(self.sqrt_price, sqrt_hi, pos.liquidity, false)?,
                    amount1_delta(sqrt_lo, self.sqrt_price, pos.liquidity, false)?,
                )
            } else {
                AmountPair::new(0, amount1_delta(sqrt_lo, sqrt_hi, pos.liquidity, false)?)
            }
        };
        let (inside0, inside1) = self.fee_growth_inside(pos.tick_lower, pos.tick_upper);
        let owed = AmountPair::new(
            pos.tokens_owed0.saturating_add(fees_owed(
                pos.liquidity,
                pos.fee_growth_inside0_last,
                inside0,
            )),
            pos.tokens_owed1.saturating_add(fees_owed(
                pos.liquidity,
                pos.fee_growth_inside1_last,
                inside1,
            )),
        );
        Ok(PositionValuation { principal, owed })
    }

    // ---- flash loans -----------------------------------------------------------

    /// A flash loan: lends `(amount0, amount1)` for the duration of the
    /// callback, which must return the repayment. The repayment must cover
    /// principal plus the pool fee on each token; fees are distributed to
    /// in-range LPs.
    ///
    /// # Errors
    /// Fails when the pool lacks reserves or the callback under-repays
    /// (in which case all state is left untouched — the "inverted loan" of
    /// the paper's §IV-B).
    pub fn flash<F>(
        &mut self,
        amount0: Amount,
        amount1: Amount,
        callback: F,
    ) -> Result<AmountPair, AmmError>
    where
        F: FnOnce(AmountPair) -> AmountPair,
    {
        if amount0 > self.balance0 || amount1 > self.balance1 {
            return Err(AmmError::InsufficientReserves);
        }
        let fee0 = ceil_fee(amount0, self.fee_pips);
        let fee1 = ceil_fee(amount1, self.fee_pips);
        let repayment = callback(AmountPair::new(amount0, amount1));
        if repayment.amount0 < amount0 + fee0 || repayment.amount1 < amount1 + fee1 {
            return Err(AmmError::FlashNotRepaid);
        }
        let paid0 = repayment.amount0 - amount0;
        let paid1 = repayment.amount1 - amount1;
        self.balance0 = self
            .balance0
            .checked_add(paid0)
            .ok_or(AmmError::BalanceOverflow)?;
        self.balance1 = self
            .balance1
            .checked_add(paid1)
            .ok_or(AmmError::BalanceOverflow)?;
        if self.liquidity > 0 {
            let l = U256::from_u128(self.liquidity);
            if paid0 > 0 {
                self.fee_growth_global0 = self
                    .fee_growth_global0
                    .wrapping_add(U256::from_u128(paid0).mul_div(U256::pow2(128), l));
            }
            if paid1 > 0 {
                self.fee_growth_global1 = self
                    .fee_growth_global1
                    .wrapping_add(U256::from_u128(paid1).mul_div(U256::pow2(128), l));
            }
        }
        Ok(AmountPair::new(paid0, paid1))
    }
}

fn ceil_fee(amount: Amount, fee_pips: u32) -> Amount {
    U256::from_u128(amount)
        .mul_div_rounding_up(
            U256::from_u64(fee_pips as u64),
            U256::from_u64(crate::types::PIPS_DENOMINATOR as u64),
        )
        .to_u128()
        .expect("fee fits")
}

fn fees_owed(liquidity: Liquidity, last: U256, now: U256) -> Amount {
    if liquidity == 0 {
        return 0;
    }
    let delta = now.wrapping_sub(last);
    // Fee-growth accumulators use wrapping arithmetic (as in Uniswap); a
    // delta with the top bit set is a wrapped "negative" — transiently
    // possible around tick (re)initialization — and owes nothing. Genuine
    // positive deltas are far below 2^255 (fees are bounded by traded
    // volume).
    if delta.bit(255) {
        return 0;
    }
    delta
        .mul_div(U256::from_u128(liquidity), U256::pow2(128))
        .to_u128()
        .unwrap_or(Amount::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(i: u64) -> Address {
        Address::from_index(i)
    }

    fn pid(i: u64) -> PositionId {
        PositionId::derive(&[b"test", &i.to_be_bytes()])
    }

    /// Standard pool with one wide in-range position.
    fn pool_with_liquidity() -> Pool {
        let mut pool = Pool::new_standard();
        pool.mint(pid(1), addr(1), -600, 600, 1_000_000_000, 1_000_000_000)
            .unwrap();
        pool
    }

    #[test]
    fn new_standard_is_at_price_one() {
        let pool = Pool::new_standard();
        assert_eq!(pool.tick(), 0);
        assert_eq!(pool.liquidity(), 0);
        assert_eq!(pool.fee_pips, 3000);
    }

    #[test]
    fn invalid_fee_and_spacing_rejected() {
        let p = sqrt_ratio_at_tick(0).unwrap();
        assert!(Pool::new(1_000_000, 60, p).is_err());
        assert!(Pool::new(3000, 0, p).is_err());
    }

    #[test]
    fn mint_in_range_takes_both_tokens() {
        let pool = pool_with_liquidity();
        let b = pool.balances();
        assert!(b.amount0 > 0 && b.amount1 > 0);
        assert!(pool.liquidity() > 0);
        assert_eq!(pool.position_count(), 1);
        assert_eq!(pool.initialized_tick_count(), 2);
    }

    #[test]
    fn mint_misaligned_ticks_rejected() {
        let mut pool = Pool::new_standard();
        let err = pool.mint(pid(1), addr(1), -601, 600, 1000, 1000);
        assert!(matches!(err, Err(AmmError::InvalidTickRange { .. })));
    }

    #[test]
    fn mint_inverted_range_rejected() {
        let mut pool = Pool::new_standard();
        assert!(pool.mint(pid(1), addr(1), 600, -600, 1000, 1000).is_err());
        assert!(pool.mint(pid(1), addr(1), 60, 60, 1000, 1000).is_err());
    }

    #[test]
    fn swap_exact_input_moves_price_down() {
        let mut pool = pool_with_liquidity();
        let before = pool.sqrt_price();
        let res = pool
            .swap(true, SwapKind::ExactInput(1_000_000), None)
            .unwrap();
        assert!(pool.sqrt_price() < before);
        assert_eq!(res.amount_in, 1_000_000);
        assert!(res.amount_out > 0);
        assert!(res.fee_paid > 0);
    }

    #[test]
    fn swap_exact_output_delivers_exactly() {
        let mut pool = pool_with_liquidity();
        let res = pool
            .swap(false, SwapKind::ExactOutput(500_000), None)
            .unwrap();
        assert_eq!(res.amount_out, 500_000);
        assert!(res.amount_in > 500_000 * 997 / 1000 / 2); // sane magnitude
    }

    #[test]
    fn swap_zero_amount_rejected() {
        let mut pool = pool_with_liquidity();
        assert!(matches!(
            pool.swap(true, SwapKind::ExactInput(0), None),
            Err(AmmError::ZeroAmount)
        ));
    }

    #[test]
    fn swap_bad_limit_rejected() {
        let mut pool = pool_with_liquidity();
        // zero_for_one with a limit above current price
        let bad = pool.sqrt_price() + U256::ONE;
        assert!(matches!(
            pool.swap(true, SwapKind::ExactInput(10), Some(bad)),
            Err(AmmError::InvalidPriceLimit)
        ));
    }

    #[test]
    fn swap_respects_price_limit() {
        let mut pool = pool_with_liquidity();
        let limit = sqrt_ratio_at_tick(-30).unwrap();
        let res = pool
            .swap(true, SwapKind::ExactInput(u128::MAX >> 8), Some(limit))
            .unwrap();
        assert_eq!(res.sqrt_price_after, limit);
        // budget not exhausted: the swap stopped at the limit
        assert!(res.amount_in < u128::MAX >> 8);
    }

    #[test]
    fn swap_crosses_ticks() {
        let mut pool = Pool::new_standard();
        // two nested ranges
        pool.mint(pid(1), addr(1), -600, 600, 10_000_000, 10_000_000)
            .unwrap();
        pool.mint(pid(2), addr(2), -120, 120, 50_000_000, 50_000_000)
            .unwrap();
        let liquidity_inside = pool.liquidity();
        // swap big enough to exit the inner range (stops at the -480 limit)
        let res = pool
            .swap(
                true,
                SwapKind::ExactInput(150_000_000),
                Some(sqrt_ratio_at_tick(-480).unwrap()),
            )
            .unwrap();
        assert!(res.ticks_crossed >= 1, "crossed {}", res.ticks_crossed);
        assert!(pool.tick() < -120);
        assert!(pool.liquidity() < liquidity_inside);
    }

    #[test]
    fn exact_output_beyond_liquidity_fails() {
        let mut pool = pool_with_liquidity();
        let err = pool.swap(true, SwapKind::ExactOutput(u128::MAX >> 8), None);
        assert!(matches!(err, Err(AmmError::InsufficientLiquidity { .. })));
    }

    #[test]
    fn failed_swap_leaves_pool_untouched() {
        let mut pool = pool_with_liquidity();
        let price = pool.sqrt_price();
        let tick = pool.tick();
        let liq = pool.liquidity();
        let bal = pool.balances();
        let growth = pool.fee_growth_global();
        let _ = pool
            .swap(true, SwapKind::ExactOutput(u128::MAX >> 8), None)
            .unwrap_err();
        assert_eq!(pool.sqrt_price(), price);
        assert_eq!(pool.tick(), tick);
        assert_eq!(pool.liquidity(), liq);
        assert_eq!(pool.balances(), bal);
        assert_eq!(pool.fee_growth_global(), growth);
    }

    #[test]
    fn quote_mint_matches_actual_mint() {
        let pool = pool_with_liquidity();
        let (ql, qa) = pool.quote_mint(-1200, 1200, 777_000, 555_000).unwrap();
        let mut pool2 = pool.clone();
        let (ml, ma) = pool2
            .mint(pid(7), addr(7), -1200, 1200, 777_000, 555_000)
            .unwrap();
        assert_eq!(ql, ml);
        assert_eq!(qa, ma);
        assert!(pool2.quote_mint(-1200, 1200, 0, 0).is_err());
    }

    #[test]
    fn fees_accrue_to_position() {
        let mut pool = pool_with_liquidity();
        pool.swap(true, SwapKind::ExactInput(10_000_000), None)
            .unwrap();
        pool.swap(false, SwapKind::ExactInput(10_000_000), None)
            .unwrap();
        // collect everything owed
        let collected = pool
            .collect(pid(1), addr(1), Amount::MAX, Amount::MAX)
            .unwrap();
        assert!(collected.amount0 > 0, "no token0 fees");
        assert!(collected.amount1 > 0, "no token1 fees");
    }

    #[test]
    fn fee_split_proportional_to_liquidity() {
        let mut pool = Pool::new_standard();
        // position 2 has ~3x the liquidity of position 1 over the same range
        let (l1, _) = pool
            .mint(pid(1), addr(1), -600, 600, 10_000_000, 10_000_000)
            .unwrap();
        let (l2, _) = pool
            .mint(pid(2), addr(2), -600, 600, 30_000_000, 30_000_000)
            .unwrap();
        pool.swap(true, SwapKind::ExactInput(5_000_000), None)
            .unwrap();
        let c1 = pool
            .collect(pid(1), addr(1), Amount::MAX, Amount::MAX)
            .unwrap();
        let c2 = pool
            .collect(pid(2), addr(2), Amount::MAX, Amount::MAX)
            .unwrap();
        let ratio_liquidity = l2 as f64 / l1 as f64;
        let ratio_fees = c2.amount0 as f64 / c1.amount0 as f64;
        assert!(
            (ratio_fees - ratio_liquidity).abs() / ratio_liquidity < 0.01,
            "liquidity ratio {ratio_liquidity} vs fee ratio {ratio_fees}"
        );
    }

    #[test]
    fn out_of_range_position_earns_no_fees() {
        let mut pool = pool_with_liquidity();
        // a range far above the current price
        pool.mint(pid(9), addr(9), 6000, 6600, 1_000_000, 0)
            .unwrap();
        pool.swap(true, SwapKind::ExactInput(1_000_000), None)
            .unwrap();
        let c = pool
            .collect(pid(9), addr(9), Amount::MAX, Amount::MAX)
            .unwrap();
        assert_eq!(c, AmountPair::ZERO);
    }

    #[test]
    fn burn_credits_principal_then_collect_pays_out() {
        let mut pool = pool_with_liquidity();
        let liq = pool.position(&pid(1)).unwrap().liquidity;
        let burned = pool.burn(pid(1), addr(1), liq).unwrap();
        assert!(burned.amount0 > 0 && burned.amount1 > 0);
        // principal sits in tokens_owed until collected
        let pos = pool.position(&pid(1)).unwrap();
        assert_eq!(pos.liquidity, 0);
        assert_eq!(pos.tokens_owed0, burned.amount0);
        let collected = pool
            .collect(pid(1), addr(1), Amount::MAX, Amount::MAX)
            .unwrap();
        assert_eq!(collected.amount0, burned.amount0);
        assert_eq!(collected.amount1, burned.amount1);
        // fully drained position removed (paper: deleted from state)
        assert!(pool.position(&pid(1)).is_none());
        assert_eq!(pool.initialized_tick_count(), 0);
    }

    #[test]
    fn burn_more_than_owned_rejected() {
        let mut pool = pool_with_liquidity();
        let liq = pool.position(&pid(1)).unwrap().liquidity;
        assert!(matches!(
            pool.burn(pid(1), addr(1), liq + 1),
            Err(AmmError::InsufficientLiquidity { .. })
        ));
    }

    #[test]
    fn wrong_owner_rejected() {
        let mut pool = pool_with_liquidity();
        assert!(matches!(
            pool.burn(pid(1), addr(2), 1),
            Err(AmmError::NotPositionOwner(_))
        ));
        assert!(matches!(
            pool.collect(pid(1), addr(2), 1, 1),
            Err(AmmError::NotPositionOwner(_))
        ));
        assert!(matches!(
            pool.mint_liquidity(pid(1), addr(2), -600, 600, 10),
            Err(AmmError::NotPositionOwner(_))
        ));
    }

    #[test]
    fn pool_solvency_after_full_exit() {
        // everyone leaves; the pool keeps only rounding dust
        let mut pool = Pool::new_standard();
        pool.mint(pid(1), addr(1), -600, 600, 10_000_000, 10_000_000)
            .unwrap();
        pool.swap(true, SwapKind::ExactInput(3_000_000), None)
            .unwrap();
        pool.swap(false, SwapKind::ExactInput(2_000_000), None)
            .unwrap();
        let liq = pool.position(&pid(1)).unwrap().liquidity;
        pool.burn(pid(1), addr(1), liq).unwrap();
        pool.collect(pid(1), addr(1), Amount::MAX, Amount::MAX)
            .unwrap();
        let b = pool.balances();
        // dust only: a few units from pool-favourable rounding
        assert!(b.amount0 < 10, "token0 dust {}", b.amount0);
        assert!(b.amount1 < 10, "token1 dust {}", b.amount1);
    }

    #[test]
    fn flash_loan_repaid_with_fee() {
        let mut pool = pool_with_liquidity();
        let before = pool.balances();
        let fees = pool
            .flash(100_000, 50_000, |loan| {
                AmountPair::new(loan.amount0 + 300, loan.amount1 + 150)
            })
            .unwrap();
        assert_eq!(fees, AmountPair::new(300, 150));
        let after = pool.balances();
        assert_eq!(after.amount0, before.amount0 + 300);
        assert_eq!(after.amount1, before.amount1 + 150);
    }

    #[test]
    fn flash_loan_underpaid_reverts() {
        let mut pool = pool_with_liquidity();
        let before = pool.balances();
        let err = pool.flash(100_000, 0, |loan| AmountPair::new(loan.amount0, 0));
        assert!(matches!(err, Err(AmmError::FlashNotRepaid)));
        assert_eq!(pool.balances(), before, "state must be untouched");
    }

    #[test]
    fn flash_loan_exceeding_reserves_rejected() {
        let mut pool = pool_with_liquidity();
        let b = pool.balances();
        assert!(matches!(
            pool.flash(b.amount0 + 1, 0, |l| l),
            Err(AmmError::InsufficientReserves)
        ));
    }

    #[test]
    fn flash_fees_flow_to_lps() {
        let mut pool = pool_with_liquidity();
        pool.flash(1_000_000, 1_000_000, |loan| {
            AmountPair::new(loan.amount0 + 3_000, loan.amount1 + 3_000)
        })
        .unwrap();
        let c = pool
            .collect(pid(1), addr(1), Amount::MAX, Amount::MAX)
            .unwrap();
        assert!(c.amount0 > 0 && c.amount1 > 0);
    }

    #[test]
    fn swap_roundtrip_costs_about_two_fees() {
        let mut pool = pool_with_liquidity();
        let start = 10_000_000u128;
        let r1 = pool.swap(true, SwapKind::ExactInput(start), None).unwrap();
        let r2 = pool
            .swap(false, SwapKind::ExactInput(r1.amount_out), None)
            .unwrap();
        // after selling and buying back, the loss is ~2 x 0.3% fees + slippage
        let lost = start - r2.amount_out;
        let lost_frac = lost as f64 / start as f64;
        assert!(lost_frac > 0.005 && lost_frac < 0.02, "lost {lost_frac}");
    }

    #[test]
    fn bitmap_stays_in_lockstep_with_tick_table() {
        let mut pool = Pool::new_standard();
        pool.mint(pid(1), addr(1), -600, 600, 10_000_000, 10_000_000)
            .unwrap();
        pool.mint(pid(2), addr(2), -120, 120, 10_000_000, 10_000_000)
            .unwrap();
        assert_eq!(pool.tick_bitmap().initialized_count(), 4);
        assert!(pool.tick_bitmap().is_initialized(-600));
        assert!(pool.tick_bitmap().is_initialized(120));
        // burning the inner position removes exactly its two ticks
        let liq = pool.position(&pid(2)).unwrap().liquidity;
        pool.burn(pid(2), addr(2), liq).unwrap();
        pool.collect(pid(2), addr(2), Amount::MAX, Amount::MAX)
            .unwrap();
        assert_eq!(pool.tick_bitmap().initialized_count(), 2);
        assert!(!pool.tick_bitmap().is_initialized(-120));
        assert!(!pool.tick_bitmap().is_initialized(120));
        assert_eq!(
            pool.tick_bitmap().initialized_count(),
            pool.initialized_tick_count()
        );
    }

    #[test]
    fn rebuild_tick_index_matches_incremental() {
        let mut pool = pool_with_liquidity();
        pool.mint(pid(2), addr(2), -1200, -600, 5_000_000, 5_000_000)
            .unwrap();
        pool.swap(true, SwapKind::ExactInput(5_000_000), None)
            .unwrap();
        let mut rebuilt = pool.clone();
        rebuilt.rebuild_tick_index().unwrap();
        assert_eq!(rebuilt.tick_bitmap(), pool.tick_bitmap());
        // and swaps behave identically afterwards
        let a = pool.swap(false, SwapKind::ExactInput(1_000_000), None);
        let b = rebuilt.swap(false, SwapKind::ExactInput(1_000_000), None);
        assert_eq!(a, b);
    }

    #[test]
    fn export_restore_roundtrip_is_bit_identical() {
        let mut pool = pool_with_liquidity();
        pool.mint(pid(2), addr(2), -1200, -600, 5_000_000, 5_000_000)
            .unwrap();
        pool.swap(true, SwapKind::ExactInput(7_000_000), None)
            .unwrap();
        let state = pool.export_state();
        // export is deterministic
        assert_eq!(state, pool.export_state());
        let mut restored = Pool::from_state(state.clone()).unwrap();
        // derived structures regenerated in lockstep
        assert_eq!(restored.tick_bitmap(), pool.tick_bitmap());
        assert_eq!(restored.export_state(), state);
        // identical behaviour afterwards
        for (dir, amt) in [(false, 3_000_000u128), (true, 123_456)] {
            let a = pool.swap(dir, SwapKind::ExactInput(amt), None);
            let b = restored.swap(dir, SwapKind::ExactInput(amt), None);
            assert_eq!(a, b);
        }
        assert_eq!(restored.export_state(), pool.export_state());
    }

    #[test]
    fn from_state_rejects_corrupt_snapshots() {
        let pool = pool_with_liquidity();
        let good = pool.export_state();
        let mut bad_fee = good.clone();
        bad_fee.fee_pips = crate::types::PIPS_DENOMINATOR;
        assert!(Pool::from_state(bad_fee).is_err());
        let mut bad_spacing = good.clone();
        bad_spacing.tick_spacing = 0;
        assert!(Pool::from_state(bad_spacing).is_err());
        let mut bad_tick = good.clone();
        bad_tick.ticks.push((MAX_TICK + 60, TickInfo::default()));
        assert!(Pool::from_state(bad_tick).is_err());
        // in-range but unaligned to the pool's spacing: must fail closed,
        // not land on the wrong bitmap bit
        let mut misaligned = good.clone();
        misaligned.ticks.push((90, TickInfo::default()));
        assert!(matches!(
            Pool::from_state(misaligned),
            Err(AmmError::InvalidTickRange {
                lower: 90,
                upper: 90
            })
        ));
        // duplicate ticks would collapse in the BTreeMap and misalign the
        // tick-price table against the surviving tick set: fail closed
        let mut duplicated = good;
        let first = duplicated.ticks[0].clone();
        duplicated.ticks.insert(1, first);
        duplicated.tick_prices.insert(1, duplicated.tick_prices[0]);
        assert!(matches!(
            Pool::from_state(duplicated),
            Err(AmmError::InvalidTickRange { .. })
        ));
    }

    #[test]
    fn persisted_tick_price_table_restores_identically_to_recompute() {
        let mut pool = pool_with_liquidity();
        pool.mint(pid(2), addr(2), -1200, -600, 5_000_000, 5_000_000)
            .unwrap();
        pool.swap(true, SwapKind::ExactInput(7_000_000), None)
            .unwrap();
        let state = pool.export_state();
        assert_eq!(state.tick_prices.len(), state.ticks.len());
        for (i, (t, _)) in state.ticks.iter().enumerate() {
            assert_eq!(state.tick_prices[i], sqrt_ratio_at_tick(*t).unwrap());
        }
        // table-fed restore ≡ recompute restore, bit for bit
        let mut stripped = state.clone();
        stripped.tick_prices.clear();
        let mut with_table = Pool::from_state(state).unwrap();
        let mut recomputed = Pool::from_state(stripped).unwrap();
        assert_eq!(with_table.tick_bitmap(), recomputed.tick_bitmap());
        assert_eq!(with_table.export_state(), recomputed.export_state());
        let a = with_table.swap(false, SwapKind::ExactInput(2_000_000), None);
        let b = recomputed.swap(false, SwapKind::ExactInput(2_000_000), None);
        assert_eq!(a, b);
    }

    #[test]
    fn corrupt_tick_price_table_fails_closed() {
        let mut pool = pool_with_liquidity();
        pool.mint(pid(2), addr(2), -1200, -600, 5_000_000, 5_000_000)
            .unwrap();
        let good = pool.export_state();
        // wrong length
        let mut short = good.clone();
        short.tick_prices.pop();
        assert!(matches!(
            Pool::from_state(short),
            Err(AmmError::CorruptTickPriceTable)
        ));
        // non-monotonic
        let mut swapped = good.clone();
        swapped.tick_prices.swap(0, 1);
        assert!(matches!(
            Pool::from_state(swapped),
            Err(AmmError::CorruptTickPriceTable)
        ));
        // outside the sqrt-price domain
        let mut huge = good;
        let last = huge.tick_prices.len() - 1;
        huge.tick_prices[last] = U256::MAX;
        assert!(matches!(
            Pool::from_state(huge),
            Err(AmmError::CorruptTickPriceTable)
        ));
    }

    #[test]
    fn oracle_and_bitmap_engines_agree_across_crossings() {
        let build = |search: TickSearch| {
            let mut pool = Pool::new_standard();
            pool.set_tick_search(search);
            pool.mint(pid(1), addr(1), -600, 600, 10_000_000, 10_000_000)
                .unwrap();
            pool.mint(pid(2), addr(2), -120, 120, 50_000_000, 50_000_000)
                .unwrap();
            pool
        };
        let mut bitmap = build(TickSearch::Bitmap);
        let mut oracle = build(TickSearch::BTreeOracle);
        for (dir, amt) in [(true, 40_000_000u128), (false, 25_000_000), (true, 777)] {
            let a = bitmap.swap(dir, SwapKind::ExactInput(amt), None).unwrap();
            let b = oracle.swap(dir, SwapKind::ExactInput(amt), None).unwrap();
            assert_eq!(a, b);
            assert_eq!(bitmap.sqrt_price(), oracle.sqrt_price());
            assert_eq!(bitmap.tick(), oracle.tick());
            assert_eq!(bitmap.liquidity(), oracle.liquidity());
            assert_eq!(bitmap.fee_growth_global(), oracle.fee_growth_global());
        }
    }

    #[test]
    fn price_continuity_across_many_small_swaps() {
        let mut pool = pool_with_liquidity();
        let mut last = pool.sqrt_price();
        for _ in 0..50 {
            pool.swap(true, SwapKind::ExactInput(10_000), None).unwrap();
            let now = pool.sqrt_price();
            assert!(now < last);
            last = now;
        }
    }
}
