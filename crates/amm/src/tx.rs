//! The AMM transaction vocabulary shared by the mainchain baseline and the
//! ammBoost sidechain: swaps (exact in/out), mints, burns, collects —
//! together with the wire-size model calibrated to the paper's Uniswap
//! traffic analysis (Appendix D, Table VII).

use crate::types::{Amount, PoolId, PositionId, Tick};
use ammboost_crypto::{Address, H256, U256};
use serde::{Deserialize, Serialize};

/// Exact-input vs exact-output trade intent with its slippage protection
/// (paper §IV-B, "Swaps").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SwapIntent {
    /// Trade exactly `amount_in` input tokens for as much output as
    /// possible, but at least `min_amount_out`.
    ExactInput {
        /// Input budget, fee inclusive.
        amount_in: Amount,
        /// Slippage floor on the output.
        min_amount_out: Amount,
    },
    /// Receive exactly `amount_out`, spending as little input as possible,
    /// but at most `max_amount_in`.
    ExactOutput {
        /// Desired output.
        amount_out: Amount,
        /// Slippage ceiling on the input.
        max_amount_in: Amount,
    },
}

/// A swap transaction.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwapTx {
    /// The trading client (also the recipient of the output).
    pub user: Address,
    /// The target pool.
    pub pool: PoolId,
    /// `true` to sell token0 for token1.
    pub zero_for_one: bool,
    /// The trade intent and slippage protection.
    pub intent: SwapIntent,
    /// Optional worst-case sqrt price (Q64.96).
    pub sqrt_price_limit: Option<U256>,
    /// Round number after which the trade is void (paper: "deadline").
    pub deadline_round: u64,
}

/// A mint (liquidity-provision) transaction.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MintTx {
    /// The liquidity provider.
    pub user: Address,
    /// The target pool.
    pub pool: PoolId,
    /// Existing position to top up, or `None` to create a new one.
    pub position: Option<PositionId>,
    /// Lower price tick of the range.
    pub tick_lower: Tick,
    /// Upper price tick of the range.
    pub tick_upper: Tick,
    /// Token0 budget.
    pub amount0_desired: Amount,
    /// Token1 budget.
    pub amount1_desired: Amount,
    /// Per-user uniquifier so identical mints derive distinct position
    /// ids.
    pub nonce: u64,
}

impl MintTx {
    /// The position id a *new* mint creates: the hash of the mint
    /// transaction and the LP's identity (paper §IV-B "Mints"). Top-ups
    /// (`position: Some(..)`) keep their existing id.
    pub fn derived_position_id(&self) -> PositionId {
        if let Some(existing) = self.position {
            return existing;
        }
        let mut bytes = Vec::with_capacity(96);
        AmmTx::Mint(self.clone()).encode_into(&mut bytes);
        PositionId::derive(&[b"mint-position", &bytes, self.user.as_bytes()])
    }
}

/// A burn (liquidity-withdrawal) transaction.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BurnTx {
    /// The liquidity provider.
    pub user: Address,
    /// The target pool.
    pub pool: PoolId,
    /// The position to withdraw from.
    pub position: PositionId,
    /// Liquidity to burn; `None` burns everything (deleting the position).
    pub liquidity: Option<u128>,
}

/// A collect (fee-withdrawal) transaction.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectTx {
    /// The liquidity provider.
    pub user: Address,
    /// The target pool.
    pub pool: PoolId,
    /// The position whose fees are collected.
    pub position: PositionId,
    /// Token0 fee amount requested (capped at what is owed).
    pub amount0: Amount,
    /// Token1 fee amount requested.
    pub amount1: Amount,
}

/// Any AMM transaction processed by the sidechain (flash loans stay on the
/// mainchain and are *not* part of this enum — paper §IV-B, "Flashes").
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AmmTx {
    /// A trade.
    Swap(SwapTx),
    /// Liquidity provision.
    Mint(MintTx),
    /// Liquidity withdrawal.
    Burn(BurnTx),
    /// Fee collection.
    Collect(CollectTx),
}

/// Transaction-type discriminant (for traffic statistics).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AmmTxKind {
    /// Swap transactions.
    Swap,
    /// Mint transactions.
    Mint,
    /// Burn transactions.
    Burn,
    /// Collect transactions.
    Collect,
}

impl AmmTx {
    /// The transaction kind.
    pub fn kind(&self) -> AmmTxKind {
        match self {
            AmmTx::Swap(_) => AmmTxKind::Swap,
            AmmTx::Mint(_) => AmmTxKind::Mint,
            AmmTx::Burn(_) => AmmTxKind::Burn,
            AmmTx::Collect(_) => AmmTxKind::Collect,
        }
    }

    /// The issuing user.
    pub fn user(&self) -> Address {
        match self {
            AmmTx::Swap(t) => t.user,
            AmmTx::Mint(t) => t.user,
            AmmTx::Burn(t) => t.user,
            AmmTx::Collect(t) => t.user,
        }
    }

    /// The target pool.
    pub fn pool(&self) -> PoolId {
        match self {
            AmmTx::Swap(t) => t.pool,
            AmmTx::Mint(t) => t.pool,
            AmmTx::Burn(t) => t.pool,
            AmmTx::Collect(t) => t.pool,
        }
    }

    /// A stable transaction id (hash of the serialized payload).
    pub fn tx_id(&self) -> H256 {
        // serde_json would be heavyweight; hash a compact manual encoding.
        let mut bytes = Vec::with_capacity(128);
        self.encode_into(&mut bytes);
        H256::hash(&bytes)
    }

    /// Compact binary encoding — the *sidechain wire format*. Field-packed
    /// with no ABI padding, which is why sidechain entries are several times
    /// smaller than their mainchain counterparts (paper Table IV).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            AmmTx::Swap(t) => {
                out.push(0);
                out.extend_from_slice(t.user.as_bytes());
                out.extend_from_slice(&t.pool.0.to_be_bytes());
                out.push(t.zero_for_one as u8);
                match t.intent {
                    SwapIntent::ExactInput {
                        amount_in,
                        min_amount_out,
                    } => {
                        out.push(0);
                        out.extend_from_slice(&amount_in.to_be_bytes());
                        out.extend_from_slice(&min_amount_out.to_be_bytes());
                    }
                    SwapIntent::ExactOutput {
                        amount_out,
                        max_amount_in,
                    } => {
                        out.push(1);
                        out.extend_from_slice(&amount_out.to_be_bytes());
                        out.extend_from_slice(&max_amount_in.to_be_bytes());
                    }
                }
                match t.sqrt_price_limit {
                    Some(p) => {
                        out.push(1);
                        out.extend_from_slice(&p.to_be_bytes());
                    }
                    None => out.push(0),
                }
                out.extend_from_slice(&t.deadline_round.to_be_bytes());
            }
            AmmTx::Mint(t) => {
                out.push(1);
                out.extend_from_slice(t.user.as_bytes());
                out.extend_from_slice(&t.pool.0.to_be_bytes());
                match t.position {
                    Some(p) => {
                        out.push(1);
                        out.extend_from_slice(&p.0 .0);
                    }
                    None => out.push(0),
                }
                out.extend_from_slice(&t.tick_lower.to_be_bytes());
                out.extend_from_slice(&t.tick_upper.to_be_bytes());
                out.extend_from_slice(&t.amount0_desired.to_be_bytes());
                out.extend_from_slice(&t.amount1_desired.to_be_bytes());
                out.extend_from_slice(&t.nonce.to_be_bytes());
            }
            AmmTx::Burn(t) => {
                out.push(2);
                out.extend_from_slice(t.user.as_bytes());
                out.extend_from_slice(&t.pool.0.to_be_bytes());
                out.extend_from_slice(&t.position.0 .0);
                match t.liquidity {
                    Some(l) => {
                        out.push(1);
                        out.extend_from_slice(&l.to_be_bytes());
                    }
                    None => out.push(0),
                }
            }
            AmmTx::Collect(t) => {
                out.push(3);
                out.extend_from_slice(t.user.as_bytes());
                out.extend_from_slice(&t.pool.0.to_be_bytes());
                out.extend_from_slice(&t.position.0 .0);
                out.extend_from_slice(&t.amount0.to_be_bytes());
                out.extend_from_slice(&t.amount1.to_be_bytes());
            }
        }
    }

    /// The transaction's size in bytes **as observed on Ethereum mainnet**
    /// (paper Table VII: swap 1007.83 B, mint 814.49 B, burn 907.07 B,
    /// collect 921.80 B). Used when modelling baseline chain growth for
    /// production Ethereum.
    pub fn mainnet_size_bytes(&self) -> usize {
        match self.kind() {
            AmmTxKind::Swap => 1008,
            AmmTxKind::Mint => 814,
            AmmTxKind::Burn => 907,
            AmmTxKind::Collect => 922,
        }
    }

    /// The transaction's size in bytes as observed on **Sepolia** (paper
    /// Table IV: 365.27 / 565.55 / 280.21 / 150.18 B — smaller because the
    /// testnet deploys the simple router without the universal router).
    pub fn sepolia_size_bytes(&self) -> usize {
        match self.kind() {
            AmmTxKind::Swap => 365,
            AmmTxKind::Mint => 566,
            AmmTxKind::Burn => 280,
            AmmTxKind::Collect => 150,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_swap() -> AmmTx {
        AmmTx::Swap(SwapTx {
            user: Address::from_index(1),
            pool: PoolId(0),
            zero_for_one: true,
            intent: SwapIntent::ExactInput {
                amount_in: 1000,
                min_amount_out: 900,
            },
            sqrt_price_limit: None,
            deadline_round: 77,
        })
    }

    #[test]
    fn tx_ids_are_stable_and_distinct() {
        let a = sample_swap();
        assert_eq!(a.tx_id(), a.tx_id());
        let mut b = sample_swap();
        if let AmmTx::Swap(s) = &mut b {
            s.deadline_round = 78;
        }
        assert_ne!(a.tx_id(), b.tx_id());
    }

    #[test]
    fn kind_and_user_accessors() {
        let tx = sample_swap();
        assert_eq!(tx.kind(), AmmTxKind::Swap);
        assert_eq!(tx.user(), Address::from_index(1));
        assert_eq!(tx.pool(), PoolId(0));
    }

    #[test]
    fn size_models_match_paper_tables() {
        let swap = sample_swap();
        assert_eq!(swap.mainnet_size_bytes(), 1008);
        assert_eq!(swap.sepolia_size_bytes(), 365);
        let burn = AmmTx::Burn(BurnTx {
            user: Address::from_index(2),
            pool: PoolId(0),
            position: PositionId::derive(&[b"p"]),
            liquidity: None,
        });
        assert_eq!(burn.mainnet_size_bytes(), 907);
        assert_eq!(burn.sepolia_size_bytes(), 280);
    }

    #[test]
    fn compact_encoding_is_much_smaller_than_abi_sizes() {
        let tx = sample_swap();
        let mut buf = Vec::new();
        tx.encode_into(&mut buf);
        assert!(buf.len() < 120, "compact swap is {} bytes", buf.len());
    }

    #[test]
    fn encoding_distinguishes_exact_input_and_output() {
        let a = sample_swap();
        let b = AmmTx::Swap(SwapTx {
            intent: SwapIntent::ExactOutput {
                amount_out: 1000,
                max_amount_in: 900,
            },
            ..match sample_swap() {
                AmmTx::Swap(s) => s,
                _ => unreachable!(),
            }
        });
        assert_ne!(a.tx_id(), b.tx_id());
    }
}
