//! The AMM transaction vocabulary shared by the mainchain baseline and the
//! ammBoost sidechain: swaps (exact in/out), mints, burns, collects —
//! together with the wire-size model calibrated to the paper's Uniswap
//! traffic analysis (Appendix D, Table VII).

use crate::types::{Amount, PoolId, PositionId, Tick};
use ammboost_crypto::{Address, H256, U256};
use serde::{Deserialize, Serialize};

/// Exact-input vs exact-output trade intent with its slippage protection
/// (paper §IV-B, "Swaps").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SwapIntent {
    /// Trade exactly `amount_in` input tokens for as much output as
    /// possible, but at least `min_amount_out`.
    ExactInput {
        /// Input budget, fee inclusive.
        amount_in: Amount,
        /// Slippage floor on the output.
        min_amount_out: Amount,
    },
    /// Receive exactly `amount_out`, spending as little input as possible,
    /// but at most `max_amount_in`.
    ExactOutput {
        /// Desired output.
        amount_out: Amount,
        /// Slippage ceiling on the input.
        max_amount_in: Amount,
    },
}

/// A swap transaction.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwapTx {
    /// The trading client (also the recipient of the output).
    pub user: Address,
    /// The target pool.
    pub pool: PoolId,
    /// `true` to sell token0 for token1.
    pub zero_for_one: bool,
    /// The trade intent and slippage protection.
    pub intent: SwapIntent,
    /// Optional worst-case sqrt price (Q64.96).
    pub sqrt_price_limit: Option<U256>,
    /// Round number after which the trade is void (paper: "deadline").
    pub deadline_round: u64,
}

/// A mint (liquidity-provision) transaction.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MintTx {
    /// The liquidity provider.
    pub user: Address,
    /// The target pool.
    pub pool: PoolId,
    /// Existing position to top up, or `None` to create a new one.
    pub position: Option<PositionId>,
    /// Lower price tick of the range.
    pub tick_lower: Tick,
    /// Upper price tick of the range.
    pub tick_upper: Tick,
    /// Token0 budget.
    pub amount0_desired: Amount,
    /// Token1 budget.
    pub amount1_desired: Amount,
    /// Per-user uniquifier so identical mints derive distinct position
    /// ids.
    pub nonce: u64,
}

impl MintTx {
    /// The position id a *new* mint creates: the hash of the mint
    /// transaction and the LP's identity (paper §IV-B "Mints"). Top-ups
    /// (`position: Some(..)`) keep their existing id.
    pub fn derived_position_id(&self) -> PositionId {
        if let Some(existing) = self.position {
            return existing;
        }
        let mut bytes = Vec::with_capacity(96);
        AmmTx::Mint(self.clone()).encode_into(&mut bytes);
        PositionId::derive(&[b"mint-position", &bytes, self.user.as_bytes()])
    }
}

/// A burn (liquidity-withdrawal) transaction.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BurnTx {
    /// The liquidity provider.
    pub user: Address,
    /// The target pool.
    pub pool: PoolId,
    /// The position to withdraw from.
    pub position: PositionId,
    /// Liquidity to burn; `None` burns everything (deleting the position).
    pub liquidity: Option<u128>,
}

/// Maximum hop count of a [`RouteTx`]. Bounds per-route work and keeps
/// the wire form small; real router traffic rarely exceeds 3–4 hops.
pub const MAX_ROUTE_HOPS: usize = 8;

/// One hop of a multi-pool route: the pool to trade on and the trade
/// direction. The output token of hop *k* must be the input token of hop
/// *k+1*, so directions alternate along a well-formed route.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteHop {
    /// The pool this hop trades on.
    pub pool: PoolId,
    /// `true` to sell token0 for token1 on this hop.
    pub zero_for_one: bool,
}

/// Why a route's shape is invalid. Shape validation is purely syntactic
/// (no pool state consulted) and typed so callers can assert on the
/// precise violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteError {
    /// Fewer than two hops — a one-hop route is a plain swap.
    TooFewHops,
    /// More than [`MAX_ROUTE_HOPS`] hops.
    TooManyHops {
        /// The offending hop count.
        got: usize,
    },
    /// A pool appears more than once in the hop list. Each pool may be
    /// visited at most once, which is what lets an epoch's wave schedule
    /// assign every route at most one leg per shard per wave.
    DuplicatePool(PoolId),
    /// Hop `hop` consumes a token the previous hop did not produce
    /// (directions along a route must alternate).
    BrokenChain {
        /// Index of the hop whose direction breaks the chain.
        hop: usize,
    },
    /// Zero input budget.
    ZeroInput,
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::TooFewHops => write!(f, "route needs at least two hops"),
            RouteError::TooManyHops { got } => {
                write!(f, "route has {got} hops, maximum is {MAX_ROUTE_HOPS}")
            }
            RouteError::DuplicatePool(p) => write!(f, "route visits {p} twice"),
            RouteError::BrokenChain { hop } => {
                write!(
                    f,
                    "hop {hop} consumes a token the previous hop did not produce"
                )
            }
            RouteError::ZeroInput => write!(f, "route with zero input"),
        }
    }
}

impl std::error::Error for RouteError {}

/// A multi-hop routed swap: an ordered list of swap hops through
/// *distinct* pools, chained exact-input (hop *k*'s output is hop
/// *k+1*'s input). The sidechain executes the hops inside one epoch and
/// settles only the **net** per-user token deltas — per-hop transfers
/// never reach the settlement layer individually.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteTx {
    /// The trading client (pays the input, receives the final output).
    pub user: Address,
    /// The hops, in execution order. Must satisfy [`RouteTx::validate`].
    pub hops: Vec<RouteHop>,
    /// Input budget on the first hop's input token, fee inclusive.
    pub amount_in: Amount,
    /// Slippage floor on the final hop's output.
    pub min_amount_out: Amount,
    /// Round number after which the route is void.
    pub deadline_round: u64,
}

impl RouteTx {
    /// The entry pool (first hop) — what [`AmmTx::pool`] reports for a
    /// route. Falls back to an impossible sentinel for the (invalid)
    /// empty-hop form so accessors never panic.
    pub fn entry_pool(&self) -> PoolId {
        self.hops
            .first()
            .map(|h| h.pool)
            .unwrap_or(PoolId(u32::MAX))
    }

    /// `true` when the route's input is token0 (first hop sells token0).
    pub fn input_is_token0(&self) -> bool {
        self.hops.first().map(|h| h.zero_for_one).unwrap_or(true)
    }

    /// Validates the route's shape: 2..=[`MAX_ROUTE_HOPS`] hops, distinct
    /// pools, alternating directions, non-zero input.
    ///
    /// # Errors
    /// Returns the first violated rule as a typed [`RouteError`].
    pub fn validate(&self) -> Result<(), RouteError> {
        if self.hops.len() < 2 {
            return Err(RouteError::TooFewHops);
        }
        if self.hops.len() > MAX_ROUTE_HOPS {
            return Err(RouteError::TooManyHops {
                got: self.hops.len(),
            });
        }
        if self.amount_in == 0 {
            return Err(RouteError::ZeroInput);
        }
        for (i, hop) in self.hops.iter().enumerate() {
            if let Some(dup) = self.hops[..i].iter().find(|h| h.pool == hop.pool) {
                return Err(RouteError::DuplicatePool(dup.pool));
            }
            if i > 0 && hop.zero_for_one == self.hops[i - 1].zero_for_one {
                return Err(RouteError::BrokenChain { hop: i });
            }
        }
        Ok(())
    }
}

/// A collect (fee-withdrawal) transaction.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectTx {
    /// The liquidity provider.
    pub user: Address,
    /// The target pool.
    pub pool: PoolId,
    /// The position whose fees are collected.
    pub position: PositionId,
    /// Token0 fee amount requested (capped at what is owed).
    pub amount0: Amount,
    /// Token1 fee amount requested.
    pub amount1: Amount,
}

/// Any AMM transaction processed by the sidechain (flash loans stay on the
/// mainchain and are *not* part of this enum — paper §IV-B, "Flashes").
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AmmTx {
    /// A trade.
    Swap(SwapTx),
    /// Liquidity provision.
    Mint(MintTx),
    /// Liquidity withdrawal.
    Burn(BurnTx),
    /// Fee collection.
    Collect(CollectTx),
    /// A multi-hop routed swap across distinct pools.
    Route(RouteTx),
}

/// Transaction-type discriminant (for traffic statistics).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AmmTxKind {
    /// Swap transactions.
    Swap,
    /// Mint transactions.
    Mint,
    /// Burn transactions.
    Burn,
    /// Collect transactions.
    Collect,
    /// Multi-hop routed swaps.
    Route,
}

impl AmmTx {
    /// The transaction kind.
    pub fn kind(&self) -> AmmTxKind {
        match self {
            AmmTx::Swap(_) => AmmTxKind::Swap,
            AmmTx::Mint(_) => AmmTxKind::Mint,
            AmmTx::Burn(_) => AmmTxKind::Burn,
            AmmTx::Collect(_) => AmmTxKind::Collect,
            AmmTx::Route(_) => AmmTxKind::Route,
        }
    }

    /// The issuing user.
    pub fn user(&self) -> Address {
        match self {
            AmmTx::Swap(t) => t.user,
            AmmTx::Mint(t) => t.user,
            AmmTx::Burn(t) => t.user,
            AmmTx::Collect(t) => t.user,
            AmmTx::Route(t) => t.user,
        }
    }

    /// The target pool. For a route this is the **entry pool** (first
    /// hop); the remaining hops are routed by the execution layer's wave
    /// schedule, not by this accessor.
    pub fn pool(&self) -> PoolId {
        match self {
            AmmTx::Swap(t) => t.pool,
            AmmTx::Mint(t) => t.pool,
            AmmTx::Burn(t) => t.pool,
            AmmTx::Collect(t) => t.pool,
            AmmTx::Route(t) => t.entry_pool(),
        }
    }

    /// A stable transaction id (hash of the serialized payload).
    pub fn tx_id(&self) -> H256 {
        // serde_json would be heavyweight; hash a compact manual encoding.
        let mut bytes = Vec::with_capacity(128);
        self.encode_into(&mut bytes);
        H256::hash(&bytes)
    }

    /// Compact binary encoding — the *sidechain wire format*. Field-packed
    /// with no ABI padding, which is why sidechain entries are several times
    /// smaller than their mainchain counterparts (paper Table IV).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            AmmTx::Swap(t) => {
                out.push(0);
                out.extend_from_slice(t.user.as_bytes());
                out.extend_from_slice(&t.pool.0.to_be_bytes());
                out.push(t.zero_for_one as u8);
                match t.intent {
                    SwapIntent::ExactInput {
                        amount_in,
                        min_amount_out,
                    } => {
                        out.push(0);
                        out.extend_from_slice(&amount_in.to_be_bytes());
                        out.extend_from_slice(&min_amount_out.to_be_bytes());
                    }
                    SwapIntent::ExactOutput {
                        amount_out,
                        max_amount_in,
                    } => {
                        out.push(1);
                        out.extend_from_slice(&amount_out.to_be_bytes());
                        out.extend_from_slice(&max_amount_in.to_be_bytes());
                    }
                }
                match t.sqrt_price_limit {
                    Some(p) => {
                        out.push(1);
                        out.extend_from_slice(&p.to_be_bytes());
                    }
                    None => out.push(0),
                }
                out.extend_from_slice(&t.deadline_round.to_be_bytes());
            }
            AmmTx::Mint(t) => {
                out.push(1);
                out.extend_from_slice(t.user.as_bytes());
                out.extend_from_slice(&t.pool.0.to_be_bytes());
                match t.position {
                    Some(p) => {
                        out.push(1);
                        out.extend_from_slice(&p.0 .0);
                    }
                    None => out.push(0),
                }
                out.extend_from_slice(&t.tick_lower.to_be_bytes());
                out.extend_from_slice(&t.tick_upper.to_be_bytes());
                out.extend_from_slice(&t.amount0_desired.to_be_bytes());
                out.extend_from_slice(&t.amount1_desired.to_be_bytes());
                out.extend_from_slice(&t.nonce.to_be_bytes());
            }
            AmmTx::Burn(t) => {
                out.push(2);
                out.extend_from_slice(t.user.as_bytes());
                out.extend_from_slice(&t.pool.0.to_be_bytes());
                out.extend_from_slice(&t.position.0 .0);
                match t.liquidity {
                    Some(l) => {
                        out.push(1);
                        out.extend_from_slice(&l.to_be_bytes());
                    }
                    None => out.push(0),
                }
            }
            AmmTx::Collect(t) => {
                out.push(3);
                out.extend_from_slice(t.user.as_bytes());
                out.extend_from_slice(&t.pool.0.to_be_bytes());
                out.extend_from_slice(&t.position.0 .0);
                out.extend_from_slice(&t.amount0.to_be_bytes());
                out.extend_from_slice(&t.amount1.to_be_bytes());
            }
            AmmTx::Route(t) => {
                out.push(4);
                out.extend_from_slice(t.user.as_bytes());
                out.push(t.hops.len() as u8);
                for hop in &t.hops {
                    out.extend_from_slice(&hop.pool.0.to_be_bytes());
                    out.push(hop.zero_for_one as u8);
                }
                out.extend_from_slice(&t.amount_in.to_be_bytes());
                out.extend_from_slice(&t.min_amount_out.to_be_bytes());
                out.extend_from_slice(&t.deadline_round.to_be_bytes());
            }
        }
    }

    /// The transaction's size in bytes **as observed on Ethereum mainnet**
    /// (paper Table VII: swap 1007.83 B, mint 814.49 B, burn 907.07 B,
    /// collect 921.80 B). Used when modelling baseline chain growth for
    /// production Ethereum.
    pub fn mainnet_size_bytes(&self) -> usize {
        match self {
            AmmTx::Swap(_) => 1008,
            AmmTx::Mint(_) => 814,
            AmmTx::Burn(_) => 907,
            AmmTx::Collect(_) => 922,
            // Routed swaps are not a Table VII row; modelled as a swap
            // plus one path element (pool id + fee tier + direction,
            // ABI-padded) per additional hop, as the universal router's
            // multi-hop `path` calldata grows.
            AmmTx::Route(t) => 1008 + 32 * t.hops.len().saturating_sub(1),
        }
    }

    /// The transaction's size in bytes as observed on **Sepolia** (paper
    /// Table IV: 365.27 / 565.55 / 280.21 / 150.18 B — smaller because the
    /// testnet deploys the simple router without the universal router).
    pub fn sepolia_size_bytes(&self) -> usize {
        match self {
            AmmTx::Swap(_) => 365,
            AmmTx::Mint(_) => 566,
            AmmTx::Burn(_) => 280,
            AmmTx::Collect(_) => 150,
            // simple-router multi-hop path: 23 B per extra path element
            AmmTx::Route(t) => 365 + 23 * t.hops.len().saturating_sub(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_swap() -> AmmTx {
        AmmTx::Swap(SwapTx {
            user: Address::from_index(1),
            pool: PoolId(0),
            zero_for_one: true,
            intent: SwapIntent::ExactInput {
                amount_in: 1000,
                min_amount_out: 900,
            },
            sqrt_price_limit: None,
            deadline_round: 77,
        })
    }

    #[test]
    fn tx_ids_are_stable_and_distinct() {
        let a = sample_swap();
        assert_eq!(a.tx_id(), a.tx_id());
        let mut b = sample_swap();
        if let AmmTx::Swap(s) = &mut b {
            s.deadline_round = 78;
        }
        assert_ne!(a.tx_id(), b.tx_id());
    }

    #[test]
    fn kind_and_user_accessors() {
        let tx = sample_swap();
        assert_eq!(tx.kind(), AmmTxKind::Swap);
        assert_eq!(tx.user(), Address::from_index(1));
        assert_eq!(tx.pool(), PoolId(0));
    }

    #[test]
    fn size_models_match_paper_tables() {
        let swap = sample_swap();
        assert_eq!(swap.mainnet_size_bytes(), 1008);
        assert_eq!(swap.sepolia_size_bytes(), 365);
        let burn = AmmTx::Burn(BurnTx {
            user: Address::from_index(2),
            pool: PoolId(0),
            position: PositionId::derive(&[b"p"]),
            liquidity: None,
        });
        assert_eq!(burn.mainnet_size_bytes(), 907);
        assert_eq!(burn.sepolia_size_bytes(), 280);
    }

    #[test]
    fn compact_encoding_is_much_smaller_than_abi_sizes() {
        let tx = sample_swap();
        let mut buf = Vec::new();
        tx.encode_into(&mut buf);
        assert!(buf.len() < 120, "compact swap is {} bytes", buf.len());
    }

    fn sample_route(hops: &[(u32, bool)]) -> RouteTx {
        RouteTx {
            user: Address::from_index(5),
            hops: hops
                .iter()
                .map(|&(p, d)| RouteHop {
                    pool: PoolId(p),
                    zero_for_one: d,
                })
                .collect(),
            amount_in: 10_000,
            min_amount_out: 0,
            deadline_round: 99,
        }
    }

    #[test]
    fn route_shape_validation() {
        assert_eq!(sample_route(&[(0, true), (1, false)]).validate(), Ok(()));
        assert_eq!(
            sample_route(&[(0, true)]).validate(),
            Err(RouteError::TooFewHops)
        );
        assert_eq!(
            sample_route(&[(0, true), (1, false), (0, true)]).validate(),
            Err(RouteError::DuplicatePool(PoolId(0)))
        );
        assert_eq!(
            sample_route(&[(0, true), (1, true)]).validate(),
            Err(RouteError::BrokenChain { hop: 1 })
        );
        let mut zero = sample_route(&[(0, true), (1, false)]);
        zero.amount_in = 0;
        assert_eq!(zero.validate(), Err(RouteError::ZeroInput));
        let long: Vec<(u32, bool)> = (0..9).map(|i| (i, i % 2 == 0)).collect();
        assert_eq!(
            sample_route(&long).validate(),
            Err(RouteError::TooManyHops { got: 9 })
        );
    }

    #[test]
    fn route_accessors_and_encoding() {
        let tx = AmmTx::Route(sample_route(&[(2, false), (7, true), (3, false)]));
        assert_eq!(tx.kind(), AmmTxKind::Route);
        assert_eq!(tx.user(), Address::from_index(5));
        assert_eq!(tx.pool(), PoolId(2), "route pool is the entry pool");
        assert_eq!(tx.tx_id(), tx.tx_id());
        let mut other = sample_route(&[(2, false), (7, true), (3, false)]);
        other.amount_in += 1;
        assert_ne!(tx.tx_id(), AmmTx::Route(other).tx_id());
        // size grows with hop count
        let two = AmmTx::Route(sample_route(&[(0, true), (1, false)]));
        assert_eq!(two.mainnet_size_bytes(), 1008 + 32);
        assert_eq!(tx.mainnet_size_bytes(), 1008 + 64);
        assert_eq!(two.sepolia_size_bytes(), 365 + 23);
    }

    #[test]
    fn encoding_distinguishes_exact_input_and_output() {
        let a = sample_swap();
        let b = AmmTx::Swap(SwapTx {
            intent: SwapIntent::ExactOutput {
                amount_out: 1000,
                max_amount_in: 900,
            },
            ..match sample_swap() {
                AmmTx::Swap(s) => s,
                _ => unreachable!(),
            }
        });
        assert_ne!(a.tx_id(), b.tx_id());
    }
}
