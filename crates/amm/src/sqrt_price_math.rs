//! Price-movement math on Q64.96 sqrt prices (Uniswap `SqrtPriceMath`).
//!
//! The rounding direction of every operation is chosen so the pool never
//! pays out more or charges less than the exact real-number result — the
//! "pool favourable" rounding that makes pool solvency an invariant.

use crate::types::{Amount, Liquidity};
use ammboost_crypto::U256;

/// Errors from price/amount computations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PriceMathError {
    /// Liquidity was zero where it must be positive.
    ZeroLiquidity,
    /// Price would move out of the representable/valid range.
    PriceOverflow,
    /// The requested output exceeds what the available reserves allow.
    InsufficientReserves,
    /// An intermediate amount exceeded 128 bits.
    AmountOverflow,
}

impl std::fmt::Display for PriceMathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PriceMathError::ZeroLiquidity => write!(f, "zero liquidity"),
            PriceMathError::PriceOverflow => write!(f, "price overflow"),
            PriceMathError::InsufficientReserves => write!(f, "insufficient reserves"),
            PriceMathError::AmountOverflow => write!(f, "amount overflow"),
        }
    }
}

impl std::error::Error for PriceMathError {}

#[inline]
fn q96() -> U256 {
    U256::pow2(96)
}

fn div_rounding_up(a: U256, b: U256) -> U256 {
    let (q, r) = a.div_rem(b);
    if r.is_zero() {
        q
    } else {
        q + U256::ONE
    }
}

#[inline]
fn to_amount(v: U256) -> Result<Amount, PriceMathError> {
    v.to_u128().ok_or(PriceMathError::AmountOverflow)
}

/// Amount of token0 between two sqrt prices for `liquidity`:
/// `L * 2^96 * (sqrt_hi - sqrt_lo) / (sqrt_hi * sqrt_lo)`.
///
/// Arguments may be given in either order.
///
/// # Errors
/// Fails if the result exceeds 128 bits.
pub fn amount0_delta(
    sqrt_a: U256,
    sqrt_b: U256,
    liquidity: Liquidity,
    round_up: bool,
) -> Result<Amount, PriceMathError> {
    let (lo, hi) = if sqrt_a <= sqrt_b {
        (sqrt_a, sqrt_b)
    } else {
        (sqrt_b, sqrt_a)
    };
    if lo.is_zero() {
        return Err(PriceMathError::PriceOverflow);
    }
    let numerator1 = U256::from_u128(liquidity) << 96;
    let numerator2 = hi - lo;
    let out = if round_up {
        div_rounding_up(numerator1.mul_div_rounding_up(numerator2, hi), lo)
    } else {
        numerator1.mul_div(numerator2, hi) / lo
    };
    to_amount(out)
}

/// Amount of token1 between two sqrt prices for `liquidity`:
/// `L * (sqrt_hi - sqrt_lo) / 2^96`.
///
/// # Errors
/// Fails if the result exceeds 128 bits.
pub fn amount1_delta(
    sqrt_a: U256,
    sqrt_b: U256,
    liquidity: Liquidity,
    round_up: bool,
) -> Result<Amount, PriceMathError> {
    let (lo, hi) = if sqrt_a <= sqrt_b {
        (sqrt_a, sqrt_b)
    } else {
        (sqrt_b, sqrt_a)
    };
    let l = U256::from_u128(liquidity);
    let out = if round_up {
        l.mul_div_rounding_up(hi - lo, q96())
    } else {
        l.mul_div(hi - lo, q96())
    };
    to_amount(out)
}

/// The sqrt price after adding (`add = true`) or removing an `amount` of
/// token0. Rounds up so the price moves the smaller distance.
///
/// # Errors
/// Fails on zero liquidity or when removal exceeds reserves.
pub fn next_sqrt_price_from_amount0(
    sqrt_price: U256,
    liquidity: Liquidity,
    amount: Amount,
    add: bool,
) -> Result<U256, PriceMathError> {
    if amount == 0 {
        return Ok(sqrt_price);
    }
    if liquidity == 0 {
        return Err(PriceMathError::ZeroLiquidity);
    }
    let numerator1 = U256::from_u128(liquidity) << 96;
    let amt = U256::from_u128(amount);
    let product = amt.full_mul(sqrt_price);

    if add {
        // denominator = L*2^96 + amount * sqrtP (may exceed 256 bits; fall
        // back to the alternative formula when it does)
        if let Some(product256) = product.to_u256() {
            if let Some(denom) = numerator1.checked_add(product256) {
                return Ok(numerator1.mul_div_rounding_up(sqrt_price, denom));
            }
        }
        // sqrtP' = L*2^96 / (L*2^96/sqrtP + amount)
        let denom = (numerator1 / sqrt_price)
            .checked_add(amt)
            .ok_or(PriceMathError::PriceOverflow)?;
        Ok(div_rounding_up(numerator1, denom))
    } else {
        let product256 = product
            .to_u256()
            .ok_or(PriceMathError::InsufficientReserves)?;
        let denom = numerator1
            .checked_sub(product256)
            .ok_or(PriceMathError::InsufficientReserves)?;
        if denom.is_zero() {
            return Err(PriceMathError::InsufficientReserves);
        }
        let next = numerator1.mul_div_rounding_up(sqrt_price, denom);
        Ok(next)
    }
}

/// The sqrt price after adding (`add = true`) or removing an `amount` of
/// token1. Rounds down so the price moves the smaller distance.
///
/// # Errors
/// Fails on zero liquidity or when removal exceeds reserves.
pub fn next_sqrt_price_from_amount1(
    sqrt_price: U256,
    liquidity: Liquidity,
    amount: Amount,
    add: bool,
) -> Result<U256, PriceMathError> {
    if liquidity == 0 {
        return Err(PriceMathError::ZeroLiquidity);
    }
    let l = U256::from_u128(liquidity);
    if add {
        let quotient = U256::from_u128(amount).mul_div(q96(), l);
        sqrt_price
            .checked_add(quotient)
            .ok_or(PriceMathError::PriceOverflow)
    } else {
        let quotient = U256::from_u128(amount).mul_div_rounding_up(q96(), l);
        sqrt_price
            .checked_sub(quotient)
            .ok_or(PriceMathError::InsufficientReserves)
    }
}

/// The sqrt price after spending `amount_in` of the input token.
/// `zero_for_one` means token0 is the input (price decreases).
///
/// # Errors
/// Propagates the underlying amount0/amount1 errors.
pub fn next_sqrt_price_from_input(
    sqrt_price: U256,
    liquidity: Liquidity,
    amount_in: Amount,
    zero_for_one: bool,
) -> Result<U256, PriceMathError> {
    if zero_for_one {
        next_sqrt_price_from_amount0(sqrt_price, liquidity, amount_in, true)
    } else {
        next_sqrt_price_from_amount1(sqrt_price, liquidity, amount_in, true)
    }
}

/// The sqrt price after withdrawing `amount_out` of the output token.
///
/// # Errors
/// Fails when the output exceeds available reserves.
pub fn next_sqrt_price_from_output(
    sqrt_price: U256,
    liquidity: Liquidity,
    amount_out: Amount,
    zero_for_one: bool,
) -> Result<U256, PriceMathError> {
    if zero_for_one {
        // output is token1; price decreases
        next_sqrt_price_from_amount1(sqrt_price, liquidity, amount_out, false)
    } else {
        // output is token0; price increases
        next_sqrt_price_from_amount0(sqrt_price, liquidity, amount_out, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tick_math::sqrt_ratio_at_tick;

    const L: Liquidity = 2_000_000_000_000u128; // 2e12

    fn p(tick: i32) -> U256 {
        sqrt_ratio_at_tick(tick).unwrap()
    }

    #[test]
    fn amount_deltas_are_order_insensitive() {
        let a = p(-1000);
        let b = p(1000);
        assert_eq!(
            amount0_delta(a, b, L, true).unwrap(),
            amount0_delta(b, a, L, true).unwrap()
        );
        assert_eq!(
            amount1_delta(a, b, L, false).unwrap(),
            amount1_delta(b, a, L, false).unwrap()
        );
    }

    #[test]
    fn zero_width_range_is_zero_amount() {
        let a = p(42);
        assert_eq!(amount0_delta(a, a, L, true).unwrap(), 0);
        assert_eq!(amount1_delta(a, a, L, true).unwrap(), 0);
    }

    #[test]
    fn round_up_ge_round_down() {
        let a = p(-500);
        let b = p(777);
        assert!(amount0_delta(a, b, L, true).unwrap() >= amount0_delta(a, b, L, false).unwrap());
        assert!(amount1_delta(a, b, L, true).unwrap() >= amount1_delta(a, b, L, false).unwrap());
    }

    #[test]
    fn input_token0_decreases_price() {
        let start = p(0);
        let next = next_sqrt_price_from_input(start, L, 10_000, true).unwrap();
        assert!(next < start);
    }

    #[test]
    fn input_token1_increases_price() {
        let start = p(0);
        let next = next_sqrt_price_from_input(start, L, 10_000, false).unwrap();
        assert!(next > start);
    }

    #[test]
    fn output_directions() {
        let start = p(0);
        // taking token1 out moves price down
        assert!(next_sqrt_price_from_output(start, L, 10_000, true).unwrap() < start);
        // taking token0 out moves price up
        assert!(next_sqrt_price_from_output(start, L, 10_000, false).unwrap() > start);
    }

    #[test]
    fn zero_amount_keeps_price() {
        let start = p(123);
        assert_eq!(
            next_sqrt_price_from_amount0(start, L, 0, true).unwrap(),
            start
        );
        assert_eq!(
            next_sqrt_price_from_amount1(start, L, 0, true).unwrap(),
            start
        );
    }

    #[test]
    fn zero_liquidity_rejected() {
        assert_eq!(
            next_sqrt_price_from_amount0(p(0), 0, 5, true),
            Err(PriceMathError::ZeroLiquidity)
        );
        assert_eq!(
            next_sqrt_price_from_amount1(p(0), 0, 5, true),
            Err(PriceMathError::ZeroLiquidity)
        );
    }

    #[test]
    fn excessive_output_rejected() {
        // draining far more token1 than the range holds
        let r = next_sqrt_price_from_output(p(0), 1_000, u128::MAX / 2, true);
        assert_eq!(r, Err(PriceMathError::InsufficientReserves));
    }

    #[test]
    fn amount_roundtrip_input_token1() {
        // moving the price by adding token1 and then measuring amount1
        // between old and new price recovers ~the input
        let start = p(0);
        let amount: Amount = 5_000_000;
        let next = next_sqrt_price_from_input(start, L, amount, false).unwrap();
        let measured = amount1_delta(start, next, L, true).unwrap();
        assert!(measured <= amount);
        assert!(amount - measured <= 1, "lost more than 1 unit: {measured}");
    }

    #[test]
    fn amount_roundtrip_input_token0() {
        let start = p(0);
        let amount: Amount = 5_000_000;
        let next = next_sqrt_price_from_input(start, L, amount, true).unwrap();
        let measured = amount0_delta(start, next, L, true).unwrap();
        // rounding-up of the price means we may need up to `amount`, never
        // more
        assert!(measured <= amount, "{measured} > {amount}");
        assert!(amount - measured <= 1);
    }
}
