//! Single-range swap stepping (Uniswap `SwapMath::computeSwapStep`): moves
//! the price within one tick range, computing input consumed, output
//! produced and the LP fee charged.

use crate::sqrt_price_math::{
    amount0_delta, amount1_delta, next_sqrt_price_from_input, next_sqrt_price_from_output,
    PriceMathError,
};
use crate::types::{Amount, Liquidity, PIPS_DENOMINATOR};
use ammboost_crypto::U256;

/// Result of one swap step within a single tick range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapStep {
    /// Price after the step.
    pub sqrt_price_next: U256,
    /// Input consumed (excluding the fee).
    pub amount_in: Amount,
    /// Output produced.
    pub amount_out: Amount,
    /// Fee charged on the input token.
    pub fee_amount: Amount,
}

/// The remaining swap budget: either input still to spend or output still
/// to receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Remaining {
    /// Exact-input swap: input tokens left to spend (fee inclusive).
    Input(Amount),
    /// Exact-output swap: output tokens still owed to the trader.
    Output(Amount),
}

/// Computes one swap step towards `sqrt_price_target`.
///
/// `zero_for_one` is implied by the price direction: a target below the
/// current price swaps token0 → token1.
///
/// # Errors
/// Propagates price-math failures (zero liquidity, reserve exhaustion).
pub fn compute_swap_step(
    sqrt_price_current: U256,
    sqrt_price_target: U256,
    liquidity: Liquidity,
    remaining: Remaining,
    fee_pips: u32,
) -> Result<SwapStep, PriceMathError> {
    debug_assert!(fee_pips < PIPS_DENOMINATOR);
    let zero_for_one = sqrt_price_current >= sqrt_price_target;

    let sqrt_price_next;
    let mut amount_in;
    let mut amount_out;

    match remaining {
        Remaining::Input(budget) => {
            let budget_less_fee = mul_div_floor_u128(budget, PIPS_DENOMINATOR - fee_pips);
            amount_in = if zero_for_one {
                amount0_delta(sqrt_price_target, sqrt_price_current, liquidity, true)?
            } else {
                amount1_delta(sqrt_price_current, sqrt_price_target, liquidity, true)?
            };
            if budget_less_fee >= amount_in {
                sqrt_price_next = sqrt_price_target;
            } else {
                sqrt_price_next = next_sqrt_price_from_input(
                    sqrt_price_current,
                    liquidity,
                    budget_less_fee,
                    zero_for_one,
                )?;
            }
            let reached = sqrt_price_next == sqrt_price_target;
            if !reached {
                amount_in = if zero_for_one {
                    amount0_delta(sqrt_price_next, sqrt_price_current, liquidity, true)?
                } else {
                    amount1_delta(sqrt_price_current, sqrt_price_next, liquidity, true)?
                };
            }
            amount_out = if zero_for_one {
                amount1_delta(sqrt_price_next, sqrt_price_current, liquidity, false)?
            } else {
                amount0_delta(sqrt_price_current, sqrt_price_next, liquidity, false)?
            };
            let fee_amount = if !reached {
                // whole remaining budget is consumed; everything beyond the
                // net input is the fee
                budget - amount_in
            } else {
                mul_div_rounding_up_u128(amount_in, fee_pips)
            };
            Ok(SwapStep {
                sqrt_price_next,
                amount_in,
                amount_out,
                fee_amount,
            })
        }
        Remaining::Output(owed) => {
            amount_out = if zero_for_one {
                amount1_delta(sqrt_price_target, sqrt_price_current, liquidity, false)?
            } else {
                amount0_delta(sqrt_price_current, sqrt_price_target, liquidity, false)?
            };
            if owed >= amount_out {
                sqrt_price_next = sqrt_price_target;
            } else {
                sqrt_price_next =
                    next_sqrt_price_from_output(sqrt_price_current, liquidity, owed, zero_for_one)?;
            }
            let reached = sqrt_price_next == sqrt_price_target;
            if !reached {
                amount_out = if zero_for_one {
                    amount1_delta(sqrt_price_next, sqrt_price_current, liquidity, false)?
                } else {
                    amount0_delta(sqrt_price_current, sqrt_price_next, liquidity, false)?
                };
            }
            // cap at what was asked for (rounding may overshoot by 1)
            if amount_out > owed {
                amount_out = owed;
            }
            amount_in = if zero_for_one {
                amount0_delta(sqrt_price_next, sqrt_price_current, liquidity, true)?
            } else {
                amount1_delta(sqrt_price_current, sqrt_price_next, liquidity, true)?
            };
            let fee_amount = mul_div_rounding_up_u128(amount_in, fee_pips);
            Ok(SwapStep {
                sqrt_price_next,
                amount_in,
                amount_out,
                fee_amount,
            })
        }
    }
}

/// `floor(amount * num / 1e6)` — exact and overflow-free in native
/// arithmetic via the decomposition `amount = q·1e6 + r`:
/// `floor(amount·num/1e6) = q·num + floor(r·num/1e6)`. With
/// `num < 1e6`, `q·num` cannot exceed 128 bits and `r·num` fits 64,
/// so no 256-bit intermediate is ever needed.
#[inline]
fn mul_div_floor_u128(amount: Amount, num: u32) -> Amount {
    const D: u128 = PIPS_DENOMINATOR as u128;
    debug_assert!((num as u128) <= D);
    let q = amount / D;
    let r = amount % D;
    q * num as u128 + r * num as u128 / D
}

/// `ceil(amount * fee / (1e6 - fee))` — the fee on top of a net input.
#[inline]
fn mul_div_rounding_up_u128(amount: Amount, fee_pips: u32) -> Amount {
    let den = (PIPS_DENOMINATOR - fee_pips) as u128;
    match amount.checked_mul(fee_pips as u128) {
        Some(p) => p.div_ceil(den),
        None => U256::from_u128(amount)
            .mul_div_rounding_up(
                U256::from_u64(fee_pips as u64),
                U256::from_u64((PIPS_DENOMINATOR - fee_pips) as u64),
            )
            .to_u128()
            .expect("fee fits in 128 bits"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tick_math::sqrt_ratio_at_tick;

    const L: Liquidity = 2_000_000_000_000u128;
    const FEE: u32 = 3000; // 0.3%

    fn p(t: i32) -> U256 {
        sqrt_ratio_at_tick(t).unwrap()
    }

    #[test]
    fn exact_in_reaches_target_when_budget_ample() {
        let step =
            compute_swap_step(p(0), p(-100), L, Remaining::Input(u128::MAX >> 4), FEE).unwrap();
        assert_eq!(step.sqrt_price_next, p(-100));
        assert!(step.amount_in > 0);
        assert!(step.amount_out > 0);
        assert!(step.fee_amount > 0);
    }

    #[test]
    fn exact_in_partial_consumes_entire_budget() {
        let budget = 10_000u128;
        let step = compute_swap_step(p(0), p(-10000), L, Remaining::Input(budget), FEE).unwrap();
        assert!(step.sqrt_price_next > p(-10000));
        assert_eq!(step.amount_in + step.fee_amount, budget);
    }

    #[test]
    fn fee_is_about_fee_rate() {
        let step =
            compute_swap_step(p(0), p(-50), L, Remaining::Input(u128::MAX >> 4), FEE).unwrap();
        // fee / (in + fee) ≈ 0.003
        let total = step.amount_in + step.fee_amount;
        let rate = step.fee_amount as f64 / total as f64;
        assert!((rate - 0.003).abs() < 1e-4, "rate {rate}");
    }

    #[test]
    fn zero_fee_zero_fee_amount_at_target() {
        let step = compute_swap_step(p(0), p(-50), L, Remaining::Input(u128::MAX >> 4), 0).unwrap();
        assert_eq!(step.fee_amount, 0);
    }

    #[test]
    fn exact_out_exact_delivery() {
        let owed = 1_000_000u128;
        let step = compute_swap_step(p(0), p(-20000), L, Remaining::Output(owed), FEE).unwrap();
        assert_eq!(step.amount_out, owed);
        assert!(step.amount_in > 0);
        assert!(step.sqrt_price_next > p(-20000));
    }

    #[test]
    fn exact_out_capped_at_range_capacity() {
        // asking for more output than the range can produce stops at target
        let step =
            compute_swap_step(p(0), p(-100), L, Remaining::Output(u128::MAX >> 4), FEE).unwrap();
        assert_eq!(step.sqrt_price_next, p(-100));
        let capacity = amount1_delta(p(-100), p(0), L, false).unwrap();
        assert_eq!(step.amount_out, capacity);
    }

    #[test]
    fn one_for_zero_direction() {
        let step =
            compute_swap_step(p(0), p(100), L, Remaining::Input(u128::MAX >> 4), FEE).unwrap();
        assert_eq!(step.sqrt_price_next, p(100));
        // input is token1, output token0
        assert!(step.amount_in > 0 && step.amount_out > 0);
    }

    #[test]
    fn output_not_greater_than_input_value_at_price_one() {
        // near tick 0 price ≈ 1, so out <= in (fees + slippage)
        let step = compute_swap_step(p(0), p(-3000), L, Remaining::Input(1_000_000), FEE).unwrap();
        assert!(step.amount_out <= step.amount_in + step.fee_amount);
    }

    #[test]
    fn tiny_budget_all_fee() {
        // a 1-wei budget: the fee rounding consumes it
        let step = compute_swap_step(p(0), p(-100), L, Remaining::Input(1), FEE).unwrap();
        assert_eq!(step.amount_in + step.fee_amount, 1);
    }
}
