//! Deterministic traffic generation calibrated to the paper's setup
//! (§V "Traffic generation" and §VI-A): a configurable user population
//! issues swaps, mints, burns and collects at a constant arrival rate
//! `ρ = ⌈V_D · bt / 86400⌉` per sidechain round, following a configurable
//! mix (default: Table VII).
//!
//! Traffic can span a *set* of pools: each user has a home pool (fixed
//! round-robin assignment), per-transaction pool choice follows a
//! configurable skew ([`TrafficSkew`] — uniform, or Zipf-distributed as
//! real AMM fleets are), and every transaction a user issues targets
//! their home pool, so per-pool traffic streams are independent.

use crate::mix::TrafficMix;
use crate::uniswap2023;
use ammboost_amm::engines::EngineKind;
use ammboost_amm::tx::{
    AmmTx, BurnTx, CollectTx, MintTx, RouteHop, RouteTx, SwapIntent, SwapTx, MAX_ROUTE_HOPS,
};
use ammboost_amm::types::{PoolId, PositionId};
use ammboost_crypto::Address;
use ammboost_sim::rng::DetRng;
use ammboost_sim::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How generated mints fragment liquidity across ticks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum LiquidityStyle {
    /// The paper's setup: a modest number of wide ranges centred near the
    /// price (default).
    #[default]
    PaperSpread,
    /// Many narrow single-spacing ranges tiled across a wide band — a
    /// tick-dense pool in which swaps cross initialized ticks constantly
    /// (the regime-switching rebalancing pattern of impulse-control LPs).
    /// This is the workload that makes next-tick lookup the hot path.
    Fragmented,
}

/// How per-transaction traffic distributes across the configured pool
/// set.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum TrafficSkew {
    /// Every pool receives the same expected share (default).
    #[default]
    Uniform,
    /// Pool `k` (by position in the pool set) receives a share
    /// proportional to `1 / (k+1)^exponent` — the skewed popularity
    /// profile real AMM deployments exhibit, where a few pools carry most
    /// of the volume.
    Zipf {
        /// The Zipf exponent `s` (1.0 is the classic rank-frequency law).
        exponent: f64,
    },
}

impl TrafficSkew {
    /// The (unnormalized) per-pool weights for a pool set of size `n`.
    pub fn weights(&self, n: usize) -> Vec<f64> {
        match self {
            TrafficSkew::Uniform => vec![1.0; n],
            TrafficSkew::Zipf { exponent } => (0..n)
                .map(|k| 1.0 / ((k + 1) as f64).powf(*exponent))
                .collect(),
        }
    }
}

/// How a fleet's pool set splits across AMM engine implementations: a
/// repeating pattern of `cl` concentrated-liquidity pools, then
/// `constant_product` V2-style pools, then `weighted` Balancer-style
/// pools, assigned by pool *index*. Pool popularity (the
/// [`TrafficSkew`]) is drawn independently of engine kind, so a Zipf
/// head can land on any engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineMix {
    /// Concentrated-liquidity pools per pattern repetition.
    pub cl: u32,
    /// Constant-product pools per pattern repetition.
    pub constant_product: u32,
    /// Weighted (80/20) pools per pattern repetition.
    pub weighted: u32,
}

impl Default for EngineMix {
    fn default() -> Self {
        EngineMix::all_cl()
    }
}

impl EngineMix {
    /// Every pool runs the concentrated-liquidity engine (the paper's
    /// setup; the default).
    pub fn all_cl() -> EngineMix {
        EngineMix {
            cl: 1,
            constant_product: 0,
            weighted: 0,
        }
    }

    /// A mix with the given per-pattern pool counts.
    pub fn of(cl: u32, constant_product: u32, weighted: u32) -> EngineMix {
        EngineMix {
            cl,
            constant_product,
            weighted,
        }
    }

    /// The engine kind of pool index `i`: indices walk the repeating
    /// `[cl × CL, constant_product × CP, weighted × W]` pattern, so any
    /// fleet size gets a deterministic, evenly interleaved assignment.
    /// An all-zero mix degenerates to concentrated liquidity.
    pub fn engine_for(&self, i: u32) -> EngineKind {
        let period = self.cl + self.constant_product + self.weighted;
        if period == 0 {
            return EngineKind::ConcentratedLiquidity;
        }
        let slot = i % period;
        if slot < self.cl {
            EngineKind::ConcentratedLiquidity
        } else if slot < self.cl + self.constant_product {
            EngineKind::ConstantProduct
        } else {
            EngineKind::Weighted
        }
    }

    /// Assigns an engine kind to every pool of a fleet, by position in
    /// the pool set — the shape [`ShardMap::new_with_engines`] takes.
    ///
    /// [`ShardMap::new_with_engines`]: https://docs.rs/ammboost-core
    pub fn engines(&self, pools: &[PoolId]) -> Vec<(PoolId, EngineKind)> {
        pools
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, self.engine_for(i as u32)))
            .collect()
    }
}

/// How routed (multi-hop) traffic is generated: which share of the swap
/// flow routes through several pools, and the hop-count distribution.
/// Routes are always constrained to the configured pool set, visit
/// distinct pools, and chain directions (hop *k*'s output token is hop
/// *k+1*'s input token).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RouteStyle {
    /// Fraction of generated *swaps* upgraded to multi-hop routes
    /// (0.0 = the paper's single-pool traffic, the default). Routes need
    /// at least two pools; with a single-pool set the share is ignored.
    pub routed_share: f64,
    /// Minimum hops per route (clamped to ≥ 2).
    pub min_hops: usize,
    /// Maximum hops per route (clamped to the pool count and
    /// [`MAX_ROUTE_HOPS`]); hop counts draw uniformly from
    /// `min_hops..=max_hops`.
    pub max_hops: usize,
}

impl Default for RouteStyle {
    fn default() -> Self {
        RouteStyle {
            routed_share: 0.0,
            min_hops: 2,
            max_hops: 3,
        }
    }
}

impl RouteStyle {
    /// A routed-traffic profile: `share` of swaps become 2..=`max_hops`
    /// routes.
    pub fn routed(share: f64, max_hops: usize) -> RouteStyle {
        RouteStyle {
            routed_share: share,
            min_hops: 2,
            max_hops,
        }
    }

    /// `true` when this style can emit routes over `pool_count` pools.
    pub fn active(&self, pool_count: usize) -> bool {
        self.routed_share > 0.0 && pool_count >= 2
    }
}

/// How much read (quote) traffic rides along with the write stream: a
/// production AMM node answers many price-quote / simulate / valuation
/// queries per executed trade, and this knob models that ratio. Quote
/// requests draw from an RNG stream *independent* of the transaction
/// stream, so enabling quotes leaves the executed traffic bit-identical.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct QuoteStyle {
    /// Average quote queries issued per executed transaction
    /// (0.0 = none, the default — the paper's write-only workloads).
    pub quotes_per_tx: f64,
}

impl Default for QuoteStyle {
    fn default() -> Self {
        QuoteStyle { quotes_per_tx: 0.0 }
    }
}

impl QuoteStyle {
    /// A read-heavy profile issuing `n` quotes per executed transaction.
    pub fn per_tx(n: f64) -> QuoteStyle {
        QuoteStyle { quotes_per_tx: n }
    }

    /// `true` when this style emits any quote traffic.
    pub fn active(&self) -> bool {
        self.quotes_per_tx > 0.0
    }
}

/// One read-path query, answered from the current sealed epoch view
/// without touching the write path.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuoteRequest {
    /// Price a single exact-input swap.
    Swap {
        /// The pool to quote on.
        pool: PoolId,
        /// `true` to sell token0 for token1.
        zero_for_one: bool,
        /// Input budget, fee inclusive.
        amount_in: u128,
    },
    /// Simulate a multi-hop route (distinct pools, alternating
    /// directions, as [`RouteTx::validate`] requires).
    Route {
        /// The hops, in execution order.
        hops: Vec<RouteHop>,
        /// Input budget on the first hop.
        amount_in: u128,
    },
    /// Value a position (principal at the sealed price plus owed fees).
    Valuation {
        /// The pool holding the position.
        pool: PoolId,
        /// The position to value.
        position: PositionId,
    },
}

/// Generator configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Daily transaction volume `V_D` (paper default: 25 × 10⁶).
    pub daily_volume: u64,
    /// Traffic mix (default: Table VII).
    pub mix: TrafficMix,
    /// Number of simulated users (paper: 100). Must be at least the pool
    /// count so every pool has a user population.
    pub users: u64,
    /// Sidechain round duration `bt` (paper default: 7 s).
    pub round_duration: SimDuration,
    /// The pool set under test. User `i` is homed on
    /// `pools[i % pools.len()]` and only ever transacts there, so the
    /// per-pool traffic streams are independent (the property the
    /// sharded-vs-independent differential test relies on).
    pub pools: Vec<PoolId>,
    /// How per-transaction traffic distributes across the pool set.
    pub skew: TrafficSkew,
    /// Routed-traffic profile: share of swaps upgraded to multi-hop
    /// routes and the hop-count distribution (default: no routes).
    pub route_style: RouteStyle,
    /// Rounds after submission before a swap's deadline expires. Large by
    /// default so congested runs measure queueing latency rather than
    /// deadline drops (set small to exercise expiry).
    pub deadline_slack_rounds: u64,
    /// Maximum live positions per user; beyond it, mints top up existing
    /// positions instead of creating new ones. This keeps the position
    /// population bounded by the user count (as in the paper, where sync
    /// gas scales "with the number of clients and liquidity providers",
    /// not with traffic volume) and keeps sync transactions within the
    /// mainchain block gas limit.
    pub max_positions_per_user: usize,
    /// Mint range shape (default: the paper's spread).
    pub liquidity_style: LiquidityStyle,
    /// Read-traffic profile: quote queries per executed transaction
    /// (default: none).
    pub quote_style: QuoteStyle,
    /// How the pool set splits across engine implementations (default:
    /// all concentrated-liquidity, the paper's setup). Assignment is by
    /// pool index, independent of the popularity skew.
    pub engine_mix: EngineMix,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            daily_volume: 25_000_000,
            mix: TrafficMix::uniswap_2023(),
            users: 100,
            round_duration: SimDuration::from_secs(7),
            pools: vec![PoolId(0)],
            skew: TrafficSkew::default(),
            route_style: RouteStyle::default(),
            deadline_slack_rounds: 1_000_000,
            max_positions_per_user: 1,
            liquidity_style: LiquidityStyle::default(),
            quote_style: QuoteStyle::default(),
            engine_mix: EngineMix::default(),
            seed: 7,
        }
    }
}

/// A generated transaction with its wire size (Table VII averages).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GeneratedTx {
    /// The transaction.
    pub tx: AmmTx,
    /// Its size in bytes as counted against block budgets.
    pub wire_size: usize,
}

/// The deterministic traffic generator.
#[derive(Clone, Debug)]
pub struct TrafficGenerator {
    /// The configuration in force.
    pub config: GeneratorConfig,
    rng: DetRng,
    /// Independent stream for quote (read) traffic, so the executed
    /// transaction stream is bit-identical with quotes on or off.
    quote_rng: DetRng,
    nonces: Vec<u64>,
    /// Positions fed back from mints, indexed by pool so burns/collects
    /// draw from the right pool in O(1) without scanning the fleet.
    positions: HashMap<PoolId, Vec<(Address, PositionId)>>,
    /// Cumulative, normalized pool-choice weights (one entry per pool).
    cumulative_weights: Vec<f64>,
    /// Reverse map address → home pool, for deposit routing.
    home_pools: HashMap<Address, PoolId>,
}

impl TrafficGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    /// Panics when the pool set is empty or larger than the user
    /// population (every pool needs at least one user).
    pub fn new(config: GeneratorConfig) -> TrafficGenerator {
        assert!(!config.pools.is_empty(), "pool set must not be empty");
        assert!(
            config.users >= config.pools.len() as u64,
            "need at least one user per pool ({} users, {} pools)",
            config.users,
            config.pools.len()
        );
        let rng = DetRng::new(config.seed);
        let quote_rng = DetRng::new(config.seed ^ 0x5107_E57A_7E00_0001);
        let nonces = vec![0u64; config.users as usize];
        let weights = config.skew.weights(config.pools.len());
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cumulative_weights = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        let home_pools = (0..config.users)
            .map(|i| {
                (
                    Self::user_address(i),
                    config.pools[(i % config.pools.len() as u64) as usize],
                )
            })
            .collect();
        TrafficGenerator {
            config,
            rng,
            quote_rng,
            nonces,
            positions: HashMap::new(),
            cumulative_weights,
            home_pools,
        }
    }

    /// The user population's addresses.
    pub fn users(&self) -> Vec<Address> {
        (0..self.config.users).map(Self::user_address).collect()
    }

    /// Deterministic address of simulated user `i`.
    pub fn user_address(i: u64) -> Address {
        Address::from_index(0xA110_0000 + i)
    }

    /// The home pool of user index `i`.
    pub fn pool_of_index(&self, i: u64) -> PoolId {
        self.config.pools[(i % self.config.pools.len() as u64) as usize]
    }

    /// The home pool of a user address (`None` for addresses outside the
    /// simulated population). This is the deposit-routing map the system
    /// uses to split a TokenBank snapshot across shards.
    pub fn pool_for(&self, user: &Address) -> Option<PoolId> {
        self.home_pools.get(user).copied()
    }

    /// The configured fleet with engine kinds assigned: one
    /// `(PoolId, EngineKind)` entry per pool, in pool-set order.
    pub fn fleet(&self) -> Vec<(PoolId, EngineKind)> {
        self.config.engine_mix.engines(&self.config.pools)
    }

    /// The constant per-round arrival count
    /// `ρ = ⌈V_D · bt / (3600 · 24)⌉` (paper §VI-A).
    pub fn txs_per_round(&self) -> u64 {
        let bt = self.config.round_duration.as_secs_f64();
        ((self.config.daily_volume as f64 * bt) / 86_400.0).ceil() as u64
    }

    /// Number of positions currently known to the generator.
    pub fn tracked_positions(&self) -> usize {
        self.positions.values().map(|v| v.len()).sum()
    }

    /// Informs the generator that a position exists (e.g. pre-seeded
    /// liquidity), so burns/collects can target it.
    pub fn register_position(&mut self, owner: Address, id: PositionId, pool: PoolId) {
        self.positions.entry(pool).or_default().push((owner, id));
    }

    /// Removes a position (after a full burn).
    pub fn forget_position(&mut self, id: PositionId) {
        for tracked in self.positions.values_mut() {
            tracked.retain(|(_, p)| *p != id);
        }
    }

    /// Generates the transaction batch arriving during `round`.
    pub fn next_round(&mut self, round: u64) -> Vec<GeneratedTx> {
        let n = self.txs_per_round();
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            out.push(self.next_tx(round));
        }
        out
    }

    /// Generates one transaction with the configured mix, pool skew and
    /// routed-traffic share.
    pub fn next_tx(&mut self, round: u64) -> GeneratedTx {
        let pool_index = self.pick_pool();
        let weights = self.config.mix.weights();
        let kind = self.rng.weighted_index(&weights);
        match kind {
            0 => {
                if self.config.route_style.active(self.config.pools.len())
                    && self.rng.unit() < self.config.route_style.routed_share
                {
                    self.gen_route(round, pool_index)
                } else {
                    self.gen_swap(round, pool_index)
                }
            }
            1 => self.gen_mint(pool_index),
            2 => self.gen_burn(pool_index),
            _ => self.gen_collect(pool_index),
        }
    }

    /// Quote queries arriving alongside one round's transaction batch:
    /// `⌈quotes_per_tx · ρ⌉` read requests. Drawn from the independent
    /// quote RNG stream — calling (or not calling) this never perturbs
    /// the generated transaction sequence.
    pub fn next_quotes(&mut self) -> Vec<QuoteRequest> {
        if !self.config.quote_style.active() {
            return Vec::new();
        }
        let n = (self.config.quote_style.quotes_per_tx * self.txs_per_round() as f64).ceil() as u64;
        (0..n).map(|_| self.next_quote()).collect()
    }

    /// Generates one quote request: mostly single-swap price quotes, with
    /// route simulations mixed in when the pool set supports them and
    /// position valuations when any position is tracked.
    pub fn next_quote(&mut self) -> QuoteRequest {
        let pi = if self.config.pools.len() == 1 {
            0
        } else {
            let draw = self.quote_rng.unit();
            self.cumulative_weights
                .iter()
                .position(|&c| draw < c)
                .unwrap_or(self.config.pools.len() - 1)
        };
        let pool = self.config.pools[pi];
        let kind = self.quote_rng.unit();
        if kind < 0.10 && self.config.pools.len() >= 2 {
            return self.gen_quote_route(pi);
        }
        if kind < 0.20 {
            if let Some((_, position)) = self
                .positions
                .get(&pool)
                .and_then(|tracked| tracked.first())
            {
                return QuoteRequest::Valuation {
                    pool,
                    position: *position,
                };
            }
        }
        QuoteRequest::Swap {
            pool,
            zero_for_one: self.quote_rng.unit() < 0.5,
            amount_in: self.quote_rng.range_u128(1_000, 120_000),
        }
    }

    /// A route-simulation request: 2..=min(pools, MAX_ROUTE_HOPS) distinct
    /// pools starting at index `pi`, directions alternating (the shape
    /// [`RouteTx::validate`] accepts).
    fn gen_quote_route(&mut self, pi: usize) -> QuoteRequest {
        let pool_cap = self.config.pools.len().min(MAX_ROUTE_HOPS);
        let hop_count = 2 + self.quote_rng.range_u64(0, (pool_cap - 2) as u64 + 1) as usize;
        let mut remaining: Vec<usize> = (0..self.config.pools.len()).filter(|&p| p != pi).collect();
        let mut path = vec![pi];
        while path.len() < hop_count {
            let k = self.quote_rng.range_u64(0, remaining.len() as u64) as usize;
            path.push(remaining.swap_remove(k));
        }
        let mut zero_for_one = self.quote_rng.unit() < 0.5;
        let hops = path
            .into_iter()
            .map(|p| {
                let hop = RouteHop {
                    pool: self.config.pools[p],
                    zero_for_one,
                };
                zero_for_one = !zero_for_one;
                hop
            })
            .collect();
        QuoteRequest::Route {
            hops,
            amount_in: self.quote_rng.range_u128(1_000, 120_000),
        }
    }

    /// Draws a pool index following the configured skew. A single-pool
    /// set consumes no randomness.
    fn pick_pool(&mut self) -> usize {
        if self.config.pools.len() == 1 {
            return 0;
        }
        let draw = self.rng.unit();
        self.cumulative_weights
            .iter()
            .position(|&c| draw < c)
            .unwrap_or(self.config.pools.len() - 1)
    }

    /// Number of users homed on pool index `pi`.
    fn users_in_pool(&self, pi: usize) -> u64 {
        let p = self.config.pools.len() as u64;
        let users = self.config.users;
        // users pi, pi+P, pi+2P, … below `users`
        (users - pi as u64).div_ceil(p)
    }

    /// Picks a user homed on pool index `pi`.
    fn pick_user_in(&mut self, pi: usize) -> (u64, Address) {
        let p = self.config.pools.len() as u64;
        let k = self.rng.range_u64(0, self.users_in_pool(pi));
        let i = pi as u64 + k * p;
        (i, Self::user_address(i))
    }

    fn gen_swap(&mut self, round: u64, pi: usize) -> GeneratedTx {
        let (_, user) = self.pick_user_in(pi);
        let zero_for_one = self.rng.unit() < 0.5;
        let amount_in = self.rng.range_u128(1_000, 120_000);
        let exact_input = self.rng.unit() < 0.8;
        let intent = if exact_input {
            SwapIntent::ExactInput {
                amount_in,
                min_amount_out: 0,
            }
        } else {
            SwapIntent::ExactOutput {
                amount_out: amount_in * 9 / 10,
                max_amount_in: amount_in * 2,
            }
        };
        let tx = AmmTx::Swap(SwapTx {
            user,
            pool: self.config.pools[pi],
            zero_for_one,
            intent,
            sqrt_price_limit: None,
            deadline_round: round + self.config.deadline_slack_rounds,
        });
        self.wrap(tx)
    }

    /// Generates a multi-hop route: entry on pool index `pi` (issued by a
    /// user homed there, so the deposit backing the route lives on the
    /// entry shard), continuing through distinct pools drawn uniformly
    /// from the rest of the configured set, directions alternating.
    fn gen_route(&mut self, round: u64, pi: usize) -> GeneratedTx {
        let (_, user) = self.pick_user_in(pi);
        let style = self.config.route_style;
        let pool_cap = self.config.pools.len().min(MAX_ROUTE_HOPS);
        let min_hops = style.min_hops.max(2).min(pool_cap);
        let max_hops = style.max_hops.clamp(min_hops, pool_cap);
        let hop_count = min_hops as u64 + self.rng.range_u64(0, (max_hops - min_hops) as u64 + 1);
        // sample distinct pool indices: entry first, then draws from the
        // shrinking remainder
        let mut remaining: Vec<usize> = (0..self.config.pools.len()).filter(|&p| p != pi).collect();
        let mut path = vec![pi];
        while (path.len() as u64) < hop_count {
            let k = self.rng.range_u64(0, remaining.len() as u64) as usize;
            path.push(remaining.swap_remove(k));
        }
        let mut zero_for_one = self.rng.unit() < 0.5;
        let hops = path
            .into_iter()
            .map(|p| {
                let hop = RouteHop {
                    pool: self.config.pools[p],
                    zero_for_one,
                };
                zero_for_one = !zero_for_one;
                hop
            })
            .collect();
        let amount_in = self.rng.range_u128(1_000, 120_000);
        self.wrap(AmmTx::Route(RouteTx {
            user,
            hops,
            amount_in,
            min_amount_out: 0,
            deadline_round: round + self.config.deadline_slack_rounds,
        }))
    }

    fn gen_mint(&mut self, pi: usize) -> GeneratedTx {
        let (ui, user) = self.pick_user_in(pi);
        let pool = self.config.pools[pi];
        // past the per-user cap, mints top up an existing position (a
        // user's positions all live on their home pool)
        let owned: Vec<PositionId> = self
            .positions
            .get(&pool)
            .map(|tracked| {
                tracked
                    .iter()
                    .filter(|(o, _)| *o == user)
                    .map(|(_, id)| *id)
                    .collect()
            })
            .unwrap_or_default();
        if owned.len() >= self.config.max_positions_per_user {
            let pick = owned[self.rng.range_u64(0, owned.len() as u64) as usize];
            self.nonces[ui as usize] += 1;
            let tx = MintTx {
                user,
                pool,
                position: Some(pick),
                // top-ups must match the existing range; the processor
                // looks it up by position id, so ticks here are advisory
                tick_lower: 0,
                tick_upper: 0,
                amount0_desired: self.rng.range_u128(100_000, 4_000_000),
                amount1_desired: self.rng.range_u128(100_000, 4_000_000),
                nonce: self.nonces[ui as usize],
            };
            return self.wrap(AmmTx::Mint(tx));
        }
        let (tick_lower, tick_upper) = match self.config.liquidity_style {
            // ranges aligned to the standard 60-tick spacing, centred near
            // the current price region
            LiquidityStyle::PaperSpread => {
                let center = (self.rng.range_u64(0, 40) as i32 - 20) * 60;
                let half_width = (1 + self.rng.range_u64(0, 20) as i32) * 60;
                (center - half_width, center + half_width)
            }
            // one-spacing-wide rungs tiled over ±128 spacings: every mint
            // initializes (up to) two fresh ticks, so the pool's tick set
            // grows dense and swaps cross constantly
            LiquidityStyle::Fragmented => {
                let rung = self.rng.range_u64(0, 256) as i32 - 128;
                (rung * 60, (rung + 1) * 60)
            }
        };
        self.nonces[ui as usize] += 1;
        let tx = MintTx {
            user,
            pool,
            position: None,
            tick_lower,
            tick_upper,
            amount0_desired: self.rng.range_u128(100_000, 4_000_000),
            amount1_desired: self.rng.range_u128(100_000, 4_000_000),
            nonce: self.nonces[ui as usize],
        };
        // track the would-be position so later burns/collects can hit it
        let id = tx.derived_position_id();
        self.positions.entry(pool).or_default().push((user, id));
        self.wrap(AmmTx::Mint(tx))
    }

    fn gen_burn(&mut self, pi: usize) -> GeneratedTx {
        match self.pick_position(self.config.pools[pi]) {
            Some((owner, id)) => {
                let full = self.rng.unit() < 0.5;
                if full {
                    self.forget_position(id);
                }
                self.wrap(AmmTx::Burn(BurnTx {
                    user: owner,
                    pool: self.config.pools[pi],
                    position: id,
                    liquidity: if full { None } else { Some(1) },
                }))
            }
            // no live position on this pool yet: fall back to a mint so
            // the mix keeps its liquidity-management share
            None => self.gen_mint(pi),
        }
    }

    fn gen_collect(&mut self, pi: usize) -> GeneratedTx {
        match self.pick_position(self.config.pools[pi]) {
            Some((owner, id)) => self.wrap(AmmTx::Collect(CollectTx {
                user: owner,
                pool: self.config.pools[pi],
                position: id,
                amount0: u128::MAX,
                amount1: u128::MAX,
            })),
            None => self.gen_mint(pi),
        }
    }

    /// Picks a tracked position on `pool` (burns/collects must reference
    /// positions of the pool the transaction targets).
    fn pick_position(&mut self, pool: PoolId) -> Option<(Address, PositionId)> {
        let tracked = self.positions.get(&pool)?;
        if tracked.is_empty() {
            return None;
        }
        let i = self.rng.range_u64(0, tracked.len() as u64) as usize;
        Some(tracked[i])
    }

    fn wrap(&self, tx: AmmTx) -> GeneratedTx {
        let wire_size = match &tx {
            AmmTx::Route(r) => uniswap2023::route_size_for(r.hops.len()),
            _ => uniswap2023::size_for(tx.kind()),
        };
        GeneratedTx { tx, wire_size }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ammboost_amm::tx::AmmTxKind;
    use std::collections::{HashMap, HashSet};

    fn config(daily: u64, seed: u64) -> GeneratorConfig {
        GeneratorConfig {
            daily_volume: daily,
            seed,
            ..GeneratorConfig::default()
        }
    }

    fn pool_set(n: u32) -> Vec<PoolId> {
        (0..n).map(PoolId).collect()
    }

    #[test]
    fn rho_formula_matches_paper() {
        // V_D = 25M, bt = 7 s → ⌈2025.46⌉ = 2026
        let g = TrafficGenerator::new(config(25_000_000, 1));
        assert_eq!(g.txs_per_round(), 2026);
        // V_D = 50K → ⌈4.05⌉ = 5
        let g = TrafficGenerator::new(config(50_000, 1));
        assert_eq!(g.txs_per_round(), 5);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = TrafficGenerator::new(config(50_000, 9));
        let mut b = TrafficGenerator::new(config(50_000, 9));
        assert_eq!(a.next_round(0), b.next_round(0));
        let mut c = TrafficGenerator::new(config(50_000, 10));
        assert_ne!(a.next_round(1), c.next_round(1));
    }

    #[test]
    fn mix_fractions_respected() {
        let mut g = TrafficGenerator::new(config(1_000_000, 3));
        let mut counts = HashMap::new();
        for _ in 0..20_000 {
            let t = g.next_tx(0);
            *counts.entry(t.tx.kind()).or_insert(0usize) += 1;
        }
        let swaps = counts[&AmmTxKind::Swap] as f64 / 20_000.0;
        assert!((swaps - 0.9319).abs() < 0.01, "swap fraction {swaps}");
        assert!(counts[&AmmTxKind::Mint] > 0);
        // burns/collects appear once mints created positions
        assert!(counts.contains_key(&AmmTxKind::Burn));
        assert!(counts.contains_key(&AmmTxKind::Collect));
    }

    #[test]
    fn early_burns_fall_back_to_mints() {
        // force a burn with no positions: must produce a mint instead
        let mut g = TrafficGenerator::new(GeneratorConfig {
            mix: TrafficMix::from_tuple((0.0, 0.0, 100.0, 0.0)),
            ..config(50_000, 4)
        });
        let t = g.next_tx(0);
        assert_eq!(t.tx.kind(), AmmTxKind::Mint);
        // now a position exists; the next burn is a real burn
        let t2 = g.next_tx(0);
        assert_eq!(t2.tx.kind(), AmmTxKind::Burn);
    }

    #[test]
    fn wire_sizes_match_table_vii() {
        let mut g = TrafficGenerator::new(config(100_000, 5));
        for _ in 0..200 {
            let t = g.next_tx(0);
            assert_eq!(t.wire_size, uniswap2023::size_for(t.tx.kind()));
        }
    }

    #[test]
    fn burns_and_collects_reference_tracked_positions() {
        let mut g = TrafficGenerator::new(GeneratorConfig {
            mix: TrafficMix::from_tuple((0.0, 50.0, 25.0, 25.0)),
            ..config(100_000, 6)
        });
        for _ in 0..500 {
            let t = g.next_tx(0);
            if let AmmTx::Burn(b) = &t.tx {
                // the owner recorded for the position must match
                assert!(TrafficGenerator::user_address(0) != Address::ZERO);
                assert!(!b.position.0.is_zero());
            }
        }
        assert!(g.tracked_positions() > 0);
    }

    #[test]
    fn fragmented_style_tiles_many_distinct_ticks() {
        let mut g = TrafficGenerator::new(GeneratorConfig {
            mix: TrafficMix::from_tuple((0.0, 100.0, 0.0, 0.0)),
            users: 200,
            max_positions_per_user: 4,
            liquidity_style: LiquidityStyle::Fragmented,
            ..config(100_000, 11)
        });
        let mut ticks = HashSet::new();
        for _ in 0..400 {
            if let AmmTx::Mint(m) = g.next_tx(0).tx {
                if m.position.is_none() {
                    assert_eq!(m.tick_upper - m.tick_lower, 60, "one spacing wide");
                    assert_eq!(m.tick_lower % 60, 0);
                    ticks.insert(m.tick_lower);
                    ticks.insert(m.tick_upper);
                }
            }
        }
        // a dense tick population, far beyond the paper-spread handful
        assert!(ticks.len() > 100, "only {} distinct ticks", ticks.len());
    }

    #[test]
    fn users_are_stable() {
        let g = TrafficGenerator::new(config(50_000, 7));
        let users = g.users();
        assert_eq!(users.len(), 100);
        assert_eq!(users[3], TrafficGenerator::user_address(3));
    }

    #[test]
    fn round_batch_size_matches_rho() {
        let mut g = TrafficGenerator::new(config(500_000, 8));
        let batch = g.next_round(0);
        assert_eq!(batch.len() as u64, g.txs_per_round());
    }

    #[test]
    fn every_tx_targets_its_users_home_pool() {
        // cross-pool mixes preserve the user→pool affinity invariant:
        // burns/collects included (they must hit positions of the pool)
        let mut g = TrafficGenerator::new(GeneratorConfig {
            pools: pool_set(8),
            users: 64,
            ..config(1_000_000, 21)
        });
        for _ in 0..5_000 {
            let t = g.next_tx(0);
            let home = g.pool_for(&t.tx.user()).expect("simulated user");
            assert_eq!(t.tx.pool(), home, "tx strays off its user's pool");
        }
    }

    #[test]
    fn routed_share_emits_well_formed_routes() {
        let mut g = TrafficGenerator::new(GeneratorConfig {
            pools: pool_set(8),
            users: 64,
            route_style: RouteStyle::routed(0.5, 4),
            ..config(1_000_000, 13)
        });
        let mut routes = 0usize;
        let mut swaps = 0usize;
        for _ in 0..5_000 {
            let t = g.next_tx(0);
            match &t.tx {
                AmmTx::Route(r) => {
                    routes += 1;
                    r.validate().expect("generated route must be well-formed");
                    assert!((2..=4).contains(&r.hops.len()), "{} hops", r.hops.len());
                    // constrained to the configured pool set
                    for hop in &r.hops {
                        assert!(hop.pool.0 < 8, "route strays off the pool set");
                    }
                    // the entry pool is the issuing user's home pool, so
                    // the deposit backing the route lives on that shard
                    assert_eq!(g.pool_for(&r.user), Some(r.entry_pool()));
                    assert_eq!(t.wire_size, uniswap2023::route_size_for(r.hops.len()));
                }
                AmmTx::Swap(_) => swaps += 1,
                _ => {}
            }
        }
        assert!(routes > 1_000, "only {routes} routes at 50% share");
        assert!(swaps > 1_000, "plain swaps must survive the split");
    }

    #[test]
    fn zero_routed_share_emits_no_routes() {
        let mut g = TrafficGenerator::new(GeneratorConfig {
            pools: pool_set(4),
            users: 16,
            ..config(500_000, 14)
        });
        for _ in 0..2_000 {
            assert!(!matches!(g.next_tx(0).tx, AmmTx::Route(_)));
        }
    }

    #[test]
    fn single_pool_set_never_routes() {
        // share > 0 but one pool: routes are impossible, swaps flow on
        let mut g = TrafficGenerator::new(GeneratorConfig {
            route_style: RouteStyle::routed(0.9, 4),
            ..config(500_000, 15)
        });
        for _ in 0..1_000 {
            assert!(!matches!(g.next_tx(0).tx, AmmTx::Route(_)));
        }
    }

    #[test]
    fn uniform_skew_spreads_and_zipf_concentrates() {
        let count_per_pool = |skew: TrafficSkew, seed: u64| {
            let mut g = TrafficGenerator::new(GeneratorConfig {
                pools: pool_set(8),
                users: 64,
                skew,
                ..config(1_000_000, seed)
            });
            let mut counts = vec![0u64; 8];
            for _ in 0..20_000 {
                counts[g.next_tx(0).tx.pool().0 as usize] += 1;
            }
            counts
        };
        let uniform = count_per_pool(TrafficSkew::Uniform, 31);
        for c in &uniform {
            let frac = *c as f64 / 20_000.0;
            assert!((frac - 0.125).abs() < 0.02, "uniform share {frac}");
        }
        let zipf = count_per_pool(TrafficSkew::Zipf { exponent: 1.0 }, 31);
        // rank 0 carries the Zipf head: 1 / H_8 ≈ 36.8%
        let head = zipf[0] as f64 / 20_000.0;
        assert!((head - 0.368).abs() < 0.03, "zipf head share {head}");
        assert!(zipf[0] > 2 * zipf[7], "tail not thinner than head");
    }

    #[test]
    fn home_pool_assignment_is_round_robin() {
        let g = TrafficGenerator::new(GeneratorConfig {
            pools: pool_set(4),
            users: 10,
            ..config(50_000, 3)
        });
        for i in 0..10u64 {
            assert_eq!(g.pool_of_index(i), PoolId((i % 4) as u32));
            assert_eq!(
                g.pool_for(&TrafficGenerator::user_address(i)),
                Some(PoolId((i % 4) as u32))
            );
        }
        assert_eq!(g.pool_for(&Address::ZERO), None);
    }

    #[test]
    #[should_panic(expected = "at least one user per pool")]
    fn more_pools_than_users_rejected() {
        TrafficGenerator::new(GeneratorConfig {
            pools: pool_set(16),
            users: 8,
            ..config(50_000, 1)
        });
    }

    #[test]
    fn engine_mix_cycles_deterministic_pattern() {
        let mix = EngineMix::of(2, 1, 1);
        let kinds: Vec<EngineKind> = (0..8).map(|i| mix.engine_for(i)).collect();
        assert_eq!(
            kinds,
            vec![
                EngineKind::ConcentratedLiquidity,
                EngineKind::ConcentratedLiquidity,
                EngineKind::ConstantProduct,
                EngineKind::Weighted,
                EngineKind::ConcentratedLiquidity,
                EngineKind::ConcentratedLiquidity,
                EngineKind::ConstantProduct,
                EngineKind::Weighted,
            ]
        );
        // degenerate mixes stay usable
        assert_eq!(
            EngineMix::of(0, 0, 0).engine_for(3),
            EngineKind::ConcentratedLiquidity
        );
        assert_eq!(EngineMix::default(), EngineMix::all_cl());
    }

    #[test]
    fn fleet_assignment_independent_of_skew() {
        // engine kinds come from pool position, not the traffic draw:
        // the same fleet layout under uniform and Zipf skews
        let fleet_of = |skew: TrafficSkew| {
            TrafficGenerator::new(GeneratorConfig {
                pools: pool_set(6),
                users: 12,
                skew,
                engine_mix: EngineMix::of(1, 1, 1),
                ..config(50_000, 2)
            })
            .fleet()
        };
        let uniform = fleet_of(TrafficSkew::Uniform);
        let zipf = fleet_of(TrafficSkew::Zipf { exponent: 1.0 });
        assert_eq!(uniform, zipf);
        assert_eq!(uniform[0].1, EngineKind::ConcentratedLiquidity);
        assert_eq!(uniform[1].1, EngineKind::ConstantProduct);
        assert_eq!(uniform[2].1, EngineKind::Weighted);
        assert_eq!(uniform[3].1, EngineKind::ConcentratedLiquidity);
    }

    #[test]
    fn zipf_weights_normalize() {
        let w = TrafficSkew::Zipf { exponent: 1.0 }.weights(4);
        assert_eq!(w.len(), 4);
        assert!((w[0] - 1.0).abs() < 1e-12);
        assert!((w[3] - 0.25).abs() < 1e-12);
        assert_eq!(TrafficSkew::Uniform.weights(3), vec![1.0; 3]);
    }
}
