//! Deterministic traffic generation calibrated to the paper's setup
//! (§V "Traffic generation" and §VI-A): a configurable user population
//! issues swaps, mints, burns and collects at a constant arrival rate
//! `ρ = ⌈V_D · bt / 86400⌉` per sidechain round, following a configurable
//! mix (default: Table VII).

use crate::mix::TrafficMix;
use crate::uniswap2023;
use ammboost_amm::tx::{AmmTx, BurnTx, CollectTx, MintTx, SwapIntent, SwapTx};
use ammboost_amm::types::{PoolId, PositionId};
use ammboost_crypto::Address;
use ammboost_sim::rng::DetRng;
use ammboost_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// How generated mints fragment liquidity across ticks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum LiquidityStyle {
    /// The paper's setup: a modest number of wide ranges centred near the
    /// price (default).
    #[default]
    PaperSpread,
    /// Many narrow single-spacing ranges tiled across a wide band — a
    /// tick-dense pool in which swaps cross initialized ticks constantly
    /// (the regime-switching rebalancing pattern of impulse-control LPs).
    /// This is the workload that makes next-tick lookup the hot path.
    Fragmented,
}

/// Generator configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Daily transaction volume `V_D` (paper default: 25 × 10⁶).
    pub daily_volume: u64,
    /// Traffic mix (default: Table VII).
    pub mix: TrafficMix,
    /// Number of simulated users (paper: 100).
    pub users: u64,
    /// Sidechain round duration `bt` (paper default: 7 s).
    pub round_duration: SimDuration,
    /// The single pool under test.
    pub pool: PoolId,
    /// Rounds after submission before a swap's deadline expires. Large by
    /// default so congested runs measure queueing latency rather than
    /// deadline drops (set small to exercise expiry).
    pub deadline_slack_rounds: u64,
    /// Maximum live positions per user; beyond it, mints top up existing
    /// positions instead of creating new ones. This keeps the position
    /// population bounded by the user count (as in the paper, where sync
    /// gas scales "with the number of clients and liquidity providers",
    /// not with traffic volume) and keeps sync transactions within the
    /// mainchain block gas limit.
    pub max_positions_per_user: usize,
    /// Mint range shape (default: the paper's spread).
    pub liquidity_style: LiquidityStyle,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            daily_volume: 25_000_000,
            mix: TrafficMix::uniswap_2023(),
            users: 100,
            round_duration: SimDuration::from_secs(7),
            pool: PoolId(0),
            deadline_slack_rounds: 1_000_000,
            max_positions_per_user: 1,
            liquidity_style: LiquidityStyle::default(),
            seed: 7,
        }
    }
}

/// A generated transaction with its wire size (Table VII averages).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GeneratedTx {
    /// The transaction.
    pub tx: AmmTx,
    /// Its size in bytes as counted against block budgets.
    pub wire_size: usize,
}

/// The deterministic traffic generator.
#[derive(Clone, Debug)]
pub struct TrafficGenerator {
    /// The configuration in force.
    pub config: GeneratorConfig,
    rng: DetRng,
    nonces: Vec<u64>,
    /// Positions owned per user, fed back from mints so burns/collects
    /// reference real positions.
    positions: Vec<(Address, PositionId)>,
}

impl TrafficGenerator {
    /// Creates a generator.
    pub fn new(config: GeneratorConfig) -> TrafficGenerator {
        let rng = DetRng::new(config.seed);
        let nonces = vec![0u64; config.users as usize];
        TrafficGenerator {
            config,
            rng,
            nonces,
            positions: Vec::new(),
        }
    }

    /// The user population's addresses.
    pub fn users(&self) -> Vec<Address> {
        (0..self.config.users).map(Self::user_address).collect()
    }

    /// Deterministic address of simulated user `i`.
    pub fn user_address(i: u64) -> Address {
        Address::from_index(0xA110_0000 + i)
    }

    /// The constant per-round arrival count
    /// `ρ = ⌈V_D · bt / (3600 · 24)⌉` (paper §VI-A).
    pub fn txs_per_round(&self) -> u64 {
        let bt = self.config.round_duration.as_secs_f64();
        ((self.config.daily_volume as f64 * bt) / 86_400.0).ceil() as u64
    }

    /// Number of positions currently known to the generator.
    pub fn tracked_positions(&self) -> usize {
        self.positions.len()
    }

    /// Informs the generator that a position exists (e.g. pre-seeded
    /// liquidity), so burns/collects can target it.
    pub fn register_position(&mut self, owner: Address, id: PositionId) {
        self.positions.push((owner, id));
    }

    /// Removes a position (after a full burn).
    pub fn forget_position(&mut self, id: PositionId) {
        self.positions.retain(|(_, p)| *p != id);
    }

    /// Generates the transaction batch arriving during `round`.
    pub fn next_round(&mut self, round: u64) -> Vec<GeneratedTx> {
        let n = self.txs_per_round();
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            out.push(self.next_tx(round));
        }
        out
    }

    /// Generates one transaction with the configured mix.
    pub fn next_tx(&mut self, round: u64) -> GeneratedTx {
        let weights = self.config.mix.weights();
        let kind = self.rng.weighted_index(&weights);
        match kind {
            0 => self.gen_swap(round),
            1 => self.gen_mint(),
            2 => self.gen_burn(),
            _ => self.gen_collect(),
        }
    }

    fn pick_user(&mut self) -> (u64, Address) {
        let i = self.rng.range_u64(0, self.config.users);
        (i, Self::user_address(i))
    }

    fn gen_swap(&mut self, round: u64) -> GeneratedTx {
        let (_, user) = self.pick_user();
        let zero_for_one = self.rng.unit() < 0.5;
        let amount_in = self.rng.range_u128(1_000, 120_000);
        let exact_input = self.rng.unit() < 0.8;
        let intent = if exact_input {
            SwapIntent::ExactInput {
                amount_in,
                min_amount_out: 0,
            }
        } else {
            SwapIntent::ExactOutput {
                amount_out: amount_in * 9 / 10,
                max_amount_in: amount_in * 2,
            }
        };
        let tx = AmmTx::Swap(SwapTx {
            user,
            pool: self.config.pool,
            zero_for_one,
            intent,
            sqrt_price_limit: None,
            deadline_round: round + self.config.deadline_slack_rounds,
        });
        self.wrap(tx)
    }

    fn gen_mint(&mut self) -> GeneratedTx {
        let (ui, user) = self.pick_user();
        // past the per-user cap, mints top up an existing position
        let owned: Vec<PositionId> = self
            .positions
            .iter()
            .filter(|(o, _)| *o == user)
            .map(|(_, id)| *id)
            .collect();
        if owned.len() >= self.config.max_positions_per_user {
            let pick = owned[self.rng.range_u64(0, owned.len() as u64) as usize];
            self.nonces[ui as usize] += 1;
            let tx = MintTx {
                user,
                pool: self.config.pool,
                position: Some(pick),
                // top-ups must match the existing range; the processor
                // looks it up by position id, so ticks here are advisory
                tick_lower: 0,
                tick_upper: 0,
                amount0_desired: self.rng.range_u128(100_000, 4_000_000),
                amount1_desired: self.rng.range_u128(100_000, 4_000_000),
                nonce: self.nonces[ui as usize],
            };
            return self.wrap(AmmTx::Mint(tx));
        }
        let (tick_lower, tick_upper) = match self.config.liquidity_style {
            // ranges aligned to the standard 60-tick spacing, centred near
            // the current price region
            LiquidityStyle::PaperSpread => {
                let center = (self.rng.range_u64(0, 40) as i32 - 20) * 60;
                let half_width = (1 + self.rng.range_u64(0, 20) as i32) * 60;
                (center - half_width, center + half_width)
            }
            // one-spacing-wide rungs tiled over ±128 spacings: every mint
            // initializes (up to) two fresh ticks, so the pool's tick set
            // grows dense and swaps cross constantly
            LiquidityStyle::Fragmented => {
                let rung = self.rng.range_u64(0, 256) as i32 - 128;
                (rung * 60, (rung + 1) * 60)
            }
        };
        self.nonces[ui as usize] += 1;
        let tx = MintTx {
            user,
            pool: self.config.pool,
            position: None,
            tick_lower,
            tick_upper,
            amount0_desired: self.rng.range_u128(100_000, 4_000_000),
            amount1_desired: self.rng.range_u128(100_000, 4_000_000),
            nonce: self.nonces[ui as usize],
        };
        // track the would-be position so later burns/collects can hit it
        let id = tx.derived_position_id();
        self.positions.push((user, id));
        self.wrap(AmmTx::Mint(tx))
    }

    fn gen_burn(&mut self) -> GeneratedTx {
        match self.pick_position() {
            Some((owner, id)) => {
                let full = self.rng.unit() < 0.5;
                if full {
                    self.forget_position(id);
                }
                self.wrap(AmmTx::Burn(BurnTx {
                    user: owner,
                    pool: self.config.pool,
                    position: id,
                    liquidity: if full { None } else { Some(1) },
                }))
            }
            // no live position yet: fall back to a mint so the mix keeps
            // its liquidity-management share
            None => self.gen_mint(),
        }
    }

    fn gen_collect(&mut self) -> GeneratedTx {
        match self.pick_position() {
            Some((owner, id)) => self.wrap(AmmTx::Collect(CollectTx {
                user: owner,
                pool: self.config.pool,
                position: id,
                amount0: u128::MAX,
                amount1: u128::MAX,
            })),
            None => self.gen_mint(),
        }
    }

    fn pick_position(&mut self) -> Option<(Address, PositionId)> {
        if self.positions.is_empty() {
            return None;
        }
        let i = self.rng.range_u64(0, self.positions.len() as u64) as usize;
        Some(self.positions[i])
    }

    fn wrap(&self, tx: AmmTx) -> GeneratedTx {
        let wire_size = uniswap2023::size_for(tx.kind());
        GeneratedTx { tx, wire_size }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ammboost_amm::tx::AmmTxKind;
    use std::collections::HashSet;

    fn config(daily: u64, seed: u64) -> GeneratorConfig {
        GeneratorConfig {
            daily_volume: daily,
            seed,
            ..GeneratorConfig::default()
        }
    }

    #[test]
    fn rho_formula_matches_paper() {
        // V_D = 25M, bt = 7 s → ⌈2025.46⌉ = 2026
        let g = TrafficGenerator::new(config(25_000_000, 1));
        assert_eq!(g.txs_per_round(), 2026);
        // V_D = 50K → ⌈4.05⌉ = 5
        let g = TrafficGenerator::new(config(50_000, 1));
        assert_eq!(g.txs_per_round(), 5);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = TrafficGenerator::new(config(50_000, 9));
        let mut b = TrafficGenerator::new(config(50_000, 9));
        assert_eq!(a.next_round(0), b.next_round(0));
        let mut c = TrafficGenerator::new(config(50_000, 10));
        assert_ne!(a.next_round(1), c.next_round(1));
    }

    #[test]
    fn mix_fractions_respected() {
        let mut g = TrafficGenerator::new(config(1_000_000, 3));
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            let t = g.next_tx(0);
            *counts.entry(t.tx.kind()).or_insert(0usize) += 1;
        }
        let swaps = counts[&AmmTxKind::Swap] as f64 / 20_000.0;
        assert!((swaps - 0.9319).abs() < 0.01, "swap fraction {swaps}");
        assert!(counts[&AmmTxKind::Mint] > 0);
        // burns/collects appear once mints created positions
        assert!(counts.contains_key(&AmmTxKind::Burn));
        assert!(counts.contains_key(&AmmTxKind::Collect));
    }

    #[test]
    fn early_burns_fall_back_to_mints() {
        // force a burn with no positions: must produce a mint instead
        let mut g = TrafficGenerator::new(GeneratorConfig {
            mix: TrafficMix::from_tuple((0.0, 0.0, 100.0, 0.0)),
            ..config(50_000, 4)
        });
        let t = g.next_tx(0);
        assert_eq!(t.tx.kind(), AmmTxKind::Mint);
        // now a position exists; the next burn is a real burn
        let t2 = g.next_tx(0);
        assert_eq!(t2.tx.kind(), AmmTxKind::Burn);
    }

    #[test]
    fn wire_sizes_match_table_vii() {
        let mut g = TrafficGenerator::new(config(100_000, 5));
        for _ in 0..200 {
            let t = g.next_tx(0);
            assert_eq!(t.wire_size, uniswap2023::size_for(t.tx.kind()));
        }
    }

    #[test]
    fn burns_and_collects_reference_tracked_positions() {
        let mut g = TrafficGenerator::new(GeneratorConfig {
            mix: TrafficMix::from_tuple((0.0, 50.0, 25.0, 25.0)),
            ..config(100_000, 6)
        });
        for _ in 0..500 {
            let t = g.next_tx(0);
            if let AmmTx::Burn(b) = &t.tx {
                // the owner recorded for the position must match
                assert!(TrafficGenerator::user_address(0) != Address::ZERO);
                assert!(!b.position.0.is_zero());
            }
        }
        assert!(g.tracked_positions() > 0);
    }

    #[test]
    fn fragmented_style_tiles_many_distinct_ticks() {
        let mut g = TrafficGenerator::new(GeneratorConfig {
            mix: TrafficMix::from_tuple((0.0, 100.0, 0.0, 0.0)),
            users: 200,
            max_positions_per_user: 4,
            liquidity_style: LiquidityStyle::Fragmented,
            ..config(100_000, 11)
        });
        let mut ticks = HashSet::new();
        for _ in 0..400 {
            if let AmmTx::Mint(m) = g.next_tx(0).tx {
                if m.position.is_none() {
                    assert_eq!(m.tick_upper - m.tick_lower, 60, "one spacing wide");
                    assert_eq!(m.tick_lower % 60, 0);
                    ticks.insert(m.tick_lower);
                    ticks.insert(m.tick_upper);
                }
            }
        }
        // a dense tick population, far beyond the paper-spread handful
        assert!(ticks.len() > 100, "only {} distinct ticks", ticks.len());
    }

    #[test]
    fn users_are_stable() {
        let g = TrafficGenerator::new(config(50_000, 7));
        let users = g.users();
        assert_eq!(users.len(), 100);
        assert_eq!(users[3], TrafficGenerator::user_address(3));
    }

    #[test]
    fn round_batch_size_matches_rho() {
        let mut g = TrafficGenerator::new(config(500_000, 8));
        let batch = g.next_round(0);
        assert_eq!(batch.len() as u64, g.txs_per_round());
    }
}
