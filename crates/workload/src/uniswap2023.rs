//! The paper's Uniswap traffic analysis for 2023 (Appendix D, Table VII),
//! embedded as the calibrated traffic model, plus the headline statistics
//! the introduction quotes.

use ammboost_amm::tx::AmmTxKind;
use serde::{Deserialize, Serialize};

/// One row of Table VII.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrafficRow {
    /// Transaction type.
    pub kind: AmmTxKind,
    /// Share of all 2023 traffic, in percent.
    pub percent: f64,
    /// Average transactions per 24 hours.
    pub volume_per_day: u64,
    /// Average raw transaction size on Ethereum, in bytes.
    pub avg_size_bytes: f64,
}

/// Table VII: transaction-type breakdown of Uniswap V3 traffic in 2023.
pub const TABLE_VII: [TrafficRow; 4] = [
    TrafficRow {
        kind: AmmTxKind::Swap,
        percent: 93.19,
        volume_per_day: 52_379,
        avg_size_bytes: 1007.83,
    },
    TrafficRow {
        kind: AmmTxKind::Mint,
        percent: 2.14,
        volume_per_day: 1_204,
        avg_size_bytes: 814.49,
    },
    TrafficRow {
        kind: AmmTxKind::Burn,
        percent: 2.38,
        volume_per_day: 1_338,
        avg_size_bytes: 907.07,
    },
    TrafficRow {
        kind: AmmTxKind::Collect,
        percent: 2.27,
        volume_per_day: 1_275,
        avg_size_bytes: 921.80,
    },
];

/// Uniswap V3's 2023 transaction count on Ethereum (paper §I: ~20 million
/// transactions, ≈20.2 GB of chain growth).
pub const UNISWAP_V3_TX_2023: u64 = 20_000_000;

/// Uniswap's total daily volume used as the "1x" reference
/// (≈ Σ Table VII volumes ≈ 56,196; the paper rounds to ~50K).
pub fn daily_volume_1x() -> u64 {
    TABLE_VII.iter().map(|r| r.volume_per_day).sum()
}

/// The average transaction size under the Table VII mix, in bytes.
pub fn mix_weighted_avg_size() -> f64 {
    let total_pct: f64 = TABLE_VII.iter().map(|r| r.percent).sum();
    TABLE_VII
        .iter()
        .map(|r| r.percent * r.avg_size_bytes)
        .sum::<f64>()
        / total_pct
}

/// Average mainnet size for one transaction kind (Table VII), rounded to
/// whole bytes for block-budget accounting.
pub fn size_for(kind: AmmTxKind) -> usize {
    TABLE_VII
        .iter()
        .find(|r| r.kind == kind)
        .map(|r| r.avg_size_bytes.round() as usize)
        .expect("all kinds present in Table VII")
}

/// Average mainnet size of a multi-hop routed swap with `hops` hops, in
/// bytes. Routed swaps are not a Table VII row (the table aggregates all
/// router traffic into "swap"); modelled as the swap average plus one
/// ABI-padded path element per additional hop, matching
/// `AmmTx::mainnet_size_bytes` for routes.
pub fn route_size_for(hops: usize) -> usize {
    size_for(AmmTxKind::Swap) + 32 * hops.saturating_sub(1)
}

/// Estimated 2023 chain growth from Uniswap V3 on Ethereum, in bytes
/// (tx count × mix-weighted average size — the paper's ≈20.2 GB).
pub fn chain_growth_2023_bytes() -> u64 {
    (UNISWAP_V3_TX_2023 as f64 * mix_weighted_avg_size()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentages_sum_to_about_100() {
        let total: f64 = TABLE_VII.iter().map(|r| r.percent).sum();
        assert!((total - 99.98).abs() < 0.05, "{total}");
    }

    #[test]
    fn daily_volume_near_paper_reference() {
        let v = daily_volume_1x();
        assert!((50_000..60_000).contains(&v), "{v}");
    }

    #[test]
    fn weighted_size_near_one_kb() {
        let s = mix_weighted_avg_size();
        assert!((990.0..1010.0).contains(&s), "{s}");
    }

    #[test]
    fn growth_estimate_near_20_gb() {
        let gb = chain_growth_2023_bytes() as f64 / 1e9;
        assert!((19.0..21.0).contains(&gb), "{gb} GB");
    }

    #[test]
    fn per_kind_sizes() {
        assert_eq!(size_for(AmmTxKind::Swap), 1008);
        assert_eq!(size_for(AmmTxKind::Mint), 814);
        assert_eq!(size_for(AmmTxKind::Burn), 907);
        assert_eq!(size_for(AmmTxKind::Collect), 922);
    }
}
