//! # ammboost-workload
//!
//! Traffic generation for ammBoost experiments, calibrated against the
//! paper's Uniswap 2023 analysis:
//!
//! - [`uniswap2023`] — the embedded Table VII model (mix percentages,
//!   daily volumes, average transaction sizes) and derived statistics.
//! - [`mix`] — configurable traffic mixes, including the six Table XI
//!   variants.
//! - [`generator`] — the deterministic generator: constant arrival rate
//!   `ρ = ⌈V_D · bt / 86400⌉` per round, position-aware burns/collects.

#![warn(missing_docs)]

pub mod generator;
pub mod mix;
pub mod uniswap2023;

pub use generator::{
    EngineMix, GeneratedTx, GeneratorConfig, LiquidityStyle, QuoteRequest, QuoteStyle, RouteStyle,
    TrafficGenerator, TrafficSkew,
};
pub use mix::TrafficMix;
