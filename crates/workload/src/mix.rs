//! Traffic-mix configuration: the fractions of swap/mint/burn/collect
//! transactions, with the paper's presets (Table VII default and the six
//! Table XI variants).

use serde::{Deserialize, Serialize};

/// A traffic mix in percent; components need not sum exactly to 100 (they
/// are renormalized when sampling).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrafficMix {
    /// Swap share (%).
    pub swap: f64,
    /// Mint share (%).
    pub mint: f64,
    /// Burn share (%).
    pub burn: f64,
    /// Collect share (%).
    pub collect: f64,
}

impl TrafficMix {
    /// The observed Uniswap 2023 mix (Table VII): 93.19 / 2.14 / 2.38 /
    /// 2.27.
    pub fn uniswap_2023() -> TrafficMix {
        TrafficMix {
            swap: 93.19,
            mint: 2.14,
            burn: 2.38,
            collect: 2.27,
        }
    }

    /// The six Table XI configurations, in the paper's order:
    /// `(60,20,10,10), (60,10,20,10), (60,10,10,20), (80,10,5,5),
    /// (80,5,10,5), (80,5,5,10)`.
    pub fn table_xi_variants() -> [TrafficMix; 6] {
        [
            TrafficMix::from_tuple((60.0, 20.0, 10.0, 10.0)),
            TrafficMix::from_tuple((60.0, 10.0, 20.0, 10.0)),
            TrafficMix::from_tuple((60.0, 10.0, 10.0, 20.0)),
            TrafficMix::from_tuple((80.0, 10.0, 5.0, 5.0)),
            TrafficMix::from_tuple((80.0, 5.0, 10.0, 5.0)),
            TrafficMix::from_tuple((80.0, 5.0, 5.0, 10.0)),
        ]
    }

    /// Builds from an `(s, m, b, c)` tuple.
    pub fn from_tuple((swap, mint, burn, collect): (f64, f64, f64, f64)) -> TrafficMix {
        TrafficMix {
            swap,
            mint,
            burn,
            collect,
        }
    }

    /// The weights as an array ordered `[swap, mint, burn, collect]`.
    pub fn weights(&self) -> [f64; 4] {
        [self.swap, self.mint, self.burn, self.collect]
    }

    /// Validates that all components are non-negative and at least one is
    /// positive.
    pub fn is_valid(&self) -> bool {
        let w = self.weights();
        w.iter().all(|&x| x >= 0.0) && w.iter().sum::<f64>() > 0.0
    }
}

impl Default for TrafficMix {
    fn default() -> Self {
        TrafficMix::uniswap_2023()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_uniswap_2023() {
        let m = TrafficMix::default();
        assert_eq!(m, TrafficMix::uniswap_2023());
        assert!((m.weights().iter().sum::<f64>() - 99.98).abs() < 0.05);
    }

    #[test]
    fn table_xi_variants_keep_swaps_dominant() {
        for v in TrafficMix::table_xi_variants() {
            assert!(v.swap >= 60.0);
            assert!((v.weights().iter().sum::<f64>() - 100.0).abs() < 1e-9);
            assert!(v.is_valid());
        }
    }

    #[test]
    fn invalid_mixes_detected() {
        assert!(!TrafficMix::from_tuple((0.0, 0.0, 0.0, 0.0)).is_valid());
        assert!(!TrafficMix::from_tuple((-1.0, 50.0, 25.0, 26.0)).is_valid());
    }
}
