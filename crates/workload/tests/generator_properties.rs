//! Property-based tests for traffic generation: arrival-rate formula,
//! mix convergence, position-reference validity and determinism across
//! arbitrary configurations.

use ammboost_amm::tx::{AmmTx, AmmTxKind};
use ammboost_amm::types::PoolId;
use ammboost_sim::time::SimDuration;
use ammboost_workload::{GeneratorConfig, TrafficGenerator, TrafficMix, TrafficSkew};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

fn cfg(volume: u64, bt: u64, users: u64, seed: u64, mix: TrafficMix) -> GeneratorConfig {
    GeneratorConfig {
        daily_volume: volume,
        mix,
        users,
        round_duration: SimDuration::from_secs(bt),
        seed,
        ..GeneratorConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rho_formula_is_ceil(volume in 1_000u64..100_000_000, bt in 1u64..30) {
        let g = TrafficGenerator::new(cfg(volume, bt, 10, 1, TrafficMix::uniswap_2023()));
        let expect = ((volume as f64 * bt as f64) / 86_400.0).ceil() as u64;
        prop_assert_eq!(g.txs_per_round(), expect);
        prop_assert!(g.txs_per_round() >= 1);
    }

    #[test]
    fn generation_is_deterministic(
        volume in 10_000u64..1_000_000,
        seed in any::<u64>(),
    ) {
        let mut a = TrafficGenerator::new(cfg(volume, 7, 20, seed, TrafficMix::uniswap_2023()));
        let mut b = TrafficGenerator::new(cfg(volume, 7, 20, seed, TrafficMix::uniswap_2023()));
        for round in 0..3 {
            prop_assert_eq!(a.next_round(round), b.next_round(round));
        }
    }

    #[test]
    fn users_stay_in_population(
        users in 1u64..50,
        seed in any::<u64>(),
    ) {
        let mut g = TrafficGenerator::new(cfg(500_000, 7, users, seed, TrafficMix::uniswap_2023()));
        let population: HashSet<_> = g.users().into_iter().collect();
        prop_assert_eq!(population.len(), users as usize);
        for _ in 0..300 {
            let t = g.next_tx(0);
            prop_assert!(population.contains(&t.tx.user()), "tx from unknown user");
        }
    }

    #[test]
    fn burns_and_collects_follow_mints(
        seed in any::<u64>(),
        mix_burn in 10.0f64..40.0,
    ) {
        // a burn/collect may only reference a position some earlier mint
        // created (or fall back to a mint)
        let mix = TrafficMix::from_tuple((40.0, 20.0, mix_burn, 100.0 - 60.0 - mix_burn));
        let mut g = TrafficGenerator::new(cfg(500_000, 7, 10, seed, mix));
        let mut seen_positions = HashSet::new();
        for _ in 0..500 {
            let t = g.next_tx(0);
            match &t.tx {
                AmmTx::Mint(m) => {
                    seen_positions.insert(m.derived_position_id());
                }
                AmmTx::Burn(b) => {
                    prop_assert!(
                        seen_positions.contains(&b.position),
                        "burn references a never-minted position"
                    );
                }
                AmmTx::Collect(c) => {
                    prop_assert!(seen_positions.contains(&c.position));
                }
                AmmTx::Swap(_) | AmmTx::Route(_) => {}
            }
        }
    }

    #[test]
    fn position_cap_limits_fresh_mints(
        cap in 1usize..4,
        seed in any::<u64>(),
    ) {
        let mut config = cfg(
            500_000,
            7,
            5,
            seed,
            TrafficMix::from_tuple((0.0, 100.0, 0.0, 0.0)),
        );
        config.max_positions_per_user = cap;
        let mut g = TrafficGenerator::new(config);
        let mut fresh_per_user: HashMap<_, usize> = HashMap::new();
        for _ in 0..200 {
            if let AmmTx::Mint(m) = g.next_tx(0).tx {
                if m.position.is_none() {
                    *fresh_per_user.entry(m.user).or_insert(0) += 1;
                }
            }
        }
        for (user, count) in fresh_per_user {
            prop_assert!(
                count <= cap,
                "user {user} created {count} fresh positions with cap {cap}"
            );
        }
    }

    #[test]
    fn mix_converges_to_configuration(
        swap_pct in 60.0f64..95.0,
        seed in any::<u64>(),
    ) {
        let rest = (100.0 - swap_pct) / 3.0;
        let mix = TrafficMix::from_tuple((swap_pct, rest, rest, rest));
        let mut g = TrafficGenerator::new(cfg(1_000_000, 7, 20, seed, mix));
        let total = 4_000usize;
        let mut swaps = 0usize;
        for _ in 0..total {
            if g.next_tx(0).tx.kind() == AmmTxKind::Swap {
                swaps += 1;
            }
        }
        let measured = 100.0 * swaps as f64 / total as f64;
        prop_assert!(
            (measured - swap_pct).abs() < 5.0,
            "swap mix {measured:.1}% vs configured {swap_pct:.1}%"
        );
    }

    #[test]
    fn cross_pool_traffic_keeps_user_affinity(
        pool_count in 1u32..12,
        zipf in any::<bool>(),
        seed in any::<u64>(),
    ) {
        // every transaction (including burn/collect fallbacks) targets the
        // issuing user's home pool, and every configured pool eventually
        // receives traffic under both skews
        let mut config = cfg(2_000_000, 7, 48, seed, TrafficMix::uniswap_2023());
        config.pools = (0..pool_count).map(PoolId).collect();
        config.skew = if zipf {
            TrafficSkew::Zipf { exponent: 1.0 }
        } else {
            TrafficSkew::Uniform
        };
        let mut g = TrafficGenerator::new(config);
        let mut hit: HashSet<PoolId> = HashSet::new();
        for _ in 0..2_000 {
            let t = g.next_tx(0);
            prop_assert_eq!(Some(t.tx.pool()), g.pool_for(&t.tx.user()));
            hit.insert(t.tx.pool());
        }
        prop_assert_eq!(hit.len(), pool_count as usize, "a pool never saw traffic");
    }

    #[test]
    fn wire_sizes_always_match_table_vii(seed in any::<u64>()) {
        let mut g = TrafficGenerator::new(cfg(500_000, 7, 10, seed, TrafficMix::uniswap_2023()));
        for _ in 0..200 {
            let t = g.next_tx(0);
            let expect = match &t.tx {
                AmmTx::Swap(_) => 1008,
                AmmTx::Mint(_) => 814,
                AmmTx::Burn(_) => 907,
                AmmTx::Collect(_) => 922,
                // default configs emit no routes; sized per hop if ever hit
                AmmTx::Route(r) => 1008 + 32 * (r.hops.len() - 1),
            };
            prop_assert_eq!(t.wire_size, expect);
        }
    }
}
