//! Merkle-committed state snapshots.
//!
//! A [`Snapshot`] is a versioned container of independently encoded
//! [`Section`]s (one per pool, one for the ledger, one for the deposit
//! map, plus caller-defined auxiliary sections). Each section is
//! domain-hashed and the snapshot's [`Snapshot::root`] is the Keccak
//! Merkle root over a header leaf and the section hashes — a single
//! 32-byte commitment to the entire system state. The wire encoding
//! embeds the root, and [`Snapshot::decode`] recomputes and checks it, so
//! a corrupt or tampered snapshot fails loud instead of restoring wrong
//! state.

use crate::codec::{ByteReader, ByteWriter, CodecError, Decode, Encode};
use ammboost_crypto::keccak::keccak256_x4_concat;
use ammboost_crypto::merkle::MerkleTree;
use ammboost_crypto::H256;

/// Domain prefix of every section hash.
const SECTION_DOMAIN: &[u8] = b"ammboost-snapshot-section";

/// Snapshot file magic.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"ABSS";

/// Current snapshot format version. Decoders reject anything newer.
/// Version 3: pool sections are engine-tagged ([`EngineState`] with a
/// leading engine-kind byte), supporting heterogeneous fleets.
/// Version 2 (pool sections are bare CL [`PoolState`] bytes) is still
/// decoded — see [`LEGACY_SNAPSHOT_VERSION`].
///
/// [`EngineState`]: ammboost_amm::engines::EngineState
/// [`PoolState`]: ammboost_amm::pool::PoolState
pub const SNAPSHOT_VERSION: u16 = 3;

/// Oldest snapshot format version decoders still accept. Version 2 pool
/// sections carry untagged CL pool state; restore interprets them as
/// concentrated-liquidity engines, so pre-fleet snapshots keep restoring
/// to bit-identical roots.
pub const LEGACY_SNAPSHOT_VERSION: u16 = 2;

/// What a section holds. The ordering (pools ascending, then ledger,
/// deposits, aux by tag) is the canonical section order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SectionKind {
    /// One pool's persistent state, keyed by pool id.
    Pool(u32),
    /// The sidechain ledger.
    Ledger,
    /// The deposit map.
    Deposits,
    /// A caller-defined section (e.g. processor bookkeeping), keyed by a
    /// small tag.
    Aux(u8),
}

impl Encode for SectionKind {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            SectionKind::Pool(id) => {
                w.put_u8(0);
                w.put_u32(*id);
            }
            SectionKind::Ledger => w.put_u8(1),
            SectionKind::Deposits => w.put_u8(2),
            SectionKind::Aux(tag) => {
                w.put_u8(3);
                w.put_u8(*tag);
            }
        }
    }
}

impl Decode for SectionKind {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        match r.take_u8()? {
            0 => Ok(SectionKind::Pool(r.take_u32()?)),
            1 => Ok(SectionKind::Ledger),
            2 => Ok(SectionKind::Deposits),
            3 => Ok(SectionKind::Aux(r.take_u8()?)),
            tag => Err(CodecError::InvalidTag {
                what: "SectionKind",
                tag,
            }),
        }
    }
}

/// One independently encoded, independently hashed unit of state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Section {
    /// What the bytes hold.
    pub kind: SectionKind,
    /// The section's canonical encoding.
    pub bytes: Vec<u8>,
}

impl Section {
    /// Domain-separated hash committing to both kind and content.
    pub fn hash(&self) -> H256 {
        H256::hash_concat(&[SECTION_DOMAIN, &self.kind.encode_to_vec(), &self.bytes])
    }
}

/// [`Section::hash`] over a slice of sections, four at a time through the
/// interleaved Keccak permutation (the remainder goes scalar). This is
/// the hashing inner loop of every checkpoint: section payloads in one
/// snapshot are similarly sized, so the four streams finish together and
/// the batched permutations run near full occupancy. Digests are
/// bit-identical to per-section [`Section::hash`] calls.
pub fn section_hashes(sections: &[Section]) -> Vec<H256> {
    let mut hashes = Vec::with_capacity(sections.len());
    let mut quads = sections.chunks_exact(4);
    for q in &mut quads {
        let kinds: [Vec<u8>; 4] = [
            q[0].kind.encode_to_vec(),
            q[1].kind.encode_to_vec(),
            q[2].kind.encode_to_vec(),
            q[3].kind.encode_to_vec(),
        ];
        let digests = keccak256_x4_concat([
            &[SECTION_DOMAIN, &kinds[0], &q[0].bytes],
            &[SECTION_DOMAIN, &kinds[1], &q[1].bytes],
            &[SECTION_DOMAIN, &kinds[2], &q[2].bytes],
            &[SECTION_DOMAIN, &kinds[3], &q[3].bytes],
        ]);
        hashes.extend(digests.map(H256));
    }
    hashes.extend(quads.remainder().iter().map(Section::hash));
    hashes
}

impl Encode for Section {
    fn encode(&self, w: &mut ByteWriter) {
        self.kind.encode(w);
        w.put_len(self.bytes.len());
        w.put_bytes(&self.bytes);
    }
}

impl Decode for Section {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let kind = SectionKind::decode(r)?;
        let len = r.take_len()?;
        let bytes = r.take(len)?.to_vec();
        Ok(Section { kind, bytes })
    }
}

/// The snapshot state root for an epoch, computed from precomputed
/// section hashes (canonical order) without the sections themselves.
/// This is what lets a fast-sync manifest — epoch + per-section hashes —
/// be verified against a trusted root before any section bytes arrive,
/// and each arriving section be checked independently against its leaf.
/// [`Snapshot::root`] is exactly this over [`Section::hash`] values.
/// The format `version` is part of the header leaf, so a legacy snapshot
/// keeps the root it was sealed with.
pub fn root_from_section_hashes(version: u16, epoch: u64, section_hashes: &[H256]) -> H256 {
    let mut leaves = Vec::with_capacity(section_hashes.len() + 1);
    leaves.push(H256::hash_concat(&[
        b"ammboost-snapshot-header",
        &version.to_be_bytes(),
        &epoch.to_be_bytes(),
    ]));
    leaves.extend_from_slice(section_hashes);
    MerkleTree::from_leaves(leaves).root()
}

/// A full-state checkpoint at an epoch boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// The format version the snapshot was sealed under. Determines the
    /// pool-section encoding (v2: bare CL state; v3: engine-tagged) and
    /// is committed in the root's header leaf.
    pub version: u16,
    /// The epoch the snapshot was taken at (state *after* this epoch's
    /// summary was sealed).
    pub epoch: u64,
    /// The state sections, in canonical order.
    pub sections: Vec<Section>,
}

impl Snapshot {
    /// The 32-byte state commitment: the Merkle root over a header leaf
    /// (version + epoch) and every section hash.
    pub fn root(&self) -> H256 {
        root_from_section_hashes(self.version, self.epoch, &section_hashes(&self.sections))
    }

    /// Finds a section by kind.
    pub fn section(&self, kind: SectionKind) -> Option<&Section> {
        self.sections.iter().find(|s| s.kind == kind)
    }

    /// All pool sections, `(pool id, bytes)`, in canonical order.
    pub fn pool_sections(&self) -> impl Iterator<Item = (u32, &Section)> {
        self.sections.iter().filter_map(|s| match s.kind {
            SectionKind::Pool(id) => Some((id, s)),
            _ => None,
        })
    }

    /// Total payload bytes across sections (the dominant part of the
    /// on-disk size).
    pub fn payload_bytes(&self) -> u64 {
        self.sections.iter().map(|s| s.bytes.len() as u64).sum()
    }

    /// Exact size of [`Snapshot::encode`]'s output, computed without
    /// serializing (and without the Merkle build `encode` performs for
    /// the embedded root).
    pub fn encoded_len(&self) -> usize {
        let sections: usize = self
            .sections
            .iter()
            .map(|s| s.kind.encode_to_vec().len() + 4 + s.bytes.len())
            .sum();
        // magic + version + epoch + root + section count + sections
        4 + 2 + 8 + 32 + 4 + sections
    }

    /// Serializes the snapshot: magic, version, epoch, root, sections.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(self.payload_bytes() as usize + 64);
        w.put_bytes(&SNAPSHOT_MAGIC);
        w.put_u16(self.version);
        w.put_u64(self.epoch);
        self.root().encode(&mut w);
        self.sections.encode(&mut w);
        w.into_bytes()
    }

    /// Deserializes and *verifies* a snapshot: magic, version, and the
    /// embedded state root against a recomputation over the decoded
    /// sections.
    ///
    /// # Errors
    /// Any [`CodecError`]; notably [`CodecError::RootMismatch`] when the
    /// content does not hash to the declared root.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, CodecError> {
        let mut r = ByteReader::new(bytes);
        let mut magic = [0u8; 4];
        magic.copy_from_slice(r.take(4)?);
        if magic != SNAPSHOT_MAGIC {
            return Err(CodecError::BadMagic(magic));
        }
        let version = r.take_u16()?;
        if !(LEGACY_SNAPSHOT_VERSION..=SNAPSHOT_VERSION).contains(&version) {
            return Err(CodecError::UnsupportedVersion(version));
        }
        let epoch = r.take_u64()?;
        let declared_root: H256 = r.get()?;
        let sections: Vec<Section> = r.get()?;
        r.finish()?;
        let snapshot = Snapshot {
            version,
            epoch,
            sections,
        };
        if snapshot.root() != declared_root {
            return Err(CodecError::RootMismatch);
        }
        Ok(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            version: SNAPSHOT_VERSION,
            epoch: 7,
            sections: vec![
                Section {
                    kind: SectionKind::Pool(0),
                    bytes: vec![1, 2, 3],
                },
                Section {
                    kind: SectionKind::Ledger,
                    bytes: vec![4, 5],
                },
                Section {
                    kind: SectionKind::Aux(9),
                    bytes: vec![],
                },
            ],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let snap = sample();
        let bytes = snap.encode();
        assert_eq!(Snapshot::decode(&bytes).unwrap(), snap);
        assert_eq!(snap.encoded_len(), bytes.len(), "size formula exact");
    }

    #[test]
    fn root_commits_to_every_field() {
        let base = sample();
        let mut diff_epoch = base.clone();
        diff_epoch.epoch += 1;
        assert_ne!(base.root(), diff_epoch.root());
        let mut diff_version = base.clone();
        diff_version.version = LEGACY_SNAPSHOT_VERSION;
        assert_ne!(base.root(), diff_version.root());
        let mut diff_bytes = base.clone();
        diff_bytes.sections[0].bytes[0] ^= 1;
        assert_ne!(base.root(), diff_bytes.root());
        let mut diff_kind = base.clone();
        diff_kind.sections[0].kind = SectionKind::Pool(1);
        assert_ne!(base.root(), diff_kind.root());
    }

    #[test]
    fn tampering_detected_on_decode() {
        let mut bytes = sample().encode();
        // flip a payload byte deep in the section area
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(CodecError::RootMismatch) | Err(CodecError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let mut bytes = sample().encode();
        bytes[0] = b'X';
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(CodecError::BadMagic(_))
        ));
        let mut bytes = sample().encode();
        bytes[5] = 99;
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(CodecError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn batched_section_hashes_match_scalar() {
        // section counts crossing the quad boundary, with unequal sizes
        for n in 0..10usize {
            let sections: Vec<Section> = (0..n)
                .map(|i| Section {
                    kind: if i % 3 == 0 {
                        SectionKind::Pool(i as u32)
                    } else {
                        SectionKind::Aux(i as u8)
                    },
                    bytes: vec![i as u8; 40 * i],
                })
                .collect();
            let batched = section_hashes(&sections);
            let scalar: Vec<H256> = sections.iter().map(Section::hash).collect();
            assert_eq!(batched, scalar, "n={n}");
        }
    }

    #[test]
    fn root_from_hashes_matches_full_root() {
        let snap = sample();
        let hashes: Vec<H256> = snap.sections.iter().map(Section::hash).collect();
        assert_eq!(
            root_from_section_hashes(snap.version, snap.epoch, &hashes),
            snap.root()
        );
        assert_ne!(
            root_from_section_hashes(snap.version, snap.epoch + 1, &hashes),
            snap.root(),
            "epoch is committed via the header leaf"
        );
    }

    #[test]
    fn legacy_version_still_decodes() {
        let mut snap = sample();
        snap.version = LEGACY_SNAPSHOT_VERSION;
        let bytes = snap.encode();
        let decoded = Snapshot::decode(&bytes).unwrap();
        assert_eq!(decoded, snap);
        assert_eq!(decoded.version, LEGACY_SNAPSHOT_VERSION);
    }

    #[test]
    fn section_lookup() {
        let snap = sample();
        assert!(snap.section(SectionKind::Ledger).is_some());
        assert!(snap.section(SectionKind::Deposits).is_none());
        assert_eq!(snap.pool_sections().count(), 1);
        assert_eq!(snap.payload_bytes(), 5);
    }
}
