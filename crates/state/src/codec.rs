//! The snapshot wire codec: a deterministic, versioned, hand-rolled
//! binary format.
//!
//! This extends the field-packing style of the sidechain codec
//! (`ammboost-sidechain::codec`) into a reusable [`Encode`]/[`Decode`]
//! trait pair over a [`ByteWriter`]/[`ByteReader`]. Design rules:
//!
//! - **big-endian fixed-width integers**, no varints, no padding;
//! - **`u32` length prefixes** for collections and byte strings;
//! - **explicit one-byte tags** for enums and `Option`s;
//! - **no reliance on host iteration order** — map-backed structures are
//!   encoded from sorted exports, so the same state always produces the
//!   same bytes (a prerequisite for the Merkle state commitment);
//! - **exhaustive error handling** — decoding never panics on corrupt
//!   input; every failure mode is a [`CodecError`] variant.

use std::fmt;

/// Why a decode failed. Every variant carries enough context to locate
/// the corruption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before a field could be read.
    UnexpectedEof {
        /// Bytes the field needed.
        needed: usize,
        /// Bytes that were left.
        remaining: usize,
    },
    /// Bytes were left over after the outermost value was decoded.
    TrailingBytes(usize),
    /// An enum/option tag byte had no defined meaning.
    InvalidTag {
        /// The type being decoded.
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A boolean byte was neither 0 nor 1.
    InvalidBool(u8),
    /// A length prefix exceeds the bytes actually available.
    LengthOverflow {
        /// Declared element/byte count.
        declared: usize,
        /// Bytes remaining in the input.
        remaining: usize,
    },
    /// A string field held invalid UTF-8.
    InvalidUtf8,
    /// The snapshot magic bytes did not match.
    BadMagic([u8; 4]),
    /// The snapshot format version is not supported by this build.
    UnsupportedVersion(u16),
    /// The declared state root does not match the recomputed one — the
    /// snapshot is corrupt or was tampered with.
    RootMismatch,
    /// Map keys were not strictly ascending — the encoding is not the
    /// canonical (deterministic) form.
    UnsortedKeys,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { needed, remaining } => {
                write!(f, "unexpected EOF: needed {needed} bytes, {remaining} left")
            }
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            CodecError::InvalidTag { what, tag } => write!(f, "invalid tag {tag} for {what}"),
            CodecError::InvalidBool(b) => write!(f, "invalid bool byte {b}"),
            CodecError::LengthOverflow {
                declared,
                remaining,
            } => write!(
                f,
                "declared length {declared} exceeds {remaining} remaining bytes"
            ),
            CodecError::InvalidUtf8 => write!(f, "invalid UTF-8 in string field"),
            CodecError::BadMagic(m) => write!(f, "bad snapshot magic {m:?}"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported snapshot version {v}"),
            CodecError::RootMismatch => write!(f, "snapshot state root mismatch"),
            CodecError::UnsortedKeys => write!(f, "map keys not in canonical sorted order"),
        }
    }
}

impl std::error::Error for CodecError {}

/// An append-only byte sink all encoders write into.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

macro_rules! put_int {
    ($name:ident, $ty:ty) => {
        /// Appends the value, big-endian.
        #[inline]
        pub fn $name(&mut self, v: $ty) {
            self.buf.extend_from_slice(&v.to_be_bytes());
        }
    };
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// An empty writer with `capacity` bytes preallocated.
    pub fn with_capacity(capacity: usize) -> ByteWriter {
        ByteWriter {
            buf: Vec::with_capacity(capacity),
        }
    }

    put_int!(put_u8, u8);
    put_int!(put_u16, u16);
    put_int!(put_u32, u32);
    put_int!(put_u64, u64);
    put_int!(put_u128, u128);
    put_int!(put_i32, i32);
    put_int!(put_i64, i64);
    put_int!(put_i128, i128);

    /// Appends a boolean as one byte (0 or 1).
    #[inline]
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends raw bytes with no length prefix (fixed-width fields).
    #[inline]
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a `u32` element-count prefix.
    ///
    /// # Panics
    /// Panics when `len` exceeds `u32::MAX` — no snapshot section comes
    /// within orders of magnitude of that.
    #[inline]
    pub fn put_len(&mut self, len: usize) {
        self.put_u32(u32::try_from(len).expect("collection length fits u32"));
    }

    /// Encodes a value into this writer.
    #[inline]
    pub fn put<T: Encode + ?Sized>(&mut self, value: &T) {
        value.encode(self);
    }

    /// Lets legacy encoders that append to a `Vec<u8>` (e.g.
    /// `AmmTx::encode_into`) write directly into the buffer.
    #[inline]
    pub fn put_with(&mut self, f: impl FnOnce(&mut Vec<u8>)) {
        f(&mut self.buf);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// A bounds-checked cursor all decoders read from.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

macro_rules! take_int {
    ($name:ident, $ty:ty) => {
        /// Reads the value, big-endian.
        ///
        /// # Errors
        /// [`CodecError::UnexpectedEof`] when the input is exhausted.
        #[inline]
        pub fn $name(&mut self) -> Result<$ty, CodecError> {
            const N: usize = std::mem::size_of::<$ty>();
            let bytes = self.take(N)?;
            let mut arr = [0u8; N];
            arr.copy_from_slice(bytes);
            Ok(<$ty>::from_be_bytes(arr))
        }
    };
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads exactly `n` raw bytes.
    ///
    /// # Errors
    /// [`CodecError::UnexpectedEof`] when fewer than `n` bytes remain.
    #[inline]
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    take_int!(take_u8, u8);
    take_int!(take_u16, u16);
    take_int!(take_u32, u32);
    take_int!(take_u64, u64);
    take_int!(take_u128, u128);
    take_int!(take_i32, i32);
    take_int!(take_i64, i64);
    take_int!(take_i128, i128);

    /// Reads a strict boolean byte.
    ///
    /// # Errors
    /// [`CodecError::InvalidBool`] on any byte other than 0 or 1.
    #[inline]
    pub fn take_bool(&mut self) -> Result<bool, CodecError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CodecError::InvalidBool(b)),
        }
    }

    /// Reads a `u32` element-count prefix, sanity-bounded so corrupt
    /// lengths fail instead of triggering huge allocations: every element
    /// costs at least one byte, so a count above the remaining bytes is
    /// impossible.
    ///
    /// # Errors
    /// [`CodecError::LengthOverflow`] on an impossible count.
    #[inline]
    pub fn take_len(&mut self) -> Result<usize, CodecError> {
        let declared = self.take_u32()? as usize;
        if declared > self.remaining() {
            return Err(CodecError::LengthOverflow {
                declared,
                remaining: self.remaining(),
            });
        }
        Ok(declared)
    }

    /// Decodes a value from this reader.
    #[inline]
    pub fn get<T: Decode>(&mut self) -> Result<T, CodecError> {
        T::decode(self)
    }

    /// Asserts the input is fully consumed (call after the outermost
    /// value).
    ///
    /// # Errors
    /// [`CodecError::TrailingBytes`] when bytes are left.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() > 0 {
            return Err(CodecError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

/// Deterministic binary serialization into a [`ByteWriter`].
pub trait Encode {
    /// Appends this value's canonical encoding.
    fn encode(&self, w: &mut ByteWriter);

    /// Convenience: encodes into a fresh buffer.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.encode(&mut w);
        w.into_bytes()
    }
}

/// Deserialization from a [`ByteReader`], the inverse of [`Encode`].
pub trait Decode: Sized {
    /// Decodes one value, advancing the reader.
    ///
    /// # Errors
    /// Any [`CodecError`] on malformed input.
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError>;

    /// Convenience: decodes a buffer that must contain exactly one value.
    ///
    /// # Errors
    /// Propagates decode failures; fails on trailing bytes.
    fn decode_all(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

macro_rules! impl_codec_int {
    ($ty:ty, $put:ident, $take:ident) => {
        impl Encode for $ty {
            #[inline]
            fn encode(&self, w: &mut ByteWriter) {
                w.$put(*self);
            }
        }
        impl Decode for $ty {
            #[inline]
            fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
                r.$take()
            }
        }
    };
}

impl_codec_int!(u8, put_u8, take_u8);
impl_codec_int!(u16, put_u16, take_u16);
impl_codec_int!(u32, put_u32, take_u32);
impl_codec_int!(u64, put_u64, take_u64);
impl_codec_int!(u128, put_u128, take_u128);
impl_codec_int!(i32, put_i32, take_i32);
impl_codec_int!(i64, put_i64, take_i64);
impl_codec_int!(i128, put_i128, take_i128);

impl Encode for bool {
    #[inline]
    fn encode(&self, w: &mut ByteWriter) {
        w.put_bool(*self);
    }
}

impl Decode for bool {
    #[inline]
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.take_bool()
    }
}

impl Encode for str {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_len(self.len());
        w.put_bytes(self.as_bytes());
    }
}

impl Encode for String {
    fn encode(&self, w: &mut ByteWriter) {
        self.as_str().encode(w);
    }
}

impl Decode for String {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let len = r.take_len()?;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::InvalidUtf8)
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_len(self.len());
        for item in self {
            item.encode(w);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let len = r.take_len()?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        match r.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(CodecError::InvalidTag {
                what: "Option",
                tag,
            }),
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, w: &mut ByteWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

/// Checks that a decoded `(key, value)` list is strictly ascending by
/// key — map-backed structures only accept their canonical (sorted)
/// encoding, so a given logical state has exactly one byte form.
///
/// # Errors
/// [`CodecError::UnsortedKeys`] on a duplicate or out-of-order key.
pub fn ensure_sorted_keys<K: Ord, V>(entries: &[(K, V)]) -> Result<(), CodecError> {
    if entries.windows(2).any(|w| w[0].0 >= w[1].0) {
        return Err(CodecError::UnsortedKeys);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_roundtrips() {
        let mut w = ByteWriter::new();
        w.put(&0x1234u16);
        w.put(&u128::MAX);
        w.put(&(-5i32));
        w.put(&i128::MIN);
        w.put(&true);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 2 + 16 + 4 + 16 + 1);
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get::<u16>().unwrap(), 0x1234);
        assert_eq!(r.get::<u128>().unwrap(), u128::MAX);
        assert_eq!(r.get::<i32>().unwrap(), -5);
        assert_eq!(r.get::<i128>().unwrap(), i128::MIN);
        assert!(r.get::<bool>().unwrap());
        r.finish().unwrap();
    }

    #[test]
    fn eof_and_trailing_detected() {
        let bytes = 7u32.encode_to_vec();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.get::<u64>(),
            Err(CodecError::UnexpectedEof { needed: 8, .. })
        ));
        assert!(matches!(
            u16::decode_all(&bytes),
            Err(CodecError::TrailingBytes(2))
        ));
    }

    #[test]
    fn strict_bool() {
        assert_eq!(bool::decode_all(&[2]), Err(CodecError::InvalidBool(2)));
    }

    #[test]
    fn string_roundtrip_and_utf8_guard() {
        let s = "payout ✓".to_string();
        assert_eq!(String::decode_all(&s.encode_to_vec()).unwrap(), s);
        let mut bad = "ab".to_string().encode_to_vec();
        bad[4] = 0xFF;
        bad[5] = 0xFE;
        assert_eq!(String::decode_all(&bad), Err(CodecError::InvalidUtf8));
    }

    #[test]
    fn vec_and_option_roundtrip() {
        let v: Vec<Option<u64>> = vec![None, Some(9), Some(u64::MAX)];
        assert_eq!(
            Vec::<Option<u64>>::decode_all(&v.encode_to_vec()).unwrap(),
            v
        );
    }

    #[test]
    fn hostile_length_rejected() {
        // a Vec<u64> claiming 2^31 elements in a 6-byte buffer
        let bytes = [0x80, 0, 0, 0, 0xAA, 0xBB];
        assert!(matches!(
            Vec::<u64>::decode_all(&bytes),
            Err(CodecError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn tuple_roundtrip() {
        let v: (u32, (i128, bool)) = (7, (-1, true));
        assert_eq!(
            <(u32, (i128, bool))>::decode_all(&v.encode_to_vec()).unwrap(),
            v
        );
    }
}
