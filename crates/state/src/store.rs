//! Crash-consistent checkpoint persistence.
//!
//! [`CheckpointStore`] models the durable medium a node writes snapshots
//! to, with a **stage → mark → install** journal:
//!
//! ```text
//!        encode            stage              mark              install
//!   Snapshot ──► bytes ──► staged slot ──► commit mark ──► committed slot
//!                              │   (epoch, root, len)  │
//!             crash here ──────┘ torn/unmarked: DISCARD │
//!                              crash here ──────────────┘ marked+complete:
//!                                                         ROLL FORWARD
//! ```
//!
//! The full snapshot encoding is first written to a *staging* slot; only
//! once it is completely down is a small **commit mark** — epoch, root and
//! exact length, an atomic rename-equivalent — recorded; installing into
//! the committed slot happens last. A simulated crash ([`CrashPoint`])
//! can tear the staged write at any byte offset or kill the process
//! between any two steps. [`CheckpointStore::recover`] then restores the
//! invariant the rest of the system relies on: the store always exposes
//! the **last committed** snapshot — a marked *and* byte-complete staged
//! write rolls forward, anything torn or unmarked is discarded. The node
//! catches back up from the committed epoch by replaying meta-blocks
//! (`catch_up`), landing on a bit-identical state root.

use crate::codec::CodecError;
use crate::snapshot::Snapshot;
use ammboost_crypto::H256;
use ammboost_sim::{FaultInjector, FaultKind, InjectionPoint};
use std::fmt;

/// Where a simulated crash interrupts a checkpoint commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// The process dies mid-stage: only `offset` bytes of the snapshot
    /// encoding reach the staging slot (a torn write).
    DuringStage {
        /// Bytes of the encoding that made it down before the crash.
        offset: usize,
    },
    /// The stage completed but the commit mark was never written.
    BeforeMark,
    /// Staged and marked, but the install into the committed slot never
    /// ran — the one case recovery rolls *forward*.
    BeforeInstall,
}

/// Checkpoint store failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The simulated process died at this point of the commit. The store
    /// is left exactly as the crash tore it; call
    /// [`CheckpointStore::recover`] as the restarted process would.
    SimulatedCrash(CrashPoint),
    /// No snapshot has ever been committed.
    NothingCommitted,
    /// The committed slot failed to decode (cannot happen through this
    /// API; guards external corruption of the committed bytes).
    Corrupt(CodecError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::SimulatedCrash(p) => write!(f, "simulated crash at {p:?}"),
            StoreError::NothingCommitted => write!(f, "no committed checkpoint"),
            StoreError::Corrupt(e) => write!(f, "committed checkpoint corrupt: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// What [`CheckpointStore::recover`] found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// No interrupted commit; nothing to do.
    Clean,
    /// A marked, byte-complete staged write was installed.
    RolledForward {
        /// Epoch of the snapshot that was rolled forward.
        epoch: u64,
    },
    /// A torn or unmarked staged write was discarded; the store still
    /// exposes the previous committed snapshot.
    DiscardedTorn {
        /// Bytes found in the staging slot.
        staged_bytes: usize,
        /// Whether a commit mark was present (a marked-but-torn write is
        /// still discarded — the mark's length/root check failed).
        marked: bool,
    },
}

/// The commit mark: the small atomic record that makes a staged write
/// eligible to roll forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CommitMark {
    epoch: u64,
    root: H256,
    len: usize,
}

/// A simulated durable checkpoint store with a stage→mark→install
/// commit journal. See the module docs for the protocol and crash
/// semantics.
#[derive(Debug, Clone, Default)]
pub struct CheckpointStore {
    committed: Option<Vec<u8>>,
    committed_epoch: Option<u64>,
    staged: Option<Vec<u8>>,
    mark: Option<CommitMark>,
    commits: u64,
    recoveries: u64,
}

impl CheckpointStore {
    /// An empty store (nothing committed).
    pub fn new() -> CheckpointStore {
        CheckpointStore::default()
    }

    /// Commits `snapshot` through the journal, optionally dying at
    /// `crash`. On success the snapshot is installed and its epoch
    /// returned; on a simulated crash the store is left torn exactly as
    /// the crash point dictates and [`StoreError::SimulatedCrash`] is
    /// returned — the caller then restarts via
    /// [`CheckpointStore::recover`].
    ///
    /// # Errors
    /// Only [`StoreError::SimulatedCrash`], and only when `crash` is set.
    pub fn commit(
        &mut self,
        snapshot: &Snapshot,
        crash: Option<CrashPoint>,
    ) -> Result<u64, StoreError> {
        let bytes = snapshot.encode();
        let mark = CommitMark {
            epoch: snapshot.epoch,
            root: snapshot.root(),
            len: bytes.len(),
        };
        if let Some(CrashPoint::DuringStage { offset }) = crash {
            let cut = offset.min(bytes.len());
            self.staged = Some(bytes[..cut].to_vec());
            return Err(StoreError::SimulatedCrash(CrashPoint::DuringStage {
                offset: cut,
            }));
        }
        self.staged = Some(bytes);
        if let Some(CrashPoint::BeforeMark) = crash {
            return Err(StoreError::SimulatedCrash(CrashPoint::BeforeMark));
        }
        self.mark = Some(mark);
        if let Some(CrashPoint::BeforeInstall) = crash {
            return Err(StoreError::SimulatedCrash(CrashPoint::BeforeInstall));
        }
        self.install();
        self.commits += 1;
        Ok(snapshot.epoch)
    }

    /// Commits `snapshot`, consulting `injector` at
    /// [`InjectionPoint::CheckpointWrite`] for a scheduled crash. Fault
    /// kinds map to crash points by severity: byte-level kinds
    /// ([`FaultKind::BitFlip`], [`FaultKind::Truncate`],
    /// [`FaultKind::Panic`]) tear the staged write at a deterministic
    /// offset, [`FaultKind::Drop`] dies before the mark, and the
    /// delivery kinds ([`FaultKind::Delay`], [`FaultKind::Duplicate`],
    /// [`FaultKind::StaleRoot`]) die after the mark but before install.
    ///
    /// # Errors
    /// [`StoreError::SimulatedCrash`] when a fault fires.
    pub fn commit_with_injector(
        &mut self,
        snapshot: &Snapshot,
        injector: &mut FaultInjector,
    ) -> Result<u64, StoreError> {
        let crash = injector
            .fire(InjectionPoint::CheckpointWrite)
            .map(|kind| match kind {
                FaultKind::BitFlip | FaultKind::Truncate | FaultKind::Panic => {
                    CrashPoint::DuringStage {
                        offset: injector.crash_offset(snapshot.encoded_len()),
                    }
                }
                FaultKind::Drop => CrashPoint::BeforeMark,
                FaultKind::Delay { .. } | FaultKind::Duplicate | FaultKind::StaleRoot => {
                    CrashPoint::BeforeInstall
                }
            });
        self.commit(snapshot, crash)
    }

    /// Restores the journal invariant after a (possible) crash: a marked
    /// *and* byte-complete staged write — length, decode and root all
    /// agreeing with the mark — is installed; anything else in the
    /// staging area is discarded. Idempotent; safe to call on a clean
    /// store.
    pub fn recover(&mut self) -> RecoveryOutcome {
        let outcome = match (&self.staged, &self.mark) {
            (None, None) => return RecoveryOutcome::Clean,
            (Some(staged), Some(mark)) if staged.len() == mark.len => {
                match Snapshot::decode(staged) {
                    Ok(snap) if snap.epoch == mark.epoch && snap.root() == mark.root => {
                        let epoch = mark.epoch;
                        self.install();
                        self.commits += 1;
                        RecoveryOutcome::RolledForward { epoch }
                    }
                    _ => self.discard_staged(),
                }
            }
            _ => self.discard_staged(),
        };
        self.recoveries += 1;
        outcome
    }

    fn install(&mut self) {
        if let (Some(bytes), Some(mark)) = (self.staged.take(), self.mark.take()) {
            self.committed = Some(bytes);
            self.committed_epoch = Some(mark.epoch);
        }
    }

    fn discard_staged(&mut self) -> RecoveryOutcome {
        let staged_bytes = self.staged.take().map_or(0, |b| b.len());
        let marked = self.mark.take().is_some();
        RecoveryOutcome::DiscardedTorn {
            staged_bytes,
            marked,
        }
    }

    /// Decodes (and root-verifies) the last committed snapshot.
    ///
    /// # Errors
    /// [`StoreError::NothingCommitted`] on an empty store;
    /// [`StoreError::Corrupt`] if the committed bytes fail verification.
    pub fn latest(&self) -> Result<Snapshot, StoreError> {
        let bytes = self
            .committed
            .as_ref()
            .ok_or(StoreError::NothingCommitted)?;
        Snapshot::decode(bytes).map_err(StoreError::Corrupt)
    }

    /// Epoch of the last committed snapshot.
    pub fn committed_epoch(&self) -> Option<u64> {
        self.committed_epoch
    }

    /// Raw committed bytes (what a provider would serve).
    pub fn latest_bytes(&self) -> Option<&[u8]> {
        self.committed.as_deref()
    }

    /// Whether an interrupted commit is pending recovery.
    pub fn is_torn(&self) -> bool {
        self.staged.is_some() || self.mark.is_some()
    }

    /// Successful commits, including rolled-forward recoveries.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Times [`CheckpointStore::recover`] ran.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{Section, SectionKind};
    use ammboost_sim::FaultSpec;

    fn snap(epoch: u64) -> Snapshot {
        Snapshot {
            version: crate::snapshot::SNAPSHOT_VERSION,
            epoch,
            sections: vec![
                Section {
                    kind: SectionKind::Pool(0),
                    bytes: (0..64).map(|i| (i as u8).wrapping_mul(7)).collect(),
                },
                Section {
                    kind: SectionKind::Ledger,
                    bytes: vec![1, 2, 3],
                },
            ],
        }
    }

    #[test]
    fn clean_commit_installs() {
        let mut store = CheckpointStore::new();
        assert_eq!(store.latest().err(), Some(StoreError::NothingCommitted));
        assert_eq!(store.commit(&snap(1), None).unwrap(), 1);
        assert_eq!(store.committed_epoch(), Some(1));
        assert_eq!(store.latest().unwrap(), snap(1));
        assert!(!store.is_torn());
        assert_eq!(store.recover(), RecoveryOutcome::Clean);
    }

    #[test]
    fn crash_at_every_byte_offset_recovers_to_last_committed() {
        let base = snap(1);
        let next = snap(2);
        let encoded_len = next.encode().len();
        for offset in 0..encoded_len {
            let mut store = CheckpointStore::new();
            store.commit(&base, None).unwrap();
            let err = store
                .commit(&next, Some(CrashPoint::DuringStage { offset }))
                .unwrap_err();
            assert_eq!(
                err,
                StoreError::SimulatedCrash(CrashPoint::DuringStage { offset })
            );
            assert!(store.is_torn());
            assert_eq!(
                store.recover(),
                RecoveryOutcome::DiscardedTorn {
                    staged_bytes: offset,
                    marked: false
                }
            );
            assert_eq!(store.latest().unwrap(), base, "crash at byte {offset}");
        }
    }

    #[test]
    fn crash_before_mark_discards_complete_stage() {
        let mut store = CheckpointStore::new();
        store.commit(&snap(1), None).unwrap();
        let staged_len = snap(2).encode().len();
        store
            .commit(&snap(2), Some(CrashPoint::BeforeMark))
            .unwrap_err();
        assert_eq!(
            store.recover(),
            RecoveryOutcome::DiscardedTorn {
                staged_bytes: staged_len,
                marked: false
            }
        );
        assert_eq!(store.committed_epoch(), Some(1));
    }

    #[test]
    fn crash_before_install_rolls_forward() {
        let mut store = CheckpointStore::new();
        store.commit(&snap(1), None).unwrap();
        store
            .commit(&snap(2), Some(CrashPoint::BeforeInstall))
            .unwrap_err();
        assert_eq!(store.recover(), RecoveryOutcome::RolledForward { epoch: 2 });
        assert_eq!(store.latest().unwrap(), snap(2));
        assert!(!store.is_torn());
    }

    #[test]
    fn recovery_is_idempotent() {
        let mut store = CheckpointStore::new();
        store.commit(&snap(1), None).unwrap();
        store
            .commit(&snap(2), Some(CrashPoint::BeforeInstall))
            .unwrap_err();
        store.recover();
        assert_eq!(store.recover(), RecoveryOutcome::Clean);
        assert_eq!(store.latest().unwrap(), snap(2));
    }

    #[test]
    fn injector_driven_crashes_are_deterministic() {
        let run = |seed: u64| {
            let mut inj = FaultInjector::new(seed);
            inj.schedule(FaultSpec {
                point: InjectionPoint::CheckpointWrite,
                occurrence: 1,
                kind: FaultKind::Truncate,
            });
            let mut store = CheckpointStore::new();
            store.commit_with_injector(&snap(1), &mut inj).unwrap();
            let err = store.commit_with_injector(&snap(2), &mut inj).unwrap_err();
            (err, store)
        };
        let (e1, mut s1) = run(5);
        let (e2, _) = run(5);
        assert_eq!(e1, e2, "same seed, same torn offset");
        assert!(matches!(
            e1,
            StoreError::SimulatedCrash(CrashPoint::DuringStage { .. })
        ));
        s1.recover();
        assert_eq!(s1.committed_epoch(), Some(1));
        // a third commit goes through untouched (occurrence 2 unscheduled)
        let mut inj = FaultInjector::new(5);
        assert_eq!(s1.commit_with_injector(&snap(3), &mut inj).unwrap(), 3);
    }
}
