//! Crash-consistent checkpoint persistence.
//!
//! [`CheckpointStore`] models the durable medium a node writes snapshots
//! to, with a **stage → mark → install** journal:
//!
//! ```text
//!        encode            stage              mark              install
//!   Snapshot ──► bytes ──► staged slot ──► commit mark ──► committed slot
//!                              │   (epoch, root, len)  │
//!             crash here ──────┘ torn/unmarked: DISCARD │
//!                              crash here ──────────────┘ marked+complete:
//!                                                         ROLL FORWARD
//! ```
//!
//! The full snapshot encoding is first written to a *staging* slot; only
//! once it is completely down is a small **commit mark** — epoch, root and
//! exact length, an atomic rename-equivalent — recorded; installing into
//! the committed slot happens last. A simulated crash ([`CrashPoint`])
//! can tear the staged write at any byte offset or kill the process
//! between any two steps. [`CheckpointStore::recover`] then restores the
//! invariant the rest of the system relies on: the store always exposes
//! the **last committed** snapshot — a marked *and* byte-complete staged
//! write rolls forward, anything torn or unmarked is discarded. The node
//! catches back up from the committed epoch by replaying meta-blocks
//! (`catch_up`), landing on a bit-identical state root.
//!
//! The journal is **delta-aware**: [`CheckpointStore::commit_delta`]
//! pushes a [`DeltaSnapshot`] through the same stage→mark→install dance
//! (the staged bytes' magic distinguishes full `ABSS` from delta `ABDS`
//! writes, including during recovery). Installed deltas form a *chain*
//! on top of the last full snapshot; [`CheckpointStore::latest`] folds
//! the chain — every link re-verified — and once the chain reaches the
//! compaction threshold the store folds it into a new full snapshot in
//! the committed slot. Per-epoch durable bytes therefore scale with the
//! dirty pages, while reads always see one verified tip.

use crate::codec::CodecError;
use crate::delta::{DeltaError, DeltaSnapshot, DELTA_MAGIC};
use crate::snapshot::Snapshot;
use ammboost_crypto::H256;
use ammboost_sim::{FaultInjector, FaultKind, InjectionPoint};
use std::fmt;

/// Delta-chain links after which the store folds the chain into a new
/// full snapshot.
pub const DEFAULT_COMPACTION_THRESHOLD: usize = 8;

/// Where a simulated crash interrupts a checkpoint commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// The process dies mid-stage: only `offset` bytes of the snapshot
    /// encoding reach the staging slot (a torn write).
    DuringStage {
        /// Bytes of the encoding that made it down before the crash.
        offset: usize,
    },
    /// The stage completed but the commit mark was never written.
    BeforeMark,
    /// Staged and marked, but the install into the committed slot never
    /// ran — the one case recovery rolls *forward*.
    BeforeInstall,
}

/// Checkpoint store failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The simulated process died at this point of the commit. The store
    /// is left exactly as the crash tore it; call
    /// [`CheckpointStore::recover`] as the restarted process would.
    SimulatedCrash(CrashPoint),
    /// No snapshot has ever been committed.
    NothingCommitted,
    /// The committed slot failed to decode (cannot happen through this
    /// API; guards external corruption of the committed bytes).
    Corrupt(CodecError),
    /// A delta-chain link failed to decode or apply.
    CorruptDelta(DeltaError),
    /// A delta was committed against a tip other than the store's.
    DeltaBaseMismatch {
        /// The store's current tip root, if any.
        tip: Option<H256>,
        /// The base root the delta expects.
        base: H256,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::SimulatedCrash(p) => write!(f, "simulated crash at {p:?}"),
            StoreError::NothingCommitted => write!(f, "no committed checkpoint"),
            StoreError::Corrupt(e) => write!(f, "committed checkpoint corrupt: {e}"),
            StoreError::CorruptDelta(e) => write!(f, "delta chain corrupt: {e}"),
            StoreError::DeltaBaseMismatch { tip, base } => {
                write!(f, "delta base {base:?} does not match store tip {tip:?}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// What [`CheckpointStore::recover`] found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// No interrupted commit; nothing to do.
    Clean,
    /// A marked, byte-complete staged write was installed.
    RolledForward {
        /// Epoch of the snapshot that was rolled forward.
        epoch: u64,
    },
    /// A torn or unmarked staged write was discarded; the store still
    /// exposes the previous committed snapshot.
    DiscardedTorn {
        /// Bytes found in the staging slot.
        staged_bytes: usize,
        /// Whether a commit mark was present (a marked-but-torn write is
        /// still discarded — the mark's length/root check failed).
        marked: bool,
    },
}

/// The commit mark: the small atomic record that makes a staged write
/// eligible to roll forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CommitMark {
    epoch: u64,
    root: H256,
    len: usize,
}

/// A simulated durable checkpoint store with a stage→mark→install
/// commit journal. See the module docs for the protocol and crash
/// semantics.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    committed: Option<Vec<u8>>,
    committed_epoch: Option<u64>,
    /// Encoded delta links on top of `committed`, oldest first.
    chain: Vec<Vec<u8>>,
    /// Root of the folded tip (committed + chain).
    tip_root: Option<H256>,
    staged: Option<Vec<u8>>,
    mark: Option<CommitMark>,
    compaction_threshold: usize,
    commits: u64,
    recoveries: u64,
    compactions: u64,
}

impl Default for CheckpointStore {
    fn default() -> CheckpointStore {
        CheckpointStore::new()
    }
}

impl CheckpointStore {
    /// An empty store (nothing committed) with the default compaction
    /// threshold.
    pub fn new() -> CheckpointStore {
        CheckpointStore::with_compaction_threshold(DEFAULT_COMPACTION_THRESHOLD)
    }

    /// An empty store folding its delta chain after `threshold` links.
    ///
    /// # Panics
    /// Panics on a zero threshold.
    pub fn with_compaction_threshold(threshold: usize) -> CheckpointStore {
        assert!(threshold > 0, "compaction threshold must be positive");
        CheckpointStore {
            committed: None,
            committed_epoch: None,
            chain: Vec::new(),
            tip_root: None,
            staged: None,
            mark: None,
            compaction_threshold: threshold,
            commits: 0,
            recoveries: 0,
            compactions: 0,
        }
    }

    /// Commits `snapshot` through the journal, optionally dying at
    /// `crash`. On success the snapshot is installed (resetting any
    /// delta chain) and its epoch returned; on a simulated crash the
    /// store is left torn exactly as the crash point dictates and
    /// [`StoreError::SimulatedCrash`] is returned — the caller then
    /// restarts via [`CheckpointStore::recover`].
    ///
    /// # Errors
    /// Only [`StoreError::SimulatedCrash`], and only when `crash` is set.
    pub fn commit(
        &mut self,
        snapshot: &Snapshot,
        crash: Option<CrashPoint>,
    ) -> Result<u64, StoreError> {
        let bytes = snapshot.encode();
        let mark = CommitMark {
            epoch: snapshot.epoch,
            root: snapshot.root(),
            len: bytes.len(),
        };
        self.journal(bytes, mark, crash)?;
        Ok(snapshot.epoch)
    }

    /// Commits a [`DeltaSnapshot`] link through the same journal. The
    /// delta must extend the store's current tip (base root and epoch
    /// both agreeing); on install it joins the chain, and once the chain
    /// reaches the compaction threshold it is folded into a new full
    /// snapshot in the committed slot.
    ///
    /// # Errors
    /// [`StoreError::NothingCommitted`] on an empty store,
    /// [`StoreError::DeltaBaseMismatch`] when the delta does not extend
    /// the tip, [`StoreError::SimulatedCrash`] when `crash` is set.
    pub fn commit_delta(
        &mut self,
        delta: &DeltaSnapshot,
        crash: Option<CrashPoint>,
    ) -> Result<u64, StoreError> {
        if self.committed.is_none() {
            return Err(StoreError::NothingCommitted);
        }
        if self.tip_root != Some(delta.base_root) || self.committed_epoch != Some(delta.base_epoch)
        {
            return Err(StoreError::DeltaBaseMismatch {
                tip: self.tip_root,
                base: delta.base_root,
            });
        }
        let bytes = delta.encode();
        let mark = CommitMark {
            epoch: delta.epoch,
            root: delta.root,
            len: bytes.len(),
        };
        self.journal(bytes, mark, crash)?;
        Ok(delta.epoch)
    }

    /// The shared stage→mark→install dance over already-encoded bytes.
    fn journal(
        &mut self,
        bytes: Vec<u8>,
        mark: CommitMark,
        crash: Option<CrashPoint>,
    ) -> Result<(), StoreError> {
        if let Some(CrashPoint::DuringStage { offset }) = crash {
            let cut = offset.min(bytes.len());
            self.staged = Some(bytes[..cut].to_vec());
            return Err(StoreError::SimulatedCrash(CrashPoint::DuringStage {
                offset: cut,
            }));
        }
        self.staged = Some(bytes);
        if let Some(CrashPoint::BeforeMark) = crash {
            return Err(StoreError::SimulatedCrash(CrashPoint::BeforeMark));
        }
        self.mark = Some(mark);
        if let Some(CrashPoint::BeforeInstall) = crash {
            return Err(StoreError::SimulatedCrash(CrashPoint::BeforeInstall));
        }
        self.install();
        self.commits += 1;
        Ok(())
    }

    /// Commits `snapshot`, consulting `injector` at
    /// [`InjectionPoint::CheckpointWrite`] for a scheduled crash. Fault
    /// kinds map to crash points by severity: byte-level kinds
    /// ([`FaultKind::BitFlip`], [`FaultKind::Truncate`],
    /// [`FaultKind::Panic`]) tear the staged write at a deterministic
    /// offset, [`FaultKind::Drop`] dies before the mark, and the
    /// delivery kinds ([`FaultKind::Delay`], [`FaultKind::Duplicate`],
    /// [`FaultKind::StaleRoot`]) die after the mark but before install.
    ///
    /// # Errors
    /// [`StoreError::SimulatedCrash`] when a fault fires.
    pub fn commit_with_injector(
        &mut self,
        snapshot: &Snapshot,
        injector: &mut FaultInjector,
    ) -> Result<u64, StoreError> {
        let crash = self.injected_crash(injector, snapshot.encoded_len());
        self.commit(snapshot, crash)
    }

    /// Delta counterpart of [`CheckpointStore::commit_with_injector`]:
    /// the same fault-to-crash-point mapping applied to a delta commit.
    ///
    /// # Errors
    /// As [`CheckpointStore::commit_delta`], plus
    /// [`StoreError::SimulatedCrash`] when a fault fires.
    pub fn commit_delta_with_injector(
        &mut self,
        delta: &DeltaSnapshot,
        injector: &mut FaultInjector,
    ) -> Result<u64, StoreError> {
        let crash = self.injected_crash(injector, delta.encoded_len());
        self.commit_delta(delta, crash)
    }

    fn injected_crash(
        &mut self,
        injector: &mut FaultInjector,
        encoded_len: usize,
    ) -> Option<CrashPoint> {
        injector
            .fire(InjectionPoint::CheckpointWrite)
            .map(|kind| match kind {
                FaultKind::BitFlip | FaultKind::Truncate | FaultKind::Panic => {
                    CrashPoint::DuringStage {
                        offset: injector.crash_offset(encoded_len),
                    }
                }
                FaultKind::Drop => CrashPoint::BeforeMark,
                FaultKind::Delay { .. } | FaultKind::Duplicate | FaultKind::StaleRoot => {
                    CrashPoint::BeforeInstall
                }
            })
    }

    /// Restores the journal invariant after a (possible) crash: a marked
    /// *and* byte-complete staged write — length, decode and root all
    /// agreeing with the mark (and, for a staged delta, its base
    /// agreeing with the store's tip) — is installed; anything else in
    /// the staging area is discarded. Idempotent; safe to call on a
    /// clean store.
    pub fn recover(&mut self) -> RecoveryOutcome {
        let outcome = match (&self.staged, &self.mark) {
            (None, None) => return RecoveryOutcome::Clean,
            (Some(staged), Some(mark)) if staged.len() == mark.len => {
                if staged.get(..4) == Some(DELTA_MAGIC.as_slice()) {
                    match DeltaSnapshot::decode(staged) {
                        Ok(delta)
                            if delta.epoch == mark.epoch
                                && delta.root == mark.root
                                && self.tip_root == Some(delta.base_root)
                                && self.committed_epoch == Some(delta.base_epoch) =>
                        {
                            let epoch = mark.epoch;
                            self.install();
                            self.commits += 1;
                            RecoveryOutcome::RolledForward { epoch }
                        }
                        _ => self.discard_staged(),
                    }
                } else {
                    match Snapshot::decode(staged) {
                        Ok(snap) if snap.epoch == mark.epoch && snap.root() == mark.root => {
                            let epoch = mark.epoch;
                            self.install();
                            self.commits += 1;
                            RecoveryOutcome::RolledForward { epoch }
                        }
                        _ => self.discard_staged(),
                    }
                }
            }
            _ => self.discard_staged(),
        };
        self.recoveries += 1;
        outcome
    }

    fn install(&mut self) {
        if let (Some(bytes), Some(mark)) = (self.staged.take(), self.mark.take()) {
            if bytes.get(..4) == Some(DELTA_MAGIC.as_slice()) {
                self.chain.push(bytes);
            } else {
                self.committed = Some(bytes);
                self.chain.clear();
            }
            self.committed_epoch = Some(mark.epoch);
            self.tip_root = Some(mark.root);
            if self.chain.len() >= self.compaction_threshold {
                self.compact();
            }
        }
    }

    /// Folds the delta chain into a new full snapshot in the committed
    /// slot. On a fold error the chain is left untouched — the
    /// corruption then fails loud at the next [`CheckpointStore::latest`]
    /// instead of being papered over.
    fn compact(&mut self) {
        if let Ok(snapshot) = self.fold() {
            self.committed = Some(snapshot.encode());
            self.chain.clear();
            self.compactions += 1;
        }
    }

    /// Decodes the committed slot and re-applies (re-verifying) every
    /// chain link.
    fn fold(&self) -> Result<Snapshot, StoreError> {
        let bytes = self
            .committed
            .as_ref()
            .ok_or(StoreError::NothingCommitted)?;
        let mut snapshot = Snapshot::decode(bytes).map_err(StoreError::Corrupt)?;
        for link in &self.chain {
            let delta = DeltaSnapshot::decode(link).map_err(StoreError::CorruptDelta)?;
            snapshot = delta.apply(&snapshot).map_err(StoreError::CorruptDelta)?;
        }
        Ok(snapshot)
    }

    fn discard_staged(&mut self) -> RecoveryOutcome {
        let staged_bytes = self.staged.take().map_or(0, |b| b.len());
        let marked = self.mark.take().is_some();
        RecoveryOutcome::DiscardedTorn {
            staged_bytes,
            marked,
        }
    }

    /// Decodes (and root-verifies) the store's tip: the last committed
    /// full snapshot with every installed delta link applied and
    /// re-verified on top.
    ///
    /// # Errors
    /// [`StoreError::NothingCommitted`] on an empty store;
    /// [`StoreError::Corrupt`]/[`StoreError::CorruptDelta`] if any
    /// committed bytes fail verification.
    pub fn latest(&self) -> Result<Snapshot, StoreError> {
        self.fold()
    }

    /// Epoch of the store's tip (last installed commit, full or delta).
    pub fn committed_epoch(&self) -> Option<u64> {
        self.committed_epoch
    }

    /// Root of the store's tip.
    pub fn tip_root(&self) -> Option<H256> {
        self.tip_root
    }

    /// Raw bytes of the last *full* snapshot (what a provider would
    /// serve as a sync base; installed deltas live in the chain on top).
    pub fn latest_bytes(&self) -> Option<&[u8]> {
        self.committed.as_deref()
    }

    /// Installed delta links since the last full snapshot.
    pub fn chain_len(&self) -> usize {
        self.chain.len()
    }

    /// Durable bytes in the delta chain.
    pub fn chain_bytes(&self) -> u64 {
        self.chain.iter().map(|b| b.len() as u64).sum()
    }

    /// Whether an interrupted commit is pending recovery.
    pub fn is_torn(&self) -> bool {
        self.staged.is_some() || self.mark.is_some()
    }

    /// Successful commits, including rolled-forward recoveries.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Times [`CheckpointStore::recover`] ran.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Times the delta chain was folded into a full snapshot.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{Section, SectionKind};
    use ammboost_sim::FaultSpec;

    fn snap(epoch: u64) -> Snapshot {
        Snapshot {
            version: crate::snapshot::SNAPSHOT_VERSION,
            epoch,
            sections: vec![
                Section {
                    kind: SectionKind::Pool(0),
                    bytes: (0..64).map(|i| (i as u8).wrapping_mul(7)).collect(),
                },
                Section {
                    kind: SectionKind::Ledger,
                    bytes: vec![1, 2, 3],
                },
            ],
        }
    }

    /// `snap(epoch)` with one pool byte varied per epoch, so consecutive
    /// epochs differ by exactly one page.
    fn evolving(epoch: u64) -> Snapshot {
        let mut s = snap(epoch);
        s.sections[0].bytes[0] = epoch as u8;
        s
    }

    fn delta(from: u64, to: u64) -> DeltaSnapshot {
        DeltaSnapshot::diff(&evolving(from), &evolving(to), 16)
    }

    #[test]
    fn clean_commit_installs() {
        let mut store = CheckpointStore::new();
        assert_eq!(store.latest().err(), Some(StoreError::NothingCommitted));
        assert_eq!(store.commit(&snap(1), None).unwrap(), 1);
        assert_eq!(store.committed_epoch(), Some(1));
        assert_eq!(store.latest().unwrap(), snap(1));
        assert!(!store.is_torn());
        assert_eq!(store.recover(), RecoveryOutcome::Clean);
    }

    #[test]
    fn crash_at_every_byte_offset_recovers_to_last_committed() {
        let base = snap(1);
        let next = snap(2);
        let encoded_len = next.encode().len();
        for offset in 0..encoded_len {
            let mut store = CheckpointStore::new();
            store.commit(&base, None).unwrap();
            let err = store
                .commit(&next, Some(CrashPoint::DuringStage { offset }))
                .unwrap_err();
            assert_eq!(
                err,
                StoreError::SimulatedCrash(CrashPoint::DuringStage { offset })
            );
            assert!(store.is_torn());
            assert_eq!(
                store.recover(),
                RecoveryOutcome::DiscardedTorn {
                    staged_bytes: offset,
                    marked: false
                }
            );
            assert_eq!(store.latest().unwrap(), base, "crash at byte {offset}");
        }
    }

    #[test]
    fn crash_before_mark_discards_complete_stage() {
        let mut store = CheckpointStore::new();
        store.commit(&snap(1), None).unwrap();
        let staged_len = snap(2).encode().len();
        store
            .commit(&snap(2), Some(CrashPoint::BeforeMark))
            .unwrap_err();
        assert_eq!(
            store.recover(),
            RecoveryOutcome::DiscardedTorn {
                staged_bytes: staged_len,
                marked: false
            }
        );
        assert_eq!(store.committed_epoch(), Some(1));
    }

    #[test]
    fn crash_before_install_rolls_forward() {
        let mut store = CheckpointStore::new();
        store.commit(&snap(1), None).unwrap();
        store
            .commit(&snap(2), Some(CrashPoint::BeforeInstall))
            .unwrap_err();
        assert_eq!(store.recover(), RecoveryOutcome::RolledForward { epoch: 2 });
        assert_eq!(store.latest().unwrap(), snap(2));
        assert!(!store.is_torn());
    }

    #[test]
    fn recovery_is_idempotent() {
        let mut store = CheckpointStore::new();
        store.commit(&snap(1), None).unwrap();
        store
            .commit(&snap(2), Some(CrashPoint::BeforeInstall))
            .unwrap_err();
        store.recover();
        assert_eq!(store.recover(), RecoveryOutcome::Clean);
        assert_eq!(store.latest().unwrap(), snap(2));
    }

    #[test]
    fn injector_driven_crashes_are_deterministic() {
        let run = |seed: u64| {
            let mut inj = FaultInjector::new(seed);
            inj.schedule(FaultSpec {
                point: InjectionPoint::CheckpointWrite,
                occurrence: 1,
                kind: FaultKind::Truncate,
            });
            let mut store = CheckpointStore::new();
            store.commit_with_injector(&snap(1), &mut inj).unwrap();
            let err = store.commit_with_injector(&snap(2), &mut inj).unwrap_err();
            (err, store)
        };
        let (e1, mut s1) = run(5);
        let (e2, _) = run(5);
        assert_eq!(e1, e2, "same seed, same torn offset");
        assert!(matches!(
            e1,
            StoreError::SimulatedCrash(CrashPoint::DuringStage { .. })
        ));
        s1.recover();
        assert_eq!(s1.committed_epoch(), Some(1));
        // a third commit goes through untouched (occurrence 2 unscheduled)
        let mut inj = FaultInjector::new(5);
        assert_eq!(s1.commit_with_injector(&snap(3), &mut inj).unwrap(), 3);
    }

    #[test]
    fn delta_commits_chain_and_fold_to_the_tip() {
        let mut store = CheckpointStore::new();
        store.commit(&evolving(1), None).unwrap();
        store.commit_delta(&delta(1, 2), None).unwrap();
        store.commit_delta(&delta(2, 3), None).unwrap();
        assert_eq!(store.chain_len(), 2);
        assert_eq!(store.committed_epoch(), Some(3));
        assert_eq!(store.tip_root(), Some(evolving(3).root()));
        assert_eq!(store.latest().unwrap(), evolving(3));
        assert!(store.chain_bytes() > 0);
    }

    #[test]
    fn delta_against_wrong_tip_rejected() {
        let mut store = CheckpointStore::new();
        assert_eq!(
            store.commit_delta(&delta(1, 2), None).unwrap_err(),
            StoreError::NothingCommitted
        );
        store.commit(&evolving(1), None).unwrap();
        assert!(matches!(
            store.commit_delta(&delta(2, 3), None).unwrap_err(),
            StoreError::DeltaBaseMismatch { .. }
        ));
        // the failed commit left no trace
        assert!(!store.is_torn());
        assert_eq!(store.latest().unwrap(), evolving(1));
    }

    #[test]
    fn chain_compacts_at_threshold() {
        let mut store = CheckpointStore::with_compaction_threshold(3);
        store.commit(&evolving(1), None).unwrap();
        store.commit_delta(&delta(1, 2), None).unwrap();
        store.commit_delta(&delta(2, 3), None).unwrap();
        assert_eq!(store.chain_len(), 2);
        assert_eq!(store.compactions(), 0);
        store.commit_delta(&delta(3, 4), None).unwrap();
        assert_eq!(store.chain_len(), 0, "threshold reached, chain folded");
        assert_eq!(store.compactions(), 1);
        // the committed slot now holds the folded full snapshot
        assert_eq!(
            Snapshot::decode(store.latest_bytes().unwrap()).unwrap(),
            evolving(4)
        );
        // and the chain keeps growing from the new base
        store.commit_delta(&delta(4, 5), None).unwrap();
        assert_eq!(store.latest().unwrap(), evolving(5));
    }

    #[test]
    fn full_commit_resets_the_chain() {
        let mut store = CheckpointStore::new();
        store.commit(&evolving(1), None).unwrap();
        store.commit_delta(&delta(1, 2), None).unwrap();
        store.commit(&evolving(7), None).unwrap();
        assert_eq!(store.chain_len(), 0);
        assert_eq!(store.latest().unwrap(), evolving(7));
    }

    #[test]
    fn delta_crash_at_every_byte_offset_recovers_to_tip() {
        let d = delta(2, 3);
        let encoded_len = d.encode().len();
        for offset in 0..encoded_len {
            let mut store = CheckpointStore::new();
            store.commit(&evolving(1), None).unwrap();
            store.commit_delta(&delta(1, 2), None).unwrap();
            store
                .commit_delta(&d, Some(CrashPoint::DuringStage { offset }))
                .unwrap_err();
            assert_eq!(
                store.recover(),
                RecoveryOutcome::DiscardedTorn {
                    staged_bytes: offset,
                    marked: false
                }
            );
            assert_eq!(store.latest().unwrap(), evolving(2), "crash at {offset}");
        }
    }

    #[test]
    fn marked_delta_rolls_forward_on_recovery() {
        let mut store = CheckpointStore::new();
        store.commit(&evolving(1), None).unwrap();
        store
            .commit_delta(&delta(1, 2), Some(CrashPoint::BeforeInstall))
            .unwrap_err();
        assert_eq!(store.recover(), RecoveryOutcome::RolledForward { epoch: 2 });
        assert_eq!(store.latest().unwrap(), evolving(2));
        assert_eq!(store.chain_len(), 1);
    }

    #[test]
    fn delta_injector_crash_then_full_resync() {
        let mut inj = FaultInjector::new(9);
        inj.schedule(FaultSpec {
            point: InjectionPoint::CheckpointWrite,
            occurrence: 0,
            kind: FaultKind::Drop,
        });
        let mut store = CheckpointStore::new();
        store.commit(&evolving(1), None).unwrap();
        store
            .commit_delta_with_injector(&delta(1, 2), &mut inj)
            .unwrap_err();
        assert!(matches!(
            store.recover(),
            RecoveryOutcome::DiscardedTorn { marked: false, .. }
        ));
        // the tip is still epoch 1, so the 1→2 delta re-commits cleanly
        store
            .commit_delta_with_injector(&delta(1, 2), &mut inj)
            .unwrap();
        assert_eq!(store.latest().unwrap(), evolving(2));
    }
}
