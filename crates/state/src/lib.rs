//! # ammboost-state
//!
//! The state snapshot, pruning and fast-sync subsystem — what turns the
//! sidechain's epoch summaries into actual state-size reduction (paper
//! §IV-B/C: committed state, not history, is the unit of persistence).
//!
//! - [`codec`] — a deterministic, versioned, hand-rolled binary codec
//!   ([`Encode`]/[`Decode`] over [`ByteWriter`]/[`ByteReader`]) extending
//!   the sidechain's field-packing style; exhaustive error handling, no
//!   serde dependency.
//! - [`records`] — codec implementations for every snapshot record type
//!   (pool state, positions, ticks, blocks, ledger, deposits).
//! - [`snapshot`] — Merkle-committed [`Snapshot`]s whose root is a single
//!   32-byte commitment to the full system state; tamper-evident wire
//!   encoding.
//! - [`checkpoint`] — incremental checkpointing with dirty-pool tracking:
//!   per-epoch snapshots re-encode only touched pools, and each commit
//!   also emits a page-granular delta against the previous checkpoint.
//! - [`pages`] — fixed-size page decomposition of section encodings,
//!   with per-page sub-leaf hashes under the existing section leaves.
//! - [`delta`] — [`DeltaSnapshot`]: the page-granular difference between
//!   two committed snapshots, with `apply` proven byte-identical to a
//!   full re-encode and tamper detection down to single page bytes.
//! - [`prune`] — snapshot-aware retention pruning of raw meta-block
//!   history, reporting reclaimed bytes.
//! - [`sync`] — fast-sync restore: snapshot → working pools (derived tick
//!   indexes regenerated, never serialized) + ledger + deposits.
//! - [`heal`] — section-granular self-healing sync: per-section manifest
//!   verification, quarantine of bad copies, provider rotation with
//!   bounded retries and deterministic backoff on simulated time.
//! - [`store`] — crash-consistent checkpoint persistence: a stage→mark→
//!   install journal whose recovery always lands on the last committed
//!   snapshot, whatever byte a simulated crash tore the write at.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod codec;
pub mod delta;
pub mod heal;
pub mod pages;
pub mod prune;
pub mod records;
pub mod snapshot;
pub mod store;
pub mod sync;

pub use checkpoint::{CheckpointOutput, CheckpointStats, Checkpointer, StagedCheckpoint};
pub use codec::{ByteReader, ByteWriter, CodecError, Decode, Encode};
pub use delta::{DeltaError, DeltaSnapshot, SectionDelta, DELTA_MAGIC, DELTA_VERSION};
pub use heal::{
    delta_restore, delta_sync, fetch_manifest, heal_fetch, heal_restore, HealReport, PageManifest,
    PageReply, ProviderReply, Quarantine, RetryPolicy, SectionProvider, SimProvider, SyncError,
    SyncManifest,
};
pub use pages::{page_hash, page_hashes, page_root, PageDiff, DEFAULT_PAGE_SIZE};
pub use prune::{prune_to_snapshot, PruneReport, RetentionPolicy};
pub use snapshot::{
    root_from_section_hashes, section_hashes, Section, SectionKind, Snapshot,
    LEGACY_SNAPSHOT_VERSION, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use store::{CheckpointStore, CrashPoint, RecoveryOutcome, StoreError};
pub use sync::{restore, restore_from_bytes, RestoreError, RestoredState};
