//! [`Encode`]/[`Decode`] implementations for every snapshot record type:
//! the crypto value types, the AMM pool state, the transaction vocabulary
//! (delegating to the sidechain wire format of `AmmTx::encode_into` so a
//! decoded transaction re-hashes to the same `tx_id`), and the sidechain
//! blocks and ledger.

use crate::codec::{ensure_sorted_keys, ByteReader, ByteWriter, CodecError, Decode, Encode};
use ammboost_amm::engines::{CpState, EngineKind, EngineState, SharePosition, WeightedState};
use ammboost_amm::pool::{PoolState, Position, TickInfo};
use ammboost_amm::positions::{PositionRecords, RecordsError, POSITION_RECORD_BYTES};
use ammboost_amm::tx::{
    AmmTx, BurnTx, CollectTx, MintTx, RouteHop, RouteTx, SwapIntent, SwapTx, MAX_ROUTE_HOPS,
};
use ammboost_amm::types::{PoolId, PositionId};
use ammboost_crypto::{Address, H256, U256};
use ammboost_sidechain::block::{ExecutedTx, MetaBlock, RouteLeg, SummaryBlock, TxEffect};
use ammboost_sidechain::ledger::LedgerState;
use ammboost_sidechain::summary::{PayoutEntry, PoolUpdate, PositionEntry};

// ---- crypto value types ----------------------------------------------------

impl Encode for H256 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_bytes(&self.0);
    }
}

impl Decode for H256 {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let mut out = [0u8; 32];
        out.copy_from_slice(r.take(32)?);
        Ok(H256(out))
    }
}

impl Encode for Address {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_bytes(&self.0);
    }
}

impl Decode for Address {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let mut out = [0u8; 20];
        out.copy_from_slice(r.take(20)?);
        Ok(Address(out))
    }
}

impl Encode for U256 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_bytes(&self.to_be_bytes());
    }
}

impl Decode for U256 {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let mut out = [0u8; 32];
        out.copy_from_slice(r.take(32)?);
        Ok(U256::from_be_bytes(out))
    }
}

impl Encode for PoolId {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.0);
    }
}

impl Decode for PoolId {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(PoolId(r.take_u32()?))
    }
}

impl Encode for PositionId {
    fn encode(&self, w: &mut ByteWriter) {
        self.0.encode(w);
    }
}

impl Decode for PositionId {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(PositionId(H256::decode(r)?))
    }
}

// ---- AMM pool state --------------------------------------------------------

impl Encode for TickInfo {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u128(self.liquidity_gross);
        w.put_i128(self.liquidity_net);
        self.fee_growth_outside0.encode(w);
        self.fee_growth_outside1.encode(w);
    }
}

impl Decode for TickInfo {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(TickInfo {
            liquidity_gross: r.take_u128()?,
            liquidity_net: r.take_i128()?,
            fee_growth_outside0: r.get()?,
            fee_growth_outside1: r.get()?,
        })
    }
}

impl Encode for Position {
    fn encode(&self, w: &mut ByteWriter) {
        self.owner.encode(w);
        w.put_i32(self.tick_lower);
        w.put_i32(self.tick_upper);
        w.put_u128(self.liquidity);
        self.fee_growth_inside0_last.encode(w);
        self.fee_growth_inside1_last.encode(w);
        w.put_u128(self.tokens_owed0);
        w.put_u128(self.tokens_owed1);
    }
}

impl Decode for Position {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(Position {
            owner: r.get()?,
            tick_lower: r.take_i32()?,
            tick_upper: r.take_i32()?,
            liquidity: r.take_u128()?,
            fee_growth_inside0_last: r.get()?,
            fee_growth_inside1_last: r.get()?,
            tokens_owed0: r.take_u128()?,
            tokens_owed1: r.take_u128()?,
        })
    }
}

/// Decodes the position section of a [`PoolState`]: a `u32` count prefix
/// followed by `count` raw [`POSITION_RECORD_BYTES`]-sized records. The
/// bytes are adopted zero-parse — only the stride and the strict id
/// ordering are checked; field payloads stay raw until the pool touches
/// them.
fn decode_position_records(r: &mut ByteReader<'_>) -> Result<PositionRecords, CodecError> {
    let count = r.take_len()?;
    let byte_len = count
        .checked_mul(POSITION_RECORD_BYTES)
        .ok_or(CodecError::LengthOverflow {
            declared: count,
            remaining: r.remaining(),
        })?;
    let raw = r.take(byte_len)?;
    PositionRecords::from_sorted_raw(raw).map_err(|e| match e {
        // stride is impossible here (we took an exact multiple); map it
        // to the same taxonomy as any other malformed length
        RecordsError::Stride { len } => CodecError::LengthOverflow {
            declared: len,
            remaining: 0,
        },
        RecordsError::Unsorted { .. } => CodecError::UnsortedKeys,
    })
}

impl Encode for PoolState {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.fee_pips);
        w.put_i32(self.tick_spacing);
        self.sqrt_price.encode(w);
        w.put_i32(self.tick);
        w.put_u128(self.liquidity);
        self.fee_growth_global0.encode(w);
        self.fee_growth_global1.encode(w);
        w.put_u128(self.balance0);
        w.put_u128(self.balance1);
        self.ticks.encode(w);
        // positions are kept in wire form: count prefix + raw records.
        // Byte-identical to encoding each (id, Position) pair in order.
        w.put_len(self.positions.len());
        w.put_bytes(self.positions.raw());
        self.tick_prices.encode(w);
    }
}

impl Decode for PoolState {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let state = PoolState {
            fee_pips: r.take_u32()?,
            tick_spacing: r.take_i32()?,
            sqrt_price: r.get()?,
            tick: r.take_i32()?,
            liquidity: r.take_u128()?,
            fee_growth_global0: r.get()?,
            fee_growth_global1: r.get()?,
            balance0: r.take_u128()?,
            balance1: r.take_u128()?,
            ticks: r.get()?,
            positions: decode_position_records(r)?,
            tick_prices: r.get()?,
        };
        ensure_sorted_keys(&state.ticks)?;
        Ok(state)
    }
}

// ---- multi-engine fleet ----------------------------------------------------

impl Encode for SharePosition {
    fn encode(&self, w: &mut ByteWriter) {
        self.owner.encode(w);
        w.put_u128(self.shares);
        w.put_u128(self.owed0);
        w.put_u128(self.owed1);
    }
}

impl Decode for SharePosition {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(SharePosition {
            owner: r.get()?,
            shares: r.take_u128()?,
            owed0: r.take_u128()?,
            owed1: r.take_u128()?,
        })
    }
}

impl Encode for CpState {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.fee_pips);
        w.put_u128(self.reserve0);
        w.put_u128(self.reserve1);
        self.positions.encode(w);
    }
}

impl Decode for CpState {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let state = CpState {
            fee_pips: r.take_u32()?,
            reserve0: r.take_u128()?,
            reserve1: r.take_u128()?,
            positions: r.get()?,
        };
        ensure_sorted_keys(&state.positions)?;
        Ok(state)
    }
}

impl Encode for WeightedState {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.fee_pips);
        w.put_u128(self.weight0);
        w.put_u128(self.weight1);
        w.put_u128(self.reserve0);
        w.put_u128(self.reserve1);
        self.positions.encode(w);
    }
}

impl Decode for WeightedState {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let state = WeightedState {
            fee_pips: r.take_u32()?,
            weight0: r.take_u128()?,
            weight1: r.take_u128()?,
            reserve0: r.take_u128()?,
            reserve1: r.take_u128()?,
            positions: r.get()?,
        };
        ensure_sorted_keys(&state.positions)?;
        Ok(state)
    }
}

/// Engine state is tagged with the stable [`EngineKind::tag`] byte, so a
/// v3 pool section is self-describing: decoders dispatch on the leading
/// tag without out-of-band metadata.
impl Encode for EngineState {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(self.kind().tag());
        match self {
            EngineState::Cl(s) => s.encode(w),
            EngineState::Cp(s) => s.encode(w),
            EngineState::Weighted(s) => s.encode(w),
        }
    }
}

impl Decode for EngineState {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let tag = r.take_u8()?;
        match EngineKind::from_tag(tag) {
            Some(EngineKind::ConcentratedLiquidity) => Ok(EngineState::Cl(r.get()?)),
            Some(EngineKind::ConstantProduct) => Ok(EngineState::Cp(r.get()?)),
            Some(EngineKind::Weighted) => Ok(EngineState::Weighted(r.get()?)),
            None => Err(CodecError::InvalidTag {
                what: "EngineState",
                tag,
            }),
        }
    }
}

// ---- transactions (sidechain wire format) ----------------------------------

/// `AmmTx` reuses the sidechain wire format (`AmmTx::encode_into`), so a
/// decoded transaction re-encodes — and therefore re-hashes to a
/// `tx_id` — byte-identically.
impl Encode for AmmTx {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_with(|buf| self.encode_into(buf));
    }
}

impl Decode for AmmTx {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let kind = r.take_u8()?;
        let user: Address = r.get()?;
        // routes carry a hop list where the other kinds carry one pool id
        if kind == 4 {
            let hop_count = r.take_u8()? as usize;
            if hop_count > MAX_ROUTE_HOPS {
                return Err(CodecError::InvalidTag {
                    what: "RouteTx hop count",
                    tag: hop_count as u8,
                });
            }
            let mut hops = Vec::with_capacity(hop_count);
            for _ in 0..hop_count {
                hops.push(RouteHop {
                    pool: r.get()?,
                    zero_for_one: r.take_bool()?,
                });
            }
            return Ok(AmmTx::Route(RouteTx {
                user,
                hops,
                amount_in: r.take_u128()?,
                min_amount_out: r.take_u128()?,
                deadline_round: r.take_u64()?,
            }));
        }
        let pool: PoolId = r.get()?;
        match kind {
            0 => {
                let zero_for_one = r.take_bool()?;
                let intent = match r.take_u8()? {
                    0 => SwapIntent::ExactInput {
                        amount_in: r.take_u128()?,
                        min_amount_out: r.take_u128()?,
                    },
                    1 => SwapIntent::ExactOutput {
                        amount_out: r.take_u128()?,
                        max_amount_in: r.take_u128()?,
                    },
                    tag => {
                        return Err(CodecError::InvalidTag {
                            what: "SwapIntent",
                            tag,
                        })
                    }
                };
                let sqrt_price_limit: Option<U256> = r.get()?;
                let deadline_round = r.take_u64()?;
                Ok(AmmTx::Swap(SwapTx {
                    user,
                    pool,
                    zero_for_one,
                    intent,
                    sqrt_price_limit,
                    deadline_round,
                }))
            }
            1 => Ok(AmmTx::Mint(MintTx {
                user,
                pool,
                position: r.get()?,
                tick_lower: r.take_i32()?,
                tick_upper: r.take_i32()?,
                amount0_desired: r.take_u128()?,
                amount1_desired: r.take_u128()?,
                nonce: r.take_u64()?,
            })),
            2 => Ok(AmmTx::Burn(BurnTx {
                user,
                pool,
                position: r.get()?,
                liquidity: r.get()?,
            })),
            3 => Ok(AmmTx::Collect(CollectTx {
                user,
                pool,
                position: r.get()?,
                amount0: r.take_u128()?,
                amount1: r.take_u128()?,
            })),
            tag => Err(CodecError::InvalidTag { what: "AmmTx", tag }),
        }
    }
}

impl Encode for TxEffect {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            TxEffect::Swap {
                amount_in,
                amount_out,
                zero_for_one,
            } => {
                w.put_u8(0);
                w.put_u128(*amount_in);
                w.put_u128(*amount_out);
                w.put_bool(*zero_for_one);
            }
            TxEffect::Mint {
                position,
                liquidity,
                amount0,
                amount1,
                created,
            } => {
                w.put_u8(1);
                position.encode(w);
                w.put_u128(*liquidity);
                w.put_u128(*amount0);
                w.put_u128(*amount1);
                w.put_bool(*created);
            }
            TxEffect::Burn {
                position,
                liquidity,
                amount0,
                amount1,
                deleted,
            } => {
                w.put_u8(2);
                position.encode(w);
                w.put_u128(*liquidity);
                w.put_u128(*amount0);
                w.put_u128(*amount1);
                w.put_bool(*deleted);
            }
            TxEffect::Collect {
                position,
                amount0,
                amount1,
            } => {
                w.put_u8(3);
                position.encode(w);
                w.put_u128(*amount0);
                w.put_u128(*amount1);
            }
            TxEffect::Rejected { reason } => {
                w.put_u8(4);
                reason.encode(w);
            }
            TxEffect::Route {
                legs,
                amount_in,
                amount_out,
                completed,
            } => {
                w.put_u8(5);
                legs.encode(w);
                w.put_u128(*amount_in);
                w.put_u128(*amount_out);
                w.put_bool(*completed);
            }
        }
    }
}

impl Encode for RouteLeg {
    fn encode(&self, w: &mut ByteWriter) {
        self.pool.encode(w);
        w.put_bool(self.zero_for_one);
        w.put_u128(self.amount_in);
        w.put_u128(self.amount_out);
    }
}

impl Decode for RouteLeg {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(RouteLeg {
            pool: r.get()?,
            zero_for_one: r.take_bool()?,
            amount_in: r.take_u128()?,
            amount_out: r.take_u128()?,
        })
    }
}

impl Decode for TxEffect {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        match r.take_u8()? {
            0 => Ok(TxEffect::Swap {
                amount_in: r.take_u128()?,
                amount_out: r.take_u128()?,
                zero_for_one: r.take_bool()?,
            }),
            1 => Ok(TxEffect::Mint {
                position: r.get()?,
                liquidity: r.take_u128()?,
                amount0: r.take_u128()?,
                amount1: r.take_u128()?,
                created: r.take_bool()?,
            }),
            2 => Ok(TxEffect::Burn {
                position: r.get()?,
                liquidity: r.take_u128()?,
                amount0: r.take_u128()?,
                amount1: r.take_u128()?,
                deleted: r.take_bool()?,
            }),
            3 => Ok(TxEffect::Collect {
                position: r.get()?,
                amount0: r.take_u128()?,
                amount1: r.take_u128()?,
            }),
            4 => Ok(TxEffect::Rejected { reason: r.get()? }),
            5 => Ok(TxEffect::Route {
                legs: r.get()?,
                amount_in: r.take_u128()?,
                amount_out: r.take_u128()?,
                completed: r.take_bool()?,
            }),
            tag => Err(CodecError::InvalidTag {
                what: "TxEffect",
                tag,
            }),
        }
    }
}

impl Encode for ExecutedTx {
    fn encode(&self, w: &mut ByteWriter) {
        self.tx.encode(w);
        w.put_u64(self.wire_size as u64);
        self.effect.encode(w);
    }
}

impl Decode for ExecutedTx {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(ExecutedTx {
            tx: r.get()?,
            wire_size: r.take_u64()? as usize,
            effect: r.get()?,
        })
    }
}

// ---- sidechain blocks, summary entries, ledger -----------------------------

impl Encode for MetaBlock {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.epoch);
        w.put_u64(self.round);
        self.parent.encode(w);
        self.txs.encode(w);
        self.tx_root.encode(w);
    }
}

impl Decode for MetaBlock {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(MetaBlock {
            epoch: r.take_u64()?,
            round: r.take_u64()?,
            parent: r.get()?,
            txs: r.get()?,
            tx_root: r.get()?,
        })
    }
}

impl Encode for PayoutEntry {
    fn encode(&self, w: &mut ByteWriter) {
        self.user.encode(w);
        w.put_u128(self.amount0);
        w.put_u128(self.amount1);
    }
}

impl Decode for PayoutEntry {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(PayoutEntry {
            user: r.get()?,
            amount0: r.take_u128()?,
            amount1: r.take_u128()?,
        })
    }
}

impl Encode for PositionEntry {
    fn encode(&self, w: &mut ByteWriter) {
        self.id.encode(w);
        self.owner.encode(w);
        w.put_u128(self.liquidity);
        w.put_u128(self.amount0);
        w.put_u128(self.amount1);
        w.put_u128(self.fees0);
        w.put_u128(self.fees1);
        w.put_u128(self.fee_growth_inside0);
        w.put_u128(self.fee_growth_inside1);
        w.put_i32(self.tick_lower);
        w.put_i32(self.tick_upper);
        w.put_bool(self.deleted);
    }
}

impl Decode for PositionEntry {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(PositionEntry {
            id: r.get()?,
            owner: r.get()?,
            liquidity: r.take_u128()?,
            amount0: r.take_u128()?,
            amount1: r.take_u128()?,
            fees0: r.take_u128()?,
            fees1: r.take_u128()?,
            fee_growth_inside0: r.take_u128()?,
            fee_growth_inside1: r.take_u128()?,
            tick_lower: r.take_i32()?,
            tick_upper: r.take_i32()?,
            deleted: r.take_bool()?,
        })
    }
}

impl Encode for PoolUpdate {
    fn encode(&self, w: &mut ByteWriter) {
        self.pool.encode(w);
        w.put_u128(self.reserve0);
        w.put_u128(self.reserve1);
    }
}

impl Decode for PoolUpdate {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(PoolUpdate {
            pool: r.get()?,
            reserve0: r.take_u128()?,
            reserve1: r.take_u128()?,
        })
    }
}

impl Encode for SummaryBlock {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.epoch);
        self.parent.encode(w);
        self.meta_refs.encode(w);
        self.payouts.encode(w);
        self.positions.encode(w);
        self.pools.encode(w);
    }
}

impl Decode for SummaryBlock {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(SummaryBlock {
            epoch: r.take_u64()?,
            parent: r.get()?,
            meta_refs: r.get()?,
            payouts: r.get()?,
            positions: r.get()?,
            pools: r.get()?,
        })
    }
}

impl Encode for LedgerState {
    fn encode(&self, w: &mut ByteWriter) {
        self.meta.encode(w);
        self.summaries.encode(w);
        self.tip.encode(w);
        w.put_u64(self.tip_epoch);
        self.tip_round.encode(w);
        w.put_u64(self.current_bytes);
        w.put_u64(self.peak_bytes);
        w.put_u64(self.pruned_bytes_total);
    }
}

impl Decode for LedgerState {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let state = LedgerState {
            meta: r.get()?,
            summaries: r.get()?,
            tip: r.get()?,
            tip_epoch: r.take_u64()?,
            tip_round: r.get()?,
            current_bytes: r.take_u64()?,
            peak_bytes: r.take_u64()?,
            pruned_bytes_total: r.take_u64()?,
        };
        ensure_sorted_keys(&state.meta)?;
        Ok(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amm_tx_decode_inverts_wire_format() {
        let tx = AmmTx::Swap(SwapTx {
            user: Address::from_index(3),
            pool: PoolId(0),
            zero_for_one: false,
            intent: SwapIntent::ExactOutput {
                amount_out: u128::MAX,
                max_amount_in: 12345,
            },
            sqrt_price_limit: Some(U256::pow2(97)),
            deadline_round: 99,
        });
        let bytes = tx.encode_to_vec();
        // identical to the sidechain wire format
        let mut wire = Vec::new();
        tx.encode_into(&mut wire);
        assert_eq!(bytes, wire);
        let back = AmmTx::decode_all(&bytes).unwrap();
        assert_eq!(back, tx);
        assert_eq!(back.tx_id(), tx.tx_id(), "tx id survives the roundtrip");
    }

    #[test]
    fn route_tx_and_effect_roundtrip() {
        let tx = AmmTx::Route(RouteTx {
            user: Address::from_index(8),
            hops: vec![
                RouteHop {
                    pool: PoolId(3),
                    zero_for_one: true,
                },
                RouteHop {
                    pool: PoolId(1),
                    zero_for_one: false,
                },
                RouteHop {
                    pool: PoolId(7),
                    zero_for_one: true,
                },
            ],
            amount_in: 123_456,
            min_amount_out: 100_000,
            deadline_round: 42,
        });
        let bytes = tx.encode_to_vec();
        let mut wire = Vec::new();
        tx.encode_into(&mut wire);
        assert_eq!(bytes, wire, "codec must match the sidechain wire form");
        let back = AmmTx::decode_all(&bytes).unwrap();
        assert_eq!(back, tx);
        assert_eq!(back.tx_id(), tx.tx_id());

        let effect = TxEffect::Route {
            legs: vec![
                RouteLeg {
                    pool: PoolId(3),
                    zero_for_one: true,
                    amount_in: 123_456,
                    amount_out: 120_000,
                },
                RouteLeg {
                    pool: PoolId(1),
                    zero_for_one: false,
                    amount_in: 120_000,
                    amount_out: 118_000,
                },
            ],
            amount_in: 123_456,
            amount_out: 118_000,
            completed: false,
        };
        let back = TxEffect::decode_all(&effect.encode_to_vec()).unwrap();
        assert_eq!(back, effect);
    }

    #[test]
    fn oversized_route_hop_count_rejected() {
        // tag 4, user, then an absurd hop count must fail closed
        let mut bytes = vec![4u8];
        bytes.extend_from_slice(Address::from_index(1).as_bytes());
        bytes.push(200);
        bytes.extend_from_slice(&[0u8; 64]);
        assert!(AmmTx::decode_all(&bytes).is_err());
    }

    #[test]
    fn unsorted_pool_state_rejected() {
        let mut pool = ammboost_amm::pool::Pool::new_standard();
        pool.mint(
            PositionId::derive(&[b"r"]),
            Address::from_index(1),
            -600,
            600,
            1_000_000,
            1_000_000,
        )
        .unwrap();
        let mut state = pool.export_state();
        state.ticks.reverse();
        let bytes = state.encode_to_vec();
        assert_eq!(PoolState::decode_all(&bytes), Err(CodecError::UnsortedKeys));
    }
}
