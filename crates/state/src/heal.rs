//! Section- and page-granular self-healing fast-sync.
//!
//! Plain [`restore`](crate::sync::restore) trusts one source and fails on
//! the first bad byte. For a late-joiner on a real network that is not
//! good enough: providers lag, drop requests, serve stale roots, or
//! corrupt payloads in flight. This module turns fast-sync into a
//! per-section protocol:
//!
//! 1. A [`SyncManifest`] — the snapshot epoch plus each section's
//!    `(kind, hash)` leaf — is fetched from any provider and verified
//!    against a *trusted* root (from consensus) via
//!    [`root_from_section_hashes`]. A provider whose manifest commits to
//!    a different root is rejected as stale before any payload moves.
//! 2. Each section is fetched independently and checked against its
//!    manifest leaf. A mismatching, truncated, duplicated or dropped
//!    section is **quarantined** — never restored — and re-fetched from
//!    the next provider in rotation with bounded retries and
//!    deterministic exponential backoff on simulated time.
//! 3. The reassembled snapshot's Merkle root is re-derived and must equal
//!    the trusted root before [`restore`](crate::sync::restore) runs.
//!
//! On top of that, [`delta_sync`] makes re-sync **page-granular**: a
//! late-joiner that already holds a stale snapshot reuses every section
//! whose leaf still matches, and for changed sections asks providers for
//! a [`PageManifest`] (the section's per-page sub-leaves) and fetches
//! *only the pages whose hash differs locally*, verifying each fetched
//! page against its sub-leaf. A tampered page quarantines exactly like a
//! tampered section and heals through provider rotation; a provider that
//! does not speak the page protocol (or serves a lying page manifest —
//! page hashes are only bound to the trusted root through the final
//! section-hash check) degrades that section to the full fetch path.
//!
//! The result: a sync succeeds as long as *some* provider serves each
//! section honestly, and every failure mode is a typed [`SyncError`], not
//! a panic or abort. Providers are simulated ([`SectionProvider`]), with
//! [`SimProvider`] wiring byte faults from a shared
//! [`FaultInjector`](ammboost_sim::FaultInjector) into its replies.

use crate::pages::{page_count, page_hash, page_hashes};
use crate::snapshot::{root_from_section_hashes, Section, SectionKind, Snapshot};
use crate::sync::{restore, RestoreError, RestoredState};
use ammboost_crypto::H256;
use ammboost_sim::{FaultInjector, FaultKind, InjectionPoint, SimDuration};
use std::fmt;
use std::sync::{Arc, Mutex};

/// Why a self-healing sync failed. Replaces the panic/abort behaviour of
/// the plain restore path with a closed taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncError {
    /// A pool-section decoder panicked; contained and reported by pool id.
    SectionDecodeFailed {
        /// Pool id of the section whose decoder panicked.
        section: u32,
    },
    /// No provider served a manifest committing to the trusted root.
    NoValidManifest {
        /// Providers asked.
        providers_tried: usize,
        /// How many of them served a manifest for a *different* root.
        stale: usize,
    },
    /// A section could not be healed within the retry budget.
    HealExhausted {
        /// Index of the section in canonical order.
        section: usize,
        /// Total fetch attempts spent on it.
        attempts: u32,
    },
    /// The fully healed snapshot re-derived to a root other than the
    /// trusted one (defense in depth; unreachable if per-section checks
    /// hold, since the root is a pure function of the section hashes).
    RootMismatch,
    /// The healed snapshot restored with a non-byte-level error (missing
    /// section, invalid pool state, codec bug).
    Restore(RestoreError),
}

impl fmt::Display for SyncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncError::SectionDecodeFailed { section } => {
                write!(f, "pool section {section} decoder panicked")
            }
            SyncError::NoValidManifest {
                providers_tried,
                stale,
            } => write!(
                f,
                "no valid manifest from {providers_tried} providers ({stale} stale)"
            ),
            SyncError::HealExhausted { section, attempts } => {
                write!(f, "section {section} unhealed after {attempts} attempts")
            }
            SyncError::RootMismatch => write!(f, "healed snapshot root mismatch"),
            SyncError::Restore(e) => write!(f, "healed snapshot failed to restore: {e}"),
        }
    }
}

impl std::error::Error for SyncError {}

impl From<RestoreError> for SyncError {
    fn from(e: RestoreError) -> Self {
        match e {
            RestoreError::SectionDecodeFailed { section } => {
                SyncError::SectionDecodeFailed { section }
            }
            other => SyncError::Restore(other),
        }
    }
}

/// The per-section commitment list a late-joiner syncs against: epoch
/// plus each section's `(kind, hash)` in canonical order. Hashes are the
/// Merkle leaves of [`Snapshot::root`], so the manifest binds to a root
/// without carrying any payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncManifest {
    /// Snapshot format version (committed in the root's header leaf, and
    /// what tells restore how pool sections are encoded).
    pub version: u16,
    /// Snapshot epoch.
    pub epoch: u64,
    /// `(kind, section hash)` per section, canonical order.
    pub sections: Vec<(SectionKind, H256)>,
}

impl SyncManifest {
    /// Builds the manifest describing `snapshot`.
    pub fn of(snapshot: &Snapshot) -> SyncManifest {
        SyncManifest {
            version: snapshot.version,
            epoch: snapshot.epoch,
            sections: snapshot
                .sections
                .iter()
                .map(|s| (s.kind, s.hash()))
                .collect(),
        }
    }

    /// The root this manifest commits to.
    pub fn root(&self) -> H256 {
        let hashes: Vec<H256> = self.sections.iter().map(|(_, h)| *h).collect();
        root_from_section_hashes(self.version, self.epoch, &hashes)
    }

    /// Whether `section` is a valid copy of entry `index`: kind and
    /// domain-hash must both match the manifest leaf.
    pub fn section_matches(&self, index: usize, section: &Section) -> bool {
        self.sections
            .get(index)
            .is_some_and(|(kind, hash)| section.kind == *kind && section.hash() == *hash)
    }
}

/// A section's page-level sub-leaf list, served alongside the section
/// leaf so a syncer can tell *which pages* of its stale copy changed.
///
/// Trust model: the snapshot root commits to `section_hash` (through the
/// [`SyncManifest`] leaf) but **not** to the individual page hashes, so a
/// page manifest is held to account in two steps — each fetched page must
/// match its advertised sub-leaf (catching in-flight tampering page by
/// page), and the fully assembled section must hash to the trusted leaf
/// (catching a manifest that lied about the sub-leaves in the first
/// place, which degrades the section to the full fetch path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageManifest {
    /// Section kind this manifest describes.
    pub kind: SectionKind,
    /// The section leaf the pages must reassemble to.
    pub section_hash: H256,
    /// Byte length of the section encoding.
    pub len: u32,
    /// Page size the section was split at.
    pub page_size: u32,
    /// [`page_hash`] sub-leaf per page, in index order.
    pub page_hashes: Vec<H256>,
}

impl PageManifest {
    /// Builds the page manifest of `section` at `page_size`.
    pub fn of(section: &Section, page_size: usize) -> PageManifest {
        PageManifest {
            kind: section.kind,
            section_hash: section.hash(),
            len: section.bytes.len() as u32,
            page_size: page_size as u32,
            page_hashes: page_hashes(section.kind, &section.bytes, page_size),
        }
    }

    /// Internal consistency: sane page size and a sub-leaf per page.
    pub fn is_consistent(&self) -> bool {
        self.page_size > 0
            && self.page_size <= (1 << 24)
            && self.page_hashes.len() == page_count(self.len as usize, self.page_size as usize)
    }
}

/// One provider reply to a section fetch.
#[derive(Debug, Clone)]
pub enum ProviderReply {
    /// The section bytes, delivered immediately.
    Section(Section),
    /// The section bytes, delivered after a simulated delay.
    Delayed {
        /// Simulated delivery delay in milliseconds.
        millis: u64,
        /// The (possibly corrupt) section.
        section: Section,
    },
    /// No reply (request dropped / provider offline).
    Dropped,
}

/// One provider reply to a page fetch.
#[derive(Debug, Clone)]
pub enum PageReply {
    /// The page bytes, delivered immediately.
    Page(Vec<u8>),
    /// The page bytes, delivered after a simulated delay.
    Delayed {
        /// Simulated delivery delay in milliseconds.
        millis: u64,
        /// The (possibly corrupt) page bytes.
        bytes: Vec<u8>,
    },
    /// No reply (request dropped / page protocol unsupported).
    Dropped,
}

/// A simulated snapshot provider a late-joiner can fetch from.
///
/// The page-granular methods have conservative defaults (no page
/// manifest, every page fetch dropped) so a legacy provider transparently
/// degrades [`delta_sync`] to full-section fetches.
pub trait SectionProvider {
    /// Stable provider id (used for fault addressing and reporting).
    fn id(&self) -> u32;
    /// The provider's manifest, or `None` if it does not answer.
    fn manifest(&mut self) -> Option<SyncManifest>;
    /// Fetches the section at canonical `index`.
    fn fetch(&mut self, index: usize) -> ProviderReply;
    /// The page manifest of section `index`, or `None` when the provider
    /// does not speak the page protocol.
    fn page_manifest(&mut self, index: usize) -> Option<PageManifest> {
        let _ = index;
        None
    }
    /// Fetches one page of section `index`.
    fn fetch_page(&mut self, index: usize, page: u32) -> PageReply {
        let _ = (index, page);
        PageReply::Dropped
    }
}

/// A provider serving one snapshot, optionally perturbed by a shared
/// [`FaultInjector`] at [`InjectionPoint::Provider`]`(id)`. Each fetch —
/// manifest, section, page manifest or page — visits the injection point
/// once, so occurrence indexes address individual requests.
/// [`FaultKind::StaleRoot`] serves the matching section of an older
/// snapshot (a lagging replica) when one is configured — and applies to
/// `manifest()` too, where the whole stale manifest is served;
/// [`FaultKind::Panic`] is treated as a drop (a crashed provider looks
/// like silence from the fetcher's side).
pub struct SimProvider {
    id: u32,
    snapshot: Snapshot,
    stale: Option<Snapshot>,
    injector: Option<Arc<Mutex<FaultInjector>>>,
    page_size: usize,
}

impl SimProvider {
    /// An honest provider serving `snapshot`.
    pub fn honest(id: u32, snapshot: Snapshot) -> SimProvider {
        SimProvider {
            id,
            snapshot,
            stale: None,
            injector: None,
            page_size: crate::pages::DEFAULT_PAGE_SIZE,
        }
    }

    /// A provider whose replies consult `injector` at
    /// [`InjectionPoint::Provider`]`(id)`.
    pub fn faulty(id: u32, snapshot: Snapshot, injector: Arc<Mutex<FaultInjector>>) -> SimProvider {
        SimProvider {
            injector: Some(injector),
            ..SimProvider::honest(id, snapshot)
        }
    }

    /// Configures the older snapshot served when a stale-root fault fires.
    pub fn with_stale(mut self, stale: Snapshot) -> SimProvider {
        self.stale = Some(stale);
        self
    }

    /// Configures the page size this provider splits sections at.
    pub fn with_page_size(mut self, page_size: usize) -> SimProvider {
        self.page_size = page_size;
        self
    }

    fn fire(&self) -> Option<FaultKind> {
        self.injector
            .as_ref()
            .map(|inj| {
                inj.lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .fire(InjectionPoint::Provider(self.id))
            })
            .unwrap_or(None)
    }

    fn mutate(&self, kind: FaultKind, bytes: &mut Vec<u8>) {
        if let Some(inj) = &self.injector {
            inj.lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .mutate(kind, bytes);
        }
    }

    fn source(&self, fault: Option<FaultKind>) -> &Snapshot {
        match fault {
            Some(FaultKind::StaleRoot) => self.stale.as_ref().unwrap_or(&self.snapshot),
            _ => &self.snapshot,
        }
    }
}

impl SectionProvider for SimProvider {
    fn id(&self) -> u32 {
        self.id
    }

    fn manifest(&mut self) -> Option<SyncManifest> {
        match self.fire() {
            Some(FaultKind::Drop) | Some(FaultKind::Panic) => None,
            fault => Some(SyncManifest::of(self.source(fault))),
        }
    }

    fn fetch(&mut self, index: usize) -> ProviderReply {
        let fault = self.fire();
        let Some(section) = self.source(fault).sections.get(index).cloned() else {
            return ProviderReply::Dropped;
        };
        match fault {
            Some(FaultKind::Drop) | Some(FaultKind::Panic) => ProviderReply::Dropped,
            Some(FaultKind::Delay { millis }) => ProviderReply::Delayed { millis, section },
            Some(kind @ (FaultKind::BitFlip | FaultKind::Truncate | FaultKind::Duplicate)) => {
                let mut section = section;
                self.mutate(kind, &mut section.bytes);
                ProviderReply::Section(section)
            }
            Some(FaultKind::StaleRoot) | None => ProviderReply::Section(section),
        }
    }

    fn page_manifest(&mut self, index: usize) -> Option<PageManifest> {
        let fault = self.fire();
        match fault {
            Some(FaultKind::Drop) | Some(FaultKind::Panic) => None,
            _ => self
                .source(fault)
                .sections
                .get(index)
                .map(|s| PageManifest::of(s, self.page_size)),
        }
    }

    fn fetch_page(&mut self, index: usize, page: u32) -> PageReply {
        let fault = self.fire();
        let page_size = self.page_size;
        let Some(section) = self.source(fault).sections.get(index) else {
            return PageReply::Dropped;
        };
        let start = page as usize * page_size;
        if start >= section.bytes.len() && !(start == 0 && section.bytes.is_empty()) {
            return PageReply::Dropped;
        }
        let end = (start + page_size).min(section.bytes.len());
        let mut bytes = section.bytes[start..end].to_vec();
        match fault {
            Some(FaultKind::Drop) | Some(FaultKind::Panic) => PageReply::Dropped,
            Some(FaultKind::Delay { millis }) => PageReply::Delayed { millis, bytes },
            Some(kind @ (FaultKind::BitFlip | FaultKind::Truncate | FaultKind::Duplicate)) => {
                self.mutate(kind, &mut bytes);
                PageReply::Page(bytes)
            }
            Some(FaultKind::StaleRoot) | None => PageReply::Page(bytes),
        }
    }
}

/// Retry budget and backoff schedule for healing fetches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total fetch attempts per section (first try included).
    pub max_attempts: u32,
    /// Backoff before retry `k` is `base_backoff * 2^(k-1)` — exponential
    /// and fully deterministic on the simulated clock.
    pub base_backoff: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            base_backoff: SimDuration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// The backoff waited before attempt `attempt` (0-based; the first
    /// attempt waits nothing).
    pub fn backoff_before(&self, attempt: u32) -> SimDuration {
        if attempt == 0 {
            SimDuration::ZERO
        } else {
            self.base_backoff
                .saturating_mul(1u64 << (attempt - 1).min(32))
        }
    }
}

/// One quarantine event: a fetched section or page copy that failed
/// verification (or never arrived) and was discarded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quarantine {
    /// Canonical section index.
    pub section: usize,
    /// Provider that served the bad copy.
    pub provider: u32,
    /// Attempt number (0-based) at which it happened.
    pub attempt: u32,
    /// What was wrong: `"dropped"`, `"hash-mismatch"`,
    /// `"page-hash-mismatch"` or `"page-manifest-mismatch"`.
    pub reason: &'static str,
}

/// What a healing sync did: which sections needed healing, how much of
/// the state moved as pages versus whole sections, how much retry/backoff
/// budget it spent, and the simulated time that passed.
#[derive(Debug, Clone, Default)]
pub struct HealReport {
    /// Every discarded bad copy, in fetch order.
    pub quarantined: Vec<Quarantine>,
    /// Sections that needed more than one attempt — or any page work —
    /// and ended verified.
    pub healed_sections: Vec<usize>,
    /// Total fetch attempts across all sections and pages.
    pub attempts: u64,
    /// Total retries (attempts beyond the first per section or page).
    pub retries: u64,
    /// Sections reused wholesale from the local snapshot (leaf match).
    pub sections_reused: usize,
    /// Pages fetched from providers during page-granular healing.
    pub pages_fetched: u64,
    /// Pages reused from the local stale copy during page-granular
    /// healing.
    pub pages_reused: u64,
    /// Simulated time consumed by backoff and delayed deliveries.
    pub sim_elapsed: SimDuration,
}

/// Fetches a manifest committing to `trusted_root` from the first
/// provider that serves one, in order. Stale manifests (wrong root) and
/// silent providers are skipped.
///
/// # Errors
/// [`SyncError::NoValidManifest`] when every provider is silent or stale.
pub fn fetch_manifest(
    providers: &mut [&mut dyn SectionProvider],
    trusted_root: H256,
) -> Result<SyncManifest, SyncError> {
    let mut stale = 0usize;
    for provider in providers.iter_mut() {
        match provider.manifest() {
            None => {}
            Some(manifest) => {
                if manifest.root() == trusted_root {
                    return Ok(manifest);
                }
                stale += 1;
            }
        }
    }
    Err(SyncError::NoValidManifest {
        providers_tried: providers.len(),
        stale,
    })
}

/// Fetches one section with provider rotation, retries and quarantine:
/// attempt `k` asks provider `k % n` after waiting
/// [`RetryPolicy::backoff_before`]`(k)` on the simulated clock, and any
/// copy whose kind or hash disagrees with the manifest leaf is
/// quarantined.
fn fetch_section(
    manifest: &SyncManifest,
    index: usize,
    providers: &mut [&mut dyn SectionProvider],
    policy: &RetryPolicy,
    report: &mut HealReport,
) -> Result<Section, SyncError> {
    let n = providers.len().max(1);
    for attempt in 0..policy.max_attempts {
        report.sim_elapsed += policy.backoff_before(attempt);
        report.attempts += 1;
        if attempt > 0 {
            report.retries += 1;
        }
        let provider = &mut providers[attempt as usize % n];
        let pid = provider.id();
        let (section, delay) = match provider.fetch(index) {
            ProviderReply::Section(s) => (Some(s), 0),
            ProviderReply::Delayed { millis, section } => (Some(section), millis),
            ProviderReply::Dropped => (None, 0),
        };
        report.sim_elapsed += SimDuration::from_millis(delay);
        match section {
            Some(s) if manifest.section_matches(index, &s) => {
                if attempt > 0 {
                    report.healed_sections.push(index);
                }
                return Ok(s);
            }
            Some(_) => report.quarantined.push(Quarantine {
                section: index,
                provider: pid,
                attempt,
                reason: "hash-mismatch",
            }),
            None => report.quarantined.push(Quarantine {
                section: index,
                provider: pid,
                attempt,
                reason: "dropped",
            }),
        }
    }
    Err(SyncError::HealExhausted {
        section: index,
        attempts: policy.max_attempts,
    })
}

/// Fetches and verifies every section of `manifest`, healing bad copies
/// by provider rotation: a retry always moves to the *next* provider
/// rather than re-asking the one that just served a bad copy.
/// Deterministic given the providers' behaviour.
///
/// # Errors
/// [`SyncError::HealExhausted`] when some section has no honest copy
/// within the budget; [`SyncError::RootMismatch`] if the reassembled
/// snapshot somehow re-derives a different root.
pub fn heal_fetch(
    manifest: &SyncManifest,
    providers: &mut [&mut dyn SectionProvider],
    policy: &RetryPolicy,
) -> Result<(Snapshot, HealReport), SyncError> {
    let mut report = HealReport::default();
    let mut sections = Vec::with_capacity(manifest.sections.len());
    for index in 0..manifest.sections.len() {
        sections.push(fetch_section(
            manifest,
            index,
            providers,
            policy,
            &mut report,
        )?);
    }
    let snapshot = Snapshot {
        version: manifest.version,
        epoch: manifest.epoch,
        sections,
    };
    if snapshot.root() != manifest.root() {
        return Err(SyncError::RootMismatch);
    }
    Ok((snapshot, report))
}

/// Page-granular sync of one changed section: obtains a page manifest
/// matching the trusted leaf, reuses every page whose sub-leaf the local
/// stale bytes already satisfy, and fetches the rest with the same
/// rotation/retry/quarantine discipline as sections. Returns `None` when
/// the section must fall back to a whole-section fetch (no page manifest
/// within budget, a page unhealed, or an assembled section that fails the
/// trusted leaf — a lying page manifest).
fn sync_section_pages(
    manifest: &SyncManifest,
    index: usize,
    local_bytes: &[u8],
    providers: &mut [&mut dyn SectionProvider],
    policy: &RetryPolicy,
    report: &mut HealReport,
) -> Option<Section> {
    let (kind, leaf) = manifest.sections[index];
    let n = providers.len().max(1);
    let mut pm = None;
    for attempt in 0..policy.max_attempts {
        let provider = &mut providers[attempt as usize % n];
        let pid = provider.id();
        match provider.page_manifest(index) {
            Some(m) if m.kind == kind && m.section_hash == leaf && m.is_consistent() => {
                pm = Some((m, pid));
                break;
            }
            _ => {}
        }
    }
    let (pm, pm_provider) = pm?;
    let page_size = pm.page_size as usize;
    let len = pm.len as usize;
    let mut bytes = vec![0u8; len];
    for (i, want) in pm.page_hashes.iter().enumerate() {
        let start = i * page_size;
        let slot_len = page_size.min(len - start);
        if let Some(chunk) = local_bytes.get(start..start + slot_len) {
            if page_hash(kind, i as u32, chunk) == *want {
                bytes[start..start + slot_len].copy_from_slice(chunk);
                report.pages_reused += 1;
                continue;
            }
        }
        let mut healed = false;
        for attempt in 0..policy.max_attempts {
            report.sim_elapsed += policy.backoff_before(attempt);
            report.attempts += 1;
            if attempt > 0 {
                report.retries += 1;
            }
            let provider = &mut providers[attempt as usize % n];
            let pid = provider.id();
            let (got, delay) = match provider.fetch_page(index, i as u32) {
                PageReply::Page(b) => (Some(b), 0),
                PageReply::Delayed { millis, bytes } => (Some(bytes), millis),
                PageReply::Dropped => (None, 0),
            };
            report.sim_elapsed += SimDuration::from_millis(delay);
            match got {
                Some(b) if b.len() == slot_len && page_hash(kind, i as u32, &b) == *want => {
                    bytes[start..start + slot_len].copy_from_slice(&b);
                    report.pages_fetched += 1;
                    healed = true;
                    break;
                }
                Some(_) => report.quarantined.push(Quarantine {
                    section: index,
                    provider: pid,
                    attempt,
                    reason: "page-hash-mismatch",
                }),
                None => report.quarantined.push(Quarantine {
                    section: index,
                    provider: pid,
                    attempt,
                    reason: "dropped",
                }),
            }
        }
        if !healed {
            return None;
        }
    }
    let section = Section { kind, bytes };
    if manifest.section_matches(index, &section) {
        report.healed_sections.push(index);
        Some(section)
    } else {
        report.quarantined.push(Quarantine {
            section: index,
            provider: pm_provider,
            attempt: 0,
            reason: "page-manifest-mismatch",
        });
        None
    }
}

/// Delta sync for a late-joiner that already holds `local` (a stale
/// snapshot): fetches a manifest committing to `trusted_root`, reuses
/// every section whose leaf is unchanged, page-syncs the changed ones —
/// fetching and verifying only the pages whose sub-leaf differs locally —
/// and falls back to whole-section healing ([`fetch_section`] semantics)
/// for any section the page path cannot serve. The reassembled snapshot
/// must re-derive the trusted root.
///
/// # Errors
/// Any [`SyncError`]; notably [`SyncError::HealExhausted`] when a section
/// is unhealable through pages *and* whole-section fetches.
pub fn delta_sync(
    local: &Snapshot,
    providers: &mut [&mut dyn SectionProvider],
    trusted_root: H256,
    policy: &RetryPolicy,
) -> Result<(Snapshot, HealReport), SyncError> {
    let manifest = fetch_manifest(providers, trusted_root)?;
    let mut report = HealReport::default();
    let mut sections = Vec::with_capacity(manifest.sections.len());
    for (index, (kind, leaf)) in manifest.sections.iter().enumerate() {
        let local_section = local.sections.iter().find(|s| s.kind == *kind);
        if let Some(s) = local_section {
            if s.hash() == *leaf {
                report.sections_reused += 1;
                sections.push(s.clone());
                continue;
            }
        }
        let local_bytes = local_section.map(|s| s.bytes.as_slice()).unwrap_or(&[]);
        let section = match sync_section_pages(
            &manifest,
            index,
            local_bytes,
            providers,
            policy,
            &mut report,
        ) {
            Some(section) => section,
            None => fetch_section(&manifest, index, providers, policy, &mut report)?,
        };
        sections.push(section);
    }
    let snapshot = Snapshot {
        version: manifest.version,
        epoch: manifest.epoch,
        sections,
    };
    if snapshot.root() != manifest.root() {
        return Err(SyncError::RootMismatch);
    }
    Ok((snapshot, report))
}

/// Full self-healing sync: manifest fetch against `trusted_root`, healed
/// section fetch, then [`restore`].
///
/// # Errors
/// Any [`SyncError`]; notably decoder panics surface as
/// [`SyncError::SectionDecodeFailed`], never as process aborts.
pub fn heal_restore(
    providers: &mut [&mut dyn SectionProvider],
    trusted_root: H256,
    policy: &RetryPolicy,
) -> Result<(RestoredState, HealReport), SyncError> {
    let manifest = fetch_manifest(providers, trusted_root)?;
    let (snapshot, report) = heal_fetch(&manifest, providers, policy)?;
    let restored = restore(&snapshot)?;
    Ok((restored, report))
}

/// [`delta_sync`] followed by [`restore`]: the late-joiner path that
/// moves only changed pages and ends on a fully verified working state.
///
/// # Errors
/// Any [`SyncError`].
pub fn delta_restore(
    local: &Snapshot,
    providers: &mut [&mut dyn SectionProvider],
    trusted_root: H256,
    policy: &RetryPolicy,
) -> Result<(RestoredState, HealReport), SyncError> {
    let (snapshot, report) = delta_sync(local, providers, trusted_root, policy)?;
    let restored = restore(&snapshot)?;
    Ok((restored, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::Checkpointer;
    use ammboost_amm::pool::{Pool, SwapKind};
    use ammboost_amm::types::{PoolId, PositionId};
    use ammboost_crypto::Address;
    use ammboost_sidechain::ledger::Ledger;
    use ammboost_sidechain::summary::Deposits;
    use ammboost_sim::FaultSpec;

    fn snapshot_at(epoch: u64, extra_swap: bool) -> Snapshot {
        let mut pool = Pool::new_standard();
        pool.mint(
            PositionId::derive(&[b"heal"]),
            Address::from_index(1),
            -1200,
            1200,
            50_000_000,
            50_000_000,
        )
        .unwrap();
        if extra_swap {
            pool.swap(true, SwapKind::ExactInput(5_000_000), None)
                .unwrap();
        }
        let pool = ammboost_amm::Engine::Cl(pool);
        let ledger = Ledger::new(H256::hash(b"genesis"));
        let mut deposits = Deposits::new();
        deposits.credit(Address::from_index(1), 100, 200).unwrap();
        Checkpointer::new()
            .checkpoint(
                epoch,
                &[(PoolId(0), &pool), (PoolId(1), &pool)],
                &ledger,
                &deposits,
                vec![],
            )
            .snapshot
    }

    fn injector(specs: &[FaultSpec]) -> Arc<Mutex<FaultInjector>> {
        let mut inj = FaultInjector::new(99);
        inj.schedule_all(specs.iter().copied());
        Arc::new(Mutex::new(inj))
    }

    #[test]
    fn clean_sync_needs_no_healing() {
        let snap = snapshot_at(5, true);
        let root = snap.root();
        let mut p0 = SimProvider::honest(0, snap.clone());
        let mut providers: Vec<&mut dyn SectionProvider> = vec![&mut p0];
        let (restored, report) =
            heal_restore(&mut providers, root, &RetryPolicy::default()).unwrap();
        assert_eq!(restored.root, root);
        assert!(report.quarantined.is_empty());
        assert!(report.healed_sections.is_empty());
        assert_eq!(report.retries, 0);
        assert_eq!(report.sim_elapsed, SimDuration::ZERO);
    }

    #[test]
    fn every_byte_fault_is_quarantined_and_healed() {
        let snap = snapshot_at(5, true);
        let stale = snapshot_at(4, false);
        let root = snap.root();
        // provider 0 misbehaves on its first four fetches, four ways;
        // stale-root targets a pool section (occurrence 1 = section 0,
        // occurrence 0 being the manifest call) because only the pool
        // sections differ between the fresh and the stale snapshot
        let inj = injector(&[
            FaultSpec {
                point: InjectionPoint::Provider(0),
                occurrence: 1,
                kind: FaultKind::StaleRoot,
            },
            FaultSpec {
                point: InjectionPoint::Provider(0),
                occurrence: 2,
                kind: FaultKind::BitFlip,
            },
            FaultSpec {
                point: InjectionPoint::Provider(0),
                occurrence: 3,
                kind: FaultKind::Truncate,
            },
            FaultSpec {
                point: InjectionPoint::Provider(0),
                occurrence: 4,
                kind: FaultKind::Duplicate,
            },
        ]);
        let mut bad = SimProvider::faulty(0, snap.clone(), inj.clone()).with_stale(stale);
        let mut good = SimProvider::honest(1, snap.clone());
        let mut providers: Vec<&mut dyn SectionProvider> = vec![&mut bad, &mut good];
        let (restored, report) =
            heal_restore(&mut providers, root, &RetryPolicy::default()).unwrap();
        assert_eq!(restored.root, root);
        assert_eq!(report.quarantined.len(), 4, "all four bad copies caught");
        assert!(report
            .quarantined
            .iter()
            .all(|q| q.provider == 0 && q.reason == "hash-mismatch"));
        assert_eq!(report.healed_sections, vec![0, 1, 2, 3]);
        assert!(report.sim_elapsed > SimDuration::ZERO, "backoff was paid");
        assert_eq!(inj.lock().unwrap().events().len(), 4);
    }

    #[test]
    fn drops_and_delays_are_retried() {
        let snap = snapshot_at(5, true);
        let root = snap.root();
        let inj = injector(&[
            FaultSpec {
                point: InjectionPoint::Provider(0),
                occurrence: 1,
                kind: FaultKind::Drop,
            },
            FaultSpec {
                point: InjectionPoint::Provider(0),
                occurrence: 2,
                kind: FaultKind::Delay { millis: 123 },
            },
        ]);
        let mut flaky = SimProvider::faulty(0, snap.clone(), inj);
        let mut good = SimProvider::honest(1, snap.clone());
        let mut providers: Vec<&mut dyn SectionProvider> = vec![&mut flaky, &mut good];
        let (restored, report) =
            heal_restore(&mut providers, root, &RetryPolicy::default()).unwrap();
        assert_eq!(restored.root, root);
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].reason, "dropped");
        // the delayed (but honest) reply is accepted, costing sim time
        assert!(report.sim_elapsed >= SimDuration::from_millis(123));
    }

    #[test]
    fn heal_exhausts_when_every_provider_is_dishonest() {
        let snap = snapshot_at(5, true);
        let root = snap.root();
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff: SimDuration::from_millis(10),
        };
        // section 0's three attempts land on providers 0, 1, 0 — at
        // occurrences 1, 0, 2 respectively (provider 0's occurrence 0 is
        // the manifest call) — and every one of them drops
        let inj = injector(&[
            FaultSpec {
                point: InjectionPoint::Provider(0),
                occurrence: 1,
                kind: FaultKind::Drop,
            },
            FaultSpec {
                point: InjectionPoint::Provider(1),
                occurrence: 0,
                kind: FaultKind::Drop,
            },
            FaultSpec {
                point: InjectionPoint::Provider(0),
                occurrence: 2,
                kind: FaultKind::Drop,
            },
        ]);
        let mut a = SimProvider::faulty(0, snap.clone(), inj.clone());
        let mut b = SimProvider::faulty(1, snap.clone(), inj);
        let mut providers: Vec<&mut dyn SectionProvider> = vec![&mut a, &mut b];
        let got = heal_restore(&mut providers, root, &policy);
        assert_eq!(
            got.err(),
            Some(SyncError::HealExhausted {
                section: 0,
                attempts: 3
            })
        );
    }

    #[test]
    fn stale_manifest_rejected_then_served_by_honest_peer() {
        let snap = snapshot_at(5, true);
        let stale = snapshot_at(4, false);
        let root = snap.root();
        let inj = injector(&[FaultSpec {
            point: InjectionPoint::Provider(0),
            occurrence: 0,
            kind: FaultKind::StaleRoot,
        }]);
        let mut lagging = SimProvider::faulty(0, snap.clone(), inj).with_stale(stale.clone());
        let mut fresh = SimProvider::honest(1, snap.clone());
        let mut providers: Vec<&mut dyn SectionProvider> = vec![&mut lagging, &mut fresh];
        let manifest = fetch_manifest(&mut providers, root).unwrap();
        assert_eq!(manifest.root(), root);

        // with only the lagging provider the sync refuses to start
        let inj = injector(&[FaultSpec {
            point: InjectionPoint::Provider(0),
            occurrence: 0,
            kind: FaultKind::StaleRoot,
        }]);
        let mut lagging = SimProvider::faulty(0, snap, inj).with_stale(stale);
        let mut only: Vec<&mut dyn SectionProvider> = vec![&mut lagging];
        assert_eq!(
            fetch_manifest(&mut only, root).err(),
            Some(SyncError::NoValidManifest {
                providers_tried: 1,
                stale: 1
            })
        );
    }

    #[test]
    fn backoff_is_exponential_and_deterministic() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_backoff: SimDuration::from_millis(50),
        };
        let waits: Vec<u64> = (0..5).map(|k| p.backoff_before(k).as_millis()).collect();
        assert_eq!(waits, vec![0, 50, 100, 200, 400]);
    }

    #[test]
    fn manifest_binds_kind_and_content() {
        let snap = snapshot_at(5, true);
        let manifest = SyncManifest::of(&snap);
        let mut section = snap.sections[0].clone();
        assert!(manifest.section_matches(0, &section));
        assert!(!manifest.section_matches(1, &section), "wrong index");
        section.bytes.push(0);
        assert!(!manifest.section_matches(0, &section), "content bound");
    }

    #[test]
    fn delta_sync_moves_only_changed_pages() {
        let stale = snapshot_at(4, false);
        let fresh = snapshot_at(5, true);
        let root = fresh.root();
        // small pages so the changed pool sections split into many
        let mut p0 = SimProvider::honest(0, fresh.clone()).with_page_size(64);
        let mut providers: Vec<&mut dyn SectionProvider> = vec![&mut p0];
        let (synced, report) =
            delta_sync(&stale, &mut providers, root, &RetryPolicy::default()).unwrap();
        assert_eq!(synced.root(), root);
        assert_eq!(synced, fresh);
        // ledger + deposits are byte-identical across the two epochs
        assert_eq!(report.sections_reused, 2);
        // both pool sections were page-synced, mostly from local bytes
        assert_eq!(report.healed_sections, vec![0, 1]);
        assert!(report.pages_fetched > 0);
        assert!(
            report.pages_reused > report.pages_fetched,
            "a one-swap diff must reuse more pages than it ships \
             (reused {}, fetched {})",
            report.pages_reused,
            report.pages_fetched
        );
        assert!(report.quarantined.is_empty());
    }

    #[test]
    fn tampered_page_quarantined_and_healed_by_honest_peer() {
        let stale = snapshot_at(4, false);
        let fresh = snapshot_at(5, true);
        let root = fresh.root();
        // provider 0 flips a byte in its first page reply (occurrence 0
        // is the manifest call, 1 the page manifest, 2 the first page)
        let inj = injector(&[FaultSpec {
            point: InjectionPoint::Provider(0),
            occurrence: 2,
            kind: FaultKind::BitFlip,
        }]);
        let mut bad = SimProvider::faulty(0, fresh.clone(), inj).with_page_size(64);
        let mut good = SimProvider::honest(1, fresh.clone()).with_page_size(64);
        let mut providers: Vec<&mut dyn SectionProvider> = vec![&mut bad, &mut good];
        let (synced, report) =
            delta_sync(&stale, &mut providers, root, &RetryPolicy::default()).unwrap();
        assert_eq!(synced.root(), root);
        let bad_pages: Vec<&Quarantine> = report
            .quarantined
            .iter()
            .filter(|q| q.reason == "page-hash-mismatch")
            .collect();
        assert_eq!(bad_pages.len(), 1, "the flipped page was caught");
        assert_eq!(bad_pages[0].provider, 0);
        assert!(report.retries > 0, "the page was re-fetched elsewhere");
    }

    /// A provider that does not speak the page protocol: the trait
    /// defaults answer its page calls.
    struct LegacyProvider(SimProvider);

    impl SectionProvider for LegacyProvider {
        fn id(&self) -> u32 {
            self.0.id()
        }
        fn manifest(&mut self) -> Option<SyncManifest> {
            self.0.manifest()
        }
        fn fetch(&mut self, index: usize) -> ProviderReply {
            self.0.fetch(index)
        }
    }

    #[test]
    fn legacy_provider_degrades_to_full_section_fetch() {
        let stale = snapshot_at(4, false);
        let fresh = snapshot_at(5, true);
        let root = fresh.root();
        let mut legacy = LegacyProvider(SimProvider::honest(0, fresh.clone()));
        let mut providers: Vec<&mut dyn SectionProvider> = vec![&mut legacy];
        let (synced, report) =
            delta_sync(&stale, &mut providers, root, &RetryPolicy::default()).unwrap();
        assert_eq!(synced, fresh);
        assert_eq!(report.pages_fetched, 0, "no page ever moved");
        assert_eq!(report.sections_reused, 2, "unchanged sections still reused");
    }

    #[test]
    fn delta_restore_lands_on_verified_state() {
        let stale = snapshot_at(4, false);
        let fresh = snapshot_at(5, true);
        let root = fresh.root();
        let mut p0 = SimProvider::honest(0, fresh).with_page_size(64);
        let mut providers: Vec<&mut dyn SectionProvider> = vec![&mut p0];
        let (restored, _) =
            delta_restore(&stale, &mut providers, root, &RetryPolicy::default()).unwrap();
        assert_eq!(restored.root, root);
    }
}
