//! Delta-granular snapshots: what changed between two epochs, as pages.
//!
//! A [`DeltaSnapshot`] carries everything needed to turn the snapshot at
//! `base_epoch` (identified by `base_root`) into the snapshot at `epoch`
//! (identified by `root`): per-section page diffs ([`SectionDelta`]),
//! the kinds that disappeared, and the page size the diff was cut at.
//! [`DeltaSnapshot::apply`] is the proven-inverse of
//! [`DeltaSnapshot::diff`] — it verifies the base root before touching
//! anything, splices the pages, checks every rebuilt section against its
//! declared hash and the final assembly against `root`, so a corrupt or
//! tampered delta can never silently produce wrong state.
//!
//! The wire encoding (magic `ABDS`) re-verifies every page's sub-leaf
//! hash on decode: a single flipped byte in any page is caught before
//! the delta is even considered for application.

use crate::codec::{ByteReader, ByteWriter, CodecError, Decode, Encode};
use crate::pages::{apply_pages, diff_pages, page_hash, seal_pages, PageDiff, PageError};
use crate::snapshot::{Section, SectionKind, Snapshot};
use ammboost_crypto::H256;
use std::collections::BTreeMap;
use std::fmt;

/// Delta snapshot file magic.
pub const DELTA_MAGIC: [u8; 4] = *b"ABDS";

/// Delta wire-format version.
pub const DELTA_VERSION: u16 = 1;

/// Largest page size a decoder accepts (guards hostile headers).
const MAX_PAGE_SIZE: u32 = 1 << 24;

/// Why a delta failed to decode or apply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// The wire encoding is malformed.
    Codec(CodecError),
    /// A page's declared sub-leaf hash does not match its bytes — the
    /// page was corrupted or tampered with in flight.
    PageHashMismatch {
        /// Section the page belongs to.
        kind: SectionKind,
        /// The offending page slot.
        index: u32,
    },
    /// A page could not be spliced into its section.
    Page {
        /// Section the page belongs to.
        kind: SectionKind,
        /// What the splice rejected.
        error: PageError,
    },
    /// The snapshot the delta is applied to is not the one it was
    /// diffed against.
    BaseRootMismatch {
        /// Root the delta expects.
        expected: H256,
        /// Root of the snapshot actually supplied.
        found: H256,
    },
    /// The base snapshot's epoch does not match the delta's `base_epoch`.
    BaseEpochMismatch {
        /// Epoch the delta expects.
        expected: u64,
        /// Epoch of the snapshot actually supplied.
        found: u64,
    },
    /// A section listed as removed is absent from the base.
    RemovedMissing(SectionKind),
    /// A rebuilt section does not hash to its declared `new_hash`.
    SectionHashMismatch(SectionKind),
    /// The assembled snapshot does not hash to the declared `root`.
    RootMismatch,
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::Codec(e) => write!(f, "delta codec: {e}"),
            DeltaError::PageHashMismatch { kind, index } => {
                write!(f, "page hash mismatch at {kind:?} page {index}")
            }
            DeltaError::Page { kind, error } => write!(f, "page splice at {kind:?}: {error}"),
            DeltaError::BaseRootMismatch { expected, found } => {
                write!(f, "delta base root {expected:?} applied to {found:?}")
            }
            DeltaError::BaseEpochMismatch { expected, found } => {
                write!(f, "delta base epoch {expected} applied to {found}")
            }
            DeltaError::RemovedMissing(kind) => {
                write!(f, "removed section {kind:?} absent from base")
            }
            DeltaError::SectionHashMismatch(kind) => {
                write!(f, "rebuilt section {kind:?} hash mismatch")
            }
            DeltaError::RootMismatch => write!(f, "delta result root mismatch"),
        }
    }
}

impl std::error::Error for DeltaError {}

impl From<CodecError> for DeltaError {
    fn from(e: CodecError) -> DeltaError {
        DeltaError::Codec(e)
    }
}

/// The page-granular difference of one section between base and next:
/// the new byte length, the new section hash (the leaf the rebuilt
/// section must reproduce) and every changed page. A section new in
/// `next` is a delta against the empty byte string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SectionDelta {
    /// Which section changed.
    pub kind: SectionKind,
    /// Byte length of the section's new encoding.
    pub new_len: u32,
    /// [`Section::hash`] of the rebuilt section — verified on apply.
    pub new_hash: H256,
    /// Changed pages, ascending by index.
    pub pages: Vec<PageDiff>,
}

impl SectionDelta {
    /// Payload bytes this delta ships for its section.
    pub fn page_bytes(&self) -> u64 {
        self.pages.iter().map(|p| p.bytes.len() as u64).sum()
    }
}

/// The difference between two committed snapshots, addressable and
/// verifiable page by page. See the module docs for the trust chain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaSnapshot {
    /// Snapshot format version of the *result* (the base may not be
    /// older — a delta never crosses format versions).
    pub snapshot_version: u16,
    /// Epoch of the snapshot this delta starts from.
    pub base_epoch: u64,
    /// Epoch of the snapshot this delta produces.
    pub epoch: u64,
    /// Root of the snapshot this delta starts from.
    pub base_root: H256,
    /// Root of the snapshot this delta produces.
    pub root: H256,
    /// Page size the diff was cut at.
    pub page_size: u32,
    /// Sections present in base but gone in next, canonical order.
    pub removed: Vec<SectionKind>,
    /// Per-section page diffs, canonical order.
    pub deltas: Vec<SectionDelta>,
}

impl DeltaSnapshot {
    /// Diffs `next` against `base` at `page_size`. Both snapshots'
    /// sections are walked in canonical order; byte-identical sections
    /// contribute nothing.
    ///
    /// # Panics
    /// Panics when `page_size` is zero or the snapshots' format
    /// versions differ (a delta never crosses format versions).
    pub fn diff(base: &Snapshot, next: &Snapshot, page_size: usize) -> DeltaSnapshot {
        assert!(page_size > 0, "page size must be positive");
        assert_eq!(
            base.version, next.version,
            "delta cannot cross snapshot format versions"
        );
        let empty: &[u8] = &[];
        let base_bytes: BTreeMap<SectionKind, &[u8]> = base
            .sections
            .iter()
            .map(|s| (s.kind, s.bytes.as_slice()))
            .collect();
        let mut deltas = Vec::new();
        for section in &next.sections {
            let old = base_bytes.get(&section.kind).copied().unwrap_or(empty);
            if old == section.bytes.as_slice() {
                continue;
            }
            let raw = diff_pages(old, &section.bytes, page_size);
            deltas.push(SectionDelta {
                kind: section.kind,
                new_len: section.bytes.len() as u32,
                new_hash: section.hash(),
                pages: seal_pages(section.kind, raw),
            });
        }
        let removed = base
            .sections
            .iter()
            .map(|s| s.kind)
            .filter(|kind| next.section(*kind).is_none())
            .collect();
        DeltaSnapshot {
            snapshot_version: next.version,
            base_epoch: base.epoch,
            epoch: next.epoch,
            base_root: base.root(),
            root: next.root(),
            page_size: page_size as u32,
            removed,
            deltas,
        }
    }

    /// Rebuilds the full snapshot at `epoch` from `base`, verifying the
    /// base root first, every rebuilt section's hash next, and the final
    /// root last — byte-identical to the snapshot the delta was diffed
    /// from, or an error.
    ///
    /// # Errors
    /// Any [`DeltaError`]; the base snapshot is never modified.
    pub fn apply(&self, base: &Snapshot) -> Result<Snapshot, DeltaError> {
        if base.epoch != self.base_epoch {
            return Err(DeltaError::BaseEpochMismatch {
                expected: self.base_epoch,
                found: base.epoch,
            });
        }
        let found = base.root();
        if found != self.base_root {
            return Err(DeltaError::BaseRootMismatch {
                expected: self.base_root,
                found,
            });
        }
        let mut sections: BTreeMap<SectionKind, Vec<u8>> = base
            .sections
            .iter()
            .map(|s| (s.kind, s.bytes.clone()))
            .collect();
        for kind in &self.removed {
            if sections.remove(kind).is_none() {
                return Err(DeltaError::RemovedMissing(*kind));
            }
        }
        for delta in &self.deltas {
            let old = sections.remove(&delta.kind).unwrap_or_default();
            let bytes = apply_pages(
                &old,
                delta.new_len as usize,
                &delta.pages,
                self.page_size as usize,
            )
            .map_err(|error| DeltaError::Page {
                kind: delta.kind,
                error,
            })?;
            let section = Section {
                kind: delta.kind,
                bytes,
            };
            if section.hash() != delta.new_hash {
                return Err(DeltaError::SectionHashMismatch(delta.kind));
            }
            sections.insert(delta.kind, section.bytes);
        }
        // BTreeMap iteration is exactly the canonical section order
        // (SectionKind's Ord: pools ascending, ledger, deposits, aux).
        let snapshot = Snapshot {
            version: self.snapshot_version,
            epoch: self.epoch,
            sections: sections
                .into_iter()
                .map(|(kind, bytes)| Section { kind, bytes })
                .collect(),
        };
        if snapshot.root() != self.root {
            return Err(DeltaError::RootMismatch);
        }
        Ok(snapshot)
    }

    /// Payload bytes shipped across all section deltas (the dominant
    /// part of the wire size).
    pub fn payload_bytes(&self) -> u64 {
        self.deltas.iter().map(SectionDelta::page_bytes).sum()
    }

    /// Changed pages across all sections.
    pub fn pages(&self) -> usize {
        self.deltas.iter().map(|d| d.pages.len()).sum()
    }

    /// Exact size of [`DeltaSnapshot::encode`]'s output, computed
    /// without serializing.
    pub fn encoded_len(&self) -> usize {
        let removed: usize = self.removed.iter().map(|k| k.encode_to_vec().len()).sum();
        let deltas: usize = self
            .deltas
            .iter()
            .map(|d| {
                let pages: usize = d.pages.iter().map(|p| 4 + 32 + 4 + p.bytes.len()).sum();
                d.kind.encode_to_vec().len() + 4 + 32 + 4 + pages
            })
            .sum();
        // magic + delta version + snapshot version + epochs + roots +
        // page size + removed count + delta count + payloads
        4 + 2 + 2 + 8 + 8 + 32 + 32 + 4 + 4 + removed + 4 + deltas
    }

    /// Serializes the delta: magic, versions, epochs, roots, page size,
    /// removed kinds, section deltas.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(self.encoded_len());
        w.put_bytes(&DELTA_MAGIC);
        w.put_u16(DELTA_VERSION);
        w.put_u16(self.snapshot_version);
        w.put_u64(self.base_epoch);
        w.put_u64(self.epoch);
        self.base_root.encode(&mut w);
        self.root.encode(&mut w);
        w.put_u32(self.page_size);
        self.removed.encode(&mut w);
        w.put_len(self.deltas.len());
        for delta in &self.deltas {
            delta.kind.encode(&mut w);
            w.put_u32(delta.new_len);
            delta.new_hash.encode(&mut w);
            w.put_len(delta.pages.len());
            for page in &delta.pages {
                w.put_u32(page.index);
                page.hash.encode(&mut w);
                w.put_len(page.bytes.len());
                w.put_bytes(&page.bytes);
            }
        }
        w.into_bytes()
    }

    /// Deserializes and *verifies* a delta: magic, versions, a sane page
    /// size, and every page's sub-leaf hash against its bytes — a single
    /// flipped byte anywhere in a page (or its hash) fails here, before
    /// the delta can be applied.
    ///
    /// # Errors
    /// [`DeltaError::Codec`] on wire damage,
    /// [`DeltaError::PageHashMismatch`] on a corrupted page.
    pub fn decode(bytes: &[u8]) -> Result<DeltaSnapshot, DeltaError> {
        let mut r = ByteReader::new(bytes);
        let mut magic = [0u8; 4];
        magic.copy_from_slice(r.take(4)?);
        if magic != DELTA_MAGIC {
            return Err(CodecError::BadMagic(magic).into());
        }
        let version = r.take_u16()?;
        if version != DELTA_VERSION {
            return Err(CodecError::UnsupportedVersion(version).into());
        }
        let snapshot_version = r.take_u16()?;
        let base_epoch = r.take_u64()?;
        let epoch = r.take_u64()?;
        let base_root: H256 = r.get()?;
        let root: H256 = r.get()?;
        let page_size = r.take_u32()?;
        if page_size == 0 || page_size > MAX_PAGE_SIZE {
            return Err(CodecError::InvalidTag {
                what: "DeltaSnapshot page size",
                tag: 0,
            }
            .into());
        }
        let removed: Vec<SectionKind> = r.get()?;
        let delta_count = r.take_len()?;
        let mut deltas = Vec::with_capacity(delta_count);
        for _ in 0..delta_count {
            let kind = SectionKind::decode(&mut r)?;
            let new_len = r.take_u32()?;
            let new_hash: H256 = r.get()?;
            let page_count = r.take_len()?;
            let mut pages = Vec::with_capacity(page_count);
            for _ in 0..page_count {
                let index = r.take_u32()?;
                let hash: H256 = r.get()?;
                let len = r.take_len()?;
                let page_bytes = r.take(len)?.to_vec();
                if page_hash(kind, index, &page_bytes) != hash {
                    return Err(DeltaError::PageHashMismatch { kind, index });
                }
                pages.push(PageDiff {
                    index,
                    hash,
                    bytes: page_bytes,
                });
            }
            deltas.push(SectionDelta {
                kind,
                new_len,
                new_hash,
                pages,
            });
        }
        r.finish()?;
        Ok(DeltaSnapshot {
            snapshot_version,
            base_epoch,
            epoch,
            base_root,
            root,
            page_size,
            removed,
            deltas,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SNAPSHOT_VERSION;

    const PS: usize = 16;

    fn snap(epoch: u64, sections: Vec<(SectionKind, Vec<u8>)>) -> Snapshot {
        Snapshot {
            version: SNAPSHOT_VERSION,
            epoch,
            sections: sections
                .into_iter()
                .map(|(kind, bytes)| Section { kind, bytes })
                .collect(),
        }
    }

    fn base_next() -> (Snapshot, Snapshot) {
        let base = snap(
            3,
            vec![
                (SectionKind::Pool(0), (0..200).map(|i| i as u8).collect()),
                (SectionKind::Pool(7), vec![9u8; 50]),
                (SectionKind::Ledger, vec![1, 2, 3]),
                (SectionKind::Aux(1), vec![5u8; 20]),
            ],
        );
        let mut pool0: Vec<u8> = (0..200).map(|i| i as u8).collect();
        pool0[100] ^= 0xAA; // one page dirtied
        let next = snap(
            4,
            vec![
                (SectionKind::Pool(0), pool0),
                (SectionKind::Pool(7), vec![9u8; 50]), // untouched
                (SectionKind::Pool(9), vec![4u8; 40]), // new pool
                (SectionKind::Ledger, vec![1, 2, 3, 4]),
                // Aux(1) removed
            ],
        );
        (base, next)
    }

    #[test]
    fn diff_apply_is_identity() {
        let (base, next) = base_next();
        let delta = DeltaSnapshot::diff(&base, &next, PS);
        assert_eq!(delta.base_root, base.root());
        assert_eq!(delta.root, next.root());
        assert_eq!(delta.removed, vec![SectionKind::Aux(1)]);
        // untouched Pool(7) ships nothing
        assert!(delta.deltas.iter().all(|d| d.kind != SectionKind::Pool(7)));
        let rebuilt = delta.apply(&base).unwrap();
        assert_eq!(rebuilt, next);
        assert_eq!(rebuilt.encode(), next.encode(), "byte-identical");
    }

    #[test]
    fn sparse_change_ships_one_page() {
        let (base, next) = base_next();
        let delta = DeltaSnapshot::diff(&base, &next, PS);
        let pool0 = delta
            .deltas
            .iter()
            .find(|d| d.kind == SectionKind::Pool(0))
            .unwrap();
        assert_eq!(pool0.pages.len(), 1, "one byte flip, one page");
        assert_eq!(pool0.pages[0].index, 100 / PS as u32);
    }

    #[test]
    fn wire_roundtrip_and_exact_len() {
        let (base, next) = base_next();
        let delta = DeltaSnapshot::diff(&base, &next, PS);
        let bytes = delta.encode();
        assert_eq!(bytes.len(), delta.encoded_len(), "size formula exact");
        assert_eq!(DeltaSnapshot::decode(&bytes).unwrap(), delta);
    }

    #[test]
    fn every_flipped_payload_byte_detected() {
        let (base, next) = base_next();
        let delta = DeltaSnapshot::diff(&base, &next, PS);
        let clean = delta.encode();
        for offset in 0..clean.len() {
            let mut bytes = clean.clone();
            bytes[offset] ^= 0x01;
            let survived = match DeltaSnapshot::decode(&bytes) {
                Err(_) => continue, // caught at decode
                Ok(d) => d,
            };
            // flips that survive decode (epochs, roots, lengths the
            // codec cannot check) must die on apply
            assert!(
                survived.apply(&base).is_err(),
                "flip at byte {offset} applied cleanly"
            );
        }
    }

    #[test]
    fn apply_refuses_wrong_base() {
        let (base, next) = base_next();
        let delta = DeltaSnapshot::diff(&base, &next, PS);
        let mut wrong = base.clone();
        wrong.sections[0].bytes[0] ^= 1;
        assert!(matches!(
            delta.apply(&wrong),
            Err(DeltaError::BaseRootMismatch { .. })
        ));
    }

    #[test]
    fn delta_against_empty_base_carries_everything() {
        let (base, _) = base_next();
        let empty = snap(0, vec![]);
        let delta = DeltaSnapshot::diff(&empty, &base, PS);
        assert_eq!(delta.deltas.len(), base.sections.len());
        assert_eq!(delta.apply(&empty).unwrap(), base);
    }
}
