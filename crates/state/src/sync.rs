//! Fast-sync: rebuilding a live node from a snapshot.
//!
//! [`restore`] decodes a verified [`Snapshot`] back into working state:
//! every pool is reconstructed through [`Pool::from_state`] — which
//! regenerates the derived acceleration structures (`tick_bitmap`,
//! `tick_cache`, swap scratch buffers) via `Pool::rebuild_tick_index`
//! instead of shipping them — plus the ledger and the deposit map. The
//! caller then catches up by applying the blocks sealed after the
//! snapshot epoch; the result is byte-identical to a node that replayed
//! full history.

use crate::codec::{CodecError, Decode};
use crate::snapshot::{SectionKind, Snapshot, SNAPSHOT_VERSION};
use ammboost_amm::engines::{Engine, EngineState};
use ammboost_amm::error::AmmError;
use ammboost_amm::pool::{Pool, PoolState};
use ammboost_amm::types::PoolId;
use ammboost_crypto::Address;
use ammboost_crypto::H256;
use ammboost_sidechain::ledger::{Ledger, LedgerState};
use ammboost_sidechain::summary::Deposits;
use std::fmt;

/// Why a restore failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// A section failed to decode.
    Codec(CodecError),
    /// A required section is missing from the snapshot.
    MissingSection(&'static str),
    /// A decoded pool state failed the AMM engine's validation.
    InvalidPool(AmmError),
    /// A pool-section decoder panicked. The panic is contained — the
    /// restore fails closed with this typed error instead of poisoning
    /// the process — and `section` names the offending pool id.
    SectionDecodeFailed {
        /// Pool id of the section whose decoder panicked.
        section: u32,
    },
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::Codec(e) => write!(f, "snapshot decode failed: {e}"),
            RestoreError::MissingSection(s) => write!(f, "snapshot missing section: {s}"),
            RestoreError::InvalidPool(e) => write!(f, "restored pool state invalid: {e}"),
            RestoreError::SectionDecodeFailed { section } => {
                write!(f, "pool section {section} decoder panicked")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

impl From<CodecError> for RestoreError {
    fn from(e: CodecError) -> Self {
        RestoreError::Codec(e)
    }
}

impl From<AmmError> for RestoreError {
    fn from(e: AmmError) -> Self {
        RestoreError::InvalidPool(e)
    }
}

/// A node state rebuilt from a snapshot, ready to catch up.
#[derive(Debug)]
pub struct RestoredState {
    /// The epoch the snapshot covered.
    pub epoch: u64,
    /// Restored engines (CL pools with regenerated tick indexes),
    /// ascending by id.
    pub pools: Vec<(PoolId, Engine)>,
    /// The restored ledger (tip, summaries, unpruned meta-blocks).
    pub ledger: Ledger,
    /// The restored deposit map.
    pub deposits: Deposits,
    /// The snapshot's state root, re-derived from the restored content.
    pub root: H256,
}

/// Rebuilds working node state from a snapshot.
///
/// # Errors
/// Fails when a required section is missing, malformed, or carries pool
/// state the AMM engine rejects.
pub fn restore(snapshot: &Snapshot) -> Result<RestoredState, RestoreError> {
    let sections: Vec<(u32, &crate::snapshot::Section)> = snapshot.pool_sections().collect();
    let pools = decode_pool_sections(snapshot.version, &sections)?;

    let ledger_section = snapshot
        .section(SectionKind::Ledger)
        .ok_or(RestoreError::MissingSection("ledger"))?;
    let ledger = Ledger::from_state(LedgerState::decode_all(&ledger_section.bytes)?);

    let deposits_section = snapshot
        .section(SectionKind::Deposits)
        .ok_or(RestoreError::MissingSection("deposits"))?;
    let entries = Vec::<(Address, (u128, u128))>::decode_all(&deposits_section.bytes)?;
    crate::codec::ensure_sorted_keys(&entries)?;
    let deposits = Deposits::from_sorted_entries(entries);

    Ok(RestoredState {
        epoch: snapshot.epoch,
        pools,
        ledger,
        deposits,
        root: snapshot.root(),
    })
}

/// Test hook: pool id whose decoder panics (simulates a decoder bug).
/// A plain atomic — not thread-local — because decoders run on scoped
/// worker threads.
#[cfg(test)]
static PANIC_ON_POOL: std::sync::atomic::AtomicI64 = std::sync::atomic::AtomicI64::new(-1);

/// Decodes and rebuilds every pool section. Sections are independent
/// byte ranges, so with more than one section on a multi-threaded host
/// the decode + `Pool::from_state` work (the cold-start bottleneck at
/// 10⁶-position scale) is spread across scoped threads; results are
/// reassembled in section order and the first error — in that same
/// order — wins, so the outcome is identical to the sequential path.
///
/// A decoder panic (a bug, not bad input — bad input yields `Err`) is
/// contained with `catch_unwind` on both the sequential and parallel
/// paths and surfaces as [`RestoreError::SectionDecodeFailed`]; the
/// scoped-thread join no longer re-raises, so one poisoned section can
/// never take down the process.
fn decode_pool_sections(
    version: u16,
    sections: &[(u32, &crate::snapshot::Section)],
) -> Result<Vec<(PoolId, Engine)>, RestoreError> {
    let decode_one = |&(id, section): &(u32, &crate::snapshot::Section)| {
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
            || -> Result<(PoolId, Engine), RestoreError> {
                #[cfg(test)]
                if PANIC_ON_POOL.load(std::sync::atomic::Ordering::Relaxed) == i64::from(id) {
                    panic!("injected decoder panic for pool {id}");
                }
                // v2 pool sections are bare CL state; v3 sections carry
                // the engine-kind tag up front
                let engine = if version < SNAPSHOT_VERSION {
                    let state = PoolState::decode_all(&section.bytes)?;
                    Engine::Cl(Pool::from_state(state)?)
                } else {
                    let state = EngineState::decode_all(&section.bytes)?;
                    Engine::from_state(state)?
                };
                Ok((PoolId(id), engine))
            },
        ));
        match attempt {
            Ok(result) => result,
            Err(_) => Err(RestoreError::SectionDecodeFailed { section: id }),
        }
    };
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(sections.len());
    if threads < 2 {
        return sections.iter().map(decode_one).collect();
    }
    let chunk_len = sections.len().div_ceil(threads);
    let decoded: Vec<Result<(PoolId, Engine), RestoreError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = sections
            .chunks(chunk_len)
            .map(|chunk| {
                (
                    chunk,
                    scope.spawn(move || chunk.iter().map(decode_one).collect::<Vec<_>>()),
                )
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|(chunk, h)| match h.join() {
                Ok(results) => results,
                // Each item is individually caught above, so a panicked
                // chunk thread is out-of-band (e.g. stack overflow in the
                // unwind machinery); fail its whole chunk closed.
                Err(_) => chunk
                    .iter()
                    .map(|&(id, _)| Err(RestoreError::SectionDecodeFailed { section: id }))
                    .collect(),
            })
            .collect()
    });
    decoded.into_iter().collect()
}

/// Convenience: decodes the serialized form (verifying magic, version and
/// state root) and restores in one step.
///
/// # Errors
/// Propagates decode/verification and restore failures.
pub fn restore_from_bytes(bytes: &[u8]) -> Result<RestoredState, RestoreError> {
    let snapshot = Snapshot::decode(bytes)?;
    restore(&snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::Checkpointer;
    use crate::codec::Encode;
    use ammboost_amm::engines::EngineKind;
    use ammboost_amm::pool::SwapKind;
    use ammboost_amm::types::PositionId;

    fn traded_engine(kind: EngineKind) -> Engine {
        let mut e = Engine::new_standard(kind);
        e.mint(
            PositionId::derive(&[b"sync"]),
            Address::from_index(1),
            -1200,
            1200,
            50_000_000,
            50_000_000,
        )
        .unwrap();
        e.swap(true, SwapKind::ExactInput(5_000_000), None).unwrap();
        e
    }

    fn traded_pool() -> Engine {
        traded_engine(EngineKind::ConcentratedLiquidity)
    }

    fn node_snapshot(pool: &Engine) -> Snapshot {
        let ledger = Ledger::new(H256::hash(b"genesis"));
        let mut deposits = Deposits::new();
        deposits.credit(Address::from_index(1), 100, 200).unwrap();
        Checkpointer::new()
            .checkpoint(3, &[(PoolId(0), pool)], &ledger, &deposits, vec![])
            .snapshot
    }

    #[test]
    fn restore_roundtrips_through_serialized_form() {
        let mut pool = traded_pool();
        let snapshot = node_snapshot(&pool);
        let mut restored = restore_from_bytes(&snapshot.encode()).unwrap();
        assert_eq!(restored.epoch, 3);
        assert_eq!(restored.root, snapshot.root());
        assert_eq!(restored.deposits.get(&Address::from_index(1)), (100, 200));
        let (_, rpool) = &mut restored.pools[0];
        // derived structures regenerated, behaviour bit-identical
        assert_eq!(
            rpool.as_cl().unwrap().tick_bitmap(),
            pool.as_cl().unwrap().tick_bitmap()
        );
        let a = pool.swap(false, SwapKind::ExactInput(777_777), None);
        let b = rpool.swap(false, SwapKind::ExactInput(777_777), None);
        assert_eq!(a, b);
        assert_eq!(rpool.export_state(), pool.export_state());
    }

    #[test]
    fn heterogeneous_fleet_restores_every_engine() {
        let engines = [
            traded_engine(EngineKind::ConcentratedLiquidity),
            traded_engine(EngineKind::ConstantProduct),
            traded_engine(EngineKind::Weighted),
        ];
        let pools: Vec<(PoolId, &Engine)> = engines
            .iter()
            .enumerate()
            .map(|(i, e)| (PoolId(i as u32), e))
            .collect();
        let ledger = Ledger::new(H256::hash(b"genesis"));
        let deposits = Deposits::new();
        let snapshot = Checkpointer::new()
            .checkpoint(9, &pools, &ledger, &deposits, vec![])
            .snapshot;
        let restored = restore_from_bytes(&snapshot.encode()).unwrap();
        assert_eq!(restored.pools.len(), 3);
        for ((_, rebuilt), original) in restored.pools.iter().zip(engines.iter()) {
            assert_eq!(rebuilt.kind(), original.kind());
            assert_eq!(rebuilt.export_state(), original.export_state());
        }
    }

    #[test]
    fn legacy_v2_sections_restore_as_cl_engines() {
        // hand-build a v2 snapshot: bare CL pool-state bytes, no engine
        // tag, legacy version in the header leaf
        let pool = traded_pool();
        let cl_bytes = pool.as_cl().unwrap().export_state().encode_to_vec();
        let ledger = Ledger::new(H256::hash(b"genesis"));
        let deposits = Deposits::new();
        let sections = vec![
            crate::snapshot::Section {
                kind: SectionKind::Pool(0),
                bytes: cl_bytes,
            },
            crate::snapshot::Section {
                kind: SectionKind::Ledger,
                bytes: ledger.export_state().encode_to_vec(),
            },
            crate::snapshot::Section {
                kind: SectionKind::Deposits,
                bytes: deposits.to_sorted_entries().encode_to_vec(),
            },
        ];
        let snapshot = Snapshot {
            version: crate::snapshot::LEGACY_SNAPSHOT_VERSION,
            epoch: 2,
            sections,
        };
        let restored = restore_from_bytes(&snapshot.encode()).unwrap();
        assert_eq!(restored.root, snapshot.root());
        let (_, engine) = &restored.pools[0];
        assert!(engine.as_cl().is_some(), "v2 sections are CL by definition");
        assert_eq!(engine.export_state(), pool.export_state());
    }

    #[test]
    fn missing_sections_reported() {
        let pool = traded_pool();
        let mut snapshot = node_snapshot(&pool);
        snapshot.sections.retain(|s| s.kind != SectionKind::Ledger);
        assert!(matches!(
            restore(&snapshot),
            Err(RestoreError::MissingSection("ledger"))
        ));
    }

    #[test]
    fn decoder_panic_contained_as_typed_error() {
        use std::sync::atomic::Ordering;
        let pool = traded_pool();
        let ledger = Ledger::new(H256::hash(b"genesis"));
        let deposits = Deposits::new();
        let pools: Vec<(PoolId, &Engine)> = (0..4).map(|i| (PoolId(7770 + i), &pool)).collect();
        let snapshot = Checkpointer::new()
            .checkpoint(1, &pools, &ledger, &deposits, vec![])
            .snapshot;
        PANIC_ON_POOL.store(7772, Ordering::Relaxed);
        let got = restore(&snapshot);
        PANIC_ON_POOL.store(-1, Ordering::Relaxed);
        assert_eq!(
            got.err().map(|e| e.to_string()),
            Some("pool section 7772 decoder panicked".into())
        );
        // with the hook cleared the same snapshot restores fine
        assert!(restore(&snapshot).is_ok());
    }

    #[test]
    fn corrupt_pool_section_fails_closed() {
        let pool = traded_pool();
        let mut snapshot = node_snapshot(&pool);
        snapshot.sections[0].bytes.truncate(10);
        assert!(matches!(
            restore(&snapshot),
            Err(RestoreError::Codec(CodecError::UnexpectedEof { .. }))
        ));
    }
}
