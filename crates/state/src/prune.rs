//! Snapshot-aware retention pruning.
//!
//! The sidechain already suppresses an epoch's meta-blocks once its sync
//! confirms on the mainchain (paper §IV-C). A snapshot strengthens the
//! invariant: any epoch covered by **both** a sealed summary block and a
//! committed snapshot needs no raw history at all — a restarting node
//! restores from the snapshot instead of replaying. [`RetentionPolicy`]
//! expresses how much raw history to keep beyond that point, and
//! [`prune_to_snapshot`] applies it, reporting the bytes reclaimed.

use ammboost_sidechain::ledger::Ledger;

/// How much raw meta-block history to retain behind the latest snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetentionPolicy {
    /// Number of fully-covered epochs whose meta-blocks are kept anyway
    /// (a safety margin for auditors replaying recent history). `0`
    /// (the default) prunes everything the snapshot covers.
    pub keep_epochs: u64,
}

/// What a pruning pass reclaimed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PruneReport {
    /// Epochs whose meta-blocks were dropped in this pass.
    pub epochs_pruned: u64,
    /// Bytes reclaimed in this pass.
    pub reclaimed_bytes: u64,
    /// The cutoff applied: meta-blocks of epochs `<=` this were eligible.
    pub cutoff_epoch: u64,
}

/// Drops the meta-blocks of every epoch that is covered by a sealed
/// summary **and** by the snapshot taken at `snapshot_epoch`, minus the
/// policy's safety margin. Epochs without a summary are never touched
/// (the ledger refuses; a summary-less epoch has no durable record yet).
pub fn prune_to_snapshot(
    ledger: &mut Ledger,
    snapshot_epoch: u64,
    policy: RetentionPolicy,
) -> PruneReport {
    let covered = snapshot_epoch.min(ledger.last_summary_epoch());
    let cutoff = covered.saturating_sub(policy.keep_epochs);
    let mut report = PruneReport {
        cutoff_epoch: cutoff,
        ..PruneReport::default()
    };
    for epoch in ledger.meta_epochs() {
        if epoch > cutoff || !ledger.has_summary(epoch) {
            continue;
        }
        // deliberate invariant-expect: `prune_epoch` only fails for an
        // unsealed epoch, and the `has_summary` guard above filters those
        let freed = ledger
            .prune_epoch(epoch)
            .expect("summary existence checked above");
        if freed > 0 {
            report.epochs_pruned += 1;
            report.reclaimed_bytes += freed;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ammboost_amm::tx::{AmmTx, SwapIntent, SwapTx};
    use ammboost_amm::types::PoolId;
    use ammboost_crypto::{Address, H256};
    use ammboost_sidechain::block::{ExecutedTx, MetaBlock, SummaryBlock, TxEffect};
    use ammboost_sidechain::summary::PoolUpdate;

    fn tx(i: u64) -> ExecutedTx {
        ExecutedTx {
            tx: AmmTx::Swap(SwapTx {
                user: Address::from_index(i),
                pool: PoolId(0),
                zero_for_one: true,
                intent: SwapIntent::ExactInput {
                    amount_in: 10,
                    min_amount_out: 0,
                },
                sqrt_price_limit: None,
                deadline_round: 100,
            }),
            wire_size: 1000,
            effect: TxEffect::Swap {
                amount_in: 10,
                amount_out: 9,
                zero_for_one: true,
            },
        }
    }

    /// A ledger with `epochs` closed epochs of 2 meta-blocks each.
    fn ledger_with(epochs: u64) -> Ledger {
        let mut l = Ledger::new(H256::hash(b"genesis"));
        for e in 1..=epochs {
            for round in 0..2 {
                let b = MetaBlock::new(e, round, l.tip(), vec![tx(e * 10 + round)]);
                l.append_meta(b).unwrap();
            }
            let s = SummaryBlock {
                epoch: e,
                parent: l.tip(),
                meta_refs: l.meta_blocks(e).iter().map(|m| m.id()).collect(),
                payouts: vec![],
                positions: vec![],
                pools: vec![PoolUpdate {
                    pool: PoolId(0),
                    reserve0: 0,
                    reserve1: 0,
                }],
            };
            l.append_summary(s).unwrap();
        }
        l
    }

    #[test]
    fn prunes_everything_snapshot_covers() {
        let mut l = ledger_with(4);
        let before = l.size_bytes();
        let report = prune_to_snapshot(&mut l, 4, RetentionPolicy::default());
        assert_eq!(report.epochs_pruned, 4);
        assert!(report.reclaimed_bytes > 0);
        assert_eq!(l.size_bytes(), before - report.reclaimed_bytes);
        assert!(l.meta_epochs().is_empty());
        // permanent summaries survive
        assert_eq!(l.summaries().len(), 4);
    }

    #[test]
    fn keep_epochs_retains_a_margin() {
        let mut l = ledger_with(5);
        let report = prune_to_snapshot(&mut l, 5, RetentionPolicy { keep_epochs: 2 });
        assert_eq!(report.cutoff_epoch, 3);
        assert_eq!(report.epochs_pruned, 3);
        assert_eq!(l.meta_epochs(), vec![4, 5]);
    }

    #[test]
    fn snapshot_epoch_bounds_the_cutoff() {
        // snapshot only covers epoch 2; epochs 3..5 keep their history
        let mut l = ledger_with(5);
        let report = prune_to_snapshot(&mut l, 2, RetentionPolicy::default());
        assert_eq!(report.epochs_pruned, 2);
        assert_eq!(l.meta_epochs(), vec![3, 4, 5]);
    }

    #[test]
    fn summary_less_epoch_is_never_pruned() {
        // epoch 3 is still open (no summary yet): a snapshot claiming to
        // cover it must not destroy its only record
        let mut l = ledger_with(2);
        let open = MetaBlock::new(3, 0, l.tip(), vec![tx(999)]);
        l.append_meta(open).unwrap();
        let report = prune_to_snapshot(&mut l, 3, RetentionPolicy::default());
        assert_eq!(report.epochs_pruned, 2, "only the sealed epochs go");
        assert_eq!(l.meta_epochs(), vec![3]);
    }

    #[test]
    fn second_pass_is_a_noop() {
        let mut l = ledger_with(3);
        prune_to_snapshot(&mut l, 3, RetentionPolicy::default());
        let again = prune_to_snapshot(&mut l, 3, RetentionPolicy::default());
        assert_eq!(again.epochs_pruned, 0);
        assert_eq!(again.reclaimed_bytes, 0);
    }
}
