//! Incremental checkpointing with dirty-pool tracking and delta
//! emission.
//!
//! A [`Checkpointer`] owns the encoded form of every section from the
//! previous checkpoint. Pools are re-encoded only when they were marked
//! dirty since; clean pools reuse their cached bytes, so the per-epoch
//! cost of a snapshot scales with the *touched* state, not the total
//! state — the incremental analogue of the paper's "commit summaries,
//! not history".
//!
//! On top of the byte cache the checkpointer is **delta-granular**: once
//! the caller confirms a commit landed ([`Checkpointer::note_committed`]),
//! the next stage also diffs every re-encoded section against its prior
//! bytes page by page (pure memcmp — no hashing in the stage half) and
//! the commit emits a [`DeltaSnapshot`] alongside the full snapshot:
//! base root, dirty pages with sub-leaf hashes, removed sections. The
//! journal persists the delta; the full snapshot stays the source of
//! truth the delta is proven against.

use crate::codec::Encode;
use crate::delta::{DeltaSnapshot, SectionDelta};
use crate::pages::{diff_pages, page_count, seal_pages, DEFAULT_PAGE_SIZE};
use crate::snapshot::{
    root_from_section_hashes, section_hashes, Section, SectionKind, Snapshot, SNAPSHOT_VERSION,
};
use ammboost_amm::engines::Engine;
use ammboost_amm::types::PoolId;
use ammboost_crypto::H256;
use ammboost_sidechain::ledger::Ledger;
use ammboost_sidechain::summary::Deposits;
use std::collections::{BTreeMap, BTreeSet};

/// What one checkpoint cost and produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Epoch the snapshot covers.
    pub epoch: u64,
    /// Pools included.
    pub pools_total: usize,
    /// Pools that were dirty and had to be re-encoded.
    pub pools_reencoded: usize,
    /// Pools whose cached encoding was reused verbatim.
    pub pools_reused: usize,
    /// Full serialized snapshot size in bytes.
    pub snapshot_bytes: u64,
    /// The snapshot's state root.
    pub root: H256,
    /// Pages across all sections at the checkpointer's page size.
    pub pages_total: usize,
    /// Dirty pages shipped in the emitted delta (0 without a delta).
    pub pages_dirty: usize,
    /// Serialized size of the emitted delta (0 without a delta).
    pub delta_bytes: u64,
}

/// Everything one checkpoint produced: the full snapshot, the optional
/// page-granular delta against the previous *committed* checkpoint, and
/// the stats.
#[derive(Clone, Debug)]
pub struct CheckpointOutput {
    /// The full Merkle-committed snapshot.
    pub snapshot: Snapshot,
    /// The delta against the last committed snapshot — present from the
    /// second checkpoint on, once [`Checkpointer::note_committed`]
    /// confirmed the base landed.
    pub delta: Option<DeltaSnapshot>,
    /// Cost and size accounting.
    pub stats: CheckpointStats,
}

/// Raw page diffs for one changed section: `(page index, page bytes)`.
type PageDiffs = Vec<(u32, Vec<u8>)>;

/// The page diffs collected during staging, before any hashing.
#[derive(Debug)]
struct StagedDelta {
    base_epoch: u64,
    base_root: H256,
    removed: Vec<SectionKind>,
    /// `(section index, raw page diffs)` for every changed section.
    entries: Vec<(usize, PageDiffs)>,
}

/// The synchronous half of a checkpoint: every section encoded, dirty
/// flags consumed, cache refreshed, page diffs cut — everything that
/// must observe the live node state. What remains
/// ([`StagedCheckpoint::commit`]) is pure hashing and assembly over data
/// this struct *owns*, so it can run on a worker thread while the next
/// epoch already mutates the pools.
#[derive(Debug)]
pub struct StagedCheckpoint {
    epoch: u64,
    sections: Vec<Section>,
    pools_total: usize,
    pools_reencoded: usize,
    pools_reused: usize,
    page_size: usize,
    staged_delta: Option<StagedDelta>,
}

impl StagedCheckpoint {
    /// The epoch this stage covers.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Finishes the checkpoint: Merkle-hashes the staged sections once
    /// (shared between the root and the delta's section hashes),
    /// assembles the [`Snapshot`], seals the staged page diffs into a
    /// [`DeltaSnapshot`] when a confirmed base exists, and reports
    /// stats. Deterministic in the staged data alone — committing on
    /// another thread, or an epoch later, yields byte-identical output
    /// to an inline commit.
    pub fn commit(self) -> CheckpointOutput {
        let hashes = section_hashes(&self.sections);
        let root = root_from_section_hashes(SNAPSHOT_VERSION, self.epoch, &hashes);
        let pages_total: usize = self
            .sections
            .iter()
            .map(|s| page_count(s.bytes.len(), self.page_size))
            .sum();
        let snapshot = Snapshot {
            version: SNAPSHOT_VERSION,
            epoch: self.epoch,
            sections: self.sections,
        };
        let delta = self.staged_delta.map(|sd| {
            let deltas = sd
                .entries
                .into_iter()
                .map(|(idx, raw)| {
                    let section = &snapshot.sections[idx];
                    SectionDelta {
                        kind: section.kind,
                        new_len: section.bytes.len() as u32,
                        new_hash: hashes[idx],
                        pages: seal_pages(section.kind, raw),
                    }
                })
                .collect();
            DeltaSnapshot {
                snapshot_version: SNAPSHOT_VERSION,
                base_epoch: sd.base_epoch,
                epoch: snapshot.epoch,
                base_root: sd.base_root,
                root,
                page_size: self.page_size as u32,
                removed: sd.removed,
                deltas,
            }
        });
        let stats = CheckpointStats {
            epoch: snapshot.epoch,
            pools_total: self.pools_total,
            pools_reencoded: self.pools_reencoded,
            pools_reused: self.pools_reused,
            // exact wire sizes without serializing — the section hashes
            // above are the only hashing a checkpoint pays here
            snapshot_bytes: snapshot.encoded_len() as u64,
            root,
            pages_total,
            pages_dirty: delta.as_ref().map_or(0, DeltaSnapshot::pages),
            delta_bytes: delta.as_ref().map_or(0, |d| d.encoded_len() as u64),
        };
        CheckpointOutput {
            snapshot,
            delta,
            stats,
        }
    }
}

/// Incremental snapshot producer. One per node; survives across epochs so
/// the section caches stay warm.
#[derive(Debug)]
pub struct Checkpointer {
    /// Encoded pool sections from the last stage.
    cache: BTreeMap<u32, Vec<u8>>,
    /// Encoded non-pool sections (ledger, deposits, aux) from the last
    /// stage.
    other_cache: BTreeMap<SectionKind, Vec<u8>>,
    /// Pools mutated since their cached encoding was produced.
    dirty: BTreeSet<u32>,
    /// Epoch the caches reflect (the last staged epoch).
    cache_epoch: Option<u64>,
    /// Last commit the caller confirmed, when it matches `cache_epoch` —
    /// the base the next stage may diff against.
    committed: Option<(u64, H256)>,
    /// Page size deltas are cut at.
    page_size: usize,
}

impl Default for Checkpointer {
    fn default() -> Checkpointer {
        Checkpointer::new()
    }
}

impl Checkpointer {
    /// A checkpointer with an empty (all-dirty) cache and the default
    /// page size.
    pub fn new() -> Checkpointer {
        Checkpointer::with_page_size(DEFAULT_PAGE_SIZE)
    }

    /// A checkpointer cutting deltas at `page_size` bytes.
    ///
    /// # Panics
    /// Panics on a zero page size.
    pub fn with_page_size(page_size: usize) -> Checkpointer {
        assert!(page_size > 0, "page size must be positive");
        Checkpointer {
            cache: BTreeMap::new(),
            other_cache: BTreeMap::new(),
            dirty: BTreeSet::new(),
            cache_epoch: None,
            committed: None,
            page_size,
        }
    }

    /// Page size deltas are cut at.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Records that `pool` changed since the last checkpoint; its next
    /// snapshot section will be re-encoded.
    pub fn mark_dirty(&mut self, pool: PoolId) {
        self.dirty.insert(pool.0);
    }

    /// Whether `pool` must be re-encoded at the next checkpoint (an
    /// uncached pool counts as dirty).
    pub fn is_dirty(&self, pool: PoolId) -> bool {
        self.dirty.contains(&pool.0) || !self.cache.contains_key(&pool.0)
    }

    /// Confirms that the checkpoint staged at `epoch` was committed and
    /// installed with `root`. The *next* stage will then emit a delta
    /// against it. A note for any epoch other than the last staged one
    /// is ignored (the caches no longer reflect that snapshot), which
    /// fails safe: no delta, full snapshot only.
    pub fn note_committed(&mut self, epoch: u64, root: H256) {
        if self.cache_epoch == Some(epoch) {
            self.committed = Some((epoch, root));
        }
    }

    /// Builds a Merkle-committed snapshot of the full node state at
    /// `epoch` — every pool engine (cached bytes reused unless dirty),
    /// the ledger, the deposit map, and any auxiliary sections the
    /// caller provides (sorted by tag for canonical ordering) — plus,
    /// from the second call on, the page-granular delta against the
    /// previous checkpoint. Pool sections are engine-tagged (format v3),
    /// so a heterogeneous fleet snapshots uniformly.
    ///
    /// Equivalent to [`Checkpointer::stage`], [`StagedCheckpoint::commit`]
    /// and [`Checkpointer::note_committed`] in sequence.
    pub fn checkpoint(
        &mut self,
        epoch: u64,
        pools: &[(PoolId, &Engine)],
        ledger: &Ledger,
        deposits: &Deposits,
        aux: Vec<(u8, Vec<u8>)>,
    ) -> CheckpointOutput {
        let output = self.stage(epoch, pools, ledger, deposits, aux).commit();
        self.note_committed(output.stats.epoch, output.stats.root);
        output
    }

    /// The encode-only half of [`Checkpointer::checkpoint`]: consumes
    /// dirty flags, (re-)encodes every section, refreshes the caches and
    /// cuts page diffs against the prior bytes (memcmp only), but
    /// performs **no hashing**. The returned [`StagedCheckpoint`] owns
    /// its sections, so its `commit` — the Merkle work — can be deferred
    /// or moved to another thread while the live state moves on.
    pub fn stage(
        &mut self,
        epoch: u64,
        pools: &[(PoolId, &Engine)],
        ledger: &Ledger,
        deposits: &Deposits,
        mut aux: Vec<(u8, Vec<u8>)>,
    ) -> StagedCheckpoint {
        // a delta base exists iff the caller confirmed the commit of
        // exactly the stage the caches reflect
        let base = match self.committed.take() {
            Some((e, root)) if self.cache_epoch == Some(e) => Some((e, root)),
            _ => None,
        };
        let prev_kinds: BTreeSet<SectionKind> = self
            .cache
            .keys()
            .map(|id| SectionKind::Pool(*id))
            .chain(self.other_cache.keys().copied())
            .collect();

        let mut sections = Vec::with_capacity(pools.len() + 2 + aux.len());
        let mut entries: Vec<(usize, PageDiffs)> = Vec::new();
        let mut reencoded = 0usize;
        let mut reused = 0usize;

        let mut sorted: Vec<&(PoolId, &Engine)> = pools.iter().collect();
        sorted.sort_by_key(|(id, _)| *id);
        for (id, pool) in sorted {
            let bytes = if self.is_dirty(*id) {
                reencoded += 1;
                let bytes = pool.export_state().encode_to_vec();
                if base.is_some() {
                    let old = self.cache.get(&id.0).map_or(&[] as &[u8], Vec::as_slice);
                    let raw = diff_pages(old, &bytes, self.page_size);
                    if !raw.is_empty() || old.len() != bytes.len() {
                        entries.push((sections.len(), raw));
                    }
                }
                self.cache.insert(id.0, bytes.clone());
                self.dirty.remove(&id.0);
                bytes
            } else {
                // clean pools reuse their cached bytes verbatim, so they
                // can never contribute a page diff
                reused += 1;
                self.cache[&id.0].clone()
            };
            sections.push(Section {
                kind: SectionKind::Pool(id.0),
                bytes,
            });
        }
        // drop cache entries for pools that no longer exist
        let live: BTreeSet<u32> = pools.iter().map(|(id, _)| id.0).collect();
        self.cache.retain(|id, _| live.contains(id));

        let mut others = vec![
            (SectionKind::Ledger, ledger.export_state().encode_to_vec()),
            (
                SectionKind::Deposits,
                deposits.to_sorted_entries().encode_to_vec(),
            ),
        ];
        aux.sort_by_key(|(tag, _)| *tag);
        others.extend(
            aux.into_iter()
                .map(|(tag, bytes)| (SectionKind::Aux(tag), bytes)),
        );
        let live_others: BTreeSet<SectionKind> = others.iter().map(|(kind, _)| *kind).collect();
        for (kind, bytes) in others {
            if base.is_some() {
                let old = self
                    .other_cache
                    .get(&kind)
                    .map_or(&[] as &[u8], Vec::as_slice);
                if old != bytes.as_slice() {
                    let raw = diff_pages(old, &bytes, self.page_size);
                    entries.push((sections.len(), raw));
                }
            }
            self.other_cache.insert(kind, bytes.clone());
            sections.push(Section { kind, bytes });
        }
        self.other_cache
            .retain(|kind, _| live_others.contains(kind));

        let staged_delta = base.map(|(base_epoch, base_root)| {
            let current: BTreeSet<SectionKind> = sections.iter().map(|s| s.kind).collect();
            StagedDelta {
                base_epoch,
                base_root,
                removed: prev_kinds.difference(&current).copied().collect(),
                entries,
            }
        });

        self.cache_epoch = Some(epoch);
        StagedCheckpoint {
            epoch,
            sections,
            pools_total: pools.len(),
            pools_reencoded: reencoded,
            pools_reused: reused,
            page_size: self.page_size,
            staged_delta,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ammboost_amm::engines::EngineKind;
    use ammboost_amm::pool::SwapKind;
    use ammboost_amm::types::PositionId;
    use ammboost_crypto::Address;

    fn pool_with_liquidity(salt: u64) -> Engine {
        pool_of_kind(EngineKind::ConcentratedLiquidity, salt)
    }

    fn pool_of_kind(kind: EngineKind, salt: u64) -> Engine {
        let mut p = Engine::new_standard(kind);
        p.mint(
            PositionId::derive(&[b"ckpt", &salt.to_be_bytes()]),
            Address::from_index(salt),
            -600,
            600,
            10_000_000,
            10_000_000,
        )
        .unwrap();
        p
    }

    fn fixtures() -> (Ledger, Deposits) {
        (Ledger::new(H256::hash(b"genesis")), Deposits::new())
    }

    #[test]
    fn clean_pools_reuse_cached_encoding() {
        let pool_a = pool_with_liquidity(1);
        let mut pool_b = pool_with_liquidity(2);
        let (ledger, deposits) = fixtures();
        let mut cp = Checkpointer::new();

        let pools = [(PoolId(0), &pool_a), (PoolId(1), &pool_b)];
        let out1 = cp.checkpoint(1, &pools, &ledger, &deposits, vec![]);
        assert_eq!(
            out1.stats.pools_reencoded, 2,
            "first checkpoint encodes all"
        );
        assert!(out1.delta.is_none(), "nothing to diff against");

        // only pool 1 trades
        pool_b
            .swap(true, SwapKind::ExactInput(1_000), None)
            .unwrap();
        cp.mark_dirty(PoolId(1));
        let pools = [(PoolId(0), &pool_a), (PoolId(1), &pool_b)];
        let out2 = cp.checkpoint(2, &pools, &ledger, &deposits, vec![]);
        assert_eq!(out2.stats.pools_reencoded, 1);
        assert_eq!(out2.stats.pools_reused, 1);

        // the incremental snapshot matches a from-scratch one exactly
        let fresh = Checkpointer::new().checkpoint(2, &pools, &ledger, &deposits, vec![]);
        assert_eq!(out2.snapshot, fresh.snapshot);
        assert_eq!(out2.stats.root, fresh.stats.root);
    }

    #[test]
    fn dirty_flag_forces_reencode_and_root_changes() {
        let mut pool = pool_with_liquidity(1);
        let (ledger, deposits) = fixtures();
        let mut cp = Checkpointer::new();
        let out1 = cp.checkpoint(1, &[(PoolId(0), &pool)], &ledger, &deposits, vec![]);

        pool.swap(true, SwapKind::ExactInput(50_000), None).unwrap();
        cp.mark_dirty(PoolId(0));
        let out2 = cp.checkpoint(2, &[(PoolId(0), &pool)], &ledger, &deposits, vec![]);
        assert_eq!(out2.stats.pools_reencoded, 1);
        assert_ne!(
            out1.stats.root, out2.stats.root,
            "state change must move the root"
        );
    }

    #[test]
    fn stale_cache_without_dirty_mark_reuses_bytes() {
        // contract check: the cache answers for un-marked pools even if
        // the caller mutated them behind the checkpointer's back
        let mut pool = pool_with_liquidity(1);
        let (ledger, deposits) = fixtures();
        let mut cp = Checkpointer::new();
        let out1 = cp.checkpoint(1, &[(PoolId(0), &pool)], &ledger, &deposits, vec![]);
        pool.swap(true, SwapKind::ExactInput(50_000), None).unwrap();
        let out2 = cp.checkpoint(2, &[(PoolId(0), &pool)], &ledger, &deposits, vec![]);
        assert_eq!(out2.stats.pools_reused, 1);
        assert_eq!(
            out1.snapshot.section(SectionKind::Pool(0)),
            out2.snapshot.section(SectionKind::Pool(0))
        );
    }

    #[test]
    fn heterogeneous_fleet_checkpoints_with_engine_tags() {
        let cl = pool_of_kind(EngineKind::ConcentratedLiquidity, 1);
        let cp_pool = pool_of_kind(EngineKind::ConstantProduct, 2);
        let weighted = pool_of_kind(EngineKind::Weighted, 3);
        let (ledger, deposits) = fixtures();
        let pools = [
            (PoolId(0), &cl),
            (PoolId(1), &cp_pool),
            (PoolId(2), &weighted),
        ];
        let out = Checkpointer::new().checkpoint(4, &pools, &ledger, &deposits, vec![]);
        assert_eq!(out.snapshot.version, SNAPSHOT_VERSION);
        assert_eq!(out.stats.pools_reencoded, 3);
        // every pool section leads with its engine-kind tag
        for ((_, engine), (_, section)) in pools.iter().zip(out.snapshot.pool_sections()) {
            assert_eq!(section.bytes[0], engine.kind().tag());
        }
    }

    #[test]
    fn deferred_commit_is_byte_identical_to_immediate_checkpoint() {
        // stage at epoch 2, keep mutating the pool, then commit: the
        // staged sections own their bytes, so the late commit must equal
        // an immediate checkpoint taken at stage time — the contract the
        // pipelined checkpoint mode rests on
        let mut pool = pool_with_liquidity(1);
        let (ledger, deposits) = fixtures();
        let pools = [(PoolId(0), &pool)];

        let mut cp_now = Checkpointer::new();
        let now = cp_now.checkpoint(2, &pools, &ledger, &deposits, vec![]);

        let mut cp_late = Checkpointer::new();
        let staged = cp_late.stage(2, &[(PoolId(0), &pool)], &ledger, &deposits, vec![]);
        assert_eq!(staged.epoch(), 2);
        pool.swap(true, SwapKind::ExactInput(123_456), None)
            .unwrap();
        let late = staged.commit();

        assert_eq!(late.snapshot, now.snapshot);
        assert_eq!(late.stats, now.stats);
        assert_eq!(
            late.snapshot.encode(),
            now.snapshot.encode(),
            "wire bytes diverge"
        );
    }

    #[test]
    fn aux_sections_sorted_by_tag() {
        let pool = pool_with_liquidity(1);
        let (ledger, deposits) = fixtures();
        let out = Checkpointer::new().checkpoint(
            1,
            &[(PoolId(0), &pool)],
            &ledger,
            &deposits,
            vec![(9, vec![9]), (1, vec![1])],
        );
        let tags: Vec<SectionKind> = out.snapshot.sections.iter().map(|s| s.kind).collect();
        assert_eq!(
            tags,
            vec![
                SectionKind::Pool(0),
                SectionKind::Ledger,
                SectionKind::Deposits,
                SectionKind::Aux(1),
                SectionKind::Aux(9),
            ]
        );
    }

    #[test]
    fn second_checkpoint_emits_delta_that_applies_cleanly() {
        let pool_a = pool_with_liquidity(1);
        let mut pool_b = pool_with_liquidity(2);
        let (ledger, deposits) = fixtures();
        let mut cp = Checkpointer::new();
        let pools = [(PoolId(0), &pool_a), (PoolId(1), &pool_b)];
        let out1 = cp.checkpoint(1, &pools, &ledger, &deposits, vec![]);

        pool_b
            .swap(true, SwapKind::ExactInput(5_000), None)
            .unwrap();
        cp.mark_dirty(PoolId(1));
        let pools = [(PoolId(0), &pool_a), (PoolId(1), &pool_b)];
        let out2 = cp.checkpoint(2, &pools, &ledger, &deposits, vec![]);

        let delta = out2.delta.expect("second checkpoint diffs");
        assert_eq!(delta.base_root, out1.stats.root);
        assert_eq!(delta.base_epoch, 1);
        // the clean pool contributes nothing
        assert!(delta.deltas.iter().all(|d| d.kind != SectionKind::Pool(0)));
        assert_eq!(delta.apply(&out1.snapshot).unwrap(), out2.snapshot);
        assert_eq!(out2.stats.pages_dirty, delta.pages());
        assert_eq!(out2.stats.delta_bytes, delta.encoded_len() as u64);
        assert!(
            out2.stats.delta_bytes < out2.stats.snapshot_bytes,
            "delta must undercut the full snapshot"
        );
    }

    #[test]
    fn removed_pool_and_aux_listed_in_delta() {
        let pool_a = pool_with_liquidity(1);
        let pool_b = pool_with_liquidity(2);
        let (ledger, deposits) = fixtures();
        let mut cp = Checkpointer::new();
        let pools = [(PoolId(0), &pool_a), (PoolId(1), &pool_b)];
        let out1 = cp.checkpoint(1, &pools, &ledger, &deposits, vec![(4, vec![1, 2])]);

        // pool 1 and the aux section disappear
        let pools = [(PoolId(0), &pool_a)];
        let out2 = cp.checkpoint(2, &pools, &ledger, &deposits, vec![]);
        let delta = out2.delta.expect("delta present");
        assert_eq!(
            delta.removed,
            vec![SectionKind::Pool(1), SectionKind::Aux(4)]
        );
        assert_eq!(delta.apply(&out1.snapshot).unwrap(), out2.snapshot);
    }

    #[test]
    fn unconfirmed_commit_yields_no_delta() {
        let pool = pool_with_liquidity(1);
        let (ledger, deposits) = fixtures();
        let mut cp = Checkpointer::new();
        // raw stage/commit without note_committed: the checkpointer must
        // not guess that the base landed
        let _ = cp
            .stage(1, &[(PoolId(0), &pool)], &ledger, &deposits, vec![])
            .commit();
        let out2 = cp
            .stage(2, &[(PoolId(0), &pool)], &ledger, &deposits, vec![])
            .commit();
        assert!(out2.delta.is_none());
    }

    #[test]
    fn stale_note_is_ignored() {
        let pool = pool_with_liquidity(1);
        let (ledger, deposits) = fixtures();
        let mut cp = Checkpointer::new();
        let out1 = cp
            .stage(1, &[(PoolId(0), &pool)], &ledger, &deposits, vec![])
            .commit();
        // a second stage runs before the note arrives: the caches moved
        // on, so noting epoch 1 must not produce an epoch-1-based delta
        let _ = cp
            .stage(2, &[(PoolId(0), &pool)], &ledger, &deposits, vec![])
            .commit();
        cp.note_committed(1, out1.stats.root);
        let out3 = cp
            .stage(3, &[(PoolId(0), &pool)], &ledger, &deposits, vec![])
            .commit();
        assert!(out3.delta.is_none(), "stale note must fail safe");
    }

    #[test]
    fn delta_chain_across_epochs_matches_full_snapshots() {
        let mut pool = pool_with_liquidity(1);
        let (ledger, deposits) = fixtures();
        let mut cp = Checkpointer::new();
        let mut current = cp
            .checkpoint(0, &[(PoolId(0), &pool)], &ledger, &deposits, vec![])
            .snapshot;
        for epoch in 1..5u64 {
            pool.swap(true, SwapKind::ExactInput(10_000 * epoch as u128), None)
                .unwrap();
            cp.mark_dirty(PoolId(0));
            let out = cp.checkpoint(epoch, &[(PoolId(0), &pool)], &ledger, &deposits, vec![]);
            let delta = out.delta.expect("chained delta");
            // wire round-trip, then apply onto the running base
            let decoded = DeltaSnapshot::decode(&delta.encode()).unwrap();
            current = decoded.apply(&current).unwrap();
            assert_eq!(current, out.snapshot, "epoch {epoch}");
            assert_eq!(current.encode(), out.snapshot.encode());
        }
    }
}
