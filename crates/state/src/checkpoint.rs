//! Incremental checkpointing with dirty-pool tracking.
//!
//! A [`Checkpointer`] owns the encoded form of every pool section from
//! the previous checkpoint. Pools are re-encoded only when they were
//! marked dirty since; clean pools reuse their cached bytes, so the
//! per-epoch cost of a snapshot scales with the *touched* state, not the
//! total state — the incremental analogue of the paper's "commit
//! summaries, not history".

use crate::codec::Encode;
use crate::snapshot::{Section, SectionKind, Snapshot, SNAPSHOT_VERSION};
use ammboost_amm::engines::Engine;
use ammboost_amm::types::PoolId;
use ammboost_crypto::H256;
use ammboost_sidechain::ledger::Ledger;
use ammboost_sidechain::summary::Deposits;
use std::collections::{BTreeMap, BTreeSet};

/// What one checkpoint cost and produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Epoch the snapshot covers.
    pub epoch: u64,
    /// Pools included.
    pub pools_total: usize,
    /// Pools that were dirty and had to be re-encoded.
    pub pools_reencoded: usize,
    /// Pools whose cached encoding was reused verbatim.
    pub pools_reused: usize,
    /// Full serialized snapshot size in bytes.
    pub snapshot_bytes: u64,
    /// The snapshot's state root.
    pub root: H256,
}

/// The synchronous half of a checkpoint: every section encoded, dirty
/// flags consumed, cache refreshed — everything that must observe the
/// live node state. What remains ([`StagedCheckpoint::commit`]) is pure
/// hashing and assembly over data this struct *owns*, so it can run on a
/// worker thread while the next epoch already mutates the pools.
#[derive(Debug)]
pub struct StagedCheckpoint {
    epoch: u64,
    sections: Vec<Section>,
    pools_total: usize,
    pools_reencoded: usize,
    pools_reused: usize,
}

impl StagedCheckpoint {
    /// The epoch this stage covers.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Finishes the checkpoint: Merkle-hashes the staged sections and
    /// assembles the [`Snapshot`] plus its stats. Deterministic in the
    /// staged data alone — committing on another thread, or an epoch
    /// later, yields byte-identical output to an inline commit.
    pub fn commit(self) -> (Snapshot, CheckpointStats) {
        let snapshot = Snapshot {
            version: SNAPSHOT_VERSION,
            epoch: self.epoch,
            sections: self.sections,
        };
        let stats = CheckpointStats {
            epoch: self.epoch,
            pools_total: self.pools_total,
            pools_reencoded: self.pools_reencoded,
            pools_reused: self.pools_reused,
            // exact wire size without serializing — the Merkle build for
            // the root is the only hashing a checkpoint pays here
            snapshot_bytes: snapshot.encoded_len() as u64,
            root: snapshot.root(),
        };
        (snapshot, stats)
    }
}

/// Incremental snapshot producer. One per node; survives across epochs so
/// the pool-section cache stays warm.
#[derive(Debug, Default)]
pub struct Checkpointer {
    /// Encoded pool sections from the last checkpoint.
    cache: BTreeMap<u32, Vec<u8>>,
    /// Pools mutated since their cached encoding was produced.
    dirty: BTreeSet<u32>,
}

impl Checkpointer {
    /// A checkpointer with an empty (all-dirty) cache.
    pub fn new() -> Checkpointer {
        Checkpointer::default()
    }

    /// Records that `pool` changed since the last checkpoint; its next
    /// snapshot section will be re-encoded.
    pub fn mark_dirty(&mut self, pool: PoolId) {
        self.dirty.insert(pool.0);
    }

    /// Whether `pool` must be re-encoded at the next checkpoint (an
    /// uncached pool counts as dirty).
    pub fn is_dirty(&self, pool: PoolId) -> bool {
        self.dirty.contains(&pool.0) || !self.cache.contains_key(&pool.0)
    }

    /// Builds a Merkle-committed snapshot of the full node state at
    /// `epoch`: every pool engine (cached bytes reused unless dirty), the
    /// ledger, the deposit map, and any auxiliary sections the caller
    /// provides (sorted by tag for canonical ordering). Pool sections are
    /// engine-tagged (format v3), so a heterogeneous fleet snapshots
    /// uniformly.
    ///
    /// Equivalent to [`Checkpointer::stage`] followed immediately by
    /// [`StagedCheckpoint::commit`].
    pub fn checkpoint(
        &mut self,
        epoch: u64,
        pools: &[(PoolId, &Engine)],
        ledger: &Ledger,
        deposits: &Deposits,
        aux: Vec<(u8, Vec<u8>)>,
    ) -> (Snapshot, CheckpointStats) {
        self.stage(epoch, pools, ledger, deposits, aux).commit()
    }

    /// The encode-only half of [`Checkpointer::checkpoint`]: consumes
    /// dirty flags, (re-)encodes every section and refreshes the cache,
    /// but performs **no hashing**. The returned [`StagedCheckpoint`]
    /// owns its sections, so its `commit` — the Merkle work — can be
    /// deferred or moved to another thread while the live state moves on.
    pub fn stage(
        &mut self,
        epoch: u64,
        pools: &[(PoolId, &Engine)],
        ledger: &Ledger,
        deposits: &Deposits,
        mut aux: Vec<(u8, Vec<u8>)>,
    ) -> StagedCheckpoint {
        let mut sections = Vec::with_capacity(pools.len() + 2 + aux.len());
        let mut reencoded = 0usize;
        let mut reused = 0usize;

        let mut sorted: Vec<&(PoolId, &Engine)> = pools.iter().collect();
        sorted.sort_by_key(|(id, _)| *id);
        for (id, pool) in sorted {
            let bytes = if self.is_dirty(*id) {
                reencoded += 1;
                let bytes = pool.export_state().encode_to_vec();
                self.cache.insert(id.0, bytes.clone());
                self.dirty.remove(&id.0);
                bytes
            } else {
                reused += 1;
                self.cache[&id.0].clone()
            };
            sections.push(Section {
                kind: SectionKind::Pool(id.0),
                bytes,
            });
        }
        // drop cache entries for pools that no longer exist
        let live: BTreeSet<u32> = pools.iter().map(|(id, _)| id.0).collect();
        self.cache.retain(|id, _| live.contains(id));

        sections.push(Section {
            kind: SectionKind::Ledger,
            bytes: ledger.export_state().encode_to_vec(),
        });
        sections.push(Section {
            kind: SectionKind::Deposits,
            bytes: deposits.to_sorted_entries().encode_to_vec(),
        });
        aux.sort_by_key(|(tag, _)| *tag);
        for (tag, bytes) in aux {
            sections.push(Section {
                kind: SectionKind::Aux(tag),
                bytes,
            });
        }

        StagedCheckpoint {
            epoch,
            sections,
            pools_total: pools.len(),
            pools_reencoded: reencoded,
            pools_reused: reused,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ammboost_amm::engines::EngineKind;
    use ammboost_amm::pool::SwapKind;
    use ammboost_amm::types::PositionId;
    use ammboost_crypto::Address;

    fn pool_with_liquidity(salt: u64) -> Engine {
        pool_of_kind(EngineKind::ConcentratedLiquidity, salt)
    }

    fn pool_of_kind(kind: EngineKind, salt: u64) -> Engine {
        let mut p = Engine::new_standard(kind);
        p.mint(
            PositionId::derive(&[b"ckpt", &salt.to_be_bytes()]),
            Address::from_index(salt),
            -600,
            600,
            10_000_000,
            10_000_000,
        )
        .unwrap();
        p
    }

    fn fixtures() -> (Ledger, Deposits) {
        (Ledger::new(H256::hash(b"genesis")), Deposits::new())
    }

    #[test]
    fn clean_pools_reuse_cached_encoding() {
        let pool_a = pool_with_liquidity(1);
        let mut pool_b = pool_with_liquidity(2);
        let (ledger, deposits) = fixtures();
        let mut cp = Checkpointer::new();

        let pools = [(PoolId(0), &pool_a), (PoolId(1), &pool_b)];
        let (_, s1) = cp.checkpoint(1, &pools, &ledger, &deposits, vec![]);
        assert_eq!(s1.pools_reencoded, 2, "first checkpoint encodes all");

        // only pool 1 trades
        pool_b
            .swap(true, SwapKind::ExactInput(1_000), None)
            .unwrap();
        cp.mark_dirty(PoolId(1));
        let pools = [(PoolId(0), &pool_a), (PoolId(1), &pool_b)];
        let (snap2, s2) = cp.checkpoint(2, &pools, &ledger, &deposits, vec![]);
        assert_eq!(s2.pools_reencoded, 1);
        assert_eq!(s2.pools_reused, 1);

        // the incremental snapshot matches a from-scratch one exactly
        let (snap_fresh, _) = Checkpointer::new().checkpoint(2, &pools, &ledger, &deposits, vec![]);
        assert_eq!(snap2, snap_fresh);
        assert_eq!(snap2.root(), snap_fresh.root());
    }

    #[test]
    fn dirty_flag_forces_reencode_and_root_changes() {
        let mut pool = pool_with_liquidity(1);
        let (ledger, deposits) = fixtures();
        let mut cp = Checkpointer::new();
        let (_, s1) = cp.checkpoint(1, &[(PoolId(0), &pool)], &ledger, &deposits, vec![]);

        pool.swap(true, SwapKind::ExactInput(50_000), None).unwrap();
        cp.mark_dirty(PoolId(0));
        let (_, s2) = cp.checkpoint(2, &[(PoolId(0), &pool)], &ledger, &deposits, vec![]);
        assert_eq!(s2.pools_reencoded, 1);
        assert_ne!(s1.root, s2.root, "state change must move the root");
    }

    #[test]
    fn stale_cache_without_dirty_mark_reuses_bytes() {
        // contract check: the cache answers for un-marked pools even if
        // the caller mutated them behind the checkpointer's back
        let mut pool = pool_with_liquidity(1);
        let (ledger, deposits) = fixtures();
        let mut cp = Checkpointer::new();
        let (snap1, _) = cp.checkpoint(1, &[(PoolId(0), &pool)], &ledger, &deposits, vec![]);
        pool.swap(true, SwapKind::ExactInput(50_000), None).unwrap();
        let (snap2, stats) = cp.checkpoint(2, &[(PoolId(0), &pool)], &ledger, &deposits, vec![]);
        assert_eq!(stats.pools_reused, 1);
        assert_eq!(
            snap1.section(SectionKind::Pool(0)),
            snap2.section(SectionKind::Pool(0))
        );
    }

    #[test]
    fn heterogeneous_fleet_checkpoints_with_engine_tags() {
        let cl = pool_of_kind(EngineKind::ConcentratedLiquidity, 1);
        let cp_pool = pool_of_kind(EngineKind::ConstantProduct, 2);
        let weighted = pool_of_kind(EngineKind::Weighted, 3);
        let (ledger, deposits) = fixtures();
        let pools = [
            (PoolId(0), &cl),
            (PoolId(1), &cp_pool),
            (PoolId(2), &weighted),
        ];
        let (snap, stats) = Checkpointer::new().checkpoint(4, &pools, &ledger, &deposits, vec![]);
        assert_eq!(snap.version, SNAPSHOT_VERSION);
        assert_eq!(stats.pools_reencoded, 3);
        // every pool section leads with its engine-kind tag
        for ((_, engine), (_, section)) in pools.iter().zip(snap.pool_sections()) {
            assert_eq!(section.bytes[0], engine.kind().tag());
        }
    }

    #[test]
    fn deferred_commit_is_byte_identical_to_immediate_checkpoint() {
        // stage at epoch 2, keep mutating the pool, then commit: the
        // staged sections own their bytes, so the late commit must equal
        // an immediate checkpoint taken at stage time — the contract the
        // pipelined checkpoint mode rests on
        let mut pool = pool_with_liquidity(1);
        let (ledger, deposits) = fixtures();
        let pools = [(PoolId(0), &pool)];

        let mut cp_now = Checkpointer::new();
        let (snap_now, stats_now) = cp_now.checkpoint(2, &pools, &ledger, &deposits, vec![]);

        let mut cp_late = Checkpointer::new();
        let staged = cp_late.stage(2, &[(PoolId(0), &pool)], &ledger, &deposits, vec![]);
        assert_eq!(staged.epoch(), 2);
        pool.swap(true, SwapKind::ExactInput(123_456), None)
            .unwrap();
        let (snap_late, stats_late) = staged.commit();

        assert_eq!(snap_late, snap_now);
        assert_eq!(stats_late, stats_now);
        assert_eq!(snap_late.encode(), snap_now.encode(), "wire bytes diverge");
    }

    #[test]
    fn aux_sections_sorted_by_tag() {
        let pool = pool_with_liquidity(1);
        let (ledger, deposits) = fixtures();
        let (snap, _) = Checkpointer::new().checkpoint(
            1,
            &[(PoolId(0), &pool)],
            &ledger,
            &deposits,
            vec![(9, vec![9]), (1, vec![1])],
        );
        let tags: Vec<SectionKind> = snap.sections.iter().map(|s| s.kind).collect();
        assert_eq!(
            tags,
            vec![
                SectionKind::Pool(0),
                SectionKind::Ledger,
                SectionKind::Deposits,
                SectionKind::Aux(1),
                SectionKind::Aux(9),
            ]
        );
    }
}
