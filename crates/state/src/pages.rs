//! Fixed-size page decomposition of section encodings.
//!
//! Every section's canonical byte encoding is split into fixed-size
//! **pages** ([`DEFAULT_PAGE_SIZE`] bytes; the final page may be short).
//! Each page gets a domain-separated hash binding the owning section's
//! kind, the page index and the page bytes, and [`page_root`] commits to
//! the whole page vector (plus the byte length) with a Merkle tree — the
//! sub-leaf structure *under* the existing section leaf. Section hashes
//! and snapshot roots are computed exactly as before, so paging changes
//! no commitment; it only makes sub-section diffing and transfer
//! addressable.
//!
//! Because pool sections encode positions as sorted fixed-stride records
//! and ticks as sorted fixed-width entries, byte pages line up with the
//! logical layout: page 0 covers the pool header, the middle pages the
//! tick table, the tail pages the position table — an in-place field
//! update dirties exactly one page.

use crate::codec::Encode;
use crate::snapshot::SectionKind;
use ammboost_crypto::merkle::MerkleTree;
use ammboost_crypto::H256;

/// Domain prefix of every page hash.
const PAGE_DOMAIN: &[u8] = b"ammboost-snapshot-page";

/// Domain prefix of the page-root length leaf.
const PAGE_ROOT_DOMAIN: &[u8] = b"ammboost-page-root";

/// Page size used by the checkpointer and the sync path.
///
/// Chosen so a sparse-dirty epoch stays sparse in *pages*: at 10⁵
/// positions (172-byte records) a 1% random touch dirties ~1000 distinct
/// records; 1 KiB pages keep the dirtied byte volume near 1 MiB where a
/// full section re-encode is ~17 MiB. Larger pages amortize hashing
/// better but smear single-record updates across more bytes.
pub const DEFAULT_PAGE_SIZE: usize = 1024;

/// Number of pages `len` bytes split into (an empty section has none).
pub fn page_count(len: usize, page_size: usize) -> usize {
    len.div_ceil(page_size)
}

/// Domain-separated hash of one page, binding the owning section kind,
/// the page index and the page bytes — a page cannot be replayed into
/// another section or another slot.
pub fn page_hash(kind: SectionKind, index: u32, bytes: &[u8]) -> H256 {
    H256::hash_concat(&[
        PAGE_DOMAIN,
        &kind.encode_to_vec(),
        &index.to_be_bytes(),
        bytes,
    ])
}

/// [`page_hash`] over every page of a section encoding, in index order.
pub fn page_hashes(kind: SectionKind, bytes: &[u8], page_size: usize) -> Vec<H256> {
    bytes
        .chunks(page_size)
        .enumerate()
        .map(|(i, chunk)| page_hash(kind, i as u32, chunk))
        .collect()
}

/// The Merkle sub-root over a section's pages: a length leaf (domain,
/// kind, byte length) followed by every page hash. This is the per-
/// section commitment a page manifest advertises; the section leaf in
/// the snapshot root stays [`Section::hash`](crate::snapshot::Section::hash)
/// over the full bytes, so existing roots are untouched.
pub fn page_root(kind: SectionKind, bytes: &[u8], page_size: usize) -> H256 {
    let mut leaves = Vec::with_capacity(page_count(bytes.len(), page_size) + 1);
    leaves.push(H256::hash_concat(&[
        PAGE_ROOT_DOMAIN,
        &kind.encode_to_vec(),
        &(bytes.len() as u64).to_be_bytes(),
    ]));
    leaves.extend(page_hashes(kind, bytes, page_size));
    MerkleTree::from_leaves(leaves).root()
}

/// One replaced page in a section delta: the slot, its sub-leaf hash and
/// the new bytes. Decoders verify `hash == page_hash(kind, index, bytes)`
/// so a flipped byte in either field fails loud before any splice.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PageDiff {
    /// Page slot in the *new* section encoding.
    pub index: u32,
    /// `page_hash(kind, index, bytes)` — the page's sub-leaf.
    pub hash: H256,
    /// The full new page content (short only for the final page).
    pub bytes: Vec<u8>,
}

/// Page indexes (with their new bytes) at which `new` differs from
/// `old`, including every page past the end of `old`. Pure memcmp — no
/// hashing — so it is safe inside the stage half of a pipelined
/// checkpoint.
pub fn diff_pages(old: &[u8], new: &[u8], page_size: usize) -> Vec<(u32, Vec<u8>)> {
    new.chunks(page_size)
        .enumerate()
        .filter(|(i, chunk)| {
            let start = i * page_size;
            old.get(start..start + chunk.len()) != Some(*chunk)
                || (chunk.len() < page_size && old.len() > start + chunk.len())
        })
        .map(|(i, chunk)| (i as u32, chunk.to_vec()))
        .collect()
}

/// Attaches sub-leaf hashes to raw page diffs (the deferred hashing half
/// of [`diff_pages`]).
pub fn seal_pages(kind: SectionKind, raw: Vec<(u32, Vec<u8>)>) -> Vec<PageDiff> {
    raw.into_iter()
        .map(|(index, bytes)| PageDiff {
            index,
            hash: page_hash(kind, index, &bytes),
            bytes,
        })
        .collect()
}

/// Why a page splice was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageError {
    /// A page index is outside the new encoding.
    OutOfBounds {
        /// The offending page slot.
        index: u32,
        /// Pages the new encoding actually has.
        pages: usize,
    },
    /// A page's byte length does not match its slot (every page is
    /// `page_size` long except the final one).
    BadLength {
        /// The offending page slot.
        index: u32,
        /// Bytes the slot requires.
        expected: usize,
        /// Bytes the diff carried.
        found: usize,
    },
}

impl std::fmt::Display for PageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PageError::OutOfBounds { index, pages } => {
                write!(f, "page {index} out of bounds ({pages} pages)")
            }
            PageError::BadLength {
                index,
                expected,
                found,
            } => write!(f, "page {index} length {found}, slot needs {expected}"),
        }
    }
}

impl std::error::Error for PageError {}

/// Splices `pages` over `base` to rebuild a `new_len`-byte encoding: the
/// shared prefix is copied from `base`, every diffed page overwrites its
/// slot, and bytes past `base` must all be covered by diffed pages (a
/// gap there survives as zeroes and fails the section-hash check the
/// caller performs). The inverse of [`diff_pages`]:
/// `apply_pages(old, new.len(), diff_pages(old, new), ps) == new`.
///
/// # Errors
/// [`PageError`] on a page outside the new encoding or with the wrong
/// length for its slot.
pub fn apply_pages(
    base: &[u8],
    new_len: usize,
    pages: &[PageDiff],
    page_size: usize,
) -> Result<Vec<u8>, PageError> {
    let total = page_count(new_len, page_size);
    let mut out = vec![0u8; new_len];
    let shared = base.len().min(new_len);
    out[..shared].copy_from_slice(&base[..shared]);
    for page in pages {
        let index = page.index as usize;
        if index >= total {
            return Err(PageError::OutOfBounds {
                index: page.index,
                pages: total,
            });
        }
        let start = index * page_size;
        let expected = page_size.min(new_len - start);
        if page.bytes.len() != expected {
            return Err(PageError::BadLength {
                index: page.index,
                expected,
                found: page.bytes.len(),
            });
        }
        out[start..start + expected].copy_from_slice(&page.bytes);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const PS: usize = 8;

    fn apply_raw(old: &[u8], new: &[u8]) -> Vec<u8> {
        let pages = seal_pages(SectionKind::Ledger, diff_pages(old, new, PS));
        apply_pages(old, new.len(), &pages, PS).unwrap()
    }

    #[test]
    fn diff_apply_roundtrips_every_shape() {
        let old: Vec<u8> = (0..37).collect();
        // same length, one byte changed mid-page
        let mut new = old.clone();
        new[19] ^= 0xFF;
        assert_eq!(apply_raw(&old, &new), new);
        // growth (tail pages appended), shrink (truncation), from empty
        let grown: Vec<u8> = (0..61).collect();
        assert_eq!(apply_raw(&old, &grown), grown);
        let shrunk: Vec<u8> = (0..13).collect();
        assert_eq!(apply_raw(&old, &shrunk), shrunk);
        assert_eq!(apply_raw(&[], &old), old);
        assert_eq!(apply_raw(&old, &[]), Vec::<u8>::new());
        // identical inputs diff to nothing
        assert!(diff_pages(&old, &old, PS).is_empty());
    }

    #[test]
    fn single_byte_change_dirties_one_page() {
        let old = vec![7u8; 64];
        let mut new = old.clone();
        new[25] = 8;
        let diff = diff_pages(&old, &new, PS);
        assert_eq!(diff.len(), 1);
        assert_eq!(diff[0].0, 3, "byte 25 lives in page 3 at size 8");
    }

    #[test]
    fn shrink_within_last_page_redirties_it() {
        // old ends mid-page; new truncates further into the same page —
        // the shared prefix is byte-equal, so only the length-aware
        // clause of diff_pages catches it
        let old = vec![3u8; 12];
        let new = vec![3u8; 10];
        let diff = diff_pages(&old, &new, PS);
        assert_eq!(diff.len(), 1);
        assert_eq!(diff[0].0, 1);
        assert_eq!(apply_raw(&old, &new), new);
    }

    #[test]
    fn page_hash_binds_kind_index_and_bytes() {
        let h = page_hash(SectionKind::Pool(0), 0, b"abc");
        assert_ne!(h, page_hash(SectionKind::Pool(1), 0, b"abc"));
        assert_ne!(h, page_hash(SectionKind::Pool(0), 1, b"abc"));
        assert_ne!(h, page_hash(SectionKind::Pool(0), 0, b"abd"));
    }

    #[test]
    fn page_root_commits_to_length_and_content() {
        let kind = SectionKind::Deposits;
        let a = page_root(kind, &[1u8; 16], PS);
        assert_ne!(a, page_root(kind, &[1u8; 17], PS), "length committed");
        let mut bytes = [1u8; 16];
        bytes[9] = 2;
        assert_ne!(a, page_root(kind, &bytes, PS), "content committed");
        // empty sections still have a well-defined root
        assert_ne!(
            page_root(kind, &[], PS),
            page_root(SectionKind::Ledger, &[], PS)
        );
    }

    #[test]
    fn splice_validation_fails_closed() {
        let pages = vec![PageDiff {
            index: 9,
            hash: page_hash(SectionKind::Ledger, 9, &[0; PS]),
            bytes: vec![0; PS],
        }];
        assert_eq!(
            apply_pages(&[], 16, &pages, PS),
            Err(PageError::OutOfBounds { index: 9, pages: 2 })
        );
        let pages = vec![PageDiff {
            index: 1,
            hash: H256([0u8; 32]),
            bytes: vec![0; 3],
        }];
        assert_eq!(
            apply_pages(&[], 16, &pages, PS),
            Err(PageError::BadLength {
                index: 1,
                expected: 8,
                found: 3
            })
        );
    }
}
