//! Property tests for the snapshot codec: every record type round-trips
//! `Encode` → `Decode` bit-exactly under random values including
//! extremes, and the snapshot container detects corruption.

use ammboost_amm::engines::EngineKind;
use ammboost_amm::pool::{Pool, PoolState, Position, TickInfo};
use ammboost_amm::tick_math::{MAX_TICK, MIN_TICK};
use ammboost_amm::tx::{
    AmmTx, BurnTx, CollectTx, MintTx, RouteHop, RouteTx, SwapIntent, SwapTx, MAX_ROUTE_HOPS,
};
use ammboost_amm::types::{PoolId, PositionId};
use ammboost_amm::Engine;
use ammboost_crypto::{Address, H256, U256};
use ammboost_sidechain::block::{ExecutedTx, MetaBlock, RouteLeg, SummaryBlock, TxEffect};
use ammboost_sidechain::ledger::{Ledger, LedgerState};
use ammboost_sidechain::summary::{Deposits, PayoutEntry, PoolUpdate, PositionEntry};
use ammboost_state::codec::{Decode, Encode};
use ammboost_state::delta::{DeltaError, DeltaSnapshot};
use ammboost_state::heal::{
    delta_sync, heal_fetch, PageManifest, PageReply, ProviderReply, RetryPolicy, SectionProvider,
    SimProvider, SyncManifest,
};
use ammboost_state::snapshot::{Section, SectionKind, Snapshot, SNAPSHOT_VERSION};
use ammboost_state::store::CheckpointStore;
use ammboost_state::sync::restore;
use ammboost_state::Checkpointer;
use proptest::collection::vec;
use proptest::prelude::*;

fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(
    value: &T,
) -> Result<(), TestCaseError> {
    let bytes = value.encode_to_vec();
    let back = T::decode_all(&bytes)
        .map_err(|e| TestCaseError::fail(format!("decode failed: {e} on {value:?}")))?;
    prop_assert_eq!(&back, value);
    // canonical: re-encoding reproduces the same bytes
    prop_assert_eq!(back.encode_to_vec(), bytes);
    Ok(())
}

/// `u128` biased towards the extremes the codec must survive.
fn arb_amount() -> impl Strategy<Value = u128> {
    prop_oneof![
        any::<u128>(),
        Just(0u128),
        Just(1u128),
        Just(u128::MAX),
        Just(u128::MAX - 1),
    ]
}

fn arb_i128() -> impl Strategy<Value = i128> {
    prop_oneof![any::<i128>(), Just(i128::MIN), Just(i128::MAX), Just(0)]
}

fn arb_u256() -> impl Strategy<Value = U256> {
    prop_oneof![
        any::<[u64; 4]>().prop_map(U256::from_limbs),
        Just(U256::ZERO),
        Just(U256::MAX),
    ]
}

fn arb_h256() -> impl Strategy<Value = H256> {
    arb_u256().prop_map(|v| H256(v.to_be_bytes()))
}

fn arb_address() -> impl Strategy<Value = Address> {
    any::<u64>().prop_map(Address::from_index)
}

fn arb_tick() -> impl Strategy<Value = i32> {
    prop_oneof![
        MIN_TICK..MAX_TICK + 1,
        Just(MIN_TICK),
        Just(MAX_TICK),
        Just(0),
    ]
}

fn arb_tick_info() -> impl Strategy<Value = TickInfo> {
    (arb_amount(), arb_i128(), arb_u256(), arb_u256()).prop_map(
        |(liquidity_gross, liquidity_net, g0, g1)| TickInfo {
            liquidity_gross,
            liquidity_net,
            fee_growth_outside0: g0,
            fee_growth_outside1: g1,
        },
    )
}

fn arb_position() -> impl Strategy<Value = Position> {
    (
        arb_address(),
        arb_tick(),
        arb_tick(),
        arb_amount(),
        (arb_u256(), arb_u256()),
        (arb_amount(), arb_amount()),
    )
        .prop_map(|(owner, lo, hi, liquidity, (g0, g1), (o0, o1))| Position {
            owner,
            tick_lower: lo,
            tick_upper: hi,
            liquidity,
            fee_growth_inside0_last: g0,
            fee_growth_inside1_last: g1,
            tokens_owed0: o0,
            tokens_owed1: o1,
        })
}

fn arb_swap_intent() -> impl Strategy<Value = SwapIntent> {
    prop_oneof![
        (arb_amount(), arb_amount()).prop_map(|(a, b)| SwapIntent::ExactInput {
            amount_in: a,
            min_amount_out: b,
        }),
        (arb_amount(), arb_amount()).prop_map(|(a, b)| SwapIntent::ExactOutput {
            amount_out: a,
            max_amount_in: b,
        }),
    ]
}

fn arb_amm_tx() -> impl Strategy<Value = AmmTx> {
    let swap = (
        arb_address(),
        any::<u32>(),
        any::<bool>(),
        arb_swap_intent(),
        prop_oneof![Just(None), arb_u256().prop_map(Some)],
        any::<u64>(),
    )
        .prop_map(|(user, pool, dir, intent, limit, deadline)| {
            AmmTx::Swap(SwapTx {
                user,
                pool: PoolId(pool),
                zero_for_one: dir,
                intent,
                sqrt_price_limit: limit,
                deadline_round: deadline,
            })
        });
    let mint = (
        arb_address(),
        prop_oneof![Just(None), arb_h256().prop_map(|h| Some(PositionId(h)))],
        (arb_tick(), arb_tick()),
        (arb_amount(), arb_amount()),
        any::<u64>(),
    )
        .prop_map(|(user, position, (lo, hi), (a0, a1), nonce)| {
            AmmTx::Mint(MintTx {
                user,
                pool: PoolId(0),
                position,
                tick_lower: lo,
                tick_upper: hi,
                amount0_desired: a0,
                amount1_desired: a1,
                nonce,
            })
        });
    let burn = (
        arb_address(),
        arb_h256(),
        prop_oneof![Just(None), arb_amount().prop_map(Some)],
    )
        .prop_map(|(user, pos, liquidity)| {
            AmmTx::Burn(BurnTx {
                user,
                pool: PoolId(0),
                position: PositionId(pos),
                liquidity,
            })
        });
    let collect =
        (arb_address(), arb_h256(), arb_amount(), arb_amount()).prop_map(|(user, pos, a0, a1)| {
            AmmTx::Collect(CollectTx {
                user,
                pool: PoolId(0),
                position: PositionId(pos),
                amount0: a0,
                amount1: a1,
            })
        });
    let routed = (
        arb_address(),
        vec((any::<u32>(), any::<bool>()), 0..MAX_ROUTE_HOPS + 1),
        arb_amount(),
        arb_amount(),
        any::<u64>(),
    )
        .prop_map(|(user, hops, a_in, min_out, deadline)| {
            // the codec round-trips any hop list within the wire bound —
            // shape validity (distinct pools, alternating directions) is
            // the execution layer's concern, not the codec's
            AmmTx::Route(RouteTx {
                user,
                hops: hops
                    .into_iter()
                    .map(|(pool, dir)| RouteHop {
                        pool: PoolId(pool),
                        zero_for_one: dir,
                    })
                    .collect(),
                amount_in: a_in,
                min_amount_out: min_out,
                deadline_round: deadline,
            })
        });
    prop_oneof![swap, mint, burn, collect, routed]
}

fn arb_tx_effect() -> impl Strategy<Value = TxEffect> {
    prop_oneof![
        (arb_amount(), arb_amount(), any::<bool>()).prop_map(|(a, b, d)| TxEffect::Swap {
            amount_in: a,
            amount_out: b,
            zero_for_one: d,
        }),
        (
            arb_h256(),
            arb_amount(),
            arb_amount(),
            arb_amount(),
            any::<bool>()
        )
            .prop_map(|(p, l, a0, a1, c)| TxEffect::Mint {
                position: PositionId(p),
                liquidity: l,
                amount0: a0,
                amount1: a1,
                created: c,
            }),
        (
            arb_h256(),
            arb_amount(),
            arb_amount(),
            arb_amount(),
            any::<bool>()
        )
            .prop_map(|(p, l, a0, a1, d)| TxEffect::Burn {
                position: PositionId(p),
                liquidity: l,
                amount0: a0,
                amount1: a1,
                deleted: d,
            }),
        (arb_h256(), arb_amount(), arb_amount()).prop_map(|(p, a0, a1)| TxEffect::Collect {
            position: PositionId(p),
            amount0: a0,
            amount1: a1,
        }),
        any::<u64>().prop_map(|n| TxEffect::Rejected {
            reason: format!("reason-{n} ✗"),
        }),
        (
            vec(arb_route_leg(), 0..MAX_ROUTE_HOPS + 1),
            arb_amount(),
            arb_amount(),
            any::<bool>()
        )
            .prop_map(|(legs, a_in, a_out, completed)| TxEffect::Route {
                legs,
                amount_in: a_in,
                amount_out: a_out,
                completed,
            }),
    ]
}

fn arb_route_leg() -> impl Strategy<Value = RouteLeg> {
    (any::<u32>(), any::<bool>(), arb_amount(), arb_amount()).prop_map(
        |(pool, dir, a_in, a_out)| RouteLeg {
            pool: PoolId(pool),
            zero_for_one: dir,
            amount_in: a_in,
            amount_out: a_out,
        },
    )
}

fn arb_executed_tx() -> impl Strategy<Value = ExecutedTx> {
    (arb_amm_tx(), any::<u16>(), arb_tx_effect()).prop_map(|(tx, size, effect)| ExecutedTx {
        tx,
        wire_size: size as usize,
        effect,
    })
}

fn arb_payout() -> impl Strategy<Value = PayoutEntry> {
    (arb_address(), arb_amount(), arb_amount()).prop_map(|(user, a0, a1)| PayoutEntry {
        user,
        amount0: a0,
        amount1: a1,
    })
}

fn arb_position_entry() -> impl Strategy<Value = PositionEntry> {
    (
        (arb_h256(), arb_address()),
        (arb_amount(), arb_amount(), arb_amount()),
        (arb_amount(), arb_amount()),
        (arb_amount(), arb_amount()),
        (arb_tick(), arb_tick(), any::<bool>()),
    )
        .prop_map(
            |((id, owner), (l, a0, a1), (f0, f1), (g0, g1), (lo, hi, deleted))| PositionEntry {
                id: PositionId(id),
                owner,
                liquidity: l,
                amount0: a0,
                amount1: a1,
                fees0: f0,
                fees1: f1,
                fee_growth_inside0: g0,
                fee_growth_inside1: g1,
                tick_lower: lo,
                tick_upper: hi,
                deleted,
            },
        )
}

fn arb_pool_update() -> impl Strategy<Value = PoolUpdate> {
    (any::<u32>(), arb_amount(), arb_amount()).prop_map(|(id, r0, r1)| PoolUpdate {
        pool: PoolId(id),
        reserve0: r0,
        reserve1: r1,
    })
}

fn arb_meta_block() -> impl Strategy<Value = MetaBlock> {
    (
        any::<u64>(),
        any::<u64>(),
        arb_h256(),
        vec(arb_executed_tx(), 0..5),
    )
        .prop_map(|(epoch, round, parent, txs)| MetaBlock::new(epoch, round, parent, txs))
}

fn arb_summary_block() -> impl Strategy<Value = SummaryBlock> {
    (
        any::<u64>(),
        arb_h256(),
        vec(arb_h256(), 0..4),
        vec(arb_payout(), 0..4),
        vec(arb_position_entry(), 0..4),
        vec(arb_pool_update(), 1..4),
    )
        .prop_map(
            |(epoch, parent, meta_refs, payouts, positions, pools)| SummaryBlock {
                epoch,
                parent,
                meta_refs,
                payouts,
                positions,
                pools,
            },
        )
}

/// A structurally valid pool state grown through the real engine, plus
/// random global accumulators.
fn arb_pool_state() -> impl Strategy<Value = PoolState> {
    (vec((1u64..200, arb_amount()), 1..5), arb_u256(), arb_u256()).prop_map(|(mints, g0, g1)| {
        let mut pool = Pool::new_standard();
        for (i, (salt, _)) in mints.iter().enumerate() {
            let width = 60 * (1 + (salt % 50) as i32);
            let _ = pool.mint(
                PositionId::derive(&[b"prop", &salt.to_be_bytes(), &i.to_be_bytes()]),
                Address::from_index(*salt),
                -width,
                width,
                1_000_000u128 + *salt as u128 * 7,
                1_000_000u128 + *salt as u128 * 13,
            );
        }
        let mut state = pool.export_state();
        state.fee_growth_global0 = g0;
        state.fee_growth_global1 = g1;
        state
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn roundtrip_primitive_records(
        h in arb_h256(),
        addr in arb_address(),
        v in arb_u256(),
        amount in arb_amount(),
        signed in arb_i128(),
        tick in arb_tick(),
    ) {
        roundtrip(&h)?;
        roundtrip(&addr)?;
        roundtrip(&v)?;
        roundtrip(&amount)?;
        roundtrip(&signed)?;
        roundtrip(&tick)?;
        roundtrip(&PositionId(h))?;
    }

    #[test]
    fn roundtrip_tick_info(info in arb_tick_info()) {
        roundtrip(&info)?;
    }

    #[test]
    fn roundtrip_position(pos in arb_position()) {
        roundtrip(&pos)?;
    }

    #[test]
    fn roundtrip_amm_tx(tx in arb_amm_tx()) {
        roundtrip(&tx)?;
        // the codec shares the sidechain wire format, so ids survive
        let back = AmmTx::decode_all(&tx.encode_to_vec()).unwrap();
        prop_assert_eq!(back.tx_id(), tx.tx_id());
    }

    #[test]
    fn roundtrip_tx_effect(effect in arb_tx_effect()) {
        roundtrip(&effect)?;
    }

    #[test]
    fn roundtrip_executed_tx(tx in arb_executed_tx()) {
        roundtrip(&tx)?;
    }

    #[test]
    fn roundtrip_payout_and_position_entries(
        payout in arb_payout(),
        entry in arb_position_entry(),
        update in arb_pool_update(),
    ) {
        roundtrip(&payout)?;
        roundtrip(&entry)?;
        roundtrip(&update)?;
    }

    #[test]
    fn roundtrip_blocks(meta in arb_meta_block(), summary in arb_summary_block()) {
        roundtrip(&meta)?;
        roundtrip(&summary)?;
    }

    #[test]
    fn roundtrip_pool_state(state in arb_pool_state()) {
        roundtrip(&state)?;
    }

    #[test]
    fn roundtrip_ledger_state(
        metas in vec(arb_meta_block(), 0..3),
        summaries in vec(arb_summary_block(), 0..3),
        tip in arb_h256(),
        counters in (any::<u64>(), any::<u64>(), any::<u64>()),
        tip_epoch in any::<u64>(),
        tip_round in prop_oneof![Just(None), any::<u64>().prop_map(Some)],
    ) {
        let state = LedgerState {
            meta: metas.into_iter().enumerate().map(|(i, m)| (i as u64, vec![m])).collect(),
            summaries,
            tip,
            tip_epoch,
            tip_round,
            current_bytes: counters.0,
            peak_bytes: counters.1,
            pruned_bytes_total: counters.2,
        };
        roundtrip(&state)?;
    }

    #[test]
    fn roundtrip_deposit_entries(raw in vec((any::<u64>(), arb_amount(), arb_amount()), 0..6)) {
        let mut entries: Vec<(Address, (u128, u128))> = raw
            .into_iter()
            .map(|(i, a0, a1)| (Address::from_index(i), (a0, a1)))
            .collect();
        entries.sort_by_key(|(a, _)| *a);
        entries.dedup_by_key(|(a, _)| *a);
        roundtrip(&entries)?;
    }

    #[test]
    fn snapshot_roundtrip_and_root_stability(
        epoch in any::<u64>(),
        pool in arb_pool_state(),
        aux in vec(any::<u8>(), 0..32),
    ) {
        let snapshot = Snapshot {
            version: SNAPSHOT_VERSION,
            epoch,
            sections: vec![
                Section { kind: SectionKind::Pool(0), bytes: pool.encode_to_vec() },
                Section { kind: SectionKind::Aux(7), bytes: aux },
            ],
        };
        let bytes = snapshot.encode();
        let back = Snapshot::decode(&bytes).unwrap();
        prop_assert_eq!(&back, &snapshot);
        prop_assert_eq!(back.root(), snapshot.root());
    }

    #[test]
    fn truncated_input_never_panics(state in arb_pool_state(), cut in any::<u16>()) {
        // decoding any prefix of a valid encoding must fail cleanly
        let bytes = state.encode_to_vec();
        let cut = (cut as usize) % bytes.len().max(1);
        prop_assert!(PoolState::decode_all(&bytes[..cut]).is_err());
    }

    #[test]
    fn single_byte_flip_in_wire_is_always_detected(
        epoch in any::<u64>(),
        pool in arb_pool_state(),
        aux in vec(any::<u8>(), 0..32),
        pos in any::<u32>(),
        mask in any::<u8>(),
    ) {
        // flipping any byte of a snapshot's wire form anywhere — header,
        // embedded root, section lengths or payload — must be detected
        // by decode; corruption never silently restores
        let snapshot = Snapshot {
            version: SNAPSHOT_VERSION,
            epoch,
            sections: vec![
                Section { kind: SectionKind::Pool(0), bytes: pool.encode_to_vec() },
                Section { kind: SectionKind::Aux(7), bytes: aux },
            ],
        };
        let mut bytes = snapshot.encode();
        let mask = if mask == 0 { 1 } else { mask };
        let i = pos as usize % bytes.len();
        bytes[i] ^= mask;
        prop_assert!(
            Snapshot::decode(&bytes).is_err(),
            "flip at byte {} (mask {:#04x}) was silently restored", i, mask
        );
    }

    #[test]
    fn flipped_section_is_always_healed_by_an_honest_provider(
        epoch in any::<u64>(),
        pool in arb_pool_state(),
        aux in vec(any::<u8>(), 1..32),
        sec in any::<u8>(),
        pos in any::<u32>(),
        mask in any::<u8>(),
    ) {
        // a provider serving one section with any single byte flipped is
        // quarantined on that section, and a second honest provider
        // heals it — the reassembled snapshot always re-derives the
        // trusted root
        let snapshot = Snapshot {
            version: SNAPSHOT_VERSION,
            epoch,
            sections: vec![
                Section { kind: SectionKind::Pool(0), bytes: pool.encode_to_vec() },
                Section { kind: SectionKind::Aux(7), bytes: aux },
            ],
        };
        let manifest = SyncManifest::of(&snapshot);
        let target = sec as usize % snapshot.sections.len();
        let mask = if mask == 0 { 1 } else { mask };

        struct FlipProvider {
            snap: Snapshot,
            target: usize,
            pos: u32,
            mask: u8,
        }
        impl SectionProvider for FlipProvider {
            fn id(&self) -> u32 {
                0
            }
            fn manifest(&mut self) -> Option<SyncManifest> {
                Some(SyncManifest::of(&self.snap))
            }
            fn fetch(&mut self, index: usize) -> ProviderReply {
                let mut section = self.snap.sections[index].clone();
                if index == self.target {
                    let i = self.pos as usize % section.bytes.len();
                    section.bytes[i] ^= self.mask;
                }
                ProviderReply::Section(section)
            }
        }

        let mut corrupt = FlipProvider { snap: snapshot.clone(), target, pos, mask };
        let mut honest = SimProvider::honest(1, snapshot.clone());
        let mut providers: Vec<&mut dyn SectionProvider> = vec![&mut corrupt, &mut honest];
        let (healed, report) = heal_fetch(&manifest, &mut providers, &RetryPolicy::default())
            .map_err(|e| TestCaseError::fail(format!("heal failed: {e}")))?;
        prop_assert_eq!(healed.root(), snapshot.root());
        prop_assert!(
            report.quarantined.iter().any(|q| q.section == target),
            "flipped section {} was accepted without quarantine", target
        );
        prop_assert!(
            report.healed_sections.contains(&target),
            "quarantined section {} was never healed", target
        );
    }
}

/// One random "epoch" of traffic for the delta-chain properties: each
/// entry mints into one of the fleet's engines.
type EpochOps = Vec<(u8, u64)>;

/// A small mixed fleet grown through the real engines, so pool sections
/// carry genuine engine-tagged encodings.
fn delta_fleet() -> Vec<Engine> {
    let mut fleet = vec![
        Engine::new_standard(EngineKind::ConcentratedLiquidity),
        Engine::new_standard(EngineKind::ConstantProduct),
    ];
    for (i, engine) in fleet.iter_mut().enumerate() {
        engine
            .mint(
                PositionId::derive(&[b"delta-prop-base", &[i as u8]]),
                Address::from_index(7 + i as u64),
                -1200,
                1200,
                50_000_000,
                50_000_000,
            )
            .expect("base liquidity mints");
    }
    fleet
}

fn apply_ops(fleet: &mut [Engine], cp: &mut Checkpointer, epoch: usize, ops: &EpochOps) {
    for (i, (which, salt)) in ops.iter().enumerate() {
        let pool = *which as usize % fleet.len();
        cp.mark_dirty(PoolId(pool as u32));
        let engine = &mut fleet[pool];
        let width = 60 * (1 + (salt % 40) as i32);
        let _ = engine.mint(
            PositionId::derive(&[b"delta-prop-op", &epoch.to_be_bytes(), &i.to_be_bytes()]),
            Address::from_index(*salt),
            -width,
            width,
            1_000_000u128 + *salt as u128 * 7,
            1_000_000u128 + *salt as u128 * 13,
        );
    }
}

fn checkpoint_fleet(
    cp: &mut Checkpointer,
    epoch: u64,
    fleet: &[Engine],
) -> ammboost_state::CheckpointOutput {
    let refs: Vec<(PoolId, &Engine)> = fleet
        .iter()
        .enumerate()
        .map(|(i, e)| (PoolId(i as u32), e))
        .collect();
    let ledger = Ledger::new(H256::hash(b"delta-prop-genesis"));
    let mut deposits = Deposits::new();
    deposits
        .credit(Address::from_index(1), 100, 200)
        .expect("deposit credits");
    cp.checkpoint(epoch, &refs, &ledger, &deposits, vec![])
}

/// An otherwise-honest page-protocol provider that flips one byte (or
/// one sub-leaf hash bit) in a single page reply — the adversary the
/// page-granular delta sync must quarantine.
struct FlipPageProvider {
    snap: Snapshot,
    page_size: usize,
    target: (usize, u32),
    pos: u32,
    mask: u8,
}

impl SectionProvider for FlipPageProvider {
    fn id(&self) -> u32 {
        0
    }
    fn manifest(&mut self) -> Option<SyncManifest> {
        Some(SyncManifest::of(&self.snap))
    }
    fn fetch(&mut self, index: usize) -> ProviderReply {
        ProviderReply::Section(self.snap.sections[index].clone())
    }
    fn page_manifest(&mut self, index: usize) -> Option<PageManifest> {
        self.snap
            .sections
            .get(index)
            .map(|s| PageManifest::of(s, self.page_size))
    }
    fn fetch_page(&mut self, index: usize, page: u32) -> PageReply {
        let section = &self.snap.sections[index];
        let start = page as usize * self.page_size;
        let end = (start + self.page_size).min(section.bytes.len());
        let mut bytes = section.bytes[start..end].to_vec();
        if (index, page) == self.target && !bytes.is_empty() {
            let i = self.pos as usize % bytes.len();
            bytes[i] ^= self.mask;
        }
        PageReply::Page(bytes)
    }
}

proptest! {
    // each case drives the real checkpoint → delta → store machinery,
    // so fewer, heavier cases than the codec round-trips above
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random epoch sequences: committing the base snapshot plus every
    /// checkpointer-emitted delta into the journal, then folding the
    /// chain (through compactions), restores a state byte-identical —
    /// root and exported pool encodings — to restoring the final full
    /// snapshot directly. Zero-op epochs (empty deltas) must chain too.
    #[test]
    fn delta_chain_restore_matches_full_restore(
        epochs in vec(vec((0u8..2, 1u64..500), 0..4), 1..6),
        page_size in prop_oneof![Just(64usize), Just(256usize), Just(1024usize)],
    ) {
        let mut fleet = delta_fleet();
        let mut cp = Checkpointer::new();
        let mut store = CheckpointStore::with_compaction_threshold(2);
        let out = checkpoint_fleet(&mut cp, 1, &fleet);
        store.commit(&out.snapshot, None).expect("base commit");
        let mut prev = out.snapshot;
        for (e, ops) in epochs.iter().enumerate() {
            apply_ops(&mut fleet, &mut cp, e, ops);
            let out = checkpoint_fleet(&mut cp, 2 + e as u64, &fleet);
            let delta = out.delta.expect("consecutive checkpoints emit deltas");
            // the delta wire form round-trips bit-exactly
            let back = DeltaSnapshot::decode(&delta.encode())
                .map_err(|err| TestCaseError::fail(format!("delta decode failed: {err}")))?;
            prop_assert_eq!(&back, &delta);
            // applying it to the previous snapshot is byte-identical to
            // the full re-encode the checkpointer produced
            let applied = delta.apply(&prev)
                .map_err(|err| TestCaseError::fail(format!("delta apply failed: {err}")))?;
            prop_assert_eq!(&applied, &out.snapshot);
            // an explicit diff at a random page size agrees as well
            let rediff = DeltaSnapshot::diff(&prev, &out.snapshot, page_size);
            prop_assert_eq!(rediff.apply(&prev).unwrap(), out.snapshot.clone());
            store.commit_delta(&delta, None)
                .map_err(|err| TestCaseError::fail(format!("delta commit failed: {err}")))?;
            prev = out.snapshot;
        }
        // folding the journal chain lands on the full snapshot, bit for bit
        let folded = store.latest().expect("chain folds");
        prop_assert_eq!(&folded, &prev);
        prop_assert_eq!(folded.root(), prev.root());
        // and the restored states match pool-for-pool, byte-for-byte
        let from_chain = restore(&folded)
            .map_err(|err| TestCaseError::fail(format!("chain restore failed: {err}")))?;
        let from_full = restore(&prev)
            .map_err(|err| TestCaseError::fail(format!("full restore failed: {err}")))?;
        prop_assert_eq!(from_chain.root, from_full.root);
        prop_assert_eq!(from_chain.pools.len(), from_full.pools.len());
        for ((ida, a), (idb, b)) in from_chain.pools.iter().zip(from_full.pools.iter()) {
            prop_assert_eq!(ida, idb);
            prop_assert_eq!(
                a.export_state().encode_to_vec(),
                b.export_state().encode_to_vec()
            );
        }
    }

    /// Any single-byte flip in a delta page — payload or sub-leaf hash —
    /// is rejected by `DeltaSnapshot::decode` before the delta can be
    /// applied, and the same flip served over the page-sync protocol is
    /// quarantined and healed off one honest provider.
    #[test]
    fn flipped_delta_page_is_detected_and_heals(
        ops in vec((0u8..2, 1u64..500), 1..4),
        page_size in prop_oneof![Just(64usize), Just(256usize)],
        sec_pick in any::<u16>(),
        page_pick in any::<u16>(),
        pos in any::<u32>(),
        mask in any::<u8>(),
        flip_hash in any::<bool>(),
    ) {
        let mask = if mask == 0 { 1 } else { mask };
        let mut fleet = delta_fleet();
        let mut cp = Checkpointer::new();
        let stale = checkpoint_fleet(&mut cp, 4, &fleet).snapshot;
        apply_ops(&mut fleet, &mut cp, 0, &ops);
        let fresh = checkpoint_fleet(&mut cp, 5, &fleet).snapshot;
        let delta = DeltaSnapshot::diff(&stale, &fresh, page_size);
        prop_assert!(delta.pages() > 0, "a mint must dirty at least one page");

        // -- decode rejects the flip ----------------------------------
        let mut tampered = delta.clone();
        let d = sec_pick as usize % tampered.deltas.len();
        let section_delta = &mut tampered.deltas[d];
        let p = page_pick as usize % section_delta.pages.len();
        let page = &mut section_delta.pages[p];
        if flip_hash || page.bytes.is_empty() {
            page.hash.0[pos as usize % 32] ^= mask;
        } else {
            let i = pos as usize % page.bytes.len();
            page.bytes[i] ^= mask;
        }
        prop_assert!(
            matches!(
                DeltaSnapshot::decode(&tampered.encode()),
                Err(DeltaError::PageHashMismatch { .. })
            ),
            "flipped delta page was silently decoded"
        );

        // -- the same flip over the wire protocol quarantines & heals --
        // pick the target page from the diff's genuinely dirty pages so
        // the sync is guaranteed to request it
        let target_delta = &delta.deltas[d];
        let target_section = fresh
            .sections
            .iter()
            .position(|s| s.kind == target_delta.kind)
            .expect("delta section exists in the snapshot");
        let target_page = target_delta.pages[sec_pick as usize % target_delta.pages.len()].index;
        let mut corrupt = FlipPageProvider {
            snap: fresh.clone(),
            page_size,
            target: (target_section, target_page),
            pos,
            mask,
        };
        let mut honest = SimProvider::honest(1, fresh.clone()).with_page_size(page_size);
        let mut providers: Vec<&mut dyn SectionProvider> = vec![&mut corrupt, &mut honest];
        let (synced, report) = delta_sync(&stale, &mut providers, fresh.root(), &RetryPolicy::default())
            .map_err(|err| TestCaseError::fail(format!("delta sync failed: {err}")))?;
        prop_assert_eq!(synced.root(), fresh.root());
        prop_assert_eq!(&synced, &fresh);
        prop_assert!(
            report.quarantined.iter().any(|q| q.reason == "page-hash-mismatch"),
            "flipped page was accepted without quarantine: {:?}", report.quarantined
        );
    }
}
