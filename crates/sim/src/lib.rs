//! # ammboost-sim
//!
//! The deterministic simulation substrate all ammBoost experiments run on:
//!
//! - [`time`] — millisecond-resolution simulated clocks (no wall time).
//! - [`engine`] — a deterministic discrete-event queue.
//! - [`net`] — Δ-bounded, bandwidth-limited network cost model (the
//!   paper's 1 Gbps cluster).
//! - [`rng`] — seeded randomness with the sampling helpers workloads need.
//! - [`metrics`] — latency statistics, throughput and chain-growth series.
//! - [`fault`] — deterministic storage/sync fault injection (bit-flips,
//!   truncation, drops, delays, stale roots, worker panics) addressable
//!   by injection point and occurrence index.
//!
//! Everything is seedable and free of wall-clock reads, so each experiment
//! binary reproduces its numbers bit-for-bit from its seed.

#![warn(missing_docs)]

pub mod engine;
pub mod fault;
pub mod metrics;
pub mod net;
pub mod rng;
pub mod time;

pub use engine::EventQueue;
pub use fault::{FaultEvent, FaultInjector, FaultKind, FaultSpec, InjectionPoint};
pub use metrics::{throughput, GrowthSeries, LatencyStats};
pub use net::NetworkModel;
pub use rng::DetRng;
pub use time::{SimDuration, SimTime};
