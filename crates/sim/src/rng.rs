//! Deterministic randomness for experiments: a seeded RNG wrapper plus the
//! sampling helpers workloads need (weighted choice, exponential
//! inter-arrival times).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic RNG; every experiment derives all randomness from a
/// single `u64` seed so runs are exactly reproducible.
#[derive(Clone, Debug)]
pub struct DetRng {
    inner: StdRng,
}

impl DetRng {
    /// Creates an RNG from a seed.
    pub fn new(seed: u64) -> DetRng {
        DetRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child RNG (e.g. one per simulated user).
    pub fn fork(&mut self, label: u64) -> DetRng {
        let s = self.inner.gen::<u64>() ^ label.wrapping_mul(0x9E3779B97F4A7C15);
        DetRng::new(s)
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        self.inner.gen_range(lo..hi)
    }

    /// Uniform u128 in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn range_u128(&mut self, lo: u128, hi: u128) -> u128 {
        assert!(lo < hi, "empty range");
        self.inner.gen_range(lo..hi)
    }

    /// 32 bytes of entropy (for key generation).
    pub fn entropy32(&mut self) -> [u8; 32] {
        let mut out = [0u8; 32];
        self.inner.fill(&mut out);
        out
    }

    /// Weighted index choice: returns `i` with probability
    /// `weights[i] / Σ weights`.
    ///
    /// # Panics
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut draw = self.unit() * total;
        for (i, w) in weights.iter().enumerate() {
            if draw < *w {
                return i;
            }
            draw -= w;
        }
        weights.len() - 1
    }

    /// Exponentially distributed value with the given rate (events/unit
    /// time) via inverse-transform sampling. Used for Poisson arrivals.
    ///
    /// # Panics
    /// Panics if `rate` is not positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive");
        let u = loop {
            let u = self.unit();
            if u > 0.0 {
                break u;
            }
        };
        -u.ln() / rate
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.range_u64(0, (i + 1) as u64) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = DetRng::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn forks_are_independent_and_deterministic() {
        let mut root1 = DetRng::new(1);
        let mut root2 = DetRng::new(1);
        let mut f1 = root1.fork(42);
        let mut f2 = root2.fork(42);
        assert_eq!(f1.next_u64(), f2.next_u64());
        let mut g = root1.fork(43);
        assert_ne!(f1.next_u64(), g.next_u64());
    }

    #[test]
    fn unit_in_range() {
        let mut r = DetRng::new(3);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = DetRng::new(4);
        let weights = [93.19, 2.14, 2.38, 2.27];
        let mut counts = [0usize; 4];
        for _ in 0..20_000 {
            counts[r.weighted_index(&weights)] += 1;
        }
        let swap_frac = counts[0] as f64 / 20_000.0;
        assert!((swap_frac - 0.9319).abs() < 0.01, "{swap_frac}");
        assert!(counts[1] > 0 && counts[2] > 0 && counts[3] > 0);
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut r = DetRng::new(5);
        let rate = 4.0;
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| r.exponential(rate)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = DetRng::new(6);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        DetRng::new(1).range_u64(5, 5);
    }
}
