//! Measurement plumbing: latency statistics, counters and throughput —
//! the quantities every table in the paper reports.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Collects latency samples and reports summary statistics.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LatencyStats {
    samples_ms: Vec<u64>,
}

impl LatencyStats {
    /// An empty collector.
    pub fn new() -> LatencyStats {
        LatencyStats::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, d: SimDuration) {
        self.samples_ms.push(d.as_millis());
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples_ms.len()
    }

    /// Arithmetic mean in seconds (`0.0` when empty).
    pub fn mean_secs(&self) -> f64 {
        if self.samples_ms.is_empty() {
            return 0.0;
        }
        let sum: u128 = self.samples_ms.iter().map(|&x| x as u128).sum();
        sum as f64 / self.samples_ms.len() as f64 / 1000.0
    }

    /// Percentile (0–100) in seconds, nearest-rank (`0.0` when empty).
    pub fn percentile_secs(&self, p: f64) -> f64 {
        if self.samples_ms.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples_ms.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        sorted[rank.min(sorted.len() - 1)] as f64 / 1000.0
    }

    /// Maximum sample in seconds.
    pub fn max_secs(&self) -> f64 {
        self.samples_ms
            .iter()
            .max()
            .map_or(0.0, |&x| x as f64 / 1000.0)
    }

    /// Minimum sample in seconds.
    pub fn min_secs(&self) -> f64 {
        self.samples_ms
            .iter()
            .min()
            .map_or(0.0, |&x| x as f64 / 1000.0)
    }

    /// Merges another collector's samples into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.samples_ms.extend_from_slice(&other.samples_ms);
    }
}

/// Computes throughput in events/second over an observation window.
pub fn throughput(events: u64, window: SimDuration) -> f64 {
    let secs = window.as_secs_f64();
    if secs == 0.0 {
        return 0.0;
    }
    events as f64 / secs
}

/// A monotonically growing byte counter with a time series of checkpoints —
/// used for chain-growth measurements (Figure 5).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct GrowthSeries {
    total_bytes: u64,
    checkpoints: Vec<(SimTime, u64)>,
}

impl GrowthSeries {
    /// An empty series.
    pub fn new() -> GrowthSeries {
        GrowthSeries::default()
    }

    /// Adds `bytes` of growth.
    pub fn add(&mut self, bytes: u64) {
        self.total_bytes += bytes;
    }

    /// Removes `bytes` (pruning).
    pub fn remove(&mut self, bytes: u64) {
        self.total_bytes = self.total_bytes.saturating_sub(bytes);
    }

    /// Records a checkpoint of the current total at `t`.
    pub fn checkpoint(&mut self, t: SimTime) {
        self.checkpoints.push((t, self.total_bytes));
    }

    /// Current total bytes.
    pub fn total(&self) -> u64 {
        self.total_bytes
    }

    /// The recorded `(time, bytes)` checkpoints.
    pub fn checkpoints(&self) -> &[(SimTime, u64)] {
        &self.checkpoints
    }

    /// The maximum total ever checkpointed (the "max chain growth" of
    /// Table XI).
    pub fn peak(&self) -> u64 {
        self.checkpoints
            .iter()
            .map(|&(_, b)| b)
            .max()
            .unwrap_or(self.total_bytes)
            .max(self.total_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_basic() {
        let mut s = LatencyStats::new();
        for ms in [100u64, 200, 300, 400, 500] {
            s.record(SimDuration::from_millis(ms));
        }
        assert_eq!(s.count(), 5);
        assert!((s.mean_secs() - 0.3).abs() < 1e-9);
        assert!((s.percentile_secs(50.0) - 0.3).abs() < 1e-9);
        assert!((s.max_secs() - 0.5).abs() < 1e-9);
        assert!((s.min_secs() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = LatencyStats::new();
        assert_eq!(s.mean_secs(), 0.0);
        assert_eq!(s.percentile_secs(99.0), 0.0);
        assert_eq!(s.max_secs(), 0.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyStats::new();
        a.record(SimDuration::from_millis(100));
        let mut b = LatencyStats::new();
        b.record(SimDuration::from_millis(300));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean_secs() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn throughput_computation() {
        assert!((throughput(1000, SimDuration::from_secs(10)) - 100.0).abs() < 1e-9);
        assert_eq!(throughput(5, SimDuration::ZERO), 0.0);
    }

    #[test]
    fn growth_series_prune_and_peak() {
        let mut g = GrowthSeries::new();
        g.add(1000);
        g.checkpoint(SimTime::from_secs(1));
        g.add(500);
        g.checkpoint(SimTime::from_secs(2));
        g.remove(1200);
        g.checkpoint(SimTime::from_secs(3));
        assert_eq!(g.total(), 300);
        assert_eq!(g.peak(), 1500);
        assert_eq!(g.checkpoints().len(), 3);
    }
}
