//! Simulated time: millisecond-resolution instants and durations.
//!
//! All experiment clocks in the workspace are simulated — wall-clock time
//! never leaks in, which keeps every run bit-for-bit reproducible.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock (milliseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time in milliseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from raw milliseconds.
    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms)
    }

    /// Creates an instant from whole seconds.
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1000)
    }

    /// Raw milliseconds since simulation start.
    pub const fn as_millis(&self) -> u64 {
        self.0
    }

    /// Seconds since simulation start (fractional).
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Duration since an earlier instant.
    ///
    /// # Panics
    /// Panics if `earlier` is after `self`.
    pub fn since(&self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("`earlier` must not be after `self`"),
        )
    }

    /// Saturating duration since another instant (zero if `other` is later).
    pub fn saturating_since(&self, other: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1000)
    }

    /// Creates a duration from fractional seconds (rounded to ms).
    pub fn from_secs_f64(s: f64) -> SimDuration {
        assert!(s >= 0.0 && s.is_finite(), "duration must be non-negative");
        SimDuration((s * 1000.0).round() as u64)
    }

    /// Raw milliseconds.
    pub const fn as_millis(&self) -> u64 {
        self.0
    }

    /// Seconds (fractional).
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Scales a duration by an integer factor.
    pub fn saturating_mul(&self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 + d.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        self.since(other)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_millis(500);
        assert_eq!((t + d).as_millis(), 10_500);
        assert_eq!((t + d).since(t), d);
        assert_eq!(t + d - t, d);
    }

    #[test]
    fn saturating_since() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(b.saturating_since(a).as_millis(), 1000);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "earlier")]
    fn since_panics_on_negative() {
        let _ = SimTime::from_secs(1).since(SimTime::from_secs(2));
    }

    #[test]
    fn float_conversions() {
        assert_eq!(SimDuration::from_secs_f64(1.5).as_millis(), 1500);
        assert!((SimTime::from_millis(2500).as_secs_f64() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert_eq!(SimTime::from_millis(1234).to_string(), "1.234s");
    }
}
