//! A deterministic discrete-event queue.
//!
//! Events carry an application-defined payload type and fire in
//! `(time, insertion-sequence)` order, so simultaneous events resolve
//! deterministically regardless of heap internals.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(PartialEq, Eq)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E: Eq> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E: Eq> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue with a monotone clock.
///
/// ```
/// use ammboost_sim::engine::EventQueue;
/// use ammboost_sim::time::SimTime;
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "later");
/// q.schedule(SimTime::from_secs(1), "sooner");
/// assert_eq!(q.pop().map(|(_, e)| e), Some("sooner"));
/// assert_eq!(q.pop().map(|(_, e)| e), Some("later"));
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E: Eq> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    seq: u64,
    now: SimTime,
}

impl<E: Eq> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Eq> EventQueue<E> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulation time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` to fire at `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past (before the last popped event).
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at:?} < {:?}",
            self.now
        );
        self.heap.push(Reverse(Scheduled {
            at,
            seq: self.seq,
            payload,
        }));
        self.seq += 1;
    }

    /// Pops the next event, advancing the clock to its fire time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(ev) = self.heap.pop()?;
        self.now = ev.at;
        Some((ev.at, ev.payload))
    }

    /// Peeks at the next fire time without advancing the clock.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(ev)| ev.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_same_timestamp() {
        let mut q: EventQueue<u32> = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn time_ordering() {
        let mut q: EventQueue<&str> = EventQueue::new();
        q.schedule(SimTime::from_millis(300), "c");
        q.schedule(SimTime::from_millis(100), "a");
        q.schedule(SimTime::from_millis(200), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.schedule(SimTime::from_secs(5), 1);
        q.schedule(SimTime::from_secs(3), 2);
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(3));
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_in_the_past_panics() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.schedule(SimTime::from_secs(2), 1);
        q.pop();
        q.schedule(SimTime::from_secs(1), 2);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 7);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
