//! The network substrate: Δ-bounded point-to-point delivery over links of
//! fixed bandwidth, plus the fan-out/fan-in cost primitives the PBFT
//! latency model composes (paper: 1 Gbps links, bounded-delay model §III).

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Parameters of the simulated network.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// One-way propagation delay Δ in milliseconds (paper's bounded-delay
    /// assumption).
    pub delta_ms: u64,
    /// Link bandwidth in bits per second (the paper's cluster: 1 Gbps).
    pub bandwidth_bps: u64,
    /// Per-message processing overhead at the receiver, in microseconds
    /// (deserialization + signature checks are modelled separately).
    pub per_message_overhead_us: u64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel::paper_cluster()
    }
}

impl NetworkModel {
    /// The paper's evaluation cluster: 1 Gbps links, a 50 ms Δ bound and a
    /// small per-message cost.
    pub fn paper_cluster() -> NetworkModel {
        NetworkModel {
            delta_ms: 50,
            bandwidth_bps: 1_000_000_000,
            per_message_overhead_us: 150,
        }
    }

    /// Serialization time of `bytes` on one link.
    pub fn transmit_time(&self, bytes: usize) -> SimDuration {
        let bits = bytes as u64 * 8;
        SimDuration::from_millis(bits.saturating_mul(1000) / self.bandwidth_bps)
    }

    /// One point-to-point message of `bytes`: transmit + propagate +
    /// receiver overhead.
    pub fn point_to_point(&self, bytes: usize) -> SimDuration {
        self.transmit_time(bytes)
            + SimDuration::from_millis(self.delta_ms)
            + SimDuration::from_millis(self.per_message_overhead_us / 1000)
    }

    /// Leader broadcast of `bytes` to `n` receivers over one uplink: the
    /// leader serializes each copy sequentially (bandwidth-bound), then the
    /// last copy still propagates for Δ.
    pub fn leader_broadcast(&self, n: usize, bytes: usize) -> SimDuration {
        self.transmit_time(bytes).saturating_mul(n as u64) + SimDuration::from_millis(self.delta_ms)
    }

    /// Vote collection: `n` senders each push `bytes` into the leader's
    /// downlink (serialized at the leader), plus Δ for the earliest votes
    /// and per-message processing at the leader.
    pub fn collect_at_leader(&self, n: usize, bytes: usize) -> SimDuration {
        let serialize = self.transmit_time(bytes).saturating_mul(n as u64);
        let processing = SimDuration::from_millis(self.per_message_overhead_us * n as u64 / 1000);
        serialize + processing + SimDuration::from_millis(self.delta_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmit_time_scales_with_size() {
        let net = NetworkModel::paper_cluster();
        // 1 MB over 1 Gbps = 8 ms
        assert_eq!(net.transmit_time(1_000_000).as_millis(), 8);
        assert_eq!(net.transmit_time(2_000_000).as_millis(), 16);
        assert_eq!(net.transmit_time(0).as_millis(), 0);
    }

    #[test]
    fn point_to_point_includes_delta() {
        let net = NetworkModel::paper_cluster();
        assert!(net.point_to_point(100).as_millis() >= net.delta_ms);
    }

    #[test]
    fn broadcast_scales_with_fanout() {
        let net = NetworkModel::paper_cluster();
        let small = net.leader_broadcast(10, 1_000_000);
        let large = net.leader_broadcast(100, 1_000_000);
        assert!(large.as_millis() > small.as_millis() * 5);
    }

    #[test]
    fn collection_scales_with_committee() {
        let net = NetworkModel::paper_cluster();
        let c100 = net.collect_at_leader(100, 200);
        let c1000 = net.collect_at_leader(1000, 200);
        assert!(c1000 > c100);
    }

    #[test]
    fn default_is_paper_cluster() {
        assert_eq!(NetworkModel::default(), NetworkModel::paper_cluster());
    }
}
