//! Deterministic storage/sync fault injection.
//!
//! The consensus layer's `FaultPlan` schedules *protocol* faults (silent
//! leaders, invalid proposals, mainchain rollbacks). This module is its
//! storage-layer counterpart: a seeded [`FaultInjector`] that corrupts,
//! truncates, drops, delays or duplicates byte streams — and panics
//! worker jobs — at precisely addressed places. Every fault is named by
//! an [`InjectionPoint`] (where in the pipeline) plus an **occurrence
//! index** (the Nth time that point is reached), so a fault schedule is a
//! plain data structure and a faulty run replays bit-for-bit from its
//! seed. The injector keeps a log of every fault that actually fired,
//! which drills assert against.
//!
//! The injector never decides *how* a subsystem degrades — it only
//! perturbs bytes and control flow. Detection and recovery live with the
//! subsystems themselves (snapshot root verification, section healing,
//! the stage→commit checkpoint journal, shard-panic containment).

use crate::rng::DetRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What a scheduled fault does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Flip one deterministically chosen bit of the payload.
    BitFlip,
    /// Cut the payload at a deterministically chosen byte offset.
    Truncate,
    /// Suppress the response entirely (the provider never answers).
    Drop,
    /// Deliver the response late by the given simulated delay.
    Delay {
        /// Simulated delivery delay in milliseconds.
        millis: u64,
    },
    /// Deliver the payload twice, concatenated — the classic duplicated
    /// network frame, which a hash check must reject.
    Duplicate,
    /// Serve content from an older state root (a lagging or equivocating
    /// provider).
    StaleRoot,
    /// Panic the executing worker job (storage-layer analogue of a
    /// crashing shard thread).
    Panic,
}

impl FaultKind {
    /// Short stable name (drill output and quarantine logs).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::BitFlip => "bit-flip",
            FaultKind::Truncate => "truncate",
            FaultKind::Drop => "drop",
            FaultKind::Delay { .. } => "delay",
            FaultKind::Duplicate => "duplicate",
            FaultKind::StaleRoot => "stale-root",
            FaultKind::Panic => "panic",
        }
    }
}

/// Where in the storage/sync pipeline a fault is injected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum InjectionPoint {
    /// The serialized output of a snapshot encode.
    SnapshotEncode,
    /// A fast-sync provider's response, keyed by provider id.
    Provider(u32),
    /// The staged byte write of a checkpoint commit.
    CheckpointWrite,
    /// A shard worker job, keyed by pool id.
    Worker(u32),
}

/// One scheduled fault: fire `kind` the `occurrence`-th time (0-based)
/// `point` is reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Where to inject.
    pub point: InjectionPoint,
    /// Which visit of the point triggers the fault (0 = the first).
    pub occurrence: u64,
    /// What to do.
    pub kind: FaultKind,
}

/// A fault that actually fired, recorded in the injector's log.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// The point that was hit.
    pub point: InjectionPoint,
    /// The visit index at which the fault fired.
    pub occurrence: u64,
    /// The fault applied.
    pub kind: FaultKind,
}

/// A deterministic, seeded fault injector.
///
/// Scheduling is explicit ([`FaultInjector::schedule`]); the seed only
/// drives *where inside a payload* byte-level faults land (which bit
/// flips, which offset truncates), so two runs with the same seed and
/// schedule perturb identical bytes.
#[derive(Debug)]
pub struct FaultInjector {
    rng: DetRng,
    specs: Vec<FaultSpec>,
    /// Visits per point so far.
    counters: BTreeMap<InjectionPoint, u64>,
    fired: Vec<FaultEvent>,
}

impl FaultInjector {
    /// An injector with an empty schedule.
    pub fn new(seed: u64) -> FaultInjector {
        FaultInjector {
            rng: DetRng::new(seed ^ 0xFA17_FA17_FA17_FA17),
            specs: Vec::new(),
            counters: BTreeMap::new(),
            fired: Vec::new(),
        }
    }

    /// Adds one fault to the schedule.
    pub fn schedule(&mut self, spec: FaultSpec) -> &mut Self {
        self.specs.push(spec);
        self
    }

    /// Adds a whole schedule at once.
    pub fn schedule_all(&mut self, specs: impl IntoIterator<Item = FaultSpec>) -> &mut Self {
        self.specs.extend(specs);
        self
    }

    /// Registers one visit of `point` and returns the fault scheduled for
    /// this visit, if any (recording it in the fired log). At most one
    /// fault fires per visit; duplicate specs for the same (point,
    /// occurrence) fire in schedule order across successive visits... the
    /// first matching spec wins and the rest are ignored.
    pub fn fire(&mut self, point: InjectionPoint) -> Option<FaultKind> {
        let count = self.counters.entry(point).or_insert(0);
        let occurrence = *count;
        *count += 1;
        let kind = self
            .specs
            .iter()
            .find(|s| s.point == point && s.occurrence == occurrence)
            .map(|s| s.kind)?;
        self.fired.push(FaultEvent {
            point,
            occurrence,
            kind,
        });
        Some(kind)
    }

    /// Applies a byte-level fault to `bytes` in place: [`FaultKind::BitFlip`]
    /// flips one deterministically chosen bit, [`FaultKind::Truncate`]
    /// cuts at a deterministic offset (always strictly shorter),
    /// [`FaultKind::Duplicate`] appends a second copy. Other kinds leave
    /// the bytes untouched (they act on delivery, not content). Returns
    /// `true` when the bytes were modified.
    pub fn mutate(&mut self, kind: FaultKind, bytes: &mut Vec<u8>) -> bool {
        match kind {
            FaultKind::BitFlip => {
                if bytes.is_empty() {
                    return false;
                }
                let bit = self.rng.range_u64(0, bytes.len() as u64 * 8);
                bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
                true
            }
            FaultKind::Truncate => {
                if bytes.is_empty() {
                    return false;
                }
                let keep = self.rng.range_u64(0, bytes.len() as u64) as usize;
                bytes.truncate(keep);
                true
            }
            FaultKind::Duplicate => {
                let copy = bytes.clone();
                bytes.extend(copy);
                true
            }
            FaultKind::Drop | FaultKind::Delay { .. } | FaultKind::StaleRoot | FaultKind::Panic => {
                false
            }
        }
    }

    /// A deterministic crash offset inside a write of `len` bytes
    /// (strictly before the end, so the write is always torn).
    pub fn crash_offset(&mut self, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        self.rng.range_u64(0, len as u64) as usize
    }

    /// Every fault that fired so far, in firing order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.fired
    }

    /// The scheduled specs (fired or not).
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Number of scheduled faults that have not fired yet.
    pub fn pending(&self) -> usize {
        self.specs.len().saturating_sub(self.fired.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_at_exact_occurrence_only() {
        let mut inj = FaultInjector::new(1);
        inj.schedule(FaultSpec {
            point: InjectionPoint::Provider(0),
            occurrence: 2,
            kind: FaultKind::Drop,
        });
        assert_eq!(inj.fire(InjectionPoint::Provider(0)), None);
        assert_eq!(inj.fire(InjectionPoint::Provider(1)), None, "other point");
        assert_eq!(inj.fire(InjectionPoint::Provider(0)), None);
        assert_eq!(inj.fire(InjectionPoint::Provider(0)), Some(FaultKind::Drop));
        assert_eq!(inj.fire(InjectionPoint::Provider(0)), None, "fires once");
        assert_eq!(inj.events().len(), 1);
        assert_eq!(inj.events()[0].occurrence, 2);
    }

    #[test]
    fn points_count_independently() {
        let mut inj = FaultInjector::new(2);
        inj.schedule(FaultSpec {
            point: InjectionPoint::Worker(3),
            occurrence: 0,
            kind: FaultKind::Panic,
        });
        assert_eq!(inj.fire(InjectionPoint::Worker(2)), None);
        assert_eq!(inj.fire(InjectionPoint::Worker(3)), Some(FaultKind::Panic));
    }

    #[test]
    fn mutations_are_deterministic_and_detectable() {
        let base: Vec<u8> = (0..255u8).collect();
        let run = |seed| {
            let mut inj = FaultInjector::new(seed);
            let mut flipped = base.clone();
            assert!(inj.mutate(FaultKind::BitFlip, &mut flipped));
            let mut cut = base.clone();
            assert!(inj.mutate(FaultKind::Truncate, &mut cut));
            (flipped, cut)
        };
        let (f1, c1) = run(7);
        let (f2, c2) = run(7);
        assert_eq!(f1, f2, "same seed, same flip");
        assert_eq!(c1, c2, "same seed, same cut");
        assert_ne!(f1, base);
        assert_eq!(f1.iter().zip(&base).filter(|(a, b)| a != b).count(), 1);
        assert!(c1.len() < base.len(), "truncate always shortens");
        let (f3, _) = run(8);
        assert_ne!(f3, f1, "different seed perturbs different bytes");
    }

    #[test]
    fn duplicate_doubles_and_delivery_kinds_leave_bytes() {
        let mut inj = FaultInjector::new(3);
        let mut b = vec![1u8, 2, 3];
        assert!(inj.mutate(FaultKind::Duplicate, &mut b));
        assert_eq!(b, vec![1, 2, 3, 1, 2, 3]);
        let mut untouched = vec![9u8];
        assert!(!inj.mutate(FaultKind::Drop, &mut untouched));
        assert!(!inj.mutate(FaultKind::StaleRoot, &mut untouched));
        assert!(!inj.mutate(FaultKind::Delay { millis: 5 }, &mut untouched));
        assert_eq!(untouched, vec![9]);
    }

    #[test]
    fn crash_offset_tears_the_write() {
        let mut inj = FaultInjector::new(4);
        for len in [1usize, 2, 100, 4096] {
            let off = inj.crash_offset(len);
            assert!(off < len, "crash at {off} must tear a {len}-byte write");
        }
        assert_eq!(inj.crash_offset(0), 0);
    }
}
