//! Property-based tests for the cryptographic substrate.

use ammboost_crypto::field::{Fr, MODULUS};
use ammboost_crypto::keccak::{keccak256, keccak256_x4, keccak_f1600, keccak_f1600_x4, Keccak256};
use ammboost_crypto::merkle::{leaf_hash, verify_proof, MerkleTree};
use ammboost_crypto::shamir::{reconstruct_secret, Polynomial, Share};
use ammboost_crypto::u256::{U256, U512};
use proptest::prelude::*;

fn arb_u256() -> impl Strategy<Value = U256> {
    any::<[u64; 4]>().prop_map(U256::from_limbs)
}

fn arb_fr() -> impl Strategy<Value = Fr> {
    arb_u256().prop_map(Fr::from_u256_reduced)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // ---- U256 ring axioms -------------------------------------------------

    #[test]
    fn u256_add_commutes(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
    }

    #[test]
    fn u256_add_associates(a in arb_u256(), b in arb_u256(), c in arb_u256()) {
        prop_assert_eq!(
            a.wrapping_add(b).wrapping_add(c),
            a.wrapping_add(b.wrapping_add(c))
        );
    }

    #[test]
    fn u256_mul_commutes(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(a.full_mul(b), b.full_mul(a));
    }

    #[test]
    fn u256_add_sub_inverse(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(a.wrapping_add(b).wrapping_sub(b), a);
    }

    #[test]
    fn u256_div_rem_identity(a in arb_u256(), b in arb_u256()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(b);
        prop_assert!(r < b);
        let back = q.full_mul(b).to_u256().unwrap().checked_add(r).unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn u512_div_rem_identity(a in arb_u256(), b in arb_u256(), d in arb_u256()) {
        prop_assume!(!d.is_zero());
        let prod = a.full_mul(b);
        let (q, r) = prod.div_rem_u256(d);
        prop_assert!(r < d);
        // q*d + r == prod, computed in 512 bits
        let qd = {
            // multiply q (U512, but fits since q <= prod) by d limb-wise via
            // splitting q into two U256 halves: q = hi*2^256 + lo
            let limbs = {
                let q256 = q.to_u256();
                match q256 {
                    Some(lo) => (U256::ZERO, lo),
                    None => {
                        // reconstruct halves from shifting
                        let lo = (q >> 0).to_u256().unwrap_or(U256::MAX); // placeholder, unreachable for prod = a*b with d>=1: q <= prod < 2^512
                        (U256::ZERO, lo)
                    }
                }
            };
            let (_hi, lo) = limbs;
            lo.full_mul(d)
        };
        // only check when q fits in 256 bits (always true when d > a or d > b;
        // restrict to that case)
        if q.to_u256().is_some() {
            let sum = qd.checked_add(U512::from_u256(r)).unwrap();
            prop_assert_eq!(sum, prod);
        }
    }

    #[test]
    fn u256_shift_roundtrip(a in arb_u256(), s in 0u32..256) {
        let masked = (a >> s) << s;
        // the low s bits are cleared, everything else preserved
        prop_assert_eq!(masked >> s, a >> s);
    }

    #[test]
    fn u256_mul_div_floor_bound(a in arb_u256(), b in arb_u256(), d in arb_u256()) {
        prop_assume!(!d.is_zero());
        if let Some(q) = a.checked_mul_div(b, d) {
            // q*d <= a*b < (q+1)*d
            let qd = q.full_mul(d);
            let ab = a.full_mul(b);
            prop_assert!(qd <= ab);
        }
    }

    #[test]
    fn u256_isqrt_is_floor_sqrt(a in arb_u256()) {
        let r = a.isqrt();
        prop_assert!(r.full_mul(r).to_u256().map(|v| v <= a).unwrap_or(false) || a.is_zero());
        let r1 = r.wrapping_add(U256::ONE);
        let sq = r1.full_mul(r1);
        // (r+1)^2 > a
        prop_assert!(sq > U512::from_u256(a));
    }

    #[test]
    fn u256_dec_roundtrip(a in arb_u256()) {
        let s = a.to_string();
        prop_assert_eq!(U256::from_dec_str(&s).unwrap(), a);
    }

    #[test]
    fn u256_be_bytes_roundtrip(a in arb_u256()) {
        prop_assert_eq!(U256::from_be_bytes(a.to_be_bytes()), a);
    }

    // ---- Field axioms ------------------------------------------------------

    #[test]
    fn fr_add_group(a in arb_fr(), b in arb_fr(), c in arb_fr()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a + Fr::ZERO, a);
        prop_assert_eq!(a + (-a), Fr::ZERO);
    }

    #[test]
    fn fr_mul_distributes(a in arb_fr(), b in arb_fr(), c in arb_fr()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn fr_inverse_law(a in arb_fr()) {
        prop_assume!(!a.is_zero());
        prop_assert_eq!(a * a.inverse().unwrap(), Fr::ONE);
    }

    #[test]
    fn fr_canonical_range(a in arb_fr()) {
        prop_assert!(a.to_u256() < MODULUS);
    }

    // ---- Keccak ------------------------------------------------------------

    #[test]
    fn keccak_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..600), split in 0usize..600) {
        let split = split.min(data.len());
        let mut h = Keccak256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), keccak256(&data));
    }

    #[test]
    fn keccak_x4_permutation_equals_four_scalar(lanes in proptest::collection::vec(any::<u64>(), 100..101)) {
        let mut scalar = [[0u64; 25]; 4];
        let mut interleaved = [[0u64; 4]; 25];
        for s in 0..4 {
            for i in 0..25 {
                scalar[s][i] = lanes[25 * s + i];
                interleaved[i][s] = lanes[25 * s + i];
            }
        }
        for state in scalar.iter_mut() {
            keccak_f1600(state);
        }
        keccak_f1600_x4(&mut interleaved);
        for s in 0..4 {
            for i in 0..25 {
                prop_assert_eq!(interleaved[i][s], scalar[s][i], "stream {} lane {}", s, i);
            }
        }
    }

    #[test]
    fn keccak_x4_hash_equals_four_scalar(
        a in proptest::collection::vec(any::<u8>(), 0..400),
        b in proptest::collection::vec(any::<u8>(), 0..400),
        c in proptest::collection::vec(any::<u8>(), 0..400),
        d in proptest::collection::vec(any::<u8>(), 0..400),
    ) {
        let msgs: [&[u8]; 4] = [&a, &b, &c, &d];
        let got = keccak256_x4(msgs);
        for s in 0..4 {
            prop_assert_eq!(got[s], keccak256(msgs[s]), "stream {}", s);
        }
    }

    // ---- Shamir ------------------------------------------------------------

    #[test]
    fn shamir_reconstructs_from_any_threshold_subset(
        secret in arb_fr(),
        t in 1usize..6,
        extra in 0usize..4,
        seed in any::<u64>(),
    ) {
        let n = t + extra;
        let mut ctr = seed;
        let poly = Polynomial::random_with_secret(secret, t, move || {
            ctr = ctr.wrapping_add(0x9E3779B97F4A7C15);
            keccak256(&ctr.to_be_bytes())
        });
        let shares = poly.deal(n);
        // take the *last* t shares (an arbitrary subset)
        let subset: Vec<Share> = shares[n - t..].to_vec();
        prop_assert_eq!(reconstruct_secret(&subset).unwrap(), secret);
    }

    // ---- Merkle ------------------------------------------------------------

    #[test]
    fn merkle_all_proofs_verify(n in 1usize..40, seed in any::<u64>()) {
        let items: Vec<Vec<u8>> = (0..n)
            .map(|i| keccak256(&(seed ^ i as u64).to_be_bytes()).to_vec())
            .collect();
        let tree = MerkleTree::from_items(&items);
        for (i, item) in items.iter().enumerate() {
            let proof = tree.prove(i).unwrap();
            prop_assert!(verify_proof(&tree.root(), &leaf_hash(item), &proof));
        }
    }

    #[test]
    fn merkle_proof_rejects_other_leaf(n in 2usize..40, seed in any::<u64>()) {
        let items: Vec<Vec<u8>> = (0..n)
            .map(|i| keccak256(&(seed ^ i as u64).to_be_bytes()).to_vec())
            .collect();
        let tree = MerkleTree::from_items(&items);
        let proof = tree.prove(0).unwrap();
        prop_assert!(!verify_proof(&tree.root(), &leaf_hash(&items[1]), &proof));
    }

    #[test]
    fn merkle_batched_build_equals_scalar(n in 0usize..300, seed in any::<u64>(), len in 0usize..80) {
        // variable-length items: leaf batching and node batching must
        // both reproduce the scalar oracle's roots and proofs exactly
        let items: Vec<Vec<u8>> = (0..n)
            .map(|i| {
                let digest = keccak256(&(seed ^ i as u64).to_be_bytes());
                digest.iter().cycle().take((len + i) % 80).copied().collect()
            })
            .collect();
        let batched = MerkleTree::from_items(&items);
        let scalar = MerkleTree::from_items_scalar(&items);
        prop_assert_eq!(batched.root(), scalar.root());
        for i in 0..n {
            prop_assert_eq!(batched.prove(i), scalar.prove(i), "proof {}", i);
        }
    }
}
