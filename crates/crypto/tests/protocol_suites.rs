//! Protocol-level integration tests for the crypto substrate: the
//! committee-handover chain ammBoost relies on (DKG → vk registration →
//! TSQC under the new key), threshold boundaries, and cross-component
//! interactions.

use ammboost_crypto::bls::{keypair_from_seed, Signature};
use ammboost_crypto::dkg::{aggregate_dealings, run_ceremony, Dealing, DkgConfig};
use ammboost_crypto::tsqc::{
    combine, partial_sign, quorum_threshold, verify_partial, QuorumCertificate,
};
use ammboost_crypto::vrf::VrfSecretKey;
use ammboost_crypto::H256;

/// The full epoch-handover chain of §IV-C: committee e+1 runs DKG during
/// epoch e; committee e records vk_{e+1}; epoch e+1's sync verifies under
/// the new key and *only* the new key.
#[test]
fn committee_handover_chain() {
    let config = DkgConfig::for_faults(2); // n = 8, t = 6
    let mut current = run_ceremony(config, 100);
    let mut registered_vk = current.group_public_key;

    for epoch in 1..=5u64 {
        // next committee's ceremony runs during this epoch
        let next = run_ceremony(config, 100 + epoch);
        // this epoch's sync carries the next vk, signed under the current
        let payload = format!("Sync(epoch={epoch}, next_vk=..)");
        let partials: Vec<_> = current.key_shares[..config.threshold]
            .iter()
            .map(|ks| partial_sign(ks, payload.as_bytes()))
            .collect();
        let qc =
            QuorumCertificate::assemble(epoch, payload.as_bytes(), &partials, config.threshold)
                .unwrap();
        assert!(qc.verify(&registered_vk, payload.as_bytes()));
        // an old committee cannot fake the next epoch's sync
        if epoch > 1 {
            let stale = run_ceremony(config, 100 + epoch - 2);
            let forged: Vec<_> = stale.key_shares[..config.threshold]
                .iter()
                .map(|ks| partial_sign(ks, payload.as_bytes()))
                .collect();
            let forged_qc =
                QuorumCertificate::assemble(epoch, payload.as_bytes(), &forged, config.threshold)
                    .unwrap();
            // (stale seed differs from the registered committee)
            assert!(!forged_qc.verify(&registered_vk, payload.as_bytes()));
        }
        // handover
        registered_vk = next.group_public_key;
        current = next;
    }
}

#[test]
fn threshold_boundary_is_exact() {
    let config = DkgConfig::for_faults(3); // n = 11, t = 8
    let out = run_ceremony(config, 7);
    let msg = b"boundary";
    let partials: Vec<_> = out
        .key_shares
        .iter()
        .map(|ks| partial_sign(ks, msg))
        .collect();
    assert_eq!(quorum_threshold(11), 8);
    // t-1 fails
    assert!(combine(&partials[..7], 8).is_err());
    // exactly t succeeds and verifies
    let sig = combine(&partials[..8], 8).unwrap();
    assert!(out.group_public_key.verify_raw_tsqc(msg, &sig));
    // more than t gives the same signature
    let sig_all = combine(&partials, 8).unwrap();
    assert_eq!(sig, sig_all);
}

#[test]
fn mixed_good_and_bad_partials() {
    let config = DkgConfig::for_faults(2); // n = 8, t = 6
    let out = run_ceremony(config, 8);
    let msg = b"mixed";
    let mut partials: Vec<_> = out
        .key_shares
        .iter()
        .map(|ks| partial_sign(ks, msg))
        .collect();
    // two byzantine members sign a different message
    partials[0] = partial_sign(&out.key_shares[0], b"evil-0");
    partials[3] = partial_sign(&out.key_shares[3], b"evil-3");

    // the verifier can filter bad partials individually...
    let good: Vec<_> = partials
        .iter()
        .filter(|p| {
            let vk = out.key_shares[(p.index - 1) as usize].verification_key;
            verify_partial(&vk, msg, p)
        })
        .cloned()
        .collect();
    assert_eq!(good.len(), 6);
    // ...and the filtered set combines into a valid signature
    let sig = combine(&good, 6).unwrap();
    assert!(out.group_public_key.verify_raw_tsqc(msg, &sig));
    // combining blindly with the bad ones fails verification
    let blind = combine(&partials[..6], 6).unwrap();
    assert!(!out.group_public_key.verify_raw_tsqc(msg, &blind));
}

#[test]
fn dkg_with_exactly_threshold_qualified() {
    // n = 5, t = 3: two corrupt dealers leave exactly 3 qualified
    let config = DkgConfig::new(5, 3);
    let mut dealings: Vec<Dealing> = (1..=5u32)
        .map(|i| {
            let mut ctr = 0u64;
            Dealing::deal(i, config, move || {
                ctr += 1;
                ammboost_crypto::keccak::keccak256_concat(&[
                    b"exact",
                    &(i as u64).to_be_bytes(),
                    &ctr.to_be_bytes(),
                ])
            })
        })
        .collect();
    dealings[0].corrupt_share_for(2);
    dealings[4].corrupt_share_for(1);
    let out = aggregate_dealings(config, &dealings).unwrap();
    assert_eq!(out.qualified, vec![2, 3, 4]);
    // the reduced group still signs
    let msg = b"still alive";
    let partials: Vec<_> = out.key_shares[..3]
        .iter()
        .map(|ks| partial_sign(ks, msg))
        .collect();
    let sig = combine(&partials, 3).unwrap();
    assert!(out.group_public_key.verify_raw_tsqc(msg, &sig));
}

#[test]
fn vrf_outputs_are_statistically_spread() {
    // sortition fairness sanity: over 200 miners, outputs cover the unit
    // interval roughly uniformly
    let mut buckets = [0usize; 10];
    for i in 0..200u64 {
        let sk = VrfSecretKey::from_entropy(ammboost_crypto::keccak::keccak256(&i.to_be_bytes()));
        let (out, _) = sk.eval(b"spread-test");
        let f = ammboost_crypto::vrf::output_to_unit_fraction(&out);
        buckets[(f * 10.0) as usize % 10] += 1;
    }
    for (i, b) in buckets.iter().enumerate() {
        assert!(
            (5..=40).contains(b),
            "bucket {i} has {b} of 200 — far from uniform"
        );
    }
}

#[test]
fn aggregate_signature_is_order_independent() {
    let sks: Vec<_> = (0..6).map(|i| keypair_from_seed(55, i).0).collect();
    let sigs: Vec<Signature> = sks.iter().map(|s| s.sign(b"order")).collect();
    let forward = Signature::aggregate(&sigs);
    let mut rev = sigs.clone();
    rev.reverse();
    let backward = Signature::aggregate(&rev);
    assert_eq!(forward, backward);
}

#[test]
fn qc_binds_epoch_and_payload() {
    let out = run_ceremony(DkgConfig::for_faults(1), 77);
    let payload = b"epoch-9 sync";
    let partials: Vec<_> = out.key_shares[..4]
        .iter()
        .map(|ks| partial_sign(ks, payload))
        .collect();
    let qc = QuorumCertificate::assemble(9, payload, &partials, 4).unwrap();
    assert_eq!(qc.epoch, 9);
    assert_eq!(qc.payload_hash, H256::hash(payload));
    // tampering with the recorded hash breaks verification
    let mut bad = qc.clone();
    bad.payload_hash = H256::hash(b"other");
    assert!(!bad.verify(&out.group_public_key, payload));
}
