//! Joint-Feldman distributed key generation (DKG).
//!
//! Each epoch committee in ammBoost runs a DKG to produce the committee
//! verification key `vk_c` (recorded on TokenBank by the *previous*
//! committee's sync) and per-member signing shares with threshold `2f + 2`
//! out of `3f + 2` (paper §IV-C "Authentication").
//!
//! The ceremony is the classic Feldman-verified protocol: every dealer
//! shares a random secret with public polynomial commitments in `G2`;
//! receivers verify their shares against the commitments and complain about
//! bad dealers; disqualified dealers are excluded from the qualified set,
//! whose combined constant terms define the group key.

use crate::bls::PublicKey;
use crate::field::Fr;
use crate::group::G2;
use crate::shamir::{Polynomial, Share};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Static parameters of a DKG ceremony.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DkgConfig {
    /// Number of participants (committee size, `3f + 2` in ammBoost).
    pub participants: usize,
    /// Reconstruction threshold (`2f + 2` in ammBoost).
    pub threshold: usize,
}

impl DkgConfig {
    /// Creates a config, validating `1 <= threshold <= participants`.
    ///
    /// # Panics
    /// Panics on invalid parameters.
    pub fn new(participants: usize, threshold: usize) -> DkgConfig {
        assert!(participants >= 1, "need at least one participant");
        assert!(
            (1..=participants).contains(&threshold),
            "threshold must be in 1..=participants"
        );
        DkgConfig {
            participants,
            threshold,
        }
    }

    /// The PBFT-style config used by ammBoost: committee of `3f + 2`,
    /// quorum / signing threshold `2f + 2`.
    pub fn for_faults(f: usize) -> DkgConfig {
        DkgConfig::new(3 * f + 2, 2 * f + 2)
    }
}

/// One dealer's contribution: Feldman commitments plus one share per
/// receiver.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dealing {
    /// 1-based dealer index.
    pub dealer: u32,
    /// `g2 * a_k` for each polynomial coefficient `a_k` (constant first).
    pub commitments: Vec<G2>,
    /// Shares addressed to receivers `1..=n` (in index order).
    pub shares: Vec<Share>,
}

impl Dealing {
    /// Produces an honest dealing for `dealer` under `config`, drawing
    /// polynomial coefficients from `entropy`.
    pub fn deal<F: FnMut() -> [u8; 32]>(dealer: u32, config: DkgConfig, mut entropy: F) -> Dealing {
        let secret = Fr::from_entropy(entropy());
        let poly = Polynomial::random_with_secret(secret, config.threshold, &mut entropy);
        let commitments = poly
            .coefficients()
            .iter()
            .map(|&c| G2::generator() * c)
            .collect();
        Dealing {
            dealer,
            commitments,
            shares: poly.deal(config.participants),
        }
    }

    /// Feldman check: `g2 * share == Σ_k C_k * index^k`.
    pub fn verify_share(&self, share: &Share) -> bool {
        let mut expect = G2::IDENTITY;
        let x = Fr::from_u64(share.index as u64);
        let mut x_pow = Fr::ONE;
        for c in &self.commitments {
            expect = expect + *c * x_pow;
            x_pow = x_pow * x;
        }
        G2::generator() * share.value == expect
    }

    /// The dealer's committed constant term `g2 * a_0`.
    pub fn constant_commitment(&self) -> G2 {
        self.commitments[0]
    }

    /// Corrupts the share for `receiver` (test/fault-injection helper used
    /// to exercise the complaint path).
    pub fn corrupt_share_for(&mut self, receiver: u32) {
        for s in &mut self.shares {
            if s.index == receiver {
                s.value = s.value + Fr::ONE;
            }
        }
    }
}

/// A complaint raised by `accuser` against `dealer` whose share failed the
/// Feldman check.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Complaint {
    /// 1-based index of the complaining receiver.
    pub accuser: u32,
    /// 1-based index of the accused dealer.
    pub dealer: u32,
}

/// A participant's final key material.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct KeyShare {
    /// 1-based participant index.
    pub index: u32,
    /// Secret signing share `x_i = Σ_{d ∈ QUAL} f_d(i)`.
    pub secret: Fr,
    /// Public verification key `g2 * x_i`.
    pub verification_key: PublicKey,
}

/// The public outcome of a ceremony.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DkgOutput {
    /// The committee verification key `vk_c = g2 * Σ_{d ∈ QUAL} a_{d,0}`.
    pub group_public_key: PublicKey,
    /// Every participant's key share (in a real deployment each party only
    /// learns its own secret; the simulation returns all of them).
    pub key_shares: Vec<KeyShare>,
    /// Dealers that survived the complaint round.
    pub qualified: Vec<u32>,
    /// Complaints raised during verification.
    pub complaints: Vec<Complaint>,
    /// The ceremony parameters.
    pub config: DkgConfig,
}

/// Errors from running a ceremony.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DkgError {
    /// Fewer qualified dealers than the threshold requires; the ceremony
    /// must restart with a fresh committee.
    TooFewQualified {
        /// Number of dealers that survived complaints.
        qualified: usize,
        /// Required minimum.
        needed: usize,
    },
    /// A dealing was malformed (wrong share count or commitment length).
    MalformedDealing(u32),
}

impl std::fmt::Display for DkgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DkgError::TooFewQualified { qualified, needed } => {
                write!(f, "only {qualified} qualified dealers, need {needed}")
            }
            DkgError::MalformedDealing(d) => write!(f, "malformed dealing from {d}"),
        }
    }
}

impl std::error::Error for DkgError {}

/// Runs the verification + aggregation phase over collected dealings.
///
/// Dealings whose shares fail the Feldman check for any receiver are
/// disqualified (the complaint is recorded). The qualified dealers' secrets
/// are summed into the group key; shares are aggregated per receiver.
///
/// # Errors
/// Fails when fewer than `threshold` dealers qualify (liveness cannot be
/// guaranteed below the reconstruction threshold).
pub fn aggregate_dealings(config: DkgConfig, dealings: &[Dealing]) -> Result<DkgOutput, DkgError> {
    for d in dealings {
        if d.shares.len() != config.participants || d.commitments.len() != config.threshold {
            return Err(DkgError::MalformedDealing(d.dealer));
        }
    }

    let mut complaints = Vec::new();
    let mut disqualified: BTreeSet<u32> = BTreeSet::new();
    for d in dealings {
        for s in &d.shares {
            if !d.verify_share(s) {
                complaints.push(Complaint {
                    accuser: s.index,
                    dealer: d.dealer,
                });
                disqualified.insert(d.dealer);
            }
        }
    }

    let qualified: Vec<&Dealing> = dealings
        .iter()
        .filter(|d| !disqualified.contains(&d.dealer))
        .collect();
    if qualified.len() < config.threshold {
        return Err(DkgError::TooFewQualified {
            qualified: qualified.len(),
            needed: config.threshold,
        });
    }

    let group_point: G2 = qualified.iter().map(|d| d.constant_commitment()).sum();

    let mut key_shares = Vec::with_capacity(config.participants);
    for i in 1..=config.participants as u32 {
        let mut secret = Fr::ZERO;
        for d in &qualified {
            let share = d
                .shares
                .iter()
                .find(|s| s.index == i)
                .expect("dealing length checked above");
            secret = secret + share.value;
        }
        key_shares.push(KeyShare {
            index: i,
            secret,
            verification_key: PublicKey::from_point(G2::generator() * secret),
        });
    }

    Ok(DkgOutput {
        group_public_key: PublicKey::from_point(group_point),
        key_shares,
        qualified: qualified.iter().map(|d| d.dealer).collect(),
        complaints,
        config,
    })
}

/// Convenience: runs a full honest ceremony from a deterministic seed.
pub fn run_ceremony(config: DkgConfig, seed: u64) -> DkgOutput {
    let dealings: Vec<Dealing> = (1..=config.participants as u32)
        .map(|i| {
            let mut ctr: u64 = 0;
            Dealing::deal(i, config, move || {
                ctr += 1;
                crate::keccak::keccak256_concat(&[
                    b"DKG-ENTROPY",
                    &seed.to_be_bytes(),
                    &(i as u64).to_be_bytes(),
                    &ctr.to_be_bytes(),
                ])
            })
        })
        .collect();
    aggregate_dealings(config, &dealings).expect("honest ceremony cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shamir::reconstruct_secret;

    #[test]
    fn honest_ceremony_produces_consistent_keys() {
        let config = DkgConfig::for_faults(1); // n = 5, t = 4
        let out = run_ceremony(config, 7);
        assert_eq!(out.key_shares.len(), 5);
        assert_eq!(out.qualified.len(), 5);
        assert!(out.complaints.is_empty());
        // Reconstructing the group secret from t shares must match the
        // group public key.
        let shares: Vec<Share> = out.key_shares[..4]
            .iter()
            .map(|k| Share {
                index: k.index,
                value: k.secret,
            })
            .collect();
        let group_secret = reconstruct_secret(&shares).unwrap();
        assert_eq!(G2::generator() * group_secret, out.group_public_key.point());
    }

    #[test]
    fn verification_keys_match_secrets() {
        let out = run_ceremony(DkgConfig::new(4, 3), 9);
        for ks in &out.key_shares {
            assert_eq!(ks.verification_key.point(), G2::generator() * ks.secret);
        }
    }

    #[test]
    fn corrupt_dealer_is_disqualified() {
        let config = DkgConfig::for_faults(1);
        let mut dealings: Vec<Dealing> = (1..=5u32)
            .map(|i| {
                let mut ctr = 0u64;
                Dealing::deal(i, config, move || {
                    ctr += 1;
                    crate::keccak::keccak256_concat(&[
                        b"T",
                        &(i as u64).to_be_bytes(),
                        &ctr.to_be_bytes(),
                    ])
                })
            })
            .collect();
        dealings[2].corrupt_share_for(4);
        let out = aggregate_dealings(config, &dealings).unwrap();
        assert_eq!(out.qualified, vec![1, 2, 4, 5]);
        assert_eq!(
            out.complaints,
            vec![Complaint {
                accuser: 4,
                dealer: 3
            }]
        );
    }

    #[test]
    fn too_many_corrupt_dealers_abort() {
        let config = DkgConfig::new(3, 3);
        let mut dealings: Vec<Dealing> = (1..=3u32)
            .map(|i| {
                let mut ctr = 0u64;
                Dealing::deal(i, config, move || {
                    ctr += 1;
                    crate::keccak::keccak256_concat(&[
                        b"U",
                        &(i as u64).to_be_bytes(),
                        &ctr.to_be_bytes(),
                    ])
                })
            })
            .collect();
        dealings[0].corrupt_share_for(2);
        let err = aggregate_dealings(config, &dealings).unwrap_err();
        assert_eq!(
            err,
            DkgError::TooFewQualified {
                qualified: 2,
                needed: 3
            }
        );
    }

    #[test]
    fn malformed_dealing_rejected() {
        let config = DkgConfig::new(3, 2);
        let mut ctr = 0u64;
        let mut d = Dealing::deal(1, config, move || {
            ctr += 1;
            crate::keccak::keccak256(&ctr.to_be_bytes())
        });
        d.shares.pop();
        let err = aggregate_dealings(config, &[d]).unwrap_err();
        assert_eq!(err, DkgError::MalformedDealing(1));
    }

    #[test]
    fn feldman_check_rejects_tampered_share() {
        let config = DkgConfig::new(4, 3);
        let mut ctr = 0u64;
        let d = Dealing::deal(1, config, move || {
            ctr += 1;
            crate::keccak::keccak256(&ctr.to_be_bytes())
        });
        let mut s = d.shares[0];
        assert!(d.verify_share(&s));
        s.value = s.value + Fr::ONE;
        assert!(!d.verify_share(&s));
    }

    #[test]
    fn for_faults_sizes() {
        let c = DkgConfig::for_faults(166); // paper's 500-member committee
        assert_eq!(c.participants, 500);
        assert_eq!(c.threshold, 334);
    }
}
