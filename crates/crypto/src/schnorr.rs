//! Schnorr signatures for ordinary user transactions (deposits, swaps,
//! mints, burns, collects). Deterministic nonces, Fiat–Shamir challenge
//! over Keccak-256.

use crate::field::Fr;
use crate::group::G1;
use crate::keccak::keccak256_concat;
use crate::types::Address;
use serde::{Deserialize, Serialize};

const DST_NONCE: &[u8] = b"AMMBOOST-SCHNORR-NONCE";
const DST_CHAL: &[u8] = b"AMMBOOST-SCHNORR-CHAL";

/// A Schnorr keypair for a client or liquidity provider.
#[derive(Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Keypair {
    sk: Fr,
    /// The public key `g1 * sk`.
    pub pk: G1,
}

impl std::fmt::Debug for Keypair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Keypair").field("pk", &self.pk).finish()
    }
}

/// A Schnorr signature `(R, s)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchnorrSignature {
    /// Nonce commitment `g1 * k`.
    pub r: G1,
    /// Response `s = k + e * sk`.
    pub s: Fr,
}

impl SchnorrSignature {
    /// Wire size in bytes (64-byte point + 32-byte scalar); used by
    /// transaction-size accounting.
    pub const SERIALIZED_LEN: usize = 96;
}

impl Keypair {
    /// Derives a keypair from 32 bytes of entropy.
    pub fn from_entropy(entropy: [u8; 32]) -> Keypair {
        let mut sk = Fr::from_entropy(entropy);
        if sk.is_zero() {
            sk = Fr::ONE;
        }
        Keypair {
            sk,
            pk: G1::generator() * sk,
        }
    }

    /// Deterministic keypair for simulated user `index` under `seed`.
    pub fn from_seed(seed: u64, index: u64) -> Keypair {
        Keypair::from_entropy(keccak256_concat(&[
            b"AMMBOOST-USER",
            &seed.to_be_bytes(),
            &index.to_be_bytes(),
        ]))
    }

    /// The user's 20-byte account address (keccak of the public key).
    pub fn address(&self) -> Address {
        Address::from_pubkey_bytes(&self.pk.to_bytes())
    }

    /// Signs `msg`.
    pub fn sign(&self, msg: &[u8]) -> SchnorrSignature {
        let k =
            Fr::from_be_bytes_reduced(keccak256_concat(&[DST_NONCE, &self.sk.to_be_bytes(), msg]));
        let r = G1::generator() * k;
        let e = challenge(&r, &self.pk, msg);
        SchnorrSignature {
            r,
            s: k + e * self.sk,
        }
    }
}

/// Verifies a Schnorr signature: `g1 * s == R + pk * e`.
pub fn verify(pk: &G1, msg: &[u8], sig: &SchnorrSignature) -> bool {
    let e = challenge(&sig.r, pk, msg);
    G1::generator() * sig.s == sig.r + *pk * e
}

fn challenge(r: &G1, pk: &G1, msg: &[u8]) -> Fr {
    Fr::from_be_bytes_reduced(keccak256_concat(&[
        DST_CHAL,
        &r.to_bytes(),
        &pk.to_bytes(),
        msg,
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify() {
        let kp = Keypair::from_seed(1, 1);
        let sig = kp.sign(b"swap 5 A for B");
        assert!(verify(&kp.pk, b"swap 5 A for B", &sig));
        assert!(!verify(&kp.pk, b"swap 6 A for B", &sig));
    }

    #[test]
    fn wrong_key_fails() {
        let a = Keypair::from_seed(1, 1);
        let b = Keypair::from_seed(1, 2);
        let sig = a.sign(b"m");
        assert!(!verify(&b.pk, b"m", &sig));
    }

    #[test]
    fn tampered_signature_fails() {
        let kp = Keypair::from_seed(1, 3);
        let mut sig = kp.sign(b"m");
        sig.s = sig.s + Fr::ONE;
        assert!(!verify(&kp.pk, b"m", &sig));
    }

    #[test]
    fn deterministic_signatures() {
        let kp = Keypair::from_seed(9, 9);
        assert_eq!(kp.sign(b"m"), kp.sign(b"m"));
    }

    #[test]
    fn addresses_are_stable_and_distinct() {
        let a = Keypair::from_seed(1, 10).address();
        let b = Keypair::from_seed(1, 11).address();
        assert_eq!(a, Keypair::from_seed(1, 10).address());
        assert_ne!(a, b);
    }
}
