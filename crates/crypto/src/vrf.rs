//! A verifiable random function (VRF) in the ECVRF style, used for
//! cryptographic-sortition committee election (paper §IV-A, Appendix A).
//!
//! `eval` produces `gamma = H1(m) * sk` together with a Chaum–Pedersen DLEQ
//! proof that `log_{g2}(pk) == log_{H1(m)}(gamma)`; the VRF output is
//! `keccak256(gamma)`. The proof is exactly the election proof ammBoost
//! committees attach when handing `vk_c` to the previous committee.

use crate::field::Fr;
use crate::group::{G1, G2};
use crate::keccak::keccak256_concat;
use crate::types::H256;
use serde::{Deserialize, Serialize};

const DST_VRF_H1: &[u8] = b"AMMBOOST-VRF-H1";
const DST_VRF_NONCE: &[u8] = b"AMMBOOST-VRF-NONCE";
const DST_VRF_CHALLENGE: &[u8] = b"AMMBOOST-VRF-CHAL";

/// A VRF secret key.
#[derive(Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VrfSecretKey(Fr);

impl std::fmt::Debug for VrfSecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VrfSecretKey(..)")
    }
}

/// A VRF public key (`g2 * sk`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct VrfPublicKey(G2);

/// A VRF evaluation proof: `gamma` plus the DLEQ transcript `(c, s)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct VrfProof {
    /// `H1(m) * sk` — determines the output.
    pub gamma: G1,
    /// Fiat–Shamir challenge.
    pub c: Fr,
    /// Response `s = k - c * sk`.
    pub s: Fr,
}

impl VrfSecretKey {
    /// Derives a key from 32 bytes of entropy.
    pub fn from_entropy(entropy: [u8; 32]) -> VrfSecretKey {
        let mut fr = Fr::from_entropy(entropy);
        if fr.is_zero() {
            fr = Fr::ONE;
        }
        VrfSecretKey(fr)
    }

    /// Returns the public key.
    pub fn public_key(&self) -> VrfPublicKey {
        VrfPublicKey(G2::generator() * self.0)
    }

    /// Evaluates the VRF on `input`, returning `(output, proof)`.
    ///
    /// The nonce is derived deterministically (RFC-6979 style) so
    /// evaluation is a pure function of `(sk, input)`.
    pub fn eval(&self, input: &[u8]) -> (H256, VrfProof) {
        let h = G1::hash_to_point(DST_VRF_H1, input);
        let gamma = h * self.0;
        let k = Fr::from_be_bytes_reduced(keccak256_concat(&[
            DST_VRF_NONCE,
            &self.0.to_be_bytes(),
            input,
        ]));
        let u = G2::generator() * k; // commitment wrt g2
        let v = h * k; // commitment wrt h
        let c = challenge(&self.public_key(), &h, &gamma, &u, &v);
        let s = k - c * self.0;
        let out = vrf_output(&gamma);
        (out, VrfProof { gamma, c, s })
    }
}

impl VrfPublicKey {
    /// Verifies a proof for `input`; returns the VRF output on success.
    pub fn verify(&self, input: &[u8], proof: &VrfProof) -> Option<H256> {
        let h = G1::hash_to_point(DST_VRF_H1, input);
        // u' = g2*s + pk*c ; v' = h*s + gamma*c
        let u = G2::generator() * proof.s + self.0 * proof.c;
        let v = h * proof.s + proof.gamma * proof.c;
        let c = challenge(self, &h, &proof.gamma, &u, &v);
        if c == proof.c {
            Some(vrf_output(&proof.gamma))
        } else {
            None
        }
    }

    /// Canonical encoding (128 bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.0.to_bytes()
    }
}

fn challenge(pk: &VrfPublicKey, h: &G1, gamma: &G1, u: &G2, v: &G1) -> Fr {
    Fr::from_be_bytes_reduced(keccak256_concat(&[
        DST_VRF_CHALLENGE,
        &pk.0.to_bytes(),
        &h.to_bytes(),
        &gamma.to_bytes(),
        &u.to_bytes(),
        &v.to_bytes(),
    ]))
}

fn vrf_output(gamma: &G1) -> H256 {
    H256::hash_concat(&[b"AMMBOOST-VRF-OUT", &gamma.to_bytes()])
}

/// Interprets a VRF output as a uniform fraction in `[0, 1)` with 64-bit
/// precision — the sortition lottery draw.
pub fn output_to_unit_fraction(out: &H256) -> f64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&out.0[..8]);
    (u64::from_be_bytes(b) as f64) / (u64::MAX as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sk(i: u64) -> VrfSecretKey {
        VrfSecretKey::from_entropy(crate::keccak::keccak256(&i.to_be_bytes()))
    }

    #[test]
    fn eval_verify_roundtrip() {
        let secret = sk(1);
        let (out, proof) = secret.eval(b"epoch-5-election");
        let verified = secret.public_key().verify(b"epoch-5-election", &proof);
        assert_eq!(verified, Some(out));
    }

    #[test]
    fn wrong_input_rejected() {
        let secret = sk(2);
        let (_, proof) = secret.eval(b"input-a");
        assert!(secret.public_key().verify(b"input-b", &proof).is_none());
    }

    #[test]
    fn wrong_key_rejected() {
        let (_, proof) = sk(3).eval(b"input");
        assert!(sk(4).public_key().verify(b"input", &proof).is_none());
    }

    #[test]
    fn tampered_gamma_rejected_and_output_binds() {
        let secret = sk(5);
        let (out, mut proof) = secret.eval(b"in");
        proof.gamma = proof.gamma + G1::generator();
        let res = secret.public_key().verify(b"in", &proof);
        // Either verification fails, or (impossible here) output changes.
        assert_ne!(res, Some(out));
        assert!(res.is_none());
    }

    #[test]
    fn deterministic_evaluation() {
        let secret = sk(6);
        assert_eq!(secret.eval(b"x"), secret.eval(b"x"));
        assert_ne!(secret.eval(b"x").0, secret.eval(b"y").0);
    }

    #[test]
    fn outputs_differ_across_keys() {
        assert_ne!(sk(7).eval(b"seed").0, sk(8).eval(b"seed").0);
    }

    #[test]
    fn unit_fraction_in_range() {
        for i in 0..50u64 {
            let (out, _) = sk(i).eval(b"frac");
            let f = output_to_unit_fraction(&out);
            assert!((0.0..1.0).contains(&f), "{f}");
        }
    }
}
