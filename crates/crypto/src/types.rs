//! Common hash-sized value types shared across the workspace: [`H256`]
//! digests and 20-byte [`Address`]es (derived, Ethereum-style, from the
//! Keccak-256 hash of a public key).

use crate::keccak::keccak256;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A 256-bit hash value (block ids, transaction ids, Merkle roots).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct H256(pub [u8; 32]);

impl H256 {
    /// The all-zero hash.
    pub const ZERO: H256 = H256([0u8; 32]);

    /// Hashes arbitrary bytes with Keccak-256.
    pub fn hash(data: &[u8]) -> H256 {
        H256(keccak256(data))
    }

    /// Hashes the concatenation of multiple byte slices.
    pub fn hash_concat(parts: &[&[u8]]) -> H256 {
        H256(crate::keccak::keccak256_concat(parts))
    }

    /// Returns the raw bytes.
    pub const fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Returns `true` if every byte is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == [0u8; 32]
    }

    /// Lowercase hex string (no `0x` prefix).
    pub fn to_hex(&self) -> String {
        to_hex(&self.0)
    }
}

impl fmt::Debug for H256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "H256(0x{}…)", &self.to_hex()[..8])
    }
}

impl fmt::Display for H256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl From<[u8; 32]> for H256 {
    fn from(b: [u8; 32]) -> Self {
        H256(b)
    }
}

impl AsRef<[u8]> for H256 {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// A 20-byte account / contract address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct Address(pub [u8; 20]);

impl Address {
    /// The all-zero address (used as the "null" address).
    pub const ZERO: Address = Address([0u8; 20]);

    /// Derives an address from public-key bytes: the low 20 bytes of
    /// `keccak256(pk)`, as Ethereum does.
    pub fn from_pubkey_bytes(pk: &[u8]) -> Address {
        let h = keccak256(pk);
        let mut out = [0u8; 20];
        out.copy_from_slice(&h[12..]);
        Address(out)
    }

    /// A deterministic test/demo address derived from an index.
    pub fn from_index(i: u64) -> Address {
        let h = keccak256(&i.to_be_bytes());
        let mut out = [0u8; 20];
        out.copy_from_slice(&h[12..]);
        Address(out)
    }

    /// Returns the raw bytes.
    pub const fn as_bytes(&self) -> &[u8; 20] {
        &self.0
    }

    /// Lowercase hex string (no `0x` prefix).
    pub fn to_hex(&self) -> String {
        to_hex(&self.0)
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Address(0x{}…)", &self.to_hex()[..8])
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl AsRef<[u8]> for Address {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Encodes bytes as lowercase hex.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble < 16"));
        s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble < 16"));
    }
    s
}

/// Decodes a hex string (with or without `0x` prefix).
///
/// # Errors
/// Returns `None` on odd length or non-hex characters.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    let s = s.strip_prefix("0x").unwrap_or(s);
    if s.len() % 2 != 0 {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for pair in bytes.chunks(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push(((hi << 4) | lo) as u8);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_and_display() {
        let h = H256::hash(b"hello");
        assert!(!h.is_zero());
        assert!(h.to_string().starts_with("0x"));
        assert_eq!(h.to_hex().len(), 64);
    }

    #[test]
    fn address_derivation_is_deterministic() {
        let a = Address::from_pubkey_bytes(b"some pubkey");
        let b = Address::from_pubkey_bytes(b"some pubkey");
        let c = Address::from_pubkey_bytes(b"other pubkey");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn address_from_index_distinct() {
        assert_ne!(Address::from_index(0), Address::from_index(1));
    }

    #[test]
    fn hex_roundtrip() {
        let data = vec![0u8, 1, 0xab, 0xff, 0x10];
        let s = to_hex(&data);
        assert_eq!(from_hex(&s).unwrap(), data);
        assert_eq!(from_hex(&format!("0x{s}")).unwrap(), data);
        assert!(from_hex("abc").is_none()); // odd length
        assert!(from_hex("zz").is_none()); // bad digit
    }

    #[test]
    fn hash_concat_matches() {
        assert_eq!(H256::hash_concat(&[b"ab", b"c"]), H256::hash(b"abc"));
    }
}
