//! BLS signatures over the bilinear group of [`crate::group`].
//!
//! Secret keys are scalars, public keys live in `G2`, signatures in `G1`
//! (the "minimal-signature" configuration the paper uses: 64-byte
//! signatures, 128-byte public keys on the mainchain). Supports aggregation
//! and proofs of possession; the threshold variant lives in [`crate::tsqc`].

use crate::field::Fr;
use crate::group::{pairing_check, G1, G2};
use crate::keccak::keccak256_concat;
use serde::{Deserialize, Serialize};

/// Domain-separation tag for ordinary message signatures.
const DST_SIG: &[u8] = b"AMMBOOST-BLS-SIG-V1";
/// Domain-separation tag for proofs of possession.
const DST_POP: &[u8] = b"AMMBOOST-BLS-POP-V1";

/// A BLS secret key.
#[derive(Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SecretKey(Fr);

impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "SecretKey(..)")
    }
}

/// A BLS public key (an element of `G2`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct PublicKey(pub(crate) G2);

/// A BLS signature (an element of `G1`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Signature(pub(crate) G1);

impl SecretKey {
    /// Constructs a secret key from a field element.
    ///
    /// # Panics
    /// Panics if `scalar` is zero (the identity key is forbidden).
    pub fn from_scalar(scalar: Fr) -> SecretKey {
        assert!(!scalar.is_zero(), "secret key must be non-zero");
        SecretKey(scalar)
    }

    /// Derives a secret key from 32 bytes of entropy.
    pub fn from_entropy(entropy: [u8; 32]) -> SecretKey {
        let mut fr = Fr::from_entropy(entropy);
        if fr.is_zero() {
            fr = Fr::ONE; // probability 2^-254; keep total function
        }
        SecretKey(fr)
    }

    /// Returns the corresponding public key.
    pub fn public_key(&self) -> PublicKey {
        PublicKey(G2::generator() * self.0)
    }

    /// Signs a message.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        let h = G1::hash_to_point(DST_SIG, msg);
        Signature(h * self.0)
    }

    /// Produces a proof of possession (a signature over the public key),
    /// defending aggregate verification against rogue-key attacks.
    pub fn prove_possession(&self) -> Signature {
        let pk = self.public_key();
        let h = G1::hash_to_point(DST_POP, &pk.to_bytes());
        Signature(h * self.0)
    }

    /// Exposes the underlying scalar (crate-internal; the threshold layer
    /// needs it for share arithmetic).
    #[allow(dead_code)]
    pub(crate) fn scalar(&self) -> Fr {
        self.0
    }
}

impl PublicKey {
    /// Verifies `sig` over `msg` under this key.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        let h = G1::hash_to_point(DST_SIG, msg);
        pairing_check(&h, &self.0, &sig.0, &G2::generator())
    }

    /// Verifies a proof of possession.
    pub fn verify_possession(&self, pop: &Signature) -> bool {
        let h = G1::hash_to_point(DST_POP, &self.to_bytes());
        pairing_check(&h, &self.0, &pop.0, &G2::generator())
    }

    /// Canonical byte encoding (128 bytes, matching an uncompressed BN254
    /// G2 point — the `vk_c` size in the paper's Table IV).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.0.to_bytes()
    }

    /// Aggregates public keys (sum in `G2`).
    pub fn aggregate<'a, I: IntoIterator<Item = &'a PublicKey>>(keys: I) -> PublicKey {
        PublicKey(keys.into_iter().map(|k| k.0).sum())
    }

    pub(crate) fn point(&self) -> G2 {
        self.0
    }

    pub(crate) fn from_point(p: G2) -> PublicKey {
        PublicKey(p)
    }
}

impl Signature {
    /// Canonical byte encoding (64 bytes, the paper's Table IV signature
    /// size on the mainchain).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.0.to_bytes()
    }

    /// Aggregates signatures (sum in `G1`).
    pub fn aggregate<'a, I: IntoIterator<Item = &'a Signature>>(sigs: I) -> Signature {
        Signature(sigs.into_iter().map(|s| s.0).sum())
    }

    pub(crate) fn point(&self) -> G1 {
        self.0
    }

    pub(crate) fn from_point(p: G1) -> Signature {
        Signature(p)
    }
}

/// Verifies an aggregate signature where **all signers signed the same
/// message** (the CoSi/TSQC case): `e(H(m), Σpk) == e(Σsig, g2)`.
///
/// Callers must have checked proofs of possession for every key.
pub fn verify_same_message(keys: &[PublicKey], msg: &[u8], aggregate: &Signature) -> bool {
    if keys.is_empty() {
        return false;
    }
    let apk = PublicKey::aggregate(keys);
    apk.verify(msg, aggregate)
}

/// Deterministically derives a keypair from a seed and an index — handy for
/// simulations that need thousands of reproducible miner identities.
pub fn keypair_from_seed(seed: u64, index: u64) -> (SecretKey, PublicKey) {
    let digest = keccak256_concat(&[
        b"AMMBOOST-KEYGEN",
        &seed.to_be_bytes(),
        &index.to_be_bytes(),
    ]);
    let sk = SecretKey::from_entropy(digest);
    let pk = sk.public_key();
    (sk, pk)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> SecretKey {
        keypair_from_seed(42, i).0
    }

    #[test]
    fn sign_verify_roundtrip() {
        let sk = key(1);
        let pk = sk.public_key();
        let sig = sk.sign(b"epoch-7 sync");
        assert!(pk.verify(b"epoch-7 sync", &sig));
        assert!(!pk.verify(b"epoch-8 sync", &sig));
    }

    #[test]
    fn wrong_key_rejects() {
        let sig = key(1).sign(b"msg");
        assert!(!key(2).public_key().verify(b"msg", &sig));
    }

    #[test]
    fn aggregate_same_message() {
        let sks: Vec<_> = (0..5).map(key).collect();
        let pks: Vec<_> = sks.iter().map(|s| s.public_key()).collect();
        let sigs: Vec<_> = sks.iter().map(|s| s.sign(b"sync")).collect();
        let agg = Signature::aggregate(&sigs);
        assert!(verify_same_message(&pks, b"sync", &agg));
        assert!(!verify_same_message(&pks, b"other", &agg));
        // dropping one signer breaks the aggregate
        let partial = Signature::aggregate(&sigs[..4]);
        assert!(!verify_same_message(&pks, b"sync", &partial));
    }

    #[test]
    fn empty_key_set_rejects() {
        let agg = Signature::aggregate(&[]);
        assert!(!verify_same_message(&[], b"m", &agg));
    }

    #[test]
    fn proof_of_possession() {
        let sk = key(9);
        let pop = sk.prove_possession();
        assert!(sk.public_key().verify_possession(&pop));
        assert!(!key(10).public_key().verify_possession(&pop));
        // A PoP is not a valid message signature for the pk bytes (domain
        // separation).
        let pk = sk.public_key();
        assert!(!pk.verify(&pk.to_bytes(), &pop));
    }

    #[test]
    fn deterministic_keygen() {
        assert_eq!(keypair_from_seed(7, 3).1, keypair_from_seed(7, 3).1);
        assert_ne!(keypair_from_seed(7, 3).1, keypair_from_seed(7, 4).1);
        assert_ne!(keypair_from_seed(8, 3).1, keypair_from_seed(7, 3).1);
    }

    #[test]
    fn signature_sizes_match_paper() {
        let sk = key(1);
        assert_eq!(sk.sign(b"m").to_bytes().len(), 64);
        assert_eq!(sk.public_key().to_bytes().len(), 128);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_secret_key_panics() {
        let _ = SecretKey::from_scalar(Fr::ZERO);
    }
}
