//! A bilinear group abstraction with a *transparent* BN254-scalar backend.
//!
//! # Substitution note (see `DESIGN.md` §1)
//!
//! The paper's proof-of-concept verifies BLS threshold signatures over the
//! BN256 curve via Ethereum's EIP-196/197 precompiles. Implementing the
//! full curve + optimal-ate pairing is out of scope here, so this module
//! provides the **trivial bilinear group**: an element of `G1`/`G2`/`Gt`
//! is represented by its discrete logarithm to the fixed generator, i.e.
//! `G1(x)` *is* `g1^x`. Group law = scalar addition, pairing
//! `e(g1^a, g2^b) = gt^(ab)` = scalar multiplication. Every verification
//! equation, Lagrange identity and aggregation rule that holds for a real
//! pairing holds here exactly — only discrete-log hardness is absent, which
//! no experiment in the paper depends on (gas for on-chain verification is
//! charged by precompile *invocation count* in `ammboost-mainchain`).
//!
//! All higher layers (BLS, DKG, TSQC, VRF) are written against this module's
//! API, so a constant-time curve backend could be slotted in without touching
//! protocol code.

use crate::field::Fr;
use crate::keccak::keccak256_concat;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// Serialized size of a `G1` element in bytes (uncompressed BN254 point:
/// two 32-byte coordinates). Used for wire/storage accounting.
pub const G1_SERIALIZED_LEN: usize = 64;
/// Serialized size of a `G2` element in bytes (two Fp2 coordinates).
pub const G2_SERIALIZED_LEN: usize = 128;

macro_rules! group_impl {
    ($name:ident, $doc:literal, $tag:literal, $ser_len:expr) => {
        #[doc = $doc]
        #[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
        pub struct $name(Fr);

        impl $name {
            /// The identity element.
            pub const IDENTITY: $name = $name(Fr::ZERO);

            /// The fixed group generator.
            pub fn generator() -> $name {
                $name(Fr::ONE)
            }

            /// Scalar multiplication `self * k` (i.e. `self^k` in
            /// multiplicative notation).
            pub fn mul_scalar(&self, k: Fr) -> $name {
                $name(self.0 * k)
            }

            /// Returns `true` for the identity element.
            pub fn is_identity(&self) -> bool {
                self.0.is_zero()
            }

            /// Hashes arbitrary bytes to a group element
            /// (hash-to-field then scalar-mul of the generator, the same
            /// structure as the paper's Keccak+ecMul hash-to-point).
            pub fn hash_to_point(domain: &[u8], msg: &[u8]) -> $name {
                let digest = keccak256_concat(&[$tag, domain, msg]);
                $name(Fr::from_be_bytes_reduced(digest))
            }

            /// Canonical byte encoding (the discrete log, zero-padded to the
            /// real uncompressed point size so storage accounting matches a
            /// curve backend).
            pub fn to_bytes(&self) -> Vec<u8> {
                let mut out = vec![0u8; Self::serialized_len()];
                let scalar = self.0.to_be_bytes();
                let off = Self::serialized_len() - scalar.len();
                out[off..].copy_from_slice(&scalar);
                out
            }

            /// Serialized length in bytes for this group.
            pub const fn serialized_len() -> usize {
                $ser_len
            }

            pub(crate) fn exponent(&self) -> Fr {
                self.0
            }

            #[allow(dead_code)] // parity across the two groups; used via G1
            pub(crate) fn from_exponent(x: Fr) -> $name {
                $name(x)
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl Neg for $name {
            type Output = $name;
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<Fr> for $name {
            type Output = $name;
            fn mul(self, k: Fr) -> $name {
                self.mul_scalar(k)
            }
        }

        impl std::iter::Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                iter.fold($name::IDENTITY, |a, b| a + b)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:?})"), self.0)
            }
        }
    };
}

group_impl!(
    G1,
    "An element of the source group `G1` (signatures, VRF outputs live here).",
    b"G1",
    G1_SERIALIZED_LEN
);
group_impl!(
    G2,
    "An element of the source group `G2` (public keys live here).",
    b"G2",
    G2_SERIALIZED_LEN
);

/// An element of the target group `Gt` (pairing outputs).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Gt(Fr);

impl Gt {
    /// The identity element of the target group.
    pub const IDENTITY: Gt = Gt(Fr::ZERO);

    /// Group operation in `Gt` (written additively on exponents).
    pub fn combine(&self, other: &Gt) -> Gt {
        Gt(self.0 + other.0)
    }
}

impl fmt::Debug for Gt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gt({:?})", self.0)
    }
}

/// The bilinear pairing `e: G1 × G2 → Gt`.
///
/// Satisfies `e(a·P, b·Q) = e(P, Q)^(ab)` exactly.
pub fn pairing(p: &G1, q: &G2) -> Gt {
    Gt(p.exponent() * q.exponent())
}

/// Checks the two-pairing product equation `e(p1, q1) == e(p2, q2)`, the
/// exact check the BLS verifier performs (and what the EVM `ecPairing`
/// precompile computes with k = 2).
pub fn pairing_check(p1: &G1, q1: &G2, p2: &G1, q2: &G2) -> bool {
    pairing(p1, q1) == pairing(p2, q2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_and_identity() {
        assert!(G1::IDENTITY.is_identity());
        assert!(!G1::generator().is_identity());
        assert_eq!(G1::generator() + G1::IDENTITY, G1::generator());
    }

    #[test]
    fn scalar_mul_distributes() {
        let a = Fr::from_u64(7);
        let b = Fr::from_u64(11);
        let g = G1::generator();
        assert_eq!(g * a + g * b, g * (a + b));
        assert_eq!((g * a) * b, g * (a * b));
    }

    #[test]
    fn bilinearity() {
        let a = Fr::from_u64(123);
        let b = Fr::from_u64(456);
        let p = G1::generator() * a;
        let q = G2::generator() * b;
        let lhs = pairing(&p, &q);
        let rhs = pairing(&(G1::generator() * (a * b)), &G2::generator());
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn pairing_check_bls_shape() {
        // e(H(m), pk) == e(sig, g2) with sig = H(m)*sk, pk = g2*sk
        let sk = Fr::from_u128(998877665544332211u128);
        let h = G1::hash_to_point(b"bls", b"message");
        let sig = h * sk;
        let pk = G2::generator() * sk;
        assert!(pairing_check(&h, &pk, &sig, &G2::generator()));
        // wrong message fails
        let h2 = G1::hash_to_point(b"bls", b"other");
        assert!(!pairing_check(&h2, &pk, &sig, &G2::generator()));
    }

    #[test]
    fn hash_to_point_domain_separation() {
        let a = G1::hash_to_point(b"domain-a", b"msg");
        let b = G1::hash_to_point(b"domain-b", b"msg");
        assert_ne!(a, b);
        // deterministic
        assert_eq!(a, G1::hash_to_point(b"domain-a", b"msg"));
    }

    #[test]
    fn serialized_lengths_match_bn254() {
        assert_eq!(G1::generator().to_bytes().len(), 64);
        assert_eq!(G2::generator().to_bytes().len(), 128);
    }

    #[test]
    fn sum_of_elements() {
        let g = G1::generator();
        let total: G1 = (1..=4u64).map(|i| g * Fr::from_u64(i)).sum();
        assert_eq!(total, g * Fr::from_u64(10));
    }

    #[test]
    fn neg_and_sub() {
        let g = G2::generator() * Fr::from_u64(9);
        assert_eq!(g - g, G2::IDENTITY);
        assert_eq!(g + (-g), G2::IDENTITY);
    }
}
