//! Keccak-256 binary Merkle trees for block transaction roots and
//! inclusion proofs (used to audit pruned meta-blocks against their
//! summary-block commitments).

use crate::keccak::{keccak256_x4_concat, keccak_f1600, keccak_f1600_x4, KECCAK256_RATE};
use crate::types::H256;
use serde::{Deserialize, Serialize};

/// Domain tags prevent leaf/node second-preimage confusion.
const LEAF_TAG: &[u8] = &[0x00];
const NODE_TAG: &[u8] = &[0x01];

/// Byte length of a node preimage: tag ‖ left ‖ right.
const NODE_PREIMAGE_BYTES: usize = 1 + 32 + 32;

/// Hashes a leaf payload.
pub fn leaf_hash(data: &[u8]) -> H256 {
    H256::hash_concat(&[LEAF_TAG, data])
}

/// Hashes four leaf payloads through the interleaved Keccak permutation.
/// Bit-identical to four [`leaf_hash`] calls.
pub fn leaf_hash_x4(items: [&[u8]; 4]) -> [H256; 4] {
    keccak256_x4_concat([
        &[LEAF_TAG, items[0]],
        &[LEAF_TAG, items[1]],
        &[LEAF_TAG, items[2]],
        &[LEAF_TAG, items[3]],
    ])
    .map(H256)
}

/// Reusable sponge block for node hashes. A node preimage (65 bytes) fits
/// a single Keccak rate block, so the domain tag and the Keccak padding
/// bytes are written once at construction and only the two child digests
/// change between calls — a level's worth of `node_hash` invocations
/// shares one preconfigured block instead of re-running the streaming
/// hasher's buffer bookkeeping per node.
struct NodeSponge {
    block: [u8; KECCAK256_RATE],
}

impl NodeSponge {
    fn new() -> NodeSponge {
        let mut block = [0u8; KECCAK256_RATE];
        block[0] = NODE_TAG[0];
        // Keccak padding for a 65-byte message: 0x01 right after the
        // payload, 0x80 in the last rate byte.
        block[NODE_PREIMAGE_BYTES] = 0x01;
        block[KECCAK256_RATE - 1] = 0x80;
        NodeSponge { block }
    }

    fn hash(&mut self, l: &H256, r: &H256) -> H256 {
        self.block[1..33].copy_from_slice(&l.0);
        self.block[33..65].copy_from_slice(&r.0);
        // Absorbing into the all-zero state is a plain load; one
        // permutation finishes the (single-block) message.
        let mut state = [0u64; 25];
        for (i, lane) in state.iter_mut().take(KECCAK256_RATE / 8).enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&self.block[8 * i..8 * (i + 1)]);
            *lane = u64::from_le_bytes(bytes);
        }
        keccak_f1600(&mut state);
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[8 * i..8 * (i + 1)].copy_from_slice(&state[i].to_le_bytes());
        }
        H256(out)
    }
}

fn node_hash(l: &H256, r: &H256) -> H256 {
    NodeSponge::new().hash(l, r)
}

/// Four [`NodeSponge`]s in lockstep: four 65-byte node preimages are
/// single rate blocks, so one [`keccak_f1600_x4`] permutation over the
/// interleaved load finishes all four node hashes. This is the Merkle
/// inner loop — a level of `n` nodes costs `⌈n/4⌉` four-way permutations
/// instead of `n` scalar ones.
struct NodeSponge4 {
    blocks: [[u8; KECCAK256_RATE]; 4],
}

impl NodeSponge4 {
    fn new() -> NodeSponge4 {
        let mut block = [0u8; KECCAK256_RATE];
        block[0] = NODE_TAG[0];
        block[NODE_PREIMAGE_BYTES] = 0x01;
        block[KECCAK256_RATE - 1] = 0x80;
        NodeSponge4 { blocks: [block; 4] }
    }

    fn hash(&mut self, pairs: [(&H256, &H256); 4]) -> [H256; 4] {
        for (block, (l, r)) in self.blocks.iter_mut().zip(pairs) {
            block[1..33].copy_from_slice(&l.0);
            block[33..65].copy_from_slice(&r.0);
        }
        let mut states = [[0u64; 4]; 25];
        for (i, lanes) in states.iter_mut().take(KECCAK256_RATE / 8).enumerate() {
            for s in 0..4 {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&self.blocks[s][8 * i..8 * (i + 1)]);
                lanes[s] = u64::from_le_bytes(bytes);
            }
        }
        keccak_f1600_x4(&mut states);
        let mut out = [H256::ZERO; 4];
        for s in 0..4 {
            for i in 0..4 {
                out[s].0[8 * i..8 * (i + 1)].copy_from_slice(&states[i][s].to_le_bytes());
            }
        }
        out
    }
}

/// A Merkle tree with all levels retained for proof generation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MerkleTree {
    levels: Vec<Vec<H256>>,
}

/// A sibling-path inclusion proof.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub index: usize,
    /// Sibling hashes from leaf level to just below the root.
    pub siblings: Vec<H256>,
}

impl MerkleTree {
    /// Builds a tree from pre-hashed leaves. An empty leaf set yields the
    /// all-zero root. Odd levels duplicate their last node.
    pub fn from_leaves(leaves: Vec<H256>) -> MerkleTree {
        if leaves.is_empty() {
            return MerkleTree {
                levels: vec![vec![H256::ZERO]],
            };
        }
        // depth = ceil(log2(n)); the tree has depth + 1 levels, so the
        // outer vector never reallocates while levels are pushed (this
        // builds every block's tx root — it runs constantly).
        let depth = if leaves.len() <= 1 {
            0
        } else {
            (usize::BITS - (leaves.len() - 1).leading_zeros()) as usize
        };
        let mut levels = Vec::with_capacity(depth + 1);
        levels.push(leaves);
        let mut sponge = NodeSponge::new();
        let mut sponge4 = NodeSponge4::new();
        while levels.last().expect("non-empty").len() > 1 {
            let prev = levels.last().expect("non-empty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            // four sibling pairs per interleaved permutation; the tail
            // (< 4 pairs, or the odd duplicated node) goes through the
            // scalar sponge — same digests either way
            let mut octets = prev.chunks_exact(8);
            for o in &mut octets {
                let quad = sponge4.hash([
                    (&o[0], &o[1]),
                    (&o[2], &o[3]),
                    (&o[4], &o[5]),
                    (&o[6], &o[7]),
                ]);
                next.extend_from_slice(&quad);
            }
            for pair in octets.remainder().chunks(2) {
                let l = &pair[0];
                let r = pair.get(1).unwrap_or(l);
                next.push(sponge.hash(l, r));
            }
            levels.push(next);
        }
        debug_assert_eq!(levels.len(), depth + 1, "depth formula exact");
        MerkleTree { levels }
    }

    /// [`MerkleTree::from_leaves`] through the scalar sponge only — the
    /// differential oracle for the four-way batched build (and its bench
    /// baseline). Roots, levels and proofs are bit-identical.
    pub fn from_leaves_scalar(leaves: Vec<H256>) -> MerkleTree {
        if leaves.is_empty() {
            return MerkleTree {
                levels: vec![vec![H256::ZERO]],
            };
        }
        let mut levels = vec![leaves];
        let mut sponge = NodeSponge::new();
        while levels.last().expect("non-empty").len() > 1 {
            let prev = levels.last().expect("non-empty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                let l = &pair[0];
                let r = pair.get(1).unwrap_or(l);
                next.push(sponge.hash(l, r));
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// Builds a tree by hashing raw items as leaves, four leaf hashes per
    /// interleaved permutation.
    pub fn from_items<T: AsRef<[u8]>>(items: &[T]) -> MerkleTree {
        let mut leaves = Vec::with_capacity(items.len());
        let mut quads = items.chunks_exact(4);
        for q in &mut quads {
            leaves.extend_from_slice(&leaf_hash_x4([
                q[0].as_ref(),
                q[1].as_ref(),
                q[2].as_ref(),
                q[3].as_ref(),
            ]));
        }
        for item in quads.remainder() {
            leaves.push(leaf_hash(item.as_ref()));
        }
        MerkleTree::from_leaves(leaves)
    }

    /// [`MerkleTree::from_items`] through scalar hashing only — the
    /// differential oracle for the batched leaf path.
    pub fn from_items_scalar<T: AsRef<[u8]>>(items: &[T]) -> MerkleTree {
        MerkleTree::from_leaves_scalar(items.iter().map(|i| leaf_hash(i.as_ref())).collect())
    }

    /// The Merkle root.
    pub fn root(&self) -> H256 {
        self.levels.last().expect("at least one level")[0]
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.levels[0].len()
    }

    /// `true` when the tree was built from zero leaves.
    pub fn is_empty(&self) -> bool {
        self.levels.len() == 1 && self.levels[0][0] == H256::ZERO
    }

    /// Produces an inclusion proof for leaf `index`.
    ///
    /// Returns `None` when the index is out of bounds.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.levels[0].len() || self.is_empty() {
            return None;
        }
        let mut siblings = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sib = if idx % 2 == 0 {
                level.get(idx + 1).unwrap_or(&level[idx])
            } else {
                &level[idx - 1]
            };
            siblings.push(*sib);
            idx /= 2;
        }
        Some(MerkleProof { index, siblings })
    }
}

/// Verifies an inclusion proof for `leaf` against `root`.
pub fn verify_proof(root: &H256, leaf: &H256, proof: &MerkleProof) -> bool {
    let mut acc = *leaf;
    let mut idx = proof.index;
    for sib in &proof.siblings {
        acc = if idx % 2 == 0 {
            node_hash(&acc, sib)
        } else {
            node_hash(sib, &acc)
        };
        idx /= 2;
    }
    acc == *root
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("tx-{i}").into_bytes()).collect()
    }

    #[test]
    fn empty_tree_root_is_zero() {
        let t = MerkleTree::from_leaves(vec![]);
        assert_eq!(t.root(), H256::ZERO);
        assert!(t.is_empty());
        assert!(t.prove(0).is_none());
    }

    #[test]
    fn single_leaf_root_is_leaf() {
        let leaf = leaf_hash(b"only");
        let t = MerkleTree::from_leaves(vec![leaf]);
        assert_eq!(t.root(), leaf);
        let p = t.prove(0).unwrap();
        assert!(p.siblings.is_empty());
        assert!(verify_proof(&t.root(), &leaf, &p));
    }

    #[test]
    fn proofs_verify_for_all_sizes() {
        for n in 1..=17 {
            let data = items(n);
            let t = MerkleTree::from_items(&data);
            for (i, item) in data.iter().enumerate() {
                let p = t.prove(i).unwrap();
                assert!(verify_proof(&t.root(), &leaf_hash(item), &p), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn wrong_leaf_rejected() {
        let data = items(8);
        let t = MerkleTree::from_items(&data);
        let p = t.prove(3).unwrap();
        assert!(!verify_proof(&t.root(), &leaf_hash(b"tx-4"), &p));
    }

    #[test]
    fn wrong_index_rejected() {
        let data = items(8);
        let t = MerkleTree::from_items(&data);
        let mut p = t.prove(3).unwrap();
        p.index = 4;
        assert!(!verify_proof(&t.root(), &leaf_hash(b"tx-3"), &p));
    }

    #[test]
    fn out_of_bounds_proof_is_none() {
        let t = MerkleTree::from_items(&items(4));
        assert!(t.prove(4).is_none());
    }

    #[test]
    fn root_changes_with_any_leaf() {
        let a = MerkleTree::from_items(&items(6)).root();
        let mut data = items(6);
        data[5] = b"tx-5-mutated".to_vec();
        let b = MerkleTree::from_items(&data).root();
        assert_ne!(a, b);
    }

    #[test]
    fn node_sponge_matches_streaming_hasher() {
        // The preconfigured single-block sponge must produce exactly the
        // digest the generic streaming hasher yields for tag ‖ l ‖ r.
        let mut sponge = NodeSponge::new();
        for i in 0..10u8 {
            let l = H256::hash(&[i]);
            let r = H256::hash(&[i, i]);
            let expect = H256::hash_concat(&[NODE_TAG, &l.0, &r.0]);
            assert_eq!(sponge.hash(&l, &r), expect, "node {i}");
        }
    }

    #[test]
    fn node_sponge4_matches_scalar_sponge() {
        let mut sponge = NodeSponge::new();
        let mut sponge4 = NodeSponge4::new();
        let digests: Vec<H256> = (0..8u8).map(|i| H256::hash(&[i])).collect();
        let pairs = [
            (&digests[0], &digests[1]),
            (&digests[2], &digests[3]),
            (&digests[4], &digests[5]),
            (&digests[6], &digests[7]),
        ];
        let got = sponge4.hash(pairs);
        for (s, (l, r)) in pairs.into_iter().enumerate() {
            assert_eq!(got[s], sponge.hash(l, r), "pair {s}");
        }
    }

    #[test]
    fn batched_build_bit_identical_to_scalar_for_all_small_sizes() {
        // every size 0..=257: crosses the 8-leaf octet boundary, odd
        // duplication, and the <4-pair tail in every combination
        for n in 0..=257usize {
            let data = items(n);
            let batched = MerkleTree::from_items(&data);
            let scalar = MerkleTree::from_items_scalar(&data);
            assert_eq!(batched.root(), scalar.root(), "n={n}");
            assert_eq!(batched.levels, scalar.levels, "n={n} levels diverge");
            if n > 0 {
                for i in [0, n / 2, n - 1] {
                    assert_eq!(batched.prove(i), scalar.prove(i), "n={n} proof {i}");
                }
            }
        }
    }

    #[test]
    fn leaf_hash_x4_matches_scalar() {
        let items: [&[u8]; 4] = [b"", b"a", b"ammboost", b"a-longer-leaf-payload"];
        let got = leaf_hash_x4(items);
        for s in 0..4 {
            assert_eq!(got[s], leaf_hash(items[s]), "slot {s}");
        }
    }

    #[test]
    fn leaf_node_domain_separation() {
        // A node hash of two leaves must differ from a leaf hash of their
        // concatenation.
        let l = leaf_hash(b"a");
        let r = leaf_hash(b"b");
        let node = MerkleTree::from_leaves(vec![l, r]).root();
        let mut concat = Vec::new();
        concat.extend_from_slice(&l.0);
        concat.extend_from_slice(&r.0);
        assert_ne!(node, leaf_hash(&concat));
    }
}
