//! Keccak-256 as used by Ethereum (original Keccak padding `0x01`, *not*
//! the NIST SHA-3 `0x06` padding), implemented from the specification.
//!
//! Keccak-256 drives every hash in the workspace: transaction ids, block
//! ids, Merkle trees, hash-to-point for the TSQC signatures, and the gas
//! accounting of the `KECCAK256` EVM opcode.

/// Rate in bytes for Keccak-256 (1600-bit state, 512-bit capacity).
pub const KECCAK256_RATE: usize = 136;

/// Output size in bytes.
pub const KECCAK256_OUTPUT: usize = 32;

const ROUNDS: usize = 24;

const RC: [u64; ROUNDS] = [
    0x0000000000000001,
    0x0000000000008082,
    0x800000000000808a,
    0x8000000080008000,
    0x000000000000808b,
    0x0000000080000001,
    0x8000000080008081,
    0x8000000000008009,
    0x000000000000008a,
    0x0000000000000088,
    0x0000000080008009,
    0x000000008000000a,
    0x000000008000808b,
    0x800000000000008b,
    0x8000000000008089,
    0x8000000000008003,
    0x8000000000008002,
    0x8000000000000080,
    0x000000000000800a,
    0x800000008000000a,
    0x8000000080008081,
    0x8000000000008080,
    0x0000000080000001,
    0x8000000080008008,
];

const RHO: [u32; 24] = [
    1, 3, 6, 10, 15, 21, 28, 36, 45, 55, 2, 14, 27, 41, 56, 8, 25, 43, 62, 18, 39, 61, 20, 44,
];

const PI: [usize; 24] = [
    10, 7, 11, 17, 18, 3, 5, 16, 8, 21, 24, 4, 15, 23, 19, 13, 12, 2, 20, 14, 22, 9, 6, 1,
];

/// The Keccak-f[1600] permutation.
pub fn keccak_f1600(state: &mut [u64; 25]) {
    for &rc in RC.iter() {
        // θ
        let mut c = [0u64; 5];
        for x in 0..5 {
            c[x] = state[x] ^ state[x + 5] ^ state[x + 10] ^ state[x + 15] ^ state[x + 20];
        }
        for x in 0..5 {
            let d = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
            for y in 0..5 {
                state[x + 5 * y] ^= d;
            }
        }
        // ρ and π
        let mut last = state[1];
        for i in 0..24 {
            let j = PI[i];
            let tmp = state[j];
            state[j] = last.rotate_left(RHO[i]);
            last = tmp;
        }
        // χ
        for y in 0..5 {
            let row = [
                state[5 * y],
                state[5 * y + 1],
                state[5 * y + 2],
                state[5 * y + 3],
                state[5 * y + 4],
            ];
            for x in 0..5 {
                state[5 * y + x] = row[x] ^ ((!row[(x + 1) % 5]) & row[(x + 2) % 5]);
            }
        }
        // ι
        state[0] ^= rc;
    }
}

/// The Keccak-f[1600] permutation over **four independent states** held
/// as interleaved lanes: `states[i][s]` is lane `i` of hash stream `s`.
///
/// Every θ/ρ/π/χ/ι operation runs across the four streams back-to-back,
/// so the four permutations share one pass over the round structure and
/// each `[u64; 4]` op is one 256-bit vector op. On x86-64 hosts with
/// AVX2 (checked once at runtime; detection is cached by std) the call
/// dispatches to a hand-scheduled intrinsics kernel; everywhere else a
/// portable safe-Rust body runs, which auto-vectorizes on targets whose
/// baseline has wide enough registers. All versions are bit-identical —
/// integer ops only, no platform-dependent rounding anywhere.
pub fn keccak_f1600_x4(states: &mut [[u64; 4]; 25]) {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: the AVX2 kernel is only reached behind the runtime
        // feature check. An AVX-512 variant was measured slower than
        // AVX2 on the reference host (512-bit license downclocking), so
        // AVX2 is the only dispatch target.
        if std::arch::is_x86_feature_detected!("avx2") {
            return unsafe { keccak_f1600_x4_avx2(states) };
        }
    }
    keccak_f1600_x4_portable(states)
}

/// Hand-scheduled AVX2 kernel: each `[u64; 4]` lane group is one ymm
/// register, and a round is computed χ-plane by χ-plane — the five
/// post-ρπ lanes a plane needs are built in registers (θ's d-application
/// fused into ρ's rotate) and consumed immediately, ping-ponging between
/// two 25-lane buffers across rounds. The 25-ymm working set cannot fit
/// 16 registers, so the point of the schedule is to bound spills: only
/// the buffers themselves live in memory, every temporary dies within
/// its plane. Measured ~2× the auto-vectorized portable body, which
/// keeps whole 25-lane intermediate arrays live and spill-thrashes.
///
/// Bit-identical to [`keccak_f1600_x4_portable`]: same θ/ρ/π/χ/ι
/// algebra, integer ops only.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn keccak_f1600_x4_avx2(states: &mut [[u64; 4]; 25]) {
    use std::arch::x86_64::*;

    macro_rules! rol {
        ($v:expr, $r:literal) => {
            _mm256_or_si256(
                _mm256_slli_epi64::<$r>($v),
                _mm256_srli_epi64::<{ 64 - $r }>($v),
            )
        };
    }
    macro_rules! xor {
        ($a:expr, $b:expr) => {
            _mm256_xor_si256($a, $b)
        };
    }
    // χ on three consecutive-in-row lanes: b0 ^ (!b1 & b2)
    macro_rules! chi {
        ($b0:expr, $b1:expr, $b2:expr) => {
            _mm256_xor_si256($b0, _mm256_andnot_si256($b1, $b2))
        };
    }
    // One full round from buffer `$a` into buffer `$e`. The (source
    // lane, rotation) pairs per output plane are the standard fused
    // θρπ tables — the same mapping the portable body walks via PI/RHO.
    macro_rules! round {
        ($a:ident, $e:ident, $rc:expr) => {{
            let c0 = xor!(xor!(xor!($a[0], $a[5]), xor!($a[10], $a[15])), $a[20]);
            let c1 = xor!(xor!(xor!($a[1], $a[6]), xor!($a[11], $a[16])), $a[21]);
            let c2 = xor!(xor!(xor!($a[2], $a[7]), xor!($a[12], $a[17])), $a[22]);
            let c3 = xor!(xor!(xor!($a[3], $a[8]), xor!($a[13], $a[18])), $a[23]);
            let c4 = xor!(xor!(xor!($a[4], $a[9]), xor!($a[14], $a[19])), $a[24]);
            let d0 = xor!(c4, rol!(c1, 1));
            let d1 = xor!(c0, rol!(c2, 1));
            let d2 = xor!(c1, rol!(c3, 1));
            let d3 = xor!(c2, rol!(c4, 1));
            let d4 = xor!(c3, rol!(c0, 1));

            let b0 = xor!($a[0], d0);
            let b1 = rol!(xor!($a[6], d1), 44);
            let b2 = rol!(xor!($a[12], d2), 43);
            let b3 = rol!(xor!($a[18], d3), 21);
            let b4 = rol!(xor!($a[24], d4), 14);
            $e[0] = xor!(chi!(b0, b1, b2), _mm256_set1_epi64x($rc as i64));
            $e[1] = chi!(b1, b2, b3);
            $e[2] = chi!(b2, b3, b4);
            $e[3] = chi!(b3, b4, b0);
            $e[4] = chi!(b4, b0, b1);

            let b0 = rol!(xor!($a[3], d3), 28);
            let b1 = rol!(xor!($a[9], d4), 20);
            let b2 = rol!(xor!($a[10], d0), 3);
            let b3 = rol!(xor!($a[16], d1), 45);
            let b4 = rol!(xor!($a[22], d2), 61);
            $e[5] = chi!(b0, b1, b2);
            $e[6] = chi!(b1, b2, b3);
            $e[7] = chi!(b2, b3, b4);
            $e[8] = chi!(b3, b4, b0);
            $e[9] = chi!(b4, b0, b1);

            let b0 = rol!(xor!($a[1], d1), 1);
            let b1 = rol!(xor!($a[7], d2), 6);
            let b2 = rol!(xor!($a[13], d3), 25);
            let b3 = rol!(xor!($a[19], d4), 8);
            let b4 = rol!(xor!($a[20], d0), 18);
            $e[10] = chi!(b0, b1, b2);
            $e[11] = chi!(b1, b2, b3);
            $e[12] = chi!(b2, b3, b4);
            $e[13] = chi!(b3, b4, b0);
            $e[14] = chi!(b4, b0, b1);

            let b0 = rol!(xor!($a[4], d4), 27);
            let b1 = rol!(xor!($a[5], d0), 36);
            let b2 = rol!(xor!($a[11], d1), 10);
            let b3 = rol!(xor!($a[17], d2), 15);
            let b4 = rol!(xor!($a[23], d3), 56);
            $e[15] = chi!(b0, b1, b2);
            $e[16] = chi!(b1, b2, b3);
            $e[17] = chi!(b2, b3, b4);
            $e[18] = chi!(b3, b4, b0);
            $e[19] = chi!(b4, b0, b1);

            let b0 = rol!(xor!($a[2], d2), 62);
            let b1 = rol!(xor!($a[8], d3), 55);
            let b2 = rol!(xor!($a[14], d4), 39);
            let b3 = rol!(xor!($a[15], d0), 41);
            let b4 = rol!(xor!($a[21], d1), 2);
            $e[20] = chi!(b0, b1, b2);
            $e[21] = chi!(b1, b2, b3);
            $e[22] = chi!(b2, b3, b4);
            $e[23] = chi!(b3, b4, b0);
            $e[24] = chi!(b4, b0, b1);
        }};
    }

    // [[u64; 4]; 25] is exactly 25 unaligned ymm lane groups in memory.
    let p = states.as_mut_ptr() as *mut __m256i;
    let mut a = [_mm256_setzero_si256(); 25];
    for (i, lane) in a.iter_mut().enumerate() {
        *lane = _mm256_loadu_si256(p.add(i));
    }
    let mut e = [_mm256_setzero_si256(); 25];
    let mut r = 0;
    while r < ROUNDS {
        round!(a, e, RC[r]);
        round!(e, a, RC[r + 1]);
        r += 2;
    }
    for (i, lane) in a.iter().enumerate() {
        _mm256_storeu_si256(p.add(i), *lane);
    }
}

#[inline(always)]
fn keccak_f1600_x4_portable(states: &mut [[u64; 4]; 25]) {
    for &rc in RC.iter() {
        // θ
        let mut c = [[0u64; 4]; 5];
        for x in 0..5 {
            for s in 0..4 {
                c[x][s] = states[x][s]
                    ^ states[x + 5][s]
                    ^ states[x + 10][s]
                    ^ states[x + 15][s]
                    ^ states[x + 20][s];
            }
        }
        for x in 0..5 {
            let mut d = [0u64; 4];
            for s in 0..4 {
                d[s] = c[(x + 4) % 5][s] ^ c[(x + 1) % 5][s].rotate_left(1);
            }
            for y in 0..5 {
                for s in 0..4 {
                    states[x + 5 * y][s] ^= d[s];
                }
            }
        }
        // ρ and π — the same in-place walk as the scalar permutation,
        // lifted to `[u64; 4]` lane groups. (A two-buffer variant with
        // all-independent writes was tried and measured slower both here
        // and in the scalar body: the `last` carry is renamed away by
        // out-of-order execution, so the walk is not actually serial,
        // and the extra buffer only adds memory traffic.)
        let mut last = states[1];
        for i in 0..24 {
            let j = PI[i];
            let tmp = states[j];
            for s in 0..4 {
                states[j][s] = last[s].rotate_left(RHO[i]);
            }
            last = tmp;
        }
        // χ
        for y in 0..5 {
            let row = [
                states[5 * y],
                states[5 * y + 1],
                states[5 * y + 2],
                states[5 * y + 3],
                states[5 * y + 4],
            ];
            for x in 0..5 {
                for s in 0..4 {
                    states[5 * y + x][s] =
                        row[x][s] ^ ((!row[(x + 1) % 5][s]) & row[(x + 2) % 5][s]);
                }
            }
        }
        // ι
        for s in 0..4 {
            states[0][s] ^= rc;
        }
    }
}

/// Copies bytes `[start, start + rate)` of the virtual concatenation of
/// `parts` into `block` (zero-filled past the message end) and applies
/// the Keccak `0x01 … 0x80` padding when the message ends inside this
/// block. XOR-applied padding handles the coincidence case (message
/// length ≡ 135 mod 136 puts both pad bytes in the last position).
fn load_padded_block(
    parts: &[&[u8]],
    start: usize,
    msg_len: usize,
    block: &mut [u8; KECCAK256_RATE],
) {
    block.fill(0);
    let end = start + KECCAK256_RATE;
    let mut pos = 0usize;
    for part in parts {
        let (pstart, pend) = (pos, pos + part.len());
        pos = pend;
        if pend <= start || pstart >= end {
            continue;
        }
        let from = start.max(pstart);
        let to = end.min(pend);
        block[from - start..to - start].copy_from_slice(&part[from - pstart..to - pstart]);
    }
    if msg_len < end {
        // final block of this message: pad starts right after the payload
        block[msg_len - start] ^= 0x01;
        block[KECCAK256_RATE - 1] ^= 0x80;
    }
}

/// Four independent Keccak-256 hashes computed in lockstep through
/// [`keccak_f1600_x4`], each message given as concatenated parts (so
/// callers batch domain-tagged hashes without materializing preimages).
///
/// Messages may have different lengths: each stream absorbs its own
/// block sequence and its digest is captured right after its final
/// (padded) block's permutation; a finished stream's lanes keep churning
/// until the longest message completes, which is wasted work only when
/// lengths are very unequal. Digests are bit-identical to four
/// [`keccak256_concat`] calls — the batching is a pure scheduling
/// change.
pub fn keccak256_x4_concat(streams: [&[&[u8]]; 4]) -> [[u8; 32]; 4] {
    let mut lens = [0usize; 4];
    let mut nblocks = [0usize; 4];
    for s in 0..4 {
        lens[s] = streams[s].iter().map(|p| p.len()).sum();
        // padding always adds at least one byte, so a rate-aligned
        // message gains a whole extra block
        nblocks[s] = lens[s] / KECCAK256_RATE + 1;
    }
    let max_blocks = nblocks.iter().copied().max().expect("four streams");

    let mut states = [[0u64; 4]; 25];
    let mut out = [[0u8; 32]; 4];
    let mut block = [0u8; KECCAK256_RATE];
    for b in 0..max_blocks {
        for s in 0..4 {
            if b >= nblocks[s] {
                continue;
            }
            load_padded_block(streams[s], b * KECCAK256_RATE, lens[s], &mut block);
            for (i, lanes) in states.iter_mut().take(KECCAK256_RATE / 8).enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&block[8 * i..8 * (i + 1)]);
                lanes[s] ^= u64::from_le_bytes(bytes);
            }
        }
        keccak_f1600_x4(&mut states);
        for s in 0..4 {
            if b + 1 == nblocks[s] {
                for i in 0..4 {
                    out[s][8 * i..8 * (i + 1)].copy_from_slice(&states[i][s].to_le_bytes());
                }
            }
        }
    }
    out
}

/// Four one-shot Keccak-256 hashes through the interleaved permutation.
/// Bit-identical to four [`keccak256`] calls.
pub fn keccak256_x4(msgs: [&[u8]; 4]) -> [[u8; 32]; 4] {
    keccak256_x4_concat([&[msgs[0]], &[msgs[1]], &[msgs[2]], &[msgs[3]]])
}

/// Streaming Keccak-256 hasher.
///
/// ```
/// use ammboost_crypto::keccak::Keccak256;
/// let mut h = Keccak256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), ammboost_crypto::keccak::keccak256(b"abc"));
/// ```
#[derive(Clone)]
pub struct Keccak256 {
    state: [u64; 25],
    buf: [u8; KECCAK256_RATE],
    buf_len: usize,
}

impl Default for Keccak256 {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Keccak256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Keccak256")
            .field("buffered", &self.buf_len)
            .finish()
    }
}

impl Keccak256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Keccak256 {
            state: [0u64; 25],
            buf: [0u8; KECCAK256_RATE],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the sponge. Once the carry buffer is clear,
    /// whole rate blocks absorb straight from the input slice — only the
    /// sub-block head and tail ever touch the buffer.
    pub fn update(&mut self, data: &[u8]) {
        let mut rest = data;
        if self.buf_len > 0 {
            let take = (KECCAK256_RATE - self.buf_len).min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == KECCAK256_RATE {
                let block = self.buf;
                absorb_into(&mut self.state, &block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= KECCAK256_RATE {
            let (block, tail) = rest.split_at(KECCAK256_RATE);
            absorb_into(&mut self.state, block.try_into().expect("rate-sized"));
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Finishes the hash and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        // Keccak padding: 0x01 .. 0x80 within the rate block.
        self.buf[self.buf_len..].fill(0);
        self.buf[self.buf_len] ^= 0x01;
        self.buf[KECCAK256_RATE - 1] ^= 0x80;
        let block = self.buf;
        absorb_into(&mut self.state, &block);
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[8 * i..8 * (i + 1)].copy_from_slice(&self.state[i].to_le_bytes());
        }
        out
    }
}

/// XORs one rate block into the sponge state lane-wise and permutes.
fn absorb_into(state: &mut [u64; 25], block: &[u8; KECCAK256_RATE]) {
    for (i, lane) in state.iter_mut().take(KECCAK256_RATE / 8).enumerate() {
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&block[8 * i..8 * (i + 1)]);
        *lane ^= u64::from_le_bytes(bytes);
    }
    keccak_f1600(state);
}

/// One-shot Keccak-256.
///
/// ```
/// let digest = ammboost_crypto::keccak::keccak256(b"");
/// assert_eq!(hex(&digest), "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470");
/// # fn hex(b: &[u8]) -> String { b.iter().map(|x| format!("{x:02x}")).collect() }
/// ```
pub fn keccak256(data: &[u8]) -> [u8; 32] {
    let mut h = Keccak256::new();
    h.update(data);
    h.finalize()
}

/// Keccak-256 over the concatenation of several byte slices, avoiding an
/// intermediate allocation.
pub fn keccak256_concat(parts: &[&[u8]]) -> [u8; 32] {
    let mut h = Keccak256::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    #[test]
    fn empty_string_vector() {
        assert_eq!(
            hex(&keccak256(b"")),
            "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            hex(&keccak256(b"abc")),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"
        );
    }

    #[test]
    fn fox_vector() {
        assert_eq!(
            hex(&keccak256(b"The quick brown fox jumps over the lazy dog")),
            "4d741b6f1eb29cb2a9b9911c82f56fa8d73b04959d3d9d222895df6c0b28aa15"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for chunk in [1usize, 7, 64, 135, 136, 137, 500] {
            let mut h = Keccak256::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finalize(), keccak256(&data), "chunk size {chunk}");
        }
    }

    #[test]
    fn rate_boundary_lengths() {
        // Hash inputs straddling the 136-byte rate boundary; mostly a
        // regression guard for padding logic.
        for len in [0usize, 1, 135, 136, 137, 271, 272, 273] {
            let data = vec![0xA5u8; len];
            let d1 = keccak256(&data);
            let mut h = Keccak256::new();
            h.update(&data);
            assert_eq!(h.finalize(), d1, "len {len}");
        }
    }

    #[test]
    fn concat_matches_join() {
        let a = b"hello ".as_slice();
        let b = b"world".as_slice();
        assert_eq!(keccak256_concat(&[a, b]), keccak256(b"hello world"));
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(keccak256(b"a"), keccak256(b"b"));
    }

    #[test]
    fn x4_permutation_matches_four_scalar_permutations() {
        // a deterministic pseudo-random state per stream
        let mut scalar = [[0u64; 25]; 4];
        let mut interleaved = [[0u64; 4]; 25];
        for s in 0..4 {
            for i in 0..25 {
                let v = (s as u64 + 1)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_mul(i as u64 + 1);
                scalar[s][i] = v;
                interleaved[i][s] = v;
            }
        }
        for state in scalar.iter_mut() {
            keccak_f1600(state);
        }
        keccak_f1600_x4(&mut interleaved);
        for s in 0..4 {
            for i in 0..25 {
                assert_eq!(interleaved[i][s], scalar[s][i], "stream {s} lane {i}");
            }
        }
    }

    #[test]
    fn known_vectors_through_every_x4_lane() {
        // each known-answer vector rides each of the four interleave
        // slots, surrounded by different traffic in the other slots
        let vectors: [(&[u8], &str); 3] = [
            (
                b"",
                "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470",
            ),
            (
                b"abc",
                "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45",
            ),
            (
                b"The quick brown fox jumps over the lazy dog",
                "4d741b6f1eb29cb2a9b9911c82f56fa8d73b04959d3d9d222895df6c0b28aa15",
            ),
        ];
        let noise: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 200]).collect();
        for (msg, want) in vectors {
            for slot in 0..4 {
                let mut msgs: [&[u8]; 4] = [&noise[0], &noise[1], &noise[2], &noise[3]];
                msgs[slot] = msg;
                let out = keccak256_x4(msgs);
                assert_eq!(hex(&out[slot]), want, "slot {slot}");
                for (s, other) in out.iter().enumerate() {
                    if s != slot {
                        assert_eq!(*other, keccak256(msgs[s]), "noise slot {s}");
                    }
                }
            }
        }
    }

    #[test]
    fn x4_matches_scalar_across_unequal_lengths() {
        // lengths straddling every rate boundary, deliberately unequal
        // per slot so early-finishing streams are exercised
        let lens = [0usize, 1, 135, 136, 137, 271, 272, 273, 500];
        let data: Vec<u8> = (0..600u32).map(|i| (i % 251) as u8).collect();
        for w in lens.windows(4) {
            let msgs: [&[u8]; 4] = [&data[..w[0]], &data[..w[1]], &data[..w[2]], &data[..w[3]]];
            let got = keccak256_x4(msgs);
            for s in 0..4 {
                assert_eq!(got[s], keccak256(msgs[s]), "len {}", msgs[s].len());
            }
        }
    }

    #[test]
    fn x4_concat_matches_scalar_concat() {
        let a = b"ammboost-".as_slice();
        let parts: [&[&[u8]]; 4] = [
            &[a, b"one"],
            &[b"", a, b"two", b""],
            &[b"three"],
            &[a, a, a],
        ];
        let got = keccak256_x4_concat(parts);
        for s in 0..4 {
            assert_eq!(got[s], keccak256_concat(parts[s]), "stream {s}");
        }
    }
}
