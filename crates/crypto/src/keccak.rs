//! Keccak-256 as used by Ethereum (original Keccak padding `0x01`, *not*
//! the NIST SHA-3 `0x06` padding), implemented from the specification.
//!
//! Keccak-256 drives every hash in the workspace: transaction ids, block
//! ids, Merkle trees, hash-to-point for the TSQC signatures, and the gas
//! accounting of the `KECCAK256` EVM opcode.

/// Rate in bytes for Keccak-256 (1600-bit state, 512-bit capacity).
pub const KECCAK256_RATE: usize = 136;

/// Output size in bytes.
pub const KECCAK256_OUTPUT: usize = 32;

const ROUNDS: usize = 24;

const RC: [u64; ROUNDS] = [
    0x0000000000000001,
    0x0000000000008082,
    0x800000000000808a,
    0x8000000080008000,
    0x000000000000808b,
    0x0000000080000001,
    0x8000000080008081,
    0x8000000000008009,
    0x000000000000008a,
    0x0000000000000088,
    0x0000000080008009,
    0x000000008000000a,
    0x000000008000808b,
    0x800000000000008b,
    0x8000000000008089,
    0x8000000000008003,
    0x8000000000008002,
    0x8000000000000080,
    0x000000000000800a,
    0x800000008000000a,
    0x8000000080008081,
    0x8000000000008080,
    0x0000000080000001,
    0x8000000080008008,
];

const RHO: [u32; 24] = [
    1, 3, 6, 10, 15, 21, 28, 36, 45, 55, 2, 14, 27, 41, 56, 8, 25, 43, 62, 18, 39, 61, 20, 44,
];

const PI: [usize; 24] = [
    10, 7, 11, 17, 18, 3, 5, 16, 8, 21, 24, 4, 15, 23, 19, 13, 12, 2, 20, 14, 22, 9, 6, 1,
];

/// The Keccak-f[1600] permutation.
pub fn keccak_f1600(state: &mut [u64; 25]) {
    for &rc in RC.iter() {
        // θ
        let mut c = [0u64; 5];
        for x in 0..5 {
            c[x] = state[x] ^ state[x + 5] ^ state[x + 10] ^ state[x + 15] ^ state[x + 20];
        }
        for x in 0..5 {
            let d = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
            for y in 0..5 {
                state[x + 5 * y] ^= d;
            }
        }
        // ρ and π
        let mut last = state[1];
        for i in 0..24 {
            let j = PI[i];
            let tmp = state[j];
            state[j] = last.rotate_left(RHO[i]);
            last = tmp;
        }
        // χ
        for y in 0..5 {
            let row = [
                state[5 * y],
                state[5 * y + 1],
                state[5 * y + 2],
                state[5 * y + 3],
                state[5 * y + 4],
            ];
            for x in 0..5 {
                state[5 * y + x] = row[x] ^ ((!row[(x + 1) % 5]) & row[(x + 2) % 5]);
            }
        }
        // ι
        state[0] ^= rc;
    }
}

/// Streaming Keccak-256 hasher.
///
/// ```
/// use ammboost_crypto::keccak::Keccak256;
/// let mut h = Keccak256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), ammboost_crypto::keccak::keccak256(b"abc"));
/// ```
#[derive(Clone)]
pub struct Keccak256 {
    state: [u64; 25],
    buf: [u8; KECCAK256_RATE],
    buf_len: usize,
}

impl Default for Keccak256 {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Keccak256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Keccak256")
            .field("buffered", &self.buf_len)
            .finish()
    }
}

impl Keccak256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Keccak256 {
            state: [0u64; 25],
            buf: [0u8; KECCAK256_RATE],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the sponge.
    pub fn update(&mut self, data: &[u8]) {
        let mut rest = data;
        while !rest.is_empty() {
            let take = (KECCAK256_RATE - self.buf_len).min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == KECCAK256_RATE {
                self.absorb_block();
            }
        }
    }

    fn absorb_block(&mut self) {
        for i in 0..KECCAK256_RATE / 8 {
            let mut lane = [0u8; 8];
            lane.copy_from_slice(&self.buf[8 * i..8 * (i + 1)]);
            self.state[i] ^= u64::from_le_bytes(lane);
        }
        keccak_f1600(&mut self.state);
        self.buf_len = 0;
    }

    /// Finishes the hash and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        // Keccak padding: 0x01 .. 0x80 within the rate block.
        self.buf[self.buf_len..].fill(0);
        self.buf[self.buf_len] ^= 0x01;
        self.buf[KECCAK256_RATE - 1] ^= 0x80;
        self.buf_len = KECCAK256_RATE;
        // absorb final block without resetting padding
        for i in 0..KECCAK256_RATE / 8 {
            let mut lane = [0u8; 8];
            lane.copy_from_slice(&self.buf[8 * i..8 * (i + 1)]);
            self.state[i] ^= u64::from_le_bytes(lane);
        }
        keccak_f1600(&mut self.state);
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[8 * i..8 * (i + 1)].copy_from_slice(&self.state[i].to_le_bytes());
        }
        out
    }
}

/// One-shot Keccak-256.
///
/// ```
/// let digest = ammboost_crypto::keccak::keccak256(b"");
/// assert_eq!(hex(&digest), "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470");
/// # fn hex(b: &[u8]) -> String { b.iter().map(|x| format!("{x:02x}")).collect() }
/// ```
pub fn keccak256(data: &[u8]) -> [u8; 32] {
    let mut h = Keccak256::new();
    h.update(data);
    h.finalize()
}

/// Keccak-256 over the concatenation of several byte slices, avoiding an
/// intermediate allocation.
pub fn keccak256_concat(parts: &[&[u8]]) -> [u8; 32] {
    let mut h = Keccak256::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    #[test]
    fn empty_string_vector() {
        assert_eq!(
            hex(&keccak256(b"")),
            "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            hex(&keccak256(b"abc")),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"
        );
    }

    #[test]
    fn fox_vector() {
        assert_eq!(
            hex(&keccak256(b"The quick brown fox jumps over the lazy dog")),
            "4d741b6f1eb29cb2a9b9911c82f56fa8d73b04959d3d9d222895df6c0b28aa15"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for chunk in [1usize, 7, 64, 135, 136, 137, 500] {
            let mut h = Keccak256::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finalize(), keccak256(&data), "chunk size {chunk}");
        }
    }

    #[test]
    fn rate_boundary_lengths() {
        // Hash inputs straddling the 136-byte rate boundary; mostly a
        // regression guard for padding logic.
        for len in [0usize, 1, 135, 136, 137, 271, 272, 273] {
            let data = vec![0xA5u8; len];
            let d1 = keccak256(&data);
            let mut h = Keccak256::new();
            h.update(&data);
            assert_eq!(h.finalize(), d1, "len {len}");
        }
    }

    #[test]
    fn concat_matches_join() {
        let a = b"hello ".as_slice();
        let b = b"world".as_slice();
        assert_eq!(keccak256_concat(&[a, b]), keccak256(b"hello world"));
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(keccak256(b"a"), keccak256(b"b"));
    }
}
