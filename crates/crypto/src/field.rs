//! Arithmetic in the BN254 (alt_bn128) scalar field `F_r`, where
//!
//! `r = 21888242871839275222246405745257275088548364400416034343698204186575808495617`
//!
//! This is the exponent field of the BN256 curve used by the paper's
//! Solidity BLS verification (Ethereum precompiles EIP-196/197), so all
//! threshold-signature, DKG, Shamir and VRF algebra in this crate runs over
//! the same scalar field a production deployment would use.

use crate::u256::U256;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// The BN254 scalar modulus `r` (little-endian limbs).
///
/// Hex: `0x30644e72e131a029b85045b68181585d2833e84879b9709143e1f593f0000001`.
pub const MODULUS: U256 = U256::from_limbs([
    0x43e1f593f0000001,
    0x2833e84879b97091,
    0xb85045b68181585d,
    0x30644e72e131a029,
]);

/// An element of the BN254 scalar field, kept reduced (`0 <= v < r`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Fr(U256);

impl Fr {
    /// The additive identity.
    pub const ZERO: Fr = Fr(U256::ZERO);
    /// The multiplicative identity.
    pub const ONE: Fr = Fr(U256::ONE);

    /// Creates an element from a `u64`.
    pub fn from_u64(v: u64) -> Fr {
        Fr(U256::from_u64(v))
    }

    /// Creates an element from a `u128`.
    pub fn from_u128(v: u128) -> Fr {
        Fr(U256::from_u128(v)).reduce_once()
    }

    /// Reduces an arbitrary [`U256`] modulo `r`.
    pub fn from_u256_reduced(v: U256) -> Fr {
        if v < MODULUS {
            Fr(v)
        } else {
            Fr(v % MODULUS)
        }
    }

    /// Interprets 32 big-endian bytes as an integer and reduces mod `r`.
    ///
    /// This is the "hash-to-field" used by hash-to-point: a 256-bit digest
    /// is reduced into the field. The modulus bias is ~2^-2 of the top bit
    /// range, acceptable for simulation.
    pub fn from_be_bytes_reduced(bytes: [u8; 32]) -> Fr {
        Fr::from_u256_reduced(U256::from_be_bytes(bytes))
    }

    /// Returns the canonical representative in `[0, r)`.
    pub fn to_u256(&self) -> U256 {
        self.0
    }

    /// Big-endian byte encoding of the canonical representative.
    pub fn to_be_bytes(&self) -> [u8; 32] {
        self.0.to_be_bytes()
    }

    /// Returns `true` for the additive identity.
    pub fn is_zero(&self) -> bool {
        self.0.is_zero()
    }

    fn reduce_once(self) -> Fr {
        if self.0 >= MODULUS {
            Fr(self.0.wrapping_sub(MODULUS))
        } else {
            self
        }
    }

    /// Modular exponentiation (square-and-multiply).
    pub fn pow(&self, mut exp: U256) -> Fr {
        let mut base = *self;
        let mut acc = Fr::ONE;
        while !exp.is_zero() {
            if exp.bit(0) {
                acc = acc * base;
            }
            base = base * base;
            exp = exp >> 1;
        }
        acc
    }

    /// Multiplicative inverse via Fermat's little theorem.
    ///
    /// Returns `None` for zero.
    pub fn inverse(&self) -> Option<Fr> {
        if self.is_zero() {
            return None;
        }
        let exp = MODULUS.wrapping_sub(U256::from_u64(2));
        Some(self.pow(exp))
    }

    /// Doubles the element.
    pub fn double(&self) -> Fr {
        *self + *self
    }

    /// Squares the element.
    pub fn square(&self) -> Fr {
        *self * *self
    }

    /// Draws a uniformly random element using the provided 32-byte entropy.
    ///
    /// Callers supply entropy (e.g. from an RNG or a hash); the bytes are
    /// reduced modulo `r`.
    pub fn from_entropy(bytes: [u8; 32]) -> Fr {
        Fr::from_be_bytes_reduced(bytes)
    }
}

impl Add for Fr {
    type Output = Fr;
    fn add(self, rhs: Fr) -> Fr {
        let (sum, carry) = self.0.overflowing_add(rhs.0);
        if carry || sum >= MODULUS {
            Fr(sum.wrapping_sub(MODULUS))
        } else {
            Fr(sum)
        }
    }
}

impl Sub for Fr {
    type Output = Fr;
    fn sub(self, rhs: Fr) -> Fr {
        let (diff, borrow) = self.0.overflowing_sub(rhs.0);
        if borrow {
            Fr(diff.wrapping_add(MODULUS))
        } else {
            Fr(diff)
        }
    }
}

impl Mul for Fr {
    type Output = Fr;
    fn mul(self, rhs: Fr) -> Fr {
        let prod = self.0.full_mul(rhs.0);
        let (_, rem) = prod.div_rem_u256(MODULUS);
        Fr(rem)
    }
}

impl Neg for Fr {
    type Output = Fr;
    fn neg(self) -> Fr {
        if self.is_zero() {
            self
        } else {
            Fr(MODULUS.wrapping_sub(self.0))
        }
    }
}

impl From<u64> for Fr {
    fn from(v: u64) -> Fr {
        Fr::from_u64(v)
    }
}

impl fmt::Debug for Fr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fr({})", self.0)
    }
}

impl fmt::Display for Fr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::iter::Sum for Fr {
    fn sum<I: Iterator<Item = Fr>>(iter: I) -> Fr {
        iter.fold(Fr::ZERO, |a, b| a + b)
    }
}

impl std::iter::Product for Fr {
    fn product<I: Iterator<Item = Fr>>(iter: I) -> Fr {
        iter.fold(Fr::ONE, |a, b| a * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modulus_is_expected_decimal() {
        assert_eq!(
            MODULUS.to_string(),
            "21888242871839275222246405745257275088548364400416034343698204186575808495617"
        );
    }

    #[test]
    fn add_wraps_at_modulus() {
        let almost = Fr::from_u256_reduced(MODULUS.wrapping_sub(U256::ONE));
        assert_eq!(almost + Fr::ONE, Fr::ZERO);
        assert_eq!(almost + Fr::from_u64(2), Fr::ONE);
    }

    #[test]
    fn sub_wraps_below_zero() {
        assert_eq!(
            Fr::ZERO - Fr::ONE,
            Fr::from_u256_reduced(MODULUS.wrapping_sub(U256::ONE))
        );
        assert_eq!(Fr::from_u64(5) - Fr::from_u64(3), Fr::from_u64(2));
    }

    #[test]
    fn mul_matches_small_values() {
        assert_eq!(Fr::from_u64(7) * Fr::from_u64(6), Fr::from_u64(42));
    }

    #[test]
    fn neg_is_additive_inverse() {
        let x = Fr::from_u128(987654321987654321u128);
        assert_eq!(x + (-x), Fr::ZERO);
        assert_eq!(-Fr::ZERO, Fr::ZERO);
    }

    #[test]
    fn inverse_roundtrip() {
        let x = Fr::from_u128(123456789123456789u128);
        let inv = x.inverse().unwrap();
        assert_eq!(x * inv, Fr::ONE);
        assert!(Fr::ZERO.inverse().is_none());
    }

    #[test]
    fn pow_small_cases() {
        let x = Fr::from_u64(3);
        assert_eq!(x.pow(U256::ZERO), Fr::ONE);
        assert_eq!(x.pow(U256::from_u64(1)), x);
        assert_eq!(x.pow(U256::from_u64(5)), Fr::from_u64(243));
    }

    #[test]
    fn fermat_little_theorem() {
        // x^(r-1) == 1 for x != 0
        let x = Fr::from_u64(1234567);
        assert_eq!(x.pow(MODULUS.wrapping_sub(U256::ONE)), Fr::ONE);
    }

    #[test]
    fn reduction_of_large_values() {
        let big = U256::MAX;
        let r = Fr::from_u256_reduced(big);
        assert!(r.to_u256() < MODULUS);
        // 2^256 - 1 mod r computed two ways
        let manual = U256::MAX % MODULUS;
        assert_eq!(r.to_u256(), manual);
    }

    #[test]
    fn sum_and_product_iters() {
        let xs = [Fr::from_u64(1), Fr::from_u64(2), Fr::from_u64(3)];
        assert_eq!(xs.iter().copied().sum::<Fr>(), Fr::from_u64(6));
        assert_eq!(xs.iter().copied().product::<Fr>(), Fr::from_u64(6));
    }
}
