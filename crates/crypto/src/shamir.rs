//! Shamir secret sharing over the BN254 scalar field, plus the Lagrange
//! interpolation used by threshold-BLS signature combination.
//!
//! Shares are evaluated at `x = index` with indices starting at `1`
//! (`x = 0` holds the secret).

use crate::field::Fr;
use serde::{Deserialize, Serialize};

/// A share of a secret: the evaluation of the dealer polynomial at
/// `x = index`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Share {
    /// 1-based evaluation index.
    pub index: u32,
    /// Polynomial evaluation `f(index)`.
    pub value: Fr,
}

/// A polynomial over `F_r` in coefficient form, `coeffs[0]` is the constant
/// term.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Polynomial {
    coeffs: Vec<Fr>,
}

impl Polynomial {
    /// Creates a polynomial from coefficients (constant term first).
    ///
    /// # Panics
    /// Panics if `coeffs` is empty.
    pub fn new(coeffs: Vec<Fr>) -> Polynomial {
        assert!(
            !coeffs.is_empty(),
            "polynomial needs at least one coefficient"
        );
        Polynomial { coeffs }
    }

    /// A random polynomial of degree `threshold - 1` with the given constant
    /// term, using caller-provided entropy per coefficient.
    pub fn random_with_secret<F: FnMut() -> [u8; 32]>(
        secret: Fr,
        threshold: usize,
        mut entropy: F,
    ) -> Polynomial {
        assert!(threshold >= 1, "threshold must be at least 1");
        let mut coeffs = Vec::with_capacity(threshold);
        coeffs.push(secret);
        for _ in 1..threshold {
            coeffs.push(Fr::from_entropy(entropy()));
        }
        Polynomial { coeffs }
    }

    /// Degree of the polynomial (`threshold - 1`).
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// The coefficients, constant term first.
    pub fn coefficients(&self) -> &[Fr] {
        &self.coeffs
    }

    /// Horner evaluation at `x`.
    pub fn evaluate(&self, x: Fr) -> Fr {
        let mut acc = Fr::ZERO;
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }

    /// Evaluates at the 1-based integer index.
    pub fn share_for(&self, index: u32) -> Share {
        assert!(index >= 1, "share indices are 1-based");
        Share {
            index,
            value: self.evaluate(Fr::from_u64(index as u64)),
        }
    }

    /// Deals shares for participants `1..=n`.
    pub fn deal(&self, n: usize) -> Vec<Share> {
        (1..=n as u32).map(|i| self.share_for(i)).collect()
    }
}

/// Errors from interpolation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpolationError {
    /// Fewer shares than needed, or zero shares.
    NotEnoughShares,
    /// Two shares carry the same index.
    DuplicateIndex(u32),
}

impl std::fmt::Display for InterpolationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpolationError::NotEnoughShares => write!(f, "not enough shares"),
            InterpolationError::DuplicateIndex(i) => write!(f, "duplicate share index {i}"),
        }
    }
}

impl std::error::Error for InterpolationError {}

/// Computes the Lagrange coefficient `λ_i(0)` for interpolation at zero over
/// the given index set.
///
/// # Errors
/// Returns an error on duplicate indices or if `at` is not in `indices`.
pub fn lagrange_coefficient_at_zero(indices: &[u32], at: u32) -> Result<Fr, InterpolationError> {
    let mut num = Fr::ONE;
    let mut den = Fr::ONE;
    let xi = Fr::from_u64(at as u64);
    let mut seen_at = false;
    for &j in indices {
        if j == at {
            if seen_at {
                return Err(InterpolationError::DuplicateIndex(j));
            }
            seen_at = true;
            continue;
        }
        let xj = Fr::from_u64(j as u64);
        num = num * (Fr::ZERO - xj);
        den = den * (xi - xj);
    }
    if !seen_at {
        return Err(InterpolationError::NotEnoughShares);
    }
    let den_inv = den
        .inverse()
        .ok_or(InterpolationError::DuplicateIndex(at))?;
    Ok(num * den_inv)
}

/// Reconstructs the secret (`f(0)`) from shares.
///
/// # Errors
/// Fails on an empty share set or duplicate indices. The caller is
/// responsible for supplying at least `threshold` *valid* shares; with fewer
/// (but distinct) shares this returns a wrong value, as secret sharing
/// guarantees.
pub fn reconstruct_secret(shares: &[Share]) -> Result<Fr, InterpolationError> {
    if shares.is_empty() {
        return Err(InterpolationError::NotEnoughShares);
    }
    let indices: Vec<u32> = shares.iter().map(|s| s.index).collect();
    {
        let mut sorted = indices.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            if w[0] == w[1] {
                return Err(InterpolationError::DuplicateIndex(w[0]));
            }
        }
    }
    let mut acc = Fr::ZERO;
    for s in shares {
        let lambda = lagrange_coefficient_at_zero(&indices, s.index)?;
        acc = acc + lambda * s.value;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entropy_stream(seed: u64) -> impl FnMut() -> [u8; 32] {
        let mut ctr = seed;
        move || {
            ctr = ctr.wrapping_mul(6364136223846793005).wrapping_add(1);
            crate::keccak::keccak256(&ctr.to_be_bytes())
        }
    }

    #[test]
    fn share_and_reconstruct() {
        let secret = Fr::from_u128(31337_31337_31337u128);
        let poly = Polynomial::random_with_secret(secret, 3, entropy_stream(1));
        let shares = poly.deal(7);
        // any 3 shares reconstruct
        assert_eq!(reconstruct_secret(&shares[0..3]).unwrap(), secret);
        assert_eq!(reconstruct_secret(&shares[4..7]).unwrap(), secret);
        let picked = [shares[0], shares[3], shares[6]];
        assert_eq!(reconstruct_secret(&picked).unwrap(), secret);
    }

    #[test]
    fn fewer_than_threshold_gives_wrong_secret() {
        let secret = Fr::from_u64(77);
        let poly = Polynomial::random_with_secret(secret, 3, entropy_stream(2));
        let shares = poly.deal(5);
        // 2 shares of a degree-2 polynomial: interpolation succeeds but
        // yields garbage (overwhelming probability).
        let r = reconstruct_secret(&shares[0..2]).unwrap();
        assert_ne!(r, secret);
    }

    #[test]
    fn threshold_one_is_plain_copy() {
        let secret = Fr::from_u64(5);
        let poly = Polynomial::random_with_secret(secret, 1, entropy_stream(3));
        let shares = poly.deal(4);
        for s in &shares {
            assert_eq!(s.value, secret);
        }
        assert_eq!(reconstruct_secret(&shares[2..3]).unwrap(), secret);
    }

    #[test]
    fn duplicate_indices_rejected() {
        let s = Share {
            index: 1,
            value: Fr::from_u64(1),
        };
        assert_eq!(
            reconstruct_secret(&[s, s]),
            Err(InterpolationError::DuplicateIndex(1))
        );
    }

    #[test]
    fn empty_shares_rejected() {
        assert_eq!(
            reconstruct_secret(&[]),
            Err(InterpolationError::NotEnoughShares)
        );
    }

    #[test]
    fn lagrange_coefficients_sum_to_one() {
        // Σ λ_i(0) = 1 when interpolating the constant polynomial 1.
        let indices = [1u32, 2, 5, 9];
        let sum: Fr = indices
            .iter()
            .map(|&i| lagrange_coefficient_at_zero(&indices, i).unwrap())
            .sum();
        assert_eq!(sum, Fr::ONE);
    }

    #[test]
    fn evaluate_matches_manual_horner() {
        // f(x) = 3 + 2x + x^2 ; f(4) = 3 + 8 + 16 = 27
        let poly = Polynomial::new(vec![Fr::from_u64(3), Fr::from_u64(2), Fr::ONE]);
        assert_eq!(poly.evaluate(Fr::from_u64(4)), Fr::from_u64(27));
        assert_eq!(poly.degree(), 2);
    }
}
