//! Threshold-signature quorum certificates (TSQC).
//!
//! This is the sync-authentication mechanism of ammBoost (paper §IV-C): an
//! epoch committee holds DKG-generated shares of a BLS key whose public
//! verification key `vk_c` was recorded on TokenBank by the previous
//! committee. To authenticate a `Sync` call the committee members produce
//! *partial signatures* over the sync payload; any `2f + 2` valid partials
//! combine (via Lagrange interpolation in the exponent) into a single BLS
//! signature that TokenBank verifies against `vk_c` with one pairing check.

use crate::bls::{PublicKey, Signature};
use crate::dkg::KeyShare;
use crate::field::Fr;
use crate::group::{G1, G2};
use crate::shamir::{lagrange_coefficient_at_zero, InterpolationError};
use crate::types::H256;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Domain tag for TSQC sync signatures.
const DST_TSQC: &[u8] = b"AMMBOOST-TSQC-SYNC-V1";

/// Returns `f` — the number of tolerated faults — for a committee of
/// `3f + 2` members (rounding down for other sizes).
pub fn max_faults(committee_size: usize) -> usize {
    committee_size.saturating_sub(2) / 3
}

/// The signing/quorum threshold `2f + 2` for a committee of `3f + 2`.
pub fn quorum_threshold(committee_size: usize) -> usize {
    2 * max_faults(committee_size) + 2
}

/// A partial signature from one committee member.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartialSignature {
    /// 1-based share index of the signer.
    pub index: u32,
    /// `H(m) * x_i` where `x_i` is the signer's secret share.
    pub signature: Signature,
}

/// Signs a message with a key share, producing a partial signature.
pub fn partial_sign(share: &KeyShare, msg: &[u8]) -> PartialSignature {
    let h = G1::hash_to_point(DST_TSQC, msg);
    PartialSignature {
        index: share.index,
        signature: Signature::from_point(h * share.secret),
    }
}

/// Verifies a partial signature against the signer's public verification
/// key `vk_i = g2 * x_i` (published by the DKG).
pub fn verify_partial(vk_i: &PublicKey, msg: &[u8], partial: &PartialSignature) -> bool {
    let h = G1::hash_to_point(DST_TSQC, msg);
    crate::group::pairing_check(
        &h,
        &vk_i.point(),
        &partial.signature.point(),
        &G2::generator(),
    )
}

/// Errors from combining partial signatures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CombineError {
    /// Fewer distinct partials than the threshold.
    BelowThreshold {
        /// Distinct partials supplied.
        have: usize,
        /// Required threshold.
        need: usize,
    },
    /// Interpolation failure (duplicate indices).
    Interpolation(InterpolationError),
}

impl std::fmt::Display for CombineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CombineError::BelowThreshold { have, need } => {
                write!(f, "{have} partial signatures, threshold is {need}")
            }
            CombineError::Interpolation(e) => write!(f, "interpolation: {e}"),
        }
    }
}

impl std::error::Error for CombineError {}

impl From<InterpolationError> for CombineError {
    fn from(e: InterpolationError) -> Self {
        CombineError::Interpolation(e)
    }
}

/// Combines at least `threshold` partial signatures into the group
/// signature via Lagrange interpolation in the exponent. Duplicate indices
/// are collapsed before interpolation.
///
/// # Errors
/// Fails below threshold. Partials are **not** individually verified here —
/// callers either verify each partial (`verify_partial`) or verify the
/// combined signature against the group key, as TokenBank does.
pub fn combine(partials: &[PartialSignature], threshold: usize) -> Result<Signature, CombineError> {
    let mut unique: BTreeMap<u32, Signature> = BTreeMap::new();
    for p in partials {
        unique.entry(p.index).or_insert(p.signature);
    }
    if unique.len() < threshold {
        return Err(CombineError::BelowThreshold {
            have: unique.len(),
            need: threshold,
        });
    }
    let chosen: Vec<(u32, Signature)> = unique.into_iter().take(threshold).collect();
    let indices: Vec<u32> = chosen.iter().map(|(i, _)| *i).collect();
    let mut acc = G1::IDENTITY;
    for (i, sig) in &chosen {
        let lambda: Fr = lagrange_coefficient_at_zero(&indices, *i)?;
        acc = acc + sig.point() * lambda;
    }
    Ok(Signature::from_point(acc))
}

/// A quorum certificate: the combined threshold signature over a sync
/// payload plus the metadata TokenBank needs to check it.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuorumCertificate {
    /// Epoch the certificate belongs to.
    pub epoch: u64,
    /// Keccak-256 of the signed payload.
    pub payload_hash: H256,
    /// Combined threshold BLS signature.
    pub signature: Signature,
    /// Share indices that contributed (for audit; verification only needs
    /// the signature).
    pub signers: Vec<u32>,
}

impl QuorumCertificate {
    /// Assembles a certificate from partials over `payload`.
    ///
    /// # Errors
    /// Propagates [`CombineError`] when below threshold.
    pub fn assemble(
        epoch: u64,
        payload: &[u8],
        partials: &[PartialSignature],
        threshold: usize,
    ) -> Result<QuorumCertificate, CombineError> {
        let signature = combine(partials, threshold)?;
        let mut signers: Vec<u32> = partials.iter().map(|p| p.index).collect();
        signers.sort_unstable();
        signers.dedup();
        Ok(QuorumCertificate {
            epoch,
            payload_hash: H256::hash(payload),
            signature,
            signers,
        })
    }

    /// Verifies the certificate against the committee key `vk_c` and the
    /// expected payload — exactly TokenBank's check: recompute the payload
    /// hash, hash-to-point, one pairing equation.
    pub fn verify(&self, vk_c: &PublicKey, payload: &[u8]) -> bool {
        if H256::hash(payload) != self.payload_hash {
            return false;
        }
        let h = G1::hash_to_point(DST_TSQC, payload);
        crate::group::pairing_check(&h, &vk_c.point(), &self.signature.point(), &G2::generator())
    }

    /// Serialized size on the mainchain in bytes: 64-byte signature (the
    /// `vk_c` itself is stored separately — 128 bytes — when the previous
    /// epoch registers it; see paper Table IV).
    pub fn mainchain_signature_size(&self) -> usize {
        64
    }
}

impl PublicKey {
    /// Verifies a *combined* TSQC signature over `msg` (the raw form used
    /// before wrapping into a [`QuorumCertificate`]).
    pub fn verify_raw_tsqc(&self, msg: &[u8], sig: &Signature) -> bool {
        let h = G1::hash_to_point(DST_TSQC, msg);
        crate::group::pairing_check(&h, &self.point(), &sig.point(), &G2::generator())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dkg::{run_ceremony, DkgConfig};

    fn setup(f: usize, seed: u64) -> crate::dkg::DkgOutput {
        run_ceremony(DkgConfig::for_faults(f), seed)
    }

    #[test]
    fn thresholds_match_paper_formula() {
        assert_eq!(max_faults(5), 1);
        assert_eq!(quorum_threshold(5), 4);
        assert_eq!(max_faults(500), 166);
        assert_eq!(quorum_threshold(500), 334);
    }

    #[test]
    fn combine_reaches_group_signature() {
        let out = setup(1, 11); // n=5, t=4
        let msg = b"sync payload epoch 3";
        let partials: Vec<_> = out.key_shares[..4]
            .iter()
            .map(|k| partial_sign(k, msg))
            .collect();
        let sig = combine(&partials, 4).unwrap();
        assert!(out.group_public_key.verify_raw_tsqc(msg, &sig));
    }

    #[test]
    fn any_threshold_subset_combines_identically() {
        let out = setup(1, 12);
        let msg = b"payload";
        let all: Vec<_> = out
            .key_shares
            .iter()
            .map(|k| partial_sign(k, msg))
            .collect();
        let s1 = combine(&all[..4], 4).unwrap();
        let s2 = combine(&all[1..5], 4).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn below_threshold_fails() {
        let out = setup(1, 13);
        let partials: Vec<_> = out.key_shares[..3]
            .iter()
            .map(|k| partial_sign(k, b"m"))
            .collect();
        assert!(matches!(
            combine(&partials, 4),
            Err(CombineError::BelowThreshold { have: 3, need: 4 })
        ));
    }

    #[test]
    fn duplicates_do_not_count_twice() {
        let out = setup(1, 14);
        let p = partial_sign(&out.key_shares[0], b"m");
        let partials = vec![p, p, p, p];
        assert!(matches!(
            combine(&partials, 4),
            Err(CombineError::BelowThreshold { have: 1, need: 4 })
        ));
    }

    #[test]
    fn partial_verification() {
        let out = setup(1, 15);
        let msg = b"partial check";
        let p = partial_sign(&out.key_shares[2], msg);
        let vk = out.key_shares[2].verification_key;
        assert!(verify_partial(&vk, msg, &p));
        assert!(!verify_partial(&vk, b"other", &p));
        let wrong_vk = out.key_shares[3].verification_key;
        assert!(!verify_partial(&wrong_vk, msg, &p));
    }

    #[test]
    fn quorum_certificate_roundtrip() {
        let out = setup(1, 16);
        let payload = b"Sync(payouts=..., positions=...)";
        let partials: Vec<_> = out.key_shares[1..5]
            .iter()
            .map(|k| partial_sign(k, payload))
            .collect();
        let qc = QuorumCertificate::assemble(3, payload, &partials, 4).unwrap();
        assert!(qc.verify(&out.group_public_key, payload));
        assert!(!qc.verify(&out.group_public_key, b"forged payload"));
        assert_eq!(qc.signers, vec![2, 3, 4, 5]);
        assert_eq!(qc.mainchain_signature_size(), 64);
    }

    #[test]
    fn certificate_from_wrong_committee_rejected() {
        let out_a = setup(1, 17);
        let out_b = setup(1, 18);
        let payload = b"sync";
        let partials: Vec<_> = out_b.key_shares[..4]
            .iter()
            .map(|k| partial_sign(k, payload))
            .collect();
        let qc = QuorumCertificate::assemble(1, payload, &partials, 4).unwrap();
        assert!(qc.verify(&out_b.group_public_key, payload));
        assert!(!qc.verify(&out_a.group_public_key, payload));
    }

    #[test]
    fn forged_partial_breaks_combined_signature() {
        let out = setup(1, 19);
        let msg = b"sync";
        let mut partials: Vec<_> = out.key_shares[..4]
            .iter()
            .map(|k| partial_sign(k, msg))
            .collect();
        // adversary swaps in a partial over a different message
        partials[0] = partial_sign(&out.key_shares[0], b"evil");
        let sig = combine(&partials, 4).unwrap();
        assert!(!out.group_public_key.verify_raw_tsqc(msg, &sig));
    }
}
