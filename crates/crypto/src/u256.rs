//! Fixed-width 256-bit and 512-bit unsigned integers.
//!
//! These are the arithmetic workhorses of the whole workspace: the AMM engine
//! uses them for Q64.96 sqrt-price math (including the 512-bit-intermediate
//! `mul_div` that Uniswap calls `FullMath.mulDiv`), and the crypto layer uses
//! them for field arithmetic modulo the BN254 scalar prime.
//!
//! Layout is four (resp. eight) little-endian `u64` limbs. All arithmetic is
//! implemented from scratch; division uses Knuth's Algorithm D.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, BitAnd, BitOr, BitXor, Div, Mul, Not, Rem, Shl, Shr, Sub};

/// A 256-bit unsigned integer (four little-endian `u64` limbs).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct U256(pub(crate) [u64; 4]);

/// A 512-bit unsigned integer (eight little-endian `u64` limbs), used as the
/// intermediate type for full-width 256x256 multiplication.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct U512(pub(crate) [u64; 8]);

/// Error returned when parsing a [`U256`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseU256Error {
    kind: ParseErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseErrorKind {
    Empty,
    InvalidDigit(char),
    Overflow,
}

impl fmt::Display for ParseU256Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ParseErrorKind::Empty => write!(f, "empty string"),
            ParseErrorKind::InvalidDigit(c) => write!(f, "invalid digit `{c}`"),
            ParseErrorKind::Overflow => write!(f, "value does not fit in 256 bits"),
        }
    }
}

impl std::error::Error for ParseU256Error {}

impl U256 {
    /// The value `0`.
    pub const ZERO: U256 = U256([0, 0, 0, 0]);
    /// The value `1`.
    pub const ONE: U256 = U256([1, 0, 0, 0]);
    /// The maximum representable value, `2^256 - 1`.
    pub const MAX: U256 = U256([u64::MAX; 4]);

    /// Creates a value from a `u64`.
    #[inline]
    pub const fn from_u64(v: u64) -> Self {
        U256([v, 0, 0, 0])
    }

    /// Creates a value from a `u128`.
    #[inline]
    pub const fn from_u128(v: u128) -> Self {
        U256([v as u64, (v >> 64) as u64, 0, 0])
    }

    /// Creates a value from raw little-endian limbs.
    #[inline]
    pub const fn from_limbs(limbs: [u64; 4]) -> Self {
        U256(limbs)
    }

    /// Returns the raw little-endian limbs.
    #[inline]
    pub const fn limbs(&self) -> [u64; 4] {
        self.0
    }

    /// Returns `2^exp`.
    ///
    /// # Panics
    /// Panics if `exp >= 256`.
    #[inline]
    pub fn pow2(exp: u32) -> Self {
        assert!(exp < 256, "pow2 exponent out of range");
        let mut out = [0u64; 4];
        out[(exp / 64) as usize] = 1u64 << (exp % 64);
        U256(out)
    }

    /// Returns `true` if the value is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 4]
    }

    /// Truncates to the low 64 bits.
    #[inline]
    pub const fn low_u64(&self) -> u64 {
        self.0[0]
    }

    /// Truncates to the low 128 bits.
    #[inline]
    pub const fn low_u128(&self) -> u128 {
        (self.0[0] as u128) | ((self.0[1] as u128) << 64)
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        if self.0[2] == 0 && self.0[3] == 0 {
            Some(self.low_u128())
        } else {
            None
        }
    }

    /// Converts to `u64` if the value fits.
    #[inline]
    pub fn to_u64(&self) -> Option<u64> {
        if self.0[1] == 0 && self.0[2] == 0 && self.0[3] == 0 {
            Some(self.0[0])
        } else {
            None
        }
    }

    /// Number of significant bits (`0` for zero).
    #[inline]
    pub fn bits(&self) -> u32 {
        for i in (0..4).rev() {
            if self.0[i] != 0 {
                return (i as u32) * 64 + (64 - self.0[i].leading_zeros());
            }
        }
        0
    }

    /// Returns bit `i` (little-endian numbering).
    #[inline]
    pub fn bit(&self, i: u32) -> bool {
        if i >= 256 {
            return false;
        }
        (self.0[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Addition returning `(wrapped, carried)`.
    #[inline]
    pub fn overflowing_add(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = false;
        for i in 0..4 {
            let (s1, c1) = self.0[i].overflowing_add(rhs.0[i]);
            let (s2, c2) = s1.overflowing_add(carry as u64);
            out[i] = s2;
            carry = c1 || c2;
        }
        (U256(out), carry)
    }

    /// Subtraction returning `(wrapped, borrowed)`.
    #[inline]
    pub fn overflowing_sub(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = false;
        for i in 0..4 {
            let (d1, b1) = self.0[i].overflowing_sub(rhs.0[i]);
            let (d2, b2) = d1.overflowing_sub(borrow as u64);
            out[i] = d2;
            borrow = b1 || b2;
        }
        (U256(out), borrow)
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, rhs: U256) -> Option<U256> {
        match self.overflowing_add(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Checked subtraction.
    #[inline]
    pub fn checked_sub(self, rhs: U256) -> Option<U256> {
        match self.overflowing_sub(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Wrapping (mod `2^256`) addition.
    #[inline]
    pub fn wrapping_add(self, rhs: U256) -> U256 {
        self.overflowing_add(rhs).0
    }

    /// Wrapping (mod `2^256`) subtraction.
    pub fn wrapping_sub(self, rhs: U256) -> U256 {
        self.overflowing_sub(rhs).0
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: U256) -> U256 {
        self.checked_add(rhs).unwrap_or(U256::MAX)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: U256) -> U256 {
        self.checked_sub(rhs).unwrap_or(U256::ZERO)
    }

    /// Full-width multiplication producing a 512-bit result.
    ///
    /// Loops only over significant limbs: fixed-point operands are
    /// usually 1–2 limbs, so this runs 1–4 hardware multiplies instead of
    /// a fixed 16.
    pub fn full_mul(self, rhs: U256) -> U512 {
        let na = self.0.iter().rposition(|&l| l != 0).map_or(0, |p| p + 1);
        let nb = rhs.0.iter().rposition(|&l| l != 0).map_or(0, |p| p + 1);
        let mut out = [0u64; 8];
        for i in 0..na {
            let mut carry: u128 = 0;
            for j in 0..nb {
                let cur = (self.0[i] as u128) * (rhs.0[j] as u128) + (out[i + j] as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            out[i + nb] = carry as u64;
        }
        U512(out)
    }

    /// Checked multiplication.
    #[inline]
    pub fn checked_mul(self, rhs: U256) -> Option<U256> {
        let full = self.full_mul(rhs);
        if full.0[4..].iter().all(|&l| l == 0) {
            Some(U256([full.0[0], full.0[1], full.0[2], full.0[3]]))
        } else {
            None
        }
    }

    /// Wrapping (mod `2^256`) multiplication.
    #[inline]
    pub fn wrapping_mul(self, rhs: U256) -> U256 {
        let full = self.full_mul(rhs);
        U256([full.0[0], full.0[1], full.0[2], full.0[3]])
    }

    /// Division with remainder.
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    pub fn div_rem(self, divisor: U256) -> (U256, U256) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (U256::ZERO, self);
        }
        let (q, r) = div_rem_limbs(&self.0, &divisor.0);
        (U256(first4(q)), U256(first4(r)))
    }

    /// Checked division (`None` when dividing by zero).
    pub fn checked_div(self, divisor: U256) -> Option<U256> {
        if divisor.is_zero() {
            None
        } else {
            Some(self.div_rem(divisor).0)
        }
    }

    /// `Some(k)` iff `self == 2^k` — the hot-path detector behind the
    /// shift fast paths in the `mul_div` family (fixed-point code divides
    /// by `2^96`/`2^128` constantly; a shift beats a long division by an
    /// order of magnitude).
    #[inline]
    fn pow2_exp(self) -> Option<u32> {
        let mut exp = None;
        for (i, &l) in self.0.iter().enumerate() {
            if l != 0 {
                if l.count_ones() != 1 || exp.is_some() {
                    return None;
                }
                exp = Some(64 * i as u32 + l.trailing_zeros());
            }
        }
        exp
    }

    /// The 512-bit product `self * mul`, via a shift when `mul` is a
    /// power of two.
    #[inline]
    fn widening_mul(self, mul: U256) -> U512 {
        match mul.pow2_exp() {
            Some(k) => U512::from_u256(self) << k,
            None => self.full_mul(mul),
        }
    }

    /// Computes `floor(self * mul / div)` with a 512-bit intermediate.
    ///
    /// This is the Uniswap `FullMath.mulDiv` primitive.
    ///
    /// # Panics
    /// Panics if `div` is zero or the result does not fit in 256 bits.
    pub fn mul_div(self, mul: U256, div: U256) -> U256 {
        self.checked_mul_div(mul, div)
            .expect("mul_div overflow or division by zero")
    }

    /// Computes `ceil(self * mul / div)` with a 512-bit intermediate.
    ///
    /// # Panics
    /// Panics if `div` is zero or the result does not fit in 256 bits.
    pub fn mul_div_rounding_up(self, mul: U256, div: U256) -> U256 {
        let prod = self.widening_mul(mul);
        let (q, round_up) = match div.pow2_exp() {
            Some(k) => (prod >> k, prod.low_bits_nonzero(k)),
            None => {
                let (q, r) = prod.div_rem_u256(div);
                (q, !r.is_zero())
            }
        };
        let mut out = q.to_u256().expect("mul_div_rounding_up overflow");
        if round_up {
            out = out
                .checked_add(U256::ONE)
                .expect("mul_div_rounding_up overflow");
        }
        out
    }

    /// Checked `floor(self * mul / div)`.
    ///
    /// Returns `None` when `div == 0` or when the quotient exceeds 256 bits.
    pub fn checked_mul_div(self, mul: U256, div: U256) -> Option<U256> {
        if div.is_zero() {
            return None;
        }
        let prod = self.widening_mul(mul);
        let q = match div.pow2_exp() {
            Some(k) => prod >> k,
            None => prod.div_rem_u256(div).0,
        };
        q.to_u256()
    }

    /// Computes `(self * mul) >> shift` with a 512-bit intermediate,
    /// truncating. Used for Q128 fixed-point products.
    ///
    /// # Panics
    /// Panics if the shifted result does not fit in 256 bits.
    pub fn mul_shr(self, mul: U256, shift: u32) -> U256 {
        let prod = self.full_mul(mul);
        let shifted = prod >> shift;
        shifted.to_u256().expect("mul_shr overflow")
    }

    /// Integer square root: the largest `r` with `r * r <= self`.
    pub fn isqrt(self) -> U256 {
        if self.is_zero() {
            return U256::ZERO;
        }
        // Newton's method with a power-of-two initial overestimate.
        let mut x = U256::pow2(self.bits().div_ceil(2));
        loop {
            // y = (x + self / x) / 2
            let y = (x + self / x) >> 1;
            if y >= x {
                return x;
            }
            x = y;
        }
    }

    /// Big-endian byte representation.
    pub fn to_be_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[32 - 8 * (i + 1)..32 - 8 * i].copy_from_slice(&self.0[i].to_be_bytes());
        }
        out
    }

    /// Parses from big-endian bytes.
    pub fn from_be_bytes(bytes: [u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            let mut l = [0u8; 8];
            l.copy_from_slice(&bytes[32 - 8 * (i + 1)..32 - 8 * i]);
            limbs[i] = u64::from_be_bytes(l);
        }
        U256(limbs)
    }

    /// Parses a decimal string.
    pub fn from_dec_str(s: &str) -> Result<Self, ParseU256Error> {
        if s.is_empty() {
            return Err(ParseU256Error {
                kind: ParseErrorKind::Empty,
            });
        }
        let mut acc = U256::ZERO;
        let ten = U256::from_u64(10);
        for c in s.chars() {
            if c == '_' {
                continue;
            }
            let d = c.to_digit(10).ok_or(ParseU256Error {
                kind: ParseErrorKind::InvalidDigit(c),
            })?;
            acc = acc
                .checked_mul(ten)
                .and_then(|a| a.checked_add(U256::from_u64(d as u64)))
                .ok_or(ParseU256Error {
                    kind: ParseErrorKind::Overflow,
                })?;
        }
        Ok(acc)
    }
}

/// The low 4 limbs of an 8-limb result whose high half is known zero.
#[inline]
fn first4(l: [u64; 8]) -> [u64; 4] {
    debug_assert!(l[4..].iter().all(|&x| x == 0));
    [l[0], l[1], l[2], l[3]]
}

/// Long division dispatch over little-endian `u64` limb slices.
///
/// Returns `(quotient, remainder)` as fixed 8-limb arrays. Entirely
/// allocation-free: this runs several times per swap step (amount deltas,
/// fee accounting), where the former `Vec`-based scratch buffers were the
/// single largest cost.
///
/// Divisor shapes take specialized paths: 1 limb → schoolbook with
/// native `u128` division; 2 limbs → Möller–Granlund reciprocal 3-by-2
/// division (the Q64.96 sqrt prices the swap loop divides by are 2-limb
/// until |tick| ≈ 443k, so this is the AMM hot path — roughly halving
/// the per-division cost vs the Knuth core, which stays as the general
/// path and as the differential oracle under `debug_assert`).
fn div_rem_limbs(num: &[u64], div: &[u64]) -> ([u64; 8], [u64; 8]) {
    debug_assert!(num.len() <= 8 && div.len() <= 8);
    // Strip leading (most-significant) zeros.
    let n_len = num.iter().rposition(|&l| l != 0).map_or(0, |p| p + 1);
    let d_len = div.iter().rposition(|&l| l != 0).map_or(0, |p| p + 1);
    assert!(d_len > 0, "division by zero");

    let mut q = [0u64; 8];
    let mut r = [0u64; 8];

    if n_len < d_len {
        r[..n_len].copy_from_slice(&num[..n_len]);
        return (q, r);
    }

    // Single-limb divisor: simple schoolbook division.
    if d_len == 1 {
        let d = div[0] as u128;
        let mut rem: u128 = 0;
        for i in (0..n_len).rev() {
            let cur = (rem << 64) | num[i] as u128;
            q[i] = (cur / d) as u64;
            rem = cur % d;
        }
        r[0] = rem as u64;
        return (q, r);
    }

    // Two-limb divisor: reciprocal division, with the Knuth core as the
    // differential oracle in debug builds.
    if d_len == 2 {
        let out = div_rem_by_2_limbs(&num[..n_len], div[0], div[1]);
        debug_assert_eq!(
            out,
            div_rem_knuth(num, div, n_len, d_len),
            "reciprocal division diverges from Knuth oracle"
        );
        return out;
    }

    div_rem_knuth(num, div, n_len, d_len)
}

/// Möller–Granlund reciprocal of a normalized (high-bit-set) single
/// limb: `floor((2^128 - 1) / d) - 2^64`.
#[inline]
fn reciprocal_u64(d: u64) -> u64 {
    debug_assert!(d >= 1 << 63, "reciprocal of unnormalized divisor");
    // (2^128 - 1) - d·2^64 = (!d)·2^64 + (2^64 - 1)
    let num = ((!d as u128) << 64) | u64::MAX as u128;
    (num / d as u128) as u64
}

/// Möller–Granlund reciprocal of a normalized 2-limb divisor
/// `d = d1·2^64 + d0` (with `d1`'s high bit set):
/// `floor((2^192 - 1) / d) - 2^64`. Algorithm 6 of "Improved division by
/// invariant integers" (Möller & Granlund, IEEE ToC 2011).
#[inline]
fn reciprocal_2_limbs(d1: u64, d0: u64) -> u64 {
    let mut v = reciprocal_u64(d1);
    let mut p = d1.wrapping_mul(v).wrapping_add(d0);
    if p < d0 {
        v = v.wrapping_sub(1);
        if p >= d1 {
            v = v.wrapping_sub(1);
            p = p.wrapping_sub(d1);
        }
        p = p.wrapping_sub(d1);
    }
    let t = (v as u128) * (d0 as u128);
    let t_hi = (t >> 64) as u64;
    let p2 = p.wrapping_add(t_hi);
    if p2 < t_hi {
        v = v.wrapping_sub(1);
        let d = ((d1 as u128) << 64) | d0 as u128;
        let candidate = ((p2 as u128) << 64) | (t as u64 as u128);
        if candidate >= d {
            v = v.wrapping_sub(1);
        }
    }
    v
}

/// One 3-by-2 division step (Möller–Granlund Algorithm 4): divides
/// `⟨u2, u1, u0⟩` by the normalized divisor `⟨d1, d0⟩` using its
/// precomputed reciprocal `v`, returning the quotient limb and the
/// 2-limb remainder. Requires `⟨u2, u1⟩ < ⟨d1, d0⟩`.
#[inline]
fn div_3by2(u2: u64, u1: u64, u0: u64, d1: u64, d0: u64, v: u64) -> (u64, u128) {
    let d = ((d1 as u128) << 64) | d0 as u128;
    let q = (v as u128) * (u2 as u128);
    let q = q.wrapping_add(((u2 as u128) << 64) | u1 as u128);
    let mut q1 = (q >> 64) as u64;
    let q0 = q as u64;
    let r1 = u1.wrapping_sub(q1.wrapping_mul(d1));
    let t = (d0 as u128) * (q1 as u128);
    let mut r = (((r1 as u128) << 64) | u0 as u128)
        .wrapping_sub(t)
        .wrapping_sub(d);
    q1 = q1.wrapping_add(1);
    if (r >> 64) as u64 >= q0 {
        q1 = q1.wrapping_sub(1);
        r = r.wrapping_add(d);
    }
    if r >= d {
        q1 = q1.wrapping_add(1);
        r = r.wrapping_sub(d);
    }
    (q1, r)
}

/// Division by a 2-limb divisor via reciprocal 3-by-2 steps: normalize,
/// precompute the reciprocal once, then one `div_3by2` per quotient limb
/// — no per-step estimate/correct loop, no multiword subtract-and-addback.
fn div_rem_by_2_limbs(num: &[u64], d0: u64, d1: u64) -> ([u64; 8], [u64; 8]) {
    debug_assert!(d1 != 0 && num.len() >= 2 && num.len() <= 8);
    let shift = d1.leading_zeros();
    // normalized divisor ⟨nd1, nd0⟩ (top bit of nd1 set)
    let (nd1, nd0) = if shift == 0 {
        (d1, d0)
    } else {
        (d1 << shift | d0 >> (64 - shift), d0 << shift)
    };
    let v = reciprocal_2_limbs(nd1, nd0);

    // normalized numerator with one spill limb of headroom
    let n_len = num.len();
    let mut u = [0u64; 9];
    shl_into(&mut u, num, shift);

    let mut q = [0u64; 8];
    // remainder window ⟨r1, r0⟩, seeded from the numerator's top limbs;
    // the seed is < d because u[n_len] (the spill limb) holds the top
    // `shift` bits and is always < nd1
    let mut rem = ((u[n_len] as u128) << 64) | u[n_len - 1] as u128;
    for j in (0..n_len - 1).rev() {
        let (qj, r) = div_3by2((rem >> 64) as u64, rem as u64, u[j], nd1, nd0, v);
        q[j] = qj;
        rem = r;
    }

    // denormalize the remainder
    let mut r = [0u64; 8];
    let rem = rem >> shift;
    r[0] = rem as u64;
    r[1] = (rem >> 64) as u64;
    (q, r)
}

/// Knuth Algorithm D long division over little-endian `u64` limb slices
/// — the general-divisor core, also serving as the differential oracle
/// for the reciprocal path.
fn div_rem_knuth(num: &[u64], div: &[u64], n_len: usize, d_len: usize) -> ([u64; 8], [u64; 8]) {
    let mut q = [0u64; 8];
    let mut r = [0u64; 8];

    // D1: normalize so the top divisor limb has its high bit set. The
    // scratch buffers live on the stack with one limb of headroom each
    // for the normalization shift (`v`'s spill limb is always written as
    // zero — the top divisor limb has exactly `shift` leading zeros).
    let shift = div[d_len - 1].leading_zeros();
    let mut v = [0u64; 9];
    shl_into(&mut v, &div[..d_len], shift);
    let mut u = [0u64; 9];
    shl_into(&mut u, &num[..n_len], shift);

    let n = d_len;
    let m = n_len - d_len;
    let b: u128 = 1u128 << 64;

    // D2..D7: main loop.
    for j in (0..=m).rev() {
        // D3: estimate q-hat.
        let top = ((u[j + n] as u128) << 64) | (u[j + n - 1] as u128);
        let mut qhat = top / (v[n - 1] as u128);
        let mut rhat = top % (v[n - 1] as u128);
        while qhat >= b || qhat * (v[n - 2] as u128) > (rhat << 64) + (u[j + n - 2] as u128) {
            qhat -= 1;
            rhat += v[n - 1] as u128;
            if rhat >= b {
                break;
            }
        }

        // D4: multiply and subtract.
        let mut borrow: i128 = 0;
        let mut carry: u128 = 0;
        for i in 0..n {
            let p = qhat * (v[i] as u128) + carry;
            carry = p >> 64;
            let sub = (u[j + i] as i128) - ((p as u64) as i128) + borrow;
            u[j + i] = sub as u64;
            borrow = sub >> 64; // arithmetic shift: 0 or -1
        }
        let sub = (u[j + n] as i128) - (carry as i128) + borrow;
        u[j + n] = sub as u64;
        let neg = sub < 0;

        // D5/D6: if we subtracted too much, add one divisor back.
        if neg {
            qhat -= 1;
            let mut c: u128 = 0;
            for i in 0..n {
                let s = (u[j + i] as u128) + (v[i] as u128) + c;
                u[j + i] = s as u64;
                c = s >> 64;
            }
            u[j + n] = u[j + n].wrapping_add(c as u64);
        }
        q[j] = qhat as u64;
    }

    // D8: denormalize the remainder.
    shr_into(&mut r, &u[..n], shift);
    (q, r)
}

/// `out[..] = x << shift` (shift < 64), writing `x.len() + 1` limbs.
#[inline]
fn shl_into(out: &mut [u64], x: &[u64], shift: u32) {
    debug_assert!(shift < 64 && out.len() > x.len());
    if shift == 0 {
        out[..x.len()].copy_from_slice(x);
        return;
    }
    for (i, &l) in x.iter().enumerate() {
        out[i] |= l << shift;
        out[i + 1] = l >> (64 - shift);
    }
}

/// `out[..x.len()] = x >> shift` (shift < 64).
#[inline]
fn shr_into(out: &mut [u64], x: &[u64], shift: u32) {
    debug_assert!(shift < 64 && out.len() >= x.len());
    if shift == 0 {
        out[..x.len()].copy_from_slice(x);
        return;
    }
    for i in 0..x.len() {
        out[i] = x[i] >> shift;
        if i + 1 < x.len() {
            out[i] |= x[i + 1] << (64 - shift);
        }
    }
}

impl U512 {
    /// The value `0`.
    pub const ZERO: U512 = U512([0; 8]);
    /// The value `1`.
    pub const ONE: U512 = U512([1, 0, 0, 0, 0, 0, 0, 0]);

    /// Creates from raw little-endian limbs.
    pub const fn from_limbs(limbs: [u64; 8]) -> Self {
        U512(limbs)
    }

    /// Widens a [`U256`].
    #[inline]
    pub const fn from_u256(v: U256) -> Self {
        U512([v.0[0], v.0[1], v.0[2], v.0[3], 0, 0, 0, 0])
    }

    /// Returns `2^exp`.
    ///
    /// # Panics
    /// Panics if `exp >= 512`.
    pub fn pow2(exp: u32) -> Self {
        assert!(exp < 512, "pow2 exponent out of range");
        let mut out = [0u64; 8];
        out[(exp / 64) as usize] = 1u64 << (exp % 64);
        U512(out)
    }

    /// Returns `true` when zero.
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 8]
    }

    /// Number of significant bits.
    pub fn bits(&self) -> u32 {
        for i in (0..8).rev() {
            if self.0[i] != 0 {
                return (i as u32) * 64 + (64 - self.0[i].leading_zeros());
            }
        }
        0
    }

    /// Narrows to [`U256`] when the value fits.
    #[inline]
    pub fn to_u256(&self) -> Option<U256> {
        if self.0[4..].iter().all(|&l| l == 0) {
            Some(U256([self.0[0], self.0[1], self.0[2], self.0[3]]))
        } else {
            None
        }
    }

    /// `true` when any of the lowest `k` bits is set — the remainder
    /// check behind the power-of-two divisor fast path.
    #[inline]
    pub fn low_bits_nonzero(&self, k: u32) -> bool {
        let full = ((k / 64) as usize).min(8);
        if self.0[..full].iter().any(|&l| l != 0) {
            return true;
        }
        let rem = k % 64;
        rem != 0 && full < 8 && self.0[full] & ((1u64 << rem) - 1) != 0
    }

    /// Addition returning `(wrapped, carried)`.
    pub fn overflowing_add(self, rhs: U512) -> (U512, bool) {
        let mut out = [0u64; 8];
        let mut carry = false;
        for i in 0..8 {
            let (s1, c1) = self.0[i].overflowing_add(rhs.0[i]);
            let (s2, c2) = s1.overflowing_add(carry as u64);
            out[i] = s2;
            carry = c1 || c2;
        }
        (U512(out), carry)
    }

    /// Subtraction returning `(wrapped, borrowed)`.
    pub fn overflowing_sub(self, rhs: U512) -> (U512, bool) {
        let mut out = [0u64; 8];
        let mut borrow = false;
        for i in 0..8 {
            let (d1, b1) = self.0[i].overflowing_sub(rhs.0[i]);
            let (d2, b2) = d1.overflowing_sub(borrow as u64);
            out[i] = d2;
            borrow = b1 || b2;
        }
        (U512(out), borrow)
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: U512) -> Option<U512> {
        match self.overflowing_add(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: U512) -> Option<U512> {
        match self.overflowing_sub(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Division with remainder by a 256-bit divisor.
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    pub fn div_rem_u256(self, divisor: U256) -> (U512, U256) {
        assert!(!divisor.is_zero(), "division by zero");
        let (q, r) = div_rem_limbs(&self.0, &divisor.0);
        (U512(q), U256(first4(r)))
    }

    /// Division with remainder by a 512-bit divisor.
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    pub fn div_rem(self, divisor: U512) -> (U512, U512) {
        assert!(!divisor.is_zero(), "division by zero");
        let (q, r) = div_rem_limbs(&self.0, &divisor.0);
        (U512(q), U512(r))
    }

    /// Integer square root: largest `r` with `r * r <= self`.
    ///
    /// The result always fits in a [`U256`].
    pub fn isqrt(self) -> U256 {
        if self.is_zero() {
            return U256::ZERO;
        }
        let mut x = U512::pow2(self.bits().div_ceil(2).min(256));
        loop {
            let (q, _) = self.div_rem(x);
            let (sum, carry) = x.overflowing_add(q);
            assert!(!carry, "isqrt internal overflow");
            let y = sum >> 1;
            if ge_512(y, x) {
                return x.to_u256().expect("isqrt result exceeds 256 bits");
            }
            x = y;
        }
    }
}

fn ge_512(a: U512, b: U512) -> bool {
    for i in (0..8).rev() {
        match a.0[i].cmp(&b.0[i]) {
            Ordering::Greater => return true,
            Ordering::Less => return false,
            Ordering::Equal => {}
        }
    }
    true
}

// ---- operator impls -------------------------------------------------------

impl Add for U256 {
    type Output = U256;
    fn add(self, rhs: U256) -> U256 {
        self.checked_add(rhs).expect("U256 addition overflow")
    }
}

impl Sub for U256 {
    type Output = U256;
    fn sub(self, rhs: U256) -> U256 {
        self.checked_sub(rhs).expect("U256 subtraction underflow")
    }
}

impl Mul for U256 {
    type Output = U256;
    fn mul(self, rhs: U256) -> U256 {
        self.checked_mul(rhs).expect("U256 multiplication overflow")
    }
}

impl Div for U256 {
    type Output = U256;
    fn div(self, rhs: U256) -> U256 {
        self.div_rem(rhs).0
    }
}

impl Rem for U256 {
    type Output = U256;
    fn rem(self, rhs: U256) -> U256 {
        self.div_rem(rhs).1
    }
}

impl Shl<u32> for U256 {
    type Output = U256;
    fn shl(self, shift: u32) -> U256 {
        if shift >= 256 {
            return U256::ZERO;
        }
        let limb_shift = (shift / 64) as usize;
        let bit_shift = shift % 64;
        let mut out = [0u64; 4];
        for i in (limb_shift..4).rev() {
            out[i] = self.0[i - limb_shift] << bit_shift;
            if bit_shift > 0 && i > limb_shift {
                out[i] |= self.0[i - limb_shift - 1] >> (64 - bit_shift);
            }
        }
        U256(out)
    }
}

impl Shr<u32> for U256 {
    type Output = U256;
    fn shr(self, shift: u32) -> U256 {
        if shift >= 256 {
            return U256::ZERO;
        }
        let limb_shift = (shift / 64) as usize;
        let bit_shift = shift % 64;
        let mut out = [0u64; 4];
        for i in 0..(4 - limb_shift) {
            out[i] = self.0[i + limb_shift] >> bit_shift;
            if bit_shift > 0 && i + limb_shift + 1 < 4 {
                out[i] |= self.0[i + limb_shift + 1] << (64 - bit_shift);
            }
        }
        U256(out)
    }
}

impl Shr<u32> for U512 {
    type Output = U512;
    fn shr(self, shift: u32) -> U512 {
        if shift >= 512 {
            return U512::ZERO;
        }
        let limb_shift = (shift / 64) as usize;
        let bit_shift = shift % 64;
        let mut out = [0u64; 8];
        for i in 0..(8 - limb_shift) {
            out[i] = self.0[i + limb_shift] >> bit_shift;
            if bit_shift > 0 && i + limb_shift + 1 < 8 {
                out[i] |= self.0[i + limb_shift + 1] << (64 - bit_shift);
            }
        }
        U512(out)
    }
}

impl Shl<u32> for U512 {
    type Output = U512;
    fn shl(self, shift: u32) -> U512 {
        if shift >= 512 {
            return U512::ZERO;
        }
        let limb_shift = (shift / 64) as usize;
        let bit_shift = shift % 64;
        let mut out = [0u64; 8];
        for i in (limb_shift..8).rev() {
            out[i] = self.0[i - limb_shift] << bit_shift;
            if bit_shift > 0 && i > limb_shift {
                out[i] |= self.0[i - limb_shift - 1] >> (64 - bit_shift);
            }
        }
        U512(out)
    }
}

impl BitAnd for U256 {
    type Output = U256;
    fn bitand(self, rhs: U256) -> U256 {
        U256([
            self.0[0] & rhs.0[0],
            self.0[1] & rhs.0[1],
            self.0[2] & rhs.0[2],
            self.0[3] & rhs.0[3],
        ])
    }
}

impl BitOr for U256 {
    type Output = U256;
    fn bitor(self, rhs: U256) -> U256 {
        U256([
            self.0[0] | rhs.0[0],
            self.0[1] | rhs.0[1],
            self.0[2] | rhs.0[2],
            self.0[3] | rhs.0[3],
        ])
    }
}

impl BitXor for U256 {
    type Output = U256;
    fn bitxor(self, rhs: U256) -> U256 {
        U256([
            self.0[0] ^ rhs.0[0],
            self.0[1] ^ rhs.0[1],
            self.0[2] ^ rhs.0[2],
            self.0[3] ^ rhs.0[3],
        ])
    }
}

impl Not for U256 {
    type Output = U256;
    fn not(self) -> U256 {
        U256([!self.0[0], !self.0[1], !self.0[2], !self.0[3]])
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..4).rev() {
            match self.0[i].cmp(&other.0[i]) {
                Ordering::Equal => {}
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for U512 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..8).rev() {
            match self.0[i].cmp(&other.0[i]) {
                Ordering::Equal => {}
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for U512 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl From<u64> for U256 {
    fn from(v: u64) -> Self {
        U256::from_u64(v)
    }
}

impl From<u128> for U256 {
    fn from(v: u128) -> Self {
        U256::from_u128(v)
    }
}

impl From<u32> for U256 {
    fn from(v: u32) -> Self {
        U256::from_u64(v as u64)
    }
}

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U256({self})")
    }
}

impl fmt::Display for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut digits = Vec::new();
        let mut cur = *self;
        let ten = U256::from_u64(10);
        while !cur.is_zero() {
            let (q, r) = cur.div_rem(ten);
            digits.push(b'0' + r.low_u64() as u8);
            cur = q;
        }
        digits.reverse();
        f.write_str(std::str::from_utf8(&digits).expect("decimal digits are ascii"))
    }
}

impl fmt::LowerHex for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if f.alternate() {
            write!(f, "0x")?;
        }
        write!(
            f,
            "{:016x}{:016x}{:016x}{:016x}",
            self.0[3], self.0[2], self.0[1], self.0[0]
        )
    }
}

impl fmt::Debug for U512 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U512(0x")?;
        for i in (0..8).rev() {
            write!(f, "{:016x}", self.0[i])?;
        }
        write!(f, ")")
    }
}

impl std::str::FromStr for U256 {
    type Err = ParseU256Error;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        U256::from_dec_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> U256 {
        U256::from_u64(v)
    }

    /// Deterministic xorshift for the fast-path differential checks.
    fn rng(seed: &mut u64) -> u64 {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        *seed
    }

    #[test]
    fn pow2_exp_detects_exact_powers_only() {
        for k in [0u32, 1, 63, 64, 96, 128, 255] {
            assert_eq!(U256::pow2(k).pow2_exp(), Some(k), "2^{k}");
        }
        assert_eq!(U256::ZERO.pow2_exp(), None);
        assert_eq!(u(3).pow2_exp(), None);
        assert_eq!((U256::pow2(96) + U256::ONE).pow2_exp(), None);
        assert_eq!((U256::pow2(200) + U256::pow2(10)).pow2_exp(), None);
    }

    #[test]
    fn mul_div_pow2_fast_paths_match_generic() {
        // shift fast paths (pow2 multiplier / divisor) must agree with the
        // long-division route bit for bit, including the ceil carry
        let mut seed = 0xDEADBEEFu64;
        for _ in 0..2000 {
            let a = U256([rng(&mut seed), rng(&mut seed), 0, 0]);
            let odd = U256::from_u64(rng(&mut seed) | 1);
            for k in [1u32, 64, 96, 128] {
                let p2 = U256::pow2(k);
                // divisor = 2^k: floor and ceil against plain shift math
                let prod = a.full_mul(odd);
                let expect_floor = (prod >> k).to_u256().unwrap();
                assert_eq!(a.mul_div(odd, p2), expect_floor);
                let expect_ceil = if prod.low_bits_nonzero(k) {
                    expect_floor + U256::ONE
                } else {
                    expect_floor
                };
                assert_eq!(a.mul_div_rounding_up(odd, p2), expect_ceil);
                // multiplier = 2^k: against the explicit widening product
                assert_eq!(
                    a.mul_div(p2, odd),
                    (U512::from_u256(a) << k)
                        .div_rem_u256(odd)
                        .0
                        .to_u256()
                        .unwrap()
                );
            }
        }
    }

    #[test]
    fn full_width_divisor_with_unset_top_bit() {
        // regression: an 8-limb divisor whose top limb needs a
        // normalization shift must not overrun the scratch buffer
        let (q, r) = U512::pow2(500).div_rem(U512::pow2(450));
        assert_eq!(q, U512::pow2(50));
        assert!(r.is_zero());
        // d = 3·2^448 (8 limbs, top limb 3 → shift 62):
        // 2^511 = d·⌊(2^63−2)/3⌋ + 2^449
        let d = U512::pow2(449).checked_add(U512::pow2(448)).unwrap();
        let (q, r) = U512::pow2(511).div_rem(d);
        assert_eq!(
            q,
            U512::from_limbs([3_074_457_345_618_258_602, 0, 0, 0, 0, 0, 0, 0])
        );
        assert_eq!(r, U512::pow2(449));
    }

    #[test]
    fn low_bits_nonzero_boundaries() {
        let v = U512::pow2(100);
        assert!(!v.low_bits_nonzero(100));
        assert!(v.low_bits_nonzero(101));
        assert!(!U512::ZERO.low_bits_nonzero(512));
        assert!(U512::ONE.low_bits_nonzero(1));
        assert!(!U512::ONE.low_bits_nonzero(0));
    }

    #[test]
    fn reciprocal_matches_definition() {
        // v = floor((2^128 - 1) / d) - 2^64 for normalized d
        let mut seed = 0xBEEF_CAFE_u64;
        for _ in 0..2000 {
            let d = rng(&mut seed) | (1 << 63);
            let v = reciprocal_u64(d);
            let expect = (u128::MAX / d as u128) - (1u128 << 64);
            assert_eq!(v as u128, expect, "d = {d:#x}");
        }
    }

    #[test]
    fn two_limb_reciprocal_matches_definition() {
        // v = floor((2^192 - 1) / d) - 2^64 for normalized 2-limb d,
        // checked against the Knuth core computing the same quotient
        let mut seed = 0x2B1B_D1D0_u64 ^ 0x5555;
        for _ in 0..500 {
            let d1 = rng(&mut seed) | (1 << 63);
            let d0 = rng(&mut seed);
            let v = reciprocal_2_limbs(d1, d0);
            // (2^192 - 1) / d via the oracle
            let num = [u64::MAX, u64::MAX, u64::MAX, 0, 0, 0, 0, 0];
            let div = [d0, d1, 0, 0, 0, 0, 0, 0];
            let (q, _) = div_rem_knuth(&num, &div, 3, 2);
            let expect = q[0];
            assert_eq!(q[1], 1, "quotient of 3-limb max by normalized 2-limb");
            assert_eq!(v, expect, "d = ({d1:#x}, {d0:#x})");
        }
    }

    #[test]
    fn two_limb_divisor_division_reconstructs() {
        // q·d + r == num and r < d across random shapes that exercise the
        // reciprocal path (2-limb divisors, numerators of 2..8 limbs)
        let mut seed = 0x0DD5_EED5u64;
        for _ in 0..3000 {
            let d = U256([rng(&mut seed), rng(&mut seed) | 1, 0, 0]);
            let n_limbs = 2 + (rng(&mut seed) % 7) as usize;
            let mut nl = [0u64; 8];
            for l in nl.iter_mut().take(n_limbs) {
                *l = rng(&mut seed);
            }
            let num = U512(nl);
            let (q, r) = num.div_rem_u256(d);
            assert!(r < d, "remainder not reduced");
            let back = q
                .to_u256()
                .map(|q256| q256.full_mul(d))
                .unwrap_or_else(|| {
                    // quotient wider than 256 bits: multiply limb-wise
                    let mut acc = U512::ZERO;
                    for (i, &l) in q.0.iter().enumerate() {
                        let part = d.full_mul(U256::from_u64(l));
                        let mut shifted = part;
                        for _ in 0..i {
                            shifted = shifted << 64;
                        }
                        acc = acc.checked_add(shifted).expect("no overflow by invariant");
                    }
                    acc
                })
                .checked_add(U512::from_u256(r))
                .expect("q*d + r fits");
            assert_eq!(back, num);
        }
    }

    #[test]
    fn sqrt_price_shaped_divisors_agree_with_oracle() {
        // Q64.96 sqrt prices are ~97–128-bit (2-limb) values: the exact
        // shape the mul_div hot path divides by
        let mut seed = 0x5117_BEEF_u64;
        for _ in 0..2000 {
            let price = U256::pow2(96) + U256::from_u128(rng(&mut seed) as u128);
            let a = U256([rng(&mut seed), rng(&mut seed), rng(&mut seed), 0]);
            let b = U256::from_u128(((rng(&mut seed) as u128) << 64) | rng(&mut seed) as u128);
            let (q, r) = a.full_mul(b).div_rem_u256(price);
            let back = {
                let mut acc = U512::from_u256(r);
                for (i, &l) in q.0.iter().enumerate() {
                    let part = price.full_mul(U256::from_u64(l));
                    acc = acc
                        .checked_add(part << (64 * i as u32))
                        .expect("reconstruction fits");
                }
                acc
            };
            assert_eq!(back, a.full_mul(b));
        }
    }

    #[test]
    fn division_matches_u128_reference() {
        // the allocation-free Knuth core against native 128-bit division
        let mut seed = 0xC0FFEEu64;
        for _ in 0..5000 {
            let a = ((rng(&mut seed) as u128) << 64) | rng(&mut seed) as u128;
            let b = ((rng(&mut seed) as u128) << (rng(&mut seed) % 64)) | 1;
            let (q, r) = U256::from_u128(a).div_rem(U256::from_u128(b));
            assert_eq!(q.to_u128().unwrap(), a / b, "{a} / {b}");
            assert_eq!(r.to_u128().unwrap(), a % b, "{a} % {b}");
        }
    }

    #[test]
    fn division_recovers_constructed_quotients() {
        // build num = q·d + r with r < d, then check div_rem_u256 returns
        // exactly (q, r) across random operand shapes
        let mut seed = 0xFEED5EEDu64;
        for _ in 0..2000 {
            let q_limbs = 1 + (rng(&mut seed) % 4) as usize;
            let mut ql = [0u64; 4];
            for l in ql.iter_mut().take(q_limbs) {
                *l = rng(&mut seed);
            }
            let q = U256(ql);
            let d_limbs = 1 + (rng(&mut seed) % 4) as usize;
            let mut dl = [0u64; 4];
            for l in dl.iter_mut().take(d_limbs) {
                *l = rng(&mut seed);
            }
            dl[0] |= 1;
            let d = U256(dl);
            let r = U256([rng(&mut seed), 0, 0, 0]).div_rem(d).1;
            let num = q
                .full_mul(d)
                .checked_add(U512::from_u256(r))
                .expect("fits 512 bits");
            let (got_q, got_r) = num.div_rem_u256(d);
            assert_eq!(got_q, U512::from_u256(q));
            assert_eq!(got_r, r);
        }
    }

    #[test]
    fn add_sub_basic() {
        assert_eq!(u(2) + u(3), u(5));
        assert_eq!(u(5) - u(3), u(2));
        let (v, c) = U256::MAX.overflowing_add(U256::ONE);
        assert!(c);
        assert_eq!(v, U256::ZERO);
        let (v, b) = U256::ZERO.overflowing_sub(U256::ONE);
        assert!(b);
        assert_eq!(v, U256::MAX);
    }

    #[test]
    fn carries_propagate_across_limbs() {
        let a = U256([u64::MAX, u64::MAX, 0, 0]);
        let sum = a + U256::ONE;
        assert_eq!(sum, U256([0, 0, 1, 0]));
        assert_eq!(sum - U256::ONE, a);
    }

    #[test]
    fn mul_full_width() {
        let a = U256::from_u128(u128::MAX);
        let sq = a.full_mul(a);
        // (2^128 - 1)^2 = 2^256 - 2^129 + 1
        let expect = U512::pow2(256)
            .checked_sub(U512::pow2(129))
            .unwrap()
            .checked_add(U512::ONE)
            .unwrap();
        assert_eq!(sq, expect);
    }

    #[test]
    fn div_rem_roundtrip() {
        let n = U256::from_dec_str("340282366920938463463374607431768211455123456789").unwrap();
        let d = U256::from_dec_str("987654321987654321").unwrap();
        let (q, r) = n.div_rem(d);
        assert_eq!(q * d + r, n);
        assert!(r < d);
    }

    #[test]
    fn div_by_larger_is_zero() {
        let (q, r) = u(5).div_rem(u(7));
        assert_eq!(q, U256::ZERO);
        assert_eq!(r, u(5));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = u(1).div_rem(U256::ZERO);
    }

    #[test]
    fn u512_div_rem_roundtrip() {
        let a = U256::MAX;
        let b = U256::from_dec_str("123456789123456789123456789").unwrap();
        let prod = a.full_mul(b);
        let (q, r) = prod.div_rem_u256(b);
        assert_eq!(q.to_u256().unwrap(), a);
        assert_eq!(r, U256::ZERO);
        let (q2, r2) = prod.div_rem_u256(a);
        assert_eq!(q2.to_u256().unwrap(), b);
        assert_eq!(r2, U256::ZERO);
    }

    #[test]
    fn mul_div_matches_exact() {
        // (2^200 * 3) / 2^100 == 3 * 2^100
        let a = U256::pow2(200);
        let out = a.mul_div(u(3), U256::pow2(100));
        assert_eq!(out, U256::pow2(100) * u(3));
    }

    #[test]
    fn mul_div_rounding_up_adds_one_on_remainder() {
        assert_eq!(u(10).mul_div(u(1), u(3)), u(3));
        assert_eq!(u(10).mul_div_rounding_up(u(1), u(3)), u(4));
        assert_eq!(u(9).mul_div_rounding_up(u(1), u(3)), u(3));
    }

    #[test]
    fn shifts() {
        let one = U256::ONE;
        assert_eq!(one << 255, U256([0, 0, 0, 1 << 63]));
        assert_eq!((one << 255) >> 255, one);
        assert_eq!(one << 256, U256::ZERO);
        assert_eq!(U256::pow2(100) >> 36, U256::pow2(64));
        let x = U512::pow2(300);
        assert_eq!(x >> 44, U512::pow2(256));
    }

    #[test]
    fn isqrt_small_and_large() {
        assert_eq!(U256::ZERO.isqrt(), U256::ZERO);
        assert_eq!(u(1).isqrt(), u(1));
        assert_eq!(u(15).isqrt(), u(3));
        assert_eq!(u(16).isqrt(), u(4));
        assert_eq!(u(17).isqrt(), u(4));
        let big = U256::pow2(200);
        assert_eq!(big.isqrt(), U256::pow2(100));
        // U512 sqrt of 2^400
        assert_eq!(U512::pow2(400).isqrt(), U256::pow2(200));
        // max: isqrt(2^512 - 1) = 2^256 - 1
        let max512 = U512([u64::MAX; 8]);
        assert_eq!(max512.isqrt(), U256::MAX);
    }

    #[test]
    fn dec_string_roundtrip() {
        let cases = [
            "0",
            "1",
            "1000000000000000000000000000000000000",
            "115792089237316195423570985008687907853269984665640564039457584007913129639935",
        ];
        for c in cases {
            assert_eq!(U256::from_dec_str(c).unwrap().to_string(), c);
        }
        assert!(U256::from_dec_str(
            "115792089237316195423570985008687907853269984665640564039457584007913129639936"
        )
        .is_err());
        assert!(U256::from_dec_str("12a").is_err());
        assert!(U256::from_dec_str("").is_err());
    }

    #[test]
    fn be_bytes_roundtrip() {
        let v = U256::from_dec_str("123456789012345678901234567890").unwrap();
        assert_eq!(U256::from_be_bytes(v.to_be_bytes()), v);
        let b = U256::ONE.to_be_bytes();
        assert_eq!(b[31], 1);
        assert!(b[..31].iter().all(|&x| x == 0));
    }

    #[test]
    fn bits_and_bit() {
        assert_eq!(U256::ZERO.bits(), 0);
        assert_eq!(U256::ONE.bits(), 1);
        assert_eq!(U256::pow2(200).bits(), 201);
        assert!(U256::pow2(200).bit(200));
        assert!(!U256::pow2(200).bit(199));
    }

    #[test]
    fn ordering() {
        assert!(U256::pow2(128) > U256::from_u128(u128::MAX));
        assert!(u(3) < u(4));
        assert_eq!(u(4).cmp(&u(4)), Ordering::Equal);
    }

    #[test]
    fn hex_display() {
        assert_eq!(
            format!("{:x}", U256::ONE),
            "0000000000000000000000000000000000000000000000000000000000000001"
        );
        assert!(format!("{:#x}", U256::ONE).starts_with("0x"));
    }

    #[test]
    fn knuth_d6_addback_case() {
        // Construct a case that forces the rare add-back branch:
        // numerator = 2^256 - 1, divisor = (2^128) + 3 style values.
        let n = U512::from_u256(U256::MAX);
        let d = U256::pow2(128) + u(3);
        let (q, r) = n.div_rem_u256(d);
        let q = q.to_u256().unwrap();
        assert_eq!(q.full_mul(d).to_u256().unwrap() + r, U256::MAX);
        assert!(r < d);
    }
}
