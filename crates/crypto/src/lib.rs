//! # ammboost-crypto
//!
//! The cryptographic substrate of the ammBoost reproduction: everything the
//! paper's sidechain and TokenBank contract need, implemented from scratch.
//!
//! - [`u256`] — 256/512-bit integers (also the basis of the AMM fixed-point
//!   math in `ammboost-amm`).
//! - [`keccak`] — spec-conformant Keccak-256 (Ethereum variant).
//! - [`types`] — [`H256`](types::H256) digests and [`Address`](types::Address)es.
//! - [`field`] — the BN254 scalar field `F_r`.
//! - [`group`] — a bilinear-group abstraction with a transparent backend
//!   (see the module docs and `DESIGN.md` for the substitution rationale).
//! - [`bls`] — BLS signatures with aggregation and proofs of possession.
//! - [`shamir`] — secret sharing and Lagrange interpolation.
//! - [`dkg`] — joint-Feldman distributed key generation.
//! - [`tsqc`] — threshold-signature quorum certificates, ammBoost's
//!   sync-authentication mechanism.
//! - [`vrf`] — ECVRF-style verifiable random function for sortition.
//! - [`schnorr`] — user transaction signatures.
//! - [`merkle`] — Keccak Merkle trees and inclusion proofs.
//!
//! ```
//! use ammboost_crypto::{dkg, tsqc};
//!
//! // A committee of 3f+2 = 5 runs DKG, then 2f+2 = 4 members authenticate
//! // a sync payload with a threshold signature.
//! let out = dkg::run_ceremony(dkg::DkgConfig::for_faults(1), 7);
//! let payload = b"Sync(epoch=1)";
//! let partials: Vec<_> = out.key_shares[..4]
//!     .iter()
//!     .map(|ks| tsqc::partial_sign(ks, payload))
//!     .collect();
//! let qc = tsqc::QuorumCertificate::assemble(1, payload, &partials, 4)?;
//! assert!(qc.verify(&out.group_public_key, payload));
//! # Ok::<(), tsqc::CombineError>(())
//! ```

#![warn(missing_docs)]

pub mod bls;
pub mod dkg;
pub mod field;
pub mod group;
pub mod keccak;
pub mod merkle;
pub mod schnorr;
pub mod shamir;
pub mod tsqc;
pub mod types;
pub mod u256;
pub mod vrf;

pub use field::Fr;
pub use types::{Address, H256};
pub use u256::{U256, U512};
