//! Machine-readable performance snapshot: measures the hot-path
//! operations the sidechain's throughput is bounded by and writes
//! `BENCH_pool.json` plus `BENCH_state.json` at the repo root, giving the
//! perf trajectory a committed data point per machine/commit.
//!
//! `BENCH_pool.json` (median ns/op):
//! - single-range swap (no tick crossing),
//! - 64-tick-crossing ladder sweep under the bitmap engine *and* under
//!   the retained seed `BTreeMap` oracle (the speedup ratio between the
//!   two is the tentpole number),
//! - mint + burn + collect position cycle,
//! - 1024-leaf Merkle transaction-root build.
//!
//! `BENCH_state.json` (the `ammboost-state` subsystem): snapshot encode
//! and decode+restore timings, serialized snapshot size, and the
//! sidechain's pruned-vs-unpruned bytes-on-disk for two workload ladders
//! (50K and 500K daily volume — the paper's state-growth-control curve
//! endpoints).
//!
//! New in v2: a `pool_count × skew` ladder timing one epoch of
//! cross-pool traffic under sequential vs worker-pool shard execution
//! (plus the size of the all-shards checkpoint), and a
//! restore-throughput ladder (up to 10⁶ positions) comparing
//! tick-table-fed restores against full `sqrt_ratio_at_tick`
//! recomputation.
//!
//! New in v3: a `route hops × pool_count` ladder timing two-phase
//! routed epochs (hop waves + netting barrier) sequential vs parallel,
//! with netted-vs-naive settlement byte accounting — the ladder asserts
//! the netted form is strictly smaller for every rung.
//!
//! New in v4: a concurrent-read scaling ladder (quotes/sec served from a
//! sealed [`QuoteView`] at 1..hardware_threads reader threads, while the
//! write path executes rounds and publishes fresh views the whole time),
//! and honest parallel-speedup reporting: every `parallel_speedup`
//! column carries the `threads` it ran on and an `advisory` marker,
//! because a speedup measured on one hardware thread is scheduling
//! overhead, not scaling.
//!
//! New in v5: per-engine single-swap medians (constant-product and
//! weighted engines next to the CL baseline) and a heterogeneous
//! `6pools_mixed` rung on the sharded-epoch ladder (2 CL + 2
//! constant-product + 2 weighted shards under the same Zipf curve).
//!
//! New in v6: the 4-way-Keccak Merkle rungs (`merkle_root_1024_leaves_x4`
//! vs the retained `_scalar` oracle — the interleaved-sponge speedup is
//! the tentpole number) and a `checkpoint_pipeline` ladder timing one
//! epoch (execute + checkpoint) at 1/4/8 pools with the checkpoint taken
//! synchronously vs staged-and-committed on the worker pool while the
//! next epoch executes. On a 1-hardware-thread host the pipelined column
//! measures queueing overhead, not overlap, and is advisory.
//!
//! New in v7 (`BENCH_state.json`): a `delta_ladders` table sizing
//! page-granular delta checkpoints against the full section re-encode
//! over a dirty-fraction × position-count grid (positions are poked
//! in place — fixed-stride records, so a poke never shifts bytes — and
//! the delta must shrink ≥10× at ≤1% dirty), and eager columns on the
//! restore ladder: the lazy zero-copy restore (positions stay packed
//! wire records until touched) vs the same restore followed by
//! materializing every position, at 10⁵ and (full mode) 10⁶ positions.
//!
//! Usage: `bench_snapshot [--smoke] [--out PATH] [--state-out PATH]
//! [--check] [--tolerance PCT]`. `--smoke` cuts sample counts for CI;
//! the JSON records which mode produced it, and `hardware_threads` so
//! parallel-epoch numbers are interpretable (on a single-hardware-thread
//! host the parallel column measures pure scheduling overhead).
//!
//! `--check` is the CI bench-regression gate: instead of overwriting the
//! JSON files it re-runs the smoke ladders and compares every numeric
//! metric against the committed `BENCH_pool.json` / `BENCH_state.json`,
//! exiting non-zero when any drifts past the tolerance (default ±25%;
//! override with `--tolerance PCT` or the `AMMBOOST_BENCH_TOLERANCE`
//! environment variable for noisy runners). Timing metrics only fail
//! when *slower*, throughput/scaling metrics only when *lower*, and
//! size/count metrics on any drift; parallel-speedup columns are skipped
//! entirely when either side ran on one hardware thread.

use ammboost_amm::engines::{CpEngine, WeightedEngine};
use ammboost_amm::pool::{Pool, PoolState, SwapKind, TickSearch};
use ammboost_amm::positions::PositionTable;
use ammboost_amm::tx::AmmTx;
use ammboost_amm::types::{PoolId, PositionId};
use ammboost_bench::{fragmented_ladder_pool, ladder_pool, ladder_sweep, wide_pool};
use ammboost_core::checkpoint::{checkpoint_node, restore_node, stage_node};
use ammboost_core::config::{SnapshotPolicy, SystemConfig};
use ammboost_core::shard::{ExecMode, ShardMap};
use ammboost_core::system::System;
use ammboost_core::workers::{JoinHandle, WorkerPool};
use ammboost_crypto::merkle::{leaf_hash, MerkleTree};
use ammboost_crypto::Address;
use ammboost_sidechain::ledger::Ledger;
use ammboost_sim::DetRng;
use ammboost_state::codec::{Decode, Encode};
use ammboost_state::snapshot::{Section, SectionKind, SNAPSHOT_VERSION};
use ammboost_state::{Checkpointer, DeltaSnapshot, Snapshot, DEFAULT_PAGE_SIZE};
use ammboost_workload::{
    EngineMix, GeneratedTx, GeneratorConfig, LiquidityStyle, RouteStyle, TrafficGenerator,
    TrafficMix, TrafficSkew,
};
use std::collections::HashMap;
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Times `samples` runs of `routine` on fresh inputs from `setup`
/// (setup cost excluded) and returns the median ns/op.
fn median_ns<I, O>(
    samples: usize,
    mut setup: impl FnMut() -> I,
    mut routine: impl FnMut(I) -> O,
) -> f64 {
    // warm-up: populate caches and let the allocator settle
    for _ in 0..3 {
        black_box(routine(setup()));
    }
    let mut times: Vec<u128> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let input = setup();
        let t = Instant::now();
        black_box(routine(input));
        times.push(t.elapsed().as_nanos());
    }
    times.sort_unstable();
    let mid = times.len() / 2;
    if times.len() % 2 == 0 {
        (times[mid - 1] + times[mid]) as f64 / 2.0
    } else {
        times[mid] as f64
    }
}

fn single_range_pool() -> Pool {
    let mut pool = Pool::new_standard();
    pool.mint(
        PositionId::derive(&[b"snap"]),
        Address::from_index(1),
        -6000,
        6000,
        10u128.pow(14),
        10u128.pow(14),
    )
    .expect("seed mint");
    pool
}

/// One workload ladder's state-subsystem measurements.
struct StateLadder {
    name: &'static str,
    accepted: u64,
    snapshot_bytes: u64,
    encode_ns: f64,
    restore_ns: f64,
    state_root: String,
    sidechain_bytes_pruned: u64,
    sidechain_peak_pruned: u64,
    sidechain_bytes_unpruned: u64,
    sidechain_peak_unpruned: u64,
}

/// Runs one ladder twice (snapshot-pruned vs pruning disabled), then
/// times snapshot encode and decode+restore on the final node state.
fn state_ladder(name: &'static str, daily_volume: u64, samples: usize) -> StateLadder {
    let mut cfg = SystemConfig::small_test();
    cfg.daily_volume = daily_volume;
    cfg.snapshot = SnapshotPolicy::every_epoch();
    let mut pruned_sys = System::new(cfg.clone());
    let pruned = pruned_sys.run();

    let mut unpruned_cfg = cfg.clone();
    unpruned_cfg.disable_pruning = true;
    unpruned_cfg.snapshot = SnapshotPolicy::default();
    let unpruned = System::new(unpruned_cfg).run();

    // final on-demand checkpoint covering the drain epoch
    let stats = pruned_sys.checkpoint(pruned.epochs + 1);
    let snapshot = pruned_sys
        .last_snapshot()
        .expect("checkpoint taken")
        .clone();
    let encode_ns = median_ns(samples, || (), |()| snapshot.encode());
    let wire = snapshot.encode();
    let restore_ns = median_ns(
        samples,
        || wire.clone(),
        |bytes| {
            let decoded = Snapshot::decode(&bytes).expect("root verifies");
            restore_node(&decoded).expect("snapshot restores")
        },
    );

    StateLadder {
        name,
        accepted: pruned.accepted,
        snapshot_bytes: stats.snapshot_bytes,
        encode_ns,
        restore_ns,
        state_root: format!("{}", stats.root),
        sidechain_bytes_pruned: pruned.sidechain_bytes,
        sidechain_peak_pruned: pruned.sidechain_peak_bytes,
        sidechain_bytes_unpruned: unpruned.sidechain_bytes,
        sidechain_peak_unpruned: unpruned.sidechain_peak_bytes,
    }
}

/// One `pool_count × skew` rung of the sharded-epoch ladder.
struct PoolCountLadder {
    pools: u32,
    skew: &'static str,
    txs_per_epoch: usize,
    sequential_ns: f64,
    parallel_ns: f64,
    speedup: f64,
    snapshot_bytes: u64,
    max_pool_section_bytes: u64,
}

/// Times one epoch of Zipf/uniform cross-pool traffic executed
/// sequentially vs with scoped-thread shard parallelism, and sizes the
/// all-shards checkpoint the epoch produces.
fn pool_count_ladder(
    pools: u32,
    skew: TrafficSkew,
    skew_name: &'static str,
    engine_mix: EngineMix,
    samples: usize,
    rounds: u64,
) -> PoolCountLadder {
    let users = (4 * pools as u64).max(16);
    let mut gen = TrafficGenerator::new(GeneratorConfig {
        daily_volume: 25_000_000, // ρ ≈ 2026 txs/round at bt = 7 s
        mix: TrafficMix::uniswap_2023(),
        users,
        round_duration: ammboost_sim::time::SimDuration::from_secs(7),
        pools: (0..pools).map(PoolId).collect(),
        skew,
        route_style: RouteStyle::default(),
        deadline_slack_rounds: 1_000_000,
        max_positions_per_user: 1,
        liquidity_style: LiquidityStyle::default(),
        quote_style: Default::default(),
        engine_mix,
        seed: 0xB0057 + pools as u64,
    });
    let traffic: Vec<Vec<GeneratedTx>> = (0..rounds).map(|r| gen.next_round(r)).collect();
    let txs_per_epoch: usize = traffic.iter().map(|r| r.len()).sum();

    // a ready shard map: seeded liquidity + routed deposits, with the
    // engine of each shard dictated by the generator's fleet
    let mut ready = ShardMap::new_with_engines(gen.fleet());
    for p in 0..pools {
        ready.seed_liquidity(
            PoolId(p),
            Address::from_pubkey_bytes(b"bench-genesis-lp"),
            -120_000,
            120_000,
            4_000_000_000_000_000,
            4_000_000_000_000_000,
        );
    }
    let route_gen = &gen;
    let deposits: HashMap<Address, (u128, u128)> = route_gen
        .users()
        .into_iter()
        .map(|u| (u, (2_000_000_000_000u128, 2_000_000_000_000u128)))
        .collect();
    ready.begin_epoch(deposits, |u| route_gen.pool_for(u));

    let run_epoch = |mode: ExecMode| {
        median_ns(
            samples,
            || ready.clone(),
            |mut shards| {
                for (round, txs) in traffic.iter().enumerate() {
                    let batch: Vec<(&AmmTx, usize)> =
                        txs.iter().map(|g| (&g.tx, g.wire_size)).collect();
                    black_box(shards.execute_batch(&batch, round as u64, mode));
                }
                shards
            },
        )
    };
    let sequential_ns = run_epoch(ExecMode::Sequential);
    let parallel_ns = run_epoch(ExecMode::Parallel);

    // checkpoint the executed epoch: one snapshot covering all shards
    let mut executed = ready.clone();
    for (round, txs) in traffic.iter().enumerate() {
        let batch: Vec<(&AmmTx, usize)> = txs.iter().map(|g| (&g.tx, g.wire_size)).collect();
        executed.execute_batch(&batch, round as u64, ExecMode::Sequential);
    }
    let ledger = Ledger::new(ammboost_crypto::H256::hash(b"bench-ladder"));
    let out = checkpoint_node(&mut Checkpointer::new(), 1, &mut executed, &ledger);
    let (snapshot, stats) = (out.snapshot, out.stats);
    let max_pool_section_bytes = snapshot
        .pool_sections()
        .map(|(_, s)| s.bytes.len() as u64)
        .max()
        .unwrap_or(0);

    PoolCountLadder {
        pools,
        skew: skew_name,
        txs_per_epoch,
        sequential_ns,
        parallel_ns,
        speedup: sequential_ns / parallel_ns,
        snapshot_bytes: stats.snapshot_bytes,
        max_pool_section_bytes,
    }
}

/// One rung of the checkpoint-pipeline ladder.
struct CheckpointPipelineLadder {
    pools: u32,
    txs_per_epoch: usize,
    /// One epoch on the critical path with a blocking checkpoint:
    /// execute rounds, then `checkpoint_node` (stage + Merkle commit).
    epoch_sync_ns: f64,
    /// The same epoch pipelined: join the previous epoch's in-flight
    /// commit, execute rounds, stage, hand the commit to the worker
    /// pool — the Merkle hashing overlaps the next epoch's execution.
    epoch_pipelined_ns: f64,
    /// The synchronous stage half alone (what pipelining cannot hide).
    stage_ns: f64,
    /// The deferred commit half alone (what pipelining takes off the
    /// critical path).
    commit_ns: f64,
    speedup: f64,
}

/// Times one epoch of execution + checkpoint at `pools` shards, with the
/// checkpoint taken synchronously vs staged-and-committed off-thread.
/// The pipelined routine models `System`'s steady state: at most one
/// commit in flight, joined before the next epoch's checkpoint stages.
fn checkpoint_pipeline_ladder(pools: u32, samples: usize, rounds: u64) -> CheckpointPipelineLadder {
    let users = (4 * pools as u64).max(16);
    let mut gen = TrafficGenerator::new(GeneratorConfig {
        daily_volume: 25_000_000,
        mix: TrafficMix::uniswap_2023(),
        users,
        round_duration: ammboost_sim::time::SimDuration::from_secs(7),
        pools: (0..pools).map(PoolId).collect(),
        skew: TrafficSkew::Uniform,
        route_style: RouteStyle::default(),
        deadline_slack_rounds: 1_000_000,
        max_positions_per_user: 1,
        liquidity_style: LiquidityStyle::default(),
        quote_style: Default::default(),
        engine_mix: Default::default(),
        seed: 0xCC_0FF + pools as u64,
    });
    let traffic: Vec<Vec<GeneratedTx>> = (0..rounds).map(|r| gen.next_round(r)).collect();
    let txs_per_epoch: usize = traffic.iter().map(|r| r.len()).sum();
    let mut ready = ShardMap::new((0..pools).map(PoolId));
    for p in 0..pools {
        ready.seed_liquidity(
            PoolId(p),
            Address::from_pubkey_bytes(b"bench-pipeline-lp"),
            -120_000,
            120_000,
            4_000_000_000_000_000,
            4_000_000_000_000_000,
        );
    }
    let deposits: HashMap<Address, (u128, u128)> = gen
        .users()
        .into_iter()
        .map(|u| (u, (2_000_000_000_000u128, 2_000_000_000_000u128)))
        .collect();
    let route_gen = &gen;
    ready.begin_epoch(deposits, |u| route_gen.pool_for(u));
    let ledger = Ledger::new(ammboost_crypto::H256::hash(b"bench-pipeline"));

    let execute = |shards: &mut ShardMap| {
        for (round, txs) in traffic.iter().enumerate() {
            let batch: Vec<(&AmmTx, usize)> = txs.iter().map(|g| (&g.tx, g.wire_size)).collect();
            black_box(shards.execute_batch(&batch, round as u64, ExecMode::Sequential));
        }
    };

    // every sample starts from the same pre-epoch state and uses a fresh
    // checkpointer, so both modes re-encode every pool every time
    let mut epoch = 0u64;
    let epoch_sync_ns = median_ns(
        samples,
        || ready.clone(),
        |mut shards| {
            epoch += 1;
            execute(&mut shards);
            black_box(checkpoint_node(
                &mut Checkpointer::new(),
                epoch,
                &mut shards,
                &ledger,
            ))
        },
    );

    let mut inflight: Option<JoinHandle<ammboost_state::CheckpointOutput>> = None;
    let epoch_pipelined_ns = median_ns(
        samples,
        || ready.clone(),
        |mut shards| {
            epoch += 1;
            if let Some(handle) = inflight.take() {
                black_box(handle.join());
            }
            execute(&mut shards);
            let staged = stage_node(&mut Checkpointer::new(), epoch, &mut shards, &ledger);
            inflight = Some(WorkerPool::global().submit(move || staged.commit()));
        },
    );
    if let Some(handle) = inflight.take() {
        black_box(handle.join());
    }

    // the halves in isolation: what stays on the critical path vs what
    // moves off it
    let mut executed = ready.clone();
    execute(&mut executed);
    let stage_ns = median_ns(
        samples,
        || executed.clone(),
        |mut shards| {
            epoch += 1;
            stage_node(&mut Checkpointer::new(), epoch, &mut shards, &ledger)
        },
    );
    let commit_ns = median_ns(
        samples,
        || {
            epoch += 1;
            stage_node(
                &mut Checkpointer::new(),
                epoch,
                &mut executed.clone(),
                &ledger,
            )
        },
        |staged| black_box(staged.commit()),
    );

    CheckpointPipelineLadder {
        pools,
        txs_per_epoch,
        epoch_sync_ns,
        epoch_pipelined_ns,
        stage_ns,
        commit_ns,
        speedup: epoch_sync_ns / epoch_pipelined_ns,
    }
}

/// One `route hops × pool_count` rung of the routed-epoch ladder.
struct RouteLadder {
    pools: u32,
    hops: usize,
    routes: usize,
    sequential_ns: f64,
    parallel_ns: f64,
    speedup: f64,
    netted_settlement_bytes: u64,
    naive_settlement_bytes: u64,
    netting_ratio: f64,
}

/// Times one epoch of pure routed traffic (`routes` routes of `hops`
/// hops over `pools` pools) under sequential vs worker-pool shard
/// execution, and sizes the settlement both ways: netted (what the
/// netting barrier ships) vs naive per-hop entries. Asserts the netted
/// form is strictly smaller — the routed-traffic acceptance criterion.
fn route_ladder(pools: u32, hops: usize, routes: usize, samples: usize) -> RouteLadder {
    use ammboost_amm::tx::{RouteHop, RouteTx};
    assert!(
        hops >= 2 && hops <= pools as usize,
        "hops must fit the pool set"
    );
    let users = 32u64;
    let mut ready = ShardMap::new((0..pools).map(PoolId));
    for p in 0..pools {
        ready.seed_liquidity(
            PoolId(p),
            Address::from_pubkey_bytes(b"bench-route-lp"),
            -120_000,
            120_000,
            4_000_000_000_000_000,
            4_000_000_000_000_000,
        );
    }
    let deposits: HashMap<Address, (u128, u128)> = (0..users)
        .map(|i| {
            (
                Address::from_index(0xB0B0 + i),
                (2_000_000_000_000u128, 2_000_000_000_000u128),
            )
        })
        .collect();
    ready.begin_epoch(deposits, |a| {
        (0..users)
            .find(|i| Address::from_index(0xB0B0 + i) == *a)
            .map(|i| PoolId((i % pools as u64) as u32))
    });

    let txs: Vec<AmmTx> = (0..routes)
        .map(|i| {
            let entry = (i % pools as usize) as u32;
            let mut dir = i % 2 == 0;
            AmmTx::Route(RouteTx {
                user: Address::from_index(0xB0B0 + (i as u64 % users)),
                hops: (0..hops as u32)
                    .map(|k| {
                        let hop = RouteHop {
                            pool: PoolId((entry + k) % pools),
                            zero_for_one: dir,
                        };
                        dir = !dir;
                        hop
                    })
                    .collect(),
                amount_in: 40_000 + i as u128 * 13,
                min_amount_out: 0,
                deadline_round: 1_000_000,
            })
        })
        .collect();
    let batch: Vec<(&AmmTx, usize)> = txs.iter().map(|t| (t, t.mainnet_size_bytes())).collect();

    let run_epoch = |mode: ExecMode| {
        median_ns(
            samples,
            || ready.clone(),
            |mut shards| {
                black_box(shards.execute_batch(&batch, 0, mode));
                shards
            },
        )
    };
    let sequential_ns = run_epoch(ExecMode::Sequential);
    let parallel_ns = run_epoch(ExecMode::Parallel);

    // settle one executed epoch and read the netting ledger
    let mut executed = ready.clone();
    let effects = executed.execute_batch(&batch, 0, ExecMode::Sequential);
    assert!(
        effects.iter().all(|e| e.accepted()),
        "bench routes must all execute"
    );
    let netting = executed.epoch_netting();
    assert_eq!(netting.route_count() as usize, routes);
    let netted = netting.netted_settlement_bytes();
    let naive = netting.naive_settlement_bytes();
    assert!(
        netted < naive,
        "netted settlement must be strictly smaller: {netted} !< {naive}"
    );

    RouteLadder {
        pools,
        hops,
        routes,
        sequential_ns,
        parallel_ns,
        speedup: sequential_ns / parallel_ns,
        netted_settlement_bytes: netted,
        naive_settlement_bytes: naive,
        netting_ratio: naive as f64 / netted as f64,
    }
}

/// One rung of the restore-throughput ladder: a tick-dense pool with
/// `positions` positions, decoded + restored with and without the
/// persisted tick→sqrt-price table.
struct RestoreLadder {
    name: String,
    positions: usize,
    ticks: usize,
    encoded_bytes: usize,
    restore_with_table_ns: f64,
    restore_recompute_ns: f64,
    /// The lazy restore above plus materializing every position — the
    /// eager oracle the zero-copy position table must beat.
    restore_eager_ns: f64,
}

fn restore_ladder(positions: usize, samples: usize) -> RestoreLadder {
    // one-spacing rungs tiled over a wide band: positions/35 distinct
    // rungs ⇒ tick count grows with the ladder, the regime where
    // rebuild_tick_index dominates restore
    let mut pool = Pool::new_standard();
    let half_rungs = (positions as i32 / 70).clamp(128, 14_000);
    for i in 0..positions {
        let rung = (i as i32 % (2 * half_rungs)) - half_rungs;
        let id = PositionId::derive(&[b"restore-ladder", &(i as u64).to_be_bytes()]);
        pool.mint(
            id,
            Address::from_index(i as u64 % 1024),
            rung * 60,
            (rung + 1) * 60,
            1_000_000,
            1_000_000,
        )
        .expect("ladder mint");
    }
    let state = pool.export_state();
    let ticks = state.ticks.len();
    let with_table = state.encode_to_vec();
    let mut stripped_state = state;
    stripped_state.tick_prices.clear();
    let stripped = stripped_state.encode_to_vec();

    let time_restore = |bytes: &[u8]| {
        median_ns(
            samples,
            || bytes.to_vec(),
            |b| {
                let decoded = PoolState::decode_all(&b).expect("ladder state decodes");
                Pool::from_state(decoded).expect("ladder state restores")
            },
        )
    };
    let restore_with_table_ns = time_restore(&with_table);
    let restore_recompute_ns = time_restore(&stripped);
    // the eager oracle: the same restore, then decode every packed
    // position record into the live table (what the pre-zero-copy
    // restore paid up front)
    let restore_eager_ns = median_ns(
        samples,
        || with_table.clone(),
        |b| {
            let decoded = PoolState::decode_all(&b).expect("ladder state decodes");
            let mut pool = Pool::from_state(decoded).expect("ladder state restores");
            black_box(pool.materialize_positions());
            pool
        },
    );

    RestoreLadder {
        name: format!("positions_{positions}"),
        positions,
        ticks,
        encoded_bytes: with_table.len(),
        restore_with_table_ns,
        restore_recompute_ns,
        restore_eager_ns,
    }
}

/// One rung of the delta-vs-full checkpoint size grid: a pool with
/// `positions` packed records, `dirty_bp` basis points of them poked in
/// place, and the page-granular delta sized against the full section
/// re-encode.
struct DeltaLadder {
    name: String,
    positions: usize,
    dirty_positions: usize,
    pages_total: usize,
    pages_dirty: usize,
    full_section_bytes: usize,
    delta_bytes: usize,
    shrink: f64,
}

/// Pokes `dirty_bp`/10000 of the pool's positions in place (fee-owed
/// bumps — fixed-stride records, so no byte in the section shifts),
/// diffs the resulting section against the base at the default page
/// size, and verifies the delta applies back to the exact full
/// re-encode before sizing both forms.
fn delta_ladder(state: &PoolState, dirty_bp: u32) -> DeltaLadder {
    let base_bytes = state.encode_to_vec();
    let records = state.positions.clone();
    let total = records.len();
    let mut table = PositionTable::from_records(records.clone());
    let dirty = ((total as u64 * dirty_bp as u64) / 10_000).max(1) as usize;
    // spread the pokes across the whole record range so dirty pages are
    // scattered, not one contiguous run
    let stride = (total / dirty).max(1);
    let mut poked = 0usize;
    let mut i = 0usize;
    while poked < dirty && i < total {
        let id = records.id_at(i);
        let position = table.get_mut(&id).expect("record exists");
        position.tokens_owed0 = position.tokens_owed0.wrapping_add(1);
        poked += 1;
        i += stride;
    }
    let mut dirty_state = state.clone();
    dirty_state.positions = table.export_records();
    let dirty_bytes = dirty_state.encode_to_vec();
    assert_eq!(
        dirty_bytes.len(),
        base_bytes.len(),
        "in-place pokes must never shift section bytes"
    );

    let snapshot_of = |epoch: u64, bytes: Vec<u8>| Snapshot {
        version: SNAPSHOT_VERSION,
        epoch,
        sections: vec![Section {
            kind: SectionKind::Pool(0),
            bytes,
        }],
    };
    let base_snap = snapshot_of(1, base_bytes);
    let next_snap = snapshot_of(2, dirty_bytes.clone());
    let delta = DeltaSnapshot::diff(&base_snap, &next_snap, DEFAULT_PAGE_SIZE);
    // the delta must reproduce the full re-encode bit-exactly
    assert_eq!(
        delta.apply(&base_snap).expect("delta applies"),
        next_snap,
        "delta apply diverged from the full re-encode"
    );

    DeltaLadder {
        name: format!("positions_{total}_dirty_{dirty_bp}bp"),
        positions: total,
        dirty_positions: poked,
        pages_total: dirty_bytes.len().div_ceil(DEFAULT_PAGE_SIZE),
        pages_dirty: delta.pages(),
        full_section_bytes: dirty_bytes.len(),
        delta_bytes: delta.encoded_len(),
        shrink: dirty_bytes.len() as f64 / delta.encoded_len() as f64,
    }
}

/// A pool holding `positions` packed records across a modest band of
/// tick ranges — the position table dominates its section bytes, the
/// regime the delta grid measures.
fn delta_ladder_pool(positions: usize) -> PoolState {
    let mut pool = Pool::new_standard();
    for i in 0..positions {
        let rung = (i % 64) as i32 - 32;
        pool.mint(
            PositionId::derive(&[b"delta-grid", &(i as u64).to_be_bytes()]),
            Address::from_index(i as u64 % 4096),
            rung * 60,
            (rung + 2) * 60,
            1_000_000,
            1_000_000,
        )
        .expect("grid mint");
    }
    pool.export_state()
}

/// One rung of the concurrent-read scaling ladder: `threads` reader
/// threads serving quotes from a sealed epoch view while the write path
/// keeps executing rounds and publishing fresh views on the live shards.
struct QuoteLadder {
    threads: usize,
    quotes: u64,
    wall_ns: f64,
    quotes_per_sec: f64,
    writer_rounds: u64,
}

/// Measures sealed-view quote throughput at one reader-thread count
/// under continuous write load — the production shape the quote path is
/// built for: reads scale out across cores while the next epoch
/// executes, because readers share an immutable `Arc` and never touch a
/// lock.
fn quote_ladder(pools: u32, threads: usize, quotes_per_thread: usize) -> QuoteLadder {
    let users = (4 * pools as u64).max(16);
    let mut gen = TrafficGenerator::new(GeneratorConfig {
        daily_volume: 25_000_000,
        mix: TrafficMix::uniswap_2023(),
        users,
        round_duration: ammboost_sim::time::SimDuration::from_secs(7),
        pools: (0..pools).map(PoolId).collect(),
        skew: TrafficSkew::Zipf { exponent: 1.0 },
        route_style: RouteStyle::default(),
        deadline_slack_rounds: 1_000_000,
        max_positions_per_user: 1,
        liquidity_style: LiquidityStyle::default(),
        quote_style: Default::default(),
        engine_mix: Default::default(),
        seed: 0x900E_D00D + threads as u64,
    });
    let traffic: Vec<Vec<GeneratedTx>> = (0..2).map(|r| gen.next_round(r)).collect();
    let mut shards = ShardMap::new((0..pools).map(PoolId));
    for p in 0..pools {
        shards.seed_liquidity(
            PoolId(p),
            Address::from_pubkey_bytes(b"bench-quote-lp"),
            -120_000,
            120_000,
            4_000_000_000_000_000,
            4_000_000_000_000_000,
        );
    }
    let deposits: HashMap<Address, (u128, u128)> = gen
        .users()
        .into_iter()
        .map(|u| (u, (2_000_000_000_000u128, 2_000_000_000_000u128)))
        .collect();
    let route_gen = &gen;
    shards.begin_epoch(deposits, |u| route_gen.pool_for(u));
    let (view, _) = shards.publish_view(0);

    let stop = AtomicBool::new(false);
    let rounds_done = AtomicU64::new(0);
    let stop_ref = &stop;
    let rounds_ref = &rounds_done;
    let traffic_ref = &traffic;
    let t0 = Instant::now();
    let (quotes, wall) = std::thread::scope(|s| {
        let writer = s.spawn(move || {
            let mut epoch = 1u64;
            while !stop_ref.load(Ordering::Relaxed) {
                for (round, txs) in traffic_ref.iter().enumerate() {
                    let batch: Vec<(&AmmTx, usize)> =
                        txs.iter().map(|g| (&g.tx, g.wire_size)).collect();
                    black_box(shards.execute_batch(&batch, round as u64, ExecMode::Sequential));
                    rounds_ref.fetch_add(1, Ordering::Relaxed);
                }
                black_box(shards.publish_view(epoch));
                epoch += 1;
            }
        });
        let readers: Vec<_> = (0..threads)
            .map(|t| {
                let view = Arc::clone(&view);
                s.spawn(move || {
                    let mut rng =
                        DetRng::new(0x900E ^ (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    let ids = view.pool_ids().to_vec();
                    let mut answered = 0u64;
                    for _ in 0..quotes_per_thread {
                        let pool = ids[rng.range_u64(0, ids.len() as u64) as usize];
                        let dir = rng.unit() < 0.5;
                        let amount = rng.range_u128(1_000, 2_000_000);
                        if black_box(view.quote_swap(pool, dir, SwapKind::ExactInput(amount), None))
                            .is_ok()
                        {
                            answered += 1;
                        }
                    }
                    answered
                })
            })
            .collect();
        let answered: u64 = readers.into_iter().map(|r| r.join().expect("reader")).sum();
        // the reader window defines the measurement; the writer keeps
        // going until all readers are done
        let wall = t0.elapsed();
        stop.store(true, Ordering::Relaxed);
        writer.join().expect("writer");
        (answered, wall)
    });
    let wall_ns = wall.as_nanos() as f64;
    QuoteLadder {
        threads,
        quotes,
        wall_ns,
        quotes_per_sec: quotes as f64 / (wall_ns / 1e9),
        writer_rounds: rounds_done.load(Ordering::Relaxed),
    }
}

/// Extracts every `"key": number` leaf from the snapshot's own JSON
/// dialect (nested objects, string/number/bool values, no arrays) as
/// `dotted.path → value` pairs. Hand-rolled because the workspace has no
/// JSON parser dependency; it only needs to read what this binary wrote.
fn scan_numbers(json: &str) -> Vec<(String, f64)> {
    let bytes = json.as_bytes();
    let mut i = 0;
    let mut stack: Vec<String> = Vec::new();
    let mut pending_key: Option<String> = None;
    let mut out = Vec::new();
    while i < bytes.len() {
        match bytes[i] {
            b'{' => {
                stack.push(pending_key.take().unwrap_or_default());
                i += 1;
            }
            b'}' => {
                stack.pop();
                i += 1;
            }
            b'"' => {
                // our emitter never escapes quotes inside strings
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += 1;
                }
                let s = &json[start..j];
                i = j + 1;
                let mut k = i;
                while k < bytes.len() && bytes[k].is_ascii_whitespace() {
                    k += 1;
                }
                if k < bytes.len() && bytes[k] == b':' {
                    pending_key = Some(s.to_string());
                    i = k + 1;
                } else {
                    pending_key = None; // string value: not a metric
                }
            }
            b'0'..=b'9' | b'-' => {
                let start = i;
                while i < bytes.len()
                    && matches!(bytes[i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    i += 1;
                }
                if let (Some(key), Ok(v)) = (pending_key.take(), json[start..i].parse::<f64>()) {
                    let mut path: Vec<&str> = stack
                        .iter()
                        .filter(|s| !s.is_empty())
                        .map(String::as_str)
                        .collect();
                    path.push(&key);
                    out.push((path.join("."), v));
                }
            }
            b't' | b'f' => {
                pending_key = None;
                while i < bytes.len() && bytes[i].is_ascii_alphabetic() {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    out
}

/// Metadata and tagging paths the regression gate never compares.
fn check_skips_path(path: &str, skip_speedups: bool) -> bool {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    if matches!(
        leaf,
        "unix_time_secs" | "samples_per_metric" | "hardware_threads" | "threads" | "writer_rounds"
    ) {
        return true;
    }
    // ratios of two individually-gated timings can legally drift ~2x the
    // tolerance while both components stay in band — gate the components
    if matches!(
        leaf,
        "tick_table_speedup"
            | "cross64_speedup_bitmap_vs_oracle"
            | "merkle_x4_speedup"
            | "lazy_restore_speedup"
    ) {
        return true;
    }
    // on a 1-hardware-thread host every concurrency column measures
    // scheduler fairness, not scaling: parallel speedups, and the
    // quote-read ladder whose reader and writer time-slice one core
    // (the JSON marks speedups advisory for the same reason)
    skip_speedups
        && (path.contains("parallel_speedup")
            || path.contains("epoch_parallel_ns")
            || path.contains("pipeline_speedup")
            || path.contains("epoch_pipelined_ns")
            || path.starts_with("quote_reads."))
}

/// Applies the gate's direction-aware tolerance to one metric; returns
/// the failure description when the fresh value drifted out of band.
fn check_metric(path: &str, committed: f64, fresh: f64, tol: f64) -> Option<String> {
    let drift = (fresh - committed) / committed.abs().max(1e-9);
    let failed = if path.contains("_ns") {
        drift > tol // a timing only regresses by getting slower
    } else if path.contains("quotes_per_sec") || path.contains("speedup") {
        -drift > tol // a throughput/scaling number only regresses by dropping
    } else {
        drift.abs() > tol // sizes and counts must not drift either way
    };
    failed.then(|| {
        format!(
            "{path}: committed {committed:.1}, fresh {fresh:.1} ({:+.1}%)",
            drift * 100.0
        )
    })
}

/// Compares a fresh smoke snapshot against the committed baseline file.
/// Paths present on only one side are compared as absences: a metric the
/// baseline lacks (or has lost) means the baseline is stale and must be
/// regenerated, which is itself a gate failure.
fn check_against(
    label: &str,
    committed: &str,
    fresh: &str,
    tol: f64,
    skip_speedups: bool,
    failures: &mut Vec<String>,
) -> usize {
    let committed: HashMap<String, f64> = scan_numbers(committed).into_iter().collect();
    let fresh: Vec<(String, f64)> = scan_numbers(fresh);
    let mut compared = 0usize;
    for (path, fresh_v) in &fresh {
        if check_skips_path(path, skip_speedups) {
            continue;
        }
        match committed.get(path) {
            Some(committed_v) => {
                compared += 1;
                if let Some(msg) = check_metric(path, *committed_v, *fresh_v, tol) {
                    failures.push(format!("{label}: {msg}"));
                }
            }
            None => failures.push(format!(
                "{label}: {path} missing from committed baseline (regenerate it)"
            )),
        }
    }
    let fresh_paths: std::collections::HashSet<&str> =
        fresh.iter().map(|(p, _)| p.as_str()).collect();
    for path in committed.keys() {
        if !check_skips_path(path, skip_speedups) && !fresh_paths.contains(path.as_str()) {
            failures.push(format!(
                "{label}: {path} in committed baseline but not produced any more"
            ));
        }
    }
    compared
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_pool.json".to_string());
    let state_out_path = args
        .iter()
        .position(|a| a == "--state-out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_state.json".to_string());
    let check = args.iter().any(|a| a == "--check");
    let tolerance_pct: f64 = args
        .iter()
        .position(|a| a == "--tolerance")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .or_else(|| std::env::var("AMMBOOST_BENCH_TOLERANCE").ok())
        .map(|s| {
            s.parse()
                .unwrap_or_else(|_| panic!("--tolerance / AMMBOOST_BENCH_TOLERANCE: bad value {s}"))
        })
        .unwrap_or(25.0);
    if let Some(unknown) = args.iter().enumerate().find_map(|(i, a)| {
        let is_value = i > 0
            && (args[i - 1] == "--out"
                || args[i - 1] == "--state-out"
                || args[i - 1] == "--tolerance");
        (a != "--smoke"
            && a != "--out"
            && a != "--state-out"
            && a != "--check"
            && a != "--tolerance"
            && !is_value)
            .then_some(a)
    }) {
        eprintln!("unknown argument: {unknown}");
        eprintln!(
            "usage: bench_snapshot [--smoke] [--out PATH] [--state-out PATH] [--check] [--tolerance PCT]"
        );
        std::process::exit(2);
    }
    // the regression gate always measures in smoke mode: CI-fast, and
    // medians are comparable across sample counts anyway
    let smoke = smoke || check;
    let samples = if smoke { 51 } else { 501 };
    let hardware_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    ammboost_bench::header("Bench snapshot (pool hot paths)");

    // -- single-range swap: alternate directions so price stays centred --
    let base = single_range_pool();
    let mut dir = false;
    let mut persistent = base.clone();
    let swap_single = median_ns(
        samples,
        || (),
        |()| {
            dir = !dir;
            persistent
                .swap(dir, SwapKind::ExactInput(50_000), None)
                .expect("swap")
        },
    );
    ammboost_bench::line("pool/swap_single_range", format!("{swap_single:.0} ns"));

    // -- per-engine single swaps: the same centred alternating-direction
    // pattern through the constant-product and weighted engines --
    let mut cp_engine = CpEngine::new_standard();
    cp_engine
        .mint(
            PositionId::derive(&[b"snap-cp"]),
            Address::from_index(1),
            10u128.pow(14),
            10u128.pow(14),
        )
        .expect("seed cp join");
    let mut cp_dir = false;
    let swap_cp = median_ns(
        samples,
        || (),
        |()| {
            cp_dir = !cp_dir;
            cp_engine
                .swap_with_protection(cp_dir, SwapKind::ExactInput(50_000), None, 0, u128::MAX)
                .expect("cp swap")
        },
    );
    ammboost_bench::line("pool/swap_constant_product", format!("{swap_cp:.0} ns"));
    let mut w_engine = WeightedEngine::new_standard();
    w_engine
        .mint(
            PositionId::derive(&[b"snap-w"]),
            Address::from_index(1),
            10u128.pow(14),
            10u128.pow(14),
        )
        .expect("seed weighted join");
    let mut w_dir = false;
    let swap_weighted = median_ns(
        samples,
        || (),
        |()| {
            w_dir = !w_dir;
            w_engine
                .swap_with_protection(w_dir, SwapKind::ExactInput(50_000), None, 0, u128::MAX)
                .expect("weighted swap")
        },
    );
    ammboost_bench::line("pool/swap_weighted", format!("{swap_weighted:.0} ns"));

    // -- 64-tick-crossing sweep over fragmented liquidity (32 scattered
    // positions → 64 initialized ticks): bitmap engine vs seed oracle --
    let frag_bitmap = fragmented_ladder_pool(32, TickSearch::Bitmap);
    let swap_cross64_bitmap = median_ns(
        samples,
        || frag_bitmap.clone(),
        |mut p| ladder_sweep(&mut p, 63),
    );
    ammboost_bench::line(
        "pool/swap_cross64_bitmap",
        format!("{swap_cross64_bitmap:.0} ns"),
    );
    let frag_oracle = fragmented_ladder_pool(32, TickSearch::BTreeOracle);
    let swap_cross64_oracle = median_ns(
        samples,
        || frag_oracle.clone(),
        |mut p| ladder_sweep(&mut p, 63),
    );
    ammboost_bench::line(
        "pool/swap_cross64_oracle",
        format!("{swap_cross64_oracle:.0} ns"),
    );
    let speedup = swap_cross64_oracle / swap_cross64_bitmap;
    ammboost_bench::line("pool/cross64_speedup", format!("{speedup:.2}x"));

    // -- dense (contiguous ladder) and sparse (one wide range) bands --
    let dense = ladder_pool(64, TickSearch::Bitmap);
    let swap_dense = median_ns(samples, || dense.clone(), |mut p| ladder_sweep(&mut p, 64));
    ammboost_bench::line("pool/swap_dense_band", format!("{swap_dense:.0} ns"));
    let sparse = wide_pool(64, TickSearch::Bitmap);
    let swap_sparse = median_ns(samples, || sparse.clone(), |mut p| ladder_sweep(&mut p, 64));
    ammboost_bench::line("pool/swap_sparse_band", format!("{swap_sparse:.0} ns"));

    // -- mint/burn/collect cycle --
    let lp = Address::from_index(9);
    let mut i = 0u64;
    let mint_burn = median_ns(
        samples,
        || base.clone(),
        |mut p| {
            i += 1;
            let id = PositionId::derive(&[b"mb", &i.to_be_bytes()]);
            p.mint(id, lp, -1200, 1200, 1_000_000, 1_000_000).unwrap();
            let liq = p.position(&id).unwrap().liquidity;
            p.burn(id, lp, liq).unwrap();
            p.collect(id, lp, u128::MAX, u128::MAX).unwrap()
        },
    );
    ammboost_bench::line("pool/mint_burn_collect", format!("{mint_burn:.0} ns"));

    // -- Merkle root over a block's worth of tx leaves: the default
    // (4-way interleaved Keccak) build, the same build named explicitly,
    // and the scalar differential oracle it must stay bit-identical to --
    let leaves: Vec<_> = (0..1024u32).map(|i| leaf_hash(&i.to_be_bytes())).collect();
    let merkle_root = median_ns(
        samples,
        || leaves.clone(),
        |l| MerkleTree::from_leaves(l).root(),
    );
    ammboost_bench::line("merkle/root_1024_leaves", format!("{merkle_root:.0} ns"));
    let merkle_root_x4 = median_ns(
        samples,
        || leaves.clone(),
        |l| MerkleTree::from_leaves(l).root(),
    );
    ammboost_bench::line(
        "merkle/root_1024_leaves_x4",
        format!("{merkle_root_x4:.0} ns"),
    );
    let merkle_root_scalar = median_ns(
        samples,
        || leaves.clone(),
        |l| MerkleTree::from_leaves_scalar(l).root(),
    );
    let merkle_x4_speedup = merkle_root_scalar / merkle_root_x4;
    ammboost_bench::line(
        "merkle/root_1024_leaves_scalar",
        format!("{merkle_root_scalar:.0} ns ({merkle_x4_speedup:.2}x slower than x4)"),
    );

    // ---- the pool_count × skew ladder: sharded epoch execution ----
    ammboost_bench::header("Bench snapshot (sharded multi-pool epochs)");
    let ladder_samples = if smoke { 5 } else { 21 };
    let ladder_rounds = if smoke { 2 } else { 4 };
    let rungs = [
        (1u32, TrafficSkew::Uniform, "uniform", EngineMix::default()),
        (
            4,
            TrafficSkew::Zipf { exponent: 1.0 },
            "zipf1.0",
            EngineMix::default(),
        ),
        (8, TrafficSkew::Uniform, "uniform", EngineMix::default()),
        (
            8,
            TrafficSkew::Zipf { exponent: 1.0 },
            "zipf1.0",
            EngineMix::default(),
        ),
        (
            16,
            TrafficSkew::Zipf { exponent: 1.0 },
            "zipf1.0",
            EngineMix::default(),
        ),
        // the heterogeneous rung: 2 CL + 2 constant-product + 2 weighted
        // shards under the same Zipf popularity curve
        (
            6,
            TrafficSkew::Zipf { exponent: 1.0 },
            "mixed",
            EngineMix::of(2, 2, 2),
        ),
    ];
    let pool_ladders: Vec<PoolCountLadder> = rungs
        .iter()
        .map(|&(pools, skew, name, mix)| {
            let l = pool_count_ladder(pools, skew, name, mix, ladder_samples, ladder_rounds);
            ammboost_bench::line(
                &format!("shard/{}pools_{}/sequential", l.pools, l.skew),
                format!("{:.0} ns/epoch ({} txs)", l.sequential_ns, l.txs_per_epoch),
            );
            ammboost_bench::line(
                &format!("shard/{}pools_{}/parallel", l.pools, l.skew),
                format!("{:.0} ns/epoch ({:.2}x)", l.parallel_ns, l.speedup),
            );
            ammboost_bench::line(
                &format!("shard/{}pools_{}/snapshot", l.pools, l.skew),
                format!(
                    "{} (max section {})",
                    ammboost_bench::fmt_bytes(l.snapshot_bytes),
                    ammboost_bench::fmt_bytes(l.max_pool_section_bytes)
                ),
            );
            l
        })
        .collect();
    if hardware_threads == 1 {
        ammboost_bench::line(
            "shard/note",
            "1 hardware thread: parallel column = scheduling overhead only",
        );
    }
    // ---- the checkpoint-pipeline ladder: epoch + checkpoint, sync vs
    // staged-and-committed off-thread ----
    ammboost_bench::header("Bench snapshot (checkpoint pipeline)");
    let pipeline_ladders: Vec<CheckpointPipelineLadder> = [1u32, 4, 8]
        .iter()
        .map(|&pools| {
            let l = checkpoint_pipeline_ladder(pools, ladder_samples, ladder_rounds);
            ammboost_bench::line(
                &format!("checkpoint/{}pools/epoch_sync", l.pools),
                format!("{:.0} ns/epoch ({} txs)", l.epoch_sync_ns, l.txs_per_epoch),
            );
            ammboost_bench::line(
                &format!("checkpoint/{}pools/epoch_pipelined", l.pools),
                format!("{:.0} ns/epoch ({:.2}x)", l.epoch_pipelined_ns, l.speedup),
            );
            ammboost_bench::line(
                &format!("checkpoint/{}pools/stage_vs_commit", l.pools),
                format!("{:.0} ns stage / {:.0} ns commit", l.stage_ns, l.commit_ns),
            );
            l
        })
        .collect();
    if hardware_threads == 1 {
        ammboost_bench::line(
            "checkpoint/note",
            "1 hardware thread: pipelined column = queueing overhead only",
        );
    }
    let pipeline_ladder_json: Vec<String> = pipeline_ladders
        .iter()
        .map(|l| {
            format!(
                "    \"{}pools\": {{\n      \"pool_count\": {},\n      \"txs_per_epoch\": {},\n      \"epoch_sync_ns\": {:.1},\n      \"epoch_pipelined_ns\": {:.1},\n      \"stage_ns\": {:.1},\n      \"commit_ns\": {:.1},\n      \"pipeline_speedup\": {{\"value\": {:.3}, \"threads\": {}, \"advisory\": true}}\n    }}",
                l.pools,
                l.pools,
                l.txs_per_epoch,
                l.epoch_sync_ns,
                l.epoch_pipelined_ns,
                l.stage_ns,
                l.commit_ns,
                l.speedup,
                hardware_threads,
            )
        })
        .collect();

    // ---- the route hops × pool_count ladder: two-phase routed epochs ----
    ammboost_bench::header("Bench snapshot (routed epochs: hops × pools)");
    let route_samples = if smoke { 5 } else { 21 };
    let route_count = if smoke { 64 } else { 256 };
    let route_rungs = [(2u32, 2usize), (4, 2), (4, 4), (8, 4), (8, 8)];
    let route_ladders: Vec<RouteLadder> = route_rungs
        .iter()
        .map(|&(pools, hops)| {
            let l = route_ladder(pools, hops, route_count, route_samples);
            ammboost_bench::line(
                &format!("route/{}pools_{}hops/sequential", l.pools, l.hops),
                format!("{:.0} ns/epoch ({} routes)", l.sequential_ns, l.routes),
            );
            ammboost_bench::line(
                &format!("route/{}pools_{}hops/parallel", l.pools, l.hops),
                format!("{:.0} ns/epoch ({:.2}x)", l.parallel_ns, l.speedup),
            );
            ammboost_bench::line(
                &format!("route/{}pools_{}hops/settlement", l.pools, l.hops),
                format!(
                    "netted {} vs naive {} ({:.2}x smaller)",
                    ammboost_bench::fmt_bytes(l.netted_settlement_bytes),
                    ammboost_bench::fmt_bytes(l.naive_settlement_bytes),
                    l.netting_ratio
                ),
            );
            l
        })
        .collect();
    // ---- the concurrent-read scaling ladder: quotes/sec under write load ----
    ammboost_bench::header("Bench snapshot (sealed-view quotes under write load)");
    let quotes_per_thread = if smoke { 20_000 } else { 100_000 };
    let mut thread_rungs: Vec<usize> = std::iter::successors(Some(1usize), |n| Some(n * 2))
        .take_while(|&n| n < hardware_threads)
        .collect();
    thread_rungs.push(hardware_threads);
    let quote_ladders: Vec<QuoteLadder> = thread_rungs
        .iter()
        .map(|&threads| {
            let l = quote_ladder(8, threads, quotes_per_thread);
            ammboost_bench::line(
                &format!("quote/{}threads/throughput", l.threads),
                format!(
                    "{:.0} quotes/s ({} quotes, writer ran {} rounds)",
                    l.quotes_per_sec, l.quotes, l.writer_rounds
                ),
            );
            l
        })
        .collect();
    let quote_ladder_json: Vec<String> = quote_ladders
        .iter()
        .map(|l| {
            format!(
                "    \"threads_{}\": {{\n      \"threads\": {},\n      \"quotes\": {},\n      \"wall_ns\": {:.1},\n      \"quotes_per_sec\": {:.1},\n      \"writer_rounds\": {}\n    }}",
                l.threads, l.threads, l.quotes, l.wall_ns, l.quotes_per_sec, l.writer_rounds,
            )
        })
        .collect();

    let route_ladder_json: Vec<String> = route_ladders
        .iter()
        .map(|l| {
            format!(
                "    \"{}pools_{}hops\": {{\n      \"pool_count\": {},\n      \"hops\": {},\n      \"routes_per_epoch\": {},\n      \"epoch_sequential_ns\": {:.1},\n      \"epoch_parallel_ns\": {:.1},\n      \"parallel_speedup\": {{\"value\": {:.3}, \"threads\": {}, \"advisory\": true}},\n      \"netted_settlement_bytes\": {},\n      \"naive_settlement_bytes\": {},\n      \"netting_ratio\": {:.3}\n    }}",
                l.pools,
                l.hops,
                l.pools,
                l.hops,
                l.routes,
                l.sequential_ns,
                l.parallel_ns,
                l.speedup,
                hardware_threads,
                l.netted_settlement_bytes,
                l.naive_settlement_bytes,
                l.netting_ratio,
            )
        })
        .collect();

    let pool_ladder_json: Vec<String> = pool_ladders
        .iter()
        .map(|l| {
            format!(
                "    \"{}pools_{}\": {{\n      \"pool_count\": {},\n      \"skew\": \"{}\",\n      \"txs_per_epoch\": {},\n      \"epoch_sequential_ns\": {:.1},\n      \"epoch_parallel_ns\": {:.1},\n      \"parallel_speedup\": {{\"value\": {:.3}, \"threads\": {}, \"advisory\": true}},\n      \"snapshot_bytes\": {},\n      \"max_pool_section_bytes\": {}\n    }}",
                l.pools,
                l.skew,
                l.pools,
                l.skew,
                l.txs_per_epoch,
                l.sequential_ns,
                l.parallel_ns,
                l.speedup,
                hardware_threads,
                l.snapshot_bytes,
                l.max_pool_section_bytes,
            )
        })
        .collect();

    let unix_secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let json = format!(
        "{{\n  \"schema\": \"ammboost-bench-snapshot/v7\",\n  \"smoke\": {smoke},\n  \"samples_per_metric\": {samples},\n  \"unix_time_secs\": {unix_secs},\n  \"hardware_threads\": {hardware_threads},\n  \"median_ns_per_op\": {{\n    \"pool_swap_single_range\": {swap_single:.1},\n    \"pool_swap_constant_product\": {swap_cp:.1},\n    \"pool_swap_weighted\": {swap_weighted:.1},\n    \"pool_swap_cross64_bitmap\": {swap_cross64_bitmap:.1},\n    \"pool_swap_cross64_oracle\": {swap_cross64_oracle:.1},\n    \"pool_swap_dense_band\": {swap_dense:.1},\n    \"pool_swap_sparse_band\": {swap_sparse:.1},\n    \"pool_mint_burn_collect\": {mint_burn:.1},\n    \"merkle_root_1024_leaves\": {merkle_root:.1},\n    \"merkle_root_1024_leaves_x4\": {merkle_root_x4:.1},\n    \"merkle_root_1024_leaves_scalar\": {merkle_root_scalar:.1}\n  }},\n  \"derived\": {{\n    \"cross64_speedup_bitmap_vs_oracle\": {speedup:.3},\n    \"merkle_x4_speedup\": {merkle_x4_speedup:.3}\n  }},\n  \"multi_pool_epochs\": {{\n{}\n  }},\n  \"checkpoint_pipeline\": {{\n{}\n  }},\n  \"routed_epochs\": {{\n{}\n  }},\n  \"quote_reads\": {{\n{}\n  }}\n}}\n",
        pool_ladder_json.join(",\n"),
        pipeline_ladder_json.join(",\n"),
        route_ladder_json.join(",\n"),
        quote_ladder_json.join(",\n")
    );

    // ---- the state subsystem: snapshot encode/restore + growth control ----
    ammboost_bench::header("Bench snapshot (state subsystem)");
    let state_samples = if smoke { 11 } else { 101 };
    let ladders = [
        state_ladder("volume_50k", 50_000, state_samples),
        state_ladder("volume_500k", 500_000, state_samples),
    ];
    for l in &ladders {
        ammboost_bench::line(
            &format!("state/{}/snapshot_bytes", l.name),
            ammboost_bench::fmt_bytes(l.snapshot_bytes),
        );
        ammboost_bench::line(
            &format!("state/{}/encode", l.name),
            format!("{:.0} ns", l.encode_ns),
        );
        ammboost_bench::line(
            &format!("state/{}/decode_restore", l.name),
            format!("{:.0} ns", l.restore_ns),
        );
        ammboost_bench::line(
            &format!("state/{}/sidechain_pruned", l.name),
            ammboost_bench::fmt_bytes(l.sidechain_bytes_pruned),
        );
        ammboost_bench::line(
            &format!("state/{}/sidechain_unpruned", l.name),
            ammboost_bench::fmt_bytes(l.sidechain_bytes_unpruned),
        );
    }
    let ladder_json: Vec<String> = ladders
        .iter()
        .map(|l| {
            format!(
                "    \"{}\": {{\n      \"accepted_txs\": {},\n      \"snapshot_bytes\": {},\n      \"snapshot_encode_ns\": {:.1},\n      \"snapshot_decode_restore_ns\": {:.1},\n      \"state_root\": \"{}\",\n      \"sidechain_bytes_pruned\": {},\n      \"sidechain_peak_bytes_pruned\": {},\n      \"sidechain_bytes_unpruned\": {},\n      \"sidechain_peak_bytes_unpruned\": {}\n    }}",
                l.name,
                l.accepted,
                l.snapshot_bytes,
                l.encode_ns,
                l.restore_ns,
                l.state_root,
                l.sidechain_bytes_pruned,
                l.sidechain_peak_pruned,
                l.sidechain_bytes_unpruned,
                l.sidechain_peak_unpruned,
            )
        })
        .collect();
    // ---- restore-throughput ladder: tick-dense pools at position scale ----
    ammboost_bench::header("Bench snapshot (restore throughput)");
    let restore_sizes: &[usize] = if smoke {
        &[20_000, 100_000]
    } else {
        &[100_000, 1_000_000]
    };
    let restore_samples = if smoke { 3 } else { 5 };
    let restore_ladders: Vec<RestoreLadder> = restore_sizes
        .iter()
        .map(|&n| {
            let l = restore_ladder(n, restore_samples);
            ammboost_bench::line(
                &format!("restore/{}/bytes", l.name),
                ammboost_bench::fmt_bytes(l.encoded_bytes as u64),
            );
            ammboost_bench::line(
                &format!("restore/{}/with_tick_table", l.name),
                format!("{:.0} ns", l.restore_with_table_ns),
            );
            ammboost_bench::line(
                &format!("restore/{}/recompute", l.name),
                format!(
                    "{:.0} ns ({:.2}x slower)",
                    l.restore_recompute_ns,
                    l.restore_recompute_ns / l.restore_with_table_ns
                ),
            );
            ammboost_bench::line(
                &format!("restore/{}/eager", l.name),
                format!(
                    "{:.0} ns ({:.2}x slower than lazy)",
                    l.restore_eager_ns,
                    l.restore_eager_ns / l.restore_with_table_ns
                ),
            );
            // the zero-copy acceptance bar: at 10⁵+ positions the lazy
            // restore must beat materializing every position up front
            if l.positions >= 100_000 {
                assert!(
                    l.restore_with_table_ns < l.restore_eager_ns,
                    "lazy restore ({:.0} ns) must beat the eager oracle ({:.0} ns) at {} positions",
                    l.restore_with_table_ns,
                    l.restore_eager_ns,
                    l.positions
                );
            }
            l
        })
        .collect();
    let restore_json: Vec<String> = restore_ladders
        .iter()
        .map(|l| {
            format!(
                "    \"{}\": {{\n      \"positions\": {},\n      \"initialized_ticks\": {},\n      \"encoded_bytes\": {},\n      \"decode_restore_with_tick_table_ns\": {:.1},\n      \"decode_restore_recompute_ns\": {:.1},\n      \"tick_table_speedup\": {:.3},\n      \"decode_restore_eager_ns\": {:.1},\n      \"lazy_restore_speedup\": {:.3}\n    }}",
                l.name,
                l.positions,
                l.ticks,
                l.encoded_bytes,
                l.restore_with_table_ns,
                l.restore_recompute_ns,
                l.restore_recompute_ns / l.restore_with_table_ns,
                l.restore_eager_ns,
                l.restore_eager_ns / l.restore_with_table_ns,
            )
        })
        .collect();
    // ---- delta-vs-full checkpoint grid: dirty fraction × positions ----
    ammboost_bench::header("Bench snapshot (delta checkpoints)");
    let delta_sizes: &[usize] = if smoke {
        &[100_000]
    } else {
        &[100_000, 1_000_000]
    };
    let delta_ladders: Vec<DeltaLadder> = delta_sizes
        .iter()
        .flat_map(|&n| {
            let state = delta_ladder_pool(n);
            [10u32, 100, 1000]
                .iter()
                .map(|&bp| {
                    let l = delta_ladder(&state, bp);
                    ammboost_bench::line(
                        &format!("delta/{}/bytes", l.name),
                        format!(
                            "{} delta vs {} full ({:.1}x smaller, {}/{} pages)",
                            ammboost_bench::fmt_bytes(l.delta_bytes as u64),
                            ammboost_bench::fmt_bytes(l.full_section_bytes as u64),
                            l.shrink,
                            l.pages_dirty,
                            l.pages_total
                        ),
                    );
                    // the tentpole acceptance bar: a sparse-dirty epoch
                    // (≤1% of positions) must shrink the checkpoint ≥10×
                    if bp <= 100 {
                        assert!(
                            l.shrink >= 10.0,
                            "delta at {}bp dirty must shrink ≥10x, got {:.1}x",
                            bp,
                            l.shrink
                        );
                    }
                    l
                })
                .collect::<Vec<_>>()
        })
        .collect();
    let delta_json: Vec<String> = delta_ladders
        .iter()
        .map(|l| {
            format!(
                "    \"{}\": {{\n      \"positions\": {},\n      \"dirty_positions\": {},\n      \"pages_total\": {},\n      \"pages_dirty\": {},\n      \"full_section_bytes\": {},\n      \"delta_bytes\": {},\n      \"delta_shrink\": {:.3}\n    }}",
                l.name,
                l.positions,
                l.dirty_positions,
                l.pages_total,
                l.pages_dirty,
                l.full_section_bytes,
                l.delta_bytes,
                l.shrink,
            )
        })
        .collect();

    let state_json = format!(
        "{{\n  \"schema\": \"ammboost-state-snapshot/v3\",\n  \"smoke\": {smoke},\n  \"samples_per_metric\": {state_samples},\n  \"unix_time_secs\": {unix_secs},\n  \"ladders\": {{\n{}\n  }},\n  \"restore_ladders\": {{\n{}\n  }},\n  \"delta_ladders\": {{\n{}\n  }}\n}}\n",
        ladder_json.join(",\n"),
        restore_json.join(",\n"),
        delta_json.join(",\n")
    );
    if check {
        // ---- the regression gate: fresh smoke run vs committed baseline ----
        ammboost_bench::header("Bench check (fresh smoke run vs committed baseline)");
        let tol = tolerance_pct / 100.0;
        let committed_pool = std::fs::read_to_string(&out_path)
            .unwrap_or_else(|e| panic!("read committed baseline {out_path}: {e}"));
        let committed_state = std::fs::read_to_string(&state_out_path)
            .unwrap_or_else(|e| panic!("read committed baseline {state_out_path}: {e}"));
        // a speedup is not comparable when either side ran on one
        // hardware thread
        let committed_threads = scan_numbers(&committed_pool)
            .into_iter()
            .find(|(p, _)| p == "hardware_threads")
            .map(|(_, v)| v as usize)
            .unwrap_or(1);
        let skip_speedups = hardware_threads == 1 || committed_threads == 1;
        let mut failures = Vec::new();
        let mut compared = 0;
        compared += check_against(
            &out_path,
            &committed_pool,
            &json,
            tol,
            skip_speedups,
            &mut failures,
        );
        compared += check_against(
            &state_out_path,
            &committed_state,
            &state_json,
            tol,
            skip_speedups,
            &mut failures,
        );
        ammboost_bench::line("check/tolerance", format!("±{tolerance_pct}%"));
        ammboost_bench::line("check/metrics_compared", compared);
        ammboost_bench::line(
            "check/speedup_columns",
            if skip_speedups {
                "skipped (1 hw thread)"
            } else {
                "gated"
            },
        );
        assert!(
            compared > 10,
            "gate compared almost nothing — schema mismatch?"
        );
        if failures.is_empty() {
            println!();
            println!("bench check PASS ({compared} metrics within ±{tolerance_pct}%)");
        } else {
            println!();
            for f in &failures {
                eprintln!("bench check FAIL: {f}");
            }
            eprintln!(
                "bench check: {} failure(s) across {compared} compared metrics (tolerance \
                 ±{tolerance_pct}%; override with --tolerance PCT or AMMBOOST_BENCH_TOLERANCE, \
                 or regenerate the baselines with `bench_snapshot --smoke` if the change is \
                 intended)",
                failures.len(),
            );
            std::process::exit(1);
        }
    } else {
        std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
        std::fs::write(&state_out_path, &state_json)
            .unwrap_or_else(|e| panic!("write {state_out_path}: {e}"));
        println!();
        println!("wrote {out_path}");
        println!("wrote {state_out_path}");
    }
}
