//! Machine-readable performance snapshot: measures the hot-path
//! operations the sidechain's throughput is bounded by and writes
//! `BENCH_pool.json` plus `BENCH_state.json` at the repo root, giving the
//! perf trajectory a committed data point per machine/commit.
//!
//! `BENCH_pool.json` (median ns/op):
//! - single-range swap (no tick crossing),
//! - 64-tick-crossing ladder sweep under the bitmap engine *and* under
//!   the retained seed `BTreeMap` oracle (the speedup ratio between the
//!   two is the tentpole number),
//! - mint + burn + collect position cycle,
//! - 1024-leaf Merkle transaction-root build.
//!
//! `BENCH_state.json` (the `ammboost-state` subsystem): snapshot encode
//! and decode+restore timings, serialized snapshot size, and the
//! sidechain's pruned-vs-unpruned bytes-on-disk for two workload ladders
//! (50K and 500K daily volume — the paper's state-growth-control curve
//! endpoints).
//!
//! Usage: `bench_snapshot [--smoke] [--out PATH] [--state-out PATH]`.
//! `--smoke` cuts sample counts for CI; the JSON records which mode
//! produced it.

use ammboost_amm::pool::{Pool, SwapKind, TickSearch};
use ammboost_amm::types::PositionId;
use ammboost_bench::{fragmented_ladder_pool, ladder_pool, ladder_sweep, wide_pool};
use ammboost_core::checkpoint::restore_node;
use ammboost_core::config::{SnapshotPolicy, SystemConfig};
use ammboost_core::system::System;
use ammboost_crypto::merkle::{leaf_hash, MerkleTree};
use ammboost_crypto::Address;
use ammboost_state::Snapshot;
use std::hint::black_box;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Times `samples` runs of `routine` on fresh inputs from `setup`
/// (setup cost excluded) and returns the median ns/op.
fn median_ns<I, O>(
    samples: usize,
    mut setup: impl FnMut() -> I,
    mut routine: impl FnMut(I) -> O,
) -> f64 {
    // warm-up: populate caches and let the allocator settle
    for _ in 0..3 {
        black_box(routine(setup()));
    }
    let mut times: Vec<u128> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let input = setup();
        let t = Instant::now();
        black_box(routine(input));
        times.push(t.elapsed().as_nanos());
    }
    times.sort_unstable();
    let mid = times.len() / 2;
    if times.len() % 2 == 0 {
        (times[mid - 1] + times[mid]) as f64 / 2.0
    } else {
        times[mid] as f64
    }
}

fn single_range_pool() -> Pool {
    let mut pool = Pool::new_standard();
    pool.mint(
        PositionId::derive(&[b"snap"]),
        Address::from_index(1),
        -6000,
        6000,
        10u128.pow(14),
        10u128.pow(14),
    )
    .expect("seed mint");
    pool
}

/// One workload ladder's state-subsystem measurements.
struct StateLadder {
    name: &'static str,
    accepted: u64,
    snapshot_bytes: u64,
    encode_ns: f64,
    restore_ns: f64,
    state_root: String,
    sidechain_bytes_pruned: u64,
    sidechain_peak_pruned: u64,
    sidechain_bytes_unpruned: u64,
    sidechain_peak_unpruned: u64,
}

/// Runs one ladder twice (snapshot-pruned vs pruning disabled), then
/// times snapshot encode and decode+restore on the final node state.
fn state_ladder(name: &'static str, daily_volume: u64, samples: usize) -> StateLadder {
    let mut cfg = SystemConfig::small_test();
    cfg.daily_volume = daily_volume;
    cfg.snapshot = SnapshotPolicy::every_epoch();
    let mut pruned_sys = System::new(cfg.clone());
    let pruned = pruned_sys.run();

    let mut unpruned_cfg = cfg.clone();
    unpruned_cfg.disable_pruning = true;
    unpruned_cfg.snapshot = SnapshotPolicy::default();
    let unpruned = System::new(unpruned_cfg).run();

    // final on-demand checkpoint covering the drain epoch
    let stats = pruned_sys.checkpoint(pruned.epochs + 1);
    let snapshot = pruned_sys
        .last_snapshot()
        .expect("checkpoint taken")
        .clone();
    let encode_ns = median_ns(samples, || (), |()| snapshot.encode());
    let wire = snapshot.encode();
    let restore_ns = median_ns(
        samples,
        || wire.clone(),
        |bytes| {
            let decoded = Snapshot::decode(&bytes).expect("root verifies");
            restore_node(&decoded).expect("snapshot restores")
        },
    );

    StateLadder {
        name,
        accepted: pruned.accepted,
        snapshot_bytes: stats.snapshot_bytes,
        encode_ns,
        restore_ns,
        state_root: format!("{}", stats.root),
        sidechain_bytes_pruned: pruned.sidechain_bytes,
        sidechain_peak_pruned: pruned.sidechain_peak_bytes,
        sidechain_bytes_unpruned: unpruned.sidechain_bytes,
        sidechain_peak_unpruned: unpruned.sidechain_peak_bytes,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_pool.json".to_string());
    let state_out_path = args
        .iter()
        .position(|a| a == "--state-out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_state.json".to_string());
    if let Some(unknown) = args.iter().enumerate().find_map(|(i, a)| {
        let is_value = i > 0 && (args[i - 1] == "--out" || args[i - 1] == "--state-out");
        (a != "--smoke" && a != "--out" && a != "--state-out" && !is_value).then_some(a)
    }) {
        eprintln!("unknown argument: {unknown}");
        eprintln!("usage: bench_snapshot [--smoke] [--out PATH] [--state-out PATH]");
        std::process::exit(2);
    }
    let samples = if smoke { 51 } else { 501 };

    ammboost_bench::header("Bench snapshot (pool hot paths)");

    // -- single-range swap: alternate directions so price stays centred --
    let base = single_range_pool();
    let mut dir = false;
    let mut persistent = base.clone();
    let swap_single = median_ns(
        samples,
        || (),
        |()| {
            dir = !dir;
            persistent
                .swap(dir, SwapKind::ExactInput(50_000), None)
                .expect("swap")
        },
    );
    ammboost_bench::line("pool/swap_single_range", format!("{swap_single:.0} ns"));

    // -- 64-tick-crossing sweep over fragmented liquidity (32 scattered
    // positions → 64 initialized ticks): bitmap engine vs seed oracle --
    let frag_bitmap = fragmented_ladder_pool(32, TickSearch::Bitmap);
    let swap_cross64_bitmap = median_ns(
        samples,
        || frag_bitmap.clone(),
        |mut p| ladder_sweep(&mut p, 63),
    );
    ammboost_bench::line(
        "pool/swap_cross64_bitmap",
        format!("{swap_cross64_bitmap:.0} ns"),
    );
    let frag_oracle = fragmented_ladder_pool(32, TickSearch::BTreeOracle);
    let swap_cross64_oracle = median_ns(
        samples,
        || frag_oracle.clone(),
        |mut p| ladder_sweep(&mut p, 63),
    );
    ammboost_bench::line(
        "pool/swap_cross64_oracle",
        format!("{swap_cross64_oracle:.0} ns"),
    );
    let speedup = swap_cross64_oracle / swap_cross64_bitmap;
    ammboost_bench::line("pool/cross64_speedup", format!("{speedup:.2}x"));

    // -- dense (contiguous ladder) and sparse (one wide range) bands --
    let dense = ladder_pool(64, TickSearch::Bitmap);
    let swap_dense = median_ns(samples, || dense.clone(), |mut p| ladder_sweep(&mut p, 64));
    ammboost_bench::line("pool/swap_dense_band", format!("{swap_dense:.0} ns"));
    let sparse = wide_pool(64, TickSearch::Bitmap);
    let swap_sparse = median_ns(samples, || sparse.clone(), |mut p| ladder_sweep(&mut p, 64));
    ammboost_bench::line("pool/swap_sparse_band", format!("{swap_sparse:.0} ns"));

    // -- mint/burn/collect cycle --
    let lp = Address::from_index(9);
    let mut i = 0u64;
    let mint_burn = median_ns(
        samples,
        || base.clone(),
        |mut p| {
            i += 1;
            let id = PositionId::derive(&[b"mb", &i.to_be_bytes()]);
            p.mint(id, lp, -1200, 1200, 1_000_000, 1_000_000).unwrap();
            let liq = p.position(&id).unwrap().liquidity;
            p.burn(id, lp, liq).unwrap();
            p.collect(id, lp, u128::MAX, u128::MAX).unwrap()
        },
    );
    ammboost_bench::line("pool/mint_burn_collect", format!("{mint_burn:.0} ns"));

    // -- Merkle root over a block's worth of tx leaves --
    let leaves: Vec<_> = (0..1024u32).map(|i| leaf_hash(&i.to_be_bytes())).collect();
    let merkle_root = median_ns(
        samples,
        || leaves.clone(),
        |l| MerkleTree::from_leaves(l).root(),
    );
    ammboost_bench::line("merkle/root_1024_leaves", format!("{merkle_root:.0} ns"));

    let unix_secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let json = format!(
        "{{\n  \"schema\": \"ammboost-bench-snapshot/v1\",\n  \"smoke\": {smoke},\n  \"samples_per_metric\": {samples},\n  \"unix_time_secs\": {unix_secs},\n  \"median_ns_per_op\": {{\n    \"pool_swap_single_range\": {swap_single:.1},\n    \"pool_swap_cross64_bitmap\": {swap_cross64_bitmap:.1},\n    \"pool_swap_cross64_oracle\": {swap_cross64_oracle:.1},\n    \"pool_swap_dense_band\": {swap_dense:.1},\n    \"pool_swap_sparse_band\": {swap_sparse:.1},\n    \"pool_mint_burn_collect\": {mint_burn:.1},\n    \"merkle_root_1024_leaves\": {merkle_root:.1}\n  }},\n  \"derived\": {{\n    \"cross64_speedup_bitmap_vs_oracle\": {speedup:.3}\n  }}\n}}\n"
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!();
    println!("wrote {out_path}");

    // ---- the state subsystem: snapshot encode/restore + growth control ----
    ammboost_bench::header("Bench snapshot (state subsystem)");
    let state_samples = if smoke { 11 } else { 101 };
    let ladders = [
        state_ladder("volume_50k", 50_000, state_samples),
        state_ladder("volume_500k", 500_000, state_samples),
    ];
    for l in &ladders {
        ammboost_bench::line(
            &format!("state/{}/snapshot_bytes", l.name),
            ammboost_bench::fmt_bytes(l.snapshot_bytes),
        );
        ammboost_bench::line(
            &format!("state/{}/encode", l.name),
            format!("{:.0} ns", l.encode_ns),
        );
        ammboost_bench::line(
            &format!("state/{}/decode_restore", l.name),
            format!("{:.0} ns", l.restore_ns),
        );
        ammboost_bench::line(
            &format!("state/{}/sidechain_pruned", l.name),
            ammboost_bench::fmt_bytes(l.sidechain_bytes_pruned),
        );
        ammboost_bench::line(
            &format!("state/{}/sidechain_unpruned", l.name),
            ammboost_bench::fmt_bytes(l.sidechain_bytes_unpruned),
        );
    }
    let ladder_json: Vec<String> = ladders
        .iter()
        .map(|l| {
            format!(
                "    \"{}\": {{\n      \"accepted_txs\": {},\n      \"snapshot_bytes\": {},\n      \"snapshot_encode_ns\": {:.1},\n      \"snapshot_decode_restore_ns\": {:.1},\n      \"state_root\": \"{}\",\n      \"sidechain_bytes_pruned\": {},\n      \"sidechain_peak_bytes_pruned\": {},\n      \"sidechain_bytes_unpruned\": {},\n      \"sidechain_peak_bytes_unpruned\": {}\n    }}",
                l.name,
                l.accepted,
                l.snapshot_bytes,
                l.encode_ns,
                l.restore_ns,
                l.state_root,
                l.sidechain_bytes_pruned,
                l.sidechain_peak_pruned,
                l.sidechain_bytes_unpruned,
                l.sidechain_peak_unpruned,
            )
        })
        .collect();
    let state_json = format!(
        "{{\n  \"schema\": \"ammboost-state-snapshot/v1\",\n  \"smoke\": {smoke},\n  \"samples_per_metric\": {state_samples},\n  \"unix_time_secs\": {unix_secs},\n  \"ladders\": {{\n{}\n  }}\n}}\n",
        ladder_json.join(",\n")
    );
    std::fs::write(&state_out_path, &state_json)
        .unwrap_or_else(|e| panic!("write {state_out_path}: {e}"));
    println!();
    println!("wrote {state_out_path}");
}
