//! Reproduces **Figure 5 — Gas cost and chain growth comparison**:
//! total mainchain gas and state growth of ammBoost vs the all-on-chain
//! Uniswap baseline at V_D = 500K over 11 epochs. The paper reports a
//! 96.05% gas reduction, 93.42% growth reduction vs Sepolia and 97.60%
//! vs production Ethereum.

use ammboost_bench::{fmt_bytes, fmt_gas, header, line, row};
use ammboost_core::baseline::{BaselineConfig, BaselineRunner};
use ammboost_core::config::SystemConfig;
use ammboost_core::system::System;
use ammboost_sim::time::SimDuration;

fn main() {
    header("Figure 5 — gas cost and chain growth, ammBoost vs Uniswap");

    let mut cfg = SystemConfig::default();
    cfg.daily_volume = 500_000;
    let amm = System::new(cfg).run();

    let baseline = BaselineRunner::new(BaselineConfig {
        daily_volume: 500_000,
        duration: SimDuration::from_secs(11 * 210),
        ..BaselineConfig::default()
    })
    .run();

    line("ammBoost gas (deposits)", fmt_gas(amm.deposit_gas));
    line("ammBoost gas (syncs)", fmt_gas(amm.sync_gas));
    line("ammBoost gas (total)", fmt_gas(amm.mainchain_gas));
    line("baseline gas (total)", fmt_gas(baseline.total_gas));
    let gas_reduction = 100.0 * (1.0 - amm.mainchain_gas as f64 / baseline.total_gas as f64);
    row("gas reduction (%)", "96.05", format!("{gas_reduction:.2}"));
    println!();
    line(
        "ammBoost mainchain growth",
        fmt_bytes(amm.mainchain_growth_bytes),
    );
    line(
        "baseline growth (Sepolia sizes)",
        fmt_bytes(baseline.growth_bytes),
    );
    line(
        "baseline growth (mainnet sizes)",
        fmt_bytes(baseline.mainnet_growth_bytes),
    );
    let growth_sepolia =
        100.0 * (1.0 - amm.mainchain_growth_bytes as f64 / baseline.growth_bytes as f64);
    let growth_mainnet =
        100.0 * (1.0 - amm.mainchain_growth_bytes as f64 / baseline.mainnet_growth_bytes as f64);
    row(
        "growth reduction vs Sepolia (%)",
        "93.42",
        format!("{growth_sepolia:.2}"),
    );
    row(
        "growth reduction vs mainnet (%)",
        "97.60",
        format!("{growth_mainnet:.2}"),
    );
    println!();
    line(
        "sidechain peak / final (pruned)",
        format!(
            "{} / {}",
            fmt_bytes(amm.sidechain_peak_bytes),
            fmt_bytes(amm.sidechain_bytes)
        ),
    );
    println!();
    println!(
        "shape check: the rare sync + once-per-run deposits cost a small \
         fraction of processing every swap/mint/burn/collect on the \
         mainchain; growth reduction is larger against mainnet tx sizes."
    );
}
