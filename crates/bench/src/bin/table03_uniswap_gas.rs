//! Reproduces **Table III — Mainchain latency and gas cost for Uniswap**
//! (the baseline): per-operation average gas and confirmation latency of
//! swaps, mints, burns and collects executed fully on the mainchain.

use ammboost_bench::{header, line, row};
use ammboost_core::baseline::{BaselineConfig, BaselineRunner};
use ammboost_sim::time::SimDuration;

fn main() {
    header("Table III — Uniswap baseline per-operation gas + latency");
    let report = BaselineRunner::new(BaselineConfig {
        daily_volume: 500_000,
        duration: SimDuration::from_secs(11 * 210),
        ..BaselineConfig::default()
    })
    .run();

    let paper_gas = [
        ("Swap", 160_601.45),
        ("Mint", 435_609.86),
        ("Burn", 158_473.43),
        ("Collect", 163_743.04),
    ];
    let paper_latency = [
        ("Swap", 31.34),
        ("Mint", 42.24),
        ("Burn", 12.72),
        ("Collect", 13.45),
    ];

    line(
        "executed / submitted",
        format!("{} / {}", report.executed, report.submitted),
    );
    println!();
    for (kind, paper) in paper_gas {
        let measured = report
            .per_op
            .get(kind)
            .map(|s| s.gas as f64 / s.count as f64)
            .unwrap_or(0.0);
        row(
            &format!("avg gas: {kind}"),
            format!("{paper:.0}"),
            format!("{measured:.0}"),
        );
    }
    println!();
    for (kind, paper) in paper_latency {
        let measured = report
            .per_op
            .get(kind)
            .map(|s| s.avg_latency_secs)
            .unwrap_or(0.0);
        row(
            &format!("MC latency: {kind} (s)"),
            format!("{paper:.2}"),
            format!("{measured:.2}"),
        );
    }
    println!();
    println!(
        "shape check: mint is by far the most expensive (fresh position + \
         NFT storage); swap/burn/collect cluster near ~160K; latency order \
         mint > swap > burn ≈ collect (approval chains)."
    );
}
