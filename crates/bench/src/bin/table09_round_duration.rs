//! Reproduces **Table IX — Impact of different sidechain round
//! durations**: `bt ∈ {7, 11, 16, 21}` s at V_D = 25M/day.
//!
//! Expected shape: longer rounds mean fewer blocks per unit time, so
//! throughput falls roughly as `1/bt` and queueing latency rises.

use ammboost_bench::{header, line, row};
use ammboost_core::config::SystemConfig;
use ammboost_core::system::System;
use ammboost_sim::time::SimDuration;

fn main() {
    header("Table IX — sidechain round duration sweep (V_D = 25M/day)");
    let paper = [
        (7u64, 138.06, 231.52, 346.49),
        (11, 92.18, 921.64, 1087.95),
        (16, 61.75, 1950.92, 2193.85),
        (21, 46.31, 2975.90, 3295.11),
    ];
    for (bt, p_tput, p_sc, p_payout) in paper {
        let mut cfg = SystemConfig::default();
        cfg.round_duration = SimDuration::from_secs(bt);
        let report = System::new(cfg).run();
        println!();
        line("round duration", format!("{bt} s"));
        row(
            "  throughput (tx/s)",
            format!("{p_tput:.2}"),
            format!("{:.2}", report.throughput_tps),
        );
        row(
            "  avg sc latency (s)",
            format!("{p_sc:.2}"),
            format!("{:.2}", report.avg_sc_latency_secs),
        );
        row(
            "  avg payout latency (s)",
            format!("{p_payout:.2}"),
            format!("{:.2}", report.avg_payout_latency_secs),
        );
    }
    println!();
    println!(
        "shape check: throughput ~ 1 MB / (avg tx size x bt) falls as the \
         round stretches; the backlog (and latency) grows correspondingly."
    );
}
