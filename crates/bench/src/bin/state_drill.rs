//! CI smoke drill for the `ammboost-state` subsystem, multi-pool
//! edition: run a **sharded** system (default: 8 pools under
//! Zipf-skewed traffic), **checkpoint** all shards into one
//! Merkle-committed snapshot, **prune** the raw history the snapshot
//! covers, **restore** a fresh node from the serialized snapshot, and
//! **re-verify** the state root plus byte-identical per-shard state.
//! Exits non-zero on any divergence.
//!
//! `--routed` turns a share of the swap traffic into multi-hop
//! cross-pool routes, drilling the two-phase epoch (hop waves + netting
//! barrier) through the same checkpoint → prune → restore → re-verify
//! cycle.
//!
//! `--quotes` adds the concurrent read-path drill: reader threads hammer
//! the sealed epoch-0 [`QuoteView`] **while** the epochs execute on the
//! live shards, every answer is recorded, and after the run each one is
//! re-verified bit-for-bit against the frozen view bytes (a reader that
//! ever saw a partially-executed epoch would diverge here). A second
//! hammer round runs against the final sealed view and is re-verified
//! against the post-epoch restored snapshot.
//!
//! `--delta` appends the delta-chain drill: after the full cycle, a run
//! of synthetic single-shard epochs journals only page-granular
//! [`ammboost_state::DeltaSnapshot`]s into a [`CheckpointStore`], the
//! chain compacts at its threshold, and the folded tip must restore
//! byte-identical to the live node.
//!
//! Usage: `state_drill [--seed N] [--pools N] [--uniform] [--routed] [--quotes] [--delta]`

use ammboost_amm::engines::Engine;
use ammboost_amm::pool::{SwapKind, SwapResult};
use ammboost_amm::types::PoolId;
use ammboost_core::checkpoint::{checkpoint_node, restore_node};
use ammboost_core::config::{SnapshotPolicy, SystemConfig};
use ammboost_core::system::System;
use ammboost_core::view::{QuoteError, QuoteView};
use ammboost_sim::DetRng;
use ammboost_state::{prune_to_snapshot, CheckpointStore, Checkpointer, RetentionPolicy, Snapshot};
use ammboost_workload::{QuoteStyle, RouteStyle, TrafficSkew};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One answered read-path query: the request plus the answer the reader
/// thread got from the sealed view, kept for post-run re-verification.
type AnsweredQuote = (PoolId, bool, u128, Result<SwapResult, QuoteError>);

/// Number of concurrent reader threads per hammer round.
const READER_THREADS: usize = 4;

/// Per-reader answer cap: bounds re-verification cost while leaving the
/// readers running long enough to overlap many executed rounds.
const READER_CAP: usize = 20_000;

/// Hammers `view` from [`READER_THREADS`] threads until `stop` is set
/// (or every thread hits its cap), recording every answer. Quotes draw
/// from per-thread deterministic RNG streams, so the drill is exactly
/// reproducible for a given seed.
fn hammer_view(view: &Arc<QuoteView>, seed: u64, stop: &AtomicBool) -> Vec<AnsweredQuote> {
    std::thread::scope(|s| {
        let readers: Vec<_> = (0..READER_THREADS)
            .map(|t| {
                let view = Arc::clone(view);
                s.spawn(move || {
                    let mut rng =
                        DetRng::new(seed ^ (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    let ids = view.pool_ids().to_vec();
                    let mut out: Vec<AnsweredQuote> = Vec::new();
                    while !stop.load(Ordering::Relaxed) && out.len() < READER_CAP {
                        let pool = ids[rng.range_u64(0, ids.len() as u64) as usize];
                        let dir = rng.unit() < 0.5;
                        let amount = rng.range_u128(1_000, 2_000_000);
                        let res = view.quote_swap(pool, dir, SwapKind::ExactInput(amount), None);
                        out.push((pool, dir, amount, res));
                    }
                    out
                })
            })
            .collect();
        readers
            .into_iter()
            .flat_map(|r| r.join().expect("reader thread panicked"))
            .collect()
    })
}

/// Re-verifies every answered quote against `reference` pools (frozen
/// view bytes or a restored snapshot): recomputing the quote there must
/// reproduce the recorded answer bit for bit.
fn reverify(answers: &[AnsweredQuote], reference: impl Fn(PoolId) -> Engine) -> usize {
    let mut pools: std::collections::HashMap<PoolId, Engine> = std::collections::HashMap::new();
    for (pool, dir, amount, recorded) in answers {
        let p = pools.entry(*pool).or_insert_with(|| reference(*pool));
        let again = p
            .quote_swap(*dir, SwapKind::ExactInput(*amount), None)
            .map_err(QuoteError::from);
        assert_eq!(
            recorded, &again,
            "answered quote diverges from reference state \
             (pool {pool:?}, zero_for_one {dir}, amount {amount})"
        );
    }
    answers.len()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(7u64);
    let pools: u32 = args
        .iter()
        .position(|a| a == "--pools")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let uniform = args.iter().any(|a| a == "--uniform");
    let routed = args.iter().any(|a| a == "--routed");
    let quotes = args.iter().any(|a| a == "--quotes");
    let delta = args.iter().any(|a| a == "--delta");

    ammboost_bench::header("State drill: checkpoint → prune → restore → verify");
    ammboost_bench::line("config/pools", pools);
    ammboost_bench::line("config/skew", if uniform { "uniform" } else { "zipf(1.0)" });
    ammboost_bench::line("config/routed", routed);
    ammboost_bench::line("config/quotes", quotes);
    ammboost_bench::line("config/delta", delta);

    let mut cfg = SystemConfig::small_test();
    cfg.seed = seed;
    cfg.pools = pools;
    cfg.users = cfg.users.max(2 * pools as u64);
    cfg.traffic_skew = if uniform {
        TrafficSkew::Uniform
    } else {
        TrafficSkew::Zipf { exponent: 1.0 }
    };
    if routed {
        assert!(pools >= 2, "--routed needs at least two pools");
        cfg.route_style = RouteStyle::routed(0.35, 4);
    }
    if quotes {
        // also exercise the system's own in-run quote serving
        cfg.quote_style = QuoteStyle::per_tx(1.0);
    }
    // checkpoint every epoch but keep all raw history during the run
    // (both pruning paths off) so the drill's explicit prune phase below
    // demonstrates real reclamation
    cfg.disable_pruning = true;
    cfg.snapshot = SnapshotPolicy {
        interval_epochs: 1,
        keep_epochs: u64::MAX,
    };
    let seed = cfg.seed;
    let mut sys = System::new(cfg);

    // -- run, with reader threads hammering the sealed genesis view -------
    // The readers hold the epoch-0 view while every epoch executes on the
    // live shards: any write-path leakage into a published view would be
    // caught by the re-verification below.
    let genesis = sys.quote_view().expect("genesis view published");
    let frozen_genesis: Vec<_> = genesis
        .pool_ids()
        .iter()
        .map(|&id| (id, genesis.pool(id).expect("covered").export_state()))
        .collect();
    let stop = AtomicBool::new(false);
    let (report, answered) = if quotes {
        std::thread::scope(|s| {
            let reader = s.spawn(|| hammer_view(&genesis, seed, &stop));
            let report = sys.run();
            stop.store(true, Ordering::Relaxed);
            (report, reader.join().expect("hammer scope panicked"))
        })
    } else {
        (sys.run(), Vec::new())
    };
    if quotes {
        // every answer served during execution matches the frozen
        // epoch-0 bytes: no reader observed a partially-executed epoch
        let n = reverify(&answered, |id| {
            let state = frozen_genesis
                .iter()
                .find(|(fid, _)| *fid == id)
                .map(|(_, s)| s.clone())
                .expect("covered pool");
            Engine::from_state(state).expect("frozen bytes restore")
        });
        assert!(n > 0, "quote drill answered nothing");
        ammboost_bench::line("quotes/concurrent_answered", n);
        ammboost_bench::line("quotes/served_in_run", report.quotes_served);
        ammboost_bench::line("quotes/view_publications", report.view_publications);
        ammboost_bench::line("quotes/view_pools_reused", report.view_pools_reused);
        ammboost_bench::line("quotes/view_pools_recloned", report.view_pools_recloned);
        assert!(report.quotes_served > 0, "in-run quote serving was idle");
    }
    ammboost_bench::line("run/accepted_txs", report.accepted);
    ammboost_bench::line("run/snapshots_taken", report.snapshots_taken);
    assert!(report.accepted > 0, "no traffic processed");
    assert!(
        report.snapshots_taken >= 3,
        "policy produced no checkpoints"
    );
    if routed {
        ammboost_bench::line("run/routes_accepted", report.routes_accepted);
        ammboost_bench::line("run/route_legs", report.route_legs_executed);
        assert!(report.routes_accepted > 0, "routed drill saw no routes");
        assert!(
            report.route_legs_executed >= 2 * report.routes_accepted,
            "every route has at least two legs"
        );
    }

    // -- checkpoint: a final snapshot covering the drain epoch ------------
    let epoch = report.epochs + 1;
    let stats = sys.checkpoint(epoch);
    assert_eq!(
        stats.pools_total, pools as usize,
        "snapshot must cover every shard"
    );
    ammboost_bench::line(
        "checkpoint/bytes",
        ammboost_bench::fmt_bytes(stats.snapshot_bytes),
    );
    ammboost_bench::line("checkpoint/pools", stats.pools_total);
    ammboost_bench::line("checkpoint/root", stats.root);
    let wire = sys.last_snapshot().expect("checkpoint taken").encode();

    // -- restore: decode (root-verified) and rebuild a working node -------
    let decoded = Snapshot::decode(&wire).expect("snapshot root verifies");
    let mut node = restore_node(&decoded).expect("snapshot restores");
    assert_eq!(node.root, stats.root, "restored root diverges");
    assert_eq!(node.shards.len(), pools as usize, "shard count diverges");
    assert_eq!(
        node.shards.export_states(),
        sys.shards().export_states(),
        "restored shards diverge"
    );
    assert_eq!(
        node.ledger.export_state(),
        sys.ledger().export_state(),
        "restored ledger diverges"
    );
    ammboost_bench::line("restore/state", "byte-identical across all shards");

    // -- quote drill round 2: final sealed view vs post-epoch snapshot ----
    // Hammer the last published view, then re-verify every answer against
    // the pools restored from the serialized snapshot: the sealed view and
    // the post-epoch snapshot must answer identically, bit for bit.
    if quotes {
        let final_view = sys.quote_view().expect("final view published");
        assert_eq!(final_view.pool_count(), pools as usize);
        let stop = AtomicBool::new(false); // bounded round: readers run to their cap
        let answered = hammer_view(&final_view, seed ^ 0x0F1E_2D3C_4B5A_6978, &stop);
        let n = reverify(&answered, |id| {
            Engine::from_state(
                node.shards
                    .get(id)
                    .expect("restored shard")
                    .pool()
                    .export_state(),
            )
            .expect("snapshot bytes restore")
        });
        assert!(n > 0, "final-view quote drill answered nothing");
        ammboost_bench::line("quotes/final_view_reverified", n);
    }

    // -- prune: drop the raw history the snapshot covers ------------------
    let before = node.ledger.size_bytes();
    let pruned = prune_to_snapshot(&mut node.ledger, epoch, RetentionPolicy::default());
    assert!(
        pruned.epochs_pruned > 0,
        "nothing to prune — drill is vacuous"
    );
    assert!(pruned.reclaimed_bytes > 0, "pruning reclaimed nothing");
    ammboost_bench::line("prune/epochs", pruned.epochs_pruned);
    ammboost_bench::line(
        "prune/reclaimed",
        ammboost_bench::fmt_bytes(pruned.reclaimed_bytes),
    );
    assert_eq!(
        node.ledger.size_bytes(),
        before - pruned.reclaimed_bytes,
        "ledger accounting broken"
    );

    // -- re-verify: the pruned node still checkpoints and restores --------
    let out2 = checkpoint_node(
        &mut Checkpointer::new(),
        epoch,
        &mut node.shards,
        &node.ledger,
    );
    let (snap2, stats2) = (out2.snapshot, out2.stats);
    let node2 = restore_node(&Snapshot::decode(&snap2.encode()).expect("root verifies"))
        .expect("post-prune snapshot restores");
    assert_eq!(node2.root, stats2.root);
    assert_eq!(
        node2.shards.export_states(),
        node.shards.export_states(),
        "post-prune restore diverges"
    );
    ammboost_bench::line("reverify/root", stats2.root);

    // -- delta mode: checkpoint → delta chain → compact → restore ---------
    // Each synthetic epoch touches exactly one shard, checkpoints, and
    // journals only the page-granular delta. The chain compacts at the
    // threshold; the folded tip must restore byte-identical to the node
    // that was checkpointed.
    if delta {
        let mut cp = Checkpointer::new();
        let mut store = CheckpointStore::with_compaction_threshold(3);
        let base = checkpoint_node(&mut cp, epoch + 1, &mut node.shards, &node.ledger);
        store
            .commit(&base.snapshot, None)
            .expect("base full snapshot commits");

        let rounds = 7u64;
        let mut delta_bytes = 0u64;
        let mut full_bytes = 0u64;
        let mut last_root = base.stats.root;
        for i in 0..rounds {
            // touch one shard: a fresh LP range marks exactly that pool
            // dirty, so the delta stays sparse
            let p = PoolId((i % pools as u64) as u32);
            node.shards.seed_liquidity(
                p,
                ammboost_crypto::Address::from_index(1_000 + i),
                -60_000,
                60_000,
                10u128.pow(10) + i as u128,
                10u128.pow(10) + i as u128,
            );
            let out = checkpoint_node(&mut cp, epoch + 2 + i, &mut node.shards, &node.ledger);
            let d = out
                .delta
                .expect("every checkpoint after the base emits a delta");
            delta_bytes += d.encoded_len() as u64;
            full_bytes += out.stats.snapshot_bytes;
            store.commit_delta(&d, None).expect("delta journals");
            last_root = out.stats.root;
        }
        assert!(
            store.compactions() > 0,
            "chain never compacted at threshold 3 over {rounds} deltas"
        );
        let folded = store.latest().expect("folded tip decodes");
        assert_eq!(folded.root(), last_root, "folded tip root diverges");
        let delta_node = restore_node(&folded).expect("folded tip restores");
        assert_eq!(
            delta_node.shards.export_states(),
            node.shards.export_states(),
            "delta-chain restore diverges from the live node"
        );
        // the chain is recoverable from its persisted journal too
        let rec = store.recover();
        assert_eq!(rec, ammboost_state::RecoveryOutcome::Clean);
        ammboost_bench::line("delta/chained", rounds);
        ammboost_bench::line("delta/compactions", store.compactions());
        ammboost_bench::line("delta/bytes", ammboost_bench::fmt_bytes(delta_bytes));
        ammboost_bench::line("delta/full_bytes", ammboost_bench::fmt_bytes(full_bytes));
        ammboost_bench::line(
            "delta/shrink",
            format!("{:.1}x", full_bytes as f64 / delta_bytes.max(1) as f64),
        );
        assert!(
            delta_bytes < full_bytes,
            "deltas must undercut full snapshots on sparse epochs"
        );
    }

    println!();
    println!(
        "state drill PASS ({pools} pools{}{}{})",
        if routed { ", routed traffic" } else { "" },
        if quotes { ", concurrent quotes" } else { "" },
        if delta { ", delta chain" } else { "" }
    );
}
