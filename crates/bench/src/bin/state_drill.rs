//! CI smoke drill for the `ammboost-state` subsystem, multi-pool
//! edition: run a **sharded** system (default: 8 pools under
//! Zipf-skewed traffic), **checkpoint** all shards into one
//! Merkle-committed snapshot, **prune** the raw history the snapshot
//! covers, **restore** a fresh node from the serialized snapshot, and
//! **re-verify** the state root plus byte-identical per-shard state.
//! Exits non-zero on any divergence.
//!
//! `--routed` turns a share of the swap traffic into multi-hop
//! cross-pool routes, drilling the two-phase epoch (hop waves + netting
//! barrier) through the same checkpoint → prune → restore → re-verify
//! cycle.
//!
//! Usage: `state_drill [--seed N] [--pools N] [--uniform] [--routed]`

use ammboost_core::checkpoint::{checkpoint_node, restore_node};
use ammboost_core::config::{SnapshotPolicy, SystemConfig};
use ammboost_core::system::System;
use ammboost_state::{prune_to_snapshot, Checkpointer, RetentionPolicy, Snapshot};
use ammboost_workload::{RouteStyle, TrafficSkew};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(7u64);
    let pools: u32 = args
        .iter()
        .position(|a| a == "--pools")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let uniform = args.iter().any(|a| a == "--uniform");
    let routed = args.iter().any(|a| a == "--routed");

    ammboost_bench::header("State drill: checkpoint → prune → restore → verify");
    ammboost_bench::line("config/pools", pools);
    ammboost_bench::line("config/skew", if uniform { "uniform" } else { "zipf(1.0)" });
    ammboost_bench::line("config/routed", routed);

    let mut cfg = SystemConfig::small_test();
    cfg.seed = seed;
    cfg.pools = pools;
    cfg.users = cfg.users.max(2 * pools as u64);
    cfg.traffic_skew = if uniform {
        TrafficSkew::Uniform
    } else {
        TrafficSkew::Zipf { exponent: 1.0 }
    };
    if routed {
        assert!(pools >= 2, "--routed needs at least two pools");
        cfg.route_style = RouteStyle::routed(0.35, 4);
    }
    // checkpoint every epoch but keep all raw history during the run
    // (both pruning paths off) so the drill's explicit prune phase below
    // demonstrates real reclamation
    cfg.disable_pruning = true;
    cfg.snapshot = SnapshotPolicy {
        interval_epochs: 1,
        keep_epochs: u64::MAX,
    };
    let mut sys = System::new(cfg);
    let report = sys.run();
    ammboost_bench::line("run/accepted_txs", report.accepted);
    ammboost_bench::line("run/snapshots_taken", report.snapshots_taken);
    assert!(report.accepted > 0, "no traffic processed");
    assert!(
        report.snapshots_taken >= 3,
        "policy produced no checkpoints"
    );
    if routed {
        ammboost_bench::line("run/routes_accepted", report.routes_accepted);
        ammboost_bench::line("run/route_legs", report.route_legs_executed);
        assert!(report.routes_accepted > 0, "routed drill saw no routes");
        assert!(
            report.route_legs_executed >= 2 * report.routes_accepted,
            "every route has at least two legs"
        );
    }

    // -- checkpoint: a final snapshot covering the drain epoch ------------
    let epoch = report.epochs + 1;
    let stats = sys.checkpoint(epoch);
    assert_eq!(
        stats.pools_total, pools as usize,
        "snapshot must cover every shard"
    );
    ammboost_bench::line(
        "checkpoint/bytes",
        ammboost_bench::fmt_bytes(stats.snapshot_bytes),
    );
    ammboost_bench::line("checkpoint/pools", stats.pools_total);
    ammboost_bench::line("checkpoint/root", stats.root);
    let wire = sys.last_snapshot().expect("checkpoint taken").encode();

    // -- restore: decode (root-verified) and rebuild a working node -------
    let decoded = Snapshot::decode(&wire).expect("snapshot root verifies");
    let mut node = restore_node(&decoded).expect("snapshot restores");
    assert_eq!(node.root, stats.root, "restored root diverges");
    assert_eq!(node.shards.len(), pools as usize, "shard count diverges");
    assert_eq!(
        node.shards.export_states(),
        sys.shards().export_states(),
        "restored shards diverge"
    );
    assert_eq!(
        node.ledger.export_state(),
        sys.ledger().export_state(),
        "restored ledger diverges"
    );
    ammboost_bench::line("restore/state", "byte-identical across all shards");

    // -- prune: drop the raw history the snapshot covers ------------------
    let before = node.ledger.size_bytes();
    let pruned = prune_to_snapshot(&mut node.ledger, epoch, RetentionPolicy::default());
    assert!(
        pruned.epochs_pruned > 0,
        "nothing to prune — drill is vacuous"
    );
    assert!(pruned.reclaimed_bytes > 0, "pruning reclaimed nothing");
    ammboost_bench::line("prune/epochs", pruned.epochs_pruned);
    ammboost_bench::line(
        "prune/reclaimed",
        ammboost_bench::fmt_bytes(pruned.reclaimed_bytes),
    );
    assert_eq!(
        node.ledger.size_bytes(),
        before - pruned.reclaimed_bytes,
        "ledger accounting broken"
    );

    // -- re-verify: the pruned node still checkpoints and restores --------
    let (snap2, stats2) = checkpoint_node(
        &mut Checkpointer::new(),
        epoch,
        &mut node.shards,
        &node.ledger,
    );
    let node2 = restore_node(&Snapshot::decode(&snap2.encode()).expect("root verifies"))
        .expect("post-prune snapshot restores");
    assert_eq!(node2.root, stats2.root);
    assert_eq!(
        node2.shards.export_states(),
        node.shards.export_states(),
        "post-prune restore diverges"
    );
    ammboost_bench::line("reverify/root", stats2.root);

    println!();
    println!(
        "state drill PASS ({pools} pools{})",
        if routed { ", routed traffic" } else { "" }
    );
}
