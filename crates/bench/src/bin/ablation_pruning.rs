//! Ablation: how much of ammBoost's state-growth control comes from
//! meta-block pruning (block suppression)? Runs the default workload with
//! pruning enabled vs disabled and compares sidechain growth — the
//! DESIGN.md §6 ablation.

use ammboost_bench::{fmt_bytes, header, line};
use ammboost_core::config::SystemConfig;
use ammboost_core::system::System;

fn main() {
    header("Ablation — sidechain pruning on/off (V_D = 500K, 11 epochs)");
    let mut on = SystemConfig::default();
    on.daily_volume = 500_000;
    let with_pruning = System::new(on).run();

    let mut off = SystemConfig::default();
    off.daily_volume = 500_000;
    off.disable_pruning = true;
    let without_pruning = System::new(off).run();

    line(
        "sidechain final (pruning ON)",
        fmt_bytes(with_pruning.sidechain_bytes),
    );
    line(
        "sidechain final (pruning OFF)",
        fmt_bytes(without_pruning.sidechain_bytes),
    );
    line(
        "bytes reclaimed by pruning",
        fmt_bytes(with_pruning.sidechain_pruned_bytes),
    );
    let reduction = 100.0
        * (1.0 - with_pruning.sidechain_bytes as f64 / without_pruning.sidechain_bytes as f64);
    line(
        "pruning reduces sidechain size by",
        format!("{reduction:.2}%"),
    );
    println!();
    line(
        "note",
        "the paper reports ≥93.42% chain-growth reduction; pruning is the \
         mechanism that keeps the *sidechain* from merely inheriting the \
         growth the mainchain avoided",
    );
    assert!(
        with_pruning.sidechain_bytes < without_pruning.sidechain_bytes / 5,
        "pruning must reclaim the bulk of sidechain state"
    );
}
