//! Reproduces **Table II — Mainchain latency and itemized gas cost for
//! ammBoost operations**: the per-component cost of `Sync` (payouts,
//! position/pool storage, TSQC authentication) and the two-token
//! `Deposit`, plus their mainchain confirmation latencies.

use ammboost_amm::types::PoolId;
use ammboost_bench::{header, line, row};
use ammboost_core::config::SystemConfig;
use ammboost_core::system::System;
use ammboost_crypto::dkg::{run_ceremony, DkgConfig};
use ammboost_crypto::Address;
use ammboost_mainchain::chain::{ChainConfig, Mainchain, TxSpec};
use ammboost_mainchain::contracts::{Erc20, TokenBank};
use ammboost_mainchain::gas::{self, GasMeter};
use ammboost_sim::time::SimTime;

fn main() {
    header("Table II — itemized gas + mainchain latency (ammBoost ops)");

    // --- itemized Sync gas from a live run (V_D = 500K, 10x Uniswap) ---
    let mut cfg = SystemConfig::default();
    cfg.daily_volume = 500_000;
    cfg.epochs = 3;
    let mut sys = System::new(cfg);
    let _ = sys.run();
    let receipt = sys
        .last_sync_receipt
        .as_ref()
        .expect("a sync was submitted");

    line("sync payload", format!("{} bytes", receipt.payload_bytes));
    let payout_each = if receipt.payouts_applied > 0 {
        receipt.meter.total_for("payout") / receipt.payouts_applied as u64
    } else {
        0
    };
    row("Sync: payout (each)", "15,771", format!("{payout_each}"));
    row(
        "Sync: storage (per 32-byte word)",
        "22,100",
        format!("{}", gas::SSTORE_NEW_WORD),
    );
    row(
        "Auth: Keccak256 (30 + 6/word)",
        format!("{}", gas::keccak_cost(receipt.payload_bytes)),
        format!("{}", receipt.meter.total_for("auth.keccak256")),
    );
    row(
        "Auth: hash-to-point ecMul",
        "6,000",
        format!("{}", receipt.meter.total_for("auth.hash_to_point.ecmul")),
    );
    row(
        "Auth: pairing verify (k = 2)",
        "113,000",
        format!("{}", receipt.meter.total_for("auth.pairing")),
    );
    line(
        "positions in sync",
        format!(
            "{} (storage {} gas)",
            receipt.positions_applied,
            receipt.meter.total_for("position.storage")
        ),
    );
    line("payouts in sync", format!("{}", receipt.payouts_applied));
    line("sync total", format!("{} gas", receipt.meter.total()));

    // --- deposit gas (2 tokens) ---
    let dkg = run_ceremony(DkgConfig::for_faults(1), 1);
    let mut bank = TokenBank::deploy(dkg.group_public_key);
    bank.create_pool(PoolId(0), &mut GasMeter::new());
    let mut t0 = Erc20::new("TKA");
    let mut t1 = Erc20::new("TKB");
    let user = Address::from_index(1);
    t0.mint(user, 10_000);
    t1.mint(user, 10_000);
    t0.approve(user, bank.address, 5_000, &mut GasMeter::new());
    t1.approve(user, bank.address, 5_000, &mut GasMeter::new());
    let mut dep_meter = GasMeter::new();
    bank.deposit(user, 5_000, 5_000, 1, &mut t0, &mut t1, &mut dep_meter)
        .expect("deposit");
    row(
        "Deposit (2 tokens)",
        "105,392",
        format!("{}", dep_meter.total()),
    );

    // --- mainchain latencies (12 s blocks) ---
    let mut chain = Mainchain::new(ChainConfig::default());
    let sync_tx = chain.submit(
        SimTime::from_secs(1),
        TxSpec {
            label: "sync".into(),
            gas: 1_000_000,
            size_bytes: 5_000,
            depends_on: None,
        },
    );
    let a0 = chain.submit(
        SimTime::from_secs(1),
        TxSpec {
            label: "approve".into(),
            gas: 50_000,
            size_bytes: 68,
            depends_on: None,
        },
    );
    let a1 = chain.submit(
        SimTime::from_secs(1),
        TxSpec {
            label: "approve".into(),
            gas: 50_000,
            size_bytes: 68,
            depends_on: Some(a0),
        },
    );
    let dep = chain.submit(
        SimTime::from_secs(1),
        TxSpec {
            label: "deposit".into(),
            gas: 110_000,
            size_bytes: 132,
            depends_on: Some(a1),
        },
    );
    chain.advance_to(SimTime::from_secs(120));
    let sync_latency = chain
        .confirmed_at(sync_tx)
        .expect("confirmed")
        .since(SimTime::from_secs(1));
    let dep_latency = chain
        .confirmed_at(dep)
        .expect("confirmed")
        .since(SimTime::from_secs(1));
    row(
        "MC latency: Sync (s)",
        "15.28",
        format!("{:.2}", sync_latency.as_secs_f64()),
    );
    row(
        "MC latency: Deposit (s)",
        "54.60",
        format!("{:.2}", dep_latency.as_secs_f64()),
    );
    println!();
    println!(
        "shape check: authentication is a fixed ~119K gas plus Keccak over \
         |sum|; storage dominates and scales with positions/payouts (users), \
         not traffic; deposits take several dependent blocks, syncs one."
    );
}
