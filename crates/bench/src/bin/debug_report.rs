//! Developer utility: run one System configuration and dump the full
//! report (used while calibrating; not part of the table reproductions).

use ammboost_core::config::SystemConfig;
use ammboost_core::system::System;

fn main() {
    let mut cfg = SystemConfig::default();
    let args: Vec<String> = std::env::args().collect();
    if let Some(vd) = args.get(1) {
        cfg.daily_volume = vd.parse().expect("daily volume");
    }
    if let Some(ep) = args.get(2) {
        cfg.epochs = ep.parse().expect("epochs");
    }
    let report = System::new(cfg).run();
    println!("{report:#?}");
}
