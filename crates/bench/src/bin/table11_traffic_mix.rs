//! Reproduces **Table XI — Impact of traffic distribution**: the six
//! `(swap, mint, burn, collect)` mixes at V_D = 25M/day, plus the maximum
//! sidechain growth.
//!
//! Expected shape: metrics barely move across mixes (transaction sizes
//! are similar, so blocks hold about the same count), and the permanent
//! per-epoch growth (max summary-block size) is bounded by the user /
//! position population, invariant across mixes.

use ammboost_bench::{header, line, row};
use ammboost_core::config::SystemConfig;
use ammboost_core::system::System;
use ammboost_workload::TrafficMix;

fn main() {
    header("Table XI — traffic-mix sweep (V_D = 25M/day)");
    let paper = [
        ((60.0, 20.0, 10.0, 10.0), 145.16, 162.26, 277.99, 31_831u64),
        ((60.0, 10.0, 20.0, 10.0), 143.76, 175.35, 291.05, 31_831),
        ((60.0, 10.0, 10.0, 20.0), 140.91, 177.39, 293.03, 31_831),
        ((80.0, 10.0, 5.0, 5.0), 143.76, 202.48, 317.23, 31_831),
        ((80.0, 5.0, 10.0, 5.0), 140.23, 215.06, 329.81, 31_831),
        ((80.0, 5.0, 5.0, 10.0), 140.14, 210.35, 324.43, 31_831),
    ];
    for ((s, m, b, c), p_tput, p_sc, p_payout, p_growth) in paper {
        let mut cfg = SystemConfig::default();
        cfg.mix = TrafficMix::from_tuple((s, m, b, c));
        let report = System::new(cfg).run();
        println!();
        line("mix (s/m/b/c %)", format!("{s}/{m}/{b}/{c}"));
        row(
            "  throughput (tx/s)",
            format!("{p_tput:.2}"),
            format!("{:.2}", report.throughput_tps),
        );
        row(
            "  avg sc latency (s)",
            format!("{p_sc:.2}"),
            format!("{:.2}", report.avg_sc_latency_secs),
        );
        row(
            "  avg payout latency (s)",
            format!("{p_payout:.2}"),
            format!("{:.2}", report.avg_payout_latency_secs),
        );
        row(
            "  max sc growth (B)",
            format!("{p_growth}"),
            format!("{}", report.max_summary_bytes),
        );
    }
    println!();
    println!(
        "shape check: throughput/latency are nearly mix-invariant (similar \
         tx sizes); the permanent growth is bounded by users x positions \
         and does not vary with the mix."
    );
}
