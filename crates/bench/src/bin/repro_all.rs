//! Runs every table/figure reproduction in sequence (the full §VI
//! evaluation). Individual binaries: `table01_comparison` …
//! `table12_committee`, `fig05_gas_growth`.
//!
//! Heavy sweeps (Tables VIII-XI run 11-epoch simulations per
//! configuration) take a few minutes in release mode. Pass `--smoke` to
//! run only the fast reproductions (everything except those sweeps) —
//! this is what CI uses to keep the binaries from rotting.

use std::process::Command;

const FAST_BINS: &[&str] = &[
    "table07_traffic",
    "table04_storage",
    "table02_itemized_gas",
    "table03_uniswap_gas",
    "fig05_gas_growth",
    "table05_scalability",
    "table12_committee",
    "table06_rollup",
    "table01_comparison",
    "ablation_pruning",
];

const SWEEP_BINS: &[&str] = &[
    "table09_round_duration",
    "table10_epoch_len",
    "table08_blocksize",
    "table11_traffic_mix",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    if let Some(unknown) = args.iter().find(|a| *a != "--smoke") {
        eprintln!("unknown argument: {unknown}");
        eprintln!("usage: repro_all [--smoke]");
        std::process::exit(2);
    }

    let bins: Vec<&str> = if smoke {
        FAST_BINS.to_vec()
    } else {
        FAST_BINS.iter().chain(SWEEP_BINS).copied().collect()
    };

    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin dir");
    for bin in bins {
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
    println!();
    if smoke {
        println!("Smoke reproductions completed (sweep tables skipped).");
    } else {
        println!("All reproductions completed.");
    }
}
