//! Runs every table/figure reproduction in sequence (the full §VI
//! evaluation). Individual binaries: `table01_comparison` …
//! `table12_committee`, `fig05_gas_growth`.
//!
//! Heavy sweeps (Tables VIII-XI run 11-epoch simulations per
//! configuration) take a few minutes in release mode.

use std::process::Command;

fn main() {
    let bins = [
        "table07_traffic",
        "table04_storage",
        "table02_itemized_gas",
        "table03_uniswap_gas",
        "fig05_gas_growth",
        "table05_scalability",
        "table12_committee",
        "table06_rollup",
        "table01_comparison",
        "table09_round_duration",
        "table10_epoch_len",
        "table08_blocksize",
        "table11_traffic_mix",
        "ablation_pruning",
    ];
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin dir");
    for bin in bins {
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
    println!();
    println!("All reproductions completed.");
}
