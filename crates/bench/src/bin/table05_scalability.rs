//! Reproduces **Table V — Scalability of ammBoost**: daily volume
//! `V_D ∈ {50K, 500K, 5M, 25M}` against throughput, average sidechain
//! latency and average payout latency.
//!
//! Expected shape: quasi-instant sidechain latency and payout latency of
//! about half an epoch plus one sync confirmation while the workload fits
//! the 1 MB / 7 s meta-block budget (≈142 tx/s); at 25M/day the system
//! saturates at block capacity and queueing latency appears.

use ammboost_bench::{header, line, row, TABLE_V};
use ammboost_core::system::System;

fn main() {
    header("Table V — Scalability of ammBoost (V_D sweep)");
    line(
        "config",
        "11 epochs x 30 rounds x 7s, 1 MB meta-blocks, committee 500",
    );
    for reference in TABLE_V.iter() {
        let mut cfg = ammboost_bench::paper_default_config();
        cfg.daily_volume = reference.daily_volume;
        let report = System::new(cfg).run();
        println!();
        line("daily volume", reference.daily_volume);
        row(
            "  throughput (tx/s)",
            format!("{:.2}", reference.throughput),
            format!("{:.2}", report.throughput_tps),
        );
        row(
            "  avg sc latency (s)",
            format!("{:.2}", reference.sc_latency),
            format!("{:.2}", report.avg_sc_latency_secs),
        );
        row(
            "  avg payout latency (s)",
            format!("{:.2}", reference.payout_latency),
            format!("{:.2}", report.avg_payout_latency_secs),
        );
        line(
            "  accepted/submitted",
            format!("{}/{}", report.accepted, report.submitted),
        );
    }
    println!();
    println!(
        "shape check: latency quasi-constant while under capacity, \
         congestion appears only at 25M/day; throughput saturates near the \
         1 MB / 7 s block budget (~140 tx/s)."
    );
}
